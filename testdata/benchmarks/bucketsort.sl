// Bucket sort with insertion sort per bucket (flattened buckets).
func bucketSort(a: [Int], maxVal: Int, nBuckets: Int) -> [Int] {
  let cap = a.count
  var buckets = Array<Int>(nBuckets * cap)
  var sizes = Array<Int>(nBuckets)
  for i in 0 ..< a.count {
    let b = a[i] * nBuckets / (maxVal + 1)
    buckets[b * cap + sizes[b]] = a[i]
    sizes[b] = sizes[b] + 1
  }
  var out = Array<Int>(a.count)
  var pos = 0
  for b in 0 ..< nBuckets {
    // insertion sort bucket b
    for i in 1 ..< sizes[b] {
      let v = buckets[b * cap + i]
      var j = i - 1
      while j >= 0 && buckets[b * cap + j] > v {
        buckets[b * cap + j + 1] = buckets[b * cap + j]
        j = j - 1
      }
      buckets[b * cap + j + 1] = v
    }
    for i in 0 ..< sizes[b] {
      out[pos] = buckets[b * cap + i]
      pos = pos + 1
    }
  }
  return out
}
func main() {
  let n = 160
  var a = Array<Int>(n)
  for i in 0 ..< n { a[i] = (i * 997 + 3) % 512 }
  let s = bucketSort(a: a, maxVal: 511, nBuckets: 8)
  var check = 0
  for i in 0 ..< n { check = check + s[i] * (i + 1) }
  print(check)
}
