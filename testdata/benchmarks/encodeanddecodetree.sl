// Serialize a binary tree to a preorder array (with nil markers) and
// rebuild it; verify structural equality.
class TNode {
  var val: Int
  var left: TNode?
  var right: TNode?
  init(val: Int) {
    self.val = val
    self.left = nil
    self.right = nil
  }
}
func insertBST(root: TNode?, v: Int) -> TNode {
  if root == nil { return TNode(val: v) }
  if let r = root {
    if v < r.val { r.left = insertBST(root: r.left, v: v) }
    else { r.right = insertBST(root: r.right, v: v) }
    return r
  }
  return TNode(val: v)
}
func encode(n: TNode?, out: [Int]) -> [Int] {
  if n == nil { return append(out, 0 - 1000000) }
  var acc = out
  if let x = n {
    acc = append(acc, x.val)
    acc = encode(n: x.left, out: acc)
    acc = encode(n: x.right, out: acc)
  }
  return acc
}
class Decoder {
  var pos: Int
  var data: [Int]
  init(data: [Int]) {
    self.pos = 0
    self.data = data
  }
  func decode() -> TNode? {
    let v = self.data[self.pos]
    self.pos = self.pos + 1
    if v == 0 - 1000000 { return nil }
    let n = TNode(val: v)
    n.left = self.decode()
    n.right = self.decode()
    return n
  }
}
func same(a: TNode?, b: TNode?) -> Bool {
  if a == nil && b == nil { return true }
  if a == nil || b == nil { return false }
  if let x = a {
    if let y = b {
      if x.val != y.val { return false }
      return same(a: x.left, b: y.left) && same(a: x.right, b: y.right)
    }
  }
  return false
}
func main() {
  var root: TNode? = nil
  for i in 0 ..< 60 { root = insertBST(root: root, v: (i * 43) % 127) }
  let enc = encode(n: root, out: Array<Int>(0))
  let d = Decoder(data: enc)
  let back = d.decode()
  print(enc.count)
  print(same(a: root, b: back))
}
