// Depth-first search (iterative, explicit stack).
func dfs(adj: [Int], n: Int, start: Int) -> Int {
  var visited = Array<Int>(n)
  var stack = Array<Int>(n * n)
  var top = 0
  stack[top] = start
  top = top + 1
  var order = 0
  var sum = 0
  while top > 0 {
    top = top - 1
    let u = stack[top]
    if visited[u] == 0 {
      visited[u] = 1
      order = order + 1
      sum = sum + u * order
      for v in 0 ..< n {
        if adj[u * n + v] == 1 && visited[v] == 0 {
          stack[top] = v
          top = top + 1
        }
      }
    }
  }
  return sum
}
func main() {
  let n = 22
  var adj = Array<Int>(n * n)
  for i in 0 ..< n {
    let j = (i * 5 + 1) % n
    adj[i * n + j] = 1
    adj[j * n + i] = 1
  }
  print(dfs(adj: adj, n: n, start: 0))
}
