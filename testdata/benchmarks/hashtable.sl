// Open-addressing hash table (linear probing) insert/lookup churn.
class HashTable {
  var keys: [Int]
  var vals: [Int]
  var used: [Int]
  var cap: Int
  init(cap: Int) {
    self.cap = cap
    self.keys = Array<Int>(cap)
    self.vals = Array<Int>(cap)
    self.used = Array<Int>(cap)
  }
  func put(k: Int, v: Int) {
    var i = (k * 2654435761) % self.cap
    if i < 0 { i = i + self.cap }
    while self.used[i] == 1 && self.keys[i] != k {
      i = (i + 1) % self.cap
    }
    self.used[i] = 1
    self.keys[i] = k
    self.vals[i] = v
  }
  func get(k: Int) -> Int {
    var i = (k * 2654435761) % self.cap
    if i < 0 { i = i + self.cap }
    var probes = 0
    while self.used[i] == 1 && probes < self.cap {
      if self.keys[i] == k { return self.vals[i] }
      i = (i + 1) % self.cap
      probes = probes + 1
    }
    return 0 - 1
  }
}
func main() {
  let t = HashTable(cap: 512)
  for i in 0 ..< 300 { t.put(k: i * 17 % 1000, v: i) }
  var sum = 0
  for i in 0 ..< 300 { sum = sum + t.get(k: i * 17 % 1000) }
  print(sum)
}
