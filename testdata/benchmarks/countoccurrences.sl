// Count occurrences of a key in a sorted array via binary search bounds.
func lowerBound(a: [Int], key: Int) -> Int {
  var lo = 0
  var hi = a.count
  while lo < hi {
    let mid = (lo + hi) / 2
    if a[mid] < key { lo = mid + 1 } else { hi = mid }
  }
  return lo
}
func upperBound(a: [Int], key: Int) -> Int {
  var lo = 0
  var hi = a.count
  while lo < hi {
    let mid = (lo + hi) / 2
    if a[mid] <= key { lo = mid + 1 } else { hi = mid }
  }
  return lo
}
func main() {
  let n = 400
  var a = Array<Int>(n)
  for i in 0 ..< n { a[i] = i / 7 }
  var total = 0
  for key in 0 ..< 60 {
    total = total + upperBound(a: a, key: key) - lowerBound(a: a, key: key)
  }
  print(total)
}
