// Splay tree: insert + access with splaying (zig/zig-zig/zig-zag).
class SNode {
  var key: Int
  var left: SNode?
  var right: SNode?
  init(key: Int) {
    self.key = key
    self.left = nil
    self.right = nil
  }
}
func splay(root: SNode?, key: Int) -> SNode? {
  if root == nil { return nil }
  if let r = root {
    if key < r.key {
      if r.left == nil { return r }
      if let l = r.left {
        if key < l.key {
          l.left = splay(root: l.left, key: key)
          if let ll = l.left {
            // rotate right at r (zig-zig part 1)
            r.left = ll.right
            ll.right = r
            let unused = ll
          }
        } else {
          if key > l.key {
            l.right = splay(root: l.right, key: key)
            if let lr = l.right {
              l.right = lr.left
              lr.left = l
              r.left = lr
            }
          }
        }
      }
      if let l2 = r.left {
        r.left = l2.right
        l2.right = r
        return l2
      }
      return r
    }
    if key > r.key {
      if r.right == nil { return r }
      if let rr = r.right {
        if key > rr.key {
          rr.right = splay(root: rr.right, key: key)
          if let rrr = rr.right {
            r.right = rrr.left
            rrr.left = r
            let unused = rrr
          }
        } else {
          if key < rr.key {
            rr.left = splay(root: rr.left, key: key)
            if let rl = rr.left {
              rr.left = rl.right
              rl.right = rr
              r.right = rl
            }
          }
        }
      }
      if let r2 = r.right {
        r.right = r2.left
        r2.left = r
        return r2
      }
      return r
    }
    return r
  }
  return root
}
func insert(root: SNode?, key: Int) -> SNode {
  if root == nil { return SNode(key: key) }
  let r = splay(root: root, key: key)
  if let s = r {
    if s.key == key { return s }
    let n = SNode(key: key)
    if key < s.key {
      n.right = s
      n.left = s.left
      s.left = nil
    } else {
      n.left = s
      n.right = s.right
      s.right = nil
    }
    return n
  }
  return SNode(key: key)
}
func depthSum(n: SNode?, d: Int) -> Int {
  if n == nil { return 0 }
  var s = 0
  if let x = n { s = d + depthSum(n: x.left, d: d + 1) + depthSum(n: x.right, d: d + 1) }
  return s
}
func main() {
  var root: SNode? = nil
  for i in 0 ..< 100 { root = insert(root: root, key: (i * 61) % 509) }
  for i in 0 ..< 100 { root = splay(root: root, key: (i * 13) % 509) }
  print(depthSum(n: root, d: 0))
}
