// Dijkstra's shortest paths on a dense weighted graph (O(n^2) scan).
func dijkstra(w: [Int], n: Int, src: Int) -> Int {
  let inf = 1000000000
  var dist = Array<Int>(n)
  var done = Array<Int>(n)
  for i in 0 ..< n { dist[i] = inf }
  dist[src] = 0
  for it in 0 ..< n {
    var u = 0 - 1
    var best = inf
    for i in 0 ..< n {
      if done[i] == 0 && dist[i] < best {
        best = dist[i]
        u = i
      }
    }
    if u < 0 { break }
    done[u] = 1
    for v in 0 ..< n {
      let wt = w[u * n + v]
      if wt > 0 && dist[u] + wt < dist[v] {
        dist[v] = dist[u] + wt
      }
    }
  }
  var sum = 0
  for i in 0 ..< n { if dist[i] < inf { sum = sum + dist[i] } }
  return sum
}
func main() {
  let n = 26
  var w = Array<Int>(n * n)
  for i in 0 ..< n {
    for j in 0 ..< n {
      if i != j {
        let v = (i * 31 + j * 17) % 23
        if v % 3 == 0 { w[i * n + j] = v + 1 }
      }
    }
  }
  print(dijkstra(w: w, n: n, src: 0))
}
