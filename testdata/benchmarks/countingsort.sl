// Counting sort over a bounded key domain.
func countingSort(a: [Int], maxKey: Int) -> [Int] {
  var counts = Array<Int>(maxKey + 1)
  for i in 0 ..< a.count { counts[a[i]] = counts[a[i]] + 1 }
  var out = Array<Int>(a.count)
  var pos = 0
  for k in 0 ..< maxKey + 1 {
    for c in 0 ..< counts[k] {
      out[pos] = k
      pos = pos + 1
      let unused = c
    }
  }
  return out
}
func main() {
  let n = 300
  var a = Array<Int>(n)
  for i in 0 ..< n { a[i] = (i * 131 + 7) % 64 }
  let sorted = countingSort(a: a, maxKey: 63)
  var check = 0
  for i in 0 ..< n { check = check + sorted[i] * (i + 1) }
  print(check)
}
