// Octree point insertion and range counting over integer 3D points.
class Oct {
  var x: Int
  var y: Int
  var z: Int
  var half: Int
  var count: Int
  var kids: [Oct?]
  var px: [Int]
  var py: [Int]
  var pz: [Int]
  var np: Int
  init(x: Int, y: Int, z: Int, half: Int) {
    self.x = x
    self.y = y
    self.z = z
    self.half = half
    self.count = 0
    self.kids = Array<Oct?>(8)
    self.px = Array<Int>(8)
    self.py = Array<Int>(8)
    self.pz = Array<Int>(8)
    self.np = 0
  }
  func octant(qx: Int, qy: Int, qz: Int) -> Int {
    var o = 0
    if qx >= self.x { o = o + 1 }
    if qy >= self.y { o = o + 2 }
    if qz >= self.z { o = o + 4 }
    return o
  }
  func insert(qx: Int, qy: Int, qz: Int) {
    self.count = self.count + 1
    if self.np < 8 && self.half <= 2 {
      self.px[self.np] = qx
      self.py[self.np] = qy
      self.pz[self.np] = qz
      self.np = self.np + 1
      return
    }
    if self.np < 8 && self.kids[0] == nil && self.np + 1 < 8 {
      self.px[self.np] = qx
      self.py[self.np] = qy
      self.pz[self.np] = qz
      self.np = self.np + 1
      return
    }
    let o = self.octant(qx: qx, qy: qy, qz: qz)
    if self.kids[o] == nil {
      var dx = self.half / 2
      if dx < 1 { dx = 1 }
      var nx = self.x - dx
      if o % 2 == 1 { nx = self.x + dx }
      var ny = self.y - dx
      if (o / 2) % 2 == 1 { ny = self.y + dx }
      var nz = self.z - dx
      if o / 4 == 1 { nz = self.z + dx }
      self.kids[o] = Oct(x: nx, y: ny, z: nz, half: dx)
    }
    if let k = self.kids[o] { k.insert(qx: qx, qy: qy, qz: qz) }
  }
}
func main() {
  let root = Oct(x: 0, y: 0, z: 0, half: 64)
  for i in 0 ..< 200 {
    let qx = (i * 37) % 128 - 64
    let qy = (i * 53) % 128 - 64
    let qz = (i * 71) % 128 - 64
    root.insert(qx: qx, qy: qy, qz: qz)
  }
  print(root.count)
  var kidCount = 0
  for o in 0 ..< 8 { if root.kids[o] != nil { kidCount = kidCount + 1 } }
  print(kidCount)
}
