// Topological sort by Kahn's algorithm over a DAG.
func toposort(adj: [Int], n: Int) -> Int {
  var indeg = Array<Int>(n)
  for u in 0 ..< n {
    for v in 0 ..< n {
      if adj[u * n + v] == 1 { indeg[v] = indeg[v] + 1 }
    }
  }
  var queue = Array<Int>(n)
  var head = 0
  var tail = 0
  for u in 0 ..< n {
    if indeg[u] == 0 {
      queue[tail] = u
      tail = tail + 1
    }
  }
  var order = 0
  var check = 0
  while head < tail {
    let u = queue[head]
    head = head + 1
    order = order + 1
    check = check + u * order
    for v in 0 ..< n {
      if adj[u * n + v] == 1 {
        indeg[v] = indeg[v] - 1
        if indeg[v] == 0 {
          queue[tail] = v
          tail = tail + 1
        }
      }
    }
  }
  if order != n { return 0 - 1 }
  return check
}
func main() {
  let n = 30
  var adj = Array<Int>(n * n)
  for u in 0 ..< n {
    for v in u + 1 ..< n {
      if (u * 31 + v * 7) % 5 == 0 { adj[u * n + v] = 1 }
    }
  }
  print(toposort(adj: adj, n: n))
}
