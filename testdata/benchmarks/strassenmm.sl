// Strassen matrix multiplication (one recursion level over 2x2 blocks,
// falling back to the classic algorithm for the base case).
func mmAdd(a: [Int], b: [Int], n: Int) -> [Int] {
  var c = Array<Int>(n * n)
  for i in 0 ..< n * n { c[i] = a[i] + b[i] }
  return c
}
func mmSub(a: [Int], b: [Int], n: Int) -> [Int] {
  var c = Array<Int>(n * n)
  for i in 0 ..< n * n { c[i] = a[i] - b[i] }
  return c
}
func mmMulClassic(a: [Int], b: [Int], n: Int) -> [Int] {
  var c = Array<Int>(n * n)
  for i in 0 ..< n {
    for k in 0 ..< n {
      let av = a[i * n + k]
      for j in 0 ..< n {
        c[i * n + j] = c[i * n + j] + av * b[k * n + j]
      }
    }
  }
  return c
}
func quadrant(a: [Int], n: Int, qi: Int, qj: Int) -> [Int] {
  let h = n / 2
  var q = Array<Int>(h * h)
  for i in 0 ..< h {
    for j in 0 ..< h {
      q[i * h + j] = a[(qi * h + i) * n + qj * h + j]
    }
  }
  return q
}
func strassen(a: [Int], b: [Int], n: Int) -> [Int] {
  if n <= 8 { return mmMulClassic(a: a, b: b, n: n) }
  let h = n / 2
  let a11 = quadrant(a: a, n: n, qi: 0, qj: 0)
  let a12 = quadrant(a: a, n: n, qi: 0, qj: 1)
  let a21 = quadrant(a: a, n: n, qi: 1, qj: 0)
  let a22 = quadrant(a: a, n: n, qi: 1, qj: 1)
  let b11 = quadrant(a: b, n: n, qi: 0, qj: 0)
  let b12 = quadrant(a: b, n: n, qi: 0, qj: 1)
  let b21 = quadrant(a: b, n: n, qi: 1, qj: 0)
  let b22 = quadrant(a: b, n: n, qi: 1, qj: 1)
  let m1 = strassen(a: mmAdd(a: a11, b: a22, n: h), b: mmAdd(a: b11, b: b22, n: h), n: h)
  let m2 = strassen(a: mmAdd(a: a21, b: a22, n: h), b: b11, n: h)
  let m3 = strassen(a: a11, b: mmSub(a: b12, b: b22, n: h), n: h)
  let m4 = strassen(a: a22, b: mmSub(a: b21, b: b11, n: h), n: h)
  let m5 = strassen(a: mmAdd(a: a11, b: a12, n: h), b: b22, n: h)
  let m6 = strassen(a: mmSub(a: a21, b: a11, n: h), b: mmAdd(a: b11, b: b12, n: h), n: h)
  let m7 = strassen(a: mmSub(a: a12, b: a22, n: h), b: mmAdd(a: b21, b: b22, n: h), n: h)
  var c = Array<Int>(n * n)
  for i in 0 ..< h {
    for j in 0 ..< h {
      let c11 = m1[i * h + j] + m4[i * h + j] - m5[i * h + j] + m7[i * h + j]
      let c12 = m3[i * h + j] + m5[i * h + j]
      let c21 = m2[i * h + j] + m4[i * h + j]
      let c22 = m1[i * h + j] - m2[i * h + j] + m3[i * h + j] + m6[i * h + j]
      c[i * n + j] = c11
      c[i * n + (j + h)] = c12
      c[(i + h) * n + j] = c21
      c[(i + h) * n + (j + h)] = c22
    }
  }
  return c
}
func main() {
  let n = 16
  var a = Array<Int>(n * n)
  var b = Array<Int>(n * n)
  for i in 0 ..< n * n {
    a[i] = (i * 7) % 13
    b[i] = (i * 5) % 11
  }
  let c = strassen(a: a, b: b, n: n)
  let ref = mmMulClassic(a: a, b: b, n: n)
  var diff = 0
  var check = 0
  for i in 0 ..< n * n {
    if c[i] != ref[i] { diff = diff + 1 }
    check = check + c[i] * (i % 9 + 1)
  }
  print(diff)
  print(check % 1000000)
}
