// Boyer-Moore-Horspool substring search over code-unit arrays.
func bmhSearch(text: [Int], pat: [Int]) -> Int {
  let m = pat.count
  let n = text.count
  if m == 0 || m > n { return 0 - 1 }
  var shift = Array<Int>(256)
  for i in 0 ..< 256 { shift[i] = m }
  for i in 0 ..< m - 1 { shift[pat[i] % 256] = m - 1 - i }
  var pos = 0
  while pos <= n - m {
    var j = m - 1
    while j >= 0 && text[pos + j] == pat[j] { j = j - 1 }
    if j < 0 { return pos }
    pos = pos + shift[text[pos + m - 1] % 256]
  }
  return 0 - 1
}
func main() {
  let n = 600
  var text = Array<Int>(n)
  for i in 0 ..< n { text[i] = (i * 37 + 11) % 26 + 97 }
  var pat = Array<Int>(5)
  for i in 0 ..< 5 { pat[i] = text[477 + i] }
  print(bmhSearch(text: text, pat: pat))
  pat[4] = 1
  print(bmhSearch(text: text, pat: pat))
}
