// Knuth-Morris-Pratt substring search.
func kmpSearch(text: [Int], pat: [Int]) -> Int {
  let m = pat.count
  var fail = Array<Int>(m)
  var k = 0
  for i in 1 ..< m {
    while k > 0 && pat[k] != pat[i] { k = fail[k - 1] }
    if pat[k] == pat[i] { k = k + 1 }
    fail[i] = k
  }
  var q = 0
  var found = 0
  var count = 0
  for i in 0 ..< text.count {
    while q > 0 && pat[q] != text[i] { q = fail[q - 1] }
    if pat[q] == text[i] { q = q + 1 }
    if q == m {
      if count == 0 { found = i - m + 1 }
      count = count + 1
      q = fail[q - 1]
    }
  }
  print(found)
  return count
}
func main() {
  let n = 700
  var text = Array<Int>(n)
  for i in 0 ..< n { text[i] = (i * 13 + 5) % 4 }
  var pat = Array<Int>(6)
  for i in 0 ..< 6 { pat[i] = (i * 13 + 5) % 4 }
  print(kmpSearch(text: text, pat: pat))
}
