// Run-length encode and decode, verifying a round trip.
func rleEncode(s: [Int]) -> [Int] {
  var out = Array<Int>(0)
  var i = 0
  while i < s.count {
    var run = 1
    while i + run < s.count && s[i + run] == s[i] { run = run + 1 }
    out = append(out, s[i])
    out = append(out, run)
    i = i + run
  }
  return out
}
func rleDecode(e: [Int]) -> [Int] {
  var out = Array<Int>(0)
  var i = 0
  while i < e.count {
    let sym = e[i]
    let run = e[i + 1]
    for k in 0 ..< run {
      out = append(out, sym)
      let unused = k
    }
    i = i + 2
  }
  return out
}
func main() {
  let n = 240
  var s = Array<Int>(n)
  for i in 0 ..< n { s[i] = (i / 9) % 5 }
  let enc = rleEncode(s: s)
  let dec = rleDecode(e: enc)
  var ok = 1
  for i in 0 ..< n { if dec[i] != s[i] { ok = 0 } }
  print(enc.count)
  print(ok)
}
