// Simulated annealing on a 1D integer energy landscape with a deterministic
// linear-congruential "temperature" schedule (integer arithmetic).
func energy(x: Int) -> Int {
  let a = (x - 311) * (x - 311) / 64
  let b = (x % 37) * 5
  return a + b
}
func main() {
  var rngState = 12345
  var x = 0
  var best = energy(x: x)
  var bestX = x
  var temp = 4096
  while temp > 1 {
    for step in 0 ..< 16 {
      rngState = (rngState * 1103515245 + 12345) % 2147483648
      if rngState < 0 { rngState = 0 - rngState }
      var delta = rngState % (temp / 16 + 1) - temp / 32
      if delta == 0 { delta = 1 }
      let cand = x + delta
      let e = energy(x: cand)
      let cur = energy(x: x)
      var accept = false
      if e < cur { accept = true } else {
        // Accept uphill moves with probability ~ temp (integer proxy).
        rngState = (rngState * 1103515245 + 12345) % 2147483648
        if rngState < 0 { rngState = 0 - rngState }
        if rngState % 4096 < temp / 4 { accept = true }
      }
      if accept { x = cand }
      if e < best {
        best = e
        bestX = cand
      }
      let unused = step
    }
    temp = temp * 9 / 10
  }
  print(best)
  print(bestX % 100)
}
