// Breadth-first search over an adjacency-matrix graph.
func bfs(adj: [Int], n: Int, start: Int) -> Int {
  var dist = Array<Int>(n)
  var visited = Array<Int>(n)
  for i in 0 ..< n { dist[i] = 0 - 1 }
  var queue = Array<Int>(n)
  var head = 0
  var tail = 0
  queue[tail] = start
  tail = tail + 1
  visited[start] = 1
  dist[start] = 0
  while head < tail {
    let u = queue[head]
    head = head + 1
    for v in 0 ..< n {
      if adj[u * n + v] == 1 && visited[v] == 0 {
        visited[v] = 1
        dist[v] = dist[u] + 1
        queue[tail] = v
        tail = tail + 1
      }
    }
  }
  var sum = 0
  for i in 0 ..< n { sum = sum + dist[i] }
  return sum
}
func main() {
  let n = 24
  var adj = Array<Int>(n * n)
  for i in 0 ..< n {
    let j = (i * 7 + 3) % n
    adj[i * n + j] = 1
    adj[j * n + i] = 1
    let k = (i + 1) % n
    adj[i * n + k] = 1
    adj[k * n + i] = 1
  }
  print(bfs(adj: adj, n: n, start: 0))
}
