// JSON-style parsing: a throwing initializer decodes fields from a keyed
// store (the paper's Listing 10 shape).
func lookup(store: [Int], key: Int) throws -> Int {
  if key < 0 { throw 1 }
  if key >= store.count { throw 2 }
  let v = store[key]
  if v == 0 - 999 { throw 3 }
  return v
}
class Record {
  var uuid: Int
  var dest: Int
  var fare: Int
  var eta: Int
  var rating: Int
  var surge: Int
  init(store: [Int], base: Int) throws {
    self.uuid = try lookup(store: store, key: base)
    self.dest = try lookup(store: store, key: base + 1)
    self.fare = try lookup(store: store, key: base + 2)
    self.eta = try lookup(store: store, key: base + 3)
    self.rating = try lookup(store: store, key: base + 4)
    self.surge = try lookup(store: store, key: base + 5)
  }
  func sum() -> Int {
    return self.uuid + self.dest + self.fare + self.eta + self.rating + self.surge
  }
}
func main() {
  var store = Array<Int>(600)
  for i in 0 ..< 600 { store[i] = i * 3 + 1 }
  store[123] = 0 - 999
  var ok = 0
  var failed = 0
  var total = 0
  for r in 0 ..< 95 {
    do {
      let rec = try Record(store: store, base: r * 6)
      ok = ok + 1
      total = total + rec.sum()
    } catch {
      failed = failed + error
    }
  }
  print(ok)
  print(failed)
  print(total % 100000)
}
