// Closest pair of 2D integer points (divide and conquer on x-sorted input,
// squared distances; integer arithmetic only).
func dist2(xs: [Int], ys: [Int], i: Int, j: Int) -> Int {
  let dx = xs[i] - xs[j]
  let dy = ys[i] - ys[j]
  return dx * dx + dy * dy
}
func closest(xs: [Int], ys: [Int], lo: Int, hi: Int) -> Int {
  if hi - lo < 1 { return 1000000000 }
  if hi - lo <= 3 {
    var best = 1000000000
    for i in lo ..< hi + 1 {
      for j in i + 1 ..< hi + 1 {
        let d = dist2(xs: xs, ys: ys, i: i, j: j)
        if d < best { best = d }
      }
    }
    return best
  }
  let mid = (lo + hi) / 2
  let dl = closest(xs: xs, ys: ys, lo: lo, hi: mid)
  let dr = closest(xs: xs, ys: ys, lo: mid + 1, hi: hi)
  var best = dl
  if dr < best { best = dr }
  // strip check (points are x-sorted)
  for i in lo ..< hi + 1 {
    let dx = xs[i] - xs[mid]
    if dx * dx <= best {
      for j in i + 1 ..< hi + 1 {
        let ddx = xs[j] - xs[i]
        if ddx * ddx <= best {
          let d = dist2(xs: xs, ys: ys, i: i, j: j)
          if d < best { best = d }
        }
      }
    }
  }
  return best
}
func main() {
  let n = 80
  var xs = Array<Int>(n)
  var ys = Array<Int>(n)
  for i in 0 ..< n {
    xs[i] = i * 13 + (i * i) % 7
    ys[i] = (i * 997) % 1009
  }
  print(closest(xs: xs, ys: ys, lo: 0, hi: n - 1))
}
