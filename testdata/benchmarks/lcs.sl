// Longest common subsequence length by dynamic programming.
func lcs(a: [Int], b: [Int]) -> Int {
  let n = a.count
  let m = b.count
  var dp = Array<Int>((n + 1) * (m + 1))
  for i in 1 ..< n + 1 {
    for j in 1 ..< m + 1 {
      if a[i - 1] == b[j - 1] {
        dp[i * (m + 1) + j] = dp[(i - 1) * (m + 1) + j - 1] + 1
      } else {
        let up = dp[(i - 1) * (m + 1) + j]
        let left = dp[i * (m + 1) + j - 1]
        if up > left { dp[i * (m + 1) + j] = up } else { dp[i * (m + 1) + j] = left }
      }
    }
  }
  return dp[n * (m + 1) + m]
}
func main() {
  let n = 90
  var a = Array<Int>(n)
  var b = Array<Int>(n)
  for i in 0 ..< n {
    a[i] = (i * 7 + 1) % 10
    b[i] = (i * 11 + 3) % 10
  }
  print(lcs(a: a, b: b))
}
