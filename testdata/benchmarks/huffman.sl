// Huffman coding: build the tree from frequencies, sum weighted depths.
func huffmanCost(freq: [Int]) -> Int {
  let n = freq.count
  var weight = Array<Int>(2 * n)
  var alive = Array<Int>(2 * n)
  var count = n
  for i in 0 ..< n {
    weight[i] = freq[i]
    alive[i] = 1
  }
  var cost = 0
  var remaining = n
  while remaining > 1 {
    // find two smallest alive weights
    var a = 0 - 1
    var b = 0 - 1
    for i in 0 ..< count {
      if alive[i] == 1 {
        if a < 0 || weight[i] < weight[a] {
          b = a
          a = i
        } else {
          if b < 0 || weight[i] < weight[b] { b = i }
        }
      }
    }
    alive[a] = 0
    alive[b] = 0
    weight[count] = weight[a] + weight[b]
    alive[count] = 1
    cost = cost + weight[count]
    count = count + 1
    remaining = remaining - 1
  }
  return cost
}
func main() {
  var freq = Array<Int>(32)
  for i in 0 ..< 32 { freq[i] = (i * i + 5) % 97 + 1 }
  print(huffmanCost(freq: freq))
}
