// Greatest common divisor (Euclid) over many pairs.
func gcd(a: Int, b: Int) -> Int {
  var x = a
  var y = b
  while y != 0 {
    let t = x % y
    x = y
    y = t
  }
  return x
}
func main() {
  var sum = 0
  for i in 1 ..< 150 {
    for j in 1 ..< 40 {
      sum = sum + gcd(a: i * 12, b: j * 18)
    }
  }
  print(sum)
}
