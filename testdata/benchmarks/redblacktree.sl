// Red-black tree (insert only) with explicit rotations.
class RBNode {
  var key: Int
  var red: Bool
  var left: RBNode?
  var right: RBNode?
  var parent: RBNode?
  init(key: Int) {
    self.key = key
    self.red = true
    self.left = nil
    self.right = nil
    self.parent = nil
  }
}
class RBTree {
  var root: RBNode?
  init() { self.root = nil }
  func rotateLeft(x: RBNode) {
    if let y = x.right {
      x.right = y.left
      if let yl = y.left { yl.parent = x }
      y.parent = x.parent
      if x.parent == nil {
        self.root = y
      } else {
        if let p = x.parent {
          if p.left == x { p.left = y } else { p.right = y }
        }
      }
      y.left = x
      x.parent = y
    }
  }
  func rotateRight(x: RBNode) {
    if let y = x.left {
      x.left = y.right
      if let yr = y.right { yr.parent = x }
      y.parent = x.parent
      if x.parent == nil {
        self.root = y
      } else {
        if let p = x.parent {
          if p.right == x { p.right = y } else { p.left = y }
        }
      }
      y.right = x
      x.parent = y
    }
  }
  func insert(key: Int) {
    let node = RBNode(key: key)
    var parent: RBNode? = nil
    var cur = self.root
    while cur != nil {
      if let c = cur {
        parent = c
        if key < c.key { cur = c.left } else { cur = c.right }
      }
    }
    node.parent = parent
    if parent == nil {
      self.root = node
    } else {
      if let p = parent {
        if key < p.key { p.left = node } else { p.right = node }
      }
    }
    self.fixup(z: node)
  }
  func isRed(n: RBNode?) -> Bool {
    if let x = n { return x.red }
    return false
  }
  func fixup(z: RBNode) {
    var cur = z
    while self.isRed(n: cur.parent) {
      var advanced = false
      if let p = cur.parent {
        if let g = p.parent {
          if g.left == p {
            if self.isRed(n: g.right) {
              p.red = false
              if let u = g.right { u.red = false }
              g.red = true
              cur = g
              advanced = true
            } else {
              if p.right == cur {
                cur = p
                self.rotateLeft(x: cur)
              }
              if let p2 = cur.parent {
                p2.red = false
                if let g2 = p2.parent {
                  g2.red = true
                  self.rotateRight(x: g2)
                }
              }
            }
          } else {
            if self.isRed(n: g.left) {
              p.red = false
              if let u = g.left { u.red = false }
              g.red = true
              cur = g
              advanced = true
            } else {
              if p.left == cur {
                cur = p
                self.rotateRight(x: cur)
              }
              if let p2 = cur.parent {
                p2.red = false
                if let g2 = p2.parent {
                  g2.red = true
                  self.rotateLeft(x: g2)
                }
              }
            }
          }
        }
      }
      let unused = advanced
    }
    if let r = self.root { r.red = false }
  }
  func blackHeight(n: RBNode?) -> Int {
    if n == nil { return 1 }
    var h = 0
    if let x = n {
      h = self.blackHeight(n: x.left)
      if x.red == false { h = h + 1 }
    }
    return h
  }
  func count(n: RBNode?) -> Int {
    if n == nil { return 0 }
    var c = 0
    if let x = n { c = 1 + self.count(n: x.left) + self.count(n: x.right) }
    return c
  }
}
func main() {
  let t = RBTree()
  for i in 0 ..< 120 { t.insert(key: (i * 37) % 251) }
  print(t.count(n: t.root))
  print(t.blackHeight(n: t.root))
}
