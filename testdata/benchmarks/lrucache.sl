// LRU cache as a doubly linked list over parallel arrays plus a hash map.
class LRU {
  var cap: Int
  var size: Int
  var keys: [Int]
  var vals: [Int]
  var prev: [Int]
  var next: [Int]
  var head: Int
  var tail: Int
  init(cap: Int) {
    self.cap = cap
    self.size = 0
    self.keys = Array<Int>(cap)
    self.vals = Array<Int>(cap)
    self.prev = Array<Int>(cap)
    self.next = Array<Int>(cap)
    self.head = 0 - 1
    self.tail = 0 - 1
  }
  func find(k: Int) -> Int {
    for i in 0 ..< self.size { if self.keys[i] == k { return i } }
    return 0 - 1
  }
  func moveToFront(i: Int) {
    if self.head == i { return }
    // unlink
    if self.prev[i] >= 0 { self.next[self.prev[i]] = self.next[i] }
    if self.next[i] >= 0 { self.prev[self.next[i]] = self.prev[i] }
    if self.tail == i { self.tail = self.prev[i] }
    // push front
    self.prev[i] = 0 - 1
    self.next[i] = self.head
    if self.head >= 0 { self.prev[self.head] = i }
    self.head = i
    if self.tail < 0 { self.tail = i }
  }
  func put(k: Int, v: Int) {
    let at = self.find(k: k)
    if at >= 0 {
      self.vals[at] = v
      self.moveToFront(i: at)
      return
    }
    var slot = self.size
    if self.size == self.cap {
      slot = self.tail
      self.tail = self.prev[slot]
      if self.tail >= 0 { self.next[self.tail] = 0 - 1 }
      self.prev[slot] = 0 - 1
    } else {
      self.size = self.size + 1
      self.prev[slot] = 0 - 1
      self.next[slot] = 0 - 1
    }
    self.keys[slot] = k
    self.vals[slot] = v
    if slot != self.head {
      self.next[slot] = self.head
      if self.head >= 0 { self.prev[self.head] = slot }
      self.head = slot
      if self.tail < 0 { self.tail = slot }
    }
  }
  func get(k: Int) -> Int {
    let at = self.find(k: k)
    if at < 0 { return 0 - 1 }
    self.moveToFront(i: at)
    return self.vals[at]
  }
}
func main() {
  let c = LRU(cap: 16)
  var hits = 0
  for i in 0 ..< 400 {
    let k = (i * i) % 40
    let v = c.get(k: k)
    if v >= 0 { hits = hits + 1 } else { c.put(k: k, v: i) }
  }
  print(hits)
}
