// Binomial coefficients via Pascal's triangle, plus permutation counts.
func binomial(n: Int, k: Int) -> Int {
  var row = Array<Int>(n + 1)
  row[0] = 1
  for i in 1 ..< n + 1 {
    var j = i
    while j > 0 {
      row[j] = row[j] + row[j - 1]
      j = j - 1
    }
  }
  return row[k]
}
func permutations(n: Int, k: Int) -> Int {
  var p = 1
  for i in 0 ..< k { p = p * (n - i) }
  return p
}
func main() {
  var sum = 0
  for n in 1 ..< 20 {
    for k in 0 ..< n { sum = sum + binomial(n: n, k: k) % 10007 }
  }
  print(sum)
  print(permutations(n: 10, k: 5))
}
