// In-place quicksort (Hoare-style recursion on index ranges).
func quicksort(a: [Int], lo: Int, hi: Int) {
  if lo >= hi { return }
  let pivot = a[(lo + hi) / 2]
  var i = lo
  var j = hi
  while i <= j {
    while a[i] < pivot { i = i + 1 }
    while a[j] > pivot { j = j - 1 }
    if i <= j {
      let t = a[i]
      a[i] = a[j]
      a[j] = t
      i = i + 1
      j = j - 1
    }
  }
  quicksort(a: a, lo: lo, hi: j)
  quicksort(a: a, lo: i, hi: hi)
}
func main() {
  let n = 200
  var a = Array<Int>(n)
  for i in 0 ..< n { a[i] = (i * 7919 + 13) % 1000 }
  quicksort(a: a, lo: 0, hi: n - 1)
  var check = 0
  for i in 0 ..< n { check = check + a[i] * (i + 1) }
  print(check)
  print(a[0])
  print(a[n - 1])
}
