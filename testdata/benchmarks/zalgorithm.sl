// Z-algorithm: longest common prefix of s and each suffix.
func zArray(s: [Int]) -> [Int] {
  let n = s.count
  var z = Array<Int>(n)
  z[0] = n
  var l = 0
  var r = 0
  for i in 1 ..< n {
    if i < r {
      let cand = z[i - l]
      let lim = r - i
      if cand < lim { z[i] = cand } else { z[i] = lim }
    }
    while i + z[i] < n && s[z[i]] == s[i + z[i]] { z[i] = z[i] + 1 }
    if i + z[i] > r {
      l = i
      r = i + z[i]
    }
  }
  return z
}
func main() {
  let n = 500
  var s = Array<Int>(n)
  for i in 0 ..< n { s[i] = (i / 3) % 3 }
  let z = zArray(s: s)
  var sum = 0
  for i in 0 ..< n { sum = sum + z[i] }
  print(sum)
}
