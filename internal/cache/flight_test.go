package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func flightKey(n int) Key {
	return Key{Stage: "llir", Input: fmt.Sprintf("input-%d", n), Config: "cfg", Schema: 1}
}

// TestFlightDedupesConcurrentCalls is the core single-flight property: many
// concurrent callers on one key produce exactly one execution, and every
// caller receives the leader's bytes.
func TestFlightDedupesConcurrentCalls(t *testing.T) {
	f := NewFlight()
	const callers = 32
	var execs atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([][]byte, callers)
	shared := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, sh, err := f.Do(flightKey(0), func() ([]byte, error) {
				execs.Add(1)
				<-release // hold the flight open until every caller has arrived
				return []byte("artifact"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = data
			shared[i] = sh
		}(i)
	}
	// Wait until the group has one leader and callers-1 waiters, then release.
	for {
		execsN, waits := f.Stats()
		if execsN == 1 && waits == callers-1 {
			break
		}
	}
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", n)
	}
	var sharedN int
	for i := range results {
		if string(results[i]) != "artifact" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if shared[i] {
			sharedN++
		}
	}
	if sharedN != callers-1 {
		t.Fatalf("%d callers reported shared, want %d", sharedN, callers-1)
	}
}

// TestFlightDistinctKeysDoNotShare: different keys never share an execution.
func TestFlightDistinctKeysDoNotShare(t *testing.T) {
	f := NewFlight()
	var execs atomic.Int64
	var wg sync.WaitGroup
	const keys = 8
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _, err := f.Do(flightKey(i), func() ([]byte, error) {
				execs.Add(1)
				return []byte(fmt.Sprintf("artifact-%d", i)), nil
			})
			if err != nil || string(data) != fmt.Sprintf("artifact-%d", i) {
				t.Errorf("key %d: data=%q err=%v", i, data, err)
			}
		}(i)
	}
	wg.Wait()
	if n := execs.Load(); n != keys {
		t.Fatalf("fn executed %d times, want %d (one per key)", n, keys)
	}
}

// TestFlightErrorsAreNotSticky: a failed execution is forgotten immediately;
// the next Do on the same key executes again and can succeed.
func TestFlightErrorsAreNotSticky(t *testing.T) {
	f := NewFlight()
	boom := errors.New("boom")
	if _, _, err := f.Do(flightKey(0), func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	data, shared, err := f.Do(flightKey(0), func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || shared || string(data) != "ok" {
		t.Fatalf("second Do = %q, shared=%t, err=%v; want fresh successful execution", data, shared, err)
	}
}

// TestFlightLeaderPanicReleasesWaiters: a panicking leader must propagate its
// panic (the pipeline's panic isolation depends on it) while waiters degrade
// to ErrFlightAborted instead of hanging.
func TestFlightLeaderPanicReleasesWaiters(t *testing.T) {
	f := NewFlight()
	entered := make(chan struct{})

	var waitErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-entered
		_, _, waitErr = f.Do(flightKey(0), func() ([]byte, error) {
			t.Error("waiter executed fn after leader panic path was claimed")
			return nil, nil
		})
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do(flightKey(0), func() ([]byte, error) {
			close(entered)
			// Panic only once the waiter has joined the flight, so the test
			// deterministically exercises the abort path.
			for {
				if _, waits := f.Stats(); waits == 1 {
					break
				}
			}
			panic("injected leader panic")
		})
	}()
	wg.Wait()

	// The waiter either joined the doomed flight (ErrFlightAborted) or
	// arrived after cleanup and led its own execution — but the test's fn
	// errors in that case, so only the abort path is a valid success here.
	if waitErr != nil && !errors.Is(waitErr, ErrFlightAborted) {
		t.Fatalf("waiter err = %v, want ErrFlightAborted", waitErr)
	}
}

// TestFlightNilIsDirect: a nil Flight executes fn directly — the non-service
// pipeline path.
func TestFlightNilIsDirect(t *testing.T) {
	var f *Flight
	data, shared, err := f.Do(flightKey(0), func() ([]byte, error) { return []byte("x"), nil })
	if err != nil || shared || string(data) != "x" {
		t.Fatalf("nil flight Do = %q, shared=%t, err=%v", data, shared, err)
	}
	if e, w := f.Stats(); e != 0 || w != 0 {
		t.Fatalf("nil flight Stats = %d, %d", e, w)
	}
}
