package cache

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"outliner/internal/fault"
)

// remoteFixture is one Cache wired to n live shard servers, with backoff
// sleeps virtualized so retry paths run at full speed.
type remoteFixture struct {
	c      *Cache
	remote *Remote
	stores []*ShardStore
	srvs   []*httptest.Server
}

func newRemoteFixture(t *testing.T, shards int) *remoteFixture {
	t.Helper()
	fx := &remoteFixture{}
	var urls []string
	for i := 0; i < shards; i++ {
		s, err := OpenShard(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewShardServer(s))
		t.Cleanup(srv.Close)
		fx.stores = append(fx.stores, s)
		fx.srvs = append(fx.srvs, srv)
		urls = append(urls, srv.URL)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fx.remote = NewRemote(urls)
	fx.remote.sleep = func(time.Duration) {}
	c.SetRemote(fx.remote)
	fx.c = c
	return fx
}

// freshCache returns a second cache over its own directory sharing fx's
// remote tier — "another build machine" in miniature.
func (fx *remoteFixture) freshCache(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRemote(fx.remote)
	return c
}

func remoteKey(s string) Key {
	return Key{Stage: "llir", Input: s, Config: "cfg", Schema: 1}
}

// TestRemotePutThenRemoteHit: a publication replicates to the owning shard,
// and a different machine's probe is served by that shard, attributed via
// Probe.Tier, then promoted locally so the next probe is a local hit.
func TestRemotePutThenRemoteHit(t *testing.T) {
	fx := newRemoteFixture(t, 3)
	k := remoteKey("alpha")
	fx.c.Put(k, []byte("artifact-alpha"))

	other := fx.freshCache(t)
	data, ok, pr := other.GetProbe(k)
	if !ok || string(data) != "artifact-alpha" {
		t.Fatalf("remote probe = %q, %v", data, ok)
	}
	wantTier := TierName(fx.remote.ShardFor(k.id()))
	if pr.Tier != wantTier {
		t.Fatalf("Probe.Tier = %q, want %q", pr.Tier, wantTier)
	}
	// Promotion: the same cache's next probe must be served locally.
	if _, ok, pr := other.GetProbe(k); !ok || pr.Tier != "memory" {
		t.Fatalf("post-promotion probe tier = %q, %v; want memory hit", pr.Tier, ok)
	}
	// And a third cache (fresh memory, fresh disk) hits disk after its own
	// remote promotion round-trips through the entry file.
	third := fx.freshCache(t)
	if _, ok, pr := third.GetProbe(k); !ok || !strings.HasPrefix(pr.Tier, "remote-shard-") {
		t.Fatalf("third machine probe tier = %q, %v; want remote hit", pr.Tier, ok)
	}
	third.mu.Lock()
	third.mem = map[string][]byte{}
	third.memBytes = 0
	third.mu.Unlock()
	if _, ok, pr := third.GetProbe(k); !ok || pr.Tier != "disk" {
		t.Fatalf("promoted-to-disk probe tier = %q, %v; want disk hit", pr.Tier, ok)
	}
}

// TestRemoteDeadShardDegradesToMiss: with a shard's listener closed, probes
// that route to it degrade to misses (recording the error on the probe) and
// publications degrade to unpublished — never an error return, never a hang.
func TestRemoteDeadShardDegradesToMiss(t *testing.T) {
	fx := newRemoteFixture(t, 2)
	k := remoteKey("beta")
	shard := fx.remote.ShardFor(k.id())
	fx.srvs[shard].Close()

	pr := fx.c.PutProbe(k, []byte("artifact-beta"))
	if pr.RemoteErr == nil {
		t.Fatal("publication to a dead shard reported no RemoteErr")
	}
	other := fx.freshCache(t)
	data, ok, pr := other.GetProbe(k)
	if ok {
		t.Fatalf("dead shard served a hit: %q", data)
	}
	if pr.RemoteErr == nil {
		t.Fatal("probe against a dead shard reported no RemoteErr")
	}
	// The local tiers still work: the publisher's own probe is a memory hit.
	if _, ok, pr := fx.c.GetProbe(k); !ok || pr.Tier != "memory" {
		t.Fatalf("publisher's local probe = %q, %v", pr.Tier, ok)
	}
}

// TestRemoteCorruptEntryDeletedAndRepublished: a shard serving damaged bytes
// is treated exactly like a damaged disk entry — miss, delete, and the next
// publication republishes a good copy that then hits.
func TestRemoteCorruptEntryDeletedAndRepublished(t *testing.T) {
	fx := newRemoteFixture(t, 2)
	k := remoteKey("gamma")
	id := k.id()
	fx.c.Put(k, []byte("artifact-gamma"))

	// Damage the entry inside the owning shard's store (behind the HTTP
	// server's back, as bit rot would).
	shard := fx.remote.ShardFor(id)
	store := fx.stores[shard]
	path := store.path(id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The shard's own validator catches this on Get — so the client sees a
	// plain miss and the shard deletes the entry itself.
	other := fx.freshCache(t)
	if _, ok, _ := other.GetProbe(k); ok {
		t.Fatal("damaged remote entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("damaged entry still resident in shard")
	}
	// Republish and the remote path works again end to end.
	other.Put(k, []byte("artifact-gamma"))
	third := fx.freshCache(t)
	if data, ok, _ := third.GetProbe(k); !ok || string(data) != "artifact-gamma" {
		t.Fatalf("republished entry = %q, %v", data, ok)
	}
}

// TestRemoteClientSideCorruptionDropsEntry covers the second damage path: the
// shard serves bytes that fail the *client's* validation (damaged in flight).
// The client must degrade to a miss and delete the entry from the shard.
func TestRemoteClientSideCorruptionDropsEntry(t *testing.T) {
	fx := newRemoteFixture(t, 1)
	k := remoteKey("delta")
	id := k.id()
	fx.c.Put(k, []byte("artifact-delta"))

	other := fx.freshCache(t)
	inj := fault.Exact(fault.At{Site: fault.RemoteGet, Key: id, Kind: fault.CorruptKind})
	fx.remote.SetFault(inj)
	defer fx.remote.SetFault(nil)
	_, ok, pr := other.GetProbe(k)
	if ok {
		t.Fatal("in-flight-damaged response served as a hit")
	}
	if !pr.Corrupt {
		t.Fatal("client-side corruption not recorded on the probe")
	}
	// The drop is fire-and-forget over HTTP; it completed synchronously
	// inside GetProbe, so the store must no longer hold the entry.
	if _, err := os.Stat(fx.stores[0].path(id)); !os.IsNotExist(err) {
		t.Fatal("damaged entry not dropped from shard")
	}
}

// TestRemoteShardRoutingIsDeterministic: ShardFor is a pure function — every
// client maps an id to the same shard — and ids spread across shards.
func TestRemoteShardRoutingIsDeterministic(t *testing.T) {
	a := NewRemote([]string{"http://a", "http://b", "http://c"})
	b := NewRemote([]string{"http://x", "http://y", "http://z"})
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		id := remoteKey(strings.Repeat("q", i+1)).id()
		sa, sb := a.ShardFor(id), b.ShardFor(id)
		if sa != sb {
			t.Fatalf("id %d routed to %d and %d by identical-size rings", i, sa, sb)
		}
		seen[sa] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 ids used only shards %v, want all 3", seen)
	}
}

// TestRemoteTransientErrorRetriesThenHits: a transient injected error on the
// first attempt heals on retry, costing only a recorded retry.
func TestRemoteTransientErrorRetriesThenHits(t *testing.T) {
	fx := newRemoteFixture(t, 1)
	k := remoteKey("epsilon")
	id := k.id()
	fx.c.Put(k, []byte("artifact-epsilon"))

	other := fx.freshCache(t)
	inj := fault.Exact(fault.At{Site: fault.RemoteGet, Key: id + "#0", Kind: fault.ErrorKind, Transient: true})
	fx.remote.SetFault(inj)
	defer fx.remote.SetFault(nil)
	data, ok, pr := other.GetProbe(k)
	if !ok || !bytes.Equal(data, []byte("artifact-epsilon")) {
		t.Fatalf("probe after transient blip = %q, %v", data, ok)
	}
	if pr.Retries == 0 {
		t.Fatal("transient remote error recorded no retry")
	}
}

// TestRemoteCountersAndDrain: per-shard counters accumulate, and
// DrainCounters hands out deltas exactly once.
func TestRemoteCountersAndDrain(t *testing.T) {
	fx := newRemoteFixture(t, 2)
	k := remoteKey("zeta")
	fx.c.Put(k, []byte("artifact-zeta"))
	fx.freshCache(t).Get(k)

	shard := fx.remote.ShardFor(k.id())
	prefix := "cache/remote/shard" + string(rune('0'+shard)) + "/"
	snap := fx.remote.Counters()
	if snap[prefix+"puts"] != 1 || snap[prefix+"hits"] != 1 {
		t.Fatalf("counters = %v, want one put and one hit on shard %d", snap, shard)
	}
	first := fx.remote.DrainCounters()
	if first[prefix+"puts"] != 1 || first[prefix+"hits"] != 1 {
		t.Fatalf("first drain = %v", first)
	}
	second := fx.remote.DrainCounters()
	for name, v := range second {
		if !strings.HasSuffix(name, "/inflight") && v != 0 {
			t.Fatalf("second drain re-delivered %s=%d", name, v)
		}
	}
	// Lifetime totals keep reporting after drains.
	if snap := fx.remote.Counters(); snap[prefix+"puts"] != 1 {
		t.Fatalf("lifetime counters lost after drain: %v", snap)
	}
}

// TestRemoteFilesStayInsideShardDir: the entry id is the only name component
// a client controls; confirm a published entry lands inside the shard
// directory under its content address.
func TestRemoteFilesStayInsideShardDir(t *testing.T) {
	fx := newRemoteFixture(t, 1)
	k := remoteKey("eta")
	fx.c.Put(k, []byte("artifact-eta"))
	matches, err := filepath.Glob(filepath.Join(fx.stores[0].dir, "*.art"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("shard dir holds %v (err %v), want exactly one entry", matches, err)
	}
	if filepath.Base(matches[0]) != k.id()+".art" {
		t.Fatalf("entry stored as %s, want %s.art", filepath.Base(matches[0]), k.id())
	}
}
