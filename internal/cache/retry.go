package cache

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"syscall"
	"time"

	"outliner/internal/fault"
)

// Class buckets a disk I/O error for the retry policy. The cache never
// propagates any of these as a build failure — every class ultimately
// degrades to a miss (Get) or an unpublished entry (Put); the class only
// decides whether retrying first is worth it.
type Class int

const (
	// ClassTransient: a flaky-disk style blip (interrupted syscall, busy
	// file, generic I/O error, descriptor exhaustion, timeout). Retried
	// with capped exponential backoff.
	ClassTransient Class = iota
	// ClassCorrupt: the entry read fine but failed validation (magic,
	// length, checksum). Retrying the read would return the same bytes;
	// the entry is discarded instead.
	ClassCorrupt
	// ClassFatal: the environment says no (disk full, read-only
	// filesystem, permissions). Retrying cannot help; degrade immediately.
	ClassFatal
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorrupt:
		return "corrupt"
	case ClassFatal:
		return "fatal"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ErrCorrupt is wrapped by every entry-validation failure, so
// Classify(err) == ClassCorrupt exactly when decodeEntry rejected the bytes.
var ErrCorrupt = errors.New("corrupt cache entry")

// fatalErrnos end a retry loop immediately: the condition is environmental
// and a fourth attempt fails like the first.
var fatalErrnos = []syscall.Errno{
	syscall.ENOSPC, syscall.EROFS, syscall.EACCES, syscall.EPERM,
}

// transientErrnos document the expected flaky-I/O shapes. The list is not a
// gate — Classify treats every unrecognized error as transient, because one
// wasted retry is cheaper than misclassifying a recoverable blip as fatal.
var transientErrnos = []syscall.Errno{
	syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.EIO,
	syscall.ENFILE, syscall.EMFILE, syscall.ETIMEDOUT,
}

// Classify buckets err for the retry policy. Injected fault errors classify
// by their Transient bit so chaos schedules exercise both retry outcomes.
func Classify(err error) Class {
	if errors.Is(err, ErrCorrupt) {
		return ClassCorrupt
	}
	var fe *fault.Error
	if errors.As(err, &fe) {
		if fe.Transient {
			return ClassTransient
		}
		return ClassFatal
	}
	for _, errno := range fatalErrnos {
		if errors.Is(err, errno) {
			return ClassFatal
		}
	}
	return ClassTransient
}

// Retry policy: up to retryAttempts tries per disk operation, sleeping
// retryBase·2^(attempt−1) capped at retryCap between tries. The backoff
// touches only the wall clock, never cache keys or artifact bytes, so
// retries cannot perturb build determinism.
const (
	retryAttempts = 4
	retryBase     = time.Millisecond
	retryCap      = 10 * time.Millisecond
)

// Probe reports what a Get/Put survived, beyond hit/miss: the pipeline
// turns these into obs counters (cache/retries, cache/remove_failed,
// cache/io_errors) so degraded builds stay visible in -summary.
type Probe struct {
	Retries   int   // transient-I/O retries performed
	Corrupt   bool  // a damaged disk entry was detected and discarded
	RemoveErr error // deleting the damaged entry failed (entry left behind)
	IOErr     error // final I/O error the operation degraded over, if any
	RemoteErr error // remote-shard error the operation degraded over, if any
	// Tier names the tier that served a hit — "memory", "disk", or
	// "remote-shard-<n>" — and is empty on a miss (or a Put). The -summary
	// scoreboard uses it to attribute multi-tier hits.
	Tier string
}

// merge folds another operation's probe into p (the pipeline aggregates one
// probe across a get-then-put sequence).
func (p *Probe) Merge(q Probe) {
	p.Retries += q.Retries
	p.Corrupt = p.Corrupt || q.Corrupt
	if p.RemoveErr == nil {
		p.RemoveErr = q.RemoveErr
	}
	if p.IOErr == nil {
		p.IOErr = q.IOErr
	}
	if p.RemoteErr == nil {
		p.RemoteErr = q.RemoteErr
	}
	if p.Tier == "" {
		p.Tier = q.Tier
	}
}

// SetFault arms deterministic fault injection on this cache's disk I/O
// paths. Arm only private (Open) instances: a Shared cache would leak
// injected faults into unrelated builds in the same process.
func (c *Cache) SetFault(inj *fault.Injector) {
	if c != nil {
		c.fault = inj
	}
}

// backoff sleeps before retry attempt (attempt ≥ 1), via the injectable
// clock so tests run at full speed.
func (c *Cache) backoff(attempt int) {
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	time.Sleep(d)
}

// removeEntry deletes a damaged entry file, via the injectable remover so
// tests can simulate an undeletable entry (chmod tricks don't work when the
// test runs as root).
func (c *Cache) removeEntry(path string) error {
	if c.remove != nil {
		return c.remove(path)
	}
	return os.Remove(path)
}

// readEntry reads the raw entry file with transient-error retry. A
// not-exist error returns immediately (a plain miss, not a fault); fatal
// errors end the loop; everything else retries with backoff. Each attempt
// re-rolls the fault schedule under its own key, so an injected transient
// blip on attempt 0 can heal on attempt 1 — the shape a retry loop exists
// for. A done ctx aborts the loop between attempts — a cancelled build
// stops retrying and degrades to a miss.
func (c *Cache) readEntry(ctx context.Context, id, path string, pr *Probe) ([]byte, error) {
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			pr.Retries++
			c.backoff(attempt)
		}
		ierr := c.fault.MaybeError(fault.CacheRead, fmt.Sprintf("%s#%d", id, attempt))
		var raw []byte
		if ierr == nil {
			raw, ierr = os.ReadFile(path)
		}
		if ierr == nil {
			return raw, nil
		}
		err = ierr
		if errors.Is(err, fs.ErrNotExist) || Classify(err) == ClassFatal {
			break
		}
	}
	return nil, err
}

// writeEntry publishes an encoded entry with transient-error retry, using
// the temp-file + atomic-rename protocol from the Put documentation. A done
// ctx aborts the loop between attempts; the rename protocol guarantees no
// torn entry regardless of where the abort lands.
func (c *Cache) writeEntry(ctx context.Context, id string, enc []byte, pr *Probe) error {
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			pr.Retries++
			c.backoff(attempt)
		}
		ierr := c.tryWrite(id, attempt, enc)
		if ierr == nil {
			return nil
		}
		err = ierr
		if Classify(err) == ClassFatal {
			break
		}
	}
	return err
}

func (c *Cache) tryWrite(id string, attempt int, enc []byte) error {
	if err := c.fault.MaybeError(fault.CacheWrite, fmt.Sprintf("%s#%d", id, attempt)); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(enc)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	// Atomic publication: readers see either no entry or a complete one.
	if err := os.Rename(tmp.Name(), c.entryPath(id)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
