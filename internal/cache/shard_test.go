package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

func shardID(n int) string { return fmt.Sprintf("%040x", n) }

// shardEntry returns a valid encoded entry whose payload has the given size.
func shardEntry(seed byte, size int) []byte {
	payload := bytes.Repeat([]byte{seed}, size)
	return encodeEntry(payload)
}

// TestShardCapNeverExceeded is the LRU property test: under a seeded random
// mix of puts and gets, the resident size never exceeds the cap after any
// operation, and every storable entry is accepted.
func TestShardCapNeverExceeded(t *testing.T) {
	const capBytes = 4096
	s, err := OpenShard(t.TempDir(), capBytes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260807))
	for op := 0; op < 500; op++ {
		id := shardID(rng.Intn(40))
		if rng.Intn(3) == 0 {
			s.Get(id)
		} else {
			enc := shardEntry(byte(op), rng.Intn(1500)+1)
			stored := s.Put(id, enc)
			if int64(len(enc)) <= capBytes && !stored {
				t.Fatalf("op %d: shard rejected a storable %d-byte entry", op, len(enc))
			}
		}
		if b := s.Bytes(); b > capBytes {
			t.Fatalf("op %d: resident %d bytes exceeds cap %d", op, b, capBytes)
		}
	}
	if s.Len() == 0 {
		t.Fatal("shard ended empty — the sequence never kept an entry resident")
	}
}

// TestShardDeterministicEviction: eviction is a pure function of the access
// sequence. Two shards replaying the same seeded operations report identical
// eviction orders via the evict hook.
func TestShardDeterministicEviction(t *testing.T) {
	run := func() []string {
		s, err := OpenShard(t.TempDir(), 2048)
		if err != nil {
			t.Fatal(err)
		}
		var evicted []string
		s.SetEvictHook(func(id string) { evicted = append(evicted, id) })
		rng := rand.New(rand.NewSource(7))
		for op := 0; op < 300; op++ {
			id := shardID(rng.Intn(24))
			if rng.Intn(4) == 0 {
				s.Get(id)
			} else {
				s.Put(id, shardEntry(byte(op%251), rng.Intn(700)+1))
			}
		}
		return evicted
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("sequence caused no evictions — cap too generous for the test to mean anything")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("eviction order diverged between identical replays:\n  %v\n  %v", first, second)
	}
}

// TestShardLRUOrder pins the eviction policy itself: touching an entry
// protects it, and the least-recently-used entry is the victim.
func TestShardLRUOrder(t *testing.T) {
	// Three 1000-byte-payload entries fit under the cap; a fourth forces one
	// eviction. entrySize = payload + header + checksum, so size the cap off
	// a real encoding.
	enc := shardEntry(1, 1000)
	s, err := OpenShard(t.TempDir(), int64(len(enc))*3)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	s.SetEvictHook(func(id string) { evicted = append(evicted, id) })
	for i := 0; i < 3; i++ {
		if !s.Put(shardID(i), shardEntry(byte(i), 1000)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	// Touch the oldest entry; the middle one becomes the LRU victim.
	if _, ok := s.Get(shardID(0)); !ok {
		t.Fatal("get 0 missed")
	}
	if !s.Put(shardID(3), shardEntry(3, 1000)) {
		t.Fatal("put 3 rejected")
	}
	if fmt.Sprint(evicted) != fmt.Sprint([]string{shardID(1)}) {
		t.Fatalf("evicted %v, want exactly [%s]", evicted, shardID(1))
	}
	if _, ok := s.Get(shardID(0)); !ok {
		t.Fatal("touched entry was evicted")
	}
}

// TestShardCorruptEntryDeletedAndRepublished: a damaged resident entry is
// detected on Get, deleted, and a subsequent Put republishes cleanly.
func TestShardCorruptEntryDeletedAndRepublished(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShard(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	id := shardID(1)
	enc := shardEntry(9, 128)
	if !s.Put(id, enc) {
		t.Fatal("put rejected")
	}
	// Damage the published file: flip a payload byte.
	path := s.path(id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
	if c := s.Counters(); c["shard/corrupt"] != 1 {
		t.Fatalf("shard/corrupt = %d, want 1", c["shard/corrupt"])
	}
	// Truncation is the other damage shape the validator must catch.
	if !s.Put(id, enc) {
		t.Fatal("republish rejected")
	}
	if err := os.WriteFile(path, raw[:8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("truncated entry served as a hit")
	}
	// Republish once more; the entry must be a clean hit again.
	if !s.Put(id, enc) {
		t.Fatal("second republish rejected")
	}
	got, ok := s.Get(id)
	if !ok || !bytes.Equal(got, enc) {
		t.Fatal("republished entry did not round-trip")
	}
}

// TestShardRejects: invalid encodings and entries larger than the whole cap
// are rejected outright, never stored, never evict anything.
func TestShardRejects(t *testing.T) {
	s, err := OpenShard(t.TempDir(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Put(shardID(0), shardEntry(1, 100)) {
		t.Fatal("baseline put rejected")
	}
	if s.Put(shardID(1), []byte("not an entry")) {
		t.Fatal("invalid encoding accepted")
	}
	if s.Put(shardID(2), shardEntry(2, 4096)) {
		t.Fatal("over-cap entry accepted")
	}
	c := s.Counters()
	if c["shard/rejected"] != 2 {
		t.Fatalf("shard/rejected = %d, want 2", c["shard/rejected"])
	}
	if c["shard/evictions"] != 0 {
		t.Fatalf("rejections evicted %d resident entries", c["shard/evictions"])
	}
	if _, ok := s.Get(shardID(0)); !ok {
		t.Fatal("baseline entry lost")
	}
}

// TestShardAdoptsExistingEntries: reopening a shard directory adopts the
// entries already on disk (deterministically, in name order).
func TestShardAdoptsExistingEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShard(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !s.Put(shardID(i), shardEntry(byte(i), 64)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	reopened, err := OpenShard(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 5 || reopened.Bytes() != s.Bytes() {
		t.Fatalf("adopted %d entries / %d bytes, want 5 / %d", reopened.Len(), reopened.Bytes(), s.Bytes())
	}
	for i := 0; i < 5; i++ {
		if _, ok := reopened.Get(shardID(i)); !ok {
			t.Fatalf("adopted entry %d missed", i)
		}
	}
}

// TestShardServerProtocol covers the HTTP protocol end to end against a real
// listener: PUT/GET/DELETE round-trip, invalid uploads, invalid ids, /statz.
func TestShardServerProtocol(t *testing.T) {
	s, err := OpenShard(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewShardServer(s))
	defer srv.Close()

	id := shardID(7)
	enc := shardEntry(5, 256)
	do := func(method, path string, body []byte) *http.Response {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	expect := func(resp *http.Response, want int) {
		t.Helper()
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s %s = %d, want %d", resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, want)
		}
	}

	expect(do(http.MethodGet, "/entry/"+id, nil), http.StatusNotFound)
	expect(do(http.MethodPut, "/entry/"+id, enc), http.StatusNoContent)
	resp := do(http.MethodGet, "/entry/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT = %d", resp.StatusCode)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got.Bytes(), enc) {
		t.Fatal("GET body differs from PUT body")
	}
	expect(do(http.MethodPut, "/entry/"+id, []byte("garbage")), http.StatusBadRequest)
	expect(do(http.MethodDelete, "/entry/"+id, nil), http.StatusNoContent)
	expect(do(http.MethodGet, "/entry/"+id, nil), http.StatusNotFound)
	expect(do(http.MethodGet, "/entry/../escape", nil), http.StatusBadRequest)
	expect(do(http.MethodGet, "/entry/NOTHEX", nil), http.StatusBadRequest)
	expect(do(http.MethodPost, "/entry/"+id, enc), http.StatusMethodNotAllowed)

	statz := do(http.MethodGet, "/statz", nil)
	defer statz.Body.Close()
	var counters map[string]int64
	if err := json.NewDecoder(statz.Body).Decode(&counters); err != nil {
		t.Fatalf("/statz decode: %v", err)
	}
	if counters["shard/puts"] != 1 || counters["shard/rejected"] != 1 {
		t.Fatalf("statz counters off: %v", counters)
	}
}
