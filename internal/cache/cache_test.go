package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey() Key {
	return Key{Stage: "llir", Input: HashBytes([]byte("src")), Config: "verify=true", Schema: 1}
}

func TestPutGetMemory(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("artifact"))
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, []byte("artifact")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestDiskTierSurvivesMemoryDrop(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, []byte("artifact")) {
		t.Fatalf("disk Get after DropMemory = %q, %v", got, ok)
	}
	// A second Open over the same directory models a fresh process.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get(k); !ok || !bytes.Equal(got, []byte("artifact")) {
		t.Fatalf("fresh-process Get = %q, %v", got, ok)
	}
}

// Any key-field difference — stage, input, config, or schema version — must
// address a different entry. The schema case is how a codec bump invalidates
// every stored artifact.
func TestKeyFieldsAllDiscriminate(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testKey()
	c.Put(base, []byte("artifact"))
	variants := []Key{
		{Stage: "machine", Input: base.Input, Config: base.Config, Schema: base.Schema},
		{Stage: base.Stage, Input: HashBytes([]byte("edited")), Config: base.Config, Schema: base.Schema},
		{Stage: base.Stage, Input: base.Input, Config: "verify=false", Schema: base.Schema},
		{Stage: base.Stage, Input: base.Input, Config: base.Config, Schema: base.Schema + 1},
	}
	for i, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Errorf("variant %d unexpectedly hit %+v", i, k)
		}
	}
}

// corruptEntries mutates every entry file under dir with mutate and returns
// how many files it touched.
func corruptEntries(t *testing.T, dir string, mutate func([]byte) []byte) int {
	t.Helper()
	ents, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ents {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(ents)
}

func TestCorruptedEntryIsMissAndDeleted(t *testing.T) {
	cases := map[string]func([]byte) []byte{
		"payload-flip": func(raw []byte) []byte {
			mut := append([]byte(nil), raw...)
			mut[len(mut)/2] ^= 0x01
			return mut
		},
		"truncated": func(raw []byte) []byte { return raw[:len(raw)/2] },
		"empty":     func([]byte) []byte { return nil },
		"foreign":   func([]byte) []byte { return []byte("not a cache entry") },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := testKey()
			c.Put(k, []byte("artifact"))
			if n := corruptEntries(t, dir, mutate); n != 1 {
				t.Fatalf("expected 1 entry on disk, found %d", n)
			}
			c.DropMemory()
			if _, ok := c.Get(k); ok {
				t.Fatal("corrupted entry reported as hit")
			}
			if ents, _ := filepath.Glob(filepath.Join(dir, "*.art")); len(ents) != 0 {
				t.Fatalf("corrupted entry not deleted: %v", ents)
			}
			// The slot is reusable: a republish hits again.
			c.Put(k, []byte("artifact"))
			c.DropMemory()
			if got, ok := c.Get(k); !ok || !bytes.Equal(got, []byte("artifact")) {
				t.Fatalf("republish after corruption: Get = %q, %v", got, ok)
			}
		})
	}
}

// Same-key and distinct-key concurrent use must be race-free (run under
// -race in CI). Same-key writers store identical bytes, mirroring the
// deterministic pipeline's behaviour.
func TestConcurrentPutGet(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := testKey()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := Key{Stage: "machine", Input: HashBytes([]byte(fmt.Sprintf("mod%d", w))), Schema: 1}
			for i := 0; i < 50; i++ {
				c.Put(shared, []byte("same bytes from every writer"))
				if got, ok := c.Get(shared); ok && !bytes.Equal(got, []byte("same bytes from every writer")) {
					t.Errorf("worker %d read torn shared entry %q", w, got)
					return
				}
				c.Put(own, []byte(fmt.Sprintf("artifact %d", w)))
				if got, ok := c.Get(own); !ok || !bytes.Equal(got, []byte(fmt.Sprintf("artifact %d", w))) {
					t.Errorf("worker %d lost its own entry", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	c.Put(testKey(), []byte("artifact")) // must not panic
	if _, ok := c.Get(testKey()); ok {
		t.Fatal("nil cache hit")
	}
	c.DropMemory()
}

func TestSharedReturnsOneInstancePerDir(t *testing.T) {
	dir := t.TempDir()
	defer Forget(dir)
	a, err := Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Shared returned distinct instances for one dir")
	}
	Forget(dir)
	c, err := Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("Forget did not drop the shared instance")
	}
	Forget(dir)
}
