package cache

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ShardStore is one remote-cache shard's backend: the PR 4 disk-entry format
// (magic, length, payload, SHA-256; temp-file + atomic-rename publication)
// behind an LRU index with a hard size cap. Eviction is deterministic: it is
// a pure function of the access sequence, so two shards replaying the same
// operations evict the same entries in the same order.
//
// The cap is never exceeded, not even transiently: Put evicts from the cold
// end before publishing, and an entry larger than the whole cap is rejected
// outright rather than evicting everything else to make room.
type ShardStore struct {
	dir string
	cap int64

	mu      sync.Mutex
	index   map[string]*list.Element // id → lru element
	lru     *list.List               // front = hottest, back = next victim
	bytes   int64
	onEvict func(id string) // test hook: observes eviction order

	hits, misses, puts, evictions, corrupt, rejected int64
}

// lruEntry is one resident entry's bookkeeping.
type lruEntry struct {
	id   string
	size int64
}

// OpenShard opens (creating if needed) a shard store under dir with the given
// byte cap. Entries already on disk are adopted in name order — a
// deterministic warm start — and evicted from the sorted tail if they exceed
// the cap.
func OpenShard(dir string, capBytes int64) (*ShardStore, error) {
	if capBytes <= 0 {
		return nil, fmt.Errorf("cache: shard cap must be positive, got %d", capBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &ShardStore{
		dir:   dir,
		cap:   capBytes,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		id := strings.TrimSuffix(filepath.Base(path), ".art")
		s.insert(id, fi.Size())
	}
	return s, nil
}

// SetEvictHook registers fn to observe every eviction, in order. Tests use it
// to assert deterministic eviction sequences.
func (s *ShardStore) SetEvictHook(fn func(id string)) {
	s.mu.Lock()
	s.onEvict = fn
	s.mu.Unlock()
}

func (s *ShardStore) path(id string) string {
	return filepath.Join(s.dir, id+".art")
}

// insert adds id at the hot end, evicting cold entries until the cap holds.
// Caller holds s.mu or is single-threaded (OpenShard).
func (s *ShardStore) insert(id string, size int64) {
	if el, ok := s.index[id]; ok {
		s.bytes -= el.Value.(*lruEntry).size
		s.lru.Remove(el)
		delete(s.index, id)
	}
	s.bytes += size
	s.index[id] = s.lru.PushFront(&lruEntry{id: id, size: size})
	for s.bytes > s.cap {
		victim := s.lru.Back()
		if victim == nil {
			break
		}
		s.evictLocked(victim)
	}
}

// evictLocked removes the entry from index, disk, and byte count.
func (s *ShardStore) evictLocked(el *list.Element) {
	e := el.Value.(*lruEntry)
	s.lru.Remove(el)
	delete(s.index, e.id)
	s.bytes -= e.size
	s.evictions++
	os.Remove(s.path(e.id))
	if s.onEvict != nil {
		s.onEvict(e.id)
	}
}

// dropLocked removes a damaged entry without counting an eviction.
func (s *ShardStore) dropLocked(id string) {
	if el, ok := s.index[id]; ok {
		s.bytes -= el.Value.(*lruEntry).size
		s.lru.Remove(el)
		delete(s.index, id)
	}
	os.Remove(s.path(id))
}

// Get returns the raw encoded entry for id, touching it to the hot end. A
// corrupt or truncated entry is deleted and reported as a miss — the client
// republishes a good one, the same rebuild-and-republish contract the disk
// tier keeps.
func (s *ShardStore) Get(id string) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.index[id]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.lru.MoveToFront(el)
	path := s.path(id)
	raw, err := os.ReadFile(path)
	if err == nil {
		if _, derr := decodeEntry(raw); derr == nil {
			s.hits++
			s.mu.Unlock()
			return raw, true
		}
	}
	// Unreadable or failed validation: drop it so the next Put republishes.
	s.corrupt++
	s.misses++
	s.dropLocked(id)
	s.mu.Unlock()
	return nil, false
}

// Put stores the encoded entry under id, evicting LRU entries to stay under
// the cap. Invalid encodings and entries larger than the cap are rejected
// (false) — a shard never stores bytes it could not later validate.
func (s *ShardStore) Put(id string, enc []byte) bool {
	if _, err := decodeEntry(enc); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return false
	}
	if int64(len(enc)) > s.cap {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Evict before publishing so the cap holds at every instant; the entry
	// being replaced (if any) is removed from the accounting first.
	if el, ok := s.index[id]; ok {
		s.bytes -= el.Value.(*lruEntry).size
		s.lru.Remove(el)
		delete(s.index, id)
	}
	for s.bytes+int64(len(enc)) > s.cap {
		victim := s.lru.Back()
		if victim == nil {
			break
		}
		s.evictLocked(victim)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(enc)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	s.bytes += int64(len(enc))
	s.index[id] = s.lru.PushFront(&lruEntry{id: id, size: int64(len(enc))})
	s.puts++
	return true
}

// Delete removes the entry for id (a client detected corruption end-to-end).
func (s *ShardStore) Delete(id string) {
	s.mu.Lock()
	s.dropLocked(id)
	s.mu.Unlock()
}

// Bytes returns the shard's current resident size.
func (s *ShardStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the shard's current entry count.
func (s *ShardStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Counters returns a snapshot of the shard's lifetime counters, in the same
// namespace style internal/obs uses.
func (s *ShardStore) Counters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return map[string]int64{
		"shard/hits":      s.hits,
		"shard/misses":    s.misses,
		"shard/puts":      s.puts,
		"shard/evictions": s.evictions,
		"shard/corrupt":   s.corrupt,
		"shard/rejected":  s.rejected,
		"shard/bytes":     s.bytes,
		"shard/entries":   int64(s.lru.Len()),
	}
}

// ShardServer exposes a ShardStore over the build farm's HTTP cache
// protocol:
//
//	GET    /entry/<id>  → 200 raw encoded entry | 404
//	PUT    /entry/<id>  → 204 stored | 400 invalid or over-cap entry
//	DELETE /entry/<id>  → 204
//	GET    /statz       → 200 JSON counters
//
// Entry ids are hex content addresses; anything else is rejected before it
// can touch the filesystem.
type ShardServer struct {
	store *ShardStore
}

// NewShardServer wraps store in the HTTP cache protocol.
func NewShardServer(store *ShardStore) *ShardServer {
	return &ShardServer{store: store}
}

// Store returns the underlying shard store.
func (h *ShardServer) Store() *ShardStore { return h.store }

// maxEntryUpload bounds one PUT body; entries are artifact-sized, far below
// this, so the limit only stops hostile or accidental floods.
const maxEntryUpload = 256 << 20

func validEntryID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (h *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/statz" && r.Method == http.MethodGet {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h.store.Counters())
		return
	}
	id, ok := strings.CutPrefix(r.URL.Path, "/entry/")
	if !ok || !validEntryID(id) {
		http.Error(w, "bad entry path", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		raw, ok := h.store.Get(id)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(raw)
	case http.MethodPut:
		enc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryUpload))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if !h.store.Put(id, enc) {
			http.Error(w, "entry rejected (invalid or over cap)", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		h.store.Delete(id)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
