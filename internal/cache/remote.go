package cache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"outliner/internal/fault"
)

// Remote is the sharded remote cache tier's client: entries are spread over N
// shard servers (ShardServer's HTTP protocol) by a deterministic hash of the
// content address, so every daemon and every build agrees on which shard owns
// which key without coordination.
//
// The remote tier obeys the same degraded-mode contract as the disk tier: a
// dead shard, a slow shard, a corrupt response — every failure mode is a
// miss (Get) or an unpublished entry (Put), never a build failure. Transient
// errors retry with the disk tier's capped backoff; a shard that stays dead
// just stops contributing hits until it comes back.
type Remote struct {
	shards []string // base URLs, e.g. "http://10.0.0.7:9471"
	client *http.Client

	// Injectable seams, mirroring Cache: sleep replaces the backoff clock and
	// fault arms the RemoteGet/RemotePut injection sites (the shard-kill
	// chaos hook). Arm only private instances.
	sleep func(time.Duration)
	fault *fault.Injector

	inflight []atomic.Int64 // per-shard in-flight HTTP operations

	mu      sync.Mutex
	stats   []remoteShardStats
	drained map[string]int64
}

// remoteShardStats is one shard's client-side counter set.
type remoteShardStats struct {
	hits, misses, puts, errors, deletes int64
}

// remoteTimeout bounds one shard HTTP operation; a hung shard must cost a
// bounded slice of a build, not a build.
const remoteTimeout = 5 * time.Second

// NewRemote returns a client over the given shard base URLs. An empty list
// returns nil — a valid "no remote tier" value everywhere a *Remote is
// accepted.
func NewRemote(shardURLs []string) *Remote {
	if len(shardURLs) == 0 {
		return nil
	}
	return &Remote{
		shards:   append([]string(nil), shardURLs...),
		client:   &http.Client{Timeout: remoteTimeout},
		inflight: make([]atomic.Int64, len(shardURLs)),
		stats:    make([]remoteShardStats, len(shardURLs)),
	}
}

// SetFault arms deterministic fault injection on the remote paths. Arm only
// private instances, never one shared by a daemon's concurrent builds.
func (r *Remote) SetFault(inj *fault.Injector) {
	if r != nil {
		r.fault = inj
	}
}

// Shards returns the number of shards.
func (r *Remote) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// ShardFor maps a content address to its owning shard: an FNV-1a hash of the
// id, mod the shard count. Pure, so every client agrees.
func (r *Remote) ShardFor(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(r.shards)))
}

// TierName names the tier that served a remote hit, for Probe.Tier.
func TierName(shard int) string { return fmt.Sprintf("remote-shard-%d", shard) }

func (r *Remote) entryURL(shard int, id string) string {
	return r.shards[shard] + "/entry/" + id
}

func (r *Remote) backoff(attempt int) {
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	if r.sleep != nil {
		r.sleep(d)
		return
	}
	time.Sleep(d)
}

// get fetches the raw encoded entry for id from its shard, with
// transient-error retry. Every failure shape — refused connection, timeout,
// 5xx, short body — degrades to a miss; only a 200 with a body is a hit.
func (r *Remote) get(id string) (raw []byte, shard int, ok bool, pr Probe) {
	if r == nil {
		return nil, 0, false, pr
	}
	shard = r.ShardFor(id)
	r.inflight[shard].Add(1)
	defer r.inflight[shard].Add(-1)
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			pr.Retries++
			r.backoff(attempt)
		}
		var body []byte
		var status int
		ierr := r.fault.MaybeError(fault.RemoteGet, fmt.Sprintf("%s#%d", id, attempt))
		if ierr == nil {
			status, body, ierr = r.do(http.MethodGet, r.entryURL(shard, id), nil)
		}
		if ierr == nil {
			switch {
			case status == http.StatusOK:
				body = r.fault.MaybeCorrupt(fault.RemoteGet, id, body)
				r.note(shard, func(s *remoteShardStats) { s.hits++ })
				return body, shard, true, pr
			case status == http.StatusNotFound:
				r.note(shard, func(s *remoteShardStats) { s.misses++ })
				return nil, shard, false, pr
			default:
				ierr = fmt.Errorf("cache: shard %d: unexpected status %d", shard, status)
			}
		}
		err = ierr
		if Classify(err) == ClassFatal {
			break
		}
	}
	pr.RemoteErr = err
	r.note(shard, func(s *remoteShardStats) { s.errors++; s.misses++ })
	return nil, shard, false, pr
}

// put publishes the encoded entry to its shard with retry; failures degrade
// to an unpublished entry, recorded on the probe.
func (r *Remote) put(id string, enc []byte) (pr Probe) {
	if r == nil {
		return pr
	}
	shard := r.ShardFor(id)
	r.inflight[shard].Add(1)
	defer r.inflight[shard].Add(-1)
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			pr.Retries++
			r.backoff(attempt)
		}
		var status int
		ierr := r.fault.MaybeError(fault.RemotePut, fmt.Sprintf("%s#%d", id, attempt))
		if ierr == nil {
			status, _, ierr = r.do(http.MethodPut, r.entryURL(shard, id), enc)
		}
		if ierr == nil {
			switch status {
			case http.StatusNoContent, http.StatusOK:
				r.note(shard, func(s *remoteShardStats) { s.puts++ })
				return pr
			case http.StatusBadRequest:
				// The shard rejected the entry (over its cap): retrying sends
				// the same bytes, so degrade immediately.
				pr.RemoteErr = fmt.Errorf("cache: shard %d rejected entry", shard)
				r.note(shard, func(s *remoteShardStats) { s.errors++ })
				return pr
			default:
				ierr = fmt.Errorf("cache: shard %d: unexpected status %d", shard, status)
			}
		}
		err = ierr
		if Classify(err) == ClassFatal {
			break
		}
	}
	pr.RemoteErr = err
	r.note(shard, func(s *remoteShardStats) { s.errors++ })
	return pr
}

// drop deletes a corrupt entry from its shard (fire-and-forget): the next
// publication replaces it, the same crash-safe rebuild-and-republish protocol
// the disk tier follows.
func (r *Remote) drop(shard int, id string) {
	if r == nil {
		return
	}
	r.inflight[shard].Add(1)
	defer r.inflight[shard].Add(-1)
	if _, _, err := r.do(http.MethodDelete, r.entryURL(shard, id), nil); err == nil {
		r.note(shard, func(s *remoteShardStats) { s.deletes++ })
	}
}

// do runs one HTTP operation and returns status plus (for GET) the body.
func (r *Remote) do(method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var data []byte
	if method == http.MethodGet && resp.StatusCode == http.StatusOK {
		data, err = io.ReadAll(io.LimitReader(resp.Body, maxEntryUpload))
		if err != nil {
			return 0, nil, err
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	}
	return resp.StatusCode, data, nil
}

func (r *Remote) note(shard int, f func(*remoteShardStats)) {
	r.mu.Lock()
	f(&r.stats[shard])
	r.mu.Unlock()
}

// Counters returns a snapshot of per-shard client counters in obs namespace
// style: cache/remote/shard<N>/{hits,misses,puts,errors,deletes,inflight}.
func (r *Remote) Counters() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.stats {
		p := fmt.Sprintf("cache/remote/shard%d/", i)
		out[p+"hits"] = r.stats[i].hits
		out[p+"misses"] = r.stats[i].misses
		out[p+"puts"] = r.stats[i].puts
		out[p+"errors"] = r.stats[i].errors
		out[p+"deletes"] = r.stats[i].deletes
		out[p+"inflight"] = r.inflight[i].Load()
	}
	return out
}

// DrainCounters returns per-shard counter deltas since the previous drain
// (inflight, a gauge, is reported as its current value each time), so a
// daemon can mirror remote activity into its obs tracer without double
// counting across requests.
func (r *Remote) DrainCounters() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	snap := r.Counters()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.drained == nil {
		r.drained = map[string]int64{}
	}
	for name, v := range snap {
		if len(name) > 9 && name[len(name)-9:] == "/inflight" {
			out[name] = v
			continue
		}
		if d := v - r.drained[name]; d > 0 {
			out[name] = d
			r.drained[name] = v
		}
	}
	return out
}
