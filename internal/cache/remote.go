package cache

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"outliner/internal/fault"
)

// Remote is the sharded remote cache tier's client: entries are spread over N
// shard servers (ShardServer's HTTP protocol) by a deterministic hash of the
// content address, so every daemon and every build agrees on which shard owns
// which key without coordination.
//
// The remote tier obeys the same degraded-mode contract as the disk tier: a
// dead shard, a slow shard, a corrupt response — every failure mode is a
// miss (Get) or an unpublished entry (Put), never a build failure. Transient
// errors retry with the disk tier's capped backoff; a shard that keeps
// failing trips its circuit breaker (see RemoteOptions.BreakerThreshold), so
// operations skip it instantly instead of paying the operation timeout and
// retries on every probe, and a background health probe re-admits it once it
// answers again.
type Remote struct {
	shards []string // base URLs, e.g. "http://10.0.0.7:9471"
	client *http.Client
	opts   RemoteOptions

	// Injectable seams, mirroring Cache: sleep replaces the backoff clock and
	// fault arms the RemoteGet/RemotePut/RemoteSlow injection sites (the
	// shard-kill chaos hook). Arm only private instances.
	sleep func(time.Duration)
	fault *fault.Injector

	inflight []atomic.Int64 // per-shard in-flight HTTP operations
	breakers []breaker      // per-shard circuit breakers

	proberOnce sync.Once     // starts the health-probe goroutine lazily
	closeOnce  sync.Once     // Close is idempotent
	proberStop chan struct{} // closed by Close

	mu      sync.Mutex
	stats   []remoteShardStats
	drained map[string]int64
}

// remoteShardStats is one shard's client-side counter set.
type remoteShardStats struct {
	hits, misses, puts, errors, deletes int64
}

// Remote option defaults. defaultRemoteTimeout bounds one shard HTTP
// operation — a hung shard must cost a bounded slice of a build, not a
// build; the breaker exists so it does not even cost that slice per
// operation once the shard is known-bad.
const (
	defaultRemoteTimeout    = 5 * time.Second
	defaultBreakerThreshold = 5
	defaultProbeInterval    = 250 * time.Millisecond
)

// RemoteOptions tunes the remote tier client. The zero value selects the
// defaults; NewRemote is NewRemoteWith(urls, RemoteOptions{}).
type RemoteOptions struct {
	// Timeout bounds one shard HTTP operation (0 = 5s).
	Timeout time.Duration
	// BreakerThreshold is the consecutive failed-operation count that opens a
	// shard's circuit breaker (0 = 5; negative disables the breakers — every
	// operation then pays the full timeout-and-retry cost of a dead shard).
	BreakerThreshold int
	// ProbeInterval is the background health-probe cadence for open breakers
	// (0 = 250ms).
	ProbeInterval time.Duration
}

// withDefaults normalizes zero fields to the documented defaults.
func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout <= 0 {
		o.Timeout = defaultRemoteTimeout
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = defaultBreakerThreshold
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = defaultProbeInterval
	}
	return o
}

// BreakerState is one shard breaker's position: requests flow when Closed,
// are shed instantly when Open, and stay shed while a HalfOpen health probe
// decides whether to re-admit the shard.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ErrShardOpen is the RemoteErr recorded on operations shed by an open
// circuit breaker: the shard was skipped, not contacted.
var ErrShardOpen = fmt.Errorf("cache: shard circuit breaker open")

// breaker is one shard's circuit breaker. state is read lock-free on the
// operation hot path; transitions and counters move under mu.
type breaker struct {
	state atomic.Int32 // BreakerState

	mu          sync.Mutex
	consecutive int // consecutive failed operations while closed
	opens       int64
	halfOpens   int64
	closes      int64
	probes      int64
	shed        int64
}

// NewRemote returns a client over the given shard base URLs with default
// options. An empty list returns nil — a valid "no remote tier" value
// everywhere a *Remote is accepted.
func NewRemote(shardURLs []string) *Remote {
	return NewRemoteWith(shardURLs, RemoteOptions{})
}

// NewRemoteWith is NewRemote with explicit options (zero fields default).
func NewRemoteWith(shardURLs []string, opts RemoteOptions) *Remote {
	if len(shardURLs) == 0 {
		return nil
	}
	opts = opts.withDefaults()
	return &Remote{
		shards:     append([]string(nil), shardURLs...),
		client:     &http.Client{Timeout: opts.Timeout},
		opts:       opts,
		inflight:   make([]atomic.Int64, len(shardURLs)),
		breakers:   make([]breaker, len(shardURLs)),
		proberStop: make(chan struct{}),
		stats:      make([]remoteShardStats, len(shardURLs)),
	}
}

// Timeout returns the effective per-operation timeout (0 on a nil Remote) —
// surfaced by the compile daemon's /stats so operators can see what a hung
// shard costs an unbroken operation.
func (r *Remote) Timeout() time.Duration {
	if r == nil {
		return 0
	}
	return r.opts.Timeout
}

// Close stops the background health prober (idempotent; safe on nil).
// Breakers stop recovering after Close — call it only on shutdown.
func (r *Remote) Close() {
	if r == nil {
		return
	}
	r.closeOnce.Do(func() { close(r.proberStop) })
}

// SetFault arms deterministic fault injection on the remote paths. Arm only
// private instances, never one shared by a daemon's concurrent builds.
func (r *Remote) SetFault(inj *fault.Injector) {
	if r != nil {
		r.fault = inj
	}
}

// Shards returns the number of shards.
func (r *Remote) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// ShardFor maps a content address to its owning shard: an FNV-1a hash of the
// id, mod the shard count. Pure, so every client agrees.
func (r *Remote) ShardFor(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(r.shards)))
}

// TierName names the tier that served a remote hit, for Probe.Tier.
func TierName(shard int) string { return fmt.Sprintf("remote-shard-%d", shard) }

func (r *Remote) entryURL(shard int, id string) string {
	return r.shards[shard] + "/entry/" + id
}

func (r *Remote) backoff(attempt int) {
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	r.sleepFor(d)
}

// sleepFor sleeps through the injectable clock so tests run at full speed.
func (r *Remote) sleepFor(d time.Duration) {
	if r.sleep != nil {
		r.sleep(d)
		return
	}
	time.Sleep(d)
}

// breakerAllows reports whether shard's breaker admits an operation,
// counting a shed when it does not. Only a Closed breaker admits traffic;
// HalfOpen admits the health probe alone.
func (r *Remote) breakerAllows(shard int) bool {
	if r.opts.BreakerThreshold < 0 {
		return true
	}
	b := &r.breakers[shard]
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true
	}
	b.mu.Lock()
	b.shed++
	b.mu.Unlock()
	return false
}

// breakerOK records a successful operation: any failure streak ends.
func (r *Remote) breakerOK(shard int) {
	if r.opts.BreakerThreshold < 0 {
		return
	}
	b := &r.breakers[shard]
	b.mu.Lock()
	b.consecutive = 0
	b.mu.Unlock()
}

// breakerFail records a failed operation; crossing the consecutive-failure
// threshold opens the breaker and starts the background health prober.
func (r *Remote) breakerFail(shard int) {
	if r.opts.BreakerThreshold < 0 {
		return
	}
	b := &r.breakers[shard]
	b.mu.Lock()
	b.consecutive++
	opened := b.consecutive >= r.opts.BreakerThreshold &&
		BreakerState(b.state.Load()) == BreakerClosed
	if opened {
		b.state.Store(int32(BreakerOpen))
		b.opens++
	}
	b.mu.Unlock()
	if opened {
		r.proberOnce.Do(func() { go r.proberLoop() })
	}
}

// proberLoop drives ProbeNow at the configured cadence until Close.
func (r *Remote) proberLoop() {
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.proberStop:
			return
		case <-t.C:
			r.ProbeNow()
		}
	}
}

// ProbeNow health-probes every shard whose breaker is open, transitioning it
// to half-open for the probe's duration and closing it on success. The
// background prober calls it on a ticker; tests call it directly for a
// deterministic recovery step.
func (r *Remote) ProbeNow() {
	if r == nil || r.opts.BreakerThreshold < 0 {
		return
	}
	for shard := range r.shards {
		b := &r.breakers[shard]
		if BreakerState(b.state.Load()) != BreakerOpen {
			continue
		}
		b.mu.Lock()
		b.state.Store(int32(BreakerHalfOpen))
		b.halfOpens++
		b.probes++
		b.mu.Unlock()
		err := r.probeShard(shard)
		b.mu.Lock()
		if err == nil {
			b.state.Store(int32(BreakerClosed))
			b.consecutive = 0
			b.closes++
		} else {
			b.state.Store(int32(BreakerOpen))
		}
		b.mu.Unlock()
	}
}

// probeShard asks one shard's /statz whether it is serving again.
func (r *Remote) probeShard(shard int) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.Timeout)
	defer cancel()
	status, _, err := r.do(ctx, http.MethodGet, r.shards[shard]+"/statz", nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cache: shard %d health probe: status %d", shard, status)
	}
	return nil
}

// BreakerSnapshot reports one shard's breaker position and lifetime
// transition counters, for tests and diagnostics.
type BreakerSnapshot struct {
	State                            BreakerState
	Opens, HalfOpens, Closes, Probes int64
	Shed                             int64
}

// Breaker returns shard's breaker snapshot (zero value on a nil Remote).
func (r *Remote) Breaker(shard int) BreakerSnapshot {
	if r == nil {
		return BreakerSnapshot{}
	}
	b := &r.breakers[shard]
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:     BreakerState(b.state.Load()),
		Opens:     b.opens,
		HalfOpens: b.halfOpens,
		Closes:    b.closes,
		Probes:    b.probes,
		Shed:      b.shed,
	}
}

// get fetches the raw encoded entry for id from its shard, with
// transient-error retry. Every failure shape — refused connection, timeout,
// 5xx, short body, an open breaker, a cancelled context — degrades to a
// miss; only a 200 with a body is a hit. ctx aborts the retry loop between
// attempts; a context-cancelled operation never counts against the shard's
// breaker (the shard did nothing wrong).
func (r *Remote) get(ctx context.Context, id string) (raw []byte, shard int, ok bool, pr Probe) {
	if r == nil {
		return nil, 0, false, pr
	}
	shard = r.ShardFor(id)
	if !r.breakerAllows(shard) {
		pr.RemoteErr = ErrShardOpen
		r.note(shard, func(s *remoteShardStats) { s.misses++ })
		return nil, shard, false, pr
	}
	r.inflight[shard].Add(1)
	defer r.inflight[shard].Add(-1)
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			if ctx.Err() != nil {
				err = ctx.Err()
				break
			}
			pr.Retries++
			r.backoff(attempt)
		}
		var body []byte
		var status int
		ierr := r.slowOrError(fault.RemoteGet, id, attempt)
		if ierr == nil {
			status, body, ierr = r.do(ctx, http.MethodGet, r.entryURL(shard, id), nil)
		}
		if ierr == nil {
			switch {
			case status == http.StatusOK:
				body = r.fault.MaybeCorrupt(fault.RemoteGet, id, body)
				r.note(shard, func(s *remoteShardStats) { s.hits++ })
				r.breakerOK(shard)
				return body, shard, true, pr
			case status == http.StatusNotFound:
				r.note(shard, func(s *remoteShardStats) { s.misses++ })
				r.breakerOK(shard)
				return nil, shard, false, pr
			default:
				ierr = fmt.Errorf("cache: shard %d: unexpected status %d", shard, status)
			}
		}
		err = ierr
		if Classify(err) == ClassFatal {
			break
		}
	}
	pr.RemoteErr = err
	r.note(shard, func(s *remoteShardStats) { s.errors++; s.misses++ })
	if ctx.Err() == nil {
		r.breakerFail(shard)
	}
	return nil, shard, false, pr
}

// put publishes the encoded entry to its shard with retry; failures degrade
// to an unpublished entry, recorded on the probe. Breaker and context rules
// match get.
func (r *Remote) put(ctx context.Context, id string, enc []byte) (pr Probe) {
	if r == nil {
		return pr
	}
	shard := r.ShardFor(id)
	if !r.breakerAllows(shard) {
		pr.RemoteErr = ErrShardOpen
		return pr
	}
	r.inflight[shard].Add(1)
	defer r.inflight[shard].Add(-1)
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			if ctx.Err() != nil {
				err = ctx.Err()
				break
			}
			pr.Retries++
			r.backoff(attempt)
		}
		var status int
		ierr := r.slowOrError(fault.RemotePut, id, attempt)
		if ierr == nil {
			status, _, ierr = r.do(ctx, http.MethodPut, r.entryURL(shard, id), enc)
		}
		if ierr == nil {
			switch status {
			case http.StatusNoContent, http.StatusOK:
				r.note(shard, func(s *remoteShardStats) { s.puts++ })
				r.breakerOK(shard)
				return pr
			case http.StatusBadRequest:
				// The shard rejected the entry (over its cap): retrying sends
				// the same bytes, so degrade immediately. The shard answered,
				// so the breaker sees a healthy operation.
				pr.RemoteErr = fmt.Errorf("cache: shard %d rejected entry", shard)
				r.note(shard, func(s *remoteShardStats) { s.errors++ })
				r.breakerOK(shard)
				return pr
			default:
				ierr = fmt.Errorf("cache: shard %d: unexpected status %d", shard, status)
			}
		}
		err = ierr
		if Classify(err) == ClassFatal {
			break
		}
	}
	pr.RemoteErr = err
	r.note(shard, func(s *remoteShardStats) { s.errors++ })
	if ctx.Err() == nil {
		r.breakerFail(shard)
	}
	return pr
}

// slowOrError consults the remote fault sites for one attempt: a SlowKind
// decision stalls for the full operation timeout (through the injectable
// clock) and then fails like a timed-out request — the hung-shard shape the
// breaker exists for — and an ErrorKind decision fails immediately.
func (r *Remote) slowOrError(site fault.Site, id string, attempt int) error {
	key := fmt.Sprintf("%s#%d", id, attempt)
	slowSite := fault.RemoteSlow
	if r.fault.MaybeSlowPoint(slowSite, key) {
		r.sleepFor(r.opts.Timeout)
		return &fault.Error{Site: slowSite, Key: key, Transient: true}
	}
	return r.fault.MaybeError(site, key)
}

// drop deletes a corrupt entry from its shard (fire-and-forget): the next
// publication replaces it, the same crash-safe rebuild-and-republish protocol
// the disk tier follows.
func (r *Remote) drop(ctx context.Context, shard int, id string) {
	if r == nil || !r.breakerAllows(shard) {
		return
	}
	r.inflight[shard].Add(1)
	defer r.inflight[shard].Add(-1)
	if _, _, err := r.do(ctx, http.MethodDelete, r.entryURL(shard, id), nil); err == nil {
		r.note(shard, func(s *remoteShardStats) { s.deletes++ })
	}
}

// do runs one HTTP operation and returns status plus (for GET) the body.
func (r *Remote) do(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var data []byte
	if method == http.MethodGet && resp.StatusCode == http.StatusOK {
		data, err = io.ReadAll(io.LimitReader(resp.Body, maxEntryUpload))
		if err != nil {
			return 0, nil, err
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	}
	return resp.StatusCode, data, nil
}

func (r *Remote) note(shard int, f func(*remoteShardStats)) {
	r.mu.Lock()
	f(&r.stats[shard])
	r.mu.Unlock()
}

// Counters returns a snapshot of per-shard client counters in obs namespace
// style: cache/remote/shard<N>/{hits,misses,puts,errors,deletes,inflight}
// plus the breaker's state gauge and transition counters
// (breaker_state, breaker_opens, breaker_half_opens, breaker_closes,
// breaker_probes, breaker_shed).
func (r *Remote) Counters() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	for i := range r.stats {
		p := fmt.Sprintf("cache/remote/shard%d/", i)
		out[p+"hits"] = r.stats[i].hits
		out[p+"misses"] = r.stats[i].misses
		out[p+"puts"] = r.stats[i].puts
		out[p+"errors"] = r.stats[i].errors
		out[p+"deletes"] = r.stats[i].deletes
		out[p+"inflight"] = r.inflight[i].Load()
	}
	r.mu.Unlock()
	for i := range r.breakers {
		p := fmt.Sprintf("cache/remote/shard%d/", i)
		b := r.Breaker(i)
		out[p+"breaker_state"] = int64(b.State)
		out[p+"breaker_opens"] = b.Opens
		out[p+"breaker_half_opens"] = b.HalfOpens
		out[p+"breaker_closes"] = b.Closes
		out[p+"breaker_probes"] = b.Probes
		out[p+"breaker_shed"] = b.Shed
	}
	return out
}

// remoteGauge reports whether a counter name is a point-in-time gauge
// (re-reported whole each drain) rather than a monotonic sum.
func remoteGauge(name string) bool {
	return strings.HasSuffix(name, "/inflight") || strings.HasSuffix(name, "/breaker_state")
}

// DrainCounters returns per-shard counter deltas since the previous drain
// (gauges — inflight and breaker_state — are reported as their current value
// each time), so a daemon can mirror remote activity into its obs tracer
// without double counting across requests.
func (r *Remote) DrainCounters() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	snap := r.Counters()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.drained == nil {
		r.drained = map[string]int64{}
	}
	for name, v := range snap {
		if remoteGauge(name) {
			out[name] = v
			continue
		}
		if d := v - r.drained[name]; d > 0 {
			out[name] = d
			r.drained[name] = v
		}
	}
	return out
}
