package cache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"outliner/internal/fault"
)

func retryTestKey() Key {
	return Key{Stage: "llir", Input: "deadbeef", Config: "cfg", Schema: 1}
}

// openQuiet opens a private cache with an instant clock, returning the cache
// and a pointer to the recorded backoff sleeps.
func openQuiet(t *testing.T) (*Cache, *[]time.Duration) {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sleeps := &[]time.Duration{}
	c.sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	return c, sleeps
}

// TestReadRetryThenSucceed: a transient read error on attempt 0 heals on
// attempt 1 — the hit survives one flaky read, with one recorded retry.
func TestReadRetryThenSucceed(t *testing.T) {
	c, sleeps := openQuiet(t)
	k := retryTestKey()
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	id := k.id()
	c.SetFault(fault.Exact(
		fault.At{Site: fault.CacheRead, Key: id + "#0", Kind: fault.ErrorKind, Transient: true},
	))
	got, ok, pr := c.GetProbe(k)
	if !ok || string(got) != "artifact" {
		t.Fatalf("GetProbe = %q, %v after transient blip", got, ok)
	}
	if pr.Retries != 1 || pr.IOErr != nil || pr.Corrupt {
		t.Fatalf("probe = %+v, want exactly one clean retry", pr)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [1ms]", *sleeps)
	}
}

// TestReadAlwaysFailingDegradesToMiss: when every attempt fails transiently
// the lookup gives up after the attempt budget and reports a miss — never an
// error to the caller.
func TestReadAlwaysFailingDegradesToMiss(t *testing.T) {
	c, sleeps := openQuiet(t)
	k := retryTestKey()
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	id := k.id()
	var points []fault.At
	for a := 0; a < retryAttempts; a++ {
		points = append(points, fault.At{
			Site: fault.CacheRead, Key: fmt.Sprintf("%s#%d", id, a),
			Kind: fault.ErrorKind, Transient: true,
		})
	}
	c.SetFault(fault.Exact(points...))
	_, ok, pr := c.GetProbe(k)
	if ok {
		t.Fatal("hit through a fully failing read path")
	}
	if pr.Retries != retryAttempts-1 || !fault.IsInjected(pr.IOErr) {
		t.Fatalf("probe = %+v", pr)
	}
	// Exponential backoff, capped: 1ms, 2ms, 4ms for a 4-attempt budget.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(*sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", *sleeps, want)
	}
	for i := range want {
		if (*sleeps)[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v", *sleeps, want)
		}
	}
	// The entry itself is intact: with the fault gone, the next probe hits.
	c.SetFault(nil)
	if _, ok, _ := c.GetProbe(k); !ok {
		t.Fatal("entry lost after degraded miss")
	}
}

// TestReadFatalErrorSkipsRetry: a fatal classification ends the loop at once.
func TestReadFatalErrorSkipsRetry(t *testing.T) {
	c, sleeps := openQuiet(t)
	k := retryTestKey()
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	c.SetFault(fault.Exact(
		fault.At{Site: fault.CacheRead, Key: k.id() + "#0", Kind: fault.ErrorKind, Transient: false},
	))
	_, ok, pr := c.GetProbe(k)
	if ok || pr.Retries != 0 || len(*sleeps) != 0 {
		t.Fatalf("fatal error retried: ok=%v probe=%+v sleeps=%v", ok, pr, *sleeps)
	}
	if Classify(pr.IOErr) != ClassFatal {
		t.Fatalf("IOErr %v classified %v", pr.IOErr, Classify(pr.IOErr))
	}
}

// TestCorruptEntryUndeletable: a damaged entry whose delete also fails still
// degrades to a miss, with the failed delete reported — the bugfix for the
// old silently-ignored os.Remove error. (The remover is injected because the
// chmod trick does not work when tests run as root.)
func TestCorruptEntryUndeletable(t *testing.T) {
	c, _ := openQuiet(t)
	k := retryTestKey()
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	// Truncate the entry on disk.
	ents, err := filepath.Glob(filepath.Join(c.dir, "*.art"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("entries = %v, %v", ents, err)
	}
	if err := os.WriteFile(ents[0], []byte("SLC1 torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	denied := &fs.PathError{Op: "remove", Path: ents[0], Err: syscall.EACCES}
	c.remove = func(string) error { return denied }

	_, ok, pr := c.GetProbe(k)
	if ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if !pr.Corrupt || !errors.Is(pr.RemoveErr, syscall.EACCES) {
		t.Fatalf("probe = %+v, want Corrupt with the EACCES remove error", pr)
	}
	if _, err := os.Stat(ents[0]); err != nil {
		t.Fatal("undeletable entry vanished")
	}
	// Once deletes work again the entry is discarded and a republish heals it.
	c.remove = nil
	if _, ok, _ := c.GetProbe(k); ok {
		t.Fatal("still hitting the corrupt entry")
	}
	if _, err := os.Stat(ents[0]); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	if got, ok, _ := c.GetProbe(k); !ok || string(got) != "artifact" {
		t.Fatalf("republish after corruption = %q, %v", got, ok)
	}
}

// TestInjectedCorruptionAlwaysDetected: fault-injected byte corruption lands
// under the entry checksum, so it can only ever produce a (reported) miss —
// never a wrong artifact.
func TestInjectedCorruptionAlwaysDetected(t *testing.T) {
	c, _ := openQuiet(t)
	k := retryTestKey()
	c.Put(k, []byte("artifact"))
	c.DropMemory()
	c.SetFault(fault.Exact(
		fault.At{Site: fault.CacheRead, Key: k.id(), Kind: fault.CorruptKind},
	))
	got, ok, pr := c.GetProbe(k)
	if ok {
		t.Fatalf("injected corruption returned a hit: %q", got)
	}
	if !pr.Corrupt {
		t.Fatalf("probe = %+v, want Corrupt", pr)
	}
}

// TestWriteRetryThenSucceed: Put survives a transient write blip and the
// entry lands on disk.
func TestWriteRetryThenSucceed(t *testing.T) {
	c, _ := openQuiet(t)
	k := retryTestKey()
	c.SetFault(fault.Exact(
		fault.At{Site: fault.CacheWrite, Key: k.id() + "#0", Kind: fault.ErrorKind, Transient: true},
	))
	pr := c.PutProbe(k, []byte("artifact"))
	if pr.Retries != 1 || pr.IOErr != nil {
		t.Fatalf("probe = %+v", pr)
	}
	c.SetFault(nil)
	c.DropMemory()
	if got, ok, _ := c.GetProbe(k); !ok || string(got) != "artifact" {
		t.Fatalf("disk entry after retried Put = %q, %v", got, ok)
	}
}

// TestWriteFatalDegradesToMemoryTier: a fatal publish failure keeps the
// build going on the memory tier alone.
func TestWriteFatalDegradesToMemoryTier(t *testing.T) {
	c, sleeps := openQuiet(t)
	k := retryTestKey()
	c.SetFault(fault.Exact(
		fault.At{Site: fault.CacheWrite, Key: k.id() + "#0", Kind: fault.ErrorKind, Transient: false},
	))
	pr := c.PutProbe(k, []byte("artifact"))
	if pr.IOErr == nil || pr.Retries != 0 || len(*sleeps) != 0 {
		t.Fatalf("probe = %+v sleeps=%v", pr, *sleeps)
	}
	if ents, _ := filepath.Glob(filepath.Join(c.dir, "*.art")); len(ents) != 0 {
		t.Fatalf("fatal write still published: %v", ents)
	}
	if got, ok := c.Get(k); !ok || string(got) != "artifact" {
		t.Fatalf("memory tier lost the artifact: %q, %v", got, ok)
	}
}

func TestClassify(t *testing.T) {
	wrap := func(err error) error {
		return &fs.PathError{Op: "read", Path: "x.art", Err: err}
	}
	cases := []struct {
		err  error
		want Class
	}{
		{wrap(syscall.EIO), ClassTransient},
		{wrap(syscall.EAGAIN), ClassTransient},
		{wrap(syscall.EINTR), ClassTransient},
		{errors.New("unidentified disk weather"), ClassTransient},
		{wrap(syscall.ENOSPC), ClassFatal},
		{wrap(syscall.EROFS), ClassFatal},
		{wrap(syscall.EACCES), ClassFatal},
		{wrap(syscall.EPERM), ClassFatal},
		{&fault.Error{Site: fault.CacheRead, Transient: true}, ClassTransient},
		{&fault.Error{Site: fault.CacheRead, Transient: false}, ClassFatal},
		{fmt.Errorf("cache: entry too short: %w", ErrCorrupt), ClassCorrupt},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	for _, errno := range transientErrnos {
		if got := Classify(wrap(errno)); got != ClassTransient {
			t.Errorf("Classify(%v) = %v, want transient", errno, got)
		}
	}
}

func TestProbeMerge(t *testing.T) {
	var p Probe
	p.Merge(Probe{Retries: 2, Corrupt: true})
	p.Merge(Probe{Retries: 1, IOErr: errors.New("x")})
	if p.Retries != 3 || !p.Corrupt || p.IOErr == nil || p.RemoveErr != nil {
		t.Fatalf("merged probe = %+v", p)
	}
}
