// Package cache is the content-addressed incremental build cache: a two-tier
// (in-memory + on-disk) store of serialized build artifacts keyed by
// (stage, input-content hash, stage-relevant config fingerprint, schema
// version).
//
// Design rules, in priority order:
//
//   - Correctness over reuse. A key must capture everything that can change
//     the artifact; anything doubtful belongs in the key. The cache itself
//     never judges relevance — callers derive Input/Config hashes.
//   - A damaged cache is an empty cache. Torn writes, truncation, bit flips,
//     or a foreign file under the cache directory all surface as a miss
//     (and the bad entry is discarded), never as an error or a bad artifact.
//     Disk entries carry a magic, an explicit payload length, and a SHA-256
//     checksum; writes go to a temp file first and are published by an
//     atomic rename, so a crash mid-write leaves no half-entry behind.
//   - Concurrency-safe. Parallel build workers probe and publish entries
//     concurrently; same-key racing writers are benign because the pipeline
//     is deterministic — both write identical bytes and rename wins-last.
//
// The in-memory tier makes repeated in-process builds (the experiment
// sweeps) hit at memory speed; the on-disk tier under -cache-dir carries
// warm starts across processes. Processes sharing a directory share one
// in-memory tier via Shared. An optional third tier (SetRemote) shares
// artifacts across machines: a sharded remote cache speaking ShardServer's
// HTTP protocol, with every shard an LRU-capped instance of the same disk
// entry format. Flight adds the build farm's single-flight layer on top, so
// concurrent builds that miss on the same key compute it once.
package cache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"outliner/internal/fault"
)

// Key identifies one artifact. Input is a hex content hash produced by the
// caller (see Hasher), Config a deterministic fingerprint of the
// stage-relevant configuration; Stage namespaces pipeline stages and Schema
// is the artifact codec's schema version.
type Key struct {
	Stage  string
	Input  string
	Config string
	Schema int
}

// id collapses the key into the content address entries are stored under.
func (k Key) id() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d", k.Stage, k.Input, k.Config, k.Schema)
	return hex.EncodeToString(h.Sum(nil))
}

// Hasher accumulates content into a hex digest for Key.Input/Key.Config.
type Hasher struct{ h hash.Hash }

// NewHasher returns an empty content hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// WriteString adds s (with a terminator so concatenations cannot collide).
func (h *Hasher) WriteString(s string) *Hasher {
	h.h.Write([]byte(s))
	h.h.Write([]byte{0})
	return h
}

// Write adds raw bytes.
func (h *Hasher) Write(b []byte) *Hasher {
	h.h.Write(b)
	return h
}

// Sum returns the accumulated hex digest.
func (h *Hasher) Sum() string { return hex.EncodeToString(h.h.Sum(nil)) }

// HashBytes returns the hex digest of b.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// memLimitBytes bounds the in-memory tier. Once exceeded, new entries go to
// disk only — a simple deterministic bound instead of an eviction policy;
// long experiment sweeps stay within a fixed footprint.
const memLimitBytes = 256 << 20

// Cache is one tiered artifact store (memory + disk, plus an optional
// sharded remote tier). The zero value and nil are valid always-miss caches.
type Cache struct {
	dir string

	// Injectable seams for the fault-tolerance layer: sleep replaces
	// time.Sleep in retry backoff, remove replaces os.Remove for damaged
	// entries, and fault arms deterministic fault injection (see SetFault).
	// All nil in production use.
	sleep  func(time.Duration)
	remove func(string) error
	fault  *fault.Injector

	// remote is the optional third tier: a sharded remote cache shared by a
	// fleet of builds (see SetRemote). Lookup order is memory → disk →
	// remote; remote hits are promoted into the local tiers.
	remote *Remote

	mu       sync.Mutex
	mem      map[string][]byte
	memBytes int
}

// Open creates (if needed) and opens the on-disk tier under dir with a fresh
// in-memory tier. Most callers want Shared instead.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir, mem: make(map[string][]byte)}, nil
}

var (
	sharedMu sync.Mutex
	shared   = map[string]*Cache{}
)

// Shared returns the process-wide Cache for dir, creating it on first use.
// Sharing the instance shares the in-memory tier, so every build in a
// process (an experiment sweep, a test run) reuses artifacts at memory
// speed.
func Shared(dir string) (*Cache, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if c, ok := shared[abs]; ok {
		return c, nil
	}
	c, err := Open(abs)
	if err != nil {
		return nil, err
	}
	shared[abs] = c
	return c, nil
}

// Forget drops the process-wide instance for dir (if any). Benchmarks and
// tests that create many throwaway cache directories call it after removing
// the directory so the registry does not retain their memory tiers.
func Forget(dir string) {
	if abs, err := filepath.Abs(dir); err == nil {
		sharedMu.Lock()
		delete(shared, abs)
		sharedMu.Unlock()
	}
}

// SetRemote attaches (or detaches, with nil) the sharded remote tier. The
// remote tier obeys the same contract as the others: it can only ever turn a
// miss into a hit, never a build into a failure — a dead or corrupt shard
// degrades to a miss. Attaching a remote to a Shared cache attaches it for
// every build in the process using that directory; that is exactly what a
// compile daemon wants, and exactly why faulted builds (which open private
// handles) never see it.
func (c *Cache) SetRemote(r *Remote) {
	if c != nil {
		c.mu.Lock()
		c.remote = r
		c.mu.Unlock()
	}
}

// getRemote reads the remote tier under the lock: concurrent daemon builds
// re-attach the same remote through OpenBuildCache while others probe.
func (c *Cache) getRemote() *Remote {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// DropMemory empties the in-memory tier, leaving disk entries intact.
// Tests use it to simulate a fresh process against a warm directory.
func (c *Cache) DropMemory() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.mem = make(map[string][]byte)
	c.memBytes = 0
	c.mu.Unlock()
}

// Get returns the stored artifact for k. The second result reports whether a
// valid entry was found; corrupted disk entries are deleted and reported as
// a miss. The returned slice is shared — callers must treat it as read-only.
func (c *Cache) Get(k Key) ([]byte, bool) {
	data, ok, _ := c.GetProbe(k)
	return data, ok
}

// GetProbe is Get plus a Probe describing what the lookup survived:
// transient-I/O retries, corruption, a failed delete of the damaged entry.
// Every failure mode degrades to a miss — the probe exists for telemetry,
// not control flow. Tiers are consulted hottest-first (memory, disk, remote
// shard) and the probe's Tier names the one that served a hit.
func (c *Cache) GetProbe(k Key) ([]byte, bool, Probe) {
	return c.GetProbeCtx(context.Background(), k)
}

// GetProbeCtx is GetProbe under a context: a done context aborts disk retry
// loops between attempts and cancels in-flight remote shard requests, so a
// cancelled build stops paying cache latency promptly. Cancellation is just
// one more degraded mode — the lookup reports a miss, never an error.
func (c *Cache) GetProbeCtx(ctx context.Context, k Key) ([]byte, bool, Probe) {
	var pr Probe
	if c == nil {
		return nil, false, pr
	}
	id := k.id()
	c.mu.Lock()
	data, ok := c.mem[id]
	c.mu.Unlock()
	if ok {
		pr.Tier = "memory"
		return data, true, pr
	}
	if c.dir != "" {
		if payload, ok := c.getDisk(ctx, id, &pr); ok {
			pr.Tier = "disk"
			c.remember(id, payload)
			return payload, true, pr
		}
	}
	if remote := c.getRemote(); remote != nil {
		raw, shard, ok, rpr := remote.get(ctx, id)
		pr.Merge(rpr)
		if ok {
			payload, err := decodeEntry(raw)
			if err != nil {
				// The shard served damaged bytes (or they were damaged in
				// flight): delete the entry so the rebuild republishes a good
				// one end-to-end, the disk tier's exact contract.
				pr.Corrupt = true
				remote.drop(ctx, shard, id)
			} else {
				// Promote into the local tiers so the next probe is local;
				// a failed disk promotion only costs the promotion.
				if c.dir != "" {
					var ppr Probe
					if err := c.writeEntry(ctx, id, raw, &ppr); err == nil {
						pr.Retries += ppr.Retries
					}
				}
				c.remember(id, payload)
				pr.Tier = TierName(shard)
				return payload, true, pr
			}
		}
	}
	return nil, false, pr
}

// getDisk is the disk-tier half of GetProbe: read, validate, and on damage
// delete-and-miss.
func (c *Cache) getDisk(ctx context.Context, id string, pr *Probe) ([]byte, bool) {
	path := c.entryPath(id)
	raw, err := c.readEntry(ctx, id, path, pr)
	if err != nil {
		// Absence is the ordinary miss; anything else is a degraded miss
		// worth reporting.
		if !errors.Is(err, fs.ErrNotExist) {
			pr.IOErr = err
		}
		return nil, false
	}
	raw = c.fault.MaybeCorrupt(fault.CacheRead, id, raw)
	payload, err := decodeEntry(raw)
	if err != nil {
		// Treat damage as absence; removing the entry lets the rebuild
		// republish a good one. A failed delete leaves the bad entry behind
		// (to be rediscovered next probe) — record it rather than lose it.
		pr.Corrupt = true
		if rerr := c.removeEntry(path); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
			pr.RemoveErr = rerr
		}
		return nil, false
	}
	return payload, true
}

// Put stores data under k in both tiers. The cache takes ownership of data.
// Disk-tier failures are swallowed: a cache that cannot persist degrades to
// the memory tier rather than failing the build.
func (c *Cache) Put(k Key, data []byte) {
	c.PutProbe(k, data)
}

// PutProbe is Put plus a Probe describing retries and the final disk (or
// remote-shard) error the publication degraded over, if any. The entry is
// published to every configured tier: memory, disk, and the owning remote
// shard — any tier can fail independently without failing the others.
func (c *Cache) PutProbe(k Key, data []byte) Probe {
	return c.PutProbeCtx(context.Background(), k, data)
}

// PutProbeCtx is PutProbe under a context. A context that is already done
// refuses the publication entirely — no tier, not even memory, sees the
// entry — which is the cache-side half of the "a cancelled build never
// publishes" contract (the pipeline also gates its publications). A context
// that fires mid-publication aborts the remaining retries and tiers; the
// atomic rename protocol means a torn publication is impossible either way.
func (c *Cache) PutProbeCtx(ctx context.Context, k Key, data []byte) Probe {
	var pr Probe
	if c == nil {
		return pr
	}
	if err := ctx.Err(); err != nil {
		pr.IOErr = err
		return pr
	}
	id := k.id()
	c.store(id, data)
	remote := c.getRemote()
	var enc []byte
	if c.dir != "" || remote != nil {
		enc = encodeEntry(data)
	}
	if c.dir != "" {
		if err := c.writeEntry(ctx, id, enc, &pr); err != nil {
			pr.IOErr = err
		}
	}
	if remote != nil {
		pr.Merge(remote.put(ctx, id, enc))
	}
	return pr
}

// remember is the Get path's insert-only promotion of a disk entry into the
// memory tier.
func (c *Cache) remember(id string, data []byte) {
	c.mu.Lock()
	if _, ok := c.mem[id]; !ok && c.memBytes+len(data) <= memLimitBytes {
		c.mem[id] = data
		c.memBytes += len(data)
	}
	c.mu.Unlock()
}

// store is the Put path: it replaces any existing memory entry, so a
// republish after a corrupt payload was promoted does not leave the bad
// bytes shadowing the good ones.
func (c *Cache) store(id string, data []byte) {
	c.mu.Lock()
	if old, ok := c.mem[id]; ok {
		c.memBytes -= len(old)
		delete(c.mem, id)
	}
	if c.memBytes+len(data) <= memLimitBytes {
		c.mem[id] = data
		c.memBytes += len(data)
	}
	c.mu.Unlock()
}

func (c *Cache) entryPath(id string) string {
	return filepath.Join(c.dir, id+".art")
}

// Disk entry layout: magic, little-endian payload length, payload, SHA-256
// of the payload. decodeEntry rejects anything that does not parse exactly.
var entryMagic = [4]byte{'S', 'L', 'C', '1'}

func encodeEntry(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+4+8+sha256.Size)
	out = append(out, entryMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

func decodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < 4+8+sha256.Size {
		return nil, fmt.Errorf("cache: entry too short: %w", ErrCorrupt)
	}
	if [4]byte(raw[:4]) != entryMagic {
		return nil, fmt.Errorf("cache: bad entry magic: %w", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(raw[4:12])
	if n != uint64(len(raw)-4-8-sha256.Size) {
		return nil, fmt.Errorf("cache: entry length mismatch: %w", ErrCorrupt)
	}
	payload := raw[12 : 12+n]
	sum := sha256.Sum256(payload)
	if [sha256.Size]byte(raw[12+n:]) != sum {
		return nil, fmt.Errorf("cache: entry checksum mismatch: %w", ErrCorrupt)
	}
	return payload, nil
}
