package cache

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// breakerFixture is one Remote over a single togglable shard: while down, the
// shard answers 500 to everything (a sick server, not a dead listener), which
// exercises the same consecutive-failure path a hung or dying shard does.
type breakerFixture struct {
	remote *Remote
	store  *ShardStore
	down   atomic.Bool
}

func newBreakerFixture(t *testing.T, opts RemoteOptions) *breakerFixture {
	t.Helper()
	fx := &breakerFixture{}
	store, err := OpenShard(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fx.store = store
	inner := NewShardServer(store)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fx.down.Load() {
			http.Error(w, "shard sick", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	fx.remote = NewRemoteWith([]string{srv.URL}, opts)
	fx.remote.sleep = func(time.Duration) {}
	t.Cleanup(fx.remote.Close)
	return fx
}

// TestBreakerOpensAfterConsecutiveFailures: each failed operation (after its
// internal retries) counts one strike; at the threshold the breaker opens and
// subsequent operations are shed instantly — no HTTP attempt, no retries,
// RemoteErr = ErrShardOpen.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	// ProbeInterval an hour out: recovery is driven explicitly, never by the
	// background prober racing the assertions.
	fx := newBreakerFixture(t, RemoteOptions{BreakerThreshold: 3, ProbeInterval: time.Hour})
	fx.down.Store(true)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if snap := fx.remote.Breaker(0); snap.State != BreakerClosed {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i)
		}
		_, _, ok, pr := fx.remote.get(ctx, "entry")
		if ok || pr.RemoteErr == nil {
			t.Fatalf("op %d against a sick shard: ok=%t err=%v", i, ok, pr.RemoteErr)
		}
		if errors.Is(pr.RemoteErr, ErrShardOpen) {
			t.Fatalf("op %d was shed before the threshold", i)
		}
	}
	snap := fx.remote.Breaker(0)
	if snap.State != BreakerOpen || snap.Opens != 1 {
		t.Fatalf("after 3 failures: state=%s opens=%d, want open/1", snap.State, snap.Opens)
	}

	// Shed path: instant, structured, no retries.
	_, _, ok, pr := fx.remote.get(ctx, "entry")
	if ok || !errors.Is(pr.RemoteErr, ErrShardOpen) {
		t.Fatalf("open breaker did not shed: ok=%t err=%v", ok, pr.RemoteErr)
	}
	if pr.Retries != 0 {
		t.Fatalf("shed operation recorded %d retries, want 0 (the shard was never contacted)", pr.Retries)
	}
	if ppr := fx.remote.put(ctx, "entry2", []byte("x")); !errors.Is(ppr.RemoteErr, ErrShardOpen) {
		t.Fatalf("open breaker did not shed the put: %v", ppr.RemoteErr)
	}
	if snap := fx.remote.Breaker(0); snap.Shed < 2 {
		t.Fatalf("shed counter = %d, want >= 2", snap.Shed)
	}
}

// TestBreakerRecoversViaProbe: an open breaker stays open while the shard is
// sick (half-open probe fails) and closes once the shard answers again; the
// transition counters record every step and traffic flows after re-close.
func TestBreakerRecoversViaProbe(t *testing.T) {
	fx := newBreakerFixture(t, RemoteOptions{BreakerThreshold: 2, ProbeInterval: time.Hour})
	ctx := context.Background()

	// Publish while healthy so there is an entry to hit after recovery. The
	// shard validates ids and the entry framing, so use the real encodings.
	id := remoteKey("survivor").id()
	if pr := fx.remote.put(ctx, id, encodeEntry([]byte("payload"))); pr.RemoteErr != nil {
		t.Fatal(pr.RemoteErr)
	}

	fx.down.Store(true)
	for i := 0; i < 2; i++ {
		fx.remote.get(ctx, id)
	}
	if snap := fx.remote.Breaker(0); snap.State != BreakerOpen {
		t.Fatalf("state after threshold failures = %s", snap.State)
	}

	// Probe while still sick: half-open, probe fails, re-open.
	fx.remote.ProbeNow()
	snap := fx.remote.Breaker(0)
	if snap.State != BreakerOpen || snap.HalfOpens != 1 || snap.Probes != 1 || snap.Closes != 0 {
		t.Fatalf("failed probe: state=%s halfOpens=%d probes=%d closes=%d", snap.State, snap.HalfOpens, snap.Probes, snap.Closes)
	}

	// Shard heals; the next probe re-admits it.
	fx.down.Store(false)
	fx.remote.ProbeNow()
	snap = fx.remote.Breaker(0)
	if snap.State != BreakerClosed || snap.Closes != 1 {
		t.Fatalf("successful probe: state=%s closes=%d", snap.State, snap.Closes)
	}
	raw, _, ok, pr := fx.remote.get(ctx, id)
	if !ok || pr.RemoteErr != nil {
		t.Fatalf("get after recovery: ok=%t err=%v", ok, pr.RemoteErr)
	}
	if len(raw) == 0 {
		t.Fatal("recovered get returned no bytes")
	}
}

// TestBreakerBackgroundProberRecloses: the prober goroutine (started lazily
// on the first open) re-closes the breaker without any caller intervention.
func TestBreakerBackgroundProberRecloses(t *testing.T) {
	fx := newBreakerFixture(t, RemoteOptions{BreakerThreshold: 2, ProbeInterval: 5 * time.Millisecond})
	ctx := context.Background()
	fx.down.Store(true)
	for i := 0; i < 2; i++ {
		fx.remote.get(ctx, "k")
	}
	if snap := fx.remote.Breaker(0); snap.State != BreakerOpen {
		t.Fatalf("state = %s, want open", snap.State)
	}
	fx.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fx.remote.Breaker(0).State == BreakerClosed {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("background prober never re-closed the breaker: %+v", fx.remote.Breaker(0))
}

// TestBreakerDisabled: a negative threshold turns the breakers off — every
// operation pays the full degraded path, none is ever shed.
func TestBreakerDisabled(t *testing.T) {
	fx := newBreakerFixture(t, RemoteOptions{BreakerThreshold: -1})
	fx.down.Store(true)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		_, _, ok, pr := fx.remote.get(ctx, "entry")
		if ok {
			t.Fatal("sick shard served a hit")
		}
		if errors.Is(pr.RemoteErr, ErrShardOpen) {
			t.Fatalf("op %d shed with breakers disabled", i)
		}
	}
	if snap := fx.remote.Breaker(0); snap.State != BreakerClosed || snap.Opens != 0 {
		t.Fatalf("disabled breaker moved: %+v", snap)
	}
}

// TestBreakerIgnoresContextCancellation: an operation that fails because the
// caller's context was cancelled says nothing about the shard's health and
// must not count toward opening the breaker.
func TestBreakerIgnoresContextCancellation(t *testing.T) {
	fx := newBreakerFixture(t, RemoteOptions{BreakerThreshold: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 6; i++ {
		_, _, ok, pr := fx.remote.get(ctx, "entry")
		if ok {
			t.Fatal("cancelled get reported a hit")
		}
		if pr.RemoteErr == nil {
			t.Fatal("cancelled get reported no error")
		}
	}
	if snap := fx.remote.Breaker(0); snap.State != BreakerClosed || snap.Opens != 0 {
		t.Fatalf("cancelled operations moved the breaker: %+v", snap)
	}
}

// TestBreakerCountersSurface: the breaker gauges and transition counters
// appear in Counters() and survive DrainCounters' gauge-vs-sum split — the
// state gauge is re-delivered whole each drain, transition counts as deltas.
func TestBreakerCountersSurface(t *testing.T) {
	fx := newBreakerFixture(t, RemoteOptions{BreakerThreshold: 1, ProbeInterval: time.Hour})
	fx.down.Store(true)
	fx.remote.get(context.Background(), "entry")

	snap := fx.remote.Counters()
	if snap["cache/remote/shard0/breaker_state"] != int64(BreakerOpen) {
		t.Fatalf("breaker_state gauge = %d, want %d (open)", snap["cache/remote/shard0/breaker_state"], BreakerOpen)
	}
	if snap["cache/remote/shard0/breaker_opens"] != 1 {
		t.Fatalf("breaker_opens = %d", snap["cache/remote/shard0/breaker_opens"])
	}

	first := fx.remote.DrainCounters()
	if first["cache/remote/shard0/breaker_opens"] != 1 {
		t.Fatalf("first drain breaker_opens = %d", first["cache/remote/shard0/breaker_opens"])
	}
	second := fx.remote.DrainCounters()
	if second["cache/remote/shard0/breaker_opens"] != 0 {
		t.Fatalf("second drain re-delivered breaker_opens = %d", second["cache/remote/shard0/breaker_opens"])
	}
	if second["cache/remote/shard0/breaker_state"] != int64(BreakerOpen) {
		t.Fatalf("breaker_state gauge not re-delivered on drain: %v", second)
	}
}

// TestRemoteTimeoutConfigurable: the satellite contract — the once-hardcoded
// per-operation timeout is an option, defaulted when zero, surfaced by
// Timeout(), and nil remotes report 0.
func TestRemoteTimeoutConfigurable(t *testing.T) {
	if d := NewRemote([]string{"http://a"}).Timeout(); d != defaultRemoteTimeout {
		t.Fatalf("default timeout = %v, want %v", d, defaultRemoteTimeout)
	}
	r := NewRemoteWith([]string{"http://a"}, RemoteOptions{Timeout: 123 * time.Millisecond})
	if d := r.Timeout(); d != 123*time.Millisecond {
		t.Fatalf("configured timeout = %v", d)
	}
	if r.client.Timeout != 123*time.Millisecond {
		t.Fatalf("http client timeout = %v, option not applied", r.client.Timeout)
	}
	var nilRemote *Remote
	if d := nilRemote.Timeout(); d != 0 {
		t.Fatalf("nil remote timeout = %v", d)
	}
}

// TestFlightCancelledLeaderAbortsWaiters: a leader whose fn fails with a
// context error keeps that error for itself, while every waiter receives
// ErrFlightAborted — the structured "recompute by re-requesting" signal — and
// never inherits a cancellation that was not theirs.
func TestFlightCancelledLeaderAbortsWaiters(t *testing.T) {
	f := NewFlight()
	k := flightKey(404)
	entered := make(chan struct{})
	release := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = f.Do(k, func() ([]byte, error) {
			close(entered)
			<-release
			return nil, context.Canceled
		})
	}()
	<-entered

	// Wait until the waiter is registered before releasing the leader.
	waiterReady := make(chan struct{})
	var waiterErr error
	var waiterShared bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(waiterReady)
		_, waiterShared, waiterErr = f.Do(k, func() ([]byte, error) {
			t.Error("waiter executed fn; it should have waited on the leader")
			return nil, nil
		})
	}()
	<-waiterReady
	for {
		if _, waits := f.Stats(); waits == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader error = %v, want its own context.Canceled", leaderErr)
	}
	if !waiterShared || !errors.Is(waiterErr, ErrFlightAborted) {
		t.Fatalf("waiter: shared=%t err=%v, want shared ErrFlightAborted", waiterShared, waiterErr)
	}

	// The call was forgotten: a fresh Do executes again (errors never sticky).
	data, shared, err := f.Do(k, func() ([]byte, error) { return []byte("fresh"), nil })
	if err != nil || shared || string(data) != "fresh" {
		t.Fatalf("post-abort Do = %q, shared=%t, err=%v; want a fresh leader execution", data, shared, err)
	}
}
