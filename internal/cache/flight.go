package cache

import (
	"context"
	"errors"
	"sync"
)

// Flight is the build farm's single-flight layer: concurrent builds that miss
// the cache on the same stage key share one execution instead of compiling
// the same artifact in parallel. The currency is the encoded artifact bytes —
// never a decoded structure — so every waiter decodes its own private copy
// and builds stay free of shared mutable state, exactly as a warm cache hit
// would be.
//
// One Flight is shared across every request a compile daemon serves
// (pipeline.Config.Flight); the key space is the content-addressed cache key,
// which already folds in stage, input hash, config fingerprint, and schema,
// so two requests can only ever share work when they would have produced
// byte-identical artifacts.
//
// A nil *Flight is valid and never dedupes — Do then just runs fn.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	execs int64 // leader executions (fn invocations)
	waits int64 // calls that waited on another caller's execution
}

// flightCall is one in-flight execution; waiters block on done.
type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// ErrFlightAborted is what waiters receive when the leader's fn did not
// produce a shareable result for reasons private to the leader: it panicked
// (the leader re-panics so the pipeline's panic isolation still sees it), or
// its build was cancelled or timed out (the leader keeps its own context
// error). Every waiter degrades to this structured error instead of hanging
// or inheriting a cancellation that was never theirs; since completed calls
// are forgotten immediately, a re-request simply recomputes.
var ErrFlightAborted = errors.New("cache: single-flight leader aborted")

// NewFlight returns an empty single-flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*flightCall)}
}

// Do executes fn for k exactly once among concurrent callers: the first
// caller (the leader) runs fn; callers arriving while it runs wait and share
// the leader's result. shared reports whether this call waited rather than
// executed. Completed calls are forgotten immediately — the cache, not the
// Flight, is the store — so an error is never sticky: the next Do for the
// same key executes again.
func (f *Flight) Do(k Key, fn func() ([]byte, error)) (data []byte, shared bool, err error) {
	if f == nil {
		data, err = fn()
		return data, false, err
	}
	id := k.id()
	f.mu.Lock()
	if c, ok := f.calls[id]; ok {
		f.waits++
		f.mu.Unlock()
		<-c.done
		return c.data, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[id] = c
	f.execs++
	f.mu.Unlock()

	// Release waiters no matter how fn exits. On a panic the deferred path
	// runs before the panic unwinds past Do, so waiters get ErrFlightAborted
	// while the leader's panic keeps propagating to the pipeline's recovery.
	completed := false
	defer func() {
		if !completed {
			c.err = ErrFlightAborted
		}
		f.mu.Lock()
		delete(f.calls, id)
		f.mu.Unlock()
		close(c.done)
	}()
	data, err = fn()
	completed = true
	c.data, c.err = data, err
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The leader's build was cancelled or ran out of deadline — an event
		// private to that request. The leader reports its own context error;
		// waiters get the abort sentinel and fall back to computing privately.
		c.data, c.err = nil, ErrFlightAborted
	}
	return data, false, err
}

// Stats returns the group's lifetime totals: leader executions and deduped
// waits. A compile daemon surfaces them on its /stats endpoint.
func (f *Flight) Stats() (execs, waits int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs, f.waits
}
