package appgen

import (
	"fmt"
	"math/rand"
	"strings"

	"outliner/internal/isa"
	"outliner/internal/mir"
)

// GenerateClangLike produces a C++-compiler-shaped SwiftLite corpus for the
// §VII-E generality experiment: no reference counting (plain functions, no
// classes), deep call graphs, switch-like dispatch chains, and heavy
// calling-convention traffic — the shapes the paper observed when outlining
// clang itself ("register movement to set up calling conventions often
// appeared as top outlining candidates").
func GenerateClangLike(seed int64, nModules int) []Module {
	rng := rand.New(rand.NewSource(seed))
	var mods []Module
	var allFuncs []vendorFunc
	for mi := 0; mi < nModules; mi++ {
		name := fmt.Sprintf("CC%02d", mi)
		var b strings.Builder
		n := 10 + rng.Intn(8)
		for fi := 0; fi < n; fi++ {
			fname := fmt.Sprintf("cc%02d_visit%d", mi, fi)
			nArgs := 2 + rng.Intn(4)
			params := make([]string, nArgs)
			for i := range params {
				params[i] = fmt.Sprintf("a%d: Int", i)
			}
			fmt.Fprintf(&b, "\nfunc %s(%s) -> Int {\n  var acc = a0 + %d\n", fname, strings.Join(params, ", "), rng.Intn(911))
			// Dispatch chain (switch-on-kind shape).
			arms := 2 + rng.Intn(4)
			for k := 0; k < arms; k++ {
				fmt.Fprintf(&b, "  if acc %% %d == %d {\n", arms+2, k)
				if len(allFuncs) > 0 && rng.Intn(2) == 0 {
					callee := allFuncs[rng.Intn(len(allFuncs))]
					args := make([]string, callee.nArgs)
					for i := range args {
						args[i] = fmt.Sprintf("a%d: acc + %d", i, rng.Intn(7))
					}
					fmt.Fprintf(&b, "    acc = acc + %s(%s)\n", callee.name, strings.Join(args, ", "))
				} else {
					fmt.Fprintf(&b, "    acc = acc * %d + a1 - %d\n", 3+rng.Intn(97), rng.Intn(53))
				}
				fmt.Fprintf(&b, "  }\n")
			}
			fmt.Fprintf(&b, "  return acc %% %d\n}\n", 1009+rng.Intn(90000))
			allFuncs = append(allFuncs, vendorFunc{name: fname, module: name, nArgs: nArgs})
		}
		mods = append(mods, Module{Name: name, Files: map[string]string{name + ".sl": b.String()}})
	}
	// Entry point touching everything once (compiler-style batch run).
	var b strings.Builder
	b.WriteString("\nfunc main() {\n  var total = 0\n")
	for i, f := range allFuncs {
		if i%3 != 0 {
			continue
		}
		args := make([]string, f.nArgs)
		for j := range args {
			args[j] = fmt.Sprintf("a%d: total %% 89 + %d", j, j)
		}
		fmt.Fprintf(&b, "  total = total + %s(%s)\n", f.name, strings.Join(args, ", "))
	}
	b.WriteString("  print(total)\n}\n")
	mods = append(mods, Module{Name: "Driver", Files: map[string]string{"Driver.sl": b.String()}})
	return mods
}

// GenerateKernelLike fabricates a kernel-shaped machine program directly at
// the MIR level. Kernel code is C compiled with stack-protector hardening:
// the paper calls out "the function epilogue to check stack smashing attack"
// as a dominant repeating pattern, which only exists at the machine level —
// so this corpus is generated post-codegen, mirroring the artifact's use of
// prebuilt kernel bitcode.
func GenerateKernelLike(seed int64, nFuncs int) *mir.Program {
	rng := rand.New(rand.NewSource(seed))
	prog := mir.NewProgram()

	// The __stack_chk cookie global and failure handler.
	prog.AddGlobal(&mir.Global{Name: "__stack_chk_guard", Module: "kernel", Words: []int64{0x5ca1ab1e}})
	chkFail := &mir.Function{Name: "__stack_chk_fail", Module: "kernel"}
	chkFail.Blocks = []*mir.Block{{Label: "entry", Insts: []isa.Inst{{Op: isa.BRK, Imm: 86}}}}
	prog.AddFunc(chkFail)

	helperNames := []string{"kmalloc", "kfree", "mutex_lock", "mutex_unlock", "printk", "copy_from_user"}
	for _, h := range helperNames {
		f := &mir.Function{Name: h, Module: "kernel"}
		f.Blocks = []*mir.Block{{Label: "entry", Insts: []isa.Inst{
			isa.MoveRR(isa.X0, isa.X0),
			{Op: isa.RET},
		}}}
		prog.AddFunc(f)
	}

	// Callee-saved pair choices vary per function, like real register
	// allocation does — keeping prologues from being byte-identical
	// everywhere.
	csPairs := [][2]isa.Reg{{isa.X19, isa.X20}, {isa.X21, isa.X22}, {isa.X23, isa.X24}, {isa.X25, isa.X26}}
	for fi := 0; fi < nFuncs; fi++ {
		f := &mir.Function{Name: fmt.Sprintf("sys_handler_%04d", fi), Module: "kernel"}
		entry := &mir.Block{Label: "entry"}
		// 64-byte minimum: fp/lr at 0, callee-saved at 16, cookie at 32/40,
		// scratch slots at 48/56 — everything inside the frame (the machine
		// verifier checks that SP-relative accesses stay in bounds).
		frame := int64(64 + 16*rng.Intn(5))
		cs := csPairs[rng.Intn(len(csPairs))]

		// Prologue with stack-protector setup: load the cookie, stash it in
		// the frame.
		cookieSlot := int64(32 + 8*rng.Intn(2))
		entry.Insts = append(entry.Insts,
			isa.Inst{Op: isa.STPpre, Rd: isa.FP, Rd2: isa.LR, Rn: isa.SP, Imm: -frame},
			isa.Inst{Op: isa.STPui, Rd: cs[0], Rd2: cs[1], Rn: isa.SP, Imm: 16},
			isa.Inst{Op: isa.ADDri, Rd: isa.FP, Rn: isa.SP, Imm: 0},
			isa.Inst{Op: isa.ADR, Rd: isa.X8, Sym: "__stack_chk_guard"},
			isa.Inst{Op: isa.LDRui, Rd: isa.X9, Rn: isa.X8, Imm: 0},
			isa.Inst{Op: isa.STRui, Rd: isa.X9, Rn: isa.SP, Imm: cookieSlot},
		)
		// Body: register shuffling and helper calls (kernel C shapes).
		steps := 4 + rng.Intn(10)
		tmp := []isa.Reg{isa.X9, isa.X10, isa.X11, isa.X12, isa.X13}
		for s := 0; s < steps; s++ {
			t := tmp[rng.Intn(len(tmp))]
			switch rng.Intn(6) {
			case 0:
				entry.Insts = append(entry.Insts,
					isa.MoveRR(isa.X0, cs[0]),
					isa.Inst{Op: isa.BL, Sym: helperNames[rng.Intn(len(helperNames))]},
					isa.MoveRR(cs[0], isa.X0),
				)
			case 1:
				entry.Insts = append(entry.Insts,
					isa.MoveRR(isa.X0, cs[1]),
					isa.Inst{Op: isa.MOVZ, Rd: isa.X1, Imm: int64(rng.Intn(4096))},
					isa.Inst{Op: isa.BL, Sym: helperNames[rng.Intn(len(helperNames))]},
				)
			case 2:
				entry.Insts = append(entry.Insts,
					isa.Inst{Op: isa.ADDri, Rd: cs[0], Rn: cs[0], Imm: int64(1 + rng.Intn(512))},
					isa.Inst{Op: isa.ANDrs, Rd: cs[1], Rn: cs[1], Rm: cs[0]},
				)
			case 3:
				entry.Insts = append(entry.Insts,
					isa.Inst{Op: isa.LSLri, Rd: t, Rn: cs[0], Imm: int64(rng.Intn(8))},
					isa.Inst{Op: isa.EORrs, Rd: cs[1], Rn: cs[1], Rm: t},
					isa.Inst{Op: isa.SUBri, Rd: t, Rn: t, Imm: int64(rng.Intn(64))},
				)
			case 4:
				entry.Insts = append(entry.Insts,
					isa.Inst{Op: isa.MOVZ, Rd: t, Imm: int64(rng.Intn(65536))},
					isa.Inst{Op: isa.MUL, Rd: cs[0], Rn: cs[0], Rm: t},
				)
			default:
				slot := int64(48 + 8*rng.Intn(2))
				entry.Insts = append(entry.Insts,
					isa.Inst{Op: isa.LDRui, Rd: t, Rn: isa.SP, Imm: slot},
					isa.Inst{Op: isa.ADDri, Rd: t, Rn: t, Imm: int64(rng.Intn(4096))},
					isa.Inst{Op: isa.STRui, Rd: t, Rn: isa.SP, Imm: slot},
				)
			}
		}
		// Epilogue with the stack-smashing check: reload the stashed cookie,
		// compare with the global, branch to __stack_chk_fail on mismatch.
		// This exact sequence repeats across every kernel function.
		entry.Insts = append(entry.Insts,
			isa.Inst{Op: isa.LDRui, Rd: isa.X9, Rn: isa.SP, Imm: cookieSlot},
			isa.Inst{Op: isa.ADR, Rd: isa.X8, Sym: "__stack_chk_guard"},
			isa.Inst{Op: isa.LDRui, Rd: isa.X10, Rn: isa.X8, Imm: 0},
			isa.Inst{Op: isa.CMPrs, Rn: isa.X9, Rm: isa.X10},
			isa.Inst{Op: isa.Bcc, Cond: isa.NE, Sym: "chk_fail"},
		)
		good := &mir.Block{Label: "good", Insts: []isa.Inst{
			{Op: isa.LDPui, Rd: cs[0], Rd2: cs[1], Rn: isa.SP, Imm: 16},
			{Op: isa.LDPpost, Rd: isa.FP, Rd2: isa.LR, Rn: isa.SP, Imm: frame},
			{Op: isa.RET},
		}}
		fail := &mir.Block{Label: "chk_fail", Insts: []isa.Inst{
			{Op: isa.BL, Sym: "__stack_chk_fail"},
			{Op: isa.BRK, Imm: 86},
		}}
		f.Blocks = []*mir.Block{entry, good, fail}
		prog.AddFunc(f)
	}
	return prog
}
