// Package appgen fabricates multi-module SwiftLite applications that stand
// in for the paper's proprietary subjects (UberRider, UberDriver, UberEats),
// plus non-Swift corpora (a clang-like program and a kernel-like machine
// program) for the generality experiments (§VII-E).
//
// The generator does not try to imitate ride-sharing business logic; it
// reproduces the *code shapes* the paper identifies as machine-pattern
// factories, with realistic frequency knobs:
//
//   - model classes with reference-typed fields (retain/release traffic),
//   - JSON-style throwing initializers with long try sequences (the §IV-4
//     out-of-SSA copy blow-up),
//   - handler functions calling shared vendor utilities (calling-convention
//     move+BL repetition across modules),
//   - closures passed to vendor combinators (closure specialization clones),
//   - per-module string constants (data-layout experiments),
//   - a mix of Swift-flavoured and Objective-C-flavoured modules
//     (objc_retain/objc_release traffic, clang metadata flags).
//
// Generation is fully deterministic per (profile, scale, seed).
package appgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Profile describes one application.
type Profile struct {
	Name string
	Seed int64

	// Module counts at scale 1.0.
	FeatureModules int
	ModelModules   int
	VendorModules  int

	// SwiftFraction of modules; the rest are Objective-C flavoured
	// (UberRider 0.83, UberDriver 0.77, UberEats 0.66).
	SwiftFraction float64

	// FuncsPerModule at scale 1.0 (each actual module varies ±40%).
	FuncsPerModule int

	// TryInitFields is the typical field count of JSON-style throwing
	// initializers (the paper's MyClass has 118; we scale down).
	TryInitFields int

	// Spans is the number of core-span entry points (Figure 13 has 9).
	Spans int
}

// PaperModules is the module count the paper reports for the flagship app
// (476 modules, ~2M LoC). ScaleForModules(UberRider, PaperModules) yields the
// scale knob that reproduces it.
const PaperModules = 476

// UberRider is the flagship profile (scaled from 476 modules / 2M LoC to
// something a laptop compiles in seconds).
var UberRider = Profile{
	Name: "UberRider", Seed: 20170301,
	FeatureModules: 22, ModelModules: 10, VendorModules: 8,
	SwiftFraction: 0.83, FuncsPerModule: 14, TryInitFields: 12, Spans: 9,
}

// UberDriver mirrors the second app (77% Swift).
var UberDriver = Profile{
	Name: "UberDriver", Seed: 20180601,
	FeatureModules: 24, ModelModules: 9, VendorModules: 8,
	SwiftFraction: 0.77, FuncsPerModule: 13, TryInitFields: 10, Spans: 9,
}

// UberEats mirrors the third app (66% Swift).
var UberEats = Profile{
	Name: "UberEats", Seed: 20190901,
	FeatureModules: 20, ModelModules: 10, VendorModules: 7,
	SwiftFraction: 0.66, FuncsPerModule: 13, TryInitFields: 11, Spans: 9,
}

// Module is one generated source module.
type Module struct {
	Name  string
	ObjC  bool // Objective-C flavoured (different runtime calls + metadata)
	Files map[string]string
}

// EditBody returns a copy of mods where the named module's source has a
// comment appended — the canonical "developer edited a function body" event
// for incremental-build tests and benchmarks. The module's source hash
// changes; its exported-interface digest does not, so every other module's
// llir cache entry must stay warm.
func EditBody(mods []Module, name, tag string) []Module {
	return editModule(mods, name, "\n// edit "+tag+"\n")
}

// EditInterface returns a copy of mods where the named module gains a new
// exported function — the canonical "developer changed a module's interface"
// event. The module's exported-interface digest changes, so every module that
// imports it (in SwiftLite's whole-app import model: every other module) must
// rebuild its llir stage.
func EditInterface(mods []Module, name, tag string) []Module {
	return editModule(mods, name,
		fmt.Sprintf("\nfunc ifaceProbe_%s(x: Int) -> Int { return x + %d }\n", tag, len(tag)+1))
}

func editModule(mods []Module, name, suffix string) []Module {
	out := append([]Module(nil), mods...)
	for i, m := range out {
		if m.Name != name {
			continue
		}
		files := make(map[string]string, len(m.Files))
		for fn, src := range m.Files {
			files[fn] = src
		}
		// Append to the module's primary file (every generated module has
		// exactly one, named after the module).
		fn := m.Name + ".sl"
		files[fn] += suffix
		out[i].Files = files
		return out
	}
	panic("appgen: EditBody/EditInterface: no module named " + name)
}

// LineCount totals source lines across modules (the corpus's "LoC").
func LineCount(mods []Module) int {
	n := 0
	for _, m := range mods {
		for _, src := range m.Files {
			n += strings.Count(src, "\n")
		}
	}
	return n
}

// Generate produces the app's modules at the given scale (1.0 = the base
// app; Figure 1's growth sweep raises it week over week). Above scale 1.0
// modules also grow internally — more utilities, types, and handler steps per
// module — so paper-sized module counts come with paper-sized line counts
// rather than 476 toy modules. At or below 1.0 the per-module shape is
// exactly the historical one, byte for byte.
func Generate(p Profile, scale float64) []Module {
	size := 1.0
	if scale > 1 {
		size = 0.5 + scale/2
	}
	g := &appGen{
		p:    p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		size: size,
	}
	return g.generate(scale)
}

// CountModules returns len(Generate(p, scale)) without generating anything:
// the same arithmetic generate uses, kept in lockstep by TestCountModules.
func CountModules(p Profile, scale float64) int {
	return scaled(p.VendorModules, 0.5+scale/2) +
		scaled(p.ModelModules, scale) +
		scaled(p.FeatureModules, scale) +
		1 // the app module
}

// ScaleForModules returns the smallest scale at which Generate yields at
// least want modules. ScaleForModules(UberRider, PaperModules) is the
// paper-scale knob.
func ScaleForModules(p Profile, want int) float64 {
	lo, hi := 0.0, 1.0
	for CountModules(p, hi) < want {
		hi *= 2
	}
	for i := 0; i < 64; i++ {
		mid := lo + (hi-lo)/2
		if CountModules(p, mid) >= want {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

type appGen struct {
	p    Profile
	rng  *rand.Rand
	size float64 // per-module size multiplier; exactly 1.0 at scale <= 1

	vendorFuncs []vendorFunc // utilities callable from any module
	modelTypes  []modelType
}

type vendorFunc struct {
	name   string
	module string
	nArgs  int
}

type modelType struct {
	name      string
	module    string
	numFields int
	throwing  bool
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

func (g *appGen) generate(scale float64) []Module {
	nVendor := scaled(g.p.VendorModules, 0.5+scale/2) // vendors grow slower
	nModel := scaled(g.p.ModelModules, scale)
	nFeature := scaled(g.p.FeatureModules, scale)

	var mods []Module

	// Vendor modules first (their functions are imported everywhere).
	for i := 0; i < nVendor; i++ {
		mods = append(mods, g.vendorModule(i))
	}
	for i := 0; i < nModel; i++ {
		mods = append(mods, g.modelModule(i))
	}
	for i := 0; i < nFeature; i++ {
		mods = append(mods, g.featureModule(i, scale))
	}
	mods = append(mods, g.appModule(nFeature))
	return mods
}

// funcsIn returns the per-module function budget with deterministic jitter.
func (g *appGen) funcsIn() int {
	base := g.p.FuncsPerModule
	return base*6/10 + g.rng.Intn(base*8/10+1)
}

func (g *appGen) objcFlavoured() bool {
	return g.rng.Float64() >= g.p.SwiftFraction
}

// ---- vendor modules: shared utilities ----

func (g *appGen) vendorModule(idx int) Module {
	name := fmt.Sprintf("Vendor%02d", idx)
	var b strings.Builder
	n := scaled(g.funcsIn(), g.size)
	for fi := 0; fi < n; fi++ {
		fname := fmt.Sprintf("vnd%02d_util%d", idx, fi)
		nArgs := 1 + g.rng.Intn(3)
		g.vendorFuncs = append(g.vendorFuncs, vendorFunc{name: fname, module: name, nArgs: nArgs})
		g.emitUtilFunc(&b, fname, nArgs)
	}
	// One higher-order combinator per vendor module (closure specialization
	// fodder, Listing 9's `evaluate`).
	comb := fmt.Sprintf("vnd%02d_evaluate", idx)
	fmt.Fprintf(&b, `
func %s(node: String, f: (Int) -> Int) -> Int {
  var acc = node.count + %d
  for i in 0 ..< %d {
    acc = acc + f(i) %% %d
  }
  return acc
}
`, comb, g.rng.Intn(500), 4+g.rng.Intn(5), 1000+g.rng.Intn(9000))
	return Module{Name: name, Files: map[string]string{name + ".sl": b.String()}}
}

func (g *appGen) emitUtilFunc(b *strings.Builder, name string, nArgs int) {
	params := make([]string, nArgs)
	for i := range params {
		params[i] = fmt.Sprintf("a%d: Int", i)
	}
	fmt.Fprintf(b, "\nfunc %s(%s) -> Int {\n", name, strings.Join(params, ", "))
	// A small deterministic arithmetic body.
	expr := "a0"
	for i := 1; i < nArgs; i++ {
		op := []string{"+", "-", "*"}[g.rng.Intn(3)]
		expr = fmt.Sprintf("(%s %s a%d)", expr, op, i)
	}
	k := 1 + g.rng.Intn(997)
	k2 := 2 + g.rng.Intn(89)
	switch g.rng.Intn(6) {
	case 0:
		fmt.Fprintf(b, "  return %s + %d\n", expr, k)
	case 1:
		fmt.Fprintf(b, "  var t = %s\n  if t < 0 { t = 0 - t }\n  return t %% %d + 1\n", expr, k)
	case 2:
		fmt.Fprintf(b, "  var t = 0\n  for i in 0 ..< %d { t = t + %s + i }\n  return t + %d\n", 2+g.rng.Intn(5), expr, k)
	case 3:
		fmt.Fprintf(b, "  var t = %s\n  while t > %d { t = t / %d - 1 }\n  return t + %d\n", expr, k, k2, g.rng.Intn(31))
	case 4:
		fmt.Fprintf(b, "  let t = %s\n  if t %% %d < %d { return t * %d }\n  return t - %d\n", expr, k2, k2/2+1, 2+g.rng.Intn(4), k)
	default:
		fmt.Fprintf(b, "  var t = %s\n  var s = %d\n  for i in 0 ..< 3 { s = s + t %% (i + %d) }\n  return s\n", expr, k, 2+g.rng.Intn(7))
	}
	b.WriteString("}\n")
}

// ---- model modules: classes with (throwing) initializers ----

func (g *appGen) modelModule(idx int) Module {
	name := fmt.Sprintf("Model%02d", idx)
	objc := g.objcFlavoured()
	var b strings.Builder

	// The module-level "JSON field source" used by throwing inits.
	fmt.Fprintf(&b, `
func mdl%02d_fetch(k: Int) throws -> String {
  if k < 0 { throw k * -1 }
  return "field-%02d"
}
`, idx, idx)

	nTypes := scaled(2+g.rng.Intn(3), g.size)
	for ti := 0; ti < nTypes; ti++ {
		tname := fmt.Sprintf("Mdl%02dT%d", idx, ti)
		throwing := ti == 0 // one JSON-style type per module
		nFields := 3 + g.rng.Intn(4)
		if throwing {
			nFields = g.p.TryInitFields*7/10 + g.rng.Intn(g.p.TryInitFields*6/10+1)
		}
		g.modelTypes = append(g.modelTypes, modelType{
			name: tname, module: name, numFields: nFields, throwing: throwing,
		})
		fmt.Fprintf(&b, "\nclass %s {\n", tname)
		for fi := 0; fi < nFields; fi++ {
			if throwing || fi%3 == 1 {
				fmt.Fprintf(&b, "  var f%d: String\n", fi)
			} else {
				fmt.Fprintf(&b, "  var f%d: Int\n", fi)
			}
		}
		if throwing {
			// The Figure 9 shape: a long run of try assignments.
			fmt.Fprintf(&b, "  init(base: Int) throws {\n")
			for fi := 0; fi < nFields; fi++ {
				fmt.Fprintf(&b, "    self.f%d = try mdl%02d_fetch(k: base + %d)\n", fi, idx, fi)
			}
			fmt.Fprintf(&b, "  }\n")
		}
		// An accessor method, salted per class so classes are not replicas.
		fmt.Fprintf(&b, "  func checksum() -> Int {\n    var acc = %d\n", g.rng.Intn(300))
		limit := 2 + g.rng.Intn(3)
		for fi := 0; fi < nFields && fi < limit; fi++ {
			if throwing || fi%3 == 1 {
				fmt.Fprintf(&b, "    acc = acc + self.f%d.count * %d\n", fi, 1+g.rng.Intn(5))
			} else {
				fmt.Fprintf(&b, "    acc = acc + self.f%d\n", fi)
			}
		}
		fmt.Fprintf(&b, "    return acc\n  }\n")
		fmt.Fprintf(&b, "}\n")
	}

	// A parse-all function exercising the throwing inits (cold path).
	fmt.Fprintf(&b, `
func mdl%02d_parseAll(base: Int) -> Int {
  var total = %d
  do {
    let t = try %s(base: base)
    total = total + t.checksum() %% %d
  } catch {
    total = total + error * %d
  }
  return total
}
`, idx, g.rng.Intn(50), fmt.Sprintf("Mdl%02dT0", idx), 10000+g.rng.Intn(80000), 1+g.rng.Intn(7))
	return Module{Name: name, ObjC: objc, Files: map[string]string{name + ".sl": b.String()}}
}

// ---- feature modules: handlers, vendor calls, closures ----

func (g *appGen) featureModule(idx int, scale float64) Module {
	name := fmt.Sprintf("Feature%02d", idx)
	objc := g.objcFlavoured()
	var b strings.Builder

	// Per-module data: a set of small string constants (feature flags, UI
	// copy, endpoints in a real app) that this module's handlers read. This
	// is the programmer-driven data affinity §VI-3 is about: "feature
	// developers typically put all the data needed by a feature in its
	// relevant module and place relevant data together". Grouped layout
	// packs them into a page or two; llvm-link's interleaving scatters them.
	fmt.Fprintf(&b, "\nfunc ftr%02d_manifestSum(salt: Int) -> Int {\n  var acc = salt\n", idx)
	nStrings := 18 + g.rng.Intn(10)
	for si := 0; si < nStrings; si++ {
		lit := g.manifestLiteral(idx*100 + si)
		fmt.Fprintf(&b, "  acc = acc + %q.count + %q[acc %% %d]\n", lit, lit, len(lit))
	}
	fmt.Fprintf(&b, "  return acc\n}\n")

	n := scaled(g.funcsIn(), 0.5+scale/2)
	if n < 3 {
		n = 3 // spans address handlers 0..2 of every feature module
	}
	for fi := 0; fi < n; fi++ {
		g.emitHandler(&b, idx, fi)
	}
	if idx%4 == 0 {
		// A Swifter-like scenario (the paper's Listing 9): a module-local
		// combinator with a long straight-line body, called with distinct
		// closures from several wrappers. Closure specialization clones the
		// combinator per wrapper, planting the app's longest repeating
		// machine pattern.
		g.emitSwifterScenario(&b, idx)
	}
	return Module{Name: name, ObjC: objc, Files: map[string]string{name + ".sl": b.String()}}
}

func (g *appGen) emitHandler(b *strings.Builder, modIdx, fnIdx int) {
	name := fmt.Sprintf("ftr%02d_handle%d", modIdx, fnIdx)
	fmt.Fprintf(b, "\nfunc %s(req: Int) -> Int {\n", name)
	// Every handler starts by consulting its module's data (config reads).
	fmt.Fprintf(b, "  var acc = req + ftr%02d_manifestSum(salt: req %% 7)\n", modIdx)
	if modIdx%4 == 0 && fnIdx == 0 {
		// The Swifter-like rendering path (see emitSwifterScenario).
		fmt.Fprintf(b, "  acc = acc + ftr%02d_renderAll(x: acc %% 11)\n", modIdx)
	}
	steps := scaled(2+g.rng.Intn(6), g.size)
	for s := 0; s < steps; s++ {
		switch g.rng.Intn(9) {
		case 0, 1: // vendor utility call (cross-module repetition)
			if len(g.vendorFuncs) > 0 {
				vf := g.vendorFuncs[g.rng.Intn(len(g.vendorFuncs))]
				args := make([]string, vf.nArgs)
				for i := range args {
					args[i] = fmt.Sprintf("a%d: acc + %d", i, g.rng.Intn(9))
				}
				fmt.Fprintf(b, "  acc = acc + %s(%s)\n", vf.name, strings.Join(args, ", "))
			}
		case 2: // model construction + use (retain/release traffic)
			if len(g.modelTypes) > 0 {
				mt := g.modelTypes[g.rng.Intn(len(g.modelTypes))]
				if !mt.throwing {
					args := make([]string, mt.numFields)
					for i := range args {
						if i%3 == 1 {
							args[i] = fmt.Sprintf("f%d: \"v%d\"", i, g.rng.Intn(20))
						} else {
							args[i] = fmt.Sprintf("f%d: acc + %d", i, i)
						}
					}
					fmt.Fprintf(b, "  let m%d = %s(%s)\n  acc = acc + m%d.checksum()\n",
						s, mt.name, strings.Join(args, ", "), s)
				} else {
					parse := strings.Replace(mt.name[:5], "Mdl", "mdl", 1)
					fmt.Fprintf(b, "  acc = acc + %s_parseAll(base: acc %% 7)\n", parse)
				}
			}
		case 3: // closure through a vendor combinator (specialization)
			vendorIdx := g.rng.Intn(maxInt(1, g.p.VendorModules/2))
			k := 1 + g.rng.Intn(5)
			fmt.Fprintf(b, "  acc = acc + vnd%02d_evaluate(node: \"n%d\", f: { (x: Int) -> Int in return x * %d + acc })\n",
				vendorIdx, g.rng.Intn(12), k)
		case 4: // small loop (array churn)
			fmt.Fprintf(b, "  var xs%d = [acc, acc + 1, acc + 2]\n", s)
			fmt.Fprintf(b, "  for i in 0 ..< xs%d.count { acc = acc + xs%d[i] %% 5 }\n", s, s)
		case 5: // module data scan (manifest string pages)
			fmt.Fprintf(b, "  acc = acc + ftr%02d_manifestSum(salt: acc %% 13)\n", modIdx)
		case 6: // a batch of retained model objects (release runs at scope end)
			if len(g.modelTypes) > 0 {
				mt := g.modelTypes[g.rng.Intn(len(g.modelTypes))]
				if !mt.throwing {
					for v := 0; v < 3; v++ {
						args := make([]string, mt.numFields)
						for i := range args {
							if i%3 == 1 {
								args[i] = fmt.Sprintf("f%d: \"b%d\"", i, g.rng.Intn(30))
							} else {
								args[i] = fmt.Sprintf("f%d: acc + %d", i, v+i)
							}
						}
						fmt.Fprintf(b, "  let o%d_%d = %s(%s)\n", s, v, mt.name, strings.Join(args, ", "))
					}
					fmt.Fprintf(b, "  acc = acc + o%d_0.checksum() + o%d_1.checksum() + o%d_2.checksum()\n", s, s, s)
				}
			}
		case 7: // small state machine
			fmt.Fprintf(b, "  var st%d = acc %% %d\n", s, 3+g.rng.Intn(4))
			fmt.Fprintf(b, "  while st%d > 0 { st%d = st%d - 1 acc = acc + st%d * %d }\n",
				s, s, s, s, 1+g.rng.Intn(9))
		default: // branching on state
			fmt.Fprintf(b, "  if acc %% %d == 0 { acc = acc + %d } else { acc = acc - %d }\n",
				2+g.rng.Intn(5), g.rng.Intn(503), g.rng.Intn(97))
		}
	}
	// A per-function fingerprint keeps handlers from being exact replicas
	// (real feature code always differs somewhere).
	fmt.Fprintf(b, "  return acc + %d\n}\n", modIdx*1000+fnIdx*7+g.rng.Intn(900000))
}

// manifestLiteral fabricates a unique short "feature data" string.
func (g *appGen) manifestLiteral(idx int) string {
	var b strings.Builder
	n := 8 + g.rng.Intn(16)
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + (idx*7+i*13+g.rng.Intn(5))%26))
	}
	fmt.Fprintf(&b, "-%d", idx)
	return b.String()
}

// emitSwifterScenario plants the closure-specialization replication pattern.
func (g *appGen) emitSwifterScenario(b *strings.Builder, idx int) {
	bodyLen := 30 + g.rng.Intn(30)
	fmt.Fprintf(b, "\nfunc ftr%02d_render(node: String, f: (Int) -> Int) -> Int {\n  var acc = f(node.count)\n", idx)
	for i := 0; i < bodyLen; i++ {
		fmt.Fprintf(b, "  acc = acc + %d * (acc %% %d + 1)\n", i+1+g.rng.Intn(3), i+3)
	}
	fmt.Fprintf(b, "  return acc\n}\n")
	for w := 0; w < 3; w++ {
		fmt.Fprintf(b, `
func ftr%02d_widget%d(x: Int) -> Int {
  return ftr%02d_render(node: "w%d-%02d", f: { (v: Int) -> Int in return v * %d + x %% %d })
}
`, idx, w, idx, w, idx, w+2+g.rng.Intn(4), 7+g.rng.Intn(90))
	}
	// Reachable from handler 0 so spans execute it. Salted so modules'
	// renderAll functions are not alpha-equivalent replicas.
	fmt.Fprintf(b, "\nfunc ftr%02d_renderAll(x: Int) -> Int {\n  return ftr%02d_widget0(x: x) + ftr%02d_widget1(x: x + %d) + ftr%02d_widget2(x: x + %d)\n}\n",
		idx, idx, idx, 1+g.rng.Intn(40), idx, 2+g.rng.Intn(40))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- the app module: spans + main ----

func (g *appGen) appModule(nFeature int) Module {
	var b strings.Builder
	// Spans are the paper's core use cases: each touches a distinct slice
	// of feature modules, mostly running code once (UI-style, no hotspots).
	for s := 0; s < g.p.Spans; s++ {
		fmt.Fprintf(&b, "\nfunc span%d() -> Int {\n  var acc = %d\n", s+1, s)
		// Each span sweeps a broad, mostly-cold slice of the app — UI flows
		// run lots of distinct code (§VII-B: "a large fraction of the code
		// is run only once in a typical usage scenario"; "our code footprint
		// is heavy"). The sweep repeats a few times (screens revisited),
		// so a footprint beyond the instruction cache stays under pressure.
		calls := 2*nFeature + g.rng.Intn(8)
		for c := 0; c < calls; c++ {
			mod := (s*4 + c) % nFeature
			fmt.Fprintf(&b, "  acc = acc + ftr%02d_handle%d(req: acc %% 97)\n", mod, (s+c)%3)
		}
		fmt.Fprintf(&b, "  return acc\n}\n")
	}
	b.WriteString("\nfunc main() {\n  var total = 0\n")
	for s := 0; s < g.p.Spans; s++ {
		fmt.Fprintf(&b, "  total = total + span%d()\n", s+1)
	}
	b.WriteString("  print(total)\n}\n")
	return Module{Name: "App", Files: map[string]string{"App.sl": b.String()}}
}
