package appgen

import (
	"fmt"

	"outliner/internal/frontend"
	"outliner/internal/llir"
	"outliner/internal/obs"
	"outliner/internal/par"
	"outliner/internal/pipeline"
)

// CompileModules lowers generated modules to per-module LLIR, applying the
// Objective-C flavour to modules marked ObjC: their reference-counting calls
// become objc_retain/objc_release and their GC module flag carries the clang
// identity — the §VI-2 mixed-compiler situation.
func CompileModules(mods []Module, cfg pipeline.Config) ([]*llir.Module, error) {
	sources := make([]pipeline.Source, len(mods))
	for i, m := range mods {
		sources[i] = pipeline.Source{Name: m.Name, Files: m.Files}
	}
	parsed, err := par.MapLanes(cfg.Parallelism, len(mods), func(lane, i int) ([]*frontend.File, error) {
		files, perr := pipeline.ParseSource(sources[i])
		if perr != nil {
			return nil, fmt.Errorf("appgen: module %s: %w", sources[i].Name, perr)
		}
		return files, nil
	})
	if err != nil {
		return nil, err
	}
	// The import index shares AST nodes across modules and synthesizes
	// memberwise initializers in place, so it is built serially once;
	// per-module lowering then fans out over private ASTs (CompileToLLIR
	// re-parses the module's own files), collecting results in module order.
	ix := frontend.NewImportsIndex(parsed...)
	imports := make([]*frontend.Imports, len(mods))
	for i := range mods {
		imports[i] = ix.For(i)
	}
	bc, err := pipeline.OpenBuildCache(cfg)
	if err != nil {
		return nil, err
	}
	var keys *pipeline.ModuleKeys
	if bc != nil {
		keys = pipeline.ComputeModuleKeys(sources, parsed, cfg.Tracer)
	}
	return par.MapLanes(cfg.Parallelism, len(mods), func(lane, i int) (*llir.Module, error) {
		m := mods[i]
		sp := cfg.Tracer.StartSpan("frontend "+m.Name, lane+1)
		defer sp.End()
		// The cached artifact is the pre-flavour module; the ObjC rewrite is
		// deterministic and cheap, and both cold and warm paths return a
		// private module, so re-applying it after a hit is safe and keeps
		// the flavour out of the cache key.
		lm, err := bc.CompileToLLIRCached(sources[i], cfg, imports[i], i, keys, lane+1)
		if err != nil {
			return nil, fmt.Errorf("appgen: module %s: %w", m.Name, err)
		}
		if m.ObjC {
			applyObjCFlavour(lm)
		}
		return lm, nil
	})
}

// applyObjCFlavour rewrites a module as if clang had produced it.
func applyObjCFlavour(m *llir.Module) {
	m.Metadata["Objective-C Garbage Collection"] = "clang abi-v11.0 bits-0x17"
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.Op != llir.Call {
					continue
				}
				switch in.Sym {
				case llir.RTRetain:
					in.Sym = llir.RTObjCRetain
				case llir.RTRelease:
					in.Sym = llir.RTObjCRelease
				}
			}
		}
	}
}

// BuildApp generates, compiles, and links an app profile at the given scale
// under cfg.
func BuildApp(p Profile, scale float64, cfg pipeline.Config) (*pipeline.Result, error) {
	return BuildGenerated(Generate(p, scale), cfg)
}

// BuildGenerated compiles and links already-generated modules under cfg.
// Benchmarks use it to keep corpus generation (and deterministic edits to the
// corpus) out of the timed build.
func BuildGenerated(generated []Module, cfg pipeline.Config) (*pipeline.Result, error) {
	tr := obs.Ensure(cfg.Tracer)
	cfg.Tracer = tr
	mark := tr.Mark()
	sp := tr.StartStage("frontend+permodule", 0)
	tr.Add("appgen/modules", int64(len(generated)))
	mods, err := CompileModules(generated, cfg)
	sp.End()
	if err != nil {
		return nil, err
	}
	res, err := pipeline.BuildFromLLIR(mods, cfg)
	if err != nil {
		return nil, err
	}
	res.Timings = tr.StageTotalsSince(mark)
	return res, nil
}
