package appgen

import (
	"fmt"

	"outliner/internal/frontend"
	"outliner/internal/llir"
	"outliner/internal/obs"
	"outliner/internal/par"
	"outliner/internal/pipeline"
)

// CompileModules lowers generated modules to per-module LLIR, applying the
// Objective-C flavour to modules marked ObjC: their reference-counting calls
// become objc_retain/objc_release and their GC module flag carries the clang
// identity — the §VI-2 mixed-compiler situation.
func CompileModules(mods []Module, cfg pipeline.Config) ([]*llir.Module, error) {
	parsed := make([][]*frontend.File, len(mods))
	for i, m := range mods {
		src := pipeline.Source{Name: m.Name, Files: m.Files}
		files, err := pipeline.ParseSource(src)
		if err != nil {
			return nil, fmt.Errorf("appgen: module %s: %w", m.Name, err)
		}
		parsed[i] = files
	}
	// Imports share AST nodes across modules and NewImports synthesizes
	// memberwise initializers in place, so import construction stays
	// serial; per-module lowering then fans out over private ASTs
	// (CompileToLLIR re-parses the module's own files), collecting results
	// in module order.
	imports := make([]*frontend.Imports, len(mods))
	for i := range mods {
		var others []*frontend.File
		for j, files := range parsed {
			if j != i {
				others = append(others, files...)
			}
		}
		imports[i] = frontend.NewImports(others...)
	}
	bc, err := pipeline.OpenBuildCache(cfg)
	if err != nil {
		return nil, err
	}
	var moduleHashes []string
	if bc != nil {
		moduleHashes = make([]string, len(mods))
		for i, m := range mods {
			moduleHashes[i] = pipeline.SourceHash(pipeline.Source{Name: m.Name, Files: m.Files})
		}
	}
	return par.MapLanes(cfg.Parallelism, len(mods), func(lane, i int) (*llir.Module, error) {
		m := mods[i]
		sp := cfg.Tracer.StartSpan("frontend "+m.Name, lane+1)
		defer sp.End()
		// The cached artifact is the pre-flavour module; the ObjC rewrite is
		// deterministic and cheap, and both cold and warm paths return a
		// private module, so re-applying it after a hit is safe and keeps
		// the flavour out of the cache key.
		lm, err := bc.CompileToLLIRCached(pipeline.Source{Name: m.Name, Files: m.Files},
			cfg, imports[i], i, moduleHashes, lane+1)
		if err != nil {
			return nil, fmt.Errorf("appgen: module %s: %w", m.Name, err)
		}
		if m.ObjC {
			applyObjCFlavour(lm)
		}
		return lm, nil
	})
}

// applyObjCFlavour rewrites a module as if clang had produced it.
func applyObjCFlavour(m *llir.Module) {
	m.Metadata["Objective-C Garbage Collection"] = "clang abi-v11.0 bits-0x17"
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.Op != llir.Call {
					continue
				}
				switch in.Sym {
				case llir.RTRetain:
					in.Sym = llir.RTObjCRetain
				case llir.RTRelease:
					in.Sym = llir.RTObjCRelease
				}
			}
		}
	}
}

// BuildApp generates, compiles, and links an app profile at the given scale
// under cfg.
func BuildApp(p Profile, scale float64, cfg pipeline.Config) (*pipeline.Result, error) {
	tr := obs.Ensure(cfg.Tracer)
	cfg.Tracer = tr
	mark := tr.Mark()
	sp := tr.StartStage("frontend+permodule", 0)
	generated := Generate(p, scale)
	tr.Add("appgen/modules", int64(len(generated)))
	mods, err := CompileModules(generated, cfg)
	sp.End()
	if err != nil {
		return nil, err
	}
	res, err := pipeline.BuildFromLLIR(mods, cfg)
	if err != nil {
		return nil, err
	}
	res.Timings = tr.StageTotalsSince(mark)
	return res, nil
}
