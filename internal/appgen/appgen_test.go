package appgen

import (
	"testing"

	"outliner/internal/exec"
	"outliner/internal/pipeline"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(UberRider, 0.3)
	b := Generate(UberRider, 0.3)
	if len(a) != len(b) {
		t.Fatalf("module counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].ObjC != b[i].ObjC {
			t.Fatalf("module %d metadata differs", i)
		}
		for name, text := range a[i].Files {
			if b[i].Files[name] != text {
				t.Fatalf("module %s file %s differs between runs", a[i].Name, name)
			}
		}
	}
}

func TestGenerateScaleGrows(t *testing.T) {
	small := Generate(UberRider, 0.3)
	large := Generate(UberRider, 1.0)
	if len(large) <= len(small) {
		t.Errorf("scale 1.0 (%d modules) not larger than 0.3 (%d)", len(large), len(small))
	}
}

func TestProfilesHaveObjCModules(t *testing.T) {
	mods := Generate(UberEats, 1.0) // 66% Swift -> expect several ObjC modules
	objc := 0
	for _, m := range mods {
		if m.ObjC {
			objc++
		}
	}
	if objc == 0 {
		t.Error("UberEats generated no Objective-C modules")
	}
}

// The synthetic app must compile through both pipelines, run, and produce
// identical output; the whole-program outlined build must be smaller.
func TestAppBuildsRunsAndShrinks(t *testing.T) {
	const scale = 0.25 // keep the test fast

	baseCfg := pipeline.Config{WholeProgram: true, SplitGCMetadata: true,
		PreserveDataLayout: true, Verify: true}
	optCfg := pipeline.OSize
	optCfg.Verify = true

	base, err := BuildApp(UberRider, scale, baseCfg)
	if err != nil {
		t.Fatalf("base build: %v", err)
	}
	opt, err := BuildApp(UberRider, scale, optCfg)
	if err != nil {
		t.Fatalf("optimized build: %v", err)
	}

	runOut := func(res *pipeline.Result) string {
		m, err := exec.New(res.Prog, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Run("main")
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	if got, want := runOut(opt), runOut(base); got != want {
		t.Fatalf("optimized app output %q differs from baseline %q", got, want)
	}

	saving := 1 - float64(opt.CodeSize())/float64(base.CodeSize())
	t.Logf("code: %d -> %d bytes (%.1f%% saving), outlined %d sequences into %d functions",
		base.CodeSize(), opt.CodeSize(), saving*100,
		opt.Outline.TotalSequences(), opt.Outline.TotalFunctions())
	if saving < 0.05 {
		t.Errorf("whole-program outlining saved only %.2f%%; expected a substantial cut", saving*100)
	}
}

// Spans must exist and be runnable as entry points (Figure 13 needs them).
func TestSpansRunnable(t *testing.T) {
	cfg := pipeline.Config{WholeProgram: true, SplitGCMetadata: true, PreserveDataLayout: true}
	res, err := BuildApp(UberRider, 0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := exec.New(res.Prog, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("span1"); err != nil {
		t.Fatalf("span1: %v", err)
	}
}
