package verify

import (
	"strings"
	"testing"

	"outliner/internal/binimg"
	"outliner/internal/llir"
	"outliner/internal/mir"
)

func parse(t *testing.T, src string) *mir.Program {
	t.Helper()
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// expectViolation verifies src and requires a violation whose message
// contains want; it also requires every violation to carry function and PC
// context, the diagnostic shape the corrupted-image acceptance test needs.
func expectViolation(t *testing.T, src, want string) {
	t.Helper()
	p := parse(t, src)
	r := Program(p, llir.RuntimeSyms)
	if r.OK() {
		t.Fatalf("program accepted, want violation containing %q", want)
	}
	found := false
	for _, v := range r.Violations {
		if strings.Contains(v.Msg, want) {
			found = true
		}
		if v.Func == "" {
			t.Errorf("violation without function context: %s", v)
		}
		if v.PC < 0 {
			t.Errorf("violation without PC context: %s", v)
		}
	}
	if !found {
		t.Fatalf("violations %v do not mention %q", r.Violations, want)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "verify:") {
		t.Fatalf("Err() = %v, want a verify error", err)
	}
}

func TestAcceptsWellFormedFrame(t *testing.T) {
	p := parse(t, `
func @leaf {
entry:
  ADDXri $x0, $x0, #1
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-32
  STRXui $x19, $sp, #16
  ADDXri $x29, $sp, #0
  MOVZXi $x0, #3
  BL @leaf
  BL @print_int
  LDRXui $x19, $sp, #16
  LDPXpost $x29, $x30, $sp, #32
  RET
}
`)
	r := Program(p, llir.RuntimeSyms)
	if err := r.Err(); err != nil {
		t.Fatalf("well-formed program rejected: %v", err)
	}
	if r.FuncsChecked != 2 {
		t.Errorf("FuncsChecked = %d, want 2", r.FuncsChecked)
	}
}

func TestAcceptsOutlinedStrategies(t *testing.T) {
	// The three outliner strategies: tail-call (ends in RET), thunk (tail B),
	// plain with an interior call (LR spill frame), plus a caller-side LR
	// spill around a call to a plain outlined function.
	p := parse(t, `
func @callee {
entry:
  RET
}
func @OUTLINED_FUNCTION_0 outlined {
entry:
  MOVZXi $x1, #1
  RET
}
func @OUTLINED_FUNCTION_1 outlined {
entry:
  MOVZXi $x1, #2
  B @callee
}
func @OUTLINED_FUNCTION_2 outlined {
entry:
  STRXpre $x30, $sp, #-16
  BL @callee
  LDRXpost $x30, $sp, #16
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  BL @OUTLINED_FUNCTION_0
  BL @OUTLINED_FUNCTION_1
  BL @OUTLINED_FUNCTION_2
  STRXpre $x30, $sp, #-16
  BL @OUTLINED_FUNCTION_0
  LDRXpost $x30, $sp, #16
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if err := Program(p, llir.RuntimeSyms).Err(); err != nil {
		t.Fatalf("outlined strategies rejected: %v", err)
	}
}

func TestRejectsUnbalancedSPAtRet(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  RET
}
`, "unbalanced stack pointer")
}

func TestRejectsClobberedLRAtRet(t *testing.T) {
	expectViolation(t, `
func @f {
entry:
  RET
}
func @main {
entry:
  BL @f
  RET
}
`, "clobbered link register")
}

func TestRejectsRestoreFromWrongSlot(t *testing.T) {
	// The entry LR lives at [entry_sp-24] (second register of the STP pair);
	// reloading x30 from [sp+0] = [entry_sp-32] restores x29's slot instead.
	expectViolation(t, `
func @f {
entry:
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-32
  BL @f
  LDRXui $x30, $sp, #0
  ADDXri $sp, $sp, #32
  RET
}
`, "clobbered link register")
}

func TestRejectsStackDepthJoinMismatch(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  CMPXri $x0, #0
  Bcc.eq @done
body:
  STPXpre $x29, $x30, $sp, #-16
  B @done
done:
  RET
}
`, "stack depth disagrees")
}

func TestRejectsOutOfFrameAccess(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  STRXui $x19, $sp, #24
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`, "escapes the 16-byte frame")
}

func TestRejectsTailCallWithLiveFrame(t *testing.T) {
	expectViolation(t, `
func @f {
entry:
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  B @f
}
`, "tail call to \"f\" with unbalanced stack pointer")
}

func TestRejectsBranchToUnknownLabel(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  CMPXri $x0, #0
  Bcc.eq @nowhere
exit:
  RET
}
`, "unknown label")
}

func TestRejectsCallToUndefinedSymbol(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  BL @missing_helper
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`, `call to undefined symbol "missing_helper"`)
}

func TestRejectsFallThroughOffEnd(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  MOVZXi $x0, #1
}
`, "falls through off the end")
}

func TestRejectsInstructionAfterTerminator(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  RET
  MOVZXi $x0, #1
}
`, "after terminator")
}

func TestRejectsMultiBlockOutlined(t *testing.T) {
	expectViolation(t, `
func @OUTLINED_FUNCTION_9 outlined {
entry:
  MOVZXi $x0, #1
a:
  RET
}
`, "single straight-line block")
}

func TestRejectsSPFromNonSP(t *testing.T) {
	expectViolation(t, `
func @main {
entry:
  ADDXri $sp, $x1, #0
  RET
}
`, "SP assigned from non-SP")
}

func TestViolationCarriesPC(t *testing.T) {
	// The bad RET is the second instruction of @second; @first occupies 8
	// bytes, the STPXpre 4 more, so the violation PC must be 0xc.
	p := parse(t, `
func @first {
entry:
  MOVZXi $x0, #1
  RET
}
func @second {
entry:
  STPXpre $x29, $x30, $sp, #-16
  RET
}
`)
	r := Program(p, nil)
	if r.OK() {
		t.Fatal("expected violations")
	}
	v := r.Violations[0]
	if v.Func != "second" || v.PC != 0xc {
		t.Errorf("violation = %+v, want Func=second PC=0xc", v)
	}
	if !strings.Contains(v.String(), "@second+0xc") {
		t.Errorf("String() = %q, want @second+0xc", v.String())
	}
}

func TestImageMatchesProgram(t *testing.T) {
	p := parse(t, `
func @main {
entry:
  MOVZXi $x0, #1
  RET
}
global @g = [1, 2]
`)
	img := binimg.Build(p)
	if err := Image(img, p).Err(); err != nil {
		t.Fatalf("consistent image rejected: %v", err)
	}

	// Corrupt the image: shrink a code symbol. Both the size mismatch and
	// the symbol-gap invariants must fire, each naming the symbol.
	img.Symbols[0].Size -= 4
	r := Image(img, p)
	if r.OK() {
		t.Fatal("corrupted image accepted")
	}
	if !strings.Contains(r.Err().Error(), "main") {
		t.Errorf("diagnostic %v does not name the symbol", r.Err())
	}

	img2 := binimg.Build(p)
	img2.CodeSize += 8
	if Image(img2, p).OK() {
		t.Fatal("image with wrong code-section size accepted")
	}
}
