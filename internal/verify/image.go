package verify

import (
	"outliner/internal/binimg"
	"outliner/internal/mir"
)

// Image verifies a laid-out binary against the program it was built from:
// section sizes, symbol-table completeness, and that every symbol's
// [addr, addr+size) range stays inside its section without overlapping its
// neighbours. A disagreement means the image layout and the program diverged
// — exactly the class of linker-stage breakage §VI of the paper debugs.
func Image(img *binimg.Image, prog *mir.Program) *Report {
	r := &Report{}
	if img.CodeSize != prog.CodeSize() {
		r.addf("", "", -1, -1, "image code section is %d bytes, program has %d", img.CodeSize, prog.CodeSize())
	}
	if img.DataSize != prog.DataSize() {
		r.addf("", "", -1, -1, "image data section is %d bytes, program has %d", img.DataSize, prog.DataSize())
	}
	if img.SymCount != len(img.Symbols) {
		r.addf("", "", -1, -1, "symbol count %d disagrees with symbol table length %d", img.SymCount, len(img.Symbols))
	}

	byName := make(map[string]binimg.Symbol, len(img.Symbols))
	codeAddr, dataAddr := 0, 0
	for _, s := range img.Symbols {
		if _, dup := byName[s.Name]; dup {
			r.addf(s.Name, "", -1, int64(s.Addr), "duplicate symbol in image")
		}
		byName[s.Name] = s
		if s.Code {
			if s.Addr != codeAddr {
				r.addf(s.Name, "", -1, int64(s.Addr), "code symbol at %#x overlaps or leaves a gap (expected %#x)", s.Addr, codeAddr)
			}
			codeAddr = s.Addr + s.Size
			if codeAddr > img.CodeSize {
				r.addf(s.Name, "", -1, int64(s.Addr), "code symbol extends past the code section (%#x > %#x)", codeAddr, img.CodeSize)
			}
		} else {
			if s.Addr != dataAddr {
				r.addf(s.Name, "", -1, int64(s.Addr), "data symbol at %#x overlaps or leaves a gap (expected %#x)", s.Addr, dataAddr)
			}
			dataAddr = s.Addr + s.Size
			if dataAddr > img.DataSize {
				r.addf(s.Name, "", -1, int64(s.Addr), "data symbol extends past the data section (%#x > %#x)", dataAddr, img.DataSize)
			}
		}
	}

	for _, f := range prog.Funcs {
		s, ok := byName[f.Name]
		switch {
		case !ok:
			r.addf(f.Name, "", -1, -1, "function missing from the image symbol table")
		case !s.Code:
			r.addf(f.Name, "", -1, int64(s.Addr), "function symbol landed in the data section")
		case s.Size != f.CodeSize():
			r.addf(f.Name, "", -1, int64(s.Addr), "symbol size %d disagrees with function size %d", s.Size, f.CodeSize())
		}
		r.FuncsChecked++
	}
	for _, g := range prog.Globals {
		s, ok := byName[g.Name]
		switch {
		case !ok:
			r.addf(g.Name, "", -1, -1, "global missing from the image symbol table")
		case s.Code:
			r.addf(g.Name, "", -1, int64(s.Addr), "global symbol landed in the code section")
		case s.Size != g.Size():
			r.addf(g.Name, "", -1, int64(s.Addr), "symbol size %d disagrees with global size %d", s.Size, g.Size())
		}
	}
	return r
}
