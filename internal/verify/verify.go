// Package verify is the repo's stand-in for LLVM's MachineVerifier: a static
// checker over machine programs (internal/mir) and laid-out images
// (internal/binimg) that rejects malformed machine code the moment a pass
// emits it, rather than waiting for an execution test to diverge.
//
// The paper ships repeated machine outlining to production on the strength of
// "no behavioural change"; every round rewrites hot instruction sequences in
// the whole program. The checks here encode the invariants those rewrites
// must preserve:
//
//   - stack-pointer balance: the SP delta is tracked along every path through
//     a function; it must agree at join points, be zero at every RET and
//     tail call, and SP-relative accesses inside an established frame must
//     stay inside it;
//   - BL/RET link-register discipline: a path that executes BL/BLR clobbers
//     LR and may only RET (or tail-call) after restoring the entry value from
//     the slot it was saved to — outlined thunks and plain outlined functions
//     obey their strategy's contract as a corollary;
//   - branch targets resolve to in-function labels, program functions, or
//     known external symbols; no instruction follows a terminator mid-block;
//     no fall-through off a function end;
//   - every callee and address-taken symbol referenced anywhere in the image
//     is defined in the program or is a known runtime symbol;
//   - global names are unique, and (via Image) the symbol table and section
//     sizes of the laid-out binary agree with the program.
//
// Violations carry function/PC context (code-section byte offsets, matching
// the addresses internal/binimg assigns), so a bad round is diagnosed at the
// instruction that broke, not at the output mismatch it eventually causes.
package verify

import (
	"fmt"
	"strings"

	"outliner/internal/isa"
	"outliner/internal/mir"
)

// Violation is one invariant failure, anchored to an instruction.
type Violation struct {
	Func  string
	Block string
	Inst  int   // instruction index within Block; -1 for function-level checks
	PC    int64 // code-section byte offset (binimg addressing), -1 if unknown
	Msg   string
}

func (v Violation) String() string {
	loc := "@" + v.Func
	if v.PC >= 0 {
		loc = fmt.Sprintf("@%s+%#x", v.Func, v.PC)
	}
	if v.Block != "" {
		loc += fmt.Sprintf(" (block %s, inst %d)", v.Block, v.Inst)
	}
	return loc + ": " + v.Msg
}

// Report is the result of verifying one program or image.
type Report struct {
	FuncsChecked int
	Violations   []Violation
}

// OK reports whether no violations were found.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, otherwise a *Error naming the
// violation count and the first few violations with function/PC context.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Report: r}
}

// Error is a failed report as a typed error: errors.As against *verify.Error
// is how the fault-tolerance layer recognizes "the verifier rejected the
// program" structurally — a diagnosed failure, never silent corruption —
// and how the outliner's rollback modes decide to shed a round.
type Error struct {
	Report *Report
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d violation(s): ", len(e.Report.Violations))
	for i, v := range e.Report.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; ... and %d more", len(e.Report.Violations)-i)
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(v.String())
	}
	return b.String()
}

func (r *Report) addf(fn, block string, inst int, pc int64, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Func: fn, Block: block, Inst: inst, PC: pc, Msg: fmt.Sprintf(format, args...),
	})
}

// Program verifies every function of prog plus program-level symbol
// invariants. externSyms lists symbols that may be referenced without a
// definition (runtime entry points; cross-module symbols during per-module
// verification).
func Program(prog *mir.Program, externSyms map[string]bool) *Report {
	r := &Report{}

	globals := make(map[string]bool, len(prog.Globals))
	for _, g := range prog.Globals {
		if g.Name == "" {
			r.addf("", "", -1, -1, "unnamed global")
			continue
		}
		if globals[g.Name] {
			r.addf("", "", -1, -1, "duplicate global %q", g.Name)
		}
		globals[g.Name] = true
	}

	// Function start addresses, binimg-style: code-section byte offsets.
	funcStart := make(map[string]int64, len(prog.Funcs))
	addr := int64(0)
	seen := make(map[string]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		if f.Name == "" {
			r.addf("", "", -1, addr, "unnamed function")
		}
		if seen[f.Name] {
			r.addf(f.Name, "", -1, addr, "duplicate function symbol")
		}
		seen[f.Name] = true
		funcStart[f.Name] = addr
		addr += int64(f.CodeSize())
	}

	for _, f := range prog.Funcs {
		fv := &funcVerifier{
			r: r, prog: prog, f: f,
			extern:  externSyms,
			globals: globals,
			start:   funcStart[f.Name],
		}
		fv.run()
		r.FuncsChecked++
	}
	return r
}

// funcVerifier checks one function: structure first, then the SP/LR dataflow.
type funcVerifier struct {
	r       *Report
	prog    *mir.Program
	f       *mir.Function
	extern  map[string]bool
	globals map[string]bool
	start   int64 // code-section offset of the function

	labels map[string]int // block label -> block index
	pcs    [][]int64      // pcs[block][inst] = code-section offset
}

func (fv *funcVerifier) violatef(bi, ii int, format string, args ...any) {
	block := ""
	pc := fv.start
	if bi >= 0 && bi < len(fv.f.Blocks) {
		block = fv.f.Blocks[bi].Label
		if ii >= 0 && ii < len(fv.pcs[bi]) {
			pc = fv.pcs[bi][ii]
		}
	}
	fv.r.addf(fv.f.Name, block, ii, pc, format, args...)
}

func (fv *funcVerifier) run() {
	f := fv.f
	// PC layout and label table.
	fv.labels = make(map[string]int, len(f.Blocks))
	fv.pcs = make([][]int64, len(f.Blocks))
	pc := fv.start
	for bi, b := range f.Blocks {
		if b.Label == "" {
			fv.r.addf(f.Name, "", -1, pc, "unnamed block")
		}
		if _, dup := fv.labels[b.Label]; dup {
			fv.r.addf(f.Name, b.Label, -1, pc, "duplicate block label")
		}
		fv.labels[b.Label] = bi
		fv.pcs[bi] = make([]int64, len(b.Insts))
		for ii, in := range b.Insts {
			fv.pcs[bi][ii] = pc
			pc += int64(in.Size())
		}
	}

	structureOK := fv.checkStructure()
	if f.Outlined && len(f.Blocks) != 1 {
		fv.violatef(0, -1, "outlined function has %d blocks, want a single straight-line block", len(f.Blocks))
	}
	// The dataflow walk needs resolvable branch targets and terminator
	// discipline; skip it when structure is already broken.
	if structureOK && len(f.Blocks) > 0 {
		fv.checkFrameDiscipline()
	}
}

// checkStructure enforces the block-shape invariants: terminators only as a
// trailing run, resolvable branch/call/address targets, and no fall-through
// off the end of the function.
func (fv *funcVerifier) checkStructure() bool {
	f := fv.f
	before := len(fv.r.Violations)
	for bi, b := range f.Blocks {
		seenTerm := false
		for ii, in := range b.Insts {
			if in.Op == isa.BAD || in.Op >= isa.NumOps {
				fv.violatef(bi, ii, "bad opcode %d", in.Op)
				continue
			}
			if seenTerm && !in.IsTerminator() {
				fv.violatef(bi, ii, "instruction %s after terminator", in)
			}
			if in.IsTerminator() {
				seenTerm = true
			}
			switch in.Op {
			case isa.B:
				// Intra-function branch or tail call.
				if _, ok := fv.labels[in.Sym]; !ok && fv.prog.Func(in.Sym) == nil && !fv.extern[in.Sym] {
					fv.violatef(bi, ii, "branch to unknown label or symbol %q", in.Sym)
				}
			case isa.Bcc, isa.CBZ, isa.CBNZ:
				if _, ok := fv.labels[in.Sym]; !ok {
					fv.violatef(bi, ii, "conditional branch to unknown label %q", in.Sym)
				}
			case isa.BL:
				if fv.prog.Func(in.Sym) == nil && !fv.extern[in.Sym] {
					fv.violatef(bi, ii, "call to undefined symbol %q", in.Sym)
				}
			case isa.ADR:
				if !fv.globals[in.Sym] && fv.prog.Func(in.Sym) == nil && !fv.extern[in.Sym] {
					fv.violatef(bi, ii, "address of unknown symbol %q", in.Sym)
				}
			}
		}
		if bi == len(f.Blocks)-1 {
			if len(b.Insts) == 0 || !b.Insts[len(b.Insts)-1].IsTerminator() {
				fv.violatef(bi, len(b.Insts)-1, "control falls through off the end of the function")
			}
		}
	}
	return len(fv.r.Violations) == before
}

// frameState is the abstract machine state the SP/LR dataflow tracks at a
// block boundary.
type frameState struct {
	delta int64 // SP relative to function entry (<= 0 inside a frame)
	// lrEntry: LR provably holds the function's entry value (the caller's
	// return address). Calls clobber it; reloading from a slot the entry
	// value was spilled to re-establishes it. Caller-side spills of an
	// already-clobbered LR (the outliner's STRXpre/BL/LDRXpost bracket)
	// save and restore a non-entry value, which is fine — the bracket's
	// reload just does not make LR entry-valid again.
	lrEntry bool
	// entrySlots holds entry-SP-relative stack offsets currently storing the
	// entry LR value. nil and the empty map are both "no slots".
	entrySlots map[int64]bool
}

func (s frameState) slotHasEntry(off int64) bool { return s.entrySlots[off] }

// withSlot returns a state whose entrySlots include off (copy-on-write).
func (s frameState) withSlot(off int64) frameState {
	if s.entrySlots[off] {
		return s
	}
	ns := make(map[int64]bool, len(s.entrySlots)+1)
	for k := range s.entrySlots {
		ns[k] = true
	}
	ns[off] = true
	s.entrySlots = ns
	return s
}

// withoutSlot returns a state whose entrySlots exclude off (a store of
// anything other than the entry LR overwrote it).
func (s frameState) withoutSlot(off int64) frameState {
	if !s.entrySlots[off] {
		return s
	}
	ns := make(map[int64]bool, len(s.entrySlots))
	for k := range s.entrySlots {
		if k != off {
			ns[k] = true
		}
	}
	s.entrySlots = ns
	return s
}

// merge meets two states flowing into the same block. The second result is
// false when the stack depths disagree (a hard violation at the join);
// otherwise entry-LR facts intersect.
func (s frameState) merge(o frameState) (frameState, bool) {
	if s.delta != o.delta {
		return s, false
	}
	out := s
	out.lrEntry = s.lrEntry && o.lrEntry
	inter := make(map[int64]bool)
	for k := range s.entrySlots {
		if o.entrySlots[k] {
			inter[k] = true
		}
	}
	out.entrySlots = inter
	return out, true
}

// equal reports whether two states carry the same facts.
func (s frameState) equal(o frameState) bool {
	if s.delta != o.delta || s.lrEntry != o.lrEntry || len(s.entrySlots) != len(o.entrySlots) {
		return false
	}
	for k := range s.entrySlots {
		if !o.entrySlots[k] {
			return false
		}
	}
	return true
}

// checkFrameDiscipline walks the CFG tracking the SP delta and the LR state.
func (fv *funcVerifier) checkFrameDiscipline() {
	f := fv.f
	in := make([]frameState, len(f.Blocks))
	have := make([]bool, len(f.Blocks))
	in[0] = frameState{lrEntry: true}
	have[0] = true
	work := []int{0}

	flow := func(bi int, st frameState, target string, ii int) {
		ti, ok := fv.labels[target]
		if !ok {
			return // tail call; checked at the branch site
		}
		if !have[ti] {
			in[ti], have[ti] = st, true
			work = append(work, ti)
			return
		}
		merged, ok := in[ti].merge(st)
		if !ok {
			fv.violatef(bi, ii, "stack depth disagrees at join %q: %d here vs %d on another path",
				target, st.delta, in[ti].delta)
			return
		}
		if !merged.equal(in[ti]) {
			in[ti] = merged
			work = append(work, ti)
		}
	}

	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[bi]
		b := f.Blocks[bi]
		terminated := false
		for ii, inst := range b.Insts {
			st = fv.stepFrame(bi, ii, inst, st)
			switch inst.Op {
			case isa.RET:
				if st.delta != 0 {
					fv.violatef(bi, ii, "RET with unbalanced stack pointer: SP is %+d bytes from entry", st.delta)
				}
				if !st.lrEntry {
					fv.violatef(bi, ii, "RET with clobbered link register (entry value not restored after BL)")
				}
				terminated = true
			case isa.B:
				if _, intra := fv.labels[inst.Sym]; intra {
					flow(bi, st, inst.Sym, ii)
				} else {
					// Tail call leaves the frame: same contract as RET.
					if st.delta != 0 {
						fv.violatef(bi, ii, "tail call to %q with unbalanced stack pointer: SP is %+d bytes from entry", inst.Sym, st.delta)
					}
					if !st.lrEntry {
						fv.violatef(bi, ii, "tail call to %q with clobbered link register", inst.Sym)
					}
				}
				terminated = true
			case isa.Bcc, isa.CBZ, isa.CBNZ:
				flow(bi, st, inst.Sym, ii)
			case isa.BRK:
				terminated = true
			}
			if terminated {
				break
			}
		}
		if !terminated && bi+1 < len(f.Blocks) {
			flow(bi, st, f.Blocks[bi+1].Label, len(b.Insts)-1)
		}
	}
}

// stepFrame applies one instruction's effect on the frame state, reporting
// violations for SP misuse and out-of-frame accesses.
func (fv *funcVerifier) stepFrame(bi, ii int, in isa.Inst, st frameState) frameState {
	// SP-relative memory access bounds: once a frame is established
	// (delta < 0), plain loads/stores through SP must stay inside it.
	// At delta 0 an access reaches the caller's frame, which is exactly
	// the contract of outlined functions (they borrow the original frame).
	checkBounds := func(off int64, size int64) {
		if st.delta >= 0 {
			return
		}
		if off < 0 || off+size > -st.delta {
			fv.violatef(bi, ii, "SP-relative access [sp+%d, %d bytes] escapes the %d-byte frame",
				off, size, -st.delta)
		}
	}
	// store records a write of register r to the entry-SP-relative offset:
	// storing LR while it still holds the entry value marks the slot; any
	// other store invalidates whatever the slot held.
	store := func(r isa.Reg, off int64) {
		if r == isa.LR && st.lrEntry {
			st = st.withSlot(off)
		} else {
			st = st.withoutSlot(off)
		}
	}
	// loadLR models a reload of LR from the entry-SP-relative offset: entry
	// validity comes back only from a slot known to hold the entry value.
	loadLR := func(off int64) { st.lrEntry = st.slotHasEntry(off) }

	switch in.Op {
	case isa.STPpre:
		if in.Rn == isa.SP {
			st.delta += in.Imm // Imm is negative
			store(in.Rd, st.delta)
			store(in.Rd2, st.delta+8)
		}
	case isa.STRpre:
		if in.Rn == isa.SP {
			st.delta += in.Imm
			store(in.Rd, st.delta)
		}
	case isa.LDPpost:
		if in.Rn == isa.SP {
			if in.Rd == isa.LR {
				loadLR(st.delta)
			}
			if in.Rd2 == isa.LR {
				loadLR(st.delta + 8)
			}
			st.delta += in.Imm
			if st.delta > 0 {
				fv.violatef(bi, ii, "stack pop raises SP %+d bytes above the function entry value", st.delta)
			}
		} else if in.Rd == isa.LR || in.Rd2 == isa.LR {
			st.lrEntry = false
		}
	case isa.LDRpost:
		if in.Rn == isa.SP {
			if in.Rd == isa.LR {
				loadLR(st.delta)
			}
			st.delta += in.Imm
			if st.delta > 0 {
				fv.violatef(bi, ii, "stack pop raises SP %+d bytes above the function entry value", st.delta)
			}
		} else if in.Rd == isa.LR {
			st.lrEntry = false
		}
	case isa.STPui:
		if in.Rn == isa.SP {
			checkBounds(in.Imm, 16)
			store(in.Rd, st.delta+in.Imm)
			store(in.Rd2, st.delta+in.Imm+8)
		}
	case isa.STRui:
		if in.Rn == isa.SP {
			checkBounds(in.Imm, 8)
			store(in.Rd, st.delta+in.Imm)
		}
	case isa.LDPui:
		if in.Rn == isa.SP {
			checkBounds(in.Imm, 16)
			if in.Rd == isa.LR {
				loadLR(st.delta + in.Imm)
			}
			if in.Rd2 == isa.LR {
				loadLR(st.delta + in.Imm + 8)
			}
		} else if in.Rd == isa.LR || in.Rd2 == isa.LR {
			st.lrEntry = false
		}
	case isa.LDRui:
		if in.Rn == isa.SP {
			checkBounds(in.Imm, 8)
			if in.Rd == isa.LR {
				loadLR(st.delta + in.Imm)
			}
		} else if in.Rd == isa.LR {
			st.lrEntry = false
		}
	case isa.ADDri, isa.SUBri:
		if in.Rd == isa.SP {
			if in.Rn != isa.SP {
				fv.violatef(bi, ii, "SP assigned from non-SP register %s", in.Rn)
			} else if in.Op == isa.ADDri {
				st.delta += in.Imm
			} else {
				st.delta -= in.Imm
			}
			if st.delta > 0 {
				fv.violatef(bi, ii, "SP adjusted %+d bytes above the function entry value", st.delta)
			}
		}
	case isa.BL, isa.BLR:
		st.lrEntry = false
	default:
		// Any other write to SP or LR is outside the verifier's model.
		for _, d := range in.Defs(nil) {
			switch d {
			case isa.SP:
				fv.violatef(bi, ii, "unmodeled write to SP by %s", in)
			case isa.LR:
				st.lrEntry = false
			}
		}
	}
	return st
}
