// Package artifact is the binary codec for the per-module build artifacts
// the incremental build cache stores: lowered LLIR modules (the output of
// the per-module frontend→SIL→LLIR stage, both pipelines) and machine
// programs with their outlining statistics (the output of the default
// pipeline's per-module codegen+outline stage).
//
// The format is a compact varint encoding with a fixed header carrying a
// magic, the schema version, and an artifact kind. Decoding is defensive:
// any truncation, bad header, impossible count, or duplicate symbol yields
// an error, never a panic — the cache layer treats every decode error as a
// miss and rebuilds. Encoding is canonical (map contents are emitted in
// sorted order), so identical in-memory artifacts produce identical bytes
// and the encoded form can double as a content hash input.
package artifact

import (
	"encoding/binary"
	"fmt"
	"sort"

	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/outline"
)

// SchemaVersion identifies the encoding. It participates in every cache key,
// so bumping it when the format (or the meaning of a cached stage) changes
// invalidates all previously stored artifacts instead of misreading them.
// Version 2: the llir stage's dependency hash became interface-scoped
// (imports' exported-interface digests instead of their full source hashes).
const SchemaVersion = 2

// Artifact kinds (the byte after the header magic).
const (
	kindLLIR    = 'L'
	kindMachine = 'M'
)

var magic = [3]byte{'S', 'L', 'A'}

// ---- encoder ----

type enc struct{ b []byte }

func newEnc(kind byte) *enc {
	e := &enc{b: make([]byte, 0, 4096)}
	e.b = append(e.b, magic[0], magic[1], magic[2], byte(SchemaVersion), kind)
	return e
}

func (e *enc) u(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte) { e.b = append(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}
func (e *enc) s(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

// ---- decoder ----

type dec struct {
	b   []byte
	err error
}

func newDec(data []byte, kind byte) *dec {
	d := &dec{b: data}
	if len(data) < 5 || data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] {
		d.fail("bad magic")
		return d
	}
	if data[3] != byte(SchemaVersion) {
		d.fail("schema version %d, want %d", data[3], SchemaVersion)
		return d
	}
	if data[4] != kind {
		d.fail("artifact kind %q, want %q", data[4], kind)
		return d
	}
	d.b = data[5:]
	return d
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("artifact: "+format, args...)
		d.b = nil
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) s() string {
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds %d remaining bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads an element count and guards against allocation bombs: a valid
// stream must carry at least one byte per remaining element.
func (d *dec) count() int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail("count %d exceeds %d remaining bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("artifact: %d trailing bytes", len(d.b))
	}
	return nil
}

// ---- LLIR modules ----

// EncodeModule serializes one lowered LLIR module.
func EncodeModule(m *llir.Module) []byte {
	e := newEnc(kindLLIR)
	e.s(m.Name)
	e.u(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		e.s(f.Name)
		e.s(f.Module)
		e.u(uint64(f.NumParams))
		e.bool(f.Throws)
		e.u(uint64(f.NumValues))
		e.u(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.s(b.Label)
			e.u(uint64(len(b.Insts)))
			for i := range b.Insts {
				encodeLLIRInst(e, &b.Insts[i])
			}
		}
	}
	e.u(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		e.s(g.Name)
		e.s(g.Module)
		e.u(uint64(len(g.Words)))
		for _, w := range g.Words {
			e.i(w)
		}
	}
	keys := make([]string, 0, len(m.Metadata))
	for k := range m.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u(uint64(len(keys)))
	for _, k := range keys {
		e.s(k)
		e.s(m.Metadata[k])
	}
	return e.b
}

func encodeLLIRInst(e *enc, in *llir.Inst) {
	e.byte(byte(in.Op))
	e.i(int64(in.Dst))
	e.i(int64(in.A))
	e.i(int64(in.B))
	e.i(int64(in.ErrDst))
	e.i(in.Imm)
	e.s(in.Sym)
	e.s(in.Sym2)
	e.byte(byte(in.BinOp))
	e.byte(byte(in.Cond))
	e.bool(in.Throws)
	e.u(uint64(len(in.Args)))
	for _, a := range in.Args {
		e.i(int64(a))
	}
	e.u(uint64(len(in.Incomings)))
	for _, inc := range in.Incomings {
		e.s(inc.Pred)
		e.i(int64(inc.Val))
	}
}

// DecodeModule reconstructs a module encoded by EncodeModule. Any corruption
// is reported as an error (the cache treats it as a miss).
func DecodeModule(data []byte) (*llir.Module, error) {
	d := newDec(data, kindLLIR)
	m := llir.NewModule(d.s())
	nf := d.count()
	for i := 0; i < nf && d.err == nil; i++ {
		f := &llir.Func{
			Name:      d.s(),
			Module:    d.s(),
			NumParams: int(d.u()),
			Throws:    d.bool(),
			NumValues: int(d.u()),
		}
		nb := d.count()
		for j := 0; j < nb && d.err == nil; j++ {
			b := &llir.Block{Label: d.s()}
			ni := d.count()
			if d.err == nil && ni > 0 {
				b.Insts = make([]llir.Inst, ni)
				for k := range b.Insts {
					decodeLLIRInst(d, &b.Insts[k])
				}
			}
			f.Blocks = append(f.Blocks, b)
		}
		if d.err == nil {
			if m.Func(f.Name) != nil {
				d.fail("duplicate function %q", f.Name)
				break
			}
			m.AddFunc(f)
		}
	}
	ng := d.count()
	for i := 0; i < ng && d.err == nil; i++ {
		g := &llir.Global{Name: d.s(), Module: d.s()}
		nw := d.count()
		if d.err == nil && nw > 0 {
			g.Words = make([]int64, nw)
			for k := range g.Words {
				g.Words[k] = d.i()
			}
		}
		m.Globals = append(m.Globals, g)
	}
	nm := d.count()
	for i := 0; i < nm && d.err == nil; i++ {
		k := d.s()
		m.Metadata[k] = d.s()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeLLIRInst(d *dec, in *llir.Inst) {
	in.Op = llir.Op(d.byte())
	in.Dst = llir.Value(d.i())
	in.A = llir.Value(d.i())
	in.B = llir.Value(d.i())
	in.ErrDst = llir.Value(d.i())
	in.Imm = d.i()
	in.Sym = d.s()
	in.Sym2 = d.s()
	in.BinOp = llir.BinKind(d.byte())
	in.Cond = llir.CondKind(d.byte())
	in.Throws = d.bool()
	na := d.count()
	if d.err == nil && na > 0 {
		in.Args = make([]llir.Value, na)
		for i := range in.Args {
			in.Args[i] = llir.Value(d.i())
		}
	}
	ni := d.count()
	if d.err == nil && ni > 0 {
		in.Incomings = make([]llir.Incoming, ni)
		for i := range in.Incomings {
			in.Incomings[i].Pred = d.s()
			in.Incomings[i].Val = llir.Value(d.i())
		}
	}
}

// ---- machine programs ----

// EncodeMachine serializes a machine program plus the outlining statistics
// that produced it (st may be nil when outlining did not run). The program
// section is mir's canonical codec (mir.EncodeProgram), shared with the
// outliner's round-rollback snapshots; its layout is part of SchemaVersion.
func EncodeMachine(p *mir.Program, st *outline.Stats) []byte {
	e := newEnc(kindMachine)
	e.b = mir.EncodeProgram(e.b, p)
	e.bool(st != nil)
	if st != nil {
		e.u(uint64(len(st.Rounds)))
		for _, r := range st.Rounds {
			e.i(int64(r.Round))
			e.i(int64(r.SequencesOutlined))
			e.i(int64(r.FunctionsCreated))
			e.i(int64(r.OutlinedBytes))
			e.i(int64(r.BytesSaved))
		}
	}
	return e.b
}

// DecodeMachine reconstructs a program (and stats, when present) encoded by
// EncodeMachine.
func DecodeMachine(data []byte) (*mir.Program, *outline.Stats, error) {
	d := newDec(data, kindMachine)
	if d.err != nil {
		return nil, nil, d.err
	}
	p, rest, err := mir.DecodeProgram(d.b)
	if err != nil {
		return nil, nil, fmt.Errorf("artifact: %w", err)
	}
	d.b = rest
	var st *outline.Stats
	if d.bool() {
		st = &outline.Stats{}
		nr := d.count()
		for i := 0; i < nr && d.err == nil; i++ {
			st.Rounds = append(st.Rounds, outline.RoundStats{
				Round:             int(d.i()),
				SequencesOutlined: int(d.i()),
				FunctionsCreated:  int(d.i()),
				OutlinedBytes:     int(d.i()),
				BytesSaved:        int(d.i()),
			})
		}
	}
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return p, st, nil
}
