package artifact

import (
	"bytes"
	"testing"

	"outliner/internal/isa"
	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/outline"
)

// sampleModule exercises every encoded field: multi-block functions, negative
// immediates, phi incomings, call args, globals, and metadata.
func sampleModule() *llir.Module {
	m := llir.NewModule("app")
	m.Metadata["Objective-C Garbage Collection"] = "swiftc abi-v7.0"
	m.Metadata["source"] = "test"
	f := &llir.Func{Name: "f", Module: "app", NumParams: 2, Throws: true, NumValues: 9}
	f.Blocks = []*llir.Block{
		{Label: "entry", Insts: []llir.Inst{
			{Op: llir.Bin, Dst: 2, A: 0, B: 1, BinOp: llir.Add},
			{Op: llir.Cmp, Dst: 3, A: 2, B: 0, Cond: llir.Lt},
			{Op: llir.CondBr, A: 3, Sym: "then", Sym2: "join"},
		}},
		{Label: "then", Insts: []llir.Inst{
			{Op: llir.Const, Dst: 4, Imm: -42},
			{Op: llir.Call, Dst: 5, Sym: "g", Args: []llir.Value{4, 2}, Throws: true, ErrDst: 6},
			{Op: llir.Br, Sym: "join"},
		}},
		{Label: "join", Insts: []llir.Inst{
			{Op: llir.Phi, Dst: 7, Incomings: []llir.Incoming{{Pred: "entry", Val: 2}, {Pred: "then", Val: 5}}},
			{Op: llir.Ret, A: 7},
		}},
	}
	m.AddFunc(f)
	g := &llir.Func{Name: "g", Module: "app", NumParams: 2, NumValues: 3}
	g.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{{Op: llir.Ret, A: 0}}}}
	m.AddFunc(g)
	m.Globals = append(m.Globals, &llir.Global{Name: "tab", Module: "app", Words: []int64{1, -2, 1 << 40}})
	return m
}

func sampleProgram() (*mir.Program, *outline.Stats) {
	p := mir.NewProgram()
	f := &mir.Function{Name: "main", Module: "app"}
	f.Blocks = []*mir.Block{
		{Label: "entry", Insts: []isa.Inst{
			{Op: isa.MOVZ, Rd: isa.X0, Imm: 7},
			{Op: isa.STRpre, Rd: isa.LR, Rn: isa.SP, Imm: -16},
			{Op: isa.BL, Sym: "helper"},
			{Op: isa.LDRpost, Rd: isa.LR, Rn: isa.SP, Imm: 16},
			{Op: isa.RET},
		}},
	}
	p.AddFunc(f)
	h := &mir.Function{Name: "helper", Module: "app", Outlined: true}
	h.Blocks = []*mir.Block{{Label: "entry", Insts: []isa.Inst{
		{Op: isa.ADDrs, Rd: isa.X0, Rn: isa.X0, Rm: isa.X1},
		{Op: isa.RET},
	}}}
	p.AddFunc(h)
	p.AddGlobal(&mir.Global{Name: "tab", Module: "app", Words: []int64{3, 4}})
	st := &outline.Stats{Rounds: []outline.RoundStats{
		{Round: 1, SequencesOutlined: 12, FunctionsCreated: 3, OutlinedBytes: 96, BytesSaved: 200},
		{Round: 2, SequencesOutlined: 1, FunctionsCreated: 1, OutlinedBytes: 8, BytesSaved: 4},
	}}
	return p, st
}

// Encoding is canonical, so a decode that re-encodes to the original bytes
// proves the round trip lossless field by field.
func TestModuleRoundTrip(t *testing.T) {
	m := sampleModule()
	enc := EncodeModule(m)
	got, err := DecodeModule(enc)
	if err != nil {
		t.Fatalf("DecodeModule: %v", err)
	}
	if !bytes.Equal(EncodeModule(got), enc) {
		t.Fatal("module round trip is not canonical: re-encoded bytes differ")
	}
	if got.Name != m.Name || len(got.Funcs) != len(m.Funcs) || len(got.Globals) != len(m.Globals) {
		t.Fatalf("decoded shape mismatch: %s/%d/%d", got.Name, len(got.Funcs), len(got.Globals))
	}
	// The decoded module must answer name lookups (AddFunc indexed them).
	if got.Func("g") == nil {
		t.Fatal("decoded module does not index functions by name")
	}
}

func TestMachineRoundTrip(t *testing.T) {
	p, st := sampleProgram()
	enc := EncodeMachine(p, st)
	gp, gst, err := DecodeMachine(enc)
	if err != nil {
		t.Fatalf("DecodeMachine: %v", err)
	}
	if !bytes.Equal(EncodeMachine(gp, gst), enc) {
		t.Fatal("machine round trip is not canonical: re-encoded bytes differ")
	}
	if gp.String() != p.String() {
		t.Fatal("decoded program renders differently")
	}
	if gp.Func("helper") == nil || !gp.Func("helper").Outlined {
		t.Fatal("decoded program lost function index or Outlined flag")
	}
	if len(gst.Rounds) != 2 || gst.Rounds[0] != st.Rounds[0] || gst.Rounds[1] != st.Rounds[1] {
		t.Fatalf("decoded stats mismatch: %+v", gst)
	}
}

func TestMachineNilStats(t *testing.T) {
	p, _ := sampleProgram()
	gp, gst, err := DecodeMachine(EncodeMachine(p, nil))
	if err != nil {
		t.Fatalf("DecodeMachine: %v", err)
	}
	if gst != nil {
		t.Fatalf("want nil stats, got %+v", gst)
	}
	if gp.String() != p.String() {
		t.Fatal("decoded program renders differently")
	}
}

// Every truncation of a valid artifact must decode to an error — never a
// panic, never a silently partial artifact.
func TestDecodeTruncationsError(t *testing.T) {
	enc := EncodeModule(sampleModule())
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeModule(enc[:i]); err == nil {
			t.Fatalf("DecodeModule accepted a %d-byte truncation of %d bytes", i, len(enc))
		}
	}
	menc := EncodeMachine(sampleProgram())
	for i := 0; i < len(menc); i++ {
		if _, _, err := DecodeMachine(menc[:i]); err == nil {
			t.Fatalf("DecodeMachine accepted a %d-byte truncation of %d bytes", i, len(menc))
		}
	}
}

// Flipping any single byte must never panic (the cache checksums entries, so
// decode sees flipped bytes only for in-memory corruption or crafted input —
// either way the failure mode must stay an error or a decoded artifact).
func TestDecodeBitFlipsNeverPanic(t *testing.T) {
	enc := EncodeModule(sampleModule())
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		DecodeModule(mut)
	}
	menc := EncodeMachine(sampleProgram())
	for i := range menc {
		mut := append([]byte(nil), menc...)
		mut[i] ^= 0xff
		DecodeMachine(mut)
	}
}

func TestDecodeRejectsWrongKindAndSchema(t *testing.T) {
	enc := EncodeModule(sampleModule())
	if _, _, err := DecodeMachine(enc); err == nil {
		t.Fatal("DecodeMachine accepted an LLIR artifact")
	}
	mut := append([]byte(nil), enc...)
	mut[3]++ // schema version byte
	if _, err := DecodeModule(mut); err == nil {
		t.Fatal("DecodeModule accepted a future schema version")
	}
}

// A stream carrying two same-name functions must fail decoding: AddFunc
// panics on duplicates, so the decoder has to pre-check.
func TestDecodeRejectsDuplicateFunctions(t *testing.T) {
	m := sampleModule()
	f := m.Func("g")
	m.Funcs = append(m.Funcs, f) // bypasses AddFunc's duplicate panic
	if _, err := DecodeModule(EncodeModule(m)); err == nil {
		t.Fatal("DecodeModule accepted duplicate function names")
	}

	p, _ := sampleProgram()
	p.Funcs = append(p.Funcs, p.Func("helper"))
	if _, _, err := DecodeMachine(EncodeMachine(p, nil)); err == nil {
		t.Fatal("DecodeMachine accepted duplicate function names")
	}
}
