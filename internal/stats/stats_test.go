package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{5, 7.7, 10.4, 13.1, 15.8} // y = 2.7x + 5
	f := Linear(x, y)
	if !approx(f.Slope, 2.7, 1e-9) || !approx(f.Intercept, 5, 1e-9) || !approx(f.R2, 1, 1e-9) {
		t.Errorf("fit = %+v, want slope 2.7 intercept 5 R2 1", f)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 1.37*xi+40+rng.NormFloat64()*3)
	}
	f := Linear(x, y)
	if !approx(f.Slope, 1.37, 0.05) {
		t.Errorf("slope = %v, want ~1.37", f.Slope)
	}
	if f.R2 < 0.95 {
		t.Errorf("R2 = %v, want > 0.95", f.R2)
	}
}

func TestLinearPanics(t *testing.T) {
	for _, c := range []struct {
		name string
		x, y []float64
	}{
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"short", []float64{1}, []float64{1}},
		{"degenerate", []float64{2, 2}, []float64{1, 3}},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			Linear(c.x, c.y)
		})
	}
}

func TestPowerLawExact(t *testing.T) {
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, 1000*math.Pow(float64(i), -0.8))
	}
	f := PowerLaw(x, y)
	if !approx(f.B, -0.8, 1e-6) || !approx(f.A, 1000, 1e-3) || f.R2 < 0.999 {
		t.Errorf("fit = %+v, want A=1000 B=-0.8", f)
	}
}

func TestPowerLawSkipsNonPositive(t *testing.T) {
	x := []float64{0, 1, 2, 4}
	y := []float64{9, 8, 4, 2}
	f := PowerLaw(x, y) // the x=0 point must be dropped, not produce NaN
	if math.IsNaN(f.A) || math.IsNaN(f.B) {
		t.Errorf("fit contains NaN: %+v", f)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{15, 20, 35, 40, 50}
	if got := Percentile(v, 0); got != 15 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(v, 100); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Median(v); got != 35 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(v, 25); got != 20 {
		t.Errorf("P25 = %v", got)
	}
	// Interpolated value.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated P50 = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Percentile(v, 50)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !approx(got, 10, 1e-9) {
		t.Errorf("geomean = %v, want 10", got)
	}
	if got := GeoMean([]float64{0.9, 0.9, 0.9}); !approx(got, 0.9, 1e-9) {
		t.Errorf("geomean = %v, want 0.9", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 9.99, 10}, 10, 0, 10)
	if len(h.Counts) != 10 {
		t.Fatalf("bins = %d", len(h.Counts))
	}
	if h.Counts[0] != 1 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 8 {
		t.Errorf("total = %d, want 8", total)
	}
}

func TestCountHistogram(t *testing.T) {
	m := CountHistogram([]int{2, 2, 2, 3, 7})
	if m[2] != 3 || m[3] != 1 || m[7] != 1 {
		t.Errorf("m = %v", m)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(vals, pa), Percentile(vals, pb)
		return va <= vb &&
			va >= Percentile(vals, 0) && vb <= Percentile(vals, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
