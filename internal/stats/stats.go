// Package stats provides the statistical helpers the paper's evaluation
// leans on: least-squares linear regression with R² (Fig 1's growth slopes),
// power-law fitting via log-log regression (Fig 5's repetition frequency),
// percentiles (Fig 13's P50 spans), geometric means, and histograms (Fig 8).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// LinearFit is y = Slope*x + Intercept with goodness-of-fit R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Linear fits a least-squares line through (x, y). It panics if the slices
// differ in length or contain fewer than two points.
func Linear(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: need at least two points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssTot += (y[i] - meanY) * (y[i] - meanY)
		ssRes += (y[i] - pred) * (y[i] - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// PowerFit is y = A * x^B, fitted in log-log space; R2 is the log-space
// goodness of fit (the paper reports 99.4% confidence for the repetition
// frequency power law).
type PowerFit struct {
	A  float64
	B  float64
	R2 float64
}

// PowerLaw fits y = A*x^B over strictly positive data.
func PowerLaw(x, y []float64) PowerFit {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	f := Linear(lx, ly)
	return PowerFit{A: math.Exp(f.Intercept), B: f.Slope, R2: f.R2}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of values using
// linear interpolation between closest ranks. It panics on empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		panic("stats: percentile of empty slice")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is the 50th percentile (the paper's P50).
func Median(values []float64) float64 { return Percentile(values, 50) }

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, v := range values {
		if v <= 0 {
			panic("stats: geomean needs positive values")
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values)))
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Histogram counts values into bins. Bin i covers
// [min + i*width, min + (i+1)*width); the last bin is closed on the right.
type Histogram struct {
	Min, Width float64
	Counts     []int
}

// NewHistogram bins values into n equal-width bins spanning [min, max].
func NewHistogram(values []float64, n int, min, max float64) Histogram {
	if n <= 0 || max <= min {
		panic("stats: bad histogram parameters")
	}
	h := Histogram{Min: min, Width: (max - min) / float64(n), Counts: make([]int, n)}
	for _, v := range values {
		if v < min || v > max {
			continue
		}
		i := int((v - min) / h.Width)
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// CountHistogram tallies integer values exactly (used for sequence-length
// histograms where bins are unit-width).
func CountHistogram(values []int) map[int]int {
	m := make(map[int]int)
	for _, v := range values {
		m[v]++
	}
	return m
}
