package binimg

import (
	"strings"
	"testing"

	"outliner/internal/isa"
	"outliner/internal/mir"
)

func sampleProgram() *mir.Program {
	p := mir.NewProgram()
	mk := func(name string, n int) *mir.Function {
		b := &mir.Block{Label: "entry"}
		for i := 0; i < n-1; i++ {
			b.Insts = append(b.Insts, isa.Inst{Op: isa.NOP})
		}
		b.Insts = append(b.Insts, isa.Inst{Op: isa.RET})
		return &mir.Function{Name: name, Blocks: []*mir.Block{b}}
	}
	p.AddFunc(mk("big", 100))
	p.AddFunc(mk("small", 3))
	p.AddFunc(mk("medium", 10))
	p.AddGlobal(&mir.Global{Name: "g1", Words: []int64{1, 2, 3}})
	p.AddGlobal(&mir.Global{Name: "g2", Words: []int64{4}})
	return p
}

func TestBuildSizes(t *testing.T) {
	img := Build(sampleProgram())
	if img.CodeSize != (100+3+10)*4 {
		t.Errorf("code size = %d", img.CodeSize)
	}
	if img.DataSize != 32 {
		t.Errorf("data size = %d", img.DataSize)
	}
	if img.SymCount != 5 {
		t.Errorf("symbols = %d", img.SymCount)
	}
	if img.TotalSize <= img.CodeSize+img.DataSize {
		t.Error("total must include header and symbol overhead")
	}
	if img.TotalSize%PageSize != 0 {
		t.Errorf("total size %d not page aligned", img.TotalSize)
	}
	if img.DataOffset <= img.CodeOffset {
		t.Error("sections out of order")
	}
}

func TestSymbolsAddressOrdered(t *testing.T) {
	img := Build(sampleProgram())
	addr := -1
	for _, s := range img.Symbols {
		if !s.Code {
			continue
		}
		if s.Addr <= addr {
			t.Errorf("symbol %s at %d not after %d", s.Name, s.Addr, addr)
		}
		addr = s.Addr
	}
}

func TestLargestCodeSymbols(t *testing.T) {
	img := Build(sampleProgram())
	top := img.LargestCodeSymbols(2)
	if len(top) != 2 || top[0].Name != "big" || top[1].Name != "medium" {
		t.Errorf("top = %+v", top)
	}
	all := img.LargestCodeSymbols(100)
	if len(all) != 3 {
		t.Errorf("len = %d", len(all))
	}
}

func TestFormatSize(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{100, "100B"},
		{2048, "2.00KB"},
		{145_700_000, "138.95MB"},
	}
	for _, c := range cases {
		if got := FormatSize(c.n); got != c.want {
			t.Errorf("FormatSize(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSummary(t *testing.T) {
	s := Build(sampleProgram()).Summary()
	if !strings.Contains(s, "code") || !strings.Contains(s, "symbols") {
		t.Errorf("summary = %q", s)
	}
}
