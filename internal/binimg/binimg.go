// Package binimg models the final binary image the system linker produces:
// a Mach-O-like container with a header, load commands, a __TEXT section of
// machine code, a __DATA section of globals, and a symbol table. It gives
// the repo one consistent definition of "binary size" versus "code size",
// mirroring the paper's distinction (Figure 12 plots both).
package binimg

import (
	"fmt"
	"sort"
	"strings"

	"outliner/internal/mir"
)

// Size model constants (bytes). Chosen so overhead proportions resemble a
// real Mach-O: the paper's UberRider is 145.7MB with a 114.5MB code section
// (~79% code); our synthetic apps land in the same ballpark.
const (
	HeaderSize      = 4096 // mach header + load commands, page aligned
	PageSize        = 4096
	SymbolEntrySize = 16 // nlist-like entry
)

// Image is a laid-out binary.
type Image struct {
	CodeSize  int // __TEXT: machine instructions
	DataSize  int // __DATA: globals
	SymCount  int
	SymStrLen int

	// Sections' file offsets (page aligned).
	CodeOffset int
	DataOffset int
	TotalSize  int

	// Symbols in address order.
	Symbols []Symbol
}

// Symbol is one symbol-table entry.
type Symbol struct {
	Name string
	Addr int
	Size int
	Code bool
}

// Build lays out a machine program into an image.
func Build(p *mir.Program) *Image {
	img := &Image{}
	addr := 0
	for _, f := range p.Funcs {
		size := f.CodeSize()
		img.Symbols = append(img.Symbols, Symbol{Name: f.Name, Addr: addr, Size: size, Code: true})
		addr += size
	}
	img.CodeSize = addr
	daddr := 0
	for _, g := range p.Globals {
		img.Symbols = append(img.Symbols, Symbol{Name: g.Name, Addr: daddr, Size: g.Size()})
		daddr += g.Size()
	}
	img.DataSize = daddr
	img.SymCount = len(img.Symbols)
	for _, s := range img.Symbols {
		img.SymStrLen += len(s.Name) + 1
	}
	img.CodeOffset = HeaderSize
	img.DataOffset = img.CodeOffset + align(img.CodeSize, PageSize)
	symtab := img.SymCount*SymbolEntrySize + align(img.SymStrLen, 8)
	img.TotalSize = img.DataOffset + align(img.DataSize, PageSize) + align(symtab, PageSize)
	return img
}

func align(n, a int) int { return (n + a - 1) / a * a }

// Summary renders a size report.
func (img *Image) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "binary: %s (code %s, data %s, %d symbols)",
		FormatSize(img.TotalSize), FormatSize(img.CodeSize), FormatSize(img.DataSize), img.SymCount)
	return b.String()
}

// FormatSize renders n in human units.
func FormatSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// LargestCodeSymbols returns the n biggest code symbols (size triage tool).
func (img *Image) LargestCodeSymbols(n int) []Symbol {
	code := make([]Symbol, 0, len(img.Symbols))
	for _, s := range img.Symbols {
		if s.Code {
			code = append(code, s)
		}
	}
	sort.Slice(code, func(i, j int) bool {
		if code[i].Size != code[j].Size {
			return code[i].Size > code[j].Size
		}
		return code[i].Name < code[j].Name
	})
	if n > len(code) {
		n = len(code)
	}
	return code[:n]
}
