package par_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"outliner/internal/par"
)

func TestMapPanicBecomesPanicError(t *testing.T) {
	for _, p := range []int{1, 4, 0} {
		_, err := par.MapStage("llc", p, 50, func(i int) (int, error) {
			if i == 17 {
				panic("compiler bug")
			}
			return i, nil
		})
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("p=%d: got %T (%v), want *par.PanicError", p, err, err)
		}
		if pe.Index != 17 || pe.Stage != "llc" || pe.Value != "compiler bug" {
			t.Fatalf("p=%d: PanicError = %+v", p, pe)
		}
		if !bytes.Contains(pe.Stack, []byte("panic_test.go")) {
			t.Fatalf("p=%d: stack does not point at the panic site:\n%s", p, pe.Stack)
		}
		for _, want := range []string{"llc", "task 17", "compiler bug"} {
			if !bytes.Contains([]byte(pe.Error()), []byte(want)) {
				t.Fatalf("p=%d: Error() = %q missing %q", p, pe.Error(), want)
			}
		}
	}
}

func TestPanicErrorUnwrapsErrorValues(t *testing.T) {
	sentinel := errors.New("inner failure")
	_, err := par.Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			panic(sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("panic(err) not visible through errors.Is: %v", err)
	}
}

// TestDoRePanicsStructured: Do must not crash the process on a worker panic;
// it re-raises the lowest-index panic as a *PanicError on the caller.
func TestDoRePanicsStructured(t *testing.T) {
	for _, p := range []int{1, 4} {
		func() {
			defer func() {
				pe, ok := recover().(*par.PanicError)
				if !ok {
					t.Fatalf("p=%d: recovered %T, want *par.PanicError", p, pe)
				}
				if pe.Index != 5 {
					t.Fatalf("p=%d: panic index = %d, want 5", p, pe.Index)
				}
			}()
			par.Do(p, 20, func(i int) {
				if i == 5 || i == 15 {
					panic(fmt.Sprintf("boom at %d", i))
				}
			})
			t.Fatalf("p=%d: Do returned without re-panicking", p)
		}()
	}
}

// TestLowestIndexMixedFailures: an error and a panic compete; the lowest
// index wins whatever its failure mode, at any worker count.
func TestLowestIndexMixedFailures(t *testing.T) {
	sentinel := errors.New("plain error at 20")
	for _, p := range []int{1, 2, 8, 0} {
		for trial := 0; trial < 10; trial++ {
			_, err := par.Map(p, 100, func(i int) (int, error) {
				switch i {
				case 20:
					return 0, sentinel
				case 40:
					panic("later panic")
				}
				return i, nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("p=%d: got %v, want the index-20 error", p, err)
			}
		}
	}
}

// TestEarlyCancellation: after the first failure the pool stops claiming
// work. Index 0 fails immediately while every other task blocks on a gate
// that only opens once the failure is recorded; the pool must skip the
// remaining thousands of tasks instead of draining them.
func TestEarlyCancellation(t *testing.T) {
	const n = 10000
	gate := make(chan struct{})
	var executed atomic.Int64
	_, err := par.Map(4, n, func(i int) (int, error) {
		if i == 0 {
			defer close(gate)
			return 0, fmt.Errorf("fail at 0")
		}
		<-gate
		executed.Add(1)
		return i, nil
	})
	if err == nil || err.Error() != "fail at 0" {
		t.Fatalf("got error %v, want fail at 0", err)
	}
	// Only tasks already claimed before the failure was recorded may run:
	// at most one in-flight per worker, nowhere near n.
	if got := executed.Load(); got > 100 {
		t.Fatalf("pool drained %d of %d tasks after the first error", got, n)
	}
}

// TestSerialSkipsAfterPanic mirrors TestMapSerialStopsAtFirstError for the
// panic path: with one worker, nothing past the panicking index runs.
func TestSerialSkipsAfterPanic(t *testing.T) {
	var calls int
	_, err := par.Map(1, 100, func(i int) (int, error) {
		calls++
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
	var pe *par.PanicError
	if !errors.As(err, &pe) || pe.Index != 5 {
		t.Fatalf("got %v", err)
	}
	if calls != 6 {
		t.Fatalf("serial Map made %d calls after panic at index 5, want 6", calls)
	}
}

// TestMapAllLanesKeepGoing: the keep-going variant runs every task despite
// failures and reports each error at its index.
func TestMapAllLanesKeepGoing(t *testing.T) {
	for _, p := range []int{1, 4, 0} {
		var ran atomic.Int64
		out, errs := par.MapAllLanesStage("frontend", p, 50, func(_, i int) (int, error) {
			ran.Add(1)
			switch i {
			case 10:
				return 0, fmt.Errorf("error at 10")
			case 20:
				panic("panic at 20")
			}
			return i * i, nil
		})
		if got := ran.Load(); got != 50 {
			t.Fatalf("p=%d: keep-going ran %d of 50 tasks", p, got)
		}
		if errs == nil {
			t.Fatalf("p=%d: no errors collected", p)
		}
		for i := 0; i < 50; i++ {
			switch i {
			case 10:
				if errs[i] == nil || errs[i].Error() != "error at 10" {
					t.Fatalf("p=%d: errs[10] = %v", p, errs[i])
				}
			case 20:
				var pe *par.PanicError
				if !errors.As(errs[i], &pe) || pe.Index != 20 || pe.Stage != "frontend" {
					t.Fatalf("p=%d: errs[20] = %v", p, errs[i])
				}
			default:
				if errs[i] != nil {
					t.Fatalf("p=%d: unexpected errs[%d] = %v", p, i, errs[i])
				}
				if out[i] != i*i {
					t.Fatalf("p=%d: out[%d] = %d", p, i, out[i])
				}
			}
		}
	}
}

func TestMapAllLanesNoErrors(t *testing.T) {
	out, errs := par.MapAllLanesStage("", 4, 20, func(_, i int) (int, error) { return i, nil })
	if errs != nil {
		t.Fatalf("errs = %v, want nil on full success", errs)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRecovered(t *testing.T) {
	pe := &par.PanicError{Index: 3, Stage: "x", Value: "v"}
	if got := par.Recovered("other", 9, pe); got != pe {
		t.Fatal("Recovered re-wrapped an existing *PanicError")
	}
	got := par.Recovered("opt", -1, "raw value")
	if got.Index != -1 || got.Stage != "opt" || got.Value != "raw value" || len(got.Stack) == 0 {
		t.Fatalf("Recovered = %+v", got)
	}
	if !bytes.Contains([]byte(got.Error()), []byte("main goroutine")) {
		t.Fatalf("Error() = %q", got.Error())
	}
}
