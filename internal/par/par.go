// Package par is the deterministic parallel execution layer of the build
// pipeline. It provides a bounded worker pool with ordered result
// collection: work items are claimed in index order, results land at their
// input index, and errors are reported for the lowest failing index — so
// callers observe the same values whether the pool runs one worker or one
// per core.
//
// The paper's whole-program pipeline forfeits the per-module parallelism
// that build systems exploit (§VII-C: 53 min whole-program vs 21 min
// default); this package is how the reproduction wins it back without
// giving up the outliner's byte-for-byte determinism guarantee.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob against the size of the work list:
// p <= 0 means one worker per logical CPU (runtime.GOMAXPROCS(0)), and the
// result never exceeds n or drops below 1.
func Workers(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Do runs f(i) for every i in [0, n) using at most p workers (see Workers
// for how p is normalized). With an effective worker count of 1 the calls
// happen on the calling goroutine in index order — exactly the serial loop
// it replaces. With more workers, indices are claimed in order from a
// shared counter, so item k never starts before item k-1 has been claimed.
// Do returns once every call has finished.
func Do(p, n int, f func(i int)) {
	DoLanes(p, n, func(_, i int) { f(i) })
}

// DoLanes is Do with the worker's lane (0 ≤ lane < effective worker count)
// passed to every call. Each lane is one goroutine: calls on the same lane
// never overlap in time, which is what lets the telemetry layer render the
// pool as per-worker tracks in a trace. The lane an item lands on is
// scheduling-dependent; callers must not let it influence results.
func DoLanes(p, n int, f func(lane, i int)) {
	p = Workers(p, n)
	if p == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}()
	}
	wg.Wait()
}

// Map runs f(i) for every i in [0, n) using at most p workers and collects
// the results in input order. If any call fails, Map returns the error of
// the lowest failing index — deterministic regardless of scheduling,
// because indices are claimed in order, so every index at or below the
// first failure is always executed. After a failure, not-yet-claimed items
// are skipped (with one worker this degenerates to the serial
// stop-at-first-error loop).
func Map[T any](p, n int, f func(i int) (T, error)) ([]T, error) {
	return MapLanes(p, n, func(_, i int) (T, error) { return f(i) })
}

// MapLanes is Map with the worker's lane passed to every call (see DoLanes).
func MapLanes[T any](p, n int, f func(lane, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var failed atomic.Bool
	DoLanes(p, n, func(lane, i int) {
		if failed.Load() {
			return
		}
		v, err := f(lane, i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		out[i] = v
	})
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
