// Package par is the deterministic parallel execution layer of the build
// pipeline. It provides a bounded worker pool with ordered result
// collection: work items are claimed in index order, results land at their
// input index, and errors are reported for the lowest failing index — so
// callers observe the same values whether the pool runs one worker or one
// per core.
//
// The paper's whole-program pipeline forfeits the per-module parallelism
// that build systems exploit (§VII-C: 53 min whole-program vs 21 min
// default); this package is how the reproduction wins it back without
// giving up the outliner's byte-for-byte determinism guarantee.
//
// Fault tolerance: a panic inside a worker never takes down the process.
// Every task runs under a recover that converts the panic into a structured
// *PanicError (task index, pipeline stage, stack) delivered through the same
// lowest-index-error contract as ordinary failures — Map returns it, Do
// re-panics it on the calling goroutine where the pipeline's recovery
// boundary turns it into a build error. After the first failure the pool
// cancels promptly: workers stop executing tasks whose index lies above the
// lowest recorded failure (tasks below it still run, which is what keeps the
// reported error deterministic under any scheduling). MapAllLanesStage is
// the keep-going variant: every task runs regardless of failures and all
// errors are collected.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error: the structured
// diagnostic a build reports instead of crashing the process.
type PanicError struct {
	Index int    // task index that panicked
	Stage string // pipeline stage the pool was serving ("" if unlabelled)
	Value any    // the recovered panic value
	Stack []byte // stack captured at the panic's recovery point
}

func (e *PanicError) Error() string {
	where := fmt.Sprintf("task %d", e.Index)
	if e.Index < 0 {
		where = "main goroutine"
	}
	if e.Stage != "" {
		where = fmt.Sprintf("stage %q, %s", e.Stage, where)
	}
	return fmt.Sprintf("panic in parallel worker (%s): %v", where, e.Value)
}

// Unwrap exposes a panic value that was itself an error (panic(err)), so
// errors.Is/As see through the conversion.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered wraps a recovered panic value as a *PanicError, reusing it
// unchanged when it already is one. index -1 means "not a pool task" — the
// pipeline's top-level recovery boundaries use it for panics on the calling
// goroutine.
func Recovered(stage string, index int, r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Index: index, Stage: stage, Value: r, Stack: debug.Stack()}
}

// Workers normalizes a parallelism knob against the size of the work list:
// p <= 0 means one worker per logical CPU (runtime.GOMAXPROCS(0)), and the
// result never exceeds n or drops below 1.
func Workers(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runLanes is the shared pool: it executes f(lane, i) for every i in [0, n)
// with at most p workers, recovering panics into *PanicError. It returns a
// per-index error slice, or nil when every task succeeded (the common path
// allocates nothing).
//
// With keepGoing false, tasks whose index exceeds the lowest recorded
// failure are skipped — the early cancellation that stops a failed build
// promptly. Determinism of the reported error follows from the skip rule:
// a task i is only skipped when some j < i has already failed, and since
// f is deterministic per index, the smallest failing index always executes
// and always records its error. With keepGoing true nothing is skipped.
//
// ctx may be nil ("never cancelled"). A done context stops workers from
// claiming further tasks — even under keepGoing, where it overrides the
// run-everything rule: a cancelled build must stop promptly, not finish the
// wave. Exactly one cancellation error (wrapping ctx.Err, naming the stage)
// is recorded at the first unclaimed index, so keep-going callers aggregate
// it alongside the failures of every task that already ran. Cancellation is
// inherently nondeterministic — the error set depends on when the context
// fired — which is why only external events (client disconnects, deadlines,
// drains) and scripted faults ever cancel a build's context.
func runLanes(ctx context.Context, stage string, p, n int, keepGoing bool, f func(lane, i int) error) []error {
	p = Workers(p, n)

	var errs []error
	var errsMu sync.Mutex
	var failedAt atomic.Int64
	failedAt.Store(int64(n))

	record := func(i int, err error) {
		errsMu.Lock()
		if errs == nil {
			errs = make([]error, n)
		}
		errs[i] = err
		errsMu.Unlock()
		if keepGoing {
			return
		}
		for {
			cur := failedAt.Load()
			if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	var cancelOnce sync.Once
	// cancelled reports whether ctx is done before task i runs, recording the
	// cancellation (once) at i — the lowest index no worker will claim.
	cancelled := func(i int) bool {
		if ctx == nil || ctx.Err() == nil {
			return false
		}
		cancelOnce.Do(func() {
			record(i, fmt.Errorf("stage %q cancelled before task %d: %w", stage, i, ctx.Err()))
		})
		return true
	}
	call := func(lane, i int) {
		defer func() {
			if r := recover(); r != nil {
				record(i, Recovered(stage, i, r))
			}
		}()
		if err := f(lane, i); err != nil {
			record(i, err)
		}
	}

	if p == 1 {
		for i := 0; i < n; i++ {
			if !keepGoing && int64(i) > failedAt.Load() {
				break
			}
			if cancelled(i) {
				break
			}
			call(0, i)
		}
		return errs
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// A failure strictly below i has been recorded: every index
				// this worker could still claim is above it too, so stop.
				if !keepGoing && int64(i) > failedAt.Load() {
					return
				}
				if cancelled(i) {
					return
				}
				call(w, i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// firstErr returns the lowest-index error, or nil.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do runs f(i) for every i in [0, n) using at most p workers (see Workers
// for how p is normalized). With an effective worker count of 1 the calls
// happen on the calling goroutine in index order — exactly the serial loop
// it replaces. With more workers, indices are claimed in order from a
// shared counter, so item k never starts before item k-1 has been claimed.
// Do returns once every call has finished. A panicking call does not crash
// the process: the lowest-index panic is re-raised on the calling goroutine
// as a *PanicError (remaining higher-index tasks are skipped).
func Do(p, n int, f func(i int)) {
	DoLanesStage("", p, n, func(_, i int) { f(i) })
}

// DoStage is Do with the pipeline stage recorded in panic diagnostics.
func DoStage(stage string, p, n int, f func(i int)) {
	DoLanesStage(stage, p, n, func(_, i int) { f(i) })
}

// DoLanes is Do with the worker's lane (0 ≤ lane < effective worker count)
// passed to every call. Each lane is one goroutine: calls on the same lane
// never overlap in time, which is what lets the telemetry layer render the
// pool as per-worker tracks in a trace. The lane an item lands on is
// scheduling-dependent; callers must not let it influence results.
func DoLanes(p, n int, f func(lane, i int)) {
	DoLanesStage("", p, n, f)
}

// DoLanesStage is DoLanes with the pipeline stage recorded in panic
// diagnostics.
func DoLanesStage(stage string, p, n int, f func(lane, i int)) {
	errs := runLanes(nil, stage, p, n, false, func(lane, i int) error {
		f(lane, i)
		return nil
	})
	// Only panics can be recorded here; re-raise the lowest-index one where
	// the caller's recovery boundary (pipeline, outliner) can see it.
	if err := firstErr(errs); err != nil {
		panic(err)
	}
}

// Map runs f(i) for every i in [0, n) using at most p workers and collects
// the results in input order. If any call fails, Map returns the error of
// the lowest failing index — deterministic regardless of scheduling,
// because a task is only skipped when a lower-index task has already
// failed, so the smallest failing index is always executed. Panics count as
// failures and surface as *PanicError. After a failure, higher-index tasks
// are skipped (with one worker this degenerates to the serial
// stop-at-first-error loop).
func Map[T any](p, n int, f func(i int) (T, error)) ([]T, error) {
	return MapLanesStage("", p, n, func(_, i int) (T, error) { return f(i) })
}

// MapStage is Map with the pipeline stage recorded in panic diagnostics.
func MapStage[T any](stage string, p, n int, f func(i int) (T, error)) ([]T, error) {
	return MapLanesStage(stage, p, n, func(_, i int) (T, error) { return f(i) })
}

// MapLanes is Map with the worker's lane passed to every call (see DoLanes).
func MapLanes[T any](p, n int, f func(lane, i int) (T, error)) ([]T, error) {
	return MapLanesStage("", p, n, f)
}

// MapLanesStage is MapLanes with the pipeline stage recorded in panic
// diagnostics.
func MapLanesStage[T any](stage string, p, n int, f func(lane, i int) (T, error)) ([]T, error) {
	return MapLanesStageCtx(nil, stage, p, n, f)
}

// MapLanesStageCtx is MapLanesStage under a context: once ctx is done,
// workers stop claiming tasks and the stage fails with an error wrapping
// ctx.Err() (unless a lower-index task had already failed — the lowest-index
// rule is unchanged). A nil ctx never cancels. In-flight tasks are not
// interrupted; long tasks observe the same context themselves.
func MapLanesStageCtx[T any](ctx context.Context, stage string, p, n int, f func(lane, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := runLanes(ctx, stage, p, n, false, func(lane, i int) error {
		v, err := f(lane, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// MapAllLanesStage is the keep-going variant of MapLanesStage: every task
// runs regardless of failures (nothing is cancelled), results land at their
// index, and the returned error slice holds each task's failure at its index
// (nil when every task succeeded). Panics are collected as *PanicError like
// any other failure. Callers aggregate the errors — pipeline keep-going mode
// reports every broken module at once instead of only the first.
func MapAllLanesStage[T any](stage string, p, n int, f func(lane, i int) (T, error)) ([]T, []error) {
	return MapAllLanesStageCtx(nil, stage, p, n, f)
}

// MapAllLanesStageCtx is MapAllLanesStage under a context. Cancellation
// overrides keep-going: once ctx is done workers stop claiming tasks, but
// every error already recorded stays in the slice, joined by exactly one
// cancellation error — so a keep-going caller still aggregates the failures
// of everything that ran before the cut. A nil ctx never cancels.
func MapAllLanesStageCtx[T any](ctx context.Context, stage string, p, n int, f func(lane, i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := runLanes(ctx, stage, p, n, true, func(lane, i int) error {
		v, err := f(lane, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, errs
}
