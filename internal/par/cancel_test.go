package par_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"outliner/internal/par"
)

// TestMapLanesStageCtxPreCancelled: a context that is already done stops the
// stage before any task runs, and the stage error names the stage and wraps
// the context's error.
func TestMapLanesStageCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, p := range []int{1, 4} {
		_, err := par.MapLanesStageCtx(ctx, "frontend", p, 16, func(lane, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if err == nil {
			t.Fatalf("p=%d: pre-cancelled context produced no error", p)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: error %v does not wrap context.Canceled", p, err)
		}
		if !strings.Contains(err.Error(), `stage "frontend"`) {
			t.Fatalf("p=%d: error %q does not name the stage", p, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context, want 0", ran.Load())
	}
}

// TestMapLanesStageCtxNilNeverCancels: nil means "no context", the historic
// behavior every pre-context call site relies on.
func TestMapLanesStageCtxNilNeverCancels(t *testing.T) {
	out, err := par.MapLanesStageCtx[int](nil, "s", 4, 8, func(lane, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapAllLanesStageCtxCancelMidWaveKeepsEarlierFailures is the
// keep-going × cancellation contract: cancelling mid-wave stops further
// claiming, but every failure recorded before the cut stays in the error
// slice, joined by exactly one cancellation error at the first unclaimed
// index. A keep-going build cancelled halfway still reports the modules that
// had already failed.
func TestMapAllLanesStageCtxCancelMidWaveKeepsEarlierFailures(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom0 := fmt.Errorf("module 0 broken")
	boom2 := fmt.Errorf("module 2 broken")
	out, errs := par.MapAllLanesStageCtx(ctx, "frontend", 1, 5, func(lane, i int) (string, error) {
		switch i {
		case 0:
			return "", boom0
		case 2:
			cancel() // the wave is cancelled while task 2 runs
			return "", boom2
		case 4:
			t.Error("task 4 claimed after cancellation")
		}
		return fmt.Sprintf("ok%d", i), nil
	})
	if errs == nil {
		t.Fatal("no errors recorded")
	}
	if !errors.Is(errs[0], boom0) {
		t.Fatalf("errs[0] = %v, want the recorded pre-cancel failure", errs[0])
	}
	if out[1] != "ok1" {
		t.Fatalf("out[1] = %q, task 1's result was lost", out[1])
	}
	if !errors.Is(errs[2], boom2) {
		t.Fatalf("errs[2] = %v, want the failure of the task that cancelled", errs[2])
	}
	if errs[3] == nil || !errors.Is(errs[3], context.Canceled) {
		t.Fatalf("errs[3] = %v, want exactly one cancellation error at the first unclaimed index", errs[3])
	}
	if errs[4] != nil {
		t.Fatalf("errs[4] = %v, want nil (only one cancellation error is recorded)", errs[4])
	}
	count := 0
	for _, e := range errs {
		if e != nil && errors.Is(e, context.Canceled) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d cancellation errors recorded, want exactly 1", count)
	}
}

// TestMapAllLanesStageCtxPreCancelled: keep-going under an already-done
// context runs nothing and reports a single cancellation error.
func TestMapAllLanesStageCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, errs := par.MapAllLanesStageCtx(ctx, "parse", 4, 8, func(lane, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran, want 0", ran.Load())
	}
	nonNil := 0
	for _, e := range errs {
		if e != nil {
			if !errors.Is(e, context.Canceled) {
				t.Fatalf("unexpected error %v", e)
			}
			nonNil++
		}
	}
	if nonNil != 1 {
		t.Fatalf("%d errors recorded, want exactly one cancellation error", nonNil)
	}
}
