package par_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"outliner/internal/par"
)

func TestWorkers(t *testing.T) {
	cases := []struct{ p, n, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{1, 100, 1},
		{4, 2, 2},
		{4, 0, 1},
		{8, 8, 8},
	}
	for _, c := range cases {
		if got := par.Workers(c.p, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestDoCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 4, 0} {
		const n = 1000
		var hits [n]atomic.Int32
		par.Do(p, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("p=%d: index %d executed %d times", p, i, got)
			}
		}
	}
}

func TestDoSerialIsInOrder(t *testing.T) {
	var order []int
	par.Do(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, p := range []int{1, 3, 0} {
		out, err := par.Map(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("p=%d: out[%d] = %d", p, i, v)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Indices 30 and 70 both fail; the reported error must always be 30's,
	// whatever the worker count or scheduling.
	for _, p := range []int{1, 2, 8, 0} {
		for trial := 0; trial < 10; trial++ {
			_, err := par.Map(p, 100, func(i int) (int, error) {
				if i == 30 || i == 70 {
					return 0, fmt.Errorf("fail at %d", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "fail at 30" {
				t.Fatalf("p=%d: got error %v, want fail at 30", p, err)
			}
		}
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	var calls int
	sentinel := errors.New("boom")
	_, err := par.Map(1, 100, func(i int) (int, error) {
		calls++
		if i == 5 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if calls != 6 {
		t.Fatalf("serial Map made %d calls after error at index 5, want 6", calls)
	}
}

// TestDoLanesCoversAllIndices: every index runs exactly once, every lane is
// within [0, effective workers), and one lane never runs two calls at once.
func TestDoLanesCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 4, 0} {
		const n = 500
		workers := par.Workers(p, n)
		var hits [n]atomic.Int32
		busy := make([]atomic.Int32, workers)
		par.DoLanes(p, n, func(lane, i int) {
			if lane < 0 || lane >= workers {
				t.Errorf("p=%d: lane %d out of range [0,%d)", p, lane, workers)
			}
			if busy[lane].Add(1) != 1 {
				t.Errorf("p=%d: lane %d ran two items concurrently", p, lane)
			}
			hits[i].Add(1)
			busy[lane].Add(-1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("p=%d: index %d executed %d times", p, i, got)
			}
		}
	}
}

func TestMapLanesOrderedResults(t *testing.T) {
	for _, p := range []int{1, 3, 0} {
		out, err := par.MapLanes(p, 100, func(lane, i int) (int, error) {
			if lane < 0 || lane >= par.Workers(p, 100) {
				return 0, fmt.Errorf("lane %d out of range", lane)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("p=%d: out[%d] = %d", p, i, v)
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := par.Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}
