// Package irlink merges per-module LLIR into one whole-program module — the
// llvm-link analog of the paper's new build pipeline (§V-A, Figure 10).
//
// It reproduces both practical challenges of §VI:
//
//   - Metadata conflicts (§VI-2): Swift- and Clang-produced modules carry
//     different "Objective-C Garbage Collection" module flags. The default
//     whole-value comparison fails the link; the upstreamed fix splits the
//     flag into attributes and compares only the relevant ones.
//   - Data layout (§VI-3): by default the merged module orders globals
//     by name across all modules, destroying programmer-driven data
//     affinity and causing page-fault regressions. PreserveModuleOrder
//     keeps each module's globals grouped in original order.
package irlink

import (
	"fmt"
	"sort"
	"strings"

	"outliner/internal/llir"
	"outliner/internal/obs"
)

// Options configures the merge.
type Options struct {
	// SplitGCMetadata enables the upstreamed fix: the GC module flag is
	// split into attributes and only compatible attributes are compared.
	// Without it, any two modules whose flags differ refuse to link.
	SplitGCMetadata bool
	// PreserveModuleOrder keeps each input module's globals contiguous and
	// in their original order (the paper's data-layout fix). When false,
	// globals are sorted by name across modules, interleaving unrelated
	// modules' data.
	PreserveModuleOrder bool
	// MergedName names the output module.
	MergedName string
	// Tracer receives link counters (modules, functions, globals merged);
	// nil disables.
	Tracer *obs.Tracer
}

// GCFlagKey is the module flag whose conflict §VI-2 describes.
const GCFlagKey = "Objective-C Garbage Collection"

// Link merges modules. Function and global names must be unique across
// modules (the system linker would reject duplicate strong symbols anyway).
func Link(modules []*llir.Module, opts Options) (*llir.Module, error) {
	if opts.MergedName == "" {
		opts.MergedName = "merged"
	}
	out := llir.NewModule(opts.MergedName)

	if err := mergeMetadata(out, modules, opts); err != nil {
		return nil, err
	}

	for _, m := range modules {
		for _, f := range m.Funcs {
			if prev := out.Func(f.Name); prev != nil {
				return nil, fmt.Errorf("irlink: duplicate symbol %q (modules %s and %s)",
					f.Name, prev.Module, f.Module)
			}
			out.AddFunc(f)
		}
	}
	opts.Tracer.Add("irlink/modules", int64(len(modules)))
	opts.Tracer.Add("irlink/functions", int64(len(out.Funcs)))

	seen := make(map[string]string)
	if opts.PreserveModuleOrder {
		for _, m := range modules {
			for _, g := range m.Globals {
				if prev, dup := seen[g.Name]; dup {
					return nil, fmt.Errorf("irlink: duplicate global %q (modules %s and %s)", g.Name, prev, g.Module)
				}
				seen[g.Name] = g.Module
				out.Globals = append(out.Globals, g)
			}
		}
		opts.Tracer.Add("irlink/globals", int64(len(out.Globals)))
		return out, nil
	}
	// Default llvm-link-like behaviour: a global ordering that ignores
	// module affinity, interleaving data from unrelated modules onto the
	// same pages. (Real llvm-link emits globals in an internal merge order
	// with no relation to the programmer's module grouping; we model that
	// with a deterministic name-hash order, which is equally
	// affinity-destroying and reproducible.)
	for _, m := range modules {
		for _, g := range m.Globals {
			if prev, dup := seen[g.Name]; dup {
				return nil, fmt.Errorf("irlink: duplicate global %q (modules %s and %s)", g.Name, prev, g.Module)
			}
			seen[g.Name] = g.Module
			out.Globals = append(out.Globals, g)
		}
	}
	sort.Slice(out.Globals, func(i, j int) bool {
		hi, hj := nameHash(out.Globals[i].Name), nameHash(out.Globals[j].Name)
		if hi != hj {
			return hi < hj
		}
		return out.Globals[i].Name < out.Globals[j].Name
	})
	opts.Tracer.Add("irlink/globals", int64(len(out.Globals)))
	return out, nil
}

// nameHash is a deterministic FNV-1a over the symbol name.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mergeMetadata(out *llir.Module, modules []*llir.Module, opts Options) error {
	for _, m := range modules {
		for k, v := range m.Metadata {
			prev, ok := out.Metadata[k]
			if !ok {
				out.Metadata[k] = v
				continue
			}
			if prev == v {
				continue
			}
			if k == GCFlagKey && opts.SplitGCMetadata {
				merged, err := mergeGCAttributes(prev, v)
				if err != nil {
					return fmt.Errorf("irlink: module %s: %w", m.Name, err)
				}
				out.Metadata[k] = merged
				continue
			}
			return fmt.Errorf("irlink: conflicting module flag %q: %q (from earlier modules) vs %q (module %s); "+
				"rebuild with the split-attribute fix to link mixed Swift/Objective-C IR", k, prev, v, m.Name)
		}
	}
	return nil
}

// mergeGCAttributes implements the upstreamed fix: the flag value is an
// attribute list ("compiler version bits"); only the attributes that affect
// ABI compatibility (the bits-* attribute) must agree, the compiler identity
// may differ.
func mergeGCAttributes(a, b string) (string, error) {
	attrsA, attrsB := parseAttrs(a), parseAttrs(b)
	bitsA, bitsB := attrsA["bits"], attrsB["bits"]
	if bitsA != "" && bitsB != "" && bitsA != bitsB {
		return "", fmt.Errorf("incompatible GC ABI bits: %s vs %s", bitsA, bitsB)
	}
	// Keep the union; the compiler identity attribute becomes "mixed" when
	// the inputs disagree.
	if attrsA["compiler"] != attrsB["compiler"] {
		attrsA["compiler"] = "mixed"
	}
	if bitsA == "" {
		attrsA["bits"] = bitsB
	}
	var keys []string
	for k := range attrsA {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if attrsA[k] == "" {
			continue
		}
		parts = append(parts, k+"-"+attrsA[k])
	}
	return strings.Join(parts, " "), nil
}

// parseAttrs splits "swift abi-v5.2 bits-0x17" into attributes. The first
// token without a dash is the compiler identity.
func parseAttrs(v string) map[string]string {
	attrs := make(map[string]string)
	for _, tok := range strings.Fields(v) {
		if k, val, ok := strings.Cut(tok, "-"); ok {
			attrs[k] = val
		} else if attrs["compiler"] == "" {
			attrs["compiler"] = tok
		}
	}
	return attrs
}
