package irlink

import (
	"strings"
	"testing"

	"outliner/internal/llir"
)

func mod(name string, globals ...string) *llir.Module {
	m := llir.NewModule(name)
	m.Metadata[GCFlagKey] = llir.SwiftGCMetadata
	f := &llir.Func{Name: name + ".f", Module: name, NumValues: 1}
	f.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{{Op: llir.Ret}}}}
	m.AddFunc(f)
	for i, g := range globals {
		m.Globals = append(m.Globals, &llir.Global{Name: g, Module: name, Words: []int64{int64(i)}})
	}
	return m
}

func TestLinkMergesFunctionsAndGlobals(t *testing.T) {
	a := mod("A", "A.g1", "A.g2")
	b := mod("B", "B.g1")
	out, err := Link([]*llir.Module{a, b}, Options{PreserveModuleOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Func("A.f") == nil || out.Func("B.f") == nil {
		t.Error("functions missing after link")
	}
	if len(out.Globals) != 3 {
		t.Errorf("globals = %d", len(out.Globals))
	}
}

func TestLinkRejectsDuplicateSymbols(t *testing.T) {
	a := mod("A")
	b := llir.NewModule("B")
	b.Metadata[GCFlagKey] = llir.SwiftGCMetadata
	dup := &llir.Func{Name: "A.f", Module: "B"}
	dup.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{{Op: llir.Ret}}}}
	b.AddFunc(dup)
	if _, err := Link([]*llir.Module{a, b}, Options{}); err == nil {
		t.Error("duplicate function symbol accepted")
	}

	c := mod("C", "shared")
	d := mod("D", "shared")
	if _, err := Link([]*llir.Module{c, d}, Options{}); err == nil {
		t.Error("duplicate global symbol accepted")
	}
}

// §VI-3: default ordering interleaves modules' globals; the fix keeps each
// module's data contiguous.
func TestDataLayoutOrdering(t *testing.T) {
	a := mod("A", "zebra", "apple")
	b := mod("B", "mango", "banana")

	def, err := Link([]*llir.Module{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotDef := globalNames(def)
	if eq(gotDef, []string{"zebra", "apple", "mango", "banana"}) {
		t.Errorf("default order %v preserved module grouping; it must not", gotDef)
	}
	if len(gotDef) != 4 {
		t.Fatalf("default order lost globals: %v", gotDef)
	}

	fixed, err := Link([]*llir.Module{mod("A", "zebra", "apple"), mod("B", "mango", "banana")},
		Options{PreserveModuleOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	gotFix := globalNames(fixed)
	wantFix := []string{"zebra", "apple", "mango", "banana"} // module-grouped original order
	if !eq(gotFix, wantFix) {
		t.Errorf("preserved order = %v, want %v", gotFix, wantFix)
	}
}

// §VI-2: conflicting GC flags refuse to link unless split into attributes;
// with the fix, compatible ABI bits merge and compiler identity becomes
// "mixed". Incompatible ABI bits still fail.
func TestGCMetadataMerging(t *testing.T) {
	swift := mod("Swift")
	clang := mod("Clang")
	clang.Metadata[GCFlagKey] = "clang abi-v11.0 bits-0x17"

	if _, err := Link([]*llir.Module{swift, clang}, Options{}); err == nil {
		t.Fatal("conflicting metadata accepted without the fix")
	} else if !strings.Contains(err.Error(), GCFlagKey) {
		t.Fatalf("unexpected error: %v", err)
	}

	out, err := Link([]*llir.Module{mod("Swift2"), cloneWithFlag("Clang2", "clang abi-v11.0 bits-0x17")},
		Options{SplitGCMetadata: true})
	if err != nil {
		t.Fatalf("link with fix failed: %v", err)
	}
	if !strings.Contains(out.Metadata[GCFlagKey], "mixed") {
		t.Errorf("merged flag = %q, want mixed compiler attribute", out.Metadata[GCFlagKey])
	}

	// Incompatible ABI bits must fail even with the fix.
	if _, err := Link([]*llir.Module{mod("Swift3"), cloneWithFlag("Clang3", "clang bits-0xFF")},
		Options{SplitGCMetadata: true}); err == nil {
		t.Error("incompatible ABI bits accepted")
	}
}

func cloneWithFlag(name, flag string) *llir.Module {
	m := mod(name)
	m.Metadata[GCFlagKey] = flag
	return m
}

func TestNonConflictingMetadataPasses(t *testing.T) {
	a, b := mod("A"), mod("B")
	out, err := Link([]*llir.Module{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metadata[GCFlagKey] != llir.SwiftGCMetadata {
		t.Errorf("metadata = %q", out.Metadata[GCFlagKey])
	}
}

func globalNames(m *llir.Module) []string {
	out := make([]string, len(m.Globals))
	for i, g := range m.Globals {
		out[i] = g.Name
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
