package difftest

import (
	"errors"
	"fmt"

	"outliner/internal/appgen"
	"outliner/internal/exec"
	"outliner/internal/layout"
	"outliner/internal/mir"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
)

// Class classifies how two lattice points disagree.
type Class int

const (
	// ClassAgree: the points agree (or the comparison is inconclusive
	// because the reference exhausted its step budget).
	ClassAgree Class = iota
	// ClassBuildError: the aggressive point failed to build or verify a
	// program the reference built fine.
	ClassBuildError
	// ClassOutputMismatch: both runs completed but printed different output.
	ClassOutputMismatch
	// ClassTrapMismatch: one run trapped (BRK, bad memory, division by
	// zero...) where the other did not, or they trapped differently.
	ClassTrapMismatch
	// ClassBudget: the aggressive point ran away — it exhausted a step
	// budget far beyond what the reference needed to finish.
	ClassBudget
)

func (c Class) String() string {
	switch c {
	case ClassAgree:
		return "agree"
	case ClassBuildError:
		return "build-error"
	case ClassOutputMismatch:
		return "output-mismatch"
	case ClassTrapMismatch:
		return "trap-mismatch"
	case ClassBudget:
		return "budget-divergence"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Outcome is one point's build-and-run result.
type Outcome struct {
	Point    string
	BuildErr error       // compile/verify failure; everything below is zero
	Output   string      // what @main printed (possibly partial, on RunErr)
	Steps    int64       // dynamic instructions executed
	RunErr   *exec.Error // non-nil when execution stopped abnormally
}

// Divergence is a confirmed disagreement between two lattice points.
type Divergence struct {
	Class    Class
	Ref, Got Outcome
	Detail   string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s between %s and %s: %s", d.Class, d.Ref.Point, d.Got.Point, d.Detail)
}

// Oracle builds and executes programs and decides whether lattice points
// agree.
type Oracle struct {
	// MaxSteps bounds each execution (0 = 100M).
	MaxSteps int64
	// Corrupt, when non-nil, mutates each built machine program before
	// execution — the miscompile-injection hook the reducer's acceptance
	// test uses (see CorruptOutlined). Points without outlined functions
	// are naturally unaffected by outlined-sequence corruption, which is
	// what makes the injected bug show up as a lattice divergence.
	Corrupt func(*mir.Program)
}

func (o *Oracle) maxSteps() int64 {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 100_000_000
}

// Build compiles mods at one lattice point (Verify forced on) and returns
// the machine program, without the Corrupt hook applied.
func (o *Oracle) Build(mods []appgen.Module, pt Point) (*mir.Program, error) {
	cfg := pt.Config
	cfg.Verify = true
	llmods, err := appgen.CompileModules(mods, cfg)
	if err != nil {
		return nil, err
	}
	res, err := pipeline.BuildFromLLIR(llmods, cfg)
	if err != nil {
		return nil, err
	}
	return res.Prog, nil
}

// Run builds mods at one lattice point and executes @main.
func (o *Oracle) Run(mods []appgen.Module, pt Point) Outcome {
	return o.run(mods, pt, nil)
}

// run is Run with optional profile collection on the executed program.
func (o *Oracle) run(mods []appgen.Module, pt Point, col *profile.Collector) Outcome {
	out := Outcome{Point: pt.Name}
	prog, err := o.Build(mods, pt)
	if err != nil {
		out.BuildErr = err
		return out
	}
	if o.Corrupt != nil {
		o.Corrupt(prog)
	}
	m, err := exec.New(prog, exec.Options{MaxSteps: o.maxSteps(), Profile: col})
	if err != nil {
		out.BuildErr = err
		return out
	}
	got, err := m.Run("main")
	out.Output = got
	out.Steps = m.Stats().DynamicInsts
	if err != nil {
		var e *exec.Error
		if !errors.As(err, &e) {
			e = &exec.Error{Kind: exec.KindTrap, Msg: err.Error()}
		}
		out.RunErr = e
	}
	return out
}

// Compare classifies got against the reference outcome ref. The reference
// must have built (callers gate on ref.BuildErr first).
//
// Step-budget handling: if the reference itself exhausted the budget the
// comparison is inconclusive (ClassAgree). If only got exhausted it, that is
// a divergence only when the budget dwarfs the reference's actual step
// count — outlining perturbs dynamic instruction counts by a few percent,
// so a 4x margin separates genuine runaways from boundary effects.
func Compare(ref, got Outcome) (Class, string) {
	if got.BuildErr != nil {
		return ClassBuildError, fmt.Sprintf("%s failed to build: %v", got.Point, got.BuildErr)
	}
	refExhausted := ref.RunErr != nil && ref.RunErr.Kind == exec.KindMaxSteps
	gotExhausted := got.RunErr != nil && got.RunErr.Kind == exec.KindMaxSteps
	switch {
	case refExhausted:
		return ClassAgree, "reference exhausted its step budget; inconclusive"
	case gotExhausted:
		if ref.RunErr == nil && got.RunErr.Step >= 4*ref.Steps {
			return ClassBudget, fmt.Sprintf(
				"%s finished in %d steps but %s was still running after %d",
				ref.Point, ref.Steps, got.Point, got.RunErr.Step)
		}
		return ClassAgree, "step budget too tight to compare; inconclusive"
	}
	if (ref.RunErr == nil) != (got.RunErr == nil) {
		return ClassTrapMismatch, fmt.Sprintf("%s: %v, but %s: %v",
			ref.Point, outcomeErr(ref), got.Point, outcomeErr(got))
	}
	if ref.RunErr != nil && ref.RunErr.Kind != got.RunErr.Kind {
		return ClassTrapMismatch, fmt.Sprintf("%s trapped with %s, %s with %s",
			ref.Point, ref.RunErr.Kind, got.Point, got.RunErr.Kind)
	}
	if ref.Output != got.Output {
		return ClassOutputMismatch, fmt.Sprintf("%s printed %q, %s printed %q",
			ref.Point, clip(ref.Output), got.Point, clip(got.Output))
	}
	return ClassAgree, ""
}

func outcomeErr(o Outcome) string {
	if o.RunErr == nil {
		return "ran to completion"
	}
	return o.RunErr.Error()
}

func clip(s string) string {
	if len(s) > 120 {
		return s[:117] + "..."
	}
	return s
}

// Check runs every point and compares each against the first (the
// reference). It returns a Divergence when two points disagree, an error
// when the input itself is unbuildable (the reference fails), and (nil,
// nil) when all points agree.
//
// The reference run is instrumented, and its execution profile is injected
// into any profile-consuming point — cold-only outlining or an active
// function-layout policy — that does not already carry one, so both
// profile-gated axes are exercised against the exact dynamic behaviour the
// oracle is about to compare.
func (o *Oracle) Check(mods []appgen.Module, pts []Point) (*Divergence, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("difftest: need at least 2 lattice points, have %d", len(pts))
	}
	col := profile.NewCollector()
	ref := o.run(mods, pts[0], col)
	if ref.BuildErr != nil {
		return nil, fmt.Errorf("difftest: reference %s failed to build: %w", pts[0].Name, ref.BuildErr)
	}
	refProf := col.Profile()
	for _, pt := range pts[1:] {
		layoutActive := pt.Config.Layout != "" && pt.Config.Layout != layout.None
		if (pt.Config.OutlineColdOnly || layoutActive) && pt.Config.Profile == nil {
			pt.Config.Profile = refProf
		}
		got := o.Run(mods, pt)
		if cls, detail := Compare(ref, got); cls != ClassAgree {
			return &Divergence{Class: cls, Ref: ref, Got: got, Detail: detail}, nil
		}
	}
	return nil, nil
}
