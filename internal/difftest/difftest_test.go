package difftest

import (
	"strings"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/exec"
	"outliner/internal/layout"
	"outliner/internal/mir"
)

func TestLatticeOrdered(t *testing.T) {
	pts := Lattice()
	if len(pts) < 5 {
		t.Fatalf("lattice has %d points, want a real spread", len(pts))
	}
	seen := map[string]bool{}
	for i, p := range pts {
		if p.Rank != i {
			t.Errorf("point %s rank = %d, want %d", p.Name, p.Rank, i)
		}
		if seen[p.Name] {
			t.Errorf("duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
		if !p.Config.Verify {
			t.Errorf("point %s does not force Verify", p.Name)
		}
	}
	if pts[0].Config.OutlineRounds != 0 || pts[0].Config.WholeProgram {
		t.Errorf("reference point %s is not the plain baseline", pts[0].Name)
	}
	if _, ok := PointNamed("osize"); !ok {
		t.Error("PointNamed(osize) missing")
	}
	if len(SmokeLattice()) != 3 {
		t.Errorf("smoke lattice has %d points, want 3", len(SmokeLattice()))
	}
}

func TestPointFromBits(t *testing.T) {
	p := PointFromBits(0b111)
	if !p.Config.WholeProgram || p.Config.OutlineRounds != 3 || !p.Config.Verify {
		t.Errorf("bits 0b111 decoded to %+v", p.Config)
	}
	if !p.Config.SplitGCMetadata {
		t.Error("whole-program fuzz point must force SplitGCMetadata")
	}
	if PointFromBits(0).Config.SplitGCMetadata {
		t.Error("per-module fuzz point should not force SplitGCMetadata")
	}
	if got := PointFromBits(1 << 12).Config.Layout; got != layout.HotCold {
		t.Errorf("bits 1<<12 layout = %q, want hot-cold", got)
	}
	if got := PointFromBits(2 << 12).Config.Layout; got != layout.C3 {
		t.Errorf("bits 2<<12 layout = %q, want c3", got)
	}
	if got := PointFromBits(3 << 12).Config.Layout; got != "" {
		t.Errorf("bits 3<<12 layout = %q, want inactive", got)
	}
}

func TestCompareClassification(t *testing.T) {
	ok := func(pt, out string, steps int64) Outcome {
		return Outcome{Point: pt, Output: out, Steps: steps}
	}
	trap := func(pt string, kind exec.ErrorKind, step int64) Outcome {
		return Outcome{Point: pt, RunErr: &exec.Error{Kind: kind, Step: step, Msg: "x"}}
	}
	cases := []struct {
		name     string
		ref, got Outcome
		want     Class
	}{
		{"agree", ok("a", "1\n", 10), ok("b", "1\n", 12), ClassAgree},
		{"output", ok("a", "1\n", 10), ok("b", "2\n", 12), ClassOutputMismatch},
		{"build", ok("a", "1\n", 10), Outcome{Point: "b", BuildErr: errFake{}}, ClassBuildError},
		{"trap-one-side", ok("a", "", 10), trap("b", exec.KindTrap, 5), ClassTrapMismatch},
		{"trap-kinds", trap("a", exec.KindTrap, 5), trap("b", exec.KindBadMemory, 5), ClassTrapMismatch},
		{"trap-same-kind", trap("a", exec.KindTrap, 5), trap("b", exec.KindTrap, 9), ClassAgree},
		{"ref-exhausted", trap("a", exec.KindMaxSteps, 100), ok("b", "1\n", 10), ClassAgree},
		{"got-runaway", ok("a", "1\n", 10), trap("b", exec.KindMaxSteps, 1000), ClassBudget},
		{"got-exhausted-tight", ok("a", "1\n", 400), trap("b", exec.KindMaxSteps, 1000), ClassAgree},
	}
	for _, c := range cases {
		if cls, _ := Compare(c.ref, c.got); cls != c.want {
			t.Errorf("%s: Compare = %v, want %v", c.name, cls, c.want)
		}
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake build error" }

// TestOracleSmoke is the always-on differential smoke: a tiny app across
// the three smoke lattice points must agree. Fast enough for -short.
func TestOracleSmoke(t *testing.T) {
	profile := appgen.UberRider
	profile.Seed = 7
	profile.Spans = 1
	mods := appgen.Generate(profile, 0.03)
	o := &Oracle{MaxSteps: 20_000_000}
	div, err := o.Check(mods, SmokeLattice())
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	if div != nil {
		t.Fatalf("smoke divergence: %v", div)
	}
}

// TestOracleColdOnlyAxis checks the profile-gated lattice point: the oracle
// collects a profile on its reference run, injects it into the cold-only
// point, and the gated build must still agree semantically. The point ships
// with a nil profile so the injection path is the one exercised.
func TestOracleColdOnlyAxis(t *testing.T) {
	pt, ok := PointNamed("osize-cold-only")
	if !ok {
		t.Fatal("lattice point osize-cold-only missing")
	}
	if !pt.Config.OutlineColdOnly || pt.Config.OutlineColdThreshold != 1 {
		t.Fatalf("osize-cold-only not armed: %+v", pt.Config)
	}
	if pt.Config.Profile != nil {
		t.Fatal("lattice point must not carry a canned profile")
	}
	gen := appgen.UberRider
	gen.Seed = 11
	gen.Spans = 1
	mods := appgen.Generate(gen, 0.03)
	o := &Oracle{MaxSteps: 20_000_000}
	div, err := o.Check(mods, []Point{Lattice()[0], pt})
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	if div != nil {
		t.Fatalf("cold-only divergence: %v", div)
	}
}

// TestOracleLayoutAxis checks the function-layout lattice points: the oracle
// injects its reference-run profile into each layout-armed point, and the
// reordered builds must agree semantically with the untouched baseline —
// layout moves addresses, never behavior.
func TestOracleLayoutAxis(t *testing.T) {
	gen := appgen.UberRider
	gen.Seed = 19
	gen.Spans = 1
	mods := appgen.Generate(gen, 0.03)
	o := &Oracle{MaxSteps: 20_000_000}
	for _, name := range []string{"osize-layout-hotcold", "osize-layout-c3"} {
		pt, ok := PointNamed(name)
		if !ok {
			t.Fatalf("lattice point %s missing", name)
		}
		if pt.Config.Layout == "" || pt.Config.Layout == layout.None {
			t.Fatalf("%s not armed: %+v", name, pt.Config)
		}
		if pt.Config.Profile != nil {
			t.Fatalf("%s must not carry a canned profile", name)
		}
		div, err := o.Check(mods, []Point{Lattice()[0], pt})
		if err != nil {
			t.Fatalf("%s: reference build: %v", name, err)
		}
		if div != nil {
			t.Fatalf("%s divergence: %v", name, div)
		}
	}
}

// findObservableCorruption scans the outlined MOVZ constants of the build
// at pts[1] for one whose corruption diverges from the reference — not
// every materialized constant reaches the program's output, so tests pick
// an observable one instead of hard-coding a site.
func findObservableCorruption(t *testing.T, o *Oracle, mods []appgen.Module, pts []Point) (func(*mir.Program), *Divergence) {
	t.Helper()
	prog, err := o.Build(mods, pts[1])
	if err != nil {
		t.Fatalf("build at %s: %v", pts[1].Name, err)
	}
	imms := OutlinedMOVZImms(prog)
	if len(imms) == 0 {
		t.Fatalf("no outlined MOVZ sites at %s", pts[1].Name)
	}
	if len(imms) > 20 {
		imms = imms[:20]
	}
	for _, imm := range imms {
		imm := imm
		hook := func(p *mir.Program) { CorruptOutlinedImm(p, imm) }
		o.Corrupt = hook
		div, err := o.Check(mods, pts)
		o.Corrupt = nil
		if err != nil {
			t.Fatalf("reference build: %v", err)
		}
		if div != nil {
			t.Logf("corrupting outlined MOVZ #%d is observable: %v", imm, div.Class)
			return hook, div
		}
	}
	t.Fatal("no observable corruption among the scanned MOVZ sites")
	return nil, nil
}

// TestOracleDetectsInjectedMiscompile: corrupting one outlined sequence
// must surface as a divergence between the baseline (no outlining, so the
// corruption hook finds nothing to touch) and the osize point.
func TestOracleDetectsInjectedMiscompile(t *testing.T) {
	profile := appgen.UberRider
	profile.Seed = 7
	profile.Spans = 1
	mods := appgen.Generate(profile, 0.03)
	o := &Oracle{MaxSteps: 20_000_000}
	pts := []Point{SmokeLattice()[0], pointNamed(Lattice(), "osize")}
	_, div := findObservableCorruption(t, o, mods, pts)
	if div.Class != ClassOutputMismatch && div.Class != ClassTrapMismatch && div.Class != ClassBudget {
		t.Fatalf("divergence class = %v, want an execution-level class", div.Class)
	}
	if !strings.Contains(div.String(), "osize") {
		t.Errorf("divergence %q does not name the diverging point", div)
	}
}

func TestCorruptOutlinedTargetsOutlinedOnly(t *testing.T) {
	p, err := mir.Parse(`
func @plain {
entry:
  MOVZXi $x0, #4
  RET
}
func @OUTLINED_FUNCTION_0 outlined {
entry:
  MOVZXi $x1, #8
  RET
}
`)
	if err != nil {
		t.Fatal(err)
	}
	name := CorruptOutlined(p)
	if name != "OUTLINED_FUNCTION_0" {
		t.Fatalf("corrupted %q, want the outlined function", name)
	}
	if p.Funcs[0].Blocks[0].Insts[0].Imm != 4 {
		t.Error("non-outlined function was touched")
	}
	if p.Funcs[1].Blocks[0].Insts[0].Imm != 9 {
		t.Errorf("outlined MOVZ imm = %d, want 9", p.Funcs[1].Blocks[0].Insts[0].Imm)
	}
}

func TestSplitDeclsAndStmtGroups(t *testing.T) {
	src := `
func alpha(a: Int) -> Int {
  var x = a + 1
  if x % 2 == 0 {
    x = x * 3
  }
  return x
}

class Box {
  var v: Int
  func get() -> Int {
    return v
  }
}
`
	chunks := splitDecls(src)
	var decls []string
	for _, c := range chunks {
		if c.decl {
			decls = append(decls, declName(c))
		}
	}
	if len(decls) != 2 || decls[0] != "func alpha" || decls[1] != "class Box" {
		t.Fatalf("decls = %v", decls)
	}
	// alpha's body: three groups — the var, the if-block, the return.
	groups := stmtGroups(chunks[1].body())
	if len(groups) != 3 {
		t.Fatalf("stmt groups = %d, want 3: %q", len(groups), groups)
	}
	if len(groups[1]) != 3 {
		t.Errorf("if-block group has %d lines, want 3", len(groups[1]))
	}
	// Dropping the if-block keeps the file parseable shape-wise.
	text := joinChunksWithoutGroup(chunks, 1, groups, 1)
	if strings.Contains(text, "x * 3") || !strings.Contains(text, "return x") {
		t.Errorf("group drop produced:\n%s", text)
	}
}

// TestReduceCheapPredicate exercises the reducer's mechanics with a
// predicate that doesn't need builds: interesting = "keeps the marker
// statement". Everything else must be stripped.
func TestReduceCheapPredicate(t *testing.T) {
	mods := []appgen.Module{
		{Name: "A", Files: map[string]string{"a.sl": `
func keeper() -> Int {
  var x = 1
  x = x + 41
  return x
}

func noise0() -> Int {
  return 7
}
`}},
		{Name: "B", Files: map[string]string{"b.sl": `
func noise1() -> Int {
  var y = 2
  if y > 1 {
    y = y * 2
  }
  return y
}
`}},
	}
	interesting := func(m []appgen.Module) bool {
		for _, mod := range m {
			for _, text := range mod.Files {
				if strings.Contains(text, "x + 41") {
					return true
				}
			}
		}
		return false
	}
	red := Reduce(mods, interesting, ReduceOptions{})
	if !interesting(red) {
		t.Fatal("reduction lost the marker")
	}
	if len(red) != 1 || red[0].Name != "A" {
		t.Fatalf("modules = %+v, want only A", red)
	}
	text := red[0].Files["a.sl"]
	if strings.Contains(text, "noise0") {
		t.Errorf("noise decl survived:\n%s", text)
	}
	if strings.Contains(text, "var x = 1") {
		// The marker line is "x = x + 41"; the var line is droppable only if
		// the predicate doesn't need it — it doesn't.
		t.Errorf("droppable statement survived:\n%s", text)
	}
	if got, orig := Size(red), Size(mods); got >= orig/2 {
		t.Errorf("Size = %d of %d, want < half", got, orig)
	}
	// The original input must be untouched.
	if !strings.Contains(mods[0].Files["a.sl"], "noise0") {
		t.Error("Reduce mutated its input")
	}
}

// TestReducerShrinksInjectedMiscompile is the acceptance-criteria test: a
// corrupted outlined sequence reduced against the real oracle must yield a
// repro at most 25% of the original app's source size.
func TestReducerShrinksInjectedMiscompile(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle-backed reduction is slow")
	}
	profile := appgen.UberRider
	profile.Seed = 1037
	profile.Spans = 2
	mods := appgen.Generate(profile, 0.08)
	o := &Oracle{MaxSteps: 50_000_000}
	pts := []Point{SmokeLattice()[0], pointNamed(Lattice(), "osize")}
	hook, _ := findObservableCorruption(t, o, mods, pts)
	o.Corrupt = hook
	interesting := func(m []appgen.Module) bool {
		d, err := o.Check(m, pts)
		return err == nil && d != nil
	}
	red := Reduce(mods, interesting, ReduceOptions{MaxAttempts: 3000, Log: t.Logf})
	if !interesting(red) {
		t.Fatal("reduced program no longer diverges")
	}
	orig, got := Size(mods), Size(red)
	t.Logf("reduced %d -> %d bytes (%.1f%%)", orig, got, 100*float64(got)/float64(orig))
	if got*4 > orig {
		t.Errorf("repro is %d bytes of %d, want <= 25%%", got, orig)
	}
}
