package difftest

import (
	"outliner/internal/isa"
	"outliner/internal/mir"
)

// CorruptOutlined injects a deterministic miscompile into prog: it flips
// the low bit of the first MOVZ immediate found inside an outlined
// function, simulating an outliner that extracted a sequence incorrectly.
// The mutation is semantic, not structural — the corrupted program still
// passes the machine verifier — so only differential execution can catch
// it. Returns the corrupted function's name, or "" when prog has no
// outlined MOVZ (e.g. a build with outlining disabled, which is exactly
// why an injected corruption shows up as a lattice divergence).
func CorruptOutlined(prog *mir.Program) string {
	for _, f := range prog.Funcs {
		if !f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Op == isa.MOVZ {
					b.Insts[i].Imm ^= 1
					return f.Name
				}
			}
		}
	}
	return ""
}

// CorruptOutlinedImm flips the low bit of every MOVZ with immediate imm
// inside outlined functions, returning the number of corrupted sites. This
// corrupts one outlined *pattern* — the repeated sequence materializing
// that constant — which keeps the injection stable while a reducer shrinks
// the program around it: as long as any survivor of the pattern remains
// outlined, the miscompile persists.
func CorruptOutlinedImm(prog *mir.Program, imm int64) int {
	n := 0
	for _, f := range prog.Funcs {
		if !f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Op == isa.MOVZ && b.Insts[i].Imm == imm {
					b.Insts[i].Imm ^= 1
					n++
				}
			}
		}
	}
	return n
}

// OutlinedMOVZImms returns the distinct MOVZ immediates appearing in
// prog's outlined functions, in first-appearance order — the candidate
// injection sites for CorruptOutlinedImm.
func OutlinedMOVZImms(prog *mir.Program) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, f := range prog.Funcs {
		if !f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == isa.MOVZ && !seen[in.Imm] {
					seen[in.Imm] = true
					out = append(out, in.Imm)
				}
			}
		}
	}
	return out
}
