package difftest

import (
	"strings"

	"outliner/internal/appgen"
)

// ReduceOptions tunes the delta-debugging reducer.
type ReduceOptions struct {
	// MaxAttempts bounds how many candidate programs the reducer may test
	// (0 = 2000). Each attempt costs one Interesting call, which for the
	// oracle-backed predicate means building at every lattice point.
	MaxAttempts int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Reduce delta-debugs mods to a locally-minimal program that still
// satisfies interesting. It drops candidates at three granularities —
// whole modules, then top-level declarations (column-0 func/class blocks),
// then brace-balanced statement groups inside declarations — re-testing
// interesting after every drop and looping to a fixpoint. Candidates that
// no longer compile simply fail the predicate (the oracle reports a
// reference build error), so the reducer never needs source-level validity
// analysis. mods is not modified; the reduced copy is returned.
//
// If mods is not interesting to begin with, it is returned unchanged.
func Reduce(mods []appgen.Module, interesting func([]appgen.Module) bool, opts ReduceOptions) []appgen.Module {
	r := &reducer{
		interesting: interesting,
		maxAttempts: opts.MaxAttempts,
		logf:        opts.Log,
	}
	if r.maxAttempts <= 0 {
		r.maxAttempts = 2000
	}
	if r.logf == nil {
		r.logf = func(string, ...any) {}
	}
	cur := copyModules(mods)
	if !r.try(cur) {
		r.logf("input is not interesting; nothing to reduce")
		return cur
	}
	for pass := 1; ; pass++ {
		before := Size(cur)
		cur = r.dropModules(cur)
		cur = r.dropChunks(cur, false)
		cur = r.dropChunks(cur, true)
		r.logf("pass %d: %d -> %d bytes (%d attempts)", pass, before, Size(cur), r.attempts)
		if Size(cur) == before || r.exhausted() {
			return cur
		}
	}
}

// Size returns the total source byte count of mods — the metric Reduce
// minimizes.
func Size(mods []appgen.Module) int {
	n := 0
	for _, m := range mods {
		for _, text := range m.Files {
			n += len(text)
		}
	}
	return n
}

type reducer struct {
	interesting func([]appgen.Module) bool
	attempts    int
	maxAttempts int
	logf        func(string, ...any)
}

func (r *reducer) exhausted() bool { return r.attempts >= r.maxAttempts }

func (r *reducer) try(mods []appgen.Module) bool {
	if r.exhausted() {
		return false
	}
	r.attempts++
	return r.interesting(mods)
}

// dropModules greedily removes whole modules.
func (r *reducer) dropModules(cur []appgen.Module) []appgen.Module {
	for i := len(cur) - 1; i >= 0 && len(cur) > 1; i-- {
		cand := append(append([]appgen.Module{}, cur[:i]...), cur[i+1:]...)
		if r.try(cand) {
			r.logf("dropped module %s", cur[i].Name)
			cur = cand
		}
	}
	return cur
}

// dropChunks removes declarations (stmts=false) or statement groups inside
// declarations (stmts=true) from every file of every module.
func (r *reducer) dropChunks(cur []appgen.Module, stmts bool) []appgen.Module {
	for mi := 0; mi < len(cur) && !r.exhausted(); mi++ {
		name := cur[mi].Name
		for _, fname := range sortedKeys(cur[mi].Files) {
			cur = r.reduceFile(cur, mi, fname, stmts)
			if mi >= len(cur) || cur[mi].Name != name {
				mi-- // the module emptied out and was removed; revisit the slot
				break
			}
			if r.exhausted() {
				return cur
			}
		}
	}
	return cur
}

// reduceFile sweeps one file's chunks back to front exactly once, applying
// every accepted drop in place — a rejected chunk is never re-tried within
// the sweep, which keeps the attempt count linear in the chunk count (the
// outer fixpoint loop in Reduce provides the re-tries).
func (r *reducer) reduceFile(cur []appgen.Module, mi int, fname string, stmts bool) []appgen.Module {
	modName := cur[mi].Name
	chunks := splitDecls(cur[mi].Files[fname])
	if !stmts {
		for ci := len(chunks) - 1; ci >= 0 && !r.exhausted(); ci-- {
			if !chunks[ci].decl {
				continue
			}
			cand := rebuildFile(cur, mi, fname, joinChunks(chunks, ci))
			if !r.try(cand) {
				continue
			}
			r.logf("dropped decl %q from %s/%s", declName(chunks[ci]), modName, fname)
			cur = cand
			if mi >= len(cur) || cur[mi].Name != modName {
				return cur // file emptied; module slot is gone
			}
			if _, ok := cur[mi].Files[fname]; !ok {
				return cur
			}
			chunks = append(chunks[:ci], chunks[ci+1:]...)
		}
		return cur
	}
	for ci := range chunks {
		if !chunks[ci].decl {
			continue
		}
		groups := stmtGroups(chunks[ci].body())
		for gi := len(groups) - 1; gi >= 0 && !r.exhausted(); gi-- {
			cand := rebuildFile(cur, mi, fname, joinChunksWithoutGroup(chunks, ci, groups, gi))
			if !r.try(cand) {
				continue
			}
			r.logf("dropped %d-line group from %q in %s/%s",
				len(groups[gi]), declName(chunks[ci]), modName, fname)
			cur = cand
			groups = append(groups[:gi], groups[gi+1:]...)
			// Rebuild the chunk so later joins in this sweep see the drop.
			lines := []string{chunks[ci].lines[0]}
			for _, g := range groups {
				lines = append(lines, g...)
			}
			chunks[ci].lines = append(lines, chunks[ci].lines[len(chunks[ci].lines)-1])
		}
	}
	return cur
}

// rebuildFile returns a copy of cur with module mi's file fname replaced by
// text (dropping the file when empty, and the module when fileless).
func rebuildFile(cur []appgen.Module, mi int, fname, text string) []appgen.Module {
	out := copyModules(cur)
	if strings.TrimSpace(text) == "" {
		delete(out[mi].Files, fname)
	} else {
		out[mi].Files[fname] = text
	}
	if len(out[mi].Files) == 0 && len(out) > 1 {
		out = append(out[:mi], out[mi+1:]...)
	}
	return out
}

func copyModules(mods []appgen.Module) []appgen.Module {
	out := make([]appgen.Module, len(mods))
	for i, m := range mods {
		files := make(map[string]string, len(m.Files))
		for k, v := range m.Files {
			files[k] = v
		}
		out[i] = appgen.Module{Name: m.Name, ObjC: m.ObjC, Files: files}
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; file counts are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ---- SwiftLite source chunking ----
//
// Generated (and handwritten) SwiftLite places top-level declarations at
// column 0 and closes them with a bare "}" at column 0, so the reducer can
// chunk structurally without a parse. A wrong split merely produces an
// uninteresting candidate — correctness never depends on the chunker.

// chunk is a run of source lines: either one top-level declaration or the
// filler between declarations.
type chunk struct {
	lines []string
	decl  bool
}

// body returns a declaration's interior lines (between the header and the
// closing brace).
func (c chunk) body() []string {
	if !c.decl || len(c.lines) < 2 {
		return nil
	}
	return c.lines[1 : len(c.lines)-1]
}

func declName(c chunk) string {
	if len(c.lines) == 0 {
		return ""
	}
	header := c.lines[0]
	if i := strings.IndexAny(header, "({"); i > 0 {
		header = header[:i]
	}
	return strings.TrimSpace(header)
}

// splitDecls splits a file into declaration and filler chunks.
func splitDecls(text string) []chunk {
	lines := strings.Split(text, "\n")
	var out []chunk
	var filler []string
	flush := func() {
		if len(filler) > 0 {
			out = append(out, chunk{lines: filler})
			filler = nil
		}
	}
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		if strings.HasPrefix(l, "func ") || strings.HasPrefix(l, "class ") {
			// Find the matching column-0 closing brace.
			end := -1
			for j := i; j < len(lines); j++ {
				if lines[j] == "}" {
					end = j
					break
				}
			}
			if end < 0 {
				filler = append(filler, l)
				continue
			}
			flush()
			out = append(out, chunk{lines: lines[i : end+1], decl: true})
			i = end
			continue
		}
		filler = append(filler, l)
	}
	flush()
	return out
}

// stmtGroups splits a declaration body into brace-balanced line groups: a
// plain statement is its own group; an if/loop/member block spans from its
// opening line to the line restoring brace balance.
func stmtGroups(body []string) [][]string {
	var groups [][]string
	var group []string
	depth := 0
	for _, l := range body {
		group = append(group, l)
		depth += strings.Count(l, "{") - strings.Count(l, "}")
		if depth <= 0 {
			depth = 0
			groups = append(groups, group)
			group = nil
		}
	}
	if len(group) > 0 {
		groups = append(groups, group)
	}
	return groups
}

// joinChunks reassembles a file, omitting chunk dropCi.
func joinChunks(chunks []chunk, dropCi int) string {
	var lines []string
	for ci, c := range chunks {
		if ci == dropCi {
			continue
		}
		lines = append(lines, c.lines...)
	}
	return strings.Join(lines, "\n")
}

// joinChunksWithoutGroup reassembles a file with statement group dropGi
// removed from declaration chunk ci.
func joinChunksWithoutGroup(chunks []chunk, ci int, groups [][]string, dropGi int) string {
	var lines []string
	for i, c := range chunks {
		if i != ci {
			lines = append(lines, c.lines...)
			continue
		}
		lines = append(lines, c.lines[0])
		for gi, g := range groups {
			if gi == dropGi {
				continue
			}
			lines = append(lines, g...)
		}
		lines = append(lines, c.lines[len(c.lines)-1])
	}
	return strings.Join(lines, "\n")
}
