package difftest

import (
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/frontend"
)

// FuzzFrontend pushes arbitrary bytes through the lexer, parser, and
// semantic checker. Invalid programs must be rejected with an error — never
// a panic. Crashers found in CI land in testdata/fuzz/FuzzFrontend.
func FuzzFrontend(f *testing.F) {
	seeds := []string{
		"func main() {\n  print(1)\n}\n",
		"func add(a: Int, b: Int) -> Int {\n  return a + b\n}\nfunc main() {\n  print(add(a: 2, b: 3))\n}\n",
		"class Box {\n  var v: Int\n  init(v: Int) {\n    self.v = v\n  }\n}\nfunc main() {\n  let b = Box(v: 9)\n  print(b.v)\n}\n",
		"func main() {\n  var s = \"hi\"\n  print(s)\n}\n",
		"func f() throws -> Int {\n  throw 1\n}\n",
		"func main() {\n  var a = [1, 2]\n  a.append(3)\n  print(a.count)\n}\n",
		"}{", "func", "class C {", "func main() { if { } }", "\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := frontend.ParseFile("fuzz.sl", src)
		if err != nil {
			return // rejected cleanly
		}
		_, _ = frontend.CheckModule("Fuzz", nil, file)
	})
}

// FuzzPipeline generates a deterministic app from the fuzzed seed, builds
// it at the baseline and at a config corner derived from the fuzzed bits,
// and requires the differential oracle to agree. This is the whole-stack
// semantic fuzzer: any divergence is a miscompile (or a verifier hole).
//
// faultSeed adds the fault-injection axis: the config corner is rebuilt
// under a deterministic chaos schedule (faultSeed 0 disables it). A faulted
// build may fail, but only with a structured diagnostic; when it succeeds,
// it must still agree with the clean reference.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(7), uint64(0), uint64(0))
	f.Add(int64(1037), uint64(0b111), uint64(0))
	f.Add(int64(42), uint64(1<<5|1<<6|1), uint64(3))
	f.Add(int64(99), uint64(0x7ff), uint64(17))
	f.Add(int64(61), uint64(1<<12|0x3f), uint64(0))  // hot-cold layout corner
	f.Add(int64(73), uint64(2<<12|0x7ff), uint64(5)) // c3 layout corner

	f.Fuzz(func(t *testing.T, seed int64, bits, faultSeed uint64) {
		profile := appgen.UberRider
		profile.Seed = seed
		profile.Spans = 1
		mods := appgen.Generate(profile, 0.03)
		o := &Oracle{MaxSteps: 20_000_000}
		corner := PointFromBits(bits)
		pts := []Point{Lattice()[0], corner}
		div, err := o.Check(mods, pts)
		if err != nil {
			t.Fatalf("generated app failed its reference build: %v", err)
		}
		if div != nil {
			t.Fatalf("seed %d bits %#x: %v", seed, bits, div)
		}
		if faultSeed == 0 {
			return
		}
		ref := o.Run(mods, pts[0])
		if ref.BuildErr != nil {
			t.Fatalf("reference rebuild failed: %v", ref.BuildErr)
		}
		got := o.Run(mods, FaultPoint(corner, faultSeed, 0.03))
		if got.BuildErr != nil {
			if !StructuredBuildFailure(got.BuildErr) {
				t.Fatalf("seed %d bits %#x fault %d: unstructured failure: %v",
					seed, bits, faultSeed, got.BuildErr)
			}
			return
		}
		if cls, detail := Compare(ref, got); cls != ClassAgree {
			t.Fatalf("seed %d bits %#x fault %d: %s: %s", seed, bits, faultSeed, cls, detail)
		}
	})
}
