// Package difftest is the repo's differential-testing engine: it compiles
// the same program under a lattice of pipeline configurations, executes
// every build, and requires semantic agreement. Any miscompilation anywhere
// in the stack — frontend, SIL passes, IR linking, codegen, or any number
// of outlining rounds — surfaces as a Divergence between two lattice points.
//
// The package generalizes what the pipeline's differential test did inline:
//
//   - Lattice: named pipeline.Config points ordered by aggressiveness, from
//     the per-module no-outlining baseline up to the paper's full -Osize
//     whole-program configuration plus the §VIII extensions.
//   - Oracle: builds and runs a program at each point and classifies
//     disagreements (build failure, output mismatch, trap mismatch, step
//     budget divergence). Step-budget exhaustion on the reference build is
//     inconclusive, never a failure.
//   - Reduce: a delta-debugging reducer that shrinks a divergent program to
//     a locally-minimal SwiftLite reproduction by dropping whole modules,
//     then top-level declarations, then brace-balanced statement groups,
//     re-checking the oracle after every candidate.
//
// FuzzFrontend and FuzzPipeline (in this package's test files) feed both
// ends: random bytes through the frontend, and random appgen seeds times
// config bits through the oracle. cmd/reduce wraps Reduce as a CLI.
package difftest

import (
	"errors"
	"fmt"

	"outliner/internal/fault"
	"outliner/internal/layout"
	"outliner/internal/par"
	"outliner/internal/pipeline"
	"outliner/internal/verify"
)

// Point is one named configuration in the lattice. Rank orders points by
// aggressiveness: a higher rank enables at least as many transformations.
type Point struct {
	Name   string
	Rank   int
	Config pipeline.Config
}

// Lattice returns the standard comparison points in aggressiveness order.
// The first point is the reference: the default per-module pipeline with no
// outlining at all. Every point has Verify forced on, so the machine
// verifier gates each build before the oracle ever executes it.
func Lattice() []Point {
	pts := []Point{
		{Name: "baseline", Config: pipeline.Config{}},
		{Name: "default-osize", Config: pipeline.Default},
		{Name: "wp-1round", Config: pipeline.Config{
			WholeProgram: true, OutlineRounds: 1,
			SplitGCMetadata: true, PreserveDataLayout: true}},
		{Name: "wp-flatcost", Config: pipeline.Config{
			WholeProgram: true, OutlineRounds: 5, FlatOutlineCost: true,
			SplitGCMetadata: true}},
		{Name: "wp-merge-fmsa", Config: pipeline.Config{
			WholeProgram: true, OutlineRounds: 4, MergeFunctions: true,
			FMSA: true, SILOutline: true, SpecializeClosures: true,
			SplitGCMetadata: true}},
		{Name: "osize", Config: pipeline.OSize},
		{Name: "osize-cold-only", Config: coldOnly(pipeline.OSize)},
		{Name: "osize-layout-hotcold", Config: withLayout(pipeline.OSize, layout.HotCold)},
		{Name: "osize-layout-c3", Config: withLayout(pipeline.OSize, layout.C3)},
		{Name: "wp-extensions", Config: pipeline.Config{
			WholeProgram: true, OutlineRounds: 5, CanonicalizeSequences: true,
			LayoutOutlined: true, SILOutline: true, SpecializeClosures: true,
			SplitGCMetadata: true}},
	}
	for i := range pts {
		pts[i].Rank = i
		pts[i].Config.Verify = true
	}
	return pts
}

// SmokeLattice returns the three cheapest representative points — the
// baseline, the default per-module -Osize pipeline, and the full
// whole-program -Osize pipeline — for always-on smoke testing.
func SmokeLattice() []Point {
	all := Lattice()
	return []Point{all[0], pointNamed(all, "default-osize"), pointNamed(all, "osize")}
}

// coldOnly arms profile-guided cold-only outlining on a copy of cfg. The
// profile itself is left nil: the Oracle collects one on its reference run
// and injects it (see Check), so the gate reflects the program actually
// under test rather than a canned profile.
func coldOnly(cfg pipeline.Config) pipeline.Config {
	cfg.OutlineColdOnly = true
	cfg.OutlineColdThreshold = 1
	return cfg
}

// withLayout arms a profile-guided function-layout policy on a copy of cfg —
// the lattice's layout axis. Like coldOnly, the profile is left nil for the
// Oracle to inject from its instrumented reference run, so the reordering
// under test is driven by the program's real dynamic call edges.
func withLayout(cfg pipeline.Config, policy string) pipeline.Config {
	cfg.Layout = policy
	return cfg
}

func pointNamed(pts []Point, name string) Point {
	for _, p := range pts {
		if p.Name == name {
			return p
		}
	}
	panic("difftest: no lattice point named " + name)
}

// PointNamed looks up a standard lattice point by name.
func PointNamed(name string) (Point, bool) {
	for _, p := range Lattice() {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}

// FaultPoint arms deterministic fault injection on a copy of pt — the
// lattice's fault axis. A faulted point may fail its build, but only with a
// structured diagnostic (StructuredBuildFailure); a build that succeeds
// under injection must still agree with the clean reference, because a
// tolerated fault costs time, never correctness.
func FaultPoint(pt Point, seed uint64, rate float64) Point {
	pt.Name = fmt.Sprintf("%s+fault(%d@%g)", pt.Name, seed, rate)
	pt.Config.Fault = fault.New(seed, rate)
	return pt
}

// StructuredBuildFailure reports whether a faulted build's error is one of
// the diagnostics fault tolerance guarantees: a recovered worker panic, a
// verifier rejection, or a surfaced injected fault — alone or inside a
// keep-going aggregate.
func StructuredBuildFailure(err error) bool {
	var pe *par.PanicError
	var ve *verify.Error
	return errors.As(err, &pe) || errors.As(err, &ve) || fault.IsInjected(err)
}

// PointFromBits derives a configuration from fuzzed bits, so the pipeline
// fuzzer explores config corners the named lattice does not enumerate.
// SplitGCMetadata is forced on for whole-program builds: mixed
// Swift/Objective-C programs are documented (§VI-2) not to link without it,
// so its absence is a known limitation rather than a miscompile.
func PointFromBits(bits uint64) Point {
	cfg := pipeline.Config{
		WholeProgram:          bits&1 != 0,
		OutlineRounds:         int(bits>>1) & 3,
		SILOutline:            bits&(1<<3) != 0,
		SpecializeClosures:    bits&(1<<4) != 0,
		MergeFunctions:        bits&(1<<5) != 0,
		FMSA:                  bits&(1<<6) != 0,
		FlatOutlineCost:       bits&(1<<7) != 0,
		PreserveDataLayout:    bits&(1<<8) != 0,
		CanonicalizeSequences: bits&(1<<9) != 0,
		LayoutOutlined:        bits&(1<<10) != 0,
		Verify:                true,
	}
	cfg.SplitGCMetadata = cfg.WholeProgram
	if bits&(1<<11) != 0 {
		cfg = coldOnly(cfg)
	}
	switch (bits >> 12) & 3 {
	case 1:
		cfg = withLayout(cfg, layout.HotCold)
	case 2:
		cfg = withLayout(cfg, layout.C3)
	}
	return Point{Name: fmt.Sprintf("bits-%#x", bits), Rank: 1, Config: cfg}
}
