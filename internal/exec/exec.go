// Package exec interprets machine programs (internal/mir) with a simulated
// Swift-like runtime: reference-counted heap objects, arrays, string
// constants, and print routines. It is the reproduction's stand-in for
// running AArch64 binaries on hardware.
//
// The interpreter is faithful to the parts that matter for the paper:
//   - the link register / BL / RET discipline the outlining strategies
//     manipulate (outlined code must execute identically),
//   - real code addresses, so instruction-cache behaviour can be modeled by
//     internal/perf from the PC trace,
//   - the error-channel register convention of throwing functions.
//
// Correctness of transformations is checked by executing programs before and
// after outlining and comparing outputs — the strongest test the repo has.
package exec

import (
	"fmt"
	"strings"

	"outliner/internal/isa"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/profile"
)

// Memory layout constants (byte addresses; everything is 8-byte words).
const (
	globalsBase = int64(1) << 16 // 64KiB: data section
	heapBase    = int64(1) << 28 // 256MiB: bump-allocated heap
	stackBase   = int64(1) << 34 // stack grows down from stackBase+stackSize
	stackSize   = int64(4) << 20
	codeBase    = int64(1) << 36 // instruction addresses
	rtBase      = int64(1) << 40 // runtime entry pseudo-addresses
)

// Options configures a run.
type Options struct {
	// MaxSteps bounds executed instructions (0 = default 500M).
	MaxSteps int64
	// Trace receives one event per executed instruction when non-nil.
	Trace func(ev Event)
	// Profile, when non-nil, collects an execution profile: function entry
	// counts, call edges keyed by call-site offset, basic-block execution
	// counts, and per-function step totals. Counts accumulate locally and
	// flush to the collector at the end of every Run, so one collector can
	// merge many runs and many machines. Nil costs one pointer check per
	// instruction — the interpreter is otherwise unchanged.
	Profile *profile.Collector
}

// Event describes one executed instruction for tracing (consumed by the
// performance model).
type Event struct {
	PC      int64 // code address
	Size    int   // instruction bytes
	Op      isa.Op
	Branch  bool  // control transfer occurred (incl. taken conditionals)
	Target  int64 // branch/call target when Branch
	MemAddr int64 // nonzero for loads/stores: the data address
	IsLoad  bool
	IsStore bool
	// SP is the stack pointer value after the instruction (debug aid for
	// frame-discipline analysis).
	SP int64
}

// Stats summarizes execution since machine creation or the last ResetStats.
type Stats struct {
	DynamicInsts int64
	Calls        int64
	Branches     int64
	Taken        int64
	Loads        int64
	Stores       int64
	HeapAllocs   int64
	HeapWords    int64
	// RuntimeCalls counts transfers into runtime entries (swift_retain,
	// print_int, ...) — the paper's §V-2 runtime-call density signal.
	RuntimeCalls int64
	// OutlinedInsts counts dynamic instructions executed inside outlined
	// functions (the paper reports ~3%).
	OutlinedInsts int64
}

// EmitCounters publishes the stats as internal/obs counters, so instrumented
// and oracle runs show up in -trace/-summary next to build-stage counters.
// Nil-tracer safe, like the rest of the obs API.
func (s Stats) EmitCounters(tr *obs.Tracer) {
	tr.Add("exec/steps", s.DynamicInsts)
	tr.Add("exec/calls", s.Calls)
	tr.Add("exec/branches", s.Branches)
	tr.Add("exec/taken_branches", s.Taken)
	tr.Add("exec/loads", s.Loads)
	tr.Add("exec/stores", s.Stores)
	tr.Add("exec/runtime_calls", s.RuntimeCalls)
	tr.Add("exec/heap_allocs", s.HeapAllocs)
	tr.Add("exec/outlined_insts", s.OutlinedInsts)
}

// Machine interprets one program.
type Machine struct {
	prog *mir.Program
	opts Options

	code      []codeInst
	addrOf    map[symKey]int64 // block label within function -> address
	funcEntry map[string]int64
	funcOf    []int // code index -> function index (for outlined accounting)
	outlined  []bool

	globals     []int64
	globalAddrs map[string]int64

	heap       []int64
	heapNext   int64
	allocSizes map[int64]int64 // block base addr -> word count

	stack []int64

	regs  [int(isa.NumRegs)]int64
	fLess bool
	fEq   bool

	out   strings.Builder
	stats Stats

	// Profiling state; nil/empty unless opts.Profile is set. Counts
	// accumulate in flat per-function / per-instruction arrays during a run
	// (no map work on the hot path) and flush to the collector when Run
	// returns.
	pcol       *profile.Collector
	funcAddrs  []int64  // function index -> entry address
	blockLabel []string // code index -> label when first inst of its block
	pSteps     []int64  // per-function dynamic steps this run
	pEntries   []int64  // per-function entries this run
	pBlocks    []int64  // per-code-index block executions this run
	pCalls     map[callSite]int64
}

// callSite identifies a call edge: calling function, call-site offset from
// its entry, and callee name.
type callSite struct {
	fn     int
	off    int64
	callee string
}

type symKey struct {
	fn    int
	label string
}

type codeInst struct {
	in   isa.Inst
	fn   int
	addr int64
	next int64 // address of the next instruction (fallthrough)
}

// runtime entry points, each with a fixed pseudo-address.
var runtimeEntries = []string{
	"swift_retain", "swift_release", "swift_allocObject", "swift_allocArray",
	"swift_arrayAppend", "print_int", "print_bool", "print_str",
	"objc_retain", "objc_release",
}

// RuntimeAddrs maps runtime symbol names to their pseudo-addresses.
func runtimeAddr(name string) (int64, bool) {
	for i, n := range runtimeEntries {
		if n == name {
			return rtBase + int64(i)*8, true
		}
	}
	return 0, false
}

// New lays out the program (code addresses, globals) and returns a machine
// ready to Run.
func New(prog *mir.Program, opts Options) (*Machine, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 500_000_000
	}
	m := &Machine{
		prog:        prog,
		opts:        opts,
		addrOf:      make(map[symKey]int64),
		funcEntry:   make(map[string]int64),
		globalAddrs: make(map[string]int64),
		allocSizes:  make(map[int64]int64),
		heapNext:    heapBase,
		stack:       make([]int64, stackSize/8),
	}

	// Lay out code.
	profiling := opts.Profile != nil
	addr := codeBase
	for fi, f := range prog.Funcs {
		m.funcEntry[f.Name] = addr
		m.funcAddrs = append(m.funcAddrs, addr)
		m.outlined = append(m.outlined, f.Outlined)
		for _, b := range f.Blocks {
			m.addrOf[symKey{fn: fi, label: b.Label}] = addr
			first := true
			for _, in := range b.Insts {
				size := int64(in.Size())
				m.code = append(m.code, codeInst{in: in, fn: fi, addr: addr, next: addr + size})
				m.funcOf = append(m.funcOf, fi)
				if profiling {
					label := ""
					if first {
						label = b.Label
					}
					m.blockLabel = append(m.blockLabel, label)
				}
				first = false
				addr += size
			}
		}
	}
	if profiling {
		m.pcol = opts.Profile
		m.pSteps = make([]int64, len(prog.Funcs))
		m.pEntries = make([]int64, len(prog.Funcs))
		m.pBlocks = make([]int64, len(m.code))
		m.pCalls = make(map[callSite]int64)
	}

	// Lay out globals in program order (the order the linker decided —
	// §VI-3's data-locality experiments depend on this).
	off := int64(0)
	for _, g := range prog.Globals {
		m.globalAddrs[g.Name] = globalsBase + off
		m.globals = append(m.globals, g.Words...)
		off += int64(len(g.Words)) * 8
	}
	return m, nil
}

// addrIndex maps a code address to its instruction index.
func (m *Machine) addrIndex(addr int64) (int, error) {
	// Instructions are 4 or 8 bytes; binary search by address.
	lo, hi := 0, len(m.code)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		a := m.code[mid].addr
		if a == addr {
			return mid, nil
		}
		if a < addr {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return 0, trapf("jump to non-instruction address %#x", addr)
}

// Output returns everything printed so far.
func (m *Machine) Output() string { return m.out.String() }

// Stats returns execution statistics accumulated since machine creation or
// the last ResetStats.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics, making per-run accounting possible on a
// reused machine: multi-entry profiling runs call Run repeatedly on one
// machine, and without a reset every run's Stats would include its
// predecessors' counts.
func (m *Machine) ResetStats() { m.stats = Stats{} }

// Run executes function name (no arguments) until it returns. Returns the
// accumulated output. When profiling, the run's counts — including those of
// a failed run — flush to the collector before Run returns, and the run
// starts from zeroed accumulators, so repeated Runs on one machine never
// double-count.
func (m *Machine) Run(name string) (string, error) {
	out, err := m.run(name)
	if m.pcol != nil {
		m.flushProfile()
	}
	return out, err
}

func (m *Machine) run(name string) (string, error) {
	entry, ok := m.funcEntry[name]
	if !ok {
		return "", fmt.Errorf("exec: no function %q", name)
	}
	const haltAddr = codeBase - 8
	m.regs[isa.LR] = haltAddr
	m.regs[isa.SP] = stackBase + stackSize
	m.regs[isa.XZR] = 0

	idx, err := m.addrIndex(entry)
	if err != nil {
		return "", err
	}
	if m.pcol != nil {
		m.pEntries[m.code[idx].fn]++
	}
	steps := int64(0)
	for {
		ci := &m.code[idx]
		if steps >= m.opts.MaxSteps {
			e := &Error{Kind: KindMaxSteps,
				Msg: fmt.Sprintf("step limit (%d) exceeded — runaway loop?", m.opts.MaxSteps)}
			return m.Output(), m.fault(e, ci, steps)
		}
		steps++
		nextAddr, err := m.step(ci)
		if err != nil {
			return m.Output(), m.fault(err, ci, steps)
		}
		m.stats.DynamicInsts++
		if m.outlined[ci.fn] {
			m.stats.OutlinedInsts++
		}
		if m.pcol != nil {
			m.profStep(idx, ci, nextAddr)
		}
		if nextAddr == haltAddr {
			return m.Output(), nil
		}
		if nextAddr == ci.next {
			idx++
			if idx >= len(m.code) || m.code[idx].addr != nextAddr {
				i, err := m.addrIndex(nextAddr)
				if err != nil {
					return m.Output(), m.fault(err, ci, steps)
				}
				idx = i
			}
			continue
		}
		// Control transfer (possibly to a runtime entry).
		for {
			if nextAddr >= rtBase {
				ret, err := m.runtimeCall(nextAddr)
				if err != nil {
					return m.Output(), m.fault(err, ci, steps)
				}
				nextAddr = ret
				continue
			}
			break
		}
		if nextAddr == haltAddr {
			return m.Output(), nil
		}
		i, err := m.addrIndex(nextAddr)
		if err != nil {
			return m.Output(), m.fault(err, ci, steps)
		}
		idx = i
	}
}

// fault attaches instruction context to an execution error. Errors raised
// below step (memory system, runtime calls) are context-free *Error values;
// anything else is wrapped as a trap so every Run failure unwraps to *Error.
func (m *Machine) fault(err error, ci *codeInst, steps int64) *Error {
	e, ok := err.(*Error)
	if !ok {
		e = &Error{Kind: KindTrap, Msg: err.Error()}
	}
	e.PC = ci.addr
	e.Func = m.prog.Funcs[ci.fn].Name
	e.Inst = ci.in.String()
	e.Step = steps
	return e
}

// profStep records one executed instruction into the run's profiling
// accumulators: a step for the hosting function, a block execution when the
// instruction opens its block, and — for calls and cross-function tail
// calls — a call edge plus an entry for the callee.
func (m *Machine) profStep(idx int, ci *codeInst, nextAddr int64) {
	m.pSteps[ci.fn]++
	if m.blockLabel[idx] != "" {
		m.pBlocks[idx]++
	}
	op := ci.in.Op
	isCall := op == isa.BL || op == isa.BLR
	if !isCall && op != isa.B {
		return
	}
	if nextAddr >= rtBase {
		m.profCall(ci, runtimeEntries[(nextAddr-rtBase)/8])
		return
	}
	ti, err := m.addrIndex(nextAddr)
	if err != nil {
		return // halt address or a fault the main loop will surface
	}
	tfn := m.code[ti].fn
	if isCall || tfn != ci.fn {
		m.pEntries[tfn]++
		m.profCall(ci, m.prog.Funcs[tfn].Name)
	}
}

func (m *Machine) profCall(ci *codeInst, callee string) {
	m.pCalls[callSite{fn: ci.fn, off: ci.addr - m.funcAddrs[ci.fn], callee: callee}]++
}

// flushProfile drains the run's accumulators into the collector (zeroing
// them), taking the collector lock once per run.
func (m *Machine) flushProfile() {
	p := profile.New()
	for fi, f := range m.prog.Funcs {
		entries, steps := m.pEntries[fi], m.pSteps[fi]
		if entries == 0 && steps == 0 {
			continue
		}
		fp := p.Func(f.Name)
		fp.Entries = entries
		fp.Steps = steps
		m.pEntries[fi], m.pSteps[fi] = 0, 0
	}
	for idx, n := range m.pBlocks {
		if n == 0 {
			continue
		}
		ci := &m.code[idx]
		fp := p.Func(m.prog.Funcs[ci.fn].Name)
		if fp.Blocks == nil {
			fp.Blocks = make(map[string]int64)
		}
		fp.Blocks[m.blockLabel[idx]] += n
		m.pBlocks[idx] = 0
	}
	for site, n := range m.pCalls {
		fp := p.Func(m.prog.Funcs[site.fn].Name)
		if fp.Calls == nil {
			fp.Calls = make(map[string]int64)
		}
		fp.Calls[profile.EdgeKey(site.callee, site.off)] += n
	}
	clear(m.pCalls)
	m.pcol.Add(p)
}

func (m *Machine) get(r isa.Reg) int64 {
	if r == isa.XZR {
		return 0
	}
	return m.regs[r]
}

func (m *Machine) set(r isa.Reg, v int64) {
	if r == isa.XZR {
		return
	}
	m.regs[r] = v
}

// load/store with segment resolution.
func (m *Machine) load(addr int64) (int64, error) {
	w, err := m.slot(addr)
	if err != nil {
		return 0, err
	}
	return *w, nil
}

func (m *Machine) store(addr, v int64) error {
	w, err := m.slot(addr)
	if err != nil {
		return err
	}
	*w = v
	return nil
}

func (m *Machine) slot(addr int64) (*int64, error) {
	if addr%8 != 0 {
		return nil, memf("unaligned access at %#x", addr)
	}
	switch {
	case addr >= globalsBase && addr < globalsBase+int64(len(m.globals))*8:
		return &m.globals[(addr-globalsBase)/8], nil
	case addr >= heapBase && addr < m.heapNext:
		return &m.heap[(addr-heapBase)/8], nil
	case addr >= stackBase && addr < stackBase+stackSize:
		return &m.stack[(addr-stackBase)/8], nil
	}
	return nil, memf("bad memory access at %#x", addr)
}

// alloc bump-allocates n words and returns the block address.
func (m *Machine) alloc(words int64) (int64, error) {
	if words < 0 || words > 1<<24 {
		return 0, trapf("bad allocation size %d words", words)
	}
	addr := m.heapNext
	m.heap = append(m.heap, make([]int64, words)...)
	m.heapNext += words * 8
	m.allocSizes[addr] = words
	m.stats.HeapAllocs++
	m.stats.HeapWords += words
	return addr, nil
}

// step executes one instruction, returning the next PC address.
func (m *Machine) step(ci *codeInst) (int64, error) {
	in := ci.in
	ev := Event{PC: ci.addr, Size: in.Size(), Op: in.Op}
	next := ci.next
	defer func() {
		if m.opts.Trace != nil {
			ev.SP = m.regs[isa.SP]
			m.opts.Trace(ev)
		}
	}()

	branchTo := func(addr int64) {
		ev.Branch = true
		ev.Target = addr
		next = addr
	}
	labelAddr := func(sym string) (int64, bool) {
		if a, ok := m.addrOf[symKey{fn: ci.fn, label: sym}]; ok {
			return a, true
		}
		return 0, false
	}
	symbolAddr := func(sym string) (int64, error) {
		if a, ok := m.funcEntry[sym]; ok {
			return a, nil
		}
		if a, ok := runtimeAddr(sym); ok {
			return a, nil
		}
		return 0, trapf("unknown symbol %q", sym)
	}

	switch in.Op {
	case isa.MOVZ:
		m.set(in.Rd, in.Imm)
	case isa.ORRrs:
		m.set(in.Rd, m.get(in.Rn)|m.get(in.Rm))
	case isa.ANDrs:
		m.set(in.Rd, m.get(in.Rn)&m.get(in.Rm))
	case isa.EORrs:
		m.set(in.Rd, m.get(in.Rn)^m.get(in.Rm))
	case isa.ADDrs:
		m.set(in.Rd, m.get(in.Rn)+m.get(in.Rm))
	case isa.ADDri:
		m.set(in.Rd, m.get(in.Rn)+in.Imm)
	case isa.SUBrs:
		m.set(in.Rd, m.get(in.Rn)-m.get(in.Rm))
	case isa.SUBri:
		m.set(in.Rd, m.get(in.Rn)-in.Imm)
	case isa.MUL:
		m.set(in.Rd, m.get(in.Rn)*m.get(in.Rm))
	case isa.SDIV:
		d := m.get(in.Rm)
		if d == 0 {
			return 0, trapf("division by zero")
		}
		m.set(in.Rd, m.get(in.Rn)/d)
	case isa.MSUB:
		m.set(in.Rd, m.get(in.Rd2)-m.get(in.Rn)*m.get(in.Rm))
	case isa.LSLri:
		m.set(in.Rd, m.get(in.Rn)<<uint(in.Imm))
	case isa.LSRri:
		m.set(in.Rd, int64(uint64(m.get(in.Rn))>>uint(in.Imm)))
	case isa.ASRri:
		m.set(in.Rd, m.get(in.Rn)>>uint(in.Imm))
	case isa.CMPrs:
		a, b := m.get(in.Rn), m.get(in.Rm)
		m.fLess, m.fEq = a < b, a == b
	case isa.CMPri:
		a := m.get(in.Rn)
		m.fLess, m.fEq = a < in.Imm, a == in.Imm
	case isa.CSET:
		v := int64(0)
		if m.condHolds(in.Cond) {
			v = 1
		}
		m.set(in.Rd, v)
	case isa.LDRui:
		addr := m.get(in.Rn) + in.Imm
		v, err := m.load(addr)
		if err != nil {
			return 0, err
		}
		m.set(in.Rd, v)
		ev.MemAddr, ev.IsLoad = addr, true
		m.stats.Loads++
	case isa.STRui:
		addr := m.get(in.Rn) + in.Imm
		if err := m.store(addr, m.get(in.Rd)); err != nil {
			return 0, err
		}
		ev.MemAddr, ev.IsStore = addr, true
		m.stats.Stores++
	case isa.LDPui:
		addr := m.get(in.Rn) + in.Imm
		v1, err := m.load(addr)
		if err != nil {
			return 0, err
		}
		v2, err := m.load(addr + 8)
		if err != nil {
			return 0, err
		}
		m.set(in.Rd, v1)
		m.set(in.Rd2, v2)
		ev.MemAddr, ev.IsLoad = addr, true
		m.stats.Loads++
	case isa.STPui:
		addr := m.get(in.Rn) + in.Imm
		if err := m.store(addr, m.get(in.Rd)); err != nil {
			return 0, err
		}
		if err := m.store(addr+8, m.get(in.Rd2)); err != nil {
			return 0, err
		}
		ev.MemAddr, ev.IsStore = addr, true
		m.stats.Stores++
	case isa.STPpre:
		base := m.get(in.Rn) + in.Imm // Imm is negative
		if err := m.store(base, m.get(in.Rd)); err != nil {
			return 0, err
		}
		if err := m.store(base+8, m.get(in.Rd2)); err != nil {
			return 0, err
		}
		m.set(in.Rn, base)
		ev.MemAddr, ev.IsStore = base, true
		m.stats.Stores++
	case isa.LDPpost:
		base := m.get(in.Rn)
		v1, err := m.load(base)
		if err != nil {
			return 0, err
		}
		v2, err := m.load(base + 8)
		if err != nil {
			return 0, err
		}
		m.set(in.Rd, v1)
		m.set(in.Rd2, v2)
		m.set(in.Rn, base+in.Imm)
		ev.MemAddr, ev.IsLoad = base, true
		m.stats.Loads++
	case isa.STRpre:
		base := m.get(in.Rn) + in.Imm
		if err := m.store(base, m.get(in.Rd)); err != nil {
			return 0, err
		}
		m.set(in.Rn, base)
		ev.MemAddr, ev.IsStore = base, true
		m.stats.Stores++
	case isa.LDRpost:
		base := m.get(in.Rn)
		v, err := m.load(base)
		if err != nil {
			return 0, err
		}
		m.set(in.Rd, v)
		m.set(in.Rn, base+in.Imm)
		ev.MemAddr, ev.IsLoad = base, true
		m.stats.Loads++
	case isa.ADR:
		if a, ok := m.globalAddrs[in.Sym]; ok {
			m.set(in.Rd, a)
		} else if a, ok := m.funcEntry[in.Sym]; ok {
			m.set(in.Rd, a)
		} else if a, ok := runtimeAddr(in.Sym); ok {
			m.set(in.Rd, a)
		} else {
			return 0, trapf("unknown symbol %q", in.Sym)
		}
	case isa.B:
		if a, ok := labelAddr(in.Sym); ok {
			branchTo(a)
		} else {
			a, err := symbolAddr(in.Sym) // tail call
			if err != nil {
				return 0, err
			}
			branchTo(a)
		}
		m.stats.Branches++
		m.stats.Taken++
	case isa.Bcc:
		m.stats.Branches++
		if m.condHolds(in.Cond) {
			a, ok := labelAddr(in.Sym)
			if !ok {
				return 0, trapf("unknown label %q", in.Sym)
			}
			branchTo(a)
			m.stats.Taken++
		}
	case isa.CBZ, isa.CBNZ:
		m.stats.Branches++
		v := m.get(in.Rn)
		if (in.Op == isa.CBZ && v == 0) || (in.Op == isa.CBNZ && v != 0) {
			a, ok := labelAddr(in.Sym)
			if !ok {
				return 0, trapf("unknown label %q", in.Sym)
			}
			branchTo(a)
			m.stats.Taken++
		}
	case isa.BL:
		a, err := symbolAddr(in.Sym)
		if err != nil {
			return 0, err
		}
		m.set(isa.LR, ci.next)
		branchTo(a)
		m.stats.Calls++
	case isa.BLR:
		m.set(isa.LR, ci.next)
		branchTo(m.get(in.Rn))
		m.stats.Calls++
	case isa.RET:
		branchTo(m.get(isa.LR))
		m.stats.Branches++
		m.stats.Taken++
	case isa.BRK:
		return 0, trapf("trap (BRK #%d)", in.Imm)
	case isa.NOP:
	default:
		return 0, trapf("unimplemented opcode %s", isa.OpName(in.Op))
	}
	return next, nil
}

func (m *Machine) condHolds(c isa.Cond) bool {
	switch c {
	case isa.EQ:
		return m.fEq
	case isa.NE:
		return !m.fEq
	case isa.LT:
		return m.fLess
	case isa.LE:
		return m.fLess || m.fEq
	case isa.GT:
		return !m.fLess && !m.fEq
	case isa.GE:
		return !m.fLess
	}
	return false
}

// runtimeCall executes the runtime entry at addr and returns the return
// address (the caller's LR).
func (m *Machine) runtimeCall(addr int64) (int64, error) {
	name := runtimeEntries[(addr-rtBase)/8]
	m.stats.RuntimeCalls++
	x0 := m.regs[isa.X0]
	switch name {
	case "swift_retain", "objc_retain":
		if n, ok := m.allocSizes[x0]; ok && n > 0 {
			m.heap[(x0-heapBase)/8]++
		}
	case "swift_release", "objc_release":
		if n, ok := m.allocSizes[x0]; ok && n > 0 {
			m.heap[(x0-heapBase)/8]--
		}
	case "swift_allocObject":
		// x0 = field count; block = [refcount, fields...]
		p, err := m.alloc(1 + x0)
		if err != nil {
			return 0, err
		}
		m.heap[(p-heapBase)/8] = 1
		m.regs[isa.X0] = p
	case "swift_allocArray":
		// x0 = length; block = [refcount, length, elems...]
		p, err := m.alloc(2 + x0)
		if err != nil {
			return 0, err
		}
		m.heap[(p-heapBase)/8] = 1
		m.heap[(p-heapBase)/8+1] = x0
		m.regs[isa.X0] = p
	case "swift_arrayAppend":
		arr, elem := x0, m.regs[isa.X1]
		n, err := m.load(arr + 8)
		if err != nil {
			return 0, prefixErr(err, "append to bad array %#x", arr)
		}
		p, err := m.alloc(2 + n + 1)
		if err != nil {
			return 0, err
		}
		base := (p - heapBase) / 8
		m.heap[base] = 1
		m.heap[base+1] = n + 1
		for i := int64(0); i < n; i++ {
			v, err := m.load(arr + 16 + 8*i)
			if err != nil {
				return 0, err
			}
			m.heap[base+2+i] = v
		}
		m.heap[base+2+n] = elem
		m.regs[isa.X0] = p
	case "print_int":
		fmt.Fprintf(&m.out, "%d\n", x0)
	case "print_bool":
		if x0 != 0 {
			m.out.WriteString("true\n")
		} else {
			m.out.WriteString("false\n")
		}
	case "print_str":
		n, err := m.load(x0)
		if err != nil {
			return 0, prefixErr(err, "print_str of bad pointer %#x", x0)
		}
		var sb strings.Builder
		for i := int64(0); i < n; i++ {
			ch, err := m.load(x0 + 8 + 8*i)
			if err != nil {
				return 0, err
			}
			sb.WriteRune(rune(ch))
		}
		m.out.WriteString(sb.String())
		m.out.WriteByte('\n')
	default:
		return 0, trapf("unknown runtime entry %q", name)
	}
	return m.regs[isa.LR], nil
}

// Describe returns "func+offset" for a code address (debugging aid).
func (m *Machine) Describe(addr int64) string {
	idx, err := m.addrIndex(addr)
	if err != nil {
		return fmt.Sprintf("%#x(?)", addr)
	}
	ci := m.code[idx]
	return fmt.Sprintf("%s: %s", m.prog.Funcs[ci.fn].Name, ci.in)
}
