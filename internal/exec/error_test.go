package exec

import (
	"errors"
	"strings"
	"testing"

	"outliner/internal/mir"
)

// runErr runs @main and requires a typed *Error failure.
func runErr(t *testing.T, src string, maxSteps int64) *Error {
	t.Helper()
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := New(p, Options{MaxSteps: maxSteps})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = m.Run("main")
	if err == nil {
		t.Fatal("Run succeeded, want a failure")
	}
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T) is not a *exec.Error", err, err)
	}
	return e
}

func TestErrorKindTrap(t *testing.T) {
	e := runErr(t, `
func @main {
entry:
  MOVZXi $x0, #1
  BRK #7
}
`, 1000)
	if e.Kind != KindTrap {
		t.Errorf("Kind = %v, want trap", e.Kind)
	}
	if e.Func != "main" || e.PC <= 0 || e.Step != 2 {
		t.Errorf("context = %+v, want Func=main, PC>0, Step=2", e)
	}
	if !strings.Contains(e.Error(), "trap (BRK #7)") || !strings.Contains(e.Error(), "@main") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestErrorKindBadMemory(t *testing.T) {
	e := runErr(t, `
func @victim {
entry:
  LDRXui $x0, $x1, #0
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x1, #64
  BL @victim
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`, 1000)
	if e.Kind != KindBadMemory {
		t.Errorf("Kind = %v, want bad-memory", e.Kind)
	}
	if e.Func != "victim" {
		t.Errorf("Func = %q, want the faulting frame", e.Func)
	}
	if !strings.Contains(e.Inst, "LDRXui") {
		t.Errorf("Inst = %q, want the faulting load", e.Inst)
	}
	if !strings.Contains(e.Msg, "bad memory access") {
		t.Errorf("Msg = %q", e.Msg)
	}
}

func TestErrorKindBadMemoryUnaligned(t *testing.T) {
	e := runErr(t, `
func @main {
entry:
  MOVZXi $x1, #65537
  LDRXui $x0, $x1, #0
  RET
}
`, 1000)
	if e.Kind != KindBadMemory || !strings.Contains(e.Msg, "unaligned") {
		t.Errorf("e = %+v, want unaligned bad-memory", e)
	}
}

func TestErrorKindMaxSteps(t *testing.T) {
	e := runErr(t, `
func @main {
entry:
  B @entry
}
`, 1000)
	if e.Kind != KindMaxSteps {
		t.Errorf("Kind = %v, want max-steps", e.Kind)
	}
	if e.Step != 1000 {
		t.Errorf("Step = %d, want the exhausted budget", e.Step)
	}
	if e.Func != "main" {
		t.Errorf("Func = %q, want the spinning frame", e.Func)
	}
	if !strings.Contains(e.Error(), "step limit (1000)") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestErrorKindTrapDivisionByZero(t *testing.T) {
	e := runErr(t, `
func @main {
entry:
  MOVZXi $x0, #1
  MOVZXi $x1, #0
  SDIVXr $x0, $x0, $x1
  RET
}
`, 1000)
	if e.Kind != KindTrap || !strings.Contains(e.Msg, "division by zero") {
		t.Errorf("e = %+v, want division-by-zero trap", e)
	}
}

// Faults raised inside runtime pseudo-calls keep their kind and are pinned to
// the calling instruction.
func TestErrorInRuntimeCallKeepsKind(t *testing.T) {
	e := runErr(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x0, #64
  BL @print_str
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`, 1000)
	if e.Kind != KindBadMemory {
		t.Errorf("Kind = %v, want bad-memory through the runtime call", e.Kind)
	}
	if e.Func != "main" || !strings.Contains(e.Inst, "BL") {
		t.Errorf("context = %+v, want the BL site in @main", e)
	}
	if !strings.Contains(e.Msg, "print_str of bad pointer") {
		t.Errorf("Msg = %q, want the runtime-call prefix", e.Msg)
	}
}

func TestErrorKindString(t *testing.T) {
	cases := map[ErrorKind]string{
		KindTrap:      "trap",
		KindMaxSteps:  "max-steps",
		KindBadMemory: "bad-memory",
		ErrorKind(99): "ErrorKind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
