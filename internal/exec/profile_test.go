package exec

import (
	"testing"

	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/profile"
)

// loopSrc calls @helper three times from a counted loop and @leaf once via a
// tail call inside @helper, exercising entry counts, call edges, block
// counts, and runtime-call edges.
const loopSrc = `
func @leaf {
entry:
  ADDXrs $x0, $x0, $x0
  RET
}
func @helper {
entry:
  B @leaf
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x19, #0
loop:
  CMPXri $x19, #3
  Bcc.ge @done
  MOVZXi $x0, #21
  BL @helper
  BL @print_int
  ADDXri $x19, $x19, #1
  B @loop
done:
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`

func profiledRun(t *testing.T, src, entry string) (*profile.Profile, *Machine) {
	t.Helper()
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	col := profile.NewCollector()
	m, err := New(p, Options{MaxSteps: 1_000_000, Profile: col})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Run(entry); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return col.Profile(), m
}

func TestProfileCounts(t *testing.T) {
	p, m := profiledRun(t, loopSrc, "main")

	if got := p.Count("main"); got != 1 {
		t.Errorf("main entries = %d, want 1", got)
	}
	if got := p.Count("helper"); got != 3 {
		t.Errorf("helper entries = %d, want 3", got)
	}
	// @helper tail-calls @leaf, so leaf is entered once per helper call.
	if got := p.Count("leaf"); got != 3 {
		t.Errorf("leaf entries = %d, want 3", got)
	}

	mf := p.Funcs["main"]
	if mf == nil {
		t.Fatal("no main in profile")
	}
	if mf.Blocks["loop"] != 4 { // 3 iterations + the exiting test
		t.Errorf("main loop block = %d, want 4", mf.Blocks["loop"])
	}
	if mf.Blocks["entry"] != 1 || mf.Blocks["done"] != 1 {
		t.Errorf("main blocks = %v", mf.Blocks)
	}

	// Call edges carry call-site offsets and runtime callees.
	var helperEdge, printEdge string
	for edge, n := range mf.Calls {
		switch {
		case n == 3 && hasPrefix(edge, "helper@+"):
			helperEdge = edge
		case n == 3 && hasPrefix(edge, "print_int@+"):
			printEdge = edge
		}
	}
	if helperEdge == "" || printEdge == "" {
		t.Errorf("main call edges = %v", mf.Calls)
	}

	// Step totals must sum to the machine's dynamic instruction count.
	if got, want := p.TotalSteps(), m.Stats().DynamicInsts; got != want {
		t.Errorf("TotalSteps = %d, Stats().DynamicInsts = %d", got, want)
	}
	if m.Stats().RuntimeCalls != 3 {
		t.Errorf("RuntimeCalls = %d, want 3", m.Stats().RuntimeCalls)
	}
}

// A reused machine must not double-count: each Run flushes and zeroes its
// accumulators, so N runs produce exactly N× one run's counts.
func TestProfileMultiRunNoDoubleCount(t *testing.T) {
	p, err := mir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector()
	m, err := New(p, Options{MaxSteps: 1_000_000, Profile: col})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	one := col.Profile()
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	two := col.Profile()
	if got, want := two.Count("helper"), 2*one.Count("helper"); got != want {
		t.Errorf("helper entries after 2 runs = %d, want %d", got, want)
	}
	if got, want := two.TotalSteps(), 2*one.TotalSteps(); got != want {
		t.Errorf("steps after 2 runs = %d, want %d (double-count bug)", got, want)
	}
}

// Collected profiles must be identical across separate machines and across
// equivalent collection shardings (one collector for two runs vs two merged
// collectors).
func TestProfileDeterministicAcrossMachines(t *testing.T) {
	a, _ := profiledRun(t, loopSrc, "main")
	b, _ := profiledRun(t, loopSrc, "main")
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("same run on two machines produced different profiles")
	}
	c, _ := profiledRun(t, loopSrc, "main")
	merged := profile.Merged(a, b)
	col := profile.NewCollector()
	col.Add(c)
	col.Add(c)
	if string(merged.Encode()) != string(col.Profile().Encode()) {
		t.Fatal("sharded collection diverged from merged collection")
	}
}

func TestResetStatsPerRun(t *testing.T) {
	p, err := mir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{MaxSteps: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	first := m.Stats()
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if m.Stats() != first {
		t.Errorf("per-run stats diverged: %+v vs %+v", m.Stats(), first)
	}
}

func TestStatsEmitCounters(t *testing.T) {
	_, m := profiledRun(t, loopSrc, "main")
	tr := obs.New()
	m.Stats().EmitCounters(tr)
	got := tr.Counters()
	if got["exec/steps"] != m.Stats().DynamicInsts || got["exec/steps"] == 0 {
		t.Errorf("exec/steps = %d", got["exec/steps"])
	}
	if got["exec/runtime_calls"] != 3 {
		t.Errorf("exec/runtime_calls = %d", got["exec/runtime_calls"])
	}
	// Nil tracer must be a no-op, like the rest of the obs API.
	m.Stats().EmitCounters(nil)
}

// Profiling must not change execution: output and stats match an
// uninstrumented run.
func TestProfilingIsTransparent(t *testing.T) {
	p, err := mir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(p, Options{MaxSteps: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	plainOut, err := plain.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := New(p, Options{MaxSteps: 1_000_000, Profile: profile.NewCollector()})
	if err != nil {
		t.Fatal(err)
	}
	profOut, err := prof.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if plainOut != profOut {
		t.Errorf("output diverged: %q vs %q", plainOut, profOut)
	}
	if plain.Stats() != prof.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", plain.Stats(), prof.Stats())
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
