package exec

import "fmt"

// ErrorKind classifies why a run stopped abnormally. The differential-testing
// oracle keys on this: a budget exhaustion is inconclusive, while a trap or a
// wild memory access after outlining is a miscompile.
type ErrorKind int

const (
	// KindTrap covers deliberate machine traps: BRK, division by zero,
	// unknown symbols, jumps to non-instruction addresses, unimplemented
	// opcodes.
	KindTrap ErrorKind = iota
	// KindMaxSteps means the step budget was exhausted before the program
	// returned.
	KindMaxSteps
	// KindBadMemory covers unaligned and out-of-segment memory accesses.
	KindBadMemory
)

func (k ErrorKind) String() string {
	switch k {
	case KindTrap:
		return "trap"
	case KindMaxSteps:
		return "max-steps"
	case KindBadMemory:
		return "bad-memory"
	}
	return fmt.Sprintf("ErrorKind(%d)", int(k))
}

// Error is the typed failure every abnormal Machine.Run result unwraps to
// (errors.As). PC, Func, Inst, and Step locate the fault; Msg carries the
// cause ("division by zero", "bad memory access at 0x40", ...).
type Error struct {
	Kind ErrorKind
	PC   int64  // code address of the faulting instruction (0 when unknown)
	Func string // function containing PC ("" when unknown)
	Inst string // disassembled faulting instruction ("" when unknown)
	Step int64  // dynamic instruction count at the fault (0 when unknown)
	Msg  string
}

func (e *Error) Error() string {
	switch {
	case e.Func != "" && e.Inst != "":
		return fmt.Sprintf("exec: at %#x (%s in @%s): %s", e.PC, e.Inst, e.Func, e.Msg)
	case e.Func != "":
		return fmt.Sprintf("exec: at %#x (@%s): %s", e.PC, e.Func, e.Msg)
	}
	return "exec: " + e.Msg
}

// trapf builds a context-free trap error; Run attaches PC/function/step.
func trapf(format string, args ...any) *Error {
	return &Error{Kind: KindTrap, Msg: fmt.Sprintf(format, args...)}
}

// memf builds a context-free bad-memory error; Run attaches context.
func memf(format string, args ...any) *Error {
	return &Error{Kind: KindBadMemory, Msg: fmt.Sprintf(format, args...)}
}

// prefixErr prepends printf-style context to an error's message, preserving
// the typed *Error (kind and all) when there is one.
func prefixErr(err error, format string, args ...any) error {
	pre := fmt.Sprintf(format, args...)
	if e, ok := err.(*Error); ok {
		e.Msg = pre + ": " + e.Msg
		return e
	}
	return fmt.Errorf("%s: %w", pre, err)
}
