package exec

import (
	"strings"
	"testing"

	"outliner/internal/mir"
)

func machine(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := New(p, Options{MaxSteps: 1_000_000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func runMain(t *testing.T, src string) (string, *Machine) {
	t.Helper()
	m := machine(t, src)
	out, err := m.Run("main")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out, m
}

func TestArithmeticAndPrint(t *testing.T) {
	out, _ := runMain(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x0, #6
  MOVZXi $x1, #7
  MULXrr $x0, $x0, $x1
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "42\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCallAndReturn(t *testing.T) {
	out, m := runMain(t, `
func @double {
entry:
  ADDXrs $x0, $x0, $x0
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x0, #21
  BL @double
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "42\n" {
		t.Errorf("out = %q", out)
	}
	if m.Stats().Calls != 2 {
		t.Errorf("calls = %d, want 2", m.Stats().Calls)
	}
}

func TestBranchesAndFlags(t *testing.T) {
	out, _ := runMain(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x19, #0
  MOVZXi $x20, #0
loop:
  ADDXri $x20, $x20, #2
  ADDXri $x19, $x19, #1
  CMPXri $x19, #5
  Bcc.lt @loop
done:
  ORRXrs $x0, $xzr, $x20
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "10\n" {
		t.Errorf("out = %q", out)
	}
}

func TestGlobalsAndADR(t *testing.T) {
	out, _ := runMain(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ADRP $x1, @table
  LDRXui $x0, $x1, #16
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
global @table = [11, 22, 33]
`)
	if out != "33\n" {
		t.Errorf("out = %q", out)
	}
}

func TestHeapRuntime(t *testing.T) {
	// Allocate an array of 3, store/load an element, append, print lengths.
	out, m := runMain(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x0, #3
  BL @swift_allocArray
  ORRXrs $x19, $xzr, $x0
  MOVZXi $x9, #77
  STRXui $x9, $x19, #16
  LDRXui $x0, $x19, #16
  BL @print_int
  ORRXrs $x0, $xzr, $x19
  MOVZXi $x1, #5
  BL @swift_arrayAppend
  LDRXui $x0, $x0, #8
  BL @print_int
  ORRXrs $x0, $xzr, $x19
  BL @swift_retain
  ORRXrs $x0, $xzr, $x19
  BL @swift_release
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "77\n4\n" {
		t.Errorf("out = %q", out)
	}
	if m.Stats().HeapAllocs != 2 {
		t.Errorf("allocs = %d, want 2", m.Stats().HeapAllocs)
	}
}

func TestIndirectCall(t *testing.T) {
	out, _ := runMain(t, `
func @plus1 {
entry:
  ADDXri $x0, $x0, #1
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ADRP $x16, @plus1
  MOVZXi $x0, #41
  BLR $x16
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "42\n" {
		t.Errorf("out = %q", out)
	}
}

func TestTailCallB(t *testing.T) {
	out, _ := runMain(t, `
func @finish {
entry:
  STPXpre $x29, $x30, $sp, #-16
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
func @outlined0 outlined {
entry:
  MOVZXi $x0, #9
  B @finish
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  BL @outlined0
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "9\n" {
		t.Errorf("out = %q", out)
	}
}

func TestOutlinedAccounting(t *testing.T) {
	_, m := runMain(t, `
func @outlined0 outlined {
entry:
  MOVZXi $x1, #1
  MOVZXi $x2, #2
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  BL @outlined0
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if got := m.Stats().OutlinedInsts; got != 3 {
		t.Errorf("outlined insts = %d, want 3", got)
	}
}

func TestPrintStrAndBool(t *testing.T) {
	out, _ := runMain(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ADRP $x0, @greeting
  BL @print_str
  MOVZXi $x0, #1
  BL @print_bool
  MOVZXi $x0, #0
  BL @print_bool
  LDPXpost $x29, $x30, $sp, #16
  RET
}
global @greeting = [2, 104, 105]
`)
	if out != "hi\ntrue\nfalse\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	m := machine(t, `
func @main {
entry:
  MOVZXi $x0, #1
  MOVZXi $x1, #0
  SDIVXr $x0, $x0, $x1
  RET
}
`)
	if _, err := m.Run("main"); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestBadMemoryTraps(t *testing.T) {
	m := machine(t, `
func @main {
entry:
  MOVZXi $x1, #64
  LDRXui $x0, $x1, #0
  RET
}
`)
	if _, err := m.Run("main"); err == nil || !strings.Contains(err.Error(), "bad memory access") {
		t.Errorf("err = %v", err)
	}
}

func TestUnalignedTraps(t *testing.T) {
	m := machine(t, `
func @main {
entry:
  MOVZXi $x1, #65537
  LDRXui $x0, $x1, #0
  RET
}
`)
	if _, err := m.Run("main"); err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Errorf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	p, err := mir.Parse(`
func @main {
entry:
  B @entry
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v", err)
	}
}

func TestBRKTraps(t *testing.T) {
	m := machine(t, `
func @main {
entry:
  BRK #1
}
`)
	if _, err := m.Run("main"); err == nil || !strings.Contains(err.Error(), "trap") {
		t.Errorf("err = %v", err)
	}
}

func TestMissingEntry(t *testing.T) {
	m := machine(t, `
func @f {
entry:
  RET
}
`)
	if _, err := m.Run("main"); err == nil {
		t.Error("expected error for missing main")
	}
}

func TestTraceEvents(t *testing.T) {
	p, err := mir.Parse(`
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x1, #8
  ADRP $x2, @g
  LDRXui $x0, $x2, #0
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
global @g = [5]
`)
	if err != nil {
		t.Fatal(err)
	}
	var loads, branches int
	m, err := New(p, Options{Trace: func(ev Event) {
		if ev.IsLoad {
			loads++
			if ev.MemAddr == 0 {
				t.Error("load event without address")
			}
		}
		if ev.Branch {
			branches++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if loads != 2 { // the global LDR plus the frame-pop LDP
		t.Errorf("loads = %d, want 2", loads)
	}
	if branches < 2 { // BL + RET
		t.Errorf("branches = %d, want >= 2", branches)
	}
}

func TestSpillSlots(t *testing.T) {
	// STRXpre/LDRXpost push/pop through SP (the outliner's LR save shape).
	out, _ := runMain(t, `
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x0, #5
  STRXpre $x0, $sp, #-16
  MOVZXi $x0, #0
  LDRXpost $x9, $sp, #16
  ORRXrs $x0, $xzr, $x9
  BL @print_int
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	if out != "5\n" {
		t.Errorf("out = %q", out)
	}
}

// Describe renders "func: inst" for tracebacks — §VI-4's
// OUTLINED_FUNCTION_* debugging story depends on outlined frames being
// identifiable by name.
func TestDescribe(t *testing.T) {
	m := machine(t, `
func @OUTLINED_FUNCTION_0 outlined {
entry:
  MOVZXi $x0, #1
  RET
}
`)
	// The function's entry address is codeBase.
	d := m.Describe(1 << 36)
	if !strings.Contains(d, "OUTLINED_FUNCTION_0") || !strings.Contains(d, "MOVZXi") {
		t.Errorf("Describe = %q", d)
	}
	if !strings.Contains(m.Describe(12345), "?") {
		t.Error("non-code address must render as unknown")
	}
}

// Interpreter errors inside outlined functions carry the outlined name —
// the misleading-traceback experience of §VI-4.
func TestOutlinedNameInTraceback(t *testing.T) {
	m := machine(t, `
func @OUTLINED_FUNCTION_7 outlined {
entry:
  LDRXui $x0, $x1, #0
  RET
}
func @main {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x1, #64
  BL @OUTLINED_FUNCTION_7
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`)
	_, err := m.Run("main")
	if err == nil || !strings.Contains(err.Error(), "OUTLINED_FUNCTION_7") {
		t.Errorf("err = %v, want the outlined frame named", err)
	}
}
