package outline

import (
	"fmt"
	"strings"
	"testing"

	"outliner/internal/isa"
)

// TestMapperRoundTrip checks the mapping invariants the suffix tree relies
// on: the flattened string and the location table stay aligned, every
// shared symbol round-trips to the exact instruction it was minted from,
// identical legal instructions share one symbol, and every illegal
// instruction and block boundary gets a unique negative sentinel.
func TestMapperRoundTrip(t *testing.T) {
	p := mustParse(t, `
func @a {
entry:
  STPXpre $x29, $x30, $sp, #-16
  MOVZXi $x1, #7
  ADDXrs $x2, $x1, $x1
  CMPXri $x2, #3
  Bcc.lt @tail
body:
  MOVZXi $x1, #7
  ADDXrs $x2, $x1, $x1
tail:
  LDPXpost $x29, $x30, $sp, #16
  RET
}
func @b {
entry:
  MOVZXi $x1, #7
  ADDXrs $x2, $x1, $x1
  RET
}
`)
	m := mapProgram(p)
	if len(m.str) != len(m.locs) {
		t.Fatalf("str (%d) and locs (%d) misaligned", len(m.str), len(m.locs))
	}

	blocks := 0
	seenSentinels := map[int]bool{}
	idByInst := map[isa.Inst]int{}
	for i, sym := range m.str {
		l := m.locs[i]
		if l.fn == -1 {
			// Block-boundary sentinel.
			blocks++
			if sym >= 0 || seenSentinels[sym] {
				t.Fatalf("boundary sentinel at %d not unique-negative: %d", i, sym)
			}
			seenSentinels[sym] = true
			continue
		}
		in := p.Funcs[l.fn].Blocks[l.block].Insts[l.inst]
		if sym < 0 {
			if legalForOutlining(in) {
				t.Errorf("legal instruction %v got sentinel %d", in, sym)
			}
			if seenSentinels[sym] {
				t.Errorf("sentinel %d reused", sym)
			}
			seenSentinels[sym] = true
			continue
		}
		if !legalForOutlining(in) {
			t.Errorf("illegal instruction %v got shared symbol %d", in, sym)
		}
		// Round trip: the symbol's canonical instruction is this instruction.
		if m.insts[sym] != in {
			t.Errorf("symbol %d canonical %v, loc holds %v", sym, m.insts[sym], in)
		}
		if prev, ok := idByInst[in]; ok && prev != sym {
			t.Errorf("instruction %v mapped to both %d and %d", in, prev, sym)
		}
		idByInst[in] = sym
	}
	if want := 4; blocks != want {
		t.Errorf("boundary sentinels = %d, want %d (one per block)", blocks, want)
	}

	// The repeated pair [MOVZ #7, ADD] must appear three times under the
	// same two symbols — that is the repeat the suffix tree finds.
	movz := isa.Inst{Op: isa.MOVZ, Rd: isa.X1, Imm: 7}
	pairStarts := 0
	for i := 0; i+1 < len(m.str); i++ {
		if m.str[i] >= 0 && m.insts[m.str[i]] == movz &&
			m.str[i+1] >= 0 && m.insts[m.str[i+1]].Op == isa.ADDrs {
			pairStarts++
			// instsAt must hand back exactly that contiguous run.
			got := m.instsAt(p, i, 2)
			if len(got) != 2 || got[0] != movz || got[1].Op != isa.ADDrs {
				t.Errorf("instsAt(%d, 2) = %v", i, got)
			}
		}
	}
	if pairStarts != 3 {
		t.Errorf("repeated pair found %d times in mapping, want 3", pairStarts)
	}
}

// TestMapperIncludesOutlinedFunctions drives the real cascade: after round
// one creates outlined functions, the next round's mapping must include
// their bodies and call sites (outlined-from-outlined symbols) — the
// re-mapping that makes repeated outlining (§V-B, Figure 11) work at all.
func TestMapperIncludesOutlinedFunctions(t *testing.T) {
	var src strings.Builder
	long := []string{
		"MOVZXi $x1, #1",
		"ORRXrs $x2, $xzr, $x1",
		"ADDXrs $x3, $x2, $x1",
		"EORXrs $x4, $x3, $x2",
		"ANDXrs $x5, $x4, $x3",
	}
	suffix := long[2:]
	for i := 0; i < 4; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("long%d", i),
			append(append([]string{}, long...), fmt.Sprintf("MOVZXi $x6, #%d", i))...))
	}
	for i := 0; i < 12; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("short%d", i),
			append(append([]string{}, suffix...), fmt.Sprintf("MOVZXi $x7, #%d", 100+i))...))
	}
	p := mustParse(t, src.String())
	st := outlineProg(t, p, 5)
	if len(st.Rounds) < 2 || st.Rounds[1].SequencesOutlined == 0 {
		t.Fatalf("cascade did not reach round 2: %+v", st.Rounds)
	}

	// At least one outlined function must transfer control to another
	// outlined function: round 2 harvested a sequence overlapping round 1's
	// output.
	outlined := map[string]bool{}
	for _, f := range p.Funcs {
		if f.Outlined {
			outlined[f.Name] = true
		}
	}
	if len(outlined) < 2 {
		t.Fatalf("outlined functions = %d, want a cascade", len(outlined))
	}
	cascaded := false
	for _, f := range p.Funcs {
		if !f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if (in.Op == isa.B || in.Op == isa.BL) && outlined[in.Sym] {
					cascaded = true
				}
			}
		}
	}
	if !cascaded {
		t.Error("no outlined function references another outlined function")
	}

	// The post-cascade mapping must cover every outlined function's body so
	// a further round could keep harvesting.
	m := mapProgram(p)
	covered := map[int]bool{}
	for _, l := range m.locs {
		if l.fn >= 0 {
			covered[l.fn] = true
		}
	}
	for fi, f := range p.Funcs {
		if f.Outlined && !covered[fi] {
			t.Errorf("outlined %s missing from the mapping", f.Name)
		}
	}
}
