// Package outline implements whole-program machine-code outlining — the
// paper's primary contribution. It mirrors LLVM's MachineOutliner pass
// structure (instruction mapper → suffix tree → candidate cost model →
// greedy selection → function creation) and adds the paper's extension:
// repeated machine outlining, in which the whole pass re-runs over its own
// output so that lengthier candidates whose substrings were already outlined
// are reconsidered rather than discarded.
package outline

import (
	"outliner/internal/isa"
	"outliner/internal/mir"
)

// loc addresses one instruction inside a program.
type loc struct {
	fn    int // index into prog.Funcs
	block int // index into fn.Blocks
	inst  int // index into block.Insts
}

// mapping is the flattened view of a program that the suffix tree consumes:
// one integer symbol per instruction, where identical outlinable instructions
// share a symbol and illegal instructions/block boundaries get unique
// negative sentinels so they can never participate in a repeat.
type mapping struct {
	str  []int
	locs []loc // aligned with str; sentinel entries hold fn == -1

	// insts holds the canonical instruction for each non-negative symbol.
	insts []isa.Inst
	// idByInst interns instructions to symbols. It persists across remap
	// calls together with insts: an instruction keeps its symbol from round
	// to round, so repeated outlining rounds skip re-interning the (mostly
	// unchanged) program. Symbol values don't matter to the suffix tree —
	// only equality does — and interning order stays deterministic.
	idByInst map[isa.Inst]int
}

// legalForOutlining reports whether the mapper may give in a shared symbol.
// The rules reproduce the AArch64 target hooks in LLVM:
//
//   - branches and traps never move (they end blocks anyway),
//   - RET is allowed (the tail-call strategy outlines returning sequences),
//   - instructions that modify SP (frame setup/destruction, the very
//     STP/LDP sequences of the paper's Listings 7-8) must stay put,
//   - instructions that explicitly read or write LR must stay put because
//     every outlining strategy repurposes LR.
func legalForOutlining(in isa.Inst) bool {
	switch in.Op {
	case isa.B, isa.Bcc, isa.CBZ, isa.CBNZ, isa.BRK, isa.BAD, isa.NOP:
		return false
	}
	if in.ModifiesSP() {
		return false
	}
	if in.UsesLR() {
		return false
	}
	return true
}

// mapProgram flattens prog. Outlined functions from earlier rounds are
// included: that inclusion is what lets round N outline the bodies of
// round N-1's functions (and call sites referring to them), producing the
// cascade the paper's Figure 11 illustrates.
func mapProgram(prog *mir.Program) *mapping {
	m := &mapping{}
	m.remap(prog)
	return m
}

// remap rebuilds the flattened view in place, reusing str/locs storage and
// the persistent intern table from the previous round.
func (m *mapping) remap(prog *mir.Program) {
	m.str = m.str[:0]
	m.locs = m.locs[:0]
	if m.idByInst == nil {
		m.idByInst = make(map[isa.Inst]int)
	}
	sentinel := -1
	for fi, f := range prog.Funcs {
		for bi, b := range f.Blocks {
			for ii, in := range b.Insts {
				l := loc{fn: fi, block: bi, inst: ii}
				if legalForOutlining(in) {
					id, ok := m.idByInst[in]
					if !ok {
						id = len(m.insts)
						m.idByInst[in] = id
						m.insts = append(m.insts, in)
					}
					m.str = append(m.str, id)
					m.locs = append(m.locs, l)
				} else {
					m.str = append(m.str, sentinel)
					m.locs = append(m.locs, l)
					sentinel--
				}
			}
			// Block boundary sentinel: repeats never span blocks.
			m.str = append(m.str, sentinel)
			m.locs = append(m.locs, loc{fn: -1})
			sentinel--
		}
	}
}

// instsAt returns the instruction sequence covered by [start, start+n) of
// the flattened string. All positions are guaranteed to sit inside one block
// (sentinels separate blocks), so this indexes a contiguous instruction run.
func (m *mapping) instsAt(prog *mir.Program, start, n int) []isa.Inst {
	l := m.locs[start]
	b := prog.Funcs[l.fn].Blocks[l.block]
	return b.Insts[l.inst : l.inst+n]
}

// spSensitiveFuncs computes, for repeated rounds, which outlined functions
// access their *caller's* stack frame through SP. Outlined functions have no
// frame of their own: their SP-relative instructions implicitly assume SP
// still points at the original site's frame. The property propagates through
// calls and tail calls between outlined functions.
//
// A candidate that calls such a function must be treated exactly like a
// candidate containing a direct SP access: outlining it with any strategy
// that moves SP first (LR spills at the call site, or an LR-preserving frame
// inside the new function) would make the callee scribble on the wrong
// frame. Round one never needs this (no outlined functions exist yet);
// missing it in later rounds corrupts saved registers — found the hard way
// by executing the synthetic app.
func spSensitiveFuncs(prog *mir.Program) map[string]bool {
	sensitive := make(map[string]bool)
	// Direct SP access.
	for _, f := range prog.Funcs {
		if !f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.ReadsSP() || in.ModifiesSP() {
					sensitive[f.Name] = true
				}
			}
		}
	}
	// Propagate through BL/B edges between outlined functions.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			if !f.Outlined || sensitive[f.Name] {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Insts {
					if (in.Op == isa.BL || in.Op == isa.B) && sensitive[in.Sym] {
						sensitive[f.Name] = true
						changed = true
					}
				}
			}
		}
	}
	return sensitive
}
