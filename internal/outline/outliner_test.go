package outline

import (
	"fmt"
	"strings"
	"testing"

	"outliner/internal/isa"
	"outliner/internal/mir"
)

var externRT = map[string]bool{
	"swift_release": true, "swift_retain": true, "swift_allocObject": true,
	"objc_release": true, "objc_msgSend": true, "f": true, "g": true,
}

func mustParse(t *testing.T, src string) *mir.Program {
	t.Helper()
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := p.Verify(externRT); err != nil {
		t.Fatalf("test input invalid: %v", err)
	}
	return p
}

func outlineProg(t *testing.T, p *mir.Program, rounds int) *Stats {
	t.Helper()
	st, err := Outline(p, Options{Rounds: rounds, Verify: true, ExternSyms: externRT})
	if err != nil {
		t.Fatalf("Outline: %v", err)
	}
	return st
}

// framedFunc builds a function with a frame (so LR is dead in the body) whose
// body is the given instruction lines.
func framedFunc(name string, body ...string) string {
	return fmt.Sprintf("func @%s {\nentry:\n  STPXpre $x29, $x30, $sp, #-16\n%s  LDPXpost $x29, $x30, $sp, #16\n  RET\n}\n",
		name, indent(body))
}

func indent(lines []string) string {
	var b strings.Builder
	for _, l := range lines {
		b.WriteString("  ")
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// The paper's Listing 1/2 situation: the same two-instruction
// move+call pattern repeats across functions; the thunk strategy outlines it.
func TestOutlineThunkPattern(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 4; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
			"ORRXrs $x0, $xzr, $x20",
			"BL @swift_release",
			fmt.Sprintf("MOVZXi $x1, #%d", i), // unique per function
		))
	}
	p := mustParse(t, src.String())
	before := p.CodeSize()
	st := outlineProg(t, p, 1)

	if st.TotalFunctions() < 1 {
		t.Fatal("no outlined functions created")
	}
	if st.TotalSequences() < 4 {
		t.Errorf("sequences outlined = %d, want >= 4", st.TotalSequences())
	}
	if p.CodeSize() >= before {
		t.Errorf("code size %d did not shrink from %d", p.CodeSize(), before)
	}
	// The outlined function must be a thunk: prefix + tail call.
	var outlined *mir.Function
	for _, f := range p.Funcs {
		if f.Outlined {
			outlined = f
		}
	}
	if outlined == nil {
		t.Fatal("no outlined function in program")
	}
	body := outlined.Blocks[0].Insts
	if body[len(body)-1].Op != isa.B || body[len(body)-1].Sym != "swift_release" {
		t.Errorf("thunk must end with tail call to swift_release; body:\n%s", outlined)
	}
}

// A repeating sequence ending in RET outlines as a tail call (B), adding no
// frame bytes.
func TestOutlineTailCallPattern(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 4; i++ {
		src.WriteString(fmt.Sprintf(`
func @f%d {
entry:
  MOVZXi $x9, #%d
  ADDXrs $x0, $x9, $x9
  ORRXrs $x1, $xzr, $x0
  SUBXrs $x0, $x1, $x9
  RET
}
`, i, i))
	}
	p := mustParse(t, src.String())
	st := outlineProg(t, p, 1)
	if st.TotalFunctions() == 0 {
		t.Fatal("expected a tail-call outline")
	}
	for _, f := range p.Funcs {
		if !f.Outlined {
			continue
		}
		insts := f.Blocks[0].Insts
		if insts[len(insts)-1].Op != isa.RET {
			t.Errorf("tail-call outlined function must end in RET:\n%s", f)
		}
	}
	// Call sites must use B, not BL.
	for _, f := range p.Funcs {
		if f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == isa.BL && strings.HasPrefix(in.Sym, "OUTLINED_") {
					t.Errorf("tail-call site must use B: %v in %s", in, f.Name)
				}
			}
		}
	}
}

// When LR is live (leaf function, no frame), outlining must wrap the call
// site in an LR spill/reload, and the cost model must account for it: a
// 2-instruction pattern repeated twice is not profitable then.
func TestLRSaveCostPreventsUnprofitableOutlining(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 2; i++ {
		src.WriteString(fmt.Sprintf(`
func @leaf%d {
entry:
  MOVZXi $x1, #77
  ADDXrs $x2, $x1, $x1
  MOVZXi $x3, #%d
  RET
}
`, i, i))
	}
	p := mustParse(t, src.String())
	st := outlineProg(t, p, 1)
	// Candidate: 2 insts × 2 occurrences = 16 bytes removed; cost = 2×12
	// (LR save sites) + 12 (body + RET) — never profitable.
	if st.TotalSequences() != 0 {
		t.Errorf("outlined %d sequences; LR-save cost should forbid it", st.TotalSequences())
	}
}

func TestLRSaveUsedWhenProfitable(t *testing.T) {
	// Longer pattern, more repeats: profitable even with LR save.
	var src strings.Builder
	for i := 0; i < 6; i++ {
		src.WriteString(fmt.Sprintf(`
func @leaf%d {
entry:
  MOVZXi $x1, #77
  ADDXrs $x2, $x1, $x1
  EORXrs $x3, $x2, $x1
  ANDXrs $x4, $x3, $x2
  ORRXrs $x5, $x3, $x4
  SUBXrs $x6, $x5, $x1
  MOVZXi $x7, #%d
  RET
}
`, i, i))
	}
	p := mustParse(t, src.String())
	st := outlineProg(t, p, 1)
	if st.TotalSequences() < 6 {
		t.Fatalf("sequences = %d, want 6", st.TotalSequences())
	}
	// Call sites must be bracketed by the LR spill/reload.
	found := false
	for _, f := range p.Funcs {
		if f.Outlined {
			continue
		}
		for _, b := range f.Blocks {
			for i, in := range b.Insts {
				if in.Op == isa.BL && strings.HasPrefix(in.Sym, "OUTLINED_") {
					if i == 0 || b.Insts[i-1].Op != isa.STRpre || b.Insts[i+1].Op != isa.LDRpost {
						t.Errorf("call site not wrapped in LR save: %s", f)
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no outlined call sites found")
	}
}

// SP-modifying frame sequences (the paper's Listings 7-8) repeat massively
// but must never be outlined.
func TestFrameSequencesNotOutlined(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 10; i++ {
		src.WriteString(fmt.Sprintf(`
func @f%d {
entry:
  STPXpre $x26, $x25, $sp, #-64
  STPXi $x24, $x23, $sp, #16
  STPXi $x22, $x21, $sp, #32
  STPXi $x20, $x19, $sp, #48
  MOVZXi $x0, #%d
  LDPXi $x20, $x19, $sp, #48
  LDPXi $x22, $x21, $sp, #32
  LDPXi $x24, $x23, $sp, #16
  LDPXpost $x26, $x25, $sp, #64
  RET
}
`, i, i))
	}
	p := mustParse(t, src.String())
	st := outlineProg(t, p, 3)
	// The STP/LDP-ui bodies read SP. The repeating interior
	// [STPXi ×3] would need a plain strategy but LR is live (no LR saved in
	// these frames!) → call-site save → SP shift → illegal. The
	// suffix ending in RET is a tail call and IS legal (SP unchanged).
	for _, f := range p.Funcs {
		if !f.Outlined {
			continue
		}
		for _, in := range f.Blocks[0].Insts {
			if in.ModifiesSP() {
				t.Errorf("outlined function contains SP-modifying %v", in)
			}
		}
	}
	_ = st
}

// Repeated outlining (the paper's §V-B): a 3-instruction pattern whose
// 2-instruction suffix repeats much more often. Greedy picks the suffix
// first; the second round harvests the rest.
func TestRepeatedOutliningBeatsSingleRound(t *testing.T) {
	mk := func() *mir.Program {
		var src strings.Builder
		// 4 functions with the long pattern (prefix+suffix), 12 with only
		// the suffix. Bodies are framed so LR is dead (cheap call sites).
		long := []string{
			"MOVZXi $x1, #1",
			"ORRXrs $x2, $xzr, $x1",
			"ADDXrs $x3, $x2, $x1",
			"EORXrs $x4, $x3, $x2",
			"ANDXrs $x5, $x4, $x3",
		}
		suffix := long[2:]
		for i := 0; i < 4; i++ {
			src.WriteString(framedFunc(fmt.Sprintf("long%d", i),
				append(append([]string{}, long...), fmt.Sprintf("MOVZXi $x6, #%d", i))...))
		}
		for i := 0; i < 12; i++ {
			src.WriteString(framedFunc(fmt.Sprintf("short%d", i),
				append(append([]string{}, suffix...), fmt.Sprintf("MOVZXi $x7, #%d", 100+i))...))
		}
		return mustParse(t, src.String())
	}

	p1 := mk()
	outlineProg(t, p1, 1)
	size1 := p1.CodeSize()

	p2 := mk()
	st2 := outlineProg(t, p2, 5)
	size2 := p2.CodeSize()

	if size2 >= size1 {
		t.Errorf("repeated outlining (%d bytes) not better than single round (%d bytes)", size2, size1)
	}
	if len(st2.Rounds) < 2 || st2.Rounds[1].SequencesOutlined == 0 {
		t.Errorf("round 2 outlined nothing: %+v", st2.Rounds)
	}
}

// The Figure 11 anecdote: BCD repeats more often, ABCD saves more overall.
// Greedy takes BCD; repeated outlining recovers the remainder as a shorter
// leftover pattern, strictly improving on one round.
func TestFig11GreedyAnecdote(t *testing.T) {
	a := "MOVZXi $x1, #11"
	b := "ADDXrs $x2, $x1, $x1"
	c := "EORXrs $x3, $x2, $x1"
	d := "ANDXrs $x4, $x3, $x2"
	mk := func() *mir.Program {
		var src strings.Builder
		n := 0
		emit := func(lines ...string) {
			src.WriteString(framedFunc(fmt.Sprintf("g%d", n),
				append(append([]string{}, lines...), fmt.Sprintf("MOVZXi $x9, #%d", 200+n))...))
			n++
		}
		for i := 0; i < 5; i++ {
			emit(a, b, c, d)
		}
		for i := 0; i < 3; i++ {
			emit(b, c, d)
		}
		return mustParse(t, src.String())
	}

	single := mk()
	outlineProg(t, single, 1)
	repeated := mk()
	st := outlineProg(t, repeated, 5)

	if repeated.CodeSize() >= single.CodeSize() {
		t.Errorf("repeated = %d bytes, single = %d bytes; repetition must win",
			repeated.CodeSize(), single.CodeSize())
	}
	if len(st.Rounds) < 2 {
		t.Fatalf("expected at least 2 effective rounds, got %+v", st.Rounds)
	}
}

// Outlining must converge: once a round finds nothing, Outline stops early.
func TestConvergence(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 4; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
			"ORRXrs $x0, $xzr, $x20",
			"BL @swift_release",
			fmt.Sprintf("MOVZXi $x1, #%d", i),
		))
	}
	p := mustParse(t, src.String())
	st := outlineProg(t, p, 100)
	if len(st.Rounds) >= 100 {
		t.Errorf("outliner did not converge: ran %d rounds", len(st.Rounds))
	}
	last := st.Rounds[len(st.Rounds)-1]
	if last.SequencesOutlined != 0 {
		t.Errorf("final round still outlined %d sequences", last.SequencesOutlined)
	}
}

// Zero rounds must leave the program untouched.
func TestZeroRounds(t *testing.T) {
	src := framedFunc("f", "ORRXrs $x0, $xzr, $x20", "BL @swift_release")
	p := mustParse(t, src)
	before := p.String()
	st, err := Outline(p, Options{Rounds: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rounds) != 0 || p.String() != before {
		t.Error("zero rounds must be a no-op")
	}
}

// The flat cost model (ablation) must never beat the strategy-aware model.
func TestFlatCostModelAblation(t *testing.T) {
	mk := func() *mir.Program {
		var src strings.Builder
		for i := 0; i < 6; i++ {
			src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
				"ORRXrs $x0, $xzr, $x20",
				"BL @swift_release",
				fmt.Sprintf("MOVZXi $x1, #%d", i),
			))
		}
		return mustParse(t, src.String())
	}
	smart := mk()
	outlineProg(t, smart, 3)

	flat := mk()
	if _, err := Outline(flat, Options{Rounds: 3, FlatCostModel: true, Verify: true, ExternSyms: externRT}); err != nil {
		t.Fatal(err)
	}
	if flat.CodeSize() < smart.CodeSize() {
		t.Errorf("flat model (%d) beat strategy-aware model (%d)", flat.CodeSize(), smart.CodeSize())
	}
}

// Analyze must report the dominant pattern with the right count and not
// modify the program.
func TestAnalyze(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 7; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
			"ORRXrs $x0, $xzr, $x20",
			"BL @swift_release",
			fmt.Sprintf("MOVZXi $x1, #%d", i),
		))
	}
	p := mustParse(t, src.String())
	before := p.String()
	pats := Analyze(p, Options{})
	if p.String() != before {
		t.Fatal("Analyze modified the program")
	}
	if len(pats) == 0 {
		t.Fatal("no patterns found")
	}
	top := pats[0]
	if top.Count < 7 {
		t.Errorf("top pattern count = %d, want >= 7", top.Count)
	}
	if len(top.Funcs) == 0 {
		t.Error("pattern must carry enclosing function names")
	}
	if !strings.Contains(top.Listing(), "BL @swift_release") &&
		!strings.Contains(top.Listing(), "ORRXrs") {
		t.Errorf("listing does not show the pattern:\n%s", top.Listing())
	}
	for i := 1; i < len(pats); i++ {
		if pats[i].Count > pats[i-1].Count {
			t.Fatal("patterns not sorted by count")
		}
	}
}

func TestCumulativeSavingsMonotone(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 7; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
			"ORRXrs $x0, $xzr, $x20",
			"BL @swift_release",
			"ORRXrs $x0, $xzr, $x21",
			"BL @swift_retain",
			fmt.Sprintf("MOVZXi $x1, #%d", i),
		))
	}
	p := mustParse(t, src.String())
	pats := Analyze(p, Options{})
	cum := CumulativeSavings(pats)
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatal("cumulative savings must be nondecreasing")
		}
	}
	hist := LengthHistogram(pats)
	total := 0
	for _, c := range hist {
		total += c
	}
	want := 0
	for _, p := range pats {
		want += p.Count
	}
	if total != want {
		t.Errorf("histogram total %d != candidate total %d", total, want)
	}
}

// Outlined function names must be unique across rounds.
func TestOutlinedNamesUnique(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 8; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
			"ORRXrs $x0, $xzr, $x20",
			"BL @swift_release",
			"ORRXrs $x0, $xzr, $x19",
			"BL @swift_retain",
			fmt.Sprintf("MOVZXi $x1, #%d", i),
		))
	}
	p := mustParse(t, src.String())
	outlineProg(t, p, 5)
	seen := map[string]bool{}
	for _, f := range p.Funcs {
		if seen[f.Name] {
			t.Fatalf("duplicate function name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

// Determinism: outlining the same program twice produces identical output.
func TestDeterminism(t *testing.T) {
	mk := func() *mir.Program {
		var src strings.Builder
		for i := 0; i < 10; i++ {
			src.WriteString(framedFunc(fmt.Sprintf("f%d", i),
				"ORRXrs $x0, $xzr, $x20",
				"BL @swift_release",
				"ORRXrs $x0, $xzr, $x21",
				"BL @swift_release",
				fmt.Sprintf("MOVZXi $x1, #%d", i%3),
			))
		}
		return mustParse(t, src.String())
	}
	a, b := mk(), mk()
	outlineProg(t, a, 5)
	outlineProg(t, b, 5)
	if a.String() != b.String() {
		t.Error("outlining is nondeterministic")
	}
}
