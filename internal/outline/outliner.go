package outline

import (
	"fmt"
	"sort"

	"outliner/internal/fault"
	"outliner/internal/isa"
	"outliner/internal/layout"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/par"
	"outliner/internal/profile"
	"outliner/internal/suffixtree"
	"outliner/internal/verify"
)

// Options configures the outliner.
type Options struct {
	// Rounds is the number of outlining passes (the paper's
	// -outline-repeat-count). 1 reproduces LLVM's single-pass greedy
	// behaviour; the paper ships 5.
	Rounds int
	// MinLength is the minimum candidate length in instructions (default 2:
	// single instructions can never be replaced profitably on a
	// fixed-width ISA).
	MinLength int
	// MinBenefit is the minimum byte saving for a pattern to be outlined
	// (default 1 — the paper's "at least one-byte size saving").
	MinBenefit int
	// FlatCostModel is an ablation switch: cost every candidate as if the
	// link register always had to be saved and restored, discarding the
	// strategy-specific costing (tail call / thunk / no-LR-save).
	FlatCostModel bool
	// FuncPrefix names created functions; default "OUTLINED_FUNCTION_".
	FuncPrefix string
	// Verify re-checks program invariants after every round.
	Verify bool
	// ExternSyms lists symbols that may be called without a definition
	// (runtime entry points); used only when Verify is set.
	ExternSyms map[string]bool
	// Parallelism bounds the workers used for candidate analysis (liveness
	// precomputation and candidate-set construction). 0 means one worker
	// per CPU, 1 is fully serial. The outliner's output is byte-identical
	// for every value: candidates are collected in suffix-tree order and
	// greedy selection stays serial.
	Parallelism int
	// Tracer receives per-round stage spans, counters, and one decision
	// remark per candidate set (selected or rejected, with the reason).
	// Telemetry is strictly observational — the transformed program is
	// byte-identical with Tracer set or nil.
	Tracer *obs.Tracer
	// TraceLane is the trace track outlining spans land on: 0 for
	// whole-program outlining on the main goroutine; per-module outlining
	// inside a parallel build passes its worker lane so concurrent rounds
	// render on separate tracks.
	TraceLane int
	// RemarkModule tags emitted remarks with the module being outlined
	// (empty for whole-program outlining).
	RemarkModule string
	// OnVerifyFailure selects what happens when Verify flags a violation
	// after a round: VerifyAbort (the default) fails the build with the
	// verifier's diagnostic; VerifyRollbackRound restores the pre-round
	// program and stops outlining with the rounds so far; and
	// VerifyDisableOutlining restores the program as it was before any
	// outlining. The degraded modes trade size for safety — the build
	// produces a correct, less-outlined image instead of failing.
	OnVerifyFailure string
	// Fault arms deterministic fault injection: an OutlineRound corruption
	// point fires after a round's rewrites (only when Verify is on, so the
	// damage is always caught) to exercise the verifier + rollback path.
	Fault *fault.Injector
	// Profile supplies execution counts from an instrumented run. With a
	// profile set, every candidate remark is annotated with the entry count
	// of the hottest function hosting an occurrence and a hot/cold verdict.
	Profile *profile.Profile
	// ColdOnly restricts extraction to cold code (the BOLT outliner's
	// --outliner-cold-only): occurrences hosted in a function whose profile
	// entry count reaches ColdThreshold are skipped, so hot paths are never
	// outlined. Gating is active only when all three of ColdOnly, a non-nil
	// Profile, and a positive ColdThreshold are present — any of them absent
	// leaves the outliner byte-identical to an unprofiled build.
	ColdOnly bool
	// ColdThreshold is the entry count at or above which a function counts
	// as hot (--outliner-cold-threshold). It also sets the remark verdict
	// boundary; when only annotating (no ColdOnly), a non-positive value
	// defaults to 1: any observed entry marks a function hot.
	ColdThreshold int64
	// Layout applies a profile-guided function-reordering policy (see
	// internal/layout) after the final round — the standalone driver's
	// (cmd/outline) hook for running outlining and layout in one call. The
	// pipeline leaves this empty and runs the pass itself on the final
	// linked program, so layout is never applied twice. "" and layout.None
	// leave the order untouched; active policies need Profile.
	Layout string
}

// Options.OnVerifyFailure values.
const (
	VerifyAbort            = "abort"
	VerifyRollbackRound    = "rollback-round"
	VerifyDisableOutlining = "disable-outlining"
)

func (o Options) withDefaults() Options {
	if o.MinLength == 0 {
		o.MinLength = 2
	}
	if o.MinBenefit == 0 {
		o.MinBenefit = 1
	}
	if o.FuncPrefix == "" {
		o.FuncPrefix = "OUTLINED_FUNCTION_"
	}
	if o.OnVerifyFailure == "" {
		o.OnVerifyFailure = VerifyAbort
	}
	return o
}

// RoundStats reports one outlining round (one column of the paper's
// Table II, except Table II reports cumulative values).
type RoundStats struct {
	Round             int
	SequencesOutlined int // candidates replaced with calls/branches
	FunctionsCreated  int
	OutlinedBytes     int // bytes consumed by the created functions
	BytesSaved        int // net code-size reduction achieved this round
}

// Stats aggregates all rounds. Cumulative* slices match Table II's rows:
// entry i holds the totals after round i+1.
type Stats struct {
	Rounds []RoundStats
}

// TotalSequences returns the cumulative number of outlined sequences.
func (s *Stats) TotalSequences() int {
	n := 0
	for _, r := range s.Rounds {
		n += r.SequencesOutlined
	}
	return n
}

// TotalFunctions returns the cumulative number of created functions.
func (s *Stats) TotalFunctions() int {
	n := 0
	for _, r := range s.Rounds {
		n += r.FunctionsCreated
	}
	return n
}

// TotalOutlinedBytes returns the cumulative bytes consumed by outlined
// functions.
func (s *Stats) TotalOutlinedBytes() int {
	n := 0
	for _, r := range s.Rounds {
		n += r.OutlinedBytes
	}
	return n
}

// strategy is how a candidate set is turned into an outlined function.
type strategy uint8

const (
	stratTailCall strategy = iota // sequence ends in RET: B to function
	stratThunk                    // sequence ends in BL: prefix + tail call
	stratPlain                    // sequence needs an added return
)

func (s strategy) String() string {
	switch s {
	case stratTailCall:
		return "tail-call"
	case stratThunk:
		return "thunk"
	default:
		return "plain"
	}
}

// candidate is one occurrence of a repeated sequence.
type candidate struct {
	start  int // position in the flattened string
	length int
	where  loc
	lrLive bool // LR holds a live value after the candidate
}

// candSet is a repeated sequence plus every (non-overlapping) occurrence.
type candSet struct {
	seq        []isa.Inst
	seqBytes   int
	strat      strategy
	hasCall    bool // any BL/BLR inside the sequence (excluding a thunk tail)
	readsSP    bool
	cands      []candidate
	frameBytes int // extra bytes in the outlined function beyond the sequence
	// ben caches benefit() so the greedy sort's comparator does not re-walk
	// the candidate list O(n log n) times; it is recomputed only after
	// occurrence pruning changes cands.
	ben int
	// flatCost pessimizes the benefit estimate (the cost-model ablation):
	// every candidate is costed as a full LR spill and every function as a
	// full frame, regardless of the strategy actually emitted.
	flatCost bool
	// execCount/hotness annotate the set's remark when a profile fed the
	// build: the entry count of the hottest function hosting any
	// (non-overlapping) occurrence, and its verdict against the threshold.
	execCount int64
	hotness   string
	// gated counts occurrences dropped by cold-only gating; it distinguishes
	// the "hot-function" rejection from "too-few-occurrences".
	gated int
}

// Outline runs repeated machine outlining over prog in place and returns
// per-round statistics. It is deterministic: identical inputs produce
// identical outputs, regardless of map iteration order.
func Outline(prog *mir.Program, opts Options) (*Stats, error) {
	opts = opts.withDefaults()
	tr := opts.Tracer
	stats := &Stats{}
	counter := 0
	var sc scratch
	// Snapshots for the degraded verify-failure modes, via the canonical mir
	// codec: preAll is the program before any outlining, preRound before the
	// current round. Only taken when a degraded mode could use them.
	degrade := opts.Verify && opts.OnVerifyFailure != VerifyAbort
	var preAll, preRound []byte
	if degrade {
		preAll = mir.EncodeProgram(nil, prog)
	}
	for round := 1; round <= opts.Rounds; round++ {
		if degrade {
			preRound = mir.EncodeProgram(preRound[:0], prog)
		}
		// One stage span per round, all named "machine-outline": stage
		// totals sum them, so repeated rounds (and per-module runs in the
		// default pipeline) report total time, not last-round time.
		sp := tr.StartStage("machine-outline", opts.TraceLane).Arg("round", round)
		rs, rems, err := outlineOnce(prog, opts, &counter, round, &sc)
		if err != nil {
			sp.End()
			return stats, fmt.Errorf("outline round %d: %w", round, err)
		}
		rs.Round = round
		stats.Rounds = append(stats.Rounds, rs)
		// The fault injector's OutlineRound corruption point fires only under
		// Verify, so the damage is detected by construction (dropping a new
		// function's terminator guarantees a fall-through violation) and
		// exercises exactly the verifier + rollback machinery below.
		if opts.Verify && len(sc.newFuncs) > 0 &&
			opts.Fault.MaybeCorruptPoint(fault.OutlineRound, fmt.Sprintf("%s/round:%d", opts.RemarkModule, round)) {
			corruptNewFunc(sc.newFuncs[0])
		}
		if opts.Verify {
			// The machine verifier runs after every round: a bad rewrite is
			// diagnosed at the instruction that broke, not at the eventual
			// output divergence.
			rep := verify.Program(prog, opts.ExternSyms)
			tr.Add("verify/functions", int64(rep.FuncsChecked))
			tr.Add("verify/violations", int64(len(rep.Violations)))
			if err := rep.Err(); err != nil {
				if degrade {
					sp.End()
					return rollback(prog, opts, stats, tr, round, err, preAll, preRound)
				}
				sp.End()
				return stats, fmt.Errorf("outline round %d broke the program: %w", round, err)
			}
		}
		sp.End()
		tr.EmitBatch(opts.FuncPrefix, rems)
		// "outline/rounds" counts executed rounds; diffing it across Counters
		// snapshots tells a consumer how many rounds one build actually ran
		// (the loop stops early at a fixed point).
		tr.Add("outline/rounds", 1)
		tr.Add(obs.RoundCounter(round, obs.RoundSequences), int64(rs.SequencesOutlined))
		tr.Add(obs.RoundCounter(round, obs.RoundFunctions), int64(rs.FunctionsCreated))
		tr.Add(obs.RoundCounter(round, obs.RoundOutlinedBytes), int64(rs.OutlinedBytes))
		tr.Add(obs.RoundCounter(round, obs.RoundBytesSaved), int64(rs.BytesSaved))
		tr.Add("outline/sequences", int64(rs.SequencesOutlined))
		tr.Add("outline/functions", int64(rs.FunctionsCreated))
		tr.Add("outline/outlined_bytes", int64(rs.OutlinedBytes))
		tr.Add("outline/bytes_saved", int64(rs.BytesSaved))
		if rs.SequencesOutlined == 0 {
			// Fixed point: later rounds cannot find anything either.
			break
		}
	}
	if opts.Layout != "" {
		if _, err := layout.Apply(prog, layout.Options{
			Policy:  opts.Layout,
			Profile: opts.Profile,
			Tracer:  tr,
		}); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// rollback implements the degraded OnVerifyFailure modes: restore prog from
// the relevant snapshot, drop the undone rounds' stats, record a counter and
// a remark, and stop outlining successfully — the build ships a correct,
// less-outlined program instead of failing.
func rollback(prog *mir.Program, opts Options, stats *Stats, tr *obs.Tracer, round int, verr error, preAll, preRound []byte) (*Stats, error) {
	snap := preRound
	if opts.OnVerifyFailure == VerifyDisableOutlining {
		snap = preAll
	}
	restored, _, err := mir.DecodeProgram(snap)
	if err != nil {
		// Unreachable in practice: we encoded the snapshot ourselves.
		return stats, fmt.Errorf("outline round %d: rollback snapshot: %w", round, err)
	}
	prog.ResetTo(restored)
	status := "rolled-back"
	if opts.OnVerifyFailure == VerifyDisableOutlining {
		stats.Rounds = stats.Rounds[:0]
		status = "outlining-disabled"
		tr.Add("outline/rounds_rolled_back", int64(round))
	} else {
		stats.Rounds = stats.Rounds[:len(stats.Rounds)-1]
		tr.Add("outline/rounds_rolled_back", 1)
	}
	tr.EmitBatch(opts.FuncPrefix, []obs.Remark{{
		Pass:   "machine-outliner",
		Status: status,
		Reason: verr.Error(),
		Round:  round,
		Module: opts.RemarkModule,
	}})
	return stats, nil
}

// corruptNewFunc is the OutlineRound fault payload: dropping the final
// instruction (the terminator) of a just-created outlined function makes
// control fall off the function end — damage the verifier detects
// unconditionally, so an armed corruption can never slip through to the
// image.
func corruptNewFunc(f *mir.Function) {
	for i := len(f.Blocks) - 1; i >= 0; i-- {
		b := f.Blocks[i]
		if n := len(b.Insts); n > 0 {
			b.Insts = b.Insts[:n-1]
			return
		}
	}
}

// candRemark records one candidate-set decision. occ is the occurrence
// count at decision time (sets rejected before occurrence collection pass
// the raw repeat count).
func candRemark(set *candSet, occ, round int, opts Options, status, reason, fn string) obs.Remark {
	return obs.Remark{
		Pass:        "machine-outliner",
		Status:      status,
		Reason:      reason,
		Round:       round,
		Module:      opts.RemarkModule,
		Function:    fn,
		PatternLen:  len(set.seq),
		Occurrences: occ,
		Benefit:     set.ben,
		Strategy:    set.strat.String(),
		ExecCount:   set.execCount,
		Hotness:     set.hotness,
	}
}

// repeatResult is one repeat's analysis outcome: a candidate set, or the
// reason it can never be outlined.
type repeatResult struct {
	set    *candSet
	reject string
}

// scratch holds outlineOnce's round-local state so round one's allocations
// serve every later round of the same Outline call: the flattened mapping
// (with its persistent instruction-intern table), the suffix-tree builder's
// arena, per-lane candidate buffers, and the block-splice buffer all carry
// over. Rounds shrink the program, so the first round's capacities are the
// high-water mark and later rounds allocate (almost) nothing.
type scratch struct {
	m        mapping
	stb      suffixtree.Builder
	repeats  []suffixtree.Repeat
	needLive []bool
	byRepeat []repeatResult
	sets     []*candSet
	used     []bool
	edits    []edit
	newFuncs []*mir.Function
	lanes    []laneScratch
	blockBuf []isa.Inst
}

// laneScratch is one analysis worker's reusable storage: the sorted-starts
// buffer, the occurrence staging buffer, and chunked arenas for the candidate
// sets and occurrence lists that outlive buildSet. Chunks are recycled across
// rounds (reset rewinds the cursors), so steady-state candidate analysis
// allocates nothing. Chunked (rather than appended) storage keeps previously
// returned pointers stable while the arena grows.
type laneScratch struct {
	starts  []int
	candTmp []candidate

	setChunks  [][]candSet
	si, sj     int
	candChunks [][]candidate
	ci, cj     int
}

const (
	setChunkLen  = 256
	candChunkLen = 4096
)

func (ls *laneScratch) reset() { ls.si, ls.sj, ls.ci, ls.cj = 0, 0, 0, 0 }

// newSet returns a zeroed candSet from the arena.
func (ls *laneScratch) newSet() *candSet {
	if ls.si == len(ls.setChunks) {
		ls.setChunks = append(ls.setChunks, make([]candSet, setChunkLen))
	}
	s := &ls.setChunks[ls.si][ls.sj]
	*s = candSet{}
	if ls.sj++; ls.sj == setChunkLen {
		ls.si, ls.sj = ls.si+1, 0
	}
	return s
}

// saveCands copies the staged occurrence list into the arena. The returned
// slice has exact capacity, so the greedy loop's in-place pruning
// (cands[:0] + append) can never write past it into a neighbour.
func (ls *laneScratch) saveCands(tmp []candidate) []candidate {
	n := len(tmp)
	if n == 0 {
		return nil
	}
	if n > candChunkLen {
		return append([]candidate(nil), tmp...)
	}
	if ls.ci < len(ls.candChunks) && candChunkLen-ls.cj < n {
		ls.ci, ls.cj = ls.ci+1, 0
	}
	if ls.ci == len(ls.candChunks) {
		ls.candChunks = append(ls.candChunks, make([]candidate, candChunkLen))
	}
	dst := ls.candChunks[ls.ci][ls.cj : ls.cj+n : ls.cj+n]
	copy(dst, tmp)
	ls.cj += n
	return dst
}

// zeroedBools returns a false-filled []bool of length n, reusing s's backing
// array when it is large enough.
func zeroedBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func outlineOnce(prog *mir.Program, opts Options, counter *int, round int, sc *scratch) (RoundStats, []obs.Remark, error) {
	tr := opts.Tracer
	remarks := tr.RemarksEnabled()
	var rs RoundStats
	var rems []obs.Remark
	sc.m.remap(prog)
	m := &sc.m
	if len(m.str) == 0 {
		return rs, nil, nil
	}
	tree := sc.stb.Build(m.str)
	tr.Add("outline/suffixtree/nodes", int64(tree.NodeCount()))

	// Collect every repeat first (suffix-tree order is deterministic), then
	// analyze candidates in parallel: liveness for every function touched
	// by an occurrence, then one candidate set per repeat. Both are
	// read-only over prog/m, so workers never interact; results land at
	// their repeat index, keeping the order the serial loop produced.
	if sc.repeats == nil {
		// Each reported repeat is a distinct internal suffix-tree node, so
		// the node count bounds the repeat count; sizing up front avoids the
		// append-regrow copies on the first (largest) round.
		sc.repeats = make([]suffixtree.Repeat, 0, tree.NodeCount())
	}
	repeats := sc.repeats[:0]
	tree.ForEachRepeat(opts.MinLength, 2, func(r suffixtree.Repeat) {
		repeats = append(repeats, r)
	})
	sc.repeats = repeats
	needLive := zeroedBools(sc.needLive, len(prog.Funcs))
	sc.needLive = needLive
	for _, r := range repeats {
		for _, st := range r.Starts {
			if l := m.locs[st]; l.fn >= 0 {
				needLive[l.fn] = true
			}
		}
	}
	live := mir.ComputeLivenessFuncs(prog, mir.DefaultExternLive, opts.Parallelism,
		func(i int) bool { return needLive[i] })
	liveness := func(fi int) *mir.Liveness { return live[fi] }

	tr.Add("outline/candidates/found", int64(len(repeats)))

	// hotFns marks the functions cold-only gating must protect. Computed per
	// round: earlier rounds' outlined functions appear in prog.Funcs but not
	// in the profile, so they count as cold and stay outlinable.
	var hotFns []bool
	if opts.ColdOnly && opts.Profile != nil && opts.ColdThreshold > 0 {
		hotFns = make([]bool, len(prog.Funcs))
		for fi, f := range prog.Funcs {
			hotFns[fi] = opts.Profile.Count(f.Name) >= opts.ColdThreshold
		}
	}

	spSensitive := spSensitiveFuncs(prog)
	if cap(sc.byRepeat) < len(repeats) {
		sc.byRepeat = make([]repeatResult, len(repeats))
	}
	byRepeat := sc.byRepeat[:len(repeats)]
	if lanes := par.Workers(opts.Parallelism, len(repeats)); cap(sc.lanes) < lanes {
		sc.lanes = make([]laneScratch, lanes)
	} else {
		sc.lanes = sc.lanes[:lanes]
		for i := range sc.lanes {
			sc.lanes[i].reset()
		}
	}
	par.DoLanes(opts.Parallelism, len(repeats), func(lane, i int) {
		set, reject := buildSet(prog, m, repeats[i], liveness, spSensitive, hotFns, opts, &sc.lanes[lane])
		byRepeat[i] = repeatResult{set, reject}
	})
	// Collect in repeat (suffix-tree) order: both the greedy input and the
	// remark stream stay deterministic for any worker count.
	sets := sc.sets[:0]
	gated := int64(0)
	for i, rr := range byRepeat {
		gated += int64(rr.set.gated)
		if rr.reject != "" {
			if remarks {
				occ := len(rr.set.cands)
				if occ == 0 {
					occ = len(repeats[i].Starts)
				}
				rems = append(rems, candRemark(rr.set, occ, round,
					opts, "rejected", rr.reject, ""))
			}
			continue
		}
		sets = append(sets, rr.set)
	}
	sc.sets = sets
	if gated > 0 {
		tr.Add("outline/profile/gated_occurrences", gated)
	}

	// Greedy: most beneficial first. Ties resolve to longer sequences, then
	// earliest occurrence, for determinism.
	sort.SliceStable(sets, func(i, j int) bool {
		bi, bj := sets[i].ben, sets[j].ben
		if bi != bj {
			return bi > bj
		}
		if len(sets[i].seq) != len(sets[j].seq) {
			return len(sets[i].seq) > len(sets[j].seq)
		}
		return sets[i].cands[0].start < sets[j].cands[0].start
	})

	used := zeroedBools(sc.used, len(m.str))
	sc.used = used
	edits := sc.edits[:0]
	newFuncs := sc.newFuncs[:0]
	for _, set := range sets {
		kept := set.cands[:0]
		for _, c := range set.cands {
			free := true
			for p := c.start; p < c.start+c.length; p++ {
				if used[p] {
					free = false
					break
				}
			}
			if free {
				kept = append(kept, c)
			}
		}
		set.cands = kept
		set.ben = set.benefit() // occurrence pruning changed cands
		if len(set.cands) < 2 {
			if remarks {
				rems = append(rems, candRemark(set, len(set.cands), round,
					opts, "rejected", "occurrences-overlap", ""))
			}
			continue
		}
		if set.ben < opts.MinBenefit {
			if remarks {
				rems = append(rems, candRemark(set, len(set.cands), round,
					opts, "rejected", "unprofitable-after-overlap", ""))
			}
			continue
		}
		name := fmt.Sprintf("%s%d", opts.FuncPrefix, *counter)
		*counter++
		fn := set.makeFunction(name)
		newFuncs = append(newFuncs, fn)
		for _, c := range set.cands {
			for p := c.start; p < c.start+c.length; p++ {
				used[p] = true
			}
			edits = append(edits, edit{where: c.where, length: c.length, repl: set.callSite(name, c)})
			rs.SequencesOutlined++
		}
		rs.FunctionsCreated++
		rs.OutlinedBytes += fn.CodeSize()
		rs.BytesSaved += set.ben
		if remarks {
			rems = append(rems, candRemark(set, len(set.cands), round,
				opts, "selected", "", name))
		}
	}
	tr.Add("outline/candidates/selected", int64(rs.FunctionsCreated))
	tr.Add("outline/candidates/rejected", int64(len(repeats)-rs.FunctionsCreated))

	applyEdits(prog, edits, &sc.blockBuf)
	for _, fn := range newFuncs {
		prog.AddFunc(fn)
	}
	sc.edits = edits
	sc.newFuncs = newFuncs
	return rs, rems, nil
}

// buildSet classifies one repeated substring into a costed candidate set.
// A non-empty reject reason means the set can never be profitably outlined;
// the partially-built set is still returned so the decision can be reported
// as a remark. spSensitive lists outlined functions whose execution depends
// on SP pointing at the original frame (see spSensitiveFuncs). ls is the
// calling worker's reusable storage: the returned set and its occurrence
// list live in ls's arenas (valid until its next reset), and the sorted
// occurrence list is staged in ls.starts — r.Starts aliases suffix-tree
// storage shared between repeats and must not be sorted in place.
func buildSet(prog *mir.Program, m *mapping, r suffixtree.Repeat, liveness func(int) *mir.Liveness, spSensitive map[string]bool, hotFns []bool, opts Options, ls *laneScratch) (*candSet, string) {
	seq := m.instsAt(prog, r.Starts[0], r.Length)
	set := ls.newSet()
	set.seq = seq
	for _, in := range seq {
		set.seqBytes += in.Size()
		if in.ReadsSP() {
			set.readsSP = true
		}
		if (in.Op == isa.BL || in.Op == isa.B) && spSensitive[in.Sym] {
			set.readsSP = true
		}
	}
	last := seq[len(seq)-1]
	for i, in := range seq {
		if in.IsCall() && !(i == len(seq)-1 && in.Op == isa.BL) {
			set.hasCall = true
		}
	}
	switch {
	case last.Op == isa.RET:
		set.strat = stratTailCall
		set.frameBytes = 0
	case last.Op == isa.BL && !set.hasCall:
		set.strat = stratThunk
		set.frameBytes = 0
	default:
		set.strat = stratPlain
		if last.IsCall() { // trailing BLR counts as an interior call
			set.hasCall = true
		}
		if set.hasCall {
			// The outlined function must preserve LR around its own calls:
			// STRXpre $x30 / LDRXpost $x30 / RET.
			set.frameBytes = 12
			if set.readsSP {
				// The LR spill moves SP under SP-relative accesses.
				return set, "sp-access-under-lr-spill"
			}
		} else {
			set.frameBytes = 4 // appended RET
		}
	}
	if opts.FlatCostModel {
		// Ablation: the emitted code keeps its (semantically required)
		// strategy, but profitability is judged as if every call site paid
		// a full LR spill and every outlined function a full frame.
		set.flatCost = true
	}

	// Sort and de-overlap occurrences (e.g. "AAAA" matching "AA" at 0,1,2).
	starts := append(ls.starts[:0], r.Starts...)
	sort.Ints(starts)
	ls.starts = starts
	tmp := ls.candTmp[:0]
	lastEnd := -1
	for _, st := range starts {
		if st < lastEnd {
			continue
		}
		c := candidate{start: st, length: r.Length, where: m.locs[st]}
		if opts.Profile != nil {
			// Annotate before gating: the remark reports the hottest host
			// even when gating then drops that occurrence.
			if n := opts.Profile.Count(prog.Funcs[c.where.fn].Name); n > set.execCount {
				set.execCount = n
			}
		}
		if hotFns != nil && hotFns[c.where.fn] {
			// Cold-only gating: never extract from a hot function — the
			// extra dynamic call would tax exactly the paths the profile
			// says dominate execution.
			set.gated++
			continue
		}
		if set.strat == stratPlain {
			lv := liveness(c.where.fn)
			endIdx := c.where.inst + r.Length - 1
			c.lrLive = lv.LiveAfter[c.where.block][endIdx].Has(isa.LR) || opts.FlatCostModel
			if c.lrLive && set.readsSP {
				// Saving LR at the call site moves SP under the candidate's
				// SP-relative accesses; skip this occurrence.
				continue
			}
		}
		tmp = append(tmp, c)
		lastEnd = st + r.Length
	}
	ls.candTmp = tmp
	set.cands = ls.saveCands(tmp)
	set.ben = set.benefit()
	if opts.Profile != nil {
		thr := opts.ColdThreshold
		if thr <= 0 {
			thr = 1
		}
		if set.execCount >= thr {
			set.hotness = "hot"
		} else {
			set.hotness = "cold"
		}
	}
	if len(set.cands) < 2 {
		if set.gated > 0 {
			return set, "hot-function"
		}
		return set, "too-few-occurrences"
	}
	if set.ben < opts.MinBenefit {
		return set, "unprofitable"
	}
	return set, ""
}

// callOverhead returns the bytes of the instructions replacing one candidate.
func (s *candSet) callOverhead(c candidate) int {
	switch s.strat {
	case stratTailCall, stratThunk:
		return 4
	default:
		if c.lrLive {
			return 12 // STRXpre $x30 + BL + LDRXpost $x30
		}
		return 4
	}
}

// benefit is the net byte saving of outlining every candidate in the set:
// the removed sequences minus the call sites minus the new function. Under
// the flat-cost ablation the estimate assumes worst-case overhead
// everywhere, mimicking an outliner without strategy-specific costing.
func (s *candSet) benefit() int {
	saved := 0
	for _, c := range s.cands {
		overhead := s.callOverhead(c)
		if s.flatCost {
			overhead = 12
		}
		saved += s.seqBytes - overhead
	}
	frame := s.frameBytes
	if s.flatCost {
		frame = 12
	}
	return saved - (s.seqBytes + frame)
}

// callSite builds the instructions that replace one candidate.
func (s *candSet) callSite(name string, c candidate) []isa.Inst {
	switch s.strat {
	case stratTailCall:
		return []isa.Inst{{Op: isa.B, Sym: name}}
	case stratThunk:
		return []isa.Inst{{Op: isa.BL, Sym: name}}
	default:
		if c.lrLive {
			return []isa.Inst{
				{Op: isa.STRpre, Rd: isa.LR, Rn: isa.SP, Imm: -16},
				{Op: isa.BL, Sym: name},
				{Op: isa.LDRpost, Rd: isa.LR, Rn: isa.SP, Imm: 16},
			}
		}
		return []isa.Inst{{Op: isa.BL, Sym: name}}
	}
}

// makeFunction builds the outlined function body.
func (s *candSet) makeFunction(name string) *mir.Function {
	var body []isa.Inst
	switch s.strat {
	case stratTailCall:
		body = append(body, s.seq...) // already ends in RET
	case stratThunk:
		body = append(body, s.seq[:len(s.seq)-1]...)
		body = append(body, isa.Inst{Op: isa.B, Sym: s.seq[len(s.seq)-1].Sym})
	default:
		if s.hasCall {
			body = append(body, isa.Inst{Op: isa.STRpre, Rd: isa.LR, Rn: isa.SP, Imm: -16})
			body = append(body, s.seq...)
			body = append(body, isa.Inst{Op: isa.LDRpost, Rd: isa.LR, Rn: isa.SP, Imm: 16})
		} else {
			body = append(body, s.seq...)
		}
		body = append(body, isa.Inst{Op: isa.RET})
	}
	return &mir.Function{
		Name:     name,
		Outlined: true,
		Blocks:   []*mir.Block{{Label: "entry", Insts: body}},
	}
}

// edit replaces length instructions at where with repl.
type edit struct {
	where  loc
	length int
	repl   []isa.Inst
}

// applyEdits splices all replacements. Edits never overlap, so each touched
// block is rebuilt exactly once: its edits (ascending) interleave with the
// untouched runs between them into buf, which is then copied back over the
// block. One pass per block replaces the per-edit tail copies that dominated
// allocation at scale.
func applyEdits(prog *mir.Program, edits []edit, buf *[]isa.Inst) {
	sort.Slice(edits, func(i, j int) bool {
		a, b := edits[i].where, edits[j].where
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		if a.block != b.block {
			return a.block < b.block
		}
		return a.inst < b.inst
	})
	for i := 0; i < len(edits); {
		j := i
		for j < len(edits) &&
			edits[j].where.fn == edits[i].where.fn &&
			edits[j].where.block == edits[i].where.block {
			j++
		}
		blk := prog.Funcs[edits[i].where.fn].Blocks[edits[i].where.block]
		out := (*buf)[:0]
		pos := 0
		for _, e := range edits[i:j] {
			out = append(out, blk.Insts[pos:e.where.inst]...)
			out = append(out, e.repl...)
			pos = e.where.inst + e.length
		}
		out = append(out, blk.Insts[pos:]...)
		*buf = out
		blk.Insts = append(blk.Insts[:0], out...)
		i = j
	}
}
