package outline

import (
	"sort"

	"outliner/internal/isa"
	"outliner/internal/mir"
)

// This file implements two of the paper's "future work" directions (§VIII):
//
//  1. semantic equivalence of machine-code sequences — approximated by
//     canonicalizing commutative operations so that trivially-equivalent
//     sequences become textually equal and therefore outlinable together;
//  3. layout optimization on the outlined code — outlined functions are
//     placed next to their heaviest static caller, shortening fetch
//     distance and improving instruction-cache locality.
//
// (Direction 2, interactions with instruction scheduling and register
// assignment, is exercised indirectly: the register allocator's choices are
// what create the Listing 1-vs-2 pattern split in the first place.)

// CanonicalizeCommutative rewrites commutative ALU operations into a
// canonical operand order (lower-numbered register first). Sequences that
// differ only in the order of commutative operands then map to the same
// instruction ids in the outliner's suffix tree. Returns how many
// instructions were rewritten.
func CanonicalizeCommutative(prog *mir.Program) int {
	n := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				switch in.Op {
				case isa.ADDrs, isa.ANDrs, isa.EORrs, isa.MUL, isa.ORRrs:
					// The ORR-based register move (Rn=XZR) must keep its
					// shape: it is the most common pattern and the zero
					// register belongs in the Rn slot.
					if in.Op == isa.ORRrs && (in.Rn == isa.XZR || in.Rm == isa.XZR) {
						if in.Rn != isa.XZR { // move written backwards
							in.Rn, in.Rm = in.Rm, in.Rn
							n++
						}
						continue
					}
					if in.Rn > in.Rm {
						in.Rn, in.Rm = in.Rm, in.Rn
						n++
					}
				}
			}
		}
	}
	return n
}

// LayoutOutlined reorders the program's functions so that every outlined
// function sits immediately after its heaviest static caller (callers
// keep their original relative order). Callees of equal weight follow the
// order they were created in, keeping the result deterministic. Returns the
// number of functions moved.
func LayoutOutlined(prog *mir.Program) int {
	// Static call counts: caller -> callee -> count (outlined callees only).
	outlined := make(map[string]bool)
	for _, f := range prog.Funcs {
		if f.Outlined {
			outlined[f.Name] = true
		}
	}
	if len(outlined) == 0 {
		return 0
	}
	type edge struct {
		caller string
		count  int
	}
	best := make(map[string]edge) // callee -> heaviest caller
	for _, f := range prog.Funcs {
		counts := make(map[string]int)
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if (in.Op == isa.BL || in.Op == isa.B) && outlined[in.Sym] {
					counts[in.Sym]++
				}
			}
		}
		for callee, c := range counts {
			e, ok := best[callee]
			if !ok || c > e.count {
				best[callee] = edge{caller: f.Name, count: c}
			}
		}
	}

	// Group outlined functions after their anchor caller. Outlined
	// functions whose heaviest caller is itself outlined chain transitively
	// onto that caller's anchor.
	anchorOf := func(name string) string {
		seen := map[string]bool{}
		for outlined[name] && !seen[name] {
			seen[name] = true
			e, ok := best[name]
			if !ok {
				return ""
			}
			name = e.caller
		}
		return name
	}
	attach := make(map[string][]*mir.Function)
	var moved int
	var keep []*mir.Function
	for _, f := range prog.Funcs {
		if !f.Outlined {
			keep = append(keep, f)
			continue
		}
		a := anchorOf(f.Name)
		if a == "" {
			keep = append(keep, f) // unreferenced; leave in place
			continue
		}
		attach[a] = append(attach[a], f)
		moved++
	}
	for _, fs := range attach {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	}
	var out []*mir.Function
	for _, f := range keep {
		out = append(out, f)
		out = append(out, attach[f.Name]...)
	}
	prog.Funcs = out
	prog.ReindexFuncs()
	return moved
}
