package outline

import (
	"fmt"
	"sort"
	"strings"

	"outliner/internal/isa"
	"outliner/internal/mir"
	"outliner/internal/suffixtree"
)

// Pattern is one unique repeated machine-code sequence, in the paper's
// terminology (§IV): "pattern" is the unique sequence, "candidates" are its
// instances. Produced by Analyze — the statistics-collection pass the paper
// inserts after machine-code generation to log repetitions.
type Pattern struct {
	Seq      []isa.Inst
	Length   int // instructions
	SeqBytes int
	Count    int // non-overlapping candidates in the whole program
	Benefit  int // bytes saved if this pattern alone were outlined
	Funcs    []string
}

// Analyze logs every repeated, profitably-outlinable pattern in the program,
// sorted by repetition frequency high-to-low (the ordering of the paper's
// Figure 5). The program is not modified.
func Analyze(prog *mir.Program, opts Options) []Pattern {
	opts = opts.withDefaults()
	m := mapProgram(prog)
	if len(m.str) == 0 {
		return nil
	}
	tree := suffixtree.New(m.str)

	liveCache := make(map[int]*mir.Liveness)
	liveness := func(fi int) *mir.Liveness {
		lv, ok := liveCache[fi]
		if !ok {
			lv = mir.ComputeLiveness(prog.Funcs[fi], mir.DefaultExternLive)
			liveCache[fi] = lv
		}
		return lv
	}

	spSensitive := spSensitiveFuncs(prog)
	var patterns []Pattern
	var ls laneScratch
	tree.ForEachRepeat(opts.MinLength, 2, func(r suffixtree.Repeat) {
		set, reject := buildSet(prog, m, r, liveness, spSensitive, nil, opts, &ls)
		if reject != "" {
			return
		}
		pat := Pattern{
			Seq:      append([]isa.Inst(nil), set.seq...),
			Length:   len(set.seq),
			SeqBytes: set.seqBytes,
			Count:    len(set.cands),
			Benefit:  set.benefit(),
		}
		const maxFuncs = 4
		for _, c := range set.cands {
			if len(pat.Funcs) >= maxFuncs {
				break
			}
			pat.Funcs = append(pat.Funcs, prog.Funcs[c.where.fn].Name)
		}
		patterns = append(patterns, pat)
	})

	sort.SliceStable(patterns, func(i, j int) bool {
		if patterns[i].Count != patterns[j].Count {
			return patterns[i].Count > patterns[j].Count
		}
		if patterns[i].Benefit != patterns[j].Benefit {
			return patterns[i].Benefit > patterns[j].Benefit
		}
		return patterns[i].Length > patterns[j].Length
	})
	return patterns
}

// Listing renders the pattern like the paper's Listings 1-8.
func (p Pattern) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; repeats %d times, %d instructions, saves %d bytes if outlined\n",
		p.Count, p.Length, p.Benefit)
	for _, in := range p.Seq {
		fmt.Fprintf(&b, "  %s\n", in)
	}
	return b.String()
}

// CumulativeSavings returns, for patterns sorted by per-pattern benefit
// (descending), the running total of bytes saved — the paper's Figure 7.
// The estimate treats patterns independently.
func CumulativeSavings(patterns []Pattern) []int {
	byBenefit := append([]Pattern(nil), patterns...)
	sort.SliceStable(byBenefit, func(i, j int) bool { return byBenefit[i].Benefit > byBenefit[j].Benefit })
	out := make([]int, len(byBenefit))
	total := 0
	for i, p := range byBenefit {
		total += p.Benefit
		out[i] = total
	}
	return out
}

// LengthHistogram counts candidates (pattern instances) per sequence length —
// the paper's Figure 8.
func LengthHistogram(patterns []Pattern) map[int]int {
	h := make(map[int]int)
	for _, p := range patterns {
		h[p.Length] += p.Count
	}
	return h
}
