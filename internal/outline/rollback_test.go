package outline

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"outliner/internal/fault"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/verify"
)

// multiRoundProgram outlines in at least two rounds (the long/short pattern
// from TestRepeatedOutliningBeatsSingleRound).
func multiRoundProgram(t *testing.T) *mir.Program {
	t.Helper()
	long := []string{
		"MOVZXi $x1, #1",
		"ORRXrs $x2, $xzr, $x1",
		"ADDXrs $x3, $x2, $x1",
		"EORXrs $x4, $x3, $x2",
		"ANDXrs $x5, $x4, $x3",
	}
	suffix := long[2:]
	var src strings.Builder
	for i := 0; i < 4; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("long%d", i),
			append(append([]string{}, long...), fmt.Sprintf("MOVZXi $x6, #%d", i))...))
	}
	for i := 0; i < 12; i++ {
		src.WriteString(framedFunc(fmt.Sprintf("short%d", i),
			append(append([]string{}, suffix...), fmt.Sprintf("MOVZXi $x7, #%d", 100+i))...))
	}
	return mustParse(t, src.String())
}

// corruptRound2 arms the OutlineRound fault point for whole-program round 2.
func corruptRound2() *fault.Injector {
	return fault.Exact(fault.At{Site: fault.OutlineRound, Key: "/round:2", Kind: fault.CorruptKind})
}

// TestRollbackRoundShedsTheBadRound: a corrupted round 2 under
// rollback-round yields exactly the clean one-round program — byte-for-byte
// via the canonical codec — with the rollback visible in stats, counters,
// and remarks, and no error.
func TestRollbackRoundShedsTheBadRound(t *testing.T) {
	want := multiRoundProgram(t)
	if _, err := Outline(want, Options{Rounds: 1, Verify: true, ExternSyms: externRT}); err != nil {
		t.Fatal(err)
	}

	got := multiRoundProgram(t)
	tr := obs.New()
	st, err := Outline(got, Options{
		Rounds: 5, Verify: true, ExternSyms: externRT,
		OnVerifyFailure: VerifyRollbackRound,
		Fault:           corruptRound2(),
		Tracer:          tr,
	})
	if err != nil {
		t.Fatalf("rollback mode returned error: %v", err)
	}
	a, b := mir.EncodeProgram(nil, got), mir.EncodeProgram(nil, want)
	if string(a) != string(b) {
		t.Fatalf("rolled-back program differs from the clean 1-round program:\n%s\nvs\n%s",
			got.String(), want.String())
	}
	if len(st.Rounds) != 1 {
		t.Fatalf("stats kept %d rounds, want 1 (round 2 shed): %+v", len(st.Rounds), st.Rounds)
	}
	if c := tr.Counters()["outline/rounds_rolled_back"]; c != 1 {
		t.Fatalf("outline/rounds_rolled_back = %d, want 1", c)
	}
	var rb *obs.Remark
	for i, r := range tr.Remarks() {
		if r.Status == "rolled-back" {
			rb = &tr.Remarks()[i]
		}
	}
	if rb == nil || rb.Round != 2 || !strings.Contains(rb.Reason, "violation") {
		t.Fatalf("rollback remark missing or wrong: %+v", rb)
	}
}

// TestDisableOutliningRestoresOriginal: disable-outlining rolls all the way
// back to the never-outlined program.
func TestDisableOutliningRestoresOriginal(t *testing.T) {
	p := multiRoundProgram(t)
	before := p.String()
	tr := obs.New()
	st, err := Outline(p, Options{
		Rounds: 5, Verify: true, ExternSyms: externRT,
		OnVerifyFailure: VerifyDisableOutlining,
		Fault:           corruptRound2(),
		Tracer:          tr,
	})
	if err != nil {
		t.Fatalf("disable-outlining returned error: %v", err)
	}
	if p.String() != before {
		t.Fatal("program not restored to its pre-outlining form")
	}
	if len(st.Rounds) != 0 {
		t.Fatalf("stats kept %d rounds, want 0", len(st.Rounds))
	}
	if c := tr.Counters()["outline/rounds_rolled_back"]; c != 2 {
		t.Fatalf("outline/rounds_rolled_back = %d, want 2 (both rounds undone)", c)
	}
}

// TestAbortModeStillFails: the default mode reports the corrupted round as a
// typed verifier error naming the round.
func TestAbortModeStillFails(t *testing.T) {
	p := multiRoundProgram(t)
	_, err := Outline(p, Options{
		Rounds: 5, Verify: true, ExternSyms: externRT,
		Fault: corruptRound2(),
	})
	var ve *verify.Error
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want a wrapped *verify.Error", err)
	}
	if !strings.Contains(err.Error(), "round 2") {
		t.Fatalf("error does not name the round: %v", err)
	}
}

// TestRollbackWithoutFaultIsFree: with no verifier failure the degraded
// modes change nothing — same program, same stats as abort mode.
func TestRollbackWithoutFaultIsFree(t *testing.T) {
	base := multiRoundProgram(t)
	stBase, err := Outline(base, Options{Rounds: 5, Verify: true, ExternSyms: externRT})
	if err != nil {
		t.Fatal(err)
	}
	p := multiRoundProgram(t)
	st, err := Outline(p, Options{
		Rounds: 5, Verify: true, ExternSyms: externRT,
		OnVerifyFailure: VerifyRollbackRound,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != base.String() {
		t.Fatal("rollback-round mode changed a clean build's output")
	}
	if len(st.Rounds) != len(stBase.Rounds) {
		t.Fatalf("stats diverged: %d vs %d rounds", len(st.Rounds), len(stBase.Rounds))
	}
}
