package outline

import (
	"fmt"
	"strings"
	"testing"

	"outliner/internal/isa"
	"outliner/internal/mir"
)

func TestCanonicalizeCommutative(t *testing.T) {
	src := `
func @f {
entry:
  ADDXrs $x0, $x3, $x1
  ADDXrs $x2, $x1, $x3
  SUBXrs $x4, $x3, $x1
  ORRXrs $x5, $x2, $xzr
  ORRXrs $x6, $xzr, $x2
  RET
}
`
	p := mustParse(t, src)
	n := CanonicalizeCommutative(p)
	insts := p.Func("f").Blocks[0].Insts
	// Both ADDs now read ($x1, $x3).
	if insts[0].Rn != isa.X1 || insts[0].Rm != isa.X3 {
		t.Errorf("add 1 not canonical: %v", insts[0])
	}
	if insts[1].Rn != isa.X1 || insts[1].Rm != isa.X3 {
		t.Errorf("add 2 not canonical: %v", insts[1])
	}
	// SUB is not commutative and must be untouched.
	if insts[2].Rn != isa.X3 || insts[2].Rm != isa.X1 {
		t.Errorf("sub was rewritten: %v", insts[2])
	}
	// The backwards move is normalized to the canonical ORR move form.
	if !insts[3].IsMoveRR() || insts[3].Rm != isa.X2 {
		t.Errorf("backwards move not normalized: %v", insts[3])
	}
	if !insts[4].IsMoveRR() {
		t.Errorf("canonical move was disturbed: %v", insts[4])
	}
	if n != 2 {
		t.Errorf("rewrites = %d, want 2", n)
	}
}

// Canonicalization exposes matches the plain outliner misses.
func TestCanonicalizationUnlocksOutlining(t *testing.T) {
	mk := func() *mir.Program {
		var src strings.Builder
		// Same computation with flipped commutative operands per function.
		for i := 0; i < 6; i++ {
			a, b := "$x1", "$x2"
			if i%2 == 1 {
				a, b = b, a
			}
			src.WriteString(fmt.Sprintf(`
func @f%d {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ADDXrs $x3, %[2]s, %[3]s
  EORXrs $x4, %[3]s, %[2]s
  ANDXrs $x5, %[2]s, %[3]s
  MULXrr $x6, %[3]s, %[2]s
  MOVZXi $x7, #%[1]d
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`, 100+i, a, b))
		}
		return mustParse(t, src.String())
	}

	plain := mk()
	outlineProg(t, plain, 3)

	canon := mk()
	CanonicalizeCommutative(canon)
	outlineProg(t, canon, 3)

	if canon.CodeSize() >= plain.CodeSize() {
		t.Errorf("canonicalization did not unlock savings: %d vs %d",
			canon.CodeSize(), plain.CodeSize())
	}
}

func TestLayoutOutlined(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 6; i++ {
		src.WriteString(fmt.Sprintf(`
func @h%d {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ORRXrs $x0, $xzr, $x19
  BL @swift_release
  ORRXrs $x0, $xzr, $x20
  BL @swift_release
  MOVZXi $x1, #%d
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`, i, i))
	}
	p := mustParse(t, src.String())
	outlineProg(t, p, 3)

	moved := LayoutOutlined(p)
	if moved == 0 {
		t.Fatal("no outlined functions moved")
	}
	if err := p.Verify(externRT); err != nil {
		t.Fatalf("layout broke the program: %v", err)
	}
	// Every outlined function must directly follow a function that calls it
	// (or follow a chain member attached to that caller).
	idx := map[string]int{}
	for i, f := range p.Funcs {
		idx[f.Name] = i
	}
	for _, f := range p.Funcs {
		if !f.Outlined {
			continue
		}
		i := idx[f.Name]
		if i == 0 {
			t.Errorf("outlined %s placed first", f.Name)
		}
	}
	// Determinism.
	q := mustParse(t, src.String())
	outlineProg(t, q, 3)
	LayoutOutlined(q)
	if p.String() != q.String() {
		t.Error("layout is nondeterministic")
	}
}

func TestLayoutNoOutlinedIsNoop(t *testing.T) {
	p := mustParse(t, `
func @a {
entry:
  RET
}
`)
	if moved := LayoutOutlined(p); moved != 0 {
		t.Errorf("moved %d in a program without outlined functions", moved)
	}
}
