package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// traceEvent is one record of the Chrome trace-event format ("X" = complete
// event, "M" = metadata). See the Trace Event Format spec; Perfetto and
// chrome://tracing both load it.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`  // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders every completed span as Chrome trace-event JSON. Track
// (tid) 0 is the main goroutine; tid n ≥ 1 is worker lane n of whichever
// internal/par pool was running — the pools render as real lanes in
// Perfetto. Events on one track are well-nested by construction: each lane
// runs one worker at a time, and a worker's spans strictly contain the spans
// it opens beneath them.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	events := append([]event(nil), t.events...)
	t.mu.Unlock()

	tids := map[int]bool{}
	for _, e := range events {
		tids[e.tid] = true
	}
	sortedTids := make([]int, 0, len(tids))
	for tid := range tids {
		sortedTids = append(sortedTids, tid)
	}
	sort.Ints(sortedTids)

	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "outliner build"},
	})
	for _, tid := range sortedTids {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	// Sort spans by start time so the file reads chronologically; ties put
	// the longer (enclosing) span first, which keeps viewers' nesting
	// heuristics happy.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].start != events[j].start {
			return events[i].start < events[j].start
		}
		return events[i].dur > events[j].dur
	})
	for _, e := range events {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: e.name, Ph: "X", Pid: 1, Tid: e.tid,
			Ts:   float64(e.start.Nanoseconds()) / 1e3,
			Dur:  float64(e.dur.Nanoseconds()) / 1e3,
			Args: e.args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteTraceFile writes the trace to path.
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
