package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Counter names the outliner emits per round; RoundCounter builds them so
// the summary, the fig12 experiment, and the outliner itself agree on the
// schema.
const (
	RoundSequences     = "sequences"
	RoundFunctions     = "functions"
	RoundOutlinedBytes = "outlined_bytes"
	RoundBytesSaved    = "bytes_saved"
)

// RoundCounter returns the counter name for one per-round outlining metric,
// e.g. RoundCounter(3, RoundBytesSaved) = "outline/round3/bytes_saved".
func RoundCounter(round int, metric string) string {
	return fmt.Sprintf("outline/round%d/%s", round, metric)
}

// WriteSummary renders the human-readable end-of-build report: stage times,
// counter totals, and the per-round outlining convergence table.
func (t *Tracer) WriteSummary(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "telemetry disabled")
		return err
	}
	totals := t.StageTotals()
	counters := t.Counters()

	fmt.Fprintln(w, "== build summary ==")
	if len(totals) > 0 {
		fmt.Fprintln(w, "\nstage times (same-name stages summed across modules and rounds):")
		rows := [][]string{{"stage", "total"}}
		for _, k := range sortedCounterKeys(totals) {
			rows = append(rows, []string{k, totals[k].Round(time.Microsecond).String()})
		}
		writeTable(w, rows)
	}

	// Per-round convergence: every round r with any outline/round<r>/ key.
	maxRound := 0
	for name := range counters {
		var r int
		var metric string
		if n, _ := fmt.Sscanf(name, "outline/round%d/%s", &r, &metric); n == 2 && r > maxRound {
			maxRound = r
		}
	}
	if maxRound > 0 {
		fmt.Fprintln(w, "\noutlining convergence (per round):")
		rows := [][]string{{"round", "sequences", "functions", "outlined bytes", "bytes saved"}}
		for r := 1; r <= maxRound; r++ {
			rows = append(rows, []string{
				fmt.Sprintf("%d", r),
				fmt.Sprintf("%d", counters[RoundCounter(r, RoundSequences)]),
				fmt.Sprintf("%d", counters[RoundCounter(r, RoundFunctions)]),
				fmt.Sprintf("%d", counters[RoundCounter(r, RoundOutlinedBytes)]),
				fmt.Sprintf("%d", counters[RoundCounter(r, RoundBytesSaved)]),
			})
		}
		writeTable(w, rows)
	}

	// The machine-verifier scoreboard: pass counts accumulate across every
	// stage and outlining round that ran the verifier.
	if fn, ok := counters["verify/functions"]; ok {
		fmt.Fprintf(w, "\nverified %d functions, %d violations\n",
			fn, counters["verify/violations"])
	}

	// The incremental-cache scoreboard, present whenever a build probed the
	// cache (-cache-dir was set).
	if probes := counters["cache/probes"]; probes > 0 {
		hits := counters["cache/hits"]
		fmt.Fprintf(w, "\ncache: %d probes, %d hits, %d misses (%.1f%% hit rate), "+
			"%d bytes read, %d bytes written\n",
			probes, hits, counters["cache/misses"],
			100*float64(hits)/float64(probes),
			counters["cache/bytes_read"], counters["cache/bytes_written"])
		if ns := counters["cache/key_hash_ns"]; ns > 0 {
			fmt.Fprintf(w, "cache keys: %s hashing sources and interface digests\n",
				time.Duration(ns).Round(time.Microsecond))
		}
		// Per-tier hit attribution (cache/tier/<tier>/hits): which tier —
		// memory, disk, or a remote shard — actually served each hit.
		var tiers []string
		for name, v := range counters {
			if v > 0 && strings.HasPrefix(name, "cache/tier/") && strings.HasSuffix(name, "/hits") {
				tiers = append(tiers, name)
			}
		}
		if len(tiers) > 0 {
			sort.Strings(tiers)
			fmt.Fprintln(w, "cache hits by tier:")
			rows := [][]string{{"tier", "hits"}}
			for _, k := range tiers {
				tier := strings.TrimSuffix(strings.TrimPrefix(k, "cache/tier/"), "/hits")
				rows = append(rows, []string{tier, fmt.Sprintf("%d", counters[k])})
			}
			writeTable(w, rows)
		}
	}

	// The single-flight scoreboard, present in service mode: stage
	// computations actually executed vs. builds that consumed another
	// in-flight build's result.
	if computes, deduped := counters["flight/computes"], counters["flight/deduped"]; computes > 0 || deduped > 0 {
		fmt.Fprintf(w, "\nsingle-flight: %d stage computes, %d deduped "+
			"(llir %d/%d, machine %d/%d)\n",
			computes, deduped,
			counters["flight/llir/computes"], counters["flight/llir/deduped"],
			counters["flight/machine/computes"], counters["flight/machine/deduped"])
	}

	// The resilience scoreboard: what the build survived or degraded over —
	// rolled-back outlining rounds, retried/failed cache I/O, recovered
	// worker panics, keep-going module failures, and (under -fault-seed)
	// every injected fault by site. Absent entirely on an untroubled build.
	var resilience []string
	for name, v := range counters {
		if v == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(name, "fault/"),
			name == "outline/rounds_rolled_back",
			name == "build/keep_going_errors",
			name == "cache/retries",
			name == "cache/remove_failed",
			name == "cache/io_errors",
			name == "cache/remote_errors",
			name == "cache/corrupt":
			resilience = append(resilience, name)
		}
	}
	if len(resilience) > 0 {
		sort.Strings(resilience)
		fmt.Fprintln(w, "\nresilience (faults survived, degradations taken):")
		rows := [][]string{{"event", "count"}}
		for _, k := range resilience {
			rows = append(rows, []string{k, fmt.Sprintf("%d", counters[k])})
		}
		writeTable(w, rows)
	}

	general := make([]string, 0, len(counters))
	for name := range counters {
		if !strings.HasPrefix(name, "outline/round") {
			general = append(general, name)
		}
	}
	if len(general) > 0 {
		sort.Strings(general)
		fmt.Fprintln(w, "\ncounters:")
		rows := [][]string{{"counter", "value"}}
		for _, k := range general {
			rows = append(rows, []string{k, fmt.Sprintf("%d", counters[k])})
		}
		writeTable(w, rows)
	}

	if n := len(t.Remarks()); n > 0 {
		selected := int64(0)
		for _, r := range t.Remarks() {
			if r.Status == "selected" {
				selected++
			}
		}
		fmt.Fprintf(w, "\nremarks: %d candidate decisions (%d selected, %d rejected)\n",
			n, selected, int64(n)-selected)
	}
	return nil
}

func sortedCounterKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeTable renders rows with aligned columns (two-space gutters).
func writeTable(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range rows {
		var b strings.Builder
		b.WriteString("  ")
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}
