package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Remark is one outliner candidate decision, in the spirit of LLVM's
// optimization remarks (-pass-remarks / -fsave-optimization-record): the
// machine-readable record of why the greedy outliner accepted or rejected a
// repeated sequence. One remark is emitted per candidate set per round, so
// the stream reconstructs the entire selection process — the data behind the
// paper's Figure 12 / Table II style analysis.
type Remark struct {
	// Pass identifies the emitting pass ("machine-outliner").
	Pass string `json:"pass"`
	// Status is "selected" or "rejected".
	Status string `json:"status"`
	// Reason explains a rejection (empty when selected):
	// "sp-access-under-lr-spill", "too-few-occurrences", "unprofitable",
	// "occurrences-overlap", "unprofitable-after-overlap", "hot-function".
	Reason string `json:"reason,omitempty"`
	// Round is the 1-based repeated-outlining round.
	Round int `json:"round"`
	// Module scopes per-module outlining in the default pipeline (empty for
	// whole-program outlining).
	Module string `json:"module,omitempty"`
	// Function is the created outlined function (selected candidates only).
	Function string `json:"function,omitempty"`
	// PatternLen is the candidate sequence length in instructions.
	PatternLen int `json:"patternLen"`
	// Occurrences is the number of (non-overlapping) instances considered.
	Occurrences int `json:"occurrences"`
	// Benefit is the computed net byte saving of outlining every occurrence
	// (0 when costing was never reached).
	Benefit int `json:"benefit"`
	// Strategy is the emission strategy ("tail-call", "thunk", "plain";
	// empty when classification was never reached).
	Strategy string `json:"strategy,omitempty"`
	// ExecCount is the execution profile's entry count for the hottest
	// function hosting an occurrence of this candidate. Present only when a
	// profile fed the build (-profile-in).
	ExecCount int64 `json:"execCount,omitempty"`
	// Hotness is the profile verdict for the candidate: "hot" when ExecCount
	// meets the cold threshold, "cold" otherwise. Empty without a profile.
	Hotness string `json:"hotness,omitempty"`

	// The fields below are emitted by the "function-layout" pass (one remark
	// per cluster-merge decision); the outliner leaves them zero.
	//
	// Caller and Function name the call edge driving the decision (Function
	// doubles as the callee slot). Cluster is the 0-based id of the cluster
	// the merge extended, EdgeWeight the execution-weighted call-edge
	// frequency that ranked the edge, and Page the 0-based code page the
	// callee's entry landed on in the final layout (selected remarks only).
	Caller     string `json:"caller,omitempty"`
	Cluster    int    `json:"cluster,omitempty"`
	EdgeWeight int64  `json:"edgeWeight,omitempty"`
	Page       int    `json:"page,omitempty"`
}

// remarkBatch is the atomic emission unit: every remark of one
// outline.Outline call round, tagged with a deterministic origin key.
// Batches from concurrent per-module outliner runs interleave in completion
// order, so WriteRemarks re-sorts batches by origin (stably, preserving
// in-batch order) to make the stream deterministic for a given build.
type remarkBatch struct {
	origin string
	recs   []Remark
}

// EmitBatch records a group of remarks atomically under a deterministic
// origin key (the outliner uses its function-name prefix). Dropped by
// timing-only tracers.
func (t *Tracer) EmitBatch(origin string, recs []Remark) {
	if t == nil || !t.collect || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	t.batches = append(t.batches, remarkBatch{origin: origin, recs: append([]Remark(nil), recs...)})
	t.mu.Unlock()
}

// Remarks returns every remark in deterministic order: batches sorted by
// origin (stable), in-batch order preserved.
func (t *Tracer) Remarks() []Remark {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	batches := append([]remarkBatch(nil), t.batches...)
	t.mu.Unlock()
	sort.SliceStable(batches, func(i, j int) bool { return batches[i].origin < batches[j].origin })
	var out []Remark
	for _, b := range batches {
		out = append(out, b.recs...)
	}
	return out
}

// WriteRemarks writes the remark stream as JSONL (one JSON object per line),
// in the deterministic order of Remarks.
func (t *Tracer) WriteRemarks(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Remarks() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRemarksFile writes the remark stream to path.
func (t *Tracer) WriteRemarksFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteRemarks(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRemarks parses a JSONL remark stream (the round-trip inverse of
// WriteRemarks).
func ReadRemarks(r io.Reader) ([]Remark, error) {
	var out []Remark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Remark
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: remarks line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
