// Package obs is the build pipeline's measurement substrate: hierarchical
// spans exported as Chrome trace-event JSON (viewable in Perfetto or
// chrome://tracing), named counters, and an LLVM-optimization-remarks-style
// stream of outliner candidate decisions.
//
// The paper's analysis (Figures 5-8, 12, 13; Table II) was only possible
// because LLVM's remarks machinery records what the toolchain actually did;
// this package plays the same role for the reproduction. Everything is
// concurrency-safe — spans and counters are emitted from the worker pools of
// internal/par — and everything is strictly observational: a Tracer never
// influences compilation, so builds are byte-identical with telemetry on,
// off, or absent (a nil *Tracer is a valid no-op receiver for every method).
//
// Three collection levels exist:
//
//   - nil *Tracer: every method is a no-op.
//   - Ensure(nil): a timing-only collector. Stage spans are recorded (they
//     are how pipeline.Result.Timings is derived) but worker spans,
//     counters, and remarks are dropped. This is what the pipeline runs
//     with when no telemetry was requested; its overhead is a handful of
//     time.Now calls per build stage.
//   - New / NewWith: full collection, optionally including per-function
//     codegen spans (Config.FineSpans) and per-stage runtime.ReadMemStats
//     allocation deltas (Config.MemStats).
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Config tunes what a full Tracer collects beyond spans, counters, and
// remarks.
type Config struct {
	// FineSpans additionally records high-volume spans: one per function in
	// code generation. Useful for trace inspection; off by default because a
	// whole-program build can have thousands of functions.
	FineSpans bool
	// MemStats records a runtime.ReadMemStats allocation delta for every
	// stage span, surfaced as "mem/<stage>/alloc_bytes" counters. Deltas are
	// process-global, so concurrent stages attribute allocation
	// approximately.
	MemStats bool
}

// Tracer collects spans, counters, and remarks for one or more builds. All
// methods are safe for concurrent use and safe on a nil receiver.
type Tracer struct {
	start time.Time

	collect bool // worker spans, counters, remarks
	fine    bool // per-function spans
	mem     bool // per-stage memstats deltas

	mu       sync.Mutex
	events   []event
	counters map[string]int64
	batches  []remarkBatch
}

// event is one completed span.
type event struct {
	name  string
	tid   int // trace track: 0 = main, 1+n = worker lane n
	start time.Duration
	dur   time.Duration
	stage bool
	args  map[string]any
}

// New returns a Tracer with full collection (spans, counters, remarks) and
// default Config.
func New() *Tracer { return NewWith(Config{}) }

// NewWith returns a Tracer with full collection tuned by cfg.
func NewWith(cfg Config) *Tracer {
	return &Tracer{
		start:    time.Now(),
		collect:  true,
		fine:     cfg.FineSpans,
		mem:      cfg.MemStats,
		counters: map[string]int64{},
	}
}

// Ensure returns t unchanged when non-nil; otherwise it returns a
// timing-only collector (stage spans recorded, everything else dropped).
// The pipeline calls it so Result.Timings is always available while the
// disabled-telemetry path stays near-free.
func Ensure(t *Tracer) *Tracer {
	if t != nil {
		return t
	}
	return &Tracer{start: time.Now()}
}

// Enabled reports whether t records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// RemarksEnabled reports whether Emit/EmitBatch would record remarks;
// callers use it to skip building remark records entirely.
func (t *Tracer) RemarksEnabled() bool { return t != nil && t.collect }

// FineEnabled reports whether high-volume spans are being collected.
func (t *Tracer) FineEnabled() bool { return t != nil && t.fine }

// Span is an in-flight interval. End completes it. A nil *Span (from a
// disabled Tracer) is valid: End and Arg are no-ops.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	stage bool
	start time.Duration
	args  map[string]any
	alloc uint64
}

// StartStage opens a stage span: a top-level pipeline phase whose durations
// are summed by name into StageTotals (and hence pipeline.Result.Timings).
// Stage spans are recorded by every non-nil Tracer, including timing-only
// ones. lane is the trace track (0 = main; worker code passes its 1-based
// lane so concurrent stages render on separate tracks and stay well-nested).
func (t *Tracer) StartStage(name string, lane int) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, tid: lane, stage: true, start: time.Since(t.start)}
	if t.mem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.alloc = ms.TotalAlloc
	}
	return s
}

// StartSpan opens a regular (non-stage) span on the given lane. Dropped by
// timing-only tracers.
func (t *Tracer) StartSpan(name string, lane int) *Span {
	if t == nil || !t.collect {
		return nil
	}
	return &Span{t: t, name: name, tid: lane, start: time.Since(t.start)}
}

// StartFine opens a high-volume span (per-function codegen); recorded only
// when Config.FineSpans was set.
func (t *Tracer) StartFine(name string, lane int) *Span {
	if t == nil || !t.fine {
		return nil
	}
	return &Span{t: t, name: name, tid: lane, start: time.Since(t.start)}
}

// Arg attaches a key/value rendered into the trace event's args. Returns s
// for chaining.
func (s *Span) Arg(k string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[k] = v
	return s
}

// End completes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	dur := time.Since(t.start) - s.start
	if s.stage && t.mem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		t.Add("mem/"+s.name+"/alloc_bytes", int64(ms.TotalAlloc-s.alloc))
	}
	t.mu.Lock()
	t.events = append(t.events, event{
		name: s.name, tid: s.tid, start: s.start, dur: dur,
		stage: s.stage, args: s.args,
	})
	t.mu.Unlock()
}

// Add increments the named counter by delta. Counters are dropped by
// timing-only tracers.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil || !t.collect {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Set overwrites the named counter (gauge semantics).
func (t *Tracer) Set(name string, v int64) {
	if t == nil || !t.collect {
		return
	}
	t.mu.Lock()
	t.counters[name] = v
	t.mu.Unlock()
}

// Counter returns the named counter's current value.
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Counters returns a snapshot copy of every counter. Diffing two snapshots
// scopes counters to one build when a Tracer is shared across builds.
func (t *Tracer) Counters() map[string]int64 {
	out := map[string]int64{}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Mark returns a position in the event stream; StageTotalsSince(mark) sums
// only spans completed after it. Builds take a mark on entry so a shared
// Tracer still yields per-build timings.
func (t *Tracer) Mark() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// StageTotalsSince sums the durations of stage spans completed after mark,
// keyed by span name. Repeated stages — one "machine-outline" span per
// outlining round, one per module in the default pipeline — accumulate into
// one well-defined total. Concurrent stages sum their per-worker time, so a
// total can exceed the build's wall clock.
func (t *Tracer) StageTotalsSince(mark int) map[string]time.Duration {
	out := map[string]time.Duration{}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if mark < 0 || mark > len(t.events) {
		mark = 0
	}
	for _, e := range t.events[mark:] {
		if e.stage {
			out[e.name] += e.dur
		}
	}
	return out
}

// StageTotals sums every stage span the Tracer has seen.
func (t *Tracer) StageTotals() map[string]time.Duration { return t.StageTotalsSince(0) }
