package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestNilTracerNoop: every method must be callable on a nil Tracer and nil
// Span — the disabled-telemetry path of the pipeline.
func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.StartStage("x", 0)
	sp.Arg("k", 1)
	sp.End()
	tr.StartSpan("y", 1).End()
	tr.StartFine("z", 2).End()
	tr.Add("c", 1)
	tr.Set("g", 2)
	tr.EmitBatch("o", []Remark{{Pass: "p"}})
	if tr.Counter("c") != 0 || len(tr.Counters()) != 0 || len(tr.Remarks()) != 0 {
		t.Fatal("nil tracer recorded something")
	}
	if got := tr.StageTotals(); len(got) != 0 {
		t.Fatalf("nil tracer stage totals: %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if tr.Enabled() || tr.RemarksEnabled() || tr.FineEnabled() {
		t.Fatal("nil tracer claims to be enabled")
	}
}

// TestEnsureTimingOnly: Ensure(nil) records stage spans (Timings need them)
// but drops counters, remarks, and worker spans.
func TestEnsureTimingOnly(t *testing.T) {
	tr := Ensure(nil)
	if !tr.Enabled() {
		t.Fatal("Ensure(nil) disabled")
	}
	if Ensure(tr) != tr {
		t.Fatal("Ensure(non-nil) must return its argument")
	}
	tr.StartStage("llc", 0).End()
	tr.StartSpan("module a", 1).End()
	tr.Add("c", 5)
	tr.EmitBatch("o", []Remark{{Pass: "p"}})
	if got := tr.StageTotals(); len(got) != 1 {
		t.Fatalf("want 1 stage total, got %v", got)
	}
	if tr.Counter("c") != 0 || len(tr.Remarks()) != 0 {
		t.Fatal("timing-only tracer recorded counters or remarks")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, e := range tf.TraceEvents {
		if e["ph"] == "X" {
			spans++
		}
	}
	if spans != 1 {
		t.Fatalf("want 1 recorded span, got %d", spans)
	}
}

// TestStageTotalsSum is the regression test for the Timings accumulation
// fix: repeated stages with the same name (outlining rounds, per-module
// stages) must sum, not last-write-win; Mark scopes totals to one build.
func TestStageTotalsSum(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		sp := tr.StartStage("machine-outline", 0)
		time.Sleep(2 * time.Millisecond)
		sp.End()
	}
	total := tr.StageTotals()["machine-outline"]
	if total < 6*time.Millisecond {
		t.Fatalf("same-name stages did not sum: total %v < 6ms", total)
	}
	mark := tr.Mark()
	sp := tr.StartStage("machine-outline", 0)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	since := tr.StageTotalsSince(mark)["machine-outline"]
	if since >= total {
		t.Fatalf("StageTotalsSince(mark)=%v should exclude the first %v", since, total)
	}
	if since < 2*time.Millisecond {
		t.Fatalf("StageTotalsSince(mark)=%v < 2ms", since)
	}
}

// TestConcurrentEmission hammers spans, counters, and remark batches from
// many goroutines; run under -race this is the concurrency-safety guard.
func TestConcurrentEmission(t *testing.T) {
	tr := NewWith(Config{FineSpans: true, MemStats: true})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartSpan("work", w+1).Arg("i", i)
				tr.StartFine("fine", w+1).End()
				tr.Add("items", 1)
				sp.End()
			}
			tr.EmitBatch("origin", []Remark{{Pass: "machine-outliner", Status: "selected"}})
		}()
	}
	wg.Wait()
	if got := tr.Counter("items"); got != workers*per {
		t.Fatalf("counter items = %d, want %d", got, workers*per)
	}
	if got := len(tr.Remarks()); got != workers {
		t.Fatalf("remarks = %d, want %d", got, workers)
	}
}

// TestTraceWellNested builds nested and worker-lane spans and checks that
// the emitted Chrome trace decodes and that events are well-nested per
// track: any two events on one tid either nest or are disjoint.
func TestTraceWellNested(t *testing.T) {
	tr := New()
	outer := tr.StartStage("llc", 0)
	var wg sync.WaitGroup
	for lane := 1; lane <= 4; lane++ {
		lane := lane
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				sp := tr.StartSpan("module", lane)
				inner := tr.StartSpan("codegen", lane)
				time.Sleep(time.Millisecond)
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	outer.End()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	type iv struct{ lo, hi float64 }
	perTid := map[int][]iv{}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		perTid[e.Tid] = append(perTid[e.Tid], iv{e.Ts, e.Ts + e.Dur})
	}
	if len(perTid) != 5 { // main + 4 worker lanes
		t.Fatalf("want 5 tracks, got %d", len(perTid))
	}
	const eps = 1e-6
	for tid, ivs := range perTid {
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].lo != ivs[j].lo {
				return ivs[i].lo < ivs[j].lo
			}
			return ivs[i].hi > ivs[j].hi
		})
		var stack []iv
		for _, cur := range ivs {
			for len(stack) > 0 && stack[len(stack)-1].hi <= cur.lo+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && cur.hi > stack[len(stack)-1].hi+eps {
				t.Fatalf("tid %d: event [%v,%v] overlaps enclosing [%v,%v] without nesting",
					tid, cur.lo, cur.hi, stack[len(stack)-1].lo, stack[len(stack)-1].hi)
			}
			stack = append(stack, cur)
		}
	}
}

// TestRemarksRoundTrip: WriteRemarks → ReadRemarks is the identity, and
// batches are ordered deterministically by origin regardless of emission
// order.
func TestRemarksRoundTrip(t *testing.T) {
	tr := New()
	b := []Remark{{
		Pass: "machine-outliner", Status: "rejected", Reason: "unprofitable",
		Round: 2, Module: "B", PatternLen: 3, Occurrences: 2, Benefit: -4, Strategy: "plain",
	}}
	a := []Remark{
		{Pass: "machine-outliner", Status: "selected", Round: 1, Module: "A",
			Function: "OUTLINED_FUNCTION_0", PatternLen: 5, Occurrences: 4, Benefit: 36, Strategy: "tail-call"},
		{Pass: "machine-outliner", Status: "rejected", Reason: "occurrences-overlap",
			Round: 1, Module: "A", PatternLen: 4, Occurrences: 2, Benefit: 8, Strategy: "thunk"},
	}
	tr.EmitBatch("B", b) // emitted first, sorts second
	tr.EmitBatch("A", a)

	var buf bytes.Buffer
	if err := tr.WriteRemarks(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRemarks(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Remark(nil), a...), b...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestSummary renders a summary with per-round counters and checks the
// convergence table picks them up.
func TestSummary(t *testing.T) {
	tr := New()
	tr.StartStage("llc", 0).End()
	tr.Add("codegen/functions", 42)
	tr.Add(RoundCounter(1, RoundSequences), 10)
	tr.Add(RoundCounter(1, RoundBytesSaved), 120)
	tr.Add(RoundCounter(2, RoundSequences), 3)
	tr.Add(RoundCounter(2, RoundBytesSaved), 16)
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage times", "llc", "outlining convergence", "codegen/functions", "120", "16"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
