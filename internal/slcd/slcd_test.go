package slcd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/slcd"
)

// soakApp generates the small deterministic app the daemon tests build.
func soakApp(t *testing.T, modules int) []slcd.ModuleSource {
	t.Helper()
	profile := appgen.UberRider
	mods := appgen.Generate(profile, appgen.ScaleForModules(profile, modules))
	out := make([]slcd.ModuleSource, len(mods))
	for i, m := range mods {
		out[i] = slcd.ModuleSource{Name: m.Name, Files: m.Files}
	}
	return out
}

// testConfig is the request config the daemon tests use: the default build,
// trimmed to two outlining rounds so soaks stay fast.
func testConfig() slcd.BuildConfig {
	cfg := slcd.DefaultConfig()
	cfg.OutlineRounds = 2
	return cfg
}

// editBody returns a copy of the app with a comment appended to one module's
// source — new llir cache key, byte-identical image (comments compile to
// nothing), which is what makes it the perfect near-identical request.
func editBody(app []slcd.ModuleSource, idx int, tag string) []slcd.ModuleSource {
	out := make([]slcd.ModuleSource, len(app))
	copy(out, app)
	m := out[idx]
	files := make(map[string]string, len(m.Files))
	for name, text := range m.Files {
		files[name] = text + "\n// edit " + tag + "\n"
	}
	out[idx] = slcd.ModuleSource{Name: m.Name, Files: files}
	return out
}

// referenceListing builds the app serially on a fresh daemon (cold private
// cache, no concurrency) and returns its listing — the byte-identity oracle.
func referenceListing(t *testing.T, app []slcd.ModuleSource) string {
	t.Helper()
	srv := slcd.NewServer(slcd.Options{CacheDir: t.TempDir(), Parallelism: 1, MaxBuilds: 1})
	resp := srv.Build(&slcd.BuildRequest{Modules: app, Config: testConfig()})
	if !resp.OK {
		t.Fatalf("reference build failed (%s): %s", resp.ErrorClass, resp.Error)
	}
	return resp.Listing
}

// TestServerDedupesConcurrentRequests is the race suite's core: N goroutine
// clients posting identical requests against a cold daemon. Every response
// must be byte-identical to a serial build, and the single-flight layer must
// have executed each stage key exactly once — total flight computes across
// all responses equals the number of unique stage keys, so duplicate stage
// executions are zero by construction. A second wave mixes warm identical
// requests with near-identical (body-edited) ones, whose only new key is the
// edited module's llir entry. Run under -race, this is also the data-race
// sweep over the daemon's shared flight, cache, and counter state.
func TestServerDedupesConcurrentRequests(t *testing.T) {
	app := soakApp(t, 6)
	modules := len(app) // the generator has a floor; trust the actual count
	ref := referenceListing(t, app)
	srv := slcd.NewServer(slcd.Options{CacheDir: t.TempDir(), Parallelism: 2, MaxBuilds: 8})

	wave := func(reqs []*slcd.BuildRequest) []*slcd.BuildResponse {
		resps := make([]*slcd.BuildResponse, len(reqs))
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				resps[i] = srv.Build(reqs[i])
			}(i)
		}
		close(start)
		wg.Wait()
		return resps
	}
	sum := func(resps []*slcd.BuildResponse, counter string) int64 {
		var n int64
		for _, r := range resps {
			n += r.Counters[counter]
		}
		return n
	}

	// Wave 1: eight identical requests against a cold cache.
	reqs := make([]*slcd.BuildRequest, 8)
	for i := range reqs {
		reqs[i] = &slcd.BuildRequest{Modules: app, Config: testConfig()}
	}
	resps := wave(reqs)
	for i, r := range resps {
		if !r.OK {
			t.Fatalf("wave 1 request %d failed (%s): %s", i, r.ErrorClass, r.Error)
		}
		if r.Listing != ref {
			t.Fatalf("wave 1 request %d listing differs from the serial build", i)
		}
	}
	// The strict dedupe equation: each of the app's stage keys (one llir and
	// one machine entry per module) was computed exactly once across all
	// eight concurrent requests.
	if got := sum(resps, "flight/llir/computes"); got != int64(modules) {
		t.Fatalf("llir stage computes = %d across wave 1, want exactly %d (one per module)", got, modules)
	}
	if got := sum(resps, "flight/machine/computes"); got != int64(modules) {
		t.Fatalf("machine stage computes = %d across wave 1, want exactly %d (one per module)", got, modules)
	}

	// Wave 2: four warm identical requests plus four near-identical ones
	// (distinct body edits). A body edit changes only the edited module's
	// llir key — the comment compiles to nothing, so the lowered LLIR, the
	// machine key, and the image all stay identical.
	reqs = reqs[:0]
	for i := 0; i < 4; i++ {
		reqs = append(reqs, &slcd.BuildRequest{Modules: app, Config: testConfig()})
	}
	const edits = 4
	for i := 0; i < edits; i++ {
		reqs = append(reqs, &slcd.BuildRequest{
			Modules: editBody(app, i%modules, fmt.Sprintf("tag%d", i)),
			Config:  testConfig(),
		})
	}
	resps = wave(reqs)
	for i, r := range resps {
		if !r.OK {
			t.Fatalf("wave 2 request %d failed (%s): %s", i, r.ErrorClass, r.Error)
		}
		if r.Listing != ref {
			t.Fatalf("wave 2 request %d listing differs from the serial build", i)
		}
	}
	if got := sum(resps, "flight/llir/computes"); got != edits {
		t.Fatalf("llir stage computes = %d across wave 2, want exactly %d (one per distinct edit)", got, edits)
	}
	if got := sum(resps, "flight/machine/computes"); got != 0 {
		t.Fatalf("machine stage computes = %d across wave 2, want 0 (machine keys unchanged by comment edits)", got)
	}

	// The daemon aggregates mirror the per-response counters.
	stats := srv.Snapshot()
	if stats.Builds != 16 || stats.Failures != 0 {
		t.Fatalf("daemon stats = %d builds, %d failures; want 16, 0", stats.Builds, stats.Failures)
	}
	if got := stats.Counters["flight/computes"]; got != int64(2*modules+edits) {
		t.Fatalf("aggregated flight/computes = %d, want %d", got, 2*modules+edits)
	}
}

// TestServerRejectsBadRequests covers the HTTP surface's error paths.
func TestServerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(slcd.NewServer(slcd.Options{}).Handler())
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := get("/build"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /build = %d", code)
	}
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/build", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", code)
	}
	if code := post(`{"modules":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty modules = %d", code)
	}
	if code := post(`{"modules":[{"name":"m","files":{"m.sl":"func main() -> Int { return 0 }"}},{"name":"m2","files":{"m2.sl":"func two() -> Int { return 2 }"}}],"config":{"on_verify_failure":"no-such-mode"}}`); code != http.StatusOK {
		t.Fatalf("invalid config mode = %d (failures are structured responses, not transport errors)", code)
	}
}

// revivableShard is a shard server on a real listener whose address survives
// a kill: Close tears down the listener mid-soak, Revive re-listens on the
// same port with the same store — the shard "coming back".
type revivableShard struct {
	store *cache.ShardStore
	addr  string
	mu    sync.Mutex
	srv   *http.Server
}

func newRevivableShard(t *testing.T) *revivableShard {
	t.Helper()
	store, err := cache.OpenShard(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &revivableShard{store: store, addr: ln.Addr().String()}
	s.serve(ln)
	t.Cleanup(s.Kill)
	return s
}

func (s *revivableShard) serve(ln net.Listener) {
	srv := &http.Server{Handler: cache.NewShardServer(s.store)}
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln)
}

func (s *revivableShard) URL() string { return "http://" + s.addr }

// Kill closes the listener and every open connection; clients see refused
// connections until Revive.
func (s *revivableShard) Kill() {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Revive re-listens on the shard's original address.
func (s *revivableShard) Revive(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		t.Fatalf("reviving shard on %s: %v", s.addr, err)
	}
	s.serve(ln)
}

// TestShardKillSoak is the service-mode chaos soak: many concurrent builds
// against a live daemon (real HTTP end to end) backed by two remote shards,
// with one shard killed partway through and revived later. The degraded-mode
// contract under test: a dead shard costs misses, never a failed build —
// every clean response must be OK and byte-identical to the serial reference.
// A seeded slice of fault-armed requests rides along (private build path);
// each must either fail with a structured class or produce the identical
// listing, the PR 5 contract surfaced through the service.
//
// SLCD_SOAK_BUILDS overrides the build count (CI's nightly soak raises it).
func TestShardKillSoak(t *testing.T) {
	builds := 60
	if testing.Short() {
		builds = 16
	}
	if s := os.Getenv("SLCD_SOAK_BUILDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SLCD_SOAK_BUILDS=%q: %v", s, err)
		}
		builds = n
	}

	app := soakApp(t, 5)
	modules := len(app)
	ref := referenceListing(t, app)

	stable := newRevivableShard(t)
	victim := newRevivableShard(t)
	daemon := slcd.NewServer(slcd.Options{
		CacheDir:    t.TempDir(),
		ShardURLs:   []string{stable.URL(), victim.URL()},
		Parallelism: 2,
		MaxBuilds:   4,
	})
	hs := httptest.NewServer(daemon.Handler())
	defer hs.Close()

	post := func(req *slcd.BuildRequest) (*slcd.BuildResponse, error) {
		payload, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(hs.URL+"/build", "application/json", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("daemon returned %d", resp.StatusCode)
		}
		var out slcd.BuildResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		return &out, nil
	}

	// request i: every build edits a seeded module body (new llir keys keep
	// compute flowing through the soak — including while the shard is down);
	// every tenth request is fault-armed and takes the private build path.
	request := func(i int) *slcd.BuildRequest {
		req := &slcd.BuildRequest{
			Modules: editBody(app, i%modules, fmt.Sprintf("soak%d", i/2)),
			Config:  testConfig(),
		}
		if i%10 == 7 {
			req.Config.FaultSeed = uint64(i) + 1
			req.Config.FaultRate = 0.02
		}
		return req
	}

	// The kill/revive schedule keys off completed builds: kill after 1/3,
	// revive after 2/3 — both boundaries land mid-soak under any -j.
	var done atomic.Int64
	killAt, reviveAt := int64(builds/3), int64(2*builds/3)
	var lifecycle sync.Once
	var revival sync.Once

	const workers = 6
	jobs := make(chan int)
	var wg sync.WaitGroup
	errc := make(chan error, builds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				resp, err := post(request(i))
				if err != nil {
					errc <- fmt.Errorf("request %d: transport error: %w", i, err)
				} else if i%10 == 7 {
					// Fault-armed: structured failure or byte-identical image.
					switch {
					case resp.OK && resp.Listing == ref:
					case !resp.OK && (resp.ErrorClass == "panic" || resp.ErrorClass == "verify" || resp.ErrorClass == "injected"):
					default:
						errc <- fmt.Errorf("request %d (faulted): ok=%t class=%q — neither structured failure nor identical image", i, resp.OK, resp.ErrorClass)
					}
				} else {
					// Clean: a dead shard must never cost a build.
					if !resp.OK {
						errc <- fmt.Errorf("request %d failed (%s) — a dead shard degraded into a build failure: %s", i, resp.ErrorClass, resp.Error)
					} else if resp.Listing != ref {
						errc <- fmt.Errorf("request %d listing diverged from the serial reference", i)
					}
				}
				n := done.Add(1)
				if n >= killAt {
					lifecycle.Do(victim.Kill)
				}
				if n >= reviveAt {
					revival.Do(func() { victim.Revive(t) })
				}
			}
		}()
	}
	for i := 0; i < builds; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	stats := daemon.Snapshot()
	if stats.Builds != int64(builds) {
		t.Fatalf("daemon served %d builds, want %d", stats.Builds, builds)
	}
	// The kill left its fingerprints: shard errors were recorded, and the
	// daemon kept serving through them.
	if stats.Counters["cache/remote/shard0/errors"]+stats.Counters["cache/remote/shard1/errors"] == 0 {
		t.Error("soak recorded no shard errors — the kill window never hit the remote path")
	}
}
