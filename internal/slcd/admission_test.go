package slcd

// Internal admission and drain tests: these reach into the daemon's
// semaphore and in-flight bookkeeping to stage queue-full and straggler
// scenarios deterministically, without racing real builds. The end-to-end
// behavior over real builds and HTTP lives in the external resilience soak.

import (
	"context"
	"testing"
	"time"
)

// tinyRequest is the smallest valid build request; the admission tests never
// actually run it — they are refused or cancelled before a pipeline starts.
func tinyRequest() *BuildRequest {
	return &BuildRequest{
		Modules: []ModuleSource{{Name: "m", Files: map[string]string{"m.sl": "func main() -> Int { return 0 }\n"}}},
		Config:  DefaultConfig(),
	}
}

// waitGauge polls an atomic gauge until it reaches want or the deadline hits.
func waitGauge(t *testing.T, name string, load func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s gauge = %d, want %d", name, load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsWhenQueueFull: with the only build slot taken and one
// request already queued, the next request is shed with the structured
// "shed" class instead of queueing without bound — and the shed request's
// departure does not disturb the queued one, which is still cancellable.
func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	s := NewServer(Options{MaxBuilds: 1, MaxQueue: 1})
	defer s.Close()
	s.sem <- struct{}{} // occupy the only build slot

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan *BuildResponse, 1)
	go func() { queued <- s.BuildCtx(ctx, tinyRequest()) }()
	waitGauge(t, "queued", s.queued.Load, 1)

	shed := s.Build(tinyRequest())
	if shed.OK || shed.ErrorClass != "shed" {
		t.Fatalf("overflow request: ok=%t class=%q, want a shed refusal", shed.OK, shed.ErrorClass)
	}
	waitGauge(t, "queued", s.queued.Load, 1) // the shed request left no residue

	cancel()
	r := <-queued
	if r.OK || r.ErrorClass != "canceled" {
		t.Fatalf("cancelled queued request: ok=%t class=%q, want canceled", r.OK, r.ErrorClass)
	}
	st := s.Snapshot()
	if st.Counters["slcd/refused/shed"] != 1 || st.Counters["slcd/refused/canceled"] != 1 {
		t.Fatalf("refusal counters = shed:%d canceled:%d, want 1 and 1",
			st.Counters["slcd/refused/shed"], st.Counters["slcd/refused/canceled"])
	}
	if st.Builds != 0 {
		t.Fatalf("refusals counted as builds: %d", st.Builds)
	}
	<-s.sem
}

// TestUnboundedQueueNeverSheds: MaxQueue < 0 disables shedding; requests past
// any depth queue and remain cancellable.
func TestUnboundedQueueNeverSheds(t *testing.T) {
	s := NewServer(Options{MaxBuilds: 1, MaxQueue: -1})
	defer s.Close()
	s.sem <- struct{}{}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *BuildResponse, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- s.BuildCtx(ctx, tinyRequest()) }()
	}
	waitGauge(t, "queued", s.queued.Load, 8)
	cancel()
	for i := 0; i < 8; i++ {
		if r := <-done; r.ErrorClass != "canceled" {
			t.Fatalf("request %d: class %q, want canceled (never shed)", i, r.ErrorClass)
		}
	}
	<-s.sem
}

// TestDrainRefusesQueuedAndNewRequests: StartDrain flips the daemon to
// draining — queued waiters are released with the "drain" class immediately
// (they must not sit out the drain window waiting for a slot that will never
// come), and new arrivals are refused at the door.
func TestDrainRefusesQueuedAndNewRequests(t *testing.T) {
	s := NewServer(Options{MaxBuilds: 1})
	defer s.Close()
	s.sem <- struct{}{}

	queued := make(chan *BuildResponse, 1)
	go func() { queued <- s.Build(tinyRequest()) }()
	waitGauge(t, "queued", s.queued.Load, 1)

	s.StartDrain()
	s.StartDrain() // idempotent
	if r := <-queued; r.ErrorClass != "drain" {
		t.Fatalf("queued request after StartDrain: class %q, want drain", r.ErrorClass)
	}
	if r := s.Build(tinyRequest()); r.ErrorClass != "drain" {
		t.Fatalf("new request on a draining daemon: class %q, want drain", r.ErrorClass)
	}
	st := s.Snapshot()
	if st.State != "draining" {
		t.Fatalf("state = %q, want draining", st.State)
	}
	if st.Counters["slcd/refused/drain"] != 2 {
		t.Fatalf("slcd/refused/drain = %d, want 2", st.Counters["slcd/refused/drain"])
	}
	<-s.sem
}

// TestDrainWaitsForInFlightBuilds: a build that finishes within the drain
// window makes Drain return true with no hard cancel.
func TestDrainWaitsForInFlightBuilds(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	s.inflight.Add(1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.inflight.Done()
	}()
	if !s.Drain(10 * time.Second) {
		t.Fatal("Drain hard-cancelled a build that finished inside the window")
	}
	if n := s.Snapshot().Counters["slcd/drain_hard_cancels"]; n != 0 {
		t.Fatalf("drain_hard_cancels = %d, want 0", n)
	}
}

// TestDrainHardCancelsStragglers: a build still running at the drain deadline
// is cancelled through the daemon's hard context; Drain waits for it to
// unwind and reports false.
func TestDrainHardCancelsStragglers(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	s.inflight.Add(1)
	go func() {
		<-s.hardCtx.Done() // a wedged build that only dies when hard-cancelled
		s.inflight.Done()
	}()
	if s.Drain(20 * time.Millisecond) {
		t.Fatal("Drain reported a clean finish for a wedged build")
	}
	if n := s.Snapshot().Counters["slcd/drain_hard_cancels"]; n != 1 {
		t.Fatalf("drain_hard_cancels = %d, want 1", n)
	}
}

// TestBuildContextCombinesDeadlines: the effective build deadline is the
// smaller of the daemon's -deadline and the request's timeout_ms.
func TestBuildContextCombinesDeadlines(t *testing.T) {
	s := NewServer(Options{Deadline: time.Hour})
	defer s.Close()
	req := tinyRequest()
	req.Config.TimeoutMS = 50
	ctx, cancel := s.buildContext(context.Background(), req)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline on the build context")
	}
	if until := time.Until(dl); until > 60*time.Millisecond {
		t.Fatalf("deadline %v away — the request's smaller timeout_ms did not win", until)
	}

	req.Config.TimeoutMS = 0
	ctx2, cancel2 := s.buildContext(context.Background(), req)
	defer cancel2()
	dl2, ok := ctx2.Deadline()
	if !ok {
		t.Fatal("daemon -deadline not applied")
	}
	if until := time.Until(dl2); until < 50*time.Minute {
		t.Fatalf("deadline %v away, want the daemon's hour cap", until)
	}
}
