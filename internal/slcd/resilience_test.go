package slcd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"outliner/internal/slcd"
)

// TestRequestTimeoutDeadlineClass: a request-level timeout_ms that expires
// mid-build cancels the pipeline and classifies the failure "deadline" — the
// structured answer a client's retry logic keys on.
func TestRequestTimeoutDeadlineClass(t *testing.T) {
	srv := slcd.NewServer(slcd.Options{CacheDir: t.TempDir(), Parallelism: 1})
	defer srv.Close()
	req := &slcd.BuildRequest{Modules: soakApp(t, 5), Config: testConfig()}
	req.Config.TimeoutMS = 1
	resp := srv.Build(req)
	if resp.OK || resp.ErrorClass != "deadline" {
		t.Fatalf("1ms build: ok=%t class=%q error=%q, want a deadline failure", resp.OK, resp.ErrorClass, resp.Error)
	}
	// The timed-out build published nothing: re-requesting with no timeout
	// over the same cache directory is byte-identical to a cold reference.
	req.Config.TimeoutMS = 0
	clean := srv.Build(req)
	if !clean.OK {
		t.Fatalf("clean build after the timeout failed (%s): %s", clean.ErrorClass, clean.Error)
	}
	if ref := referenceListing(t, req.Modules); clean.Listing != ref {
		t.Fatal("build over the timed-out build's cache directory diverged from the reference")
	}
}

// TestDrainOverHTTP covers the shutdown protocol's HTTP surface: /healthz
// flips to 503 "draining" (so load balancers stop routing), and POST /build
// answers 503 + Retry-After with a structured "drain" body that a retry
// script can parse.
func TestDrainOverHTTP(t *testing.T) {
	daemon := slcd.NewServer(slcd.Options{CacheDir: t.TempDir()})
	defer daemon.Close()
	hs := httptest.NewServer(daemon.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain = %d", resp.StatusCode)
	}

	daemon.StartDrain()
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz carries no Retry-After")
	}

	payload, err := json.Marshal(&slcd.BuildRequest{Modules: soakApp(t, 5), Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/build", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /build during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain refusal carries no Retry-After")
	}
	var out slcd.BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("drain refusal body is not a BuildResponse: %v", err)
	}
	if out.OK || out.ErrorClass != "drain" {
		t.Fatalf("drain refusal body: ok=%t class=%q, want structured drain", out.OK, out.ErrorClass)
	}
}

// TestFarmResilienceSoak is the extended chaos soak the resilience work is
// judged by: concurrent clients against a daemon whose only remote shard dies
// mid-wave and whose operator begins draining while the wave is still in
// flight, followed by a "restart" — a second daemon over the same cache
// directory and a revived shard. The contract:
//
//   - every response is either OK with the byte-identical reference listing
//     or a structured failure class (shed/drain/canceled/deadline/aborted,
//     or the chaos classes panic/verify/injected for fault-armed riders);
//   - the dead shard opens its circuit breaker, and after revival the
//     breaker completes the open → half-open → closed cycle, visible in the
//     daemon's stats counters;
//   - re-requesting the app after the restart is byte-identical — neither
//     the drain's cancellations nor the dead-shard window poisoned the cache.
func TestFarmResilienceSoak(t *testing.T) {
	app := soakApp(t, 5)
	modules := len(app)
	ref := referenceListing(t, app)
	shard := newRevivableShard(t)
	opts := slcd.Options{
		CacheDir:         t.TempDir(),
		ShardURLs:        []string{shard.URL()},
		Parallelism:      2,
		MaxBuilds:        3,
		MaxQueue:         64,
		RemoteTimeout:    500 * time.Millisecond,
		BreakerThreshold: 2,
		ProbeInterval:    2 * time.Millisecond,
	}
	structured := map[string]bool{
		"shed": true, "drain": true, "canceled": true, "deadline": true,
		"aborted": true, "panic": true, "verify": true, "injected": true,
	}
	edited := func(tag string, i int) *slcd.BuildRequest {
		return &slcd.BuildRequest{
			Modules: editBody(app, i%modules, fmt.Sprintf("%s%d", tag, i)),
			Config:  testConfig(),
		}
	}

	daemon := slcd.NewServer(opts)

	// Phase 1: warm the farm while the shard is healthy.
	for i := 0; i < 2; i++ {
		resp := daemon.Build(&slcd.BuildRequest{Modules: app, Config: testConfig()})
		if !resp.OK || resp.Listing != ref {
			t.Fatalf("warm build %d: ok=%t class=%q", i, resp.OK, resp.ErrorClass)
		}
	}

	// Phase 2: kill the shard and run a concurrent wave of near-identical
	// requests — each edit mints a new llir key, forcing remote traffic into
	// the dead shard so the breaker trips under real load. Chaos riders with
	// request-level fault injection come along, and the operator begins
	// draining halfway through the wave.
	shard.Kill()
	const wave = 12
	resps := make([]*slcd.BuildResponse, wave)
	var wg sync.WaitGroup
	var completed atomic.Int64
	var drainOnce sync.Once
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := edited("wave", i)
			if i%6 == 5 {
				req.Config.FaultSeed = uint64(i) + 1
				req.Config.FaultRate = 0.02
			}
			resps[i] = daemon.Build(req)
			if completed.Add(1) == wave/2 {
				drainOnce.Do(daemon.StartDrain)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range resps {
		switch {
		case r.OK && r.Listing == ref:
		case !r.OK && structured[r.ErrorClass]:
		default:
			t.Errorf("wave request %d: ok=%t class=%q — neither identical image nor structured failure: %s",
				i, r.OK, r.ErrorClass, r.Error)
		}
	}
	// The draining daemon refuses new work with the structured drain class.
	for i := 0; i < 2; i++ {
		if r := daemon.Build(edited("late", i)); r.ErrorClass != "drain" {
			t.Fatalf("post-drain request %d: class %q, want drain", i, r.ErrorClass)
		}
	}
	if !daemon.Drain(30 * time.Second) {
		t.Fatal("in-flight wave builds did not finish inside the drain window")
	}
	st := daemon.Snapshot()
	if st.State != "draining" {
		t.Fatalf("drained daemon state = %q", st.State)
	}
	if st.Counters["cache/remote/shard0/breaker_opens"] == 0 {
		t.Error("the dead shard never opened its breaker during the wave")
	}
	if st.Counters["slcd/refused/drain"] < 2 {
		t.Errorf("slcd/refused/drain = %d, want >= 2", st.Counters["slcd/refused/drain"])
	}
	daemon.Close()

	// Phase 3: the shard comes back and a restarted daemon takes over the
	// same cache directory. The first re-request must be byte-identical —
	// nothing the cancelled or degraded builds did is observable.
	shard.Revive(t)
	daemon2 := slcd.NewServer(opts)
	defer daemon2.Close()
	resp := daemon2.Build(&slcd.BuildRequest{Modules: app, Config: testConfig()})
	if !resp.OK || resp.Listing != ref {
		t.Fatalf("post-restart build: ok=%t class=%q — restart is not transparent: %s", resp.OK, resp.ErrorClass, resp.Error)
	}

	// Phase 4: flap the shard under the restarted daemon and watch the
	// breaker complete a full cycle in the stats counters. Builds keep
	// succeeding throughout — breaker transitions are degradation, never
	// failure.
	shard.Kill()
	opened := false
	for i := 0; i < 20 && !opened; i++ {
		if r := daemon2.Build(edited("flap", i)); !r.OK || r.Listing != ref {
			t.Fatalf("flap build %d failed (%s): %s", i, r.ErrorClass, r.Error)
		}
		opened = daemon2.Snapshot().Counters["cache/remote/shard0/breaker_opens"] > 0
	}
	if !opened {
		t.Fatal("breaker failed to open against the killed shard")
	}
	shard.Revive(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r := daemon2.Build(edited("heal", int(time.Until(deadline)))); !r.OK || r.Listing != ref {
			t.Fatalf("heal-phase build failed (%s): %s", r.ErrorClass, r.Error)
		}
		c := daemon2.Snapshot().Counters
		if c["cache/remote/shard0/breaker_closes"] > 0 {
			if c["cache/remote/shard0/breaker_probes"] == 0 {
				t.Error("breaker closed without a recorded probe")
			}
			if c["cache/remote/shard0/breaker_half_opens"] == 0 {
				t.Error("breaker closed without passing through half-open")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed after shard revival; counters: opens=%d half_opens=%d probes=%d",
				c["cache/remote/shard0/breaker_opens"], c["cache/remote/shard0/breaker_half_opens"],
				c["cache/remote/shard0/breaker_probes"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The recovered farm serves the reference image through the revived shard.
	final := daemon2.Build(&slcd.BuildRequest{Modules: app, Config: testConfig()})
	if !final.OK || final.Listing != ref {
		t.Fatalf("final build after recovery: ok=%t class=%q", final.OK, final.ErrorClass)
	}
}
