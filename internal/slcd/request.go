package slcd

import (
	"context"
	"errors"
	"fmt"

	"outliner/internal/cache"
	"outliner/internal/fault"
	"outliner/internal/layout"
	"outliner/internal/outline"
	"outliner/internal/par"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
	"outliner/internal/verify"
)

// ModuleSource is one module in a build request: named SwiftLite files,
// mirroring pipeline.Source.
type ModuleSource struct {
	Name  string            `json:"name"`
	Files map[string]string `json:"files"`
}

// BuildConfig mirrors the pipeline.Config knobs a remote client may set.
// Everything absent defaults to the driver's defaults (slc's flag defaults),
// so a minimal request — just modules — gets the paper's standard build.
// Accelerator state (cache directory, remote shards, the single-flight layer,
// parallelism) is the daemon's, not the request's: clients describe what to
// build, the farm decides how.
type BuildConfig struct {
	WholeProgram    bool   `json:"whole_program"`
	OutlineRounds   int    `json:"outline_rounds"`
	MergeFunctions  bool   `json:"merge_functions"`
	FMSA            bool   `json:"fmsa"`
	FlatOutlineCost bool   `json:"flat_outline_cost"`
	Verify          bool   `json:"verify"`
	KeepGoing       bool   `json:"keep_going"`
	OnVerifyFailure string `json:"on_verify_failure,omitempty"`
	// FaultSeed/FaultRate arm deterministic fault injection for this request
	// only (chaos drills against a live daemon). A fault-armed request builds
	// on a private cache handle with no flight or remote tier — injected
	// damage must never leak into concurrent clean builds.
	FaultSeed uint64  `json:"fault_seed,omitempty"`
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultDisruptive additionally admits the disruptive fault kinds (hung
	// workers, induced cancellation) into this request's chaos schedule.
	// Disruptive drills only make sense with a deadline: set TimeoutMS so a
	// hung worker is cancelled instead of wedging the request forever.
	FaultDisruptive bool `json:"fault_disruptive,omitempty"`
	// TimeoutMS caps this request's wall-clock build time. The daemon combines
	// it with its own -deadline (the smaller wins); past the cap the build is
	// cancelled mid-stage and the response reports error_class "deadline".
	// 0 means no per-request cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Layout selects the profile-guided function-layout policy ("none",
	// "hot-cold", "c3"); Profile carries the execution profile feeding it (and
	// cold-only outlining), in the canonical encoding profile.Encode emits.
	// The profile travels in the request — the farm has no filesystem view of
	// the client's instrumented runs.
	Layout  string `json:"layout,omitempty"`
	Profile []byte `json:"profile,omitempty"`
}

// DefaultConfig is the request config slcd assumes for absent fields — the
// same shape slc's flag defaults produce.
func DefaultConfig() BuildConfig {
	return BuildConfig{
		OutlineRounds:  5,
		MergeFunctions: true,
		Verify:         true,
	}
}

// BuildRequest is the POST /build payload.
type BuildRequest struct {
	Modules []ModuleSource `json:"modules"`
	Config  BuildConfig    `json:"config"`
}

// BuildResponse is the POST /build reply. A failed build still carries its
// counters: the resilience counters matter most exactly when a build fails.
type BuildResponse struct {
	OK bool `json:"ok"`
	// Error and ErrorClass are set when OK is false. ErrorClass buckets the
	// failure the way the fault-tolerance tests do: "panic" (recovered worker
	// panic), "verify" (machine verifier rejection), "injected" (surfaced
	// injected fault), "deadline" (the request's or daemon's time cap
	// expired), "canceled" (client disconnect or drain hard-cancel),
	// "aborted" (a single-flight leader's build was cancelled; re-request
	// recomputes), "shed" (admission queue full), "drain" (daemon draining for
	// shutdown), or "build" (everything else — front-end errors, keep-going
	// aggregates of unstructured failures).
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Listing is the deterministic image listing — the byte-comparison
	// artifact. Two responses describe the same binary iff their listings are
	// byte-identical.
	Listing   string           `json:"listing,omitempty"`
	CodeSize  int              `json:"code_size,omitempty"`
	TotalSize int              `json:"total_size,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
}

// pipelineConfig lowers the request config onto a pipeline.Config, leaving
// the daemon-owned fields (Tracer, CacheDir, Flight, Remote, Parallelism) for
// the server to fill in.
func (c BuildConfig) pipelineConfig() (pipeline.Config, error) {
	onvf := c.OnVerifyFailure
	if onvf == "" {
		onvf = outline.VerifyAbort
	}
	switch onvf {
	case outline.VerifyAbort, outline.VerifyRollbackRound, outline.VerifyDisableOutlining:
	default:
		return pipeline.Config{}, fmt.Errorf("slcd: unknown on_verify_failure mode %q", onvf)
	}
	cfg := pipeline.Config{
		WholeProgram:       c.WholeProgram,
		OutlineRounds:      c.OutlineRounds,
		SILOutline:         true,
		SpecializeClosures: true,
		MergeFunctions:     c.MergeFunctions,
		FMSA:               c.FMSA,
		PreserveDataLayout: true,
		SplitGCMetadata:    true,
		FlatOutlineCost:    c.FlatOutlineCost,
		Verify:             c.Verify,
		KeepGoing:          c.KeepGoing,
		OnVerifyFailure:    onvf,
	}
	if c.FaultRate > 0 {
		inj := fault.New(c.FaultSeed, c.FaultRate)
		if c.FaultDisruptive {
			inj.EnableDisruptive()
		}
		cfg.Fault = inj
	}
	if !layout.Valid(c.Layout) {
		return pipeline.Config{}, fmt.Errorf("slcd: unknown layout policy %q", c.Layout)
	}
	cfg.Layout = c.Layout
	if len(c.Profile) > 0 {
		p, err := profile.Decode(c.Profile)
		if err != nil {
			return pipeline.Config{}, fmt.Errorf("slcd: request profile: %w", err)
		}
		cfg.Profile = p
	}
	return cfg, nil
}

// sources converts the request's modules to pipeline sources.
func (r *BuildRequest) sources() []pipeline.Source {
	out := make([]pipeline.Source, len(r.Modules))
	for i, m := range r.Modules {
		out[i] = pipeline.Source{Name: m.Name, Files: m.Files}
	}
	return out
}

// classifyError buckets a build failure for BuildResponse.ErrorClass. It
// mirrors the fault-tolerance contract's structuredFailure predicate:
// anything outside these classes in a fault-armed build is a bug.
func classifyError(err error) string {
	// Cancellation classes first: a deadline-exceeded build may wrap an
	// injected fault (the hang that burned the clock), and the cancellation
	// is the truth the client acts on.
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	if errors.Is(err, cache.ErrFlightAborted) {
		return "aborted"
	}
	var pe *par.PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	var ve *verify.Error
	if errors.As(err, &ve) {
		return "verify"
	}
	if fault.IsInjected(err) {
		return "injected"
	}
	return "build"
}
