// Package slcd is the compile daemon behind cmd/slcd: a long-running build
// service that accepts concurrent build requests over HTTP and answers each
// with the deterministic image listing plus the build's counters.
//
// What makes it a build-farm service rather than a loop around pipeline.Build:
//
//   - Single-flight dedupe. All requests share one cache.Flight, so identical
//     in-flight stage keys — the common case when a fleet of CI jobs submits
//     the same commit — are compiled once and the encoded artifact is shared;
//     every waiter decodes a private copy.
//   - A shared warm path. All requests share the daemon's cache directory
//     (the process-shared cache.Shared handle) and, when configured, a
//     sharded remote tier, so one request's publications are the next
//     request's hits.
//   - Degraded modes, not failures. A dead or corrupt remote shard degrades
//     to a miss under the cache's fault classes; a build request never fails
//     because the farm's accelerators are unhealthy.
//
// Fault-armed requests (chaos drills) opt out of all sharing: they build on
// private cache handles with no flight or remote tier, so injected damage
// cannot leak into concurrent clean builds.
package slcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"outliner/internal/cache"
	"outliner/internal/obs"
	"outliner/internal/pipeline"
)

// maxRequestBody bounds a build request (sources are text; 64 MiB is an
// enormous app at this scale).
const maxRequestBody = 64 << 20

// Options configures a daemon.
type Options struct {
	// CacheDir is the daemon's build cache directory. Empty disables caching
	// (and with it the single-flight layer's warm path, though dedupe of
	// in-flight work still applies when a cache exists; with no cache at all
	// the daemon still builds, just without reuse).
	CacheDir string
	// ShardURLs are the remote cache shard base URLs (cache.NewRemote).
	// Empty means no remote tier.
	ShardURLs []string
	// Parallelism is the per-build worker count (pipeline.Config.Parallelism;
	// 0 = one per CPU).
	Parallelism int
	// MaxBuilds bounds concurrently executing build requests; further
	// requests queue. 0 means 4.
	MaxBuilds int
}

// Server is the daemon state shared across requests.
type Server struct {
	opts   Options
	flight *cache.Flight
	remote *cache.Remote
	sem    chan struct{}

	mu       sync.Mutex
	builds   int64 // completed build requests
	failures int64 // completed with a build error
	counters map[string]int64
}

// NewServer returns a daemon over the given options.
func NewServer(opts Options) *Server {
	if opts.MaxBuilds <= 0 {
		opts.MaxBuilds = 4
	}
	return &Server{
		opts:     opts,
		flight:   cache.NewFlight(),
		remote:   cache.NewRemote(opts.ShardURLs),
		sem:      make(chan struct{}, opts.MaxBuilds),
		counters: map[string]int64{},
	}
}

// Handler returns the daemon's HTTP handler:
//
//	POST /build   — run one build (BuildRequest → BuildResponse)
//	GET  /stats   — daemon counters aggregated across completed requests
//	GET  /healthz — liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/build", s.handleBuild)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil || len(body) > maxRequestBody {
		http.Error(w, "unreadable or oversized request body", http.StatusBadRequest)
		return
	}
	req := BuildRequest{Config: DefaultConfig()}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Modules) == 0 {
		http.Error(w, "request has no modules", http.StatusBadRequest)
		return
	}
	resp := s.Build(&req)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// Build runs one build request against the daemon's shared state. It is the
// HTTP handler's core, exported so in-process tests (and embedders) can drive
// the daemon without a listener.
func (s *Server) Build(req *BuildRequest) *BuildResponse {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	cfg, err := req.Config.pipelineConfig()
	if err != nil {
		return &BuildResponse{OK: false, Error: err.Error(), ErrorClass: "build"}
	}
	tr := obs.New()
	cfg.Tracer = tr
	cfg.Parallelism = s.opts.Parallelism
	cfg.CacheDir = s.opts.CacheDir
	// The shared accelerators. OpenBuildCache ignores both on fault-armed
	// requests, which also get a private cache handle.
	cfg.Flight = s.flight
	cfg.Remote = s.remote

	res, berr := pipeline.Build(req.sources(), cfg)
	resp := &BuildResponse{Counters: tr.Counters()}
	if berr != nil {
		resp.Error = berr.Error()
		resp.ErrorClass = classifyError(berr)
	} else {
		var buf bytes.Buffer
		if lerr := res.WriteImageListing(&buf); lerr != nil {
			resp.Error = fmt.Sprintf("slcd: rendering listing: %v", lerr)
			resp.ErrorClass = "build"
		} else {
			resp.OK = true
			resp.Listing = buf.String()
			resp.CodeSize = res.CodeSize()
			resp.TotalSize = res.BinarySize()
		}
	}
	s.finish(resp)
	return resp
}

// finish folds one completed request into the daemon aggregates.
func (s *Server) finish(resp *BuildResponse) {
	remote := s.remote.DrainCounters()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.builds++
	if !resp.OK {
		s.failures++
	}
	for name, v := range resp.Counters {
		s.counters[name] += v
	}
	for name, v := range remote {
		if strings.HasSuffix(name, "/inflight") {
			s.counters[name] = v // gauge, not a sum
			continue
		}
		s.counters[name] += v
	}
}

// Stats is the GET /stats payload.
type Stats struct {
	Builds   int64 `json:"builds"`
	Failures int64 `json:"failures"`
	// FlightExecs/FlightWaits are the single-flight layer's lifetime totals:
	// closures executed vs. callers that shared a leader's result.
	FlightExecs int64 `json:"flight_execs"`
	FlightWaits int64 `json:"flight_waits"`
	// Counters aggregates every completed request's counters plus the remote
	// tier's per-shard client counters.
	Counters map[string]int64 `json:"counters"`
}

// Snapshot returns the daemon aggregates.
func (s *Server) Snapshot() Stats {
	execs, waits := s.flight.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Builds:      s.builds,
		Failures:    s.failures,
		FlightExecs: execs,
		FlightWaits: waits,
		Counters:    make(map[string]int64, len(s.counters)),
	}
	for k, v := range s.counters {
		st.Counters[k] = v
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
