// Package slcd is the compile daemon behind cmd/slcd: a long-running build
// service that accepts concurrent build requests over HTTP and answers each
// with the deterministic image listing plus the build's counters.
//
// What makes it a build-farm service rather than a loop around pipeline.Build:
//
//   - Single-flight dedupe. All requests share one cache.Flight, so identical
//     in-flight stage keys — the common case when a fleet of CI jobs submits
//     the same commit — are compiled once and the encoded artifact is shared;
//     every waiter decodes a private copy.
//   - A shared warm path. All requests share the daemon's cache directory
//     (the process-shared cache.Shared handle) and, when configured, a
//     sharded remote tier, so one request's publications are the next
//     request's hits.
//   - Degraded modes, not failures. A dead or corrupt remote shard degrades
//     to a miss under the cache's fault classes (and a persistently dead
//     shard trips its circuit breaker, so the farm stops paying its timeout);
//     a build request never fails because the farm's accelerators are
//     unhealthy.
//   - Bounded admission. A fixed number of builds run concurrently; a bounded
//     queue absorbs bursts; past that the daemon sheds load with a structured
//     503 instead of queueing without bound.
//   - Deadlines and drain. Every build runs under a context assembled from
//     the client connection, the request's timeout_ms, and the daemon's
//     -deadline; SIGTERM drains gracefully — new requests get 503 +
//     Retry-After while in-flight builds finish, then stragglers are
//     cancelled at the drain deadline. A cancelled build never publishes a
//     cache entry, so reissuing the request after a restart is byte-identical.
//
// Fault-armed requests (chaos drills) opt out of all sharing: they build on
// private cache handles with no flight or remote tier, so injected damage
// cannot leak into concurrent clean builds.
package slcd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"outliner/internal/cache"
	"outliner/internal/obs"
	"outliner/internal/pipeline"
)

// maxRequestBody bounds a build request (sources are text; 64 MiB is an
// enormous app at this scale).
const maxRequestBody = 64 << 20

// Options configures a daemon.
type Options struct {
	// CacheDir is the daemon's build cache directory. Empty disables caching
	// (and with it the single-flight layer's warm path, though dedupe of
	// in-flight work still applies when a cache exists; with no cache at all
	// the daemon still builds, just without reuse).
	CacheDir string
	// ShardURLs are the remote cache shard base URLs (cache.NewRemoteWith).
	// Empty means no remote tier.
	ShardURLs []string
	// Parallelism is the per-build worker count (pipeline.Config.Parallelism;
	// 0 = one per CPU).
	Parallelism int
	// MaxBuilds bounds concurrently executing build requests; further
	// requests queue. 0 means 4.
	MaxBuilds int
	// MaxQueue bounds requests waiting for a build slot. A request arriving
	// with the queue full is shed with a structured 503 (error_class "shed")
	// instead of waiting without bound. 0 means 32; negative means unbounded.
	MaxQueue int
	// Deadline caps every build's wall-clock time, combined with the
	// request's own timeout_ms (the smaller wins). 0 means no daemon cap.
	Deadline time.Duration
	// RemoteTimeout is the per-operation remote shard timeout
	// (cache.RemoteOptions.Timeout). 0 means the cache package default.
	RemoteTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a shard's
	// circuit breaker (cache.RemoteOptions.BreakerThreshold). 0 means the
	// default; negative disables the breakers.
	BreakerThreshold int
	// ProbeInterval is the open-shard health-probe cadence
	// (cache.RemoteOptions.ProbeInterval). 0 means the default.
	ProbeInterval time.Duration
}

// Server is the daemon state shared across requests.
type Server struct {
	opts   Options
	flight *cache.Flight
	remote *cache.Remote
	sem    chan struct{}

	// Admission and drain state. queued/running are gauges read by Snapshot;
	// inflight tracks running builds so Drain can wait for them. draining
	// flips once; drainCh unblocks queued waiters when it does; hardCancel
	// cancels straggler builds at the drain deadline.
	queued     atomic.Int64
	running    atomic.Int64
	inflight   sync.WaitGroup
	draining   atomic.Bool
	drainOnce  sync.Once
	drainCh    chan struct{}
	hardCtx    context.Context
	hardCancel context.CancelFunc

	mu       sync.Mutex
	builds   int64 // completed build requests
	failures int64 // completed with a build error
	counters map[string]int64
}

// NewServer returns a daemon over the given options.
func NewServer(opts Options) *Server {
	if opts.MaxBuilds <= 0 {
		opts.MaxBuilds = 4
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 32
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	return &Server{
		opts:   opts,
		flight: cache.NewFlight(),
		remote: cache.NewRemoteWith(opts.ShardURLs, cache.RemoteOptions{
			Timeout:          opts.RemoteTimeout,
			BreakerThreshold: opts.BreakerThreshold,
			ProbeInterval:    opts.ProbeInterval,
		}),
		sem:        make(chan struct{}, opts.MaxBuilds),
		drainCh:    make(chan struct{}),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		counters:   map[string]int64{},
	}
}

// Close releases daemon background state (the remote tier's breaker prober).
// Safe to call more than once and on a nil-remote daemon.
func (s *Server) Close() {
	s.remote.Close()
	s.hardCancel()
}

// Handler returns the daemon's HTTP handler:
//
//	POST /build   — run one build (BuildRequest → BuildResponse)
//	GET  /stats   — daemon counters aggregated across completed requests
//	GET  /healthz — liveness probe ("ok"; 503 "draining" during shutdown)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/build", s.handleBuild)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil || len(body) > maxRequestBody {
		http.Error(w, "unreadable or oversized request body", http.StatusBadRequest)
		return
	}
	req := BuildRequest{Config: DefaultConfig()}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Modules) == 0 {
		http.Error(w, "request has no modules", http.StatusBadRequest)
		return
	}
	// r.Context() makes a client disconnect cancel the build mid-stage
	// instead of burning a build slot on an answer nobody will read.
	resp := s.BuildCtx(r.Context(), &req)
	w.Header().Set("Content-Type", "application/json")
	if resp.ErrorClass == "shed" || resp.ErrorClass == "drain" {
		// Structured overload/shutdown refusal: the client should retry —
		// against this daemon after a beat, or its restarted successor.
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// Build runs one build request against the daemon's shared state with no
// caller-supplied context. It is the pre-deadline entry point, kept for
// embedders and tests that drive the daemon without a listener.
func (s *Server) Build(req *BuildRequest) *BuildResponse {
	return s.BuildCtx(context.Background(), req)
}

// BuildCtx runs one build request under ctx. The build's effective context is
// ctx (the client connection) bounded by the smaller of the request's
// timeout_ms and the daemon's Deadline, and additionally cancelled by the
// drain hard-cancel. Admission: a draining daemon refuses immediately; a full
// queue sheds; otherwise the request waits for a build slot (cancellable).
func (s *Server) BuildCtx(ctx context.Context, req *BuildRequest) *BuildResponse {
	if s.draining.Load() {
		return s.refuse("drain", "daemon is draining for shutdown")
	}
	if depth := s.queued.Add(1); s.opts.MaxQueue >= 0 && depth > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		return s.refuse("shed", fmt.Sprintf("daemon overloaded: admission queue full (%d waiting, max %d)", depth-1, s.opts.MaxQueue))
	}
	queuedAt := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.queued.Add(-1)
		return s.refuse("canceled", "request cancelled while queued: "+ctx.Err().Error())
	case <-s.drainCh:
		s.queued.Add(-1)
		return s.refuse("drain", "daemon began draining while request was queued")
	}
	s.queued.Add(-1)
	queueWait := time.Since(queuedAt)
	s.running.Add(1)
	s.inflight.Add(1)
	defer func() {
		s.running.Add(-1)
		<-s.sem
		s.inflight.Done()
	}()

	bctx, cancel := s.buildContext(ctx, req)
	defer cancel()

	cfg, err := req.Config.pipelineConfig()
	if err != nil {
		resp := &BuildResponse{OK: false, Error: err.Error(), ErrorClass: "build"}
		s.finish(resp, queueWait)
		return resp
	}
	tr := obs.New()
	cfg.Ctx = bctx
	cfg.Tracer = tr
	cfg.Parallelism = s.opts.Parallelism
	cfg.CacheDir = s.opts.CacheDir
	// The shared accelerators. OpenBuildCache ignores both on fault-armed
	// requests, which also get a private cache handle.
	cfg.Flight = s.flight
	cfg.Remote = s.remote

	res, berr := pipeline.Build(req.sources(), cfg)
	resp := &BuildResponse{Counters: tr.Counters()}
	if berr != nil {
		resp.Error = berr.Error()
		resp.ErrorClass = classifyError(berr)
	} else {
		var buf bytes.Buffer
		if lerr := res.WriteImageListing(&buf); lerr != nil {
			resp.Error = fmt.Sprintf("slcd: rendering listing: %v", lerr)
			resp.ErrorClass = "build"
		} else {
			resp.OK = true
			resp.Listing = buf.String()
			resp.CodeSize = res.CodeSize()
			resp.TotalSize = res.BinarySize()
		}
	}
	s.finish(resp, queueWait)
	return resp
}

// buildContext assembles the build's context: ctx bounded by the smaller of
// the request's timeout_ms and the daemon Deadline, and tied to the drain
// hard-cancel so stragglers die at the drain deadline.
func (s *Server) buildContext(ctx context.Context, req *BuildRequest) (context.Context, context.CancelFunc) {
	timeout := s.opts.Deadline
	if reqTO := time.Duration(req.Config.TimeoutMS) * time.Millisecond; reqTO > 0 && (timeout == 0 || reqTO < timeout) {
		timeout = reqTO
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	stop := context.AfterFunc(s.hardCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// refuse builds the structured refusal response for shed/drain/queue-cancel
// outcomes and folds it into the daemon aggregates (counter
// "slcd/refused/<class>"; refusals don't count as builds — no pipeline ran).
func (s *Server) refuse(class, msg string) *BuildResponse {
	s.mu.Lock()
	s.counters["slcd/refused/"+class]++
	s.mu.Unlock()
	return &BuildResponse{OK: false, Error: "slcd: " + msg, ErrorClass: class}
}

// StartDrain flips the daemon into draining mode: /healthz reports draining,
// new and queued requests are refused with 503 + Retry-After, in-flight
// builds keep running. Idempotent.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Drain performs the graceful-shutdown protocol: StartDrain, wait up to
// timeout for in-flight builds to finish, then hard-cancel stragglers and
// wait for them to unwind. Returns true if every build finished before the
// deadline (no straggler was cancelled).
func (s *Server) Drain(timeout time.Duration) bool {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		s.hardCancel()
		<-done
		s.mu.Lock()
		s.counters["slcd/drain_hard_cancels"]++
		s.mu.Unlock()
		return false
	}
}

// finish folds one completed request into the daemon aggregates.
func (s *Server) finish(resp *BuildResponse, queueWait time.Duration) {
	remote := s.remote.DrainCounters()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.builds++
	if !resp.OK {
		s.failures++
		if resp.ErrorClass != "" {
			s.counters["slcd/failed/"+resp.ErrorClass]++
		}
	}
	s.counters["slcd/queue_wait_ns"] += queueWait.Nanoseconds()
	for name, v := range resp.Counters {
		s.counters[name] += v
	}
	for name, v := range remote {
		if strings.HasSuffix(name, "/inflight") || strings.HasSuffix(name, "/breaker_state") {
			s.counters[name] = v // gauge, not a sum
			continue
		}
		s.counters[name] += v
	}
}

// Stats is the GET /stats payload.
type Stats struct {
	// State is "serving" or "draining".
	State    string `json:"state"`
	Builds   int64  `json:"builds"`
	Failures int64  `json:"failures"`
	// QueueDepth/Running are point-in-time gauges: requests waiting for a
	// build slot and builds executing right now. MaxBuilds/MaxQueue are the
	// configured bounds behind the admission policy.
	QueueDepth int64 `json:"queue_depth"`
	Running    int64 `json:"running"`
	MaxBuilds  int   `json:"max_builds"`
	MaxQueue   int   `json:"max_queue"`
	// RemoteTimeoutMS is the effective per-operation remote shard timeout
	// (0 when no remote tier is configured).
	RemoteTimeoutMS int64 `json:"remote_timeout_ms"`
	// FlightExecs/FlightWaits are the single-flight layer's lifetime totals:
	// closures executed vs. callers that shared a leader's result.
	FlightExecs int64 `json:"flight_execs"`
	FlightWaits int64 `json:"flight_waits"`
	// Counters aggregates every completed request's counters plus the remote
	// tier's per-shard client counters (including the breaker state gauges
	// and transition totals) and the daemon's own slcd/* admission counters.
	Counters map[string]int64 `json:"counters"`
}

// Snapshot returns the daemon aggregates.
func (s *Server) Snapshot() Stats {
	execs, waits := s.flight.Stats()
	state := "serving"
	if s.draining.Load() {
		state = "draining"
	}
	st := Stats{
		State:           state,
		QueueDepth:      s.queued.Load(),
		Running:         s.running.Load(),
		MaxBuilds:       s.opts.MaxBuilds,
		MaxQueue:        s.opts.MaxQueue,
		RemoteTimeoutMS: s.remote.Timeout().Milliseconds(),
		FlightExecs:     execs,
		FlightWaits:     waits,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Builds = s.builds
	st.Failures = s.failures
	st.Counters = make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		st.Counters[k] = v
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Snapshot copies under s.mu; the (potentially slow) encode to the client
	// happens strictly outside the lock, so a stalled stats reader can never
	// block request completion.
	st := s.Snapshot()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		http.Error(w, "encoding stats: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
