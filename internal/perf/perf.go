// Package perf models the microarchitectural effects the paper's production
// evaluation turns on: instruction-cache and iTLB pressure (smaller code
// wins), branch/call overhead (outlining loses), data-page working sets
// (llvm-link's global reordering loses, §VI-3), all parameterized over a
// grid of device and OS models (Figure 13's axes).
//
// The model consumes the instruction trace of internal/exec and produces
// cycle counts. It is deliberately simple — in-order issue with additive
// penalties — because the paper's claims are about *directions and rough
// magnitudes* across configurations, not absolute hardware numbers.
package perf

import (
	"outliner/internal/exec"
	"outliner/internal/isa"
)

// Device is a hardware model (one row of Figure 13's heatmaps).
type Device struct {
	Name        string
	ICacheBytes int
	CacheLine   int
	ICacheAssoc int
	ITLBEntries int
	PageSize    int
	DCacheBytes int
	DCacheAssoc int

	// ResidentDataPages models memory pressure: data pages beyond this
	// working-set size fault on first re-touch.
	ResidentDataPages int

	BaseCPI          float64 // cycles per instruction, everything hitting
	ICacheMissCycles float64
	ITLBMissCycles   float64
	DCacheMissCycles float64
	BranchMissCycles float64
	PageFaultCycles  float64
	ClockGHz         float64
}

// OS is an operating-system model (one column of Figure 13): scheduling and
// runtime overhead scale all costs slightly.
type OS struct {
	Name     string
	Overhead float64 // multiplier ≥ 1.0
}

// Devices is the hardware grid used in the Figure 13 reproduction.
var Devices = []Device{
	{Name: "iPhone6s", ICacheBytes: 32 << 10, CacheLine: 64, ICacheAssoc: 4,
		ITLBEntries: 32, PageSize: 4096, DCacheBytes: 32 << 10, DCacheAssoc: 4,
		ResidentDataPages: 48, BaseCPI: 0.55, ICacheMissCycles: 30,
		ITLBMissCycles: 24, DCacheMissCycles: 32, BranchMissCycles: 14,
		PageFaultCycles: 24000, ClockGHz: 1.8},
	{Name: "iPhone7", ICacheBytes: 48 << 10, CacheLine: 64, ICacheAssoc: 4,
		ITLBEntries: 48, PageSize: 4096, DCacheBytes: 32 << 10, DCacheAssoc: 4,
		ResidentDataPages: 64, BaseCPI: 0.5, ICacheMissCycles: 28,
		ITLBMissCycles: 22, DCacheMissCycles: 30, BranchMissCycles: 13,
		PageFaultCycles: 22000, ClockGHz: 2.3},
	{Name: "iPhone8", ICacheBytes: 64 << 10, CacheLine: 64, ICacheAssoc: 4,
		ITLBEntries: 64, PageSize: 4096, DCacheBytes: 64 << 10, DCacheAssoc: 8,
		ResidentDataPages: 96, BaseCPI: 0.45, ICacheMissCycles: 26,
		ITLBMissCycles: 20, DCacheMissCycles: 28, BranchMissCycles: 12,
		PageFaultCycles: 20000, ClockGHz: 2.4},
	{Name: "iPhoneX-Gbl", ICacheBytes: 64 << 10, CacheLine: 64, ICacheAssoc: 8,
		ITLBEntries: 64, PageSize: 4096, DCacheBytes: 64 << 10, DCacheAssoc: 8,
		ResidentDataPages: 96, BaseCPI: 0.42, ICacheMissCycles: 24,
		ITLBMissCycles: 18, DCacheMissCycles: 26, BranchMissCycles: 11,
		PageFaultCycles: 18000, ClockGHz: 2.4},
	{Name: "iPhoneXS", ICacheBytes: 128 << 10, CacheLine: 64, ICacheAssoc: 8,
		ITLBEntries: 128, PageSize: 16384, DCacheBytes: 128 << 10, DCacheAssoc: 8,
		ResidentDataPages: 128, BaseCPI: 0.38, ICacheMissCycles: 22,
		ITLBMissCycles: 16, DCacheMissCycles: 24, BranchMissCycles: 10,
		PageFaultCycles: 16000, ClockGHz: 2.5},
	{Name: "iPhone11", ICacheBytes: 128 << 10, CacheLine: 64, ICacheAssoc: 8,
		ITLBEntries: 128, PageSize: 16384, DCacheBytes: 128 << 10, DCacheAssoc: 8,
		ResidentDataPages: 192, BaseCPI: 0.35, ICacheMissCycles: 20,
		ITLBMissCycles: 15, DCacheMissCycles: 22, BranchMissCycles: 9,
		PageFaultCycles: 15000, ClockGHz: 2.65},
}

// OSes is the operating-system grid.
var OSes = []OS{
	{Name: "12.4.1", Overhead: 1.06},
	{Name: "13.3.0", Overhead: 1.03},
	{Name: "13.5.1", Overhead: 1.00},
	{Name: "13.6.0", Overhead: 1.01},
}

// Result is a simulated run's cost breakdown.
type Result struct {
	Insts        int64
	Cycles       float64
	Seconds      float64
	ICacheMisses int64
	ITLBMisses   int64
	DCacheMisses int64
	BranchMisses int64
	PageFaults   int64
	IPC          float64
}

// Simulator consumes an instruction trace and accumulates cost.
type Simulator struct {
	dev Device
	os  OS

	icache *cacheModel
	dcache *cacheModel
	itlb   *lruSet
	dpages *lruSet
	bpred  map[int64]uint8 // 2-bit counters by branch PC

	res Result
}

// New returns a simulator for a device/OS pair.
func New(dev Device, os OS) *Simulator {
	return &Simulator{
		dev:    dev,
		os:     os,
		icache: newCacheModel(dev.ICacheBytes, dev.CacheLine, dev.ICacheAssoc),
		dcache: newCacheModel(dev.DCacheBytes, dev.CacheLine, dev.DCacheAssoc),
		itlb:   newLRUSet(dev.ITLBEntries),
		dpages: newLRUSet(dev.ResidentDataPages),
		bpred:  make(map[int64]uint8),
	}
}

// Observe is the exec trace hook.
func (s *Simulator) Observe(ev exec.Event) {
	s.res.Insts++
	s.res.Cycles += s.dev.BaseCPI

	// Instruction fetch: cache line + TLB page.
	if !s.icache.access(ev.PC) {
		s.res.ICacheMisses++
		s.res.Cycles += s.dev.ICacheMissCycles
	}
	if !s.itlb.access(ev.PC / int64(s.dev.PageSize)) {
		s.res.ITLBMisses++
		s.res.Cycles += s.dev.ITLBMissCycles
	}

	if ev.MemAddr != 0 {
		if !s.dcache.access(ev.MemAddr) {
			s.res.DCacheMisses++
			s.res.Cycles += s.dev.DCacheMissCycles
		}
		// Data working set: pages evicted under memory pressure fault on
		// re-touch. Stack pages are pinned (always resident).
		if !isStack(ev.MemAddr) {
			if !s.dpages.access(ev.MemAddr / int64(s.dev.PageSize)) {
				s.res.PageFaults++
				s.res.Cycles += s.dev.PageFaultCycles
			}
		}
	}

	if isBranchOp(ev) {
		taken := ev.Branch
		if s.predict(ev.PC, taken) != taken {
			s.res.BranchMisses++
			s.res.Cycles += s.dev.BranchMissCycles
		}
	}
}

func isStack(addr int64) bool { return addr >= 1<<34 && addr < (1<<34)+(4<<20) }

func isBranchOp(ev exec.Event) bool {
	// Conditional branches are the only ones the predictor can miss in this
	// model; calls/returns/unconditional branches are BTB hits ("outlined
	// branches are predictable by modern hardware" — §VII-E).
	switch ev.Op {
	case isa.Bcc, isa.CBZ, isa.CBNZ:
		return true
	}
	return false
}

// predict runs a 2-bit saturating counter per branch PC and returns the
// prediction while updating state.
func (s *Simulator) predict(pc int64, taken bool) bool {
	c := s.bpred[pc]
	pred := c >= 2
	if taken && c < 3 {
		c++
	}
	if !taken && c > 0 {
		c--
	}
	s.bpred[pc] = c
	return pred
}

// Finish applies OS overhead and computes derived metrics.
func (s *Simulator) Finish() Result {
	r := s.res
	r.Cycles *= s.os.Overhead
	if r.Cycles > 0 {
		r.IPC = float64(r.Insts) / r.Cycles
	}
	r.Seconds = r.Cycles / (s.dev.ClockGHz * 1e9)
	return r
}

// ---- cache and LRU machinery ----

type cacheModel struct {
	sets     []map[int64]int64 // tag -> last-use tick
	assoc    int
	lineBits uint
	setMask  int64
	tick     int64
}

func newCacheModel(bytes, line, assoc int) *cacheModel {
	nsets := bytes / line / assoc
	if nsets < 1 {
		nsets = 1
	}
	c := &cacheModel{
		sets:    make([]map[int64]int64, nsets),
		assoc:   assoc,
		setMask: int64(nsets - 1),
	}
	for line > 1 {
		line >>= 1
		c.lineBits++
	}
	for i := range c.sets {
		c.sets[i] = make(map[int64]int64, assoc)
	}
	return c
}

// access touches addr; reports hit.
func (c *cacheModel) access(addr int64) bool {
	c.tick++
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	if _, ok := set[lineAddr]; ok {
		set[lineAddr] = c.tick
		return true
	}
	if len(set) >= c.assoc {
		var victim int64
		oldest := int64(1 << 62)
		for tag, t := range set {
			if t < oldest {
				oldest = t
				victim = tag
			}
		}
		delete(set, victim)
	}
	set[lineAddr] = c.tick
	return false
}

type lruSet struct {
	entries map[int64]int64
	cap     int
	tick    int64
}

func newLRUSet(capacity int) *lruSet {
	if capacity < 1 {
		capacity = 1
	}
	return &lruSet{entries: make(map[int64]int64, capacity), cap: capacity}
}

func (l *lruSet) access(key int64) bool {
	l.tick++
	if _, ok := l.entries[key]; ok {
		l.entries[key] = l.tick
		return true
	}
	if len(l.entries) >= l.cap {
		var victim int64
		oldest := int64(1 << 62)
		for k, t := range l.entries {
			if t < oldest {
				oldest = t
				victim = k
			}
		}
		delete(l.entries, victim)
	}
	l.entries[key] = l.tick
	return false
}
