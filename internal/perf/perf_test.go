package perf

import (
	"testing"

	"outliner/internal/exec"
	"outliner/internal/isa"
)

func TestCacheModelBasics(t *testing.T) {
	c := newCacheModel(1024, 64, 2) // 8 sets, 2-way
	if c.access(0) {
		t.Error("cold access must miss")
	}
	if !c.access(0) || !c.access(8) { // same line
		t.Error("warm accesses to the same line must hit")
	}
	// Fill the set containing line 0: lines mapping to set 0 are multiples
	// of 8*64=512 bytes.
	c.access(512)
	c.access(1024) // evicts the LRU entry (line 0, which was last touched earlier)
	if c.access(0) {
		t.Error("line 0 should have been evicted by two newer lines")
	}
}

func TestCacheModelLRUOrder(t *testing.T) {
	c := newCacheModel(128, 64, 2) // 1 set, 2-way
	c.access(0)
	c.access(64)
	c.access(0)   // 0 is now MRU
	c.access(128) // evicts 64
	if !c.access(0) {
		t.Error("MRU line evicted")
	}
	if c.access(64) {
		t.Error("LRU line not evicted")
	}
}

func TestLRUSet(t *testing.T) {
	l := newLRUSet(2)
	if l.access(1) {
		t.Error("cold miss expected")
	}
	l.access(2)
	if !l.access(1) {
		t.Error("1 should be resident")
	}
	l.access(3) // evicts 2
	if l.access(2) {
		t.Error("2 should have been evicted")
	}
}

func TestBranchPredictorLearns(t *testing.T) {
	s := New(Devices[0], OSes[2])
	misses := 0
	for i := 0; i < 100; i++ {
		if s.predict(100, true) != true {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("always-taken branch mispredicted %d times", misses)
	}
}

// A loop running entirely inside one cache line must be far cheaper per
// instruction than a cold sweep over a large footprint.
func TestHotLoopCheaperThanColdSweep(t *testing.T) {
	dev, os := Devices[0], OSes[2]

	hot := New(dev, os)
	for i := 0; i < 10000; i++ {
		hot.Observe(exec.Event{PC: 1 << 36, Size: 4, Op: isa.ADDri})
	}
	hotRes := hot.Finish()

	cold := New(dev, os)
	for i := 0; i < 10000; i++ {
		cold.Observe(exec.Event{PC: int64(1<<36) + int64(i)*256, Size: 4, Op: isa.ADDri})
	}
	coldRes := cold.Finish()

	if hotRes.Cycles >= coldRes.Cycles {
		t.Errorf("hot loop (%f) not cheaper than cold sweep (%f)", hotRes.Cycles, coldRes.Cycles)
	}
	if coldRes.ICacheMisses == 0 {
		t.Error("cold sweep produced no icache misses")
	}
	if hotRes.IPC <= coldRes.IPC {
		t.Error("hot loop must have higher IPC")
	}
}

// Scattered data pages under memory pressure fault; grouped pages do not —
// the §VI-3 data-layout effect.
func TestDataPageFaults(t *testing.T) {
	dev, os := Devices[0], OSes[2]
	heap := int64(1) << 28

	grouped := New(dev, os)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 1000; i++ {
			addr := heap + int64(i/100)*4096 + int64(i%100)*8 // 10 pages
			grouped.Observe(exec.Event{PC: 1 << 36, Size: 4, Op: isa.LDRui, MemAddr: addr, IsLoad: true})
		}
	}
	gr := grouped.Finish()

	scattered := New(dev, os)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 1000; i++ {
			addr := heap + int64(i)*4096 // 1000 pages, far over residency
			scattered.Observe(exec.Event{PC: 1 << 36, Size: 4, Op: isa.LDRui, MemAddr: addr, IsLoad: true})
		}
	}
	sc := scattered.Finish()

	if gr.PageFaults >= sc.PageFaults {
		t.Errorf("grouped faults (%d) not fewer than scattered (%d)", gr.PageFaults, sc.PageFaults)
	}
	if sc.Cycles <= gr.Cycles {
		t.Error("scattered data must cost more cycles")
	}
}

func TestStackIsPinned(t *testing.T) {
	dev, os := Devices[0], OSes[2]
	s := New(dev, os)
	stack := int64(1) << 34
	for i := 0; i < 10000; i++ {
		s.Observe(exec.Event{PC: 1 << 36, Size: 4, Op: isa.STRui,
			MemAddr: stack + int64(i%512)*8, IsStore: true})
	}
	if r := s.Finish(); r.PageFaults != 0 {
		t.Errorf("stack accesses faulted %d times; stack is pinned", r.PageFaults)
	}
}

func TestOSOverheadOrdering(t *testing.T) {
	trace := func(s *Simulator) Result {
		for i := 0; i < 1000; i++ {
			s.Observe(exec.Event{PC: int64(1<<36) + int64(i%64)*4, Size: 4, Op: isa.ADDri})
		}
		return s.Finish()
	}
	slow := trace(New(Devices[0], OSes[0])) // 12.4.1, overhead 1.06
	fast := trace(New(Devices[0], OSes[2])) // 13.5.1, overhead 1.00
	if slow.Cycles <= fast.Cycles {
		t.Error("older OS must cost more")
	}
}

func TestNewerDevicesFaster(t *testing.T) {
	trace := func(s *Simulator) Result {
		for i := 0; i < 20000; i++ {
			s.Observe(exec.Event{PC: int64(1<<36) + int64(i*4%(256<<10)), Size: 4, Op: isa.ADDri})
		}
		return s.Finish()
	}
	old := trace(New(Devices[0], OSes[2]))
	newest := trace(New(Devices[len(Devices)-1], OSes[2]))
	if newest.Seconds >= old.Seconds {
		t.Errorf("newest device (%f s) not faster than oldest (%f s)", newest.Seconds, old.Seconds)
	}
}

func TestDeviceGridShape(t *testing.T) {
	if len(Devices) < 6 || len(OSes) < 4 {
		t.Fatalf("grid too small: %d devices × %d OSes", len(Devices), len(OSes))
	}
	names := map[string]bool{}
	for _, d := range Devices {
		if names[d.Name] {
			t.Errorf("duplicate device %s", d.Name)
		}
		names[d.Name] = true
		if d.ICacheBytes <= 0 || d.BaseCPI <= 0 || d.ClockGHz <= 0 {
			t.Errorf("device %s has invalid parameters", d.Name)
		}
	}
}
