package perf

import (
	"strings"
	"testing"

	"outliner/internal/binimg"
	"outliner/internal/profile"
)

// syntheticImage lays out three functions: two sharing page 0, one alone on
// page 2 (4KiB pages).
func syntheticImage() *binimg.Image {
	return &binimg.Image{
		CodeSize: 9000,
		Symbols: []binimg.Symbol{
			{Name: "near_a", Addr: 0, Size: 128, Code: true},
			{Name: "near_b", Addr: 128, Size: 128, Code: true},
			{Name: "far_c", Addr: 8192, Size: 808, Code: true},
			{Name: "glob", Addr: 0, Size: 64, Code: false},
		},
	}
}

func dev4k() Device { return Devices[0] } // iPhone6s: 4KiB pages

func TestPageTouchCrossPageCalls(t *testing.T) {
	p := profile.New()
	a := p.Func("near_a")
	a.Entries, a.Steps = 1, 100
	a.Calls = map[string]int64{
		profile.EdgeKey("near_b", 16): 10, // same page
		profile.EdgeKey("far_c", 32):  5,  // crosses to page 2
	}
	p.Func("near_b").Entries = 10
	p.Func("near_b").Steps = 50
	p.Func("far_c").Entries = 5
	p.Func("far_c").Steps = 25

	r := PageTouch(syntheticImage(), p, dev4k())
	if r.TotalCalls != 15 || r.CrossPageCalls != 5 {
		t.Fatalf("calls = %d/%d, want 5/15", r.CrossPageCalls, r.TotalCalls)
	}
	if r.TouchedPages != 2 {
		t.Fatalf("touched = %d, want 2 (page 0 and page 2)", r.TouchedPages)
	}
	if r.CodePages != 3 {
		t.Fatalf("code pages = %d, want 3", r.CodePages)
	}
	if got := r.CrossRatio(); got < 0.33 || got > 0.34 {
		t.Fatalf("cross ratio = %v", got)
	}
	if r.Faults == 0 {
		t.Fatal("expected first-touch faults")
	}
	out := FormatPageTouch(r)
	if !strings.Contains(out, "cross-page calls: 5/15") {
		t.Fatalf("report: %s", out)
	}
}

func TestPageTouchDeterministicAndInert(t *testing.T) {
	p := profile.New()
	f := p.Func("near_a")
	f.Entries, f.Steps = 3, 30
	f.Calls = map[string]int64{
		profile.EdgeKey("far_c", 8):      100,
		profile.EdgeKey("near_b", 4):     7,
		profile.EdgeKey("print_int", 12): 9, // runtime callee: not in image
		"malformed-edge":                 1,
	}
	img := syntheticImage()
	r1 := PageTouch(img, p, dev4k())
	r2 := PageTouch(img, p, dev4k())
	if r1 != r2 {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
	if r1.TotalCalls != 107 { // runtime + malformed edges excluded
		t.Fatalf("TotalCalls = %d, want 107", r1.TotalCalls)
	}
	empty := PageTouch(img, nil, dev4k())
	if empty.TouchedPages != 0 || empty.TotalCalls != 0 || empty.Faults != 0 {
		t.Fatalf("nil profile must be inert: %+v", empty)
	}
	if empty.CodePages != 3 {
		t.Fatalf("CodePages = %d", empty.CodePages)
	}
}

// TestPageTouchSizes pins the report grid: one result per distinct device
// page size (the grid has 4KiB and 16KiB devices), ascending, so every
// renderer shows both geometries instead of Devices[0] only.
func TestPageTouchSizes(t *testing.T) {
	devs := PageSizeDevices()
	if len(devs) != 2 || devs[0].PageSize != 4096 || devs[1].PageSize != 16384 {
		t.Fatalf("PageSizeDevices = %+v, want one 4096 and one 16384 device", devs)
	}
	p := profile.New()
	f := p.Func("near_a")
	f.Entries, f.Steps = 1, 10
	f.Calls = map[string]int64{profile.EdgeKey("far_c", 8): 5}
	p.Func("far_c").Entries = 5
	p.Func("far_c").Steps = 25
	rs := PageTouchSizes(syntheticImage(), p)
	if len(rs) != 2 {
		t.Fatalf("PageTouchSizes returned %d results, want 2", len(rs))
	}
	if rs[0].PageSize != 4096 || rs[1].PageSize != 16384 {
		t.Fatalf("page sizes %d/%d, want 4096/16384", rs[0].PageSize, rs[1].PageSize)
	}
	// far_c at 8192 is two 4KiB pages away from near_a but on the same
	// 16KiB page: the call crosses only in the small-page geometry.
	if rs[0].CrossPageCalls != 5 || rs[1].CrossPageCalls != 0 {
		t.Fatalf("cross-page calls %d/%d, want 5 at 4KiB and 0 at 16KiB",
			rs[0].CrossPageCalls, rs[1].CrossPageCalls)
	}
}
