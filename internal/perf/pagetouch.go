package perf

import (
	"fmt"
	"sort"
	"strings"

	"outliner/internal/binimg"
	"outliner/internal/profile"
)

// PageTouchResult is the code-locality yardstick for layout work: how an
// image's function placement interacts with a profile's call graph. It is
// the metric Codestitcher and "Optimizing Function Layout for Mobile
// Applications" optimize — callers placed near callees keep hot call chains
// within fewer pages, cutting cold-start page faults and iTLB pressure —
// computed here entirely from a (profile, image) pair, no re-execution.
type PageTouchResult struct {
	PageSize int
	// CodePages is the total page count the code section spans.
	CodePages int
	// TouchedPages counts pages containing at least one executed function —
	// the working set a run of the profiled workload pulls in.
	TouchedPages int
	// CrossPageCalls is the execution-weighted number of profiled call edges
	// whose call site and callee entry live on different pages; TotalCalls
	// is the weighted total with both endpoints in the image. Their ratio is
	// the layout's page-locality score.
	CrossPageCalls int64
	TotalCalls     int64
	// Faults counts misses of a resident-set LRU over a deterministic
	// replay of the profiled call edges — a first-touch / re-touch page
	// fault model of walking the call graph on a memory-constrained device.
	Faults int64
}

// CrossRatio returns CrossPageCalls/TotalCalls (0 when no calls).
func (r PageTouchResult) CrossRatio() float64 {
	if r.TotalCalls == 0 {
		return 0
	}
	return float64(r.CrossPageCalls) / float64(r.TotalCalls)
}

// PageTouch evaluates img's code layout against an execution profile on dev.
// Deterministic: iteration is in sorted function/edge order and the edge
// replay compresses counts logarithmically, so equal (profile, image, device)
// triples produce equal results in bounded time regardless of count scale.
func PageTouch(img *binimg.Image, p *profile.Profile, dev Device) PageTouchResult {
	pageSize := int64(dev.PageSize)
	if pageSize == 0 {
		pageSize = binimg.PageSize
	}
	res := PageTouchResult{PageSize: int(pageSize)}

	syms := make(map[string]binimg.Symbol)
	codeEnd := int64(0)
	for _, s := range img.Symbols {
		if !s.Code {
			continue
		}
		syms[s.Name] = s
		if end := int64(s.Addr + s.Size); end > codeEnd {
			codeEnd = end
		}
	}
	res.CodePages = int((codeEnd + pageSize - 1) / pageSize)
	if p == nil {
		return res
	}

	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	touched := make(map[int64]bool)
	resident := newLRUSet(residentCodePages(dev))
	for _, name := range names {
		fp := p.Funcs[name]
		sym, ok := syms[name]
		if !ok {
			continue // runtime entries and dead-stripped functions
		}
		if fp.Entries > 0 || fp.Steps > 0 {
			for pg := int64(sym.Addr) / pageSize; pg <= int64(sym.Addr+sym.Size-1)/pageSize; pg++ {
				touched[pg] = true
			}
		}
		edges := make([]string, 0, len(fp.Calls))
		for edge := range fp.Calls {
			edges = append(edges, edge)
		}
		sort.Strings(edges)
		for _, edge := range edges {
			callee, off, ok := profile.SplitEdgeKey(edge)
			if !ok {
				continue
			}
			n := fp.Calls[edge]
			site := int64(sym.Addr) + off
			csym, inImage := syms[callee]
			if inImage {
				res.TotalCalls += n
				if site/pageSize != int64(csym.Addr)/pageSize {
					res.CrossPageCalls += n
				}
			}
			// Replay the edge against the resident set log2(n)+1 times: heavy
			// edges keep their pages resident longer without making the replay
			// cost proportional to dynamic execution counts.
			for reps := replayCount(n); reps > 0; reps-- {
				if !resident.access(site / pageSize) {
					res.Faults++
				}
				if inImage {
					if !resident.access(int64(csym.Addr) / pageSize) {
						res.Faults++
					}
				}
			}
		}
	}
	res.TouchedPages = len(touched)
	return res
}

// residentCodePages sizes the fault model's working set; reuse the device's
// data working-set knob as the code one (same memory-pressure model).
func residentCodePages(dev Device) int {
	if dev.ResidentDataPages > 0 {
		return dev.ResidentDataPages
	}
	return 64
}

// replayCount compresses an edge's execution count into replay repetitions:
// 0 → 0, then log2(n)+1, capped so hostile profiles stay bounded.
func replayCount(n int64) int {
	if n <= 0 {
		return 0
	}
	reps := 1
	for n > 1 {
		n >>= 1
		reps++
	}
	if reps > 40 {
		reps = 40
	}
	return reps
}

// PageSizeDevices returns one representative device per distinct page size in
// the Devices grid, ascending — the sizes a layout report must cover (4 KiB
// for the iPhone 6s–X rows, 16 KiB for iPhone XS and later). Reporting only
// binimg.PageSize hides how a layout behaves on large-page devices, where
// clusters that straddle a 4 KiB boundary may still share one 16 KiB page.
func PageSizeDevices() []Device {
	seen := make(map[int]bool)
	var out []Device
	for _, d := range Devices {
		if !seen[d.PageSize] {
			seen[d.PageSize] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PageSize < out[j].PageSize })
	return out
}

// PageTouchSizes evaluates img against p at every distinct device page size,
// ascending — the full grid view every renderer of the metric should use.
func PageTouchSizes(img *binimg.Image, p *profile.Profile) []PageTouchResult {
	devs := PageSizeDevices()
	out := make([]PageTouchResult, len(devs))
	for i, d := range devs {
		out[i] = PageTouch(img, p, d)
	}
	return out
}

// FormatPageTouch renders the metric for reports.
func FormatPageTouch(r PageTouchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "page-touch (%d-byte pages): %d/%d code pages touched\n",
		r.PageSize, r.TouchedPages, r.CodePages)
	fmt.Fprintf(&b, "  cross-page calls: %d/%d (%.1f%%)\n",
		r.CrossPageCalls, r.TotalCalls, 100*r.CrossRatio())
	fmt.Fprintf(&b, "  simulated page faults: %d\n", r.Faults)
	return b.String()
}
