package experiments

import (
	"fmt"
	"io"

	"outliner/internal/appgen"
	"outliner/internal/outline"
	"outliner/internal/pipeline"
)

// Fig12Point is one configuration of the rounds sweep.
type Fig12Point struct {
	Rounds      int
	InterBinary int
	InterCode   int
	IntraBinary int
	IntraCode   int
}

// Fig12Result reproduces Figure 12 (binary and code size vs rounds of
// outlining, inter- vs intra-module) and Table II (per-round outlining
// statistics for the whole-program configuration).
type Fig12Result struct {
	Points []Fig12Point
	// Table II cumulative statistics after rounds 1..5 (whole program).
	Table2 []outline.RoundStats
}

// RunFig12 sweeps outline rounds 0..maxRounds for both pipelines.
func RunFig12(w io.Writer, scale float64, maxRounds int) (*Fig12Result, error) {
	res := &Fig12Result{}
	for rounds := 0; rounds <= maxRounds; rounds++ {
		inter := optimizedConfig()
		inter.OutlineRounds = rounds
		interRes, err := appgen.BuildApp(appgen.UberRider, scale, inter)
		if err != nil {
			return nil, fmt.Errorf("fig12 inter rounds=%d: %w", rounds, err)
		}
		intra := pipeline.Config{
			OutlineRounds: rounds, SILOutline: true, SpecializeClosures: true,
			MergeFunctions: true, Parallelism: Parallelism,
		}
		intraRes, err := appgen.BuildApp(appgen.UberRider, scale, intra)
		if err != nil {
			return nil, fmt.Errorf("fig12 intra rounds=%d: %w", rounds, err)
		}
		res.Points = append(res.Points, Fig12Point{
			Rounds:      rounds,
			InterBinary: interRes.BinarySize(), InterCode: interRes.CodeSize(),
			IntraBinary: intraRes.BinarySize(), IntraCode: intraRes.CodeSize(),
		})
		if rounds == 5 && interRes.Outline != nil {
			// Table II: convert per-round to cumulative.
			cum := outline.RoundStats{}
			for _, r := range interRes.Outline.Rounds {
				cum.SequencesOutlined += r.SequencesOutlined
				cum.FunctionsCreated += r.FunctionsCreated
				cum.OutlinedBytes += r.OutlinedBytes
				c := cum
				c.Round = r.Round
				res.Table2 = append(res.Table2, c)
			}
		}
	}

	fmt.Fprintln(w, "FIGURE 12: size vs rounds of machine outlining, inter- vs intra-module")
	fmt.Fprintln(w, "(paper: inter-module wins clearly; gains plateau ~3 rounds, none past 5)")
	fmt.Fprintln(w)
	rows := [][]string{{"rounds", "inter binary", "inter code", "intra binary", "intra code"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%d", p.InterBinary), fmt.Sprintf("%d", p.InterCode),
			fmt.Sprintf("%d", p.IntraBinary), fmt.Sprintf("%d", p.IntraCode),
		})
	}
	table(w, rows)

	base := res.Points[0]
	last := res.Points[len(res.Points)-1]
	fmt.Fprintf(w, "\nwhole-program code saving at max rounds: %s (paper: 22.8%%)\n",
		percent(1-float64(last.InterCode)/float64(base.InterCode)))
	fmt.Fprintf(w, "intra-module code saving at max rounds:   %s (paper: ~12%%; 13.7%% worse than inter)\n",
		percent(1-float64(last.IntraCode)/float64(base.IntraCode)))

	if len(res.Table2) > 0 {
		fmt.Fprintln(w, "\nTABLE II: outlining statistics at different levels of repeats (cumulative)")
		rows := [][]string{{"metric \\ rounds", "1", "2", "3", "4", "5"}}
		seq := []string{"# sequences outlined"}
		fns := []string{"# functions created"}
		bytes := []string{"bytes of outlined functions"}
		for _, c := range res.Table2 {
			seq = append(seq, fmt.Sprintf("%d", c.SequencesOutlined))
			fns = append(fns, fmt.Sprintf("%d", c.FunctionsCreated))
			bytes = append(bytes, fmt.Sprintf("%d", c.OutlinedBytes))
		}
		rows = append(rows, seq, fns, bytes)
		table(w, rows)
	}
	return res, nil
}
