package experiments

import (
	"fmt"
	"io"

	"outliner/internal/appgen"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/pipeline"
)

// Fig12Point is one configuration of the rounds sweep.
type Fig12Point struct {
	Rounds      int
	InterBinary int
	InterCode   int
	IntraBinary int
	IntraCode   int
}

// Fig12Result reproduces Figure 12 (binary and code size vs rounds of
// outlining, inter- vs intra-module) and Table II (per-round outlining
// statistics for the whole-program configuration).
type Fig12Result struct {
	Points []Fig12Point
	// Table II cumulative statistics after rounds 1..5 (whole program),
	// derived from the outliner's obs.RoundCounter counter stream.
	Table2 []outline.RoundStats
}

// RunFig12 sweeps outline rounds 0..maxRounds for both pipelines.
func RunFig12(w io.Writer, scale float64, maxRounds int) (*Fig12Result, error) {
	res := &Fig12Result{}
	// Table II is derived from the obs counter stream the outliner emits
	// (obs.RoundCounter), not from the pipeline's private Stats struct:
	// snapshots bracket the rounds=5 whole-program build so the shared
	// Tracer's cumulative counters scope to that one build.
	tr := countingTracer()
	for rounds := 0; rounds <= maxRounds; rounds++ {
		inter := optimizedConfig()
		inter.OutlineRounds = rounds
		inter.Tracer = tr
		var before map[string]int64
		if rounds == 5 {
			before = tr.Counters()
		}
		interRes, err := appgen.BuildApp(appgen.UberRider, scale, inter)
		if err != nil {
			return nil, fmt.Errorf("fig12 inter rounds=%d: %w", rounds, err)
		}
		if rounds == 5 {
			d := counterDelta(before, tr.Counters())
			ran := int(d["outline/rounds"])
			cum := outline.RoundStats{}
			for r := 1; r <= ran; r++ {
				cum.SequencesOutlined += int(d[obs.RoundCounter(r, obs.RoundSequences)])
				cum.FunctionsCreated += int(d[obs.RoundCounter(r, obs.RoundFunctions)])
				cum.OutlinedBytes += int(d[obs.RoundCounter(r, obs.RoundOutlinedBytes)])
				cum.BytesSaved += int(d[obs.RoundCounter(r, obs.RoundBytesSaved)])
				c := cum
				c.Round = r
				res.Table2 = append(res.Table2, c)
			}
		}
		intra := pipeline.Config{
			OutlineRounds: rounds, SILOutline: true, SpecializeClosures: true,
			MergeFunctions: true, Parallelism: Parallelism, Tracer: Tracer,
		}
		intraRes, err := appgen.BuildApp(appgen.UberRider, scale, intra)
		if err != nil {
			return nil, fmt.Errorf("fig12 intra rounds=%d: %w", rounds, err)
		}
		res.Points = append(res.Points, Fig12Point{
			Rounds:      rounds,
			InterBinary: interRes.BinarySize(), InterCode: interRes.CodeSize(),
			IntraBinary: intraRes.BinarySize(), IntraCode: intraRes.CodeSize(),
		})
	}

	fmt.Fprintln(w, "FIGURE 12: size vs rounds of machine outlining, inter- vs intra-module")
	fmt.Fprintln(w, "(paper: inter-module wins clearly; gains plateau ~3 rounds, none past 5)")
	fmt.Fprintln(w)
	rows := [][]string{{"rounds", "inter binary", "inter code", "intra binary", "intra code"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%d", p.InterBinary), fmt.Sprintf("%d", p.InterCode),
			fmt.Sprintf("%d", p.IntraBinary), fmt.Sprintf("%d", p.IntraCode),
		})
	}
	table(w, rows)

	base := res.Points[0]
	last := res.Points[len(res.Points)-1]
	fmt.Fprintf(w, "\nwhole-program code saving at max rounds: %s (paper: 22.8%%)\n",
		percent(1-float64(last.InterCode)/float64(base.InterCode)))
	fmt.Fprintf(w, "intra-module code saving at max rounds:   %s (paper: ~12%%; 13.7%% worse than inter)\n",
		percent(1-float64(last.IntraCode)/float64(base.IntraCode)))

	if len(res.Table2) > 0 {
		fmt.Fprintln(w, "\nTABLE II: outlining statistics at different levels of repeats (cumulative)")
		rows := [][]string{{"metric \\ rounds", "1", "2", "3", "4", "5"}}
		seq := []string{"# sequences outlined"}
		fns := []string{"# functions created"}
		bytes := []string{"bytes of outlined functions"}
		saved := []string{"net bytes saved"}
		for _, c := range res.Table2 {
			seq = append(seq, fmt.Sprintf("%d", c.SequencesOutlined))
			fns = append(fns, fmt.Sprintf("%d", c.FunctionsCreated))
			bytes = append(bytes, fmt.Sprintf("%d", c.OutlinedBytes))
			saved = append(saved, fmt.Sprintf("%d", c.BytesSaved))
		}
		rows = append(rows, seq, fns, bytes, saved)
		table(w, rows)
	}
	return res, nil
}
