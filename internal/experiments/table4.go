package experiments

import (
	"fmt"
	"io"
	"sort"

	"outliner/internal/perf"
	"outliner/internal/stats"
)

// Table4Row is one benchmark's result: the performance overhead of five
// rounds of machine outlining relative to the unoutlined build (negative =
// speedup), plus the size effect ("inconsequential" for these small
// programs, per the paper).
type Table4Row struct {
	Benchmark     string
	BaseCycles    float64
	OutCycles     float64
	OverheadPct   float64
	SizeSavingPct float64
	OutputsMatch  bool
}

// Table4Result is the whole suite.
type Table4Result struct {
	Rows       []Table4Row
	AvgPct     float64
	MaxPct     float64
	MaxName    string
	Mismatches int
}

// RunTable4 reproduces Table IV: the 26 Swift benchmarks compiled with and
// without five rounds of outlining, timed under the cycle model. The
// pathological loop case (§VII-E's 8.67% anecdote) is RunPathological.
func RunTable4(w io.Writer) (*Table4Result, error) {
	benches, err := LoadBenchmarks()
	if err != nil {
		return nil, err
	}
	dev, osm := perf.Devices[3], perf.OSes[2] // iPhoneX / 13.5.1
	res := &Table4Result{}
	const maxSteps = 200_000_000

	for _, name := range sortedKeys(benches) {
		base, err := buildBench(name, benches[name], 0)
		if err != nil {
			return nil, fmt.Errorf("%s (base): %w", name, err)
		}
		opt, err := buildBench(name, benches[name], 5)
		if err != nil {
			return nil, fmt.Errorf("%s (outlined): %w", name, err)
		}
		baseOut, basePerf, err := runOnDevice(base, "main", dev, osm, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("%s (base run): %w", name, err)
		}
		optOut, optPerf, err := runOnDevice(opt, "main", dev, osm, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("%s (outlined run): %w", name, err)
		}
		row := Table4Row{
			Benchmark:     name,
			BaseCycles:    basePerf.Cycles,
			OutCycles:     optPerf.Cycles,
			OverheadPct:   (optPerf.Cycles/basePerf.Cycles - 1) * 100,
			SizeSavingPct: (1 - float64(opt.CodeSize())/float64(base.CodeSize())) * 100,
			OutputsMatch:  baseOut == optOut,
		}
		if !row.OutputsMatch {
			res.Mismatches++
		}
		res.Rows = append(res.Rows, row)
	}

	var overheads []float64
	for _, r := range res.Rows {
		overheads = append(overheads, r.OverheadPct)
		if r.OverheadPct > res.MaxPct {
			res.MaxPct = r.OverheadPct
			res.MaxName = r.Benchmark
		}
	}
	res.AvgPct = stats.Mean(overheads)

	fmt.Fprintln(w, "TABLE IV: performance overhead of five rounds of machine outlining")
	fmt.Fprintln(w, "(paper: avg ~1.6-1.8%, worst Dijkstra 10.81%, several speedups)")
	fmt.Fprintln(w)
	rows := [][]string{{"Benchmark", "%overhead", "size saving", "outputs"}}
	byOverhead := append([]Table4Row(nil), res.Rows...)
	sort.Slice(byOverhead, func(i, j int) bool { return byOverhead[i].Benchmark < byOverhead[j].Benchmark })
	for _, r := range byOverhead {
		match := "ok"
		if !r.OutputsMatch {
			match = "MISMATCH"
		}
		rows = append(rows, []string{
			r.Benchmark,
			fmt.Sprintf("%+.2f", r.OverheadPct),
			fmt.Sprintf("%.1f%%", r.SizeSavingPct),
			match,
		})
	}
	table(w, rows)
	fmt.Fprintf(w, "\nAverage overhead: %+.2f%%  (worst: %s %+.2f%%)\n",
		res.AvgPct, res.MaxName, res.MaxPct)
	return res, nil
}

// RunPathological reproduces the §VII-E anecdote: a long-running loop whose
// tiny body is outlined; the call overhead shows but stays bounded because
// outlined branches predict well.
func RunPathological(w io.Writer) (float64, error) {
	src := `
func work(a: Int, b: Int) -> Int {
  var acc = a
  var i = 0
  while i < 400000 {
    acc = acc + b
    acc = acc % 888883
    acc = acc + b
    acc = acc % 888883
    i = i + 1
  }
  return acc
}
func main() { print(work(a: 1, b: 31)) }
`
	base, err := buildBench("patho", src, 0)
	if err != nil {
		return 0, err
	}
	// Force outlining of the loop body with an aggressive config: replicate
	// the body shape in sibling functions so the pattern repeats.
	multi := src + `
func work2(a: Int, b: Int) -> Int {
  var acc = a
  var i = 0
  while i < 3 {
    acc = acc + b
    acc = acc % 888883
    acc = acc + b
    acc = acc % 888883
    i = i + 1
  }
  return acc
}
func work3(a: Int, b: Int) -> Int {
  var acc = a
  var i = 0
  while i < 3 {
    acc = acc + b
    acc = acc % 888883
    acc = acc + b
    acc = acc % 888883
    i = i + 1
  }
  return acc
}
`
	baseM, err := buildBench("patho", multi, 0)
	if err != nil {
		return 0, err
	}
	optM, err := buildBench("patho", multi, 5)
	if err != nil {
		return 0, err
	}
	_ = base
	dev, osm := perf.Devices[3], perf.OSes[2]
	outA, basePerf, err := runOnDevice(baseM, "main", dev, osm, 500_000_000)
	if err != nil {
		return 0, err
	}
	outB, optPerf, err := runOnDevice(optM, "main", dev, osm, 500_000_000)
	if err != nil {
		return 0, err
	}
	if outA != outB {
		return 0, fmt.Errorf("pathological case outputs differ")
	}
	slow := (optPerf.Cycles/basePerf.Cycles - 1) * 100
	fmt.Fprintf(w, "Pathological hot-loop outlining: %+.2f%% slowdown (paper: 8.67%%)\n", slow)
	return slow, nil
}
