package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/pipeline"
)

// BuildTimeResult reproduces §VII-C: the default pipeline is fast; the
// whole-program pipeline pays for llvm-link + whole-program opt + llc; each
// extra outlining round adds progressively less. (The paper: 21 min default,
// 53 min new pipeline without outlining, 66 min with five rounds.) The
// serial-vs-parallel axis is the reproduction's addition: the paper's
// whole-program pipeline forfeits per-module build parallelism, and the
// Serial/Parallel columns measure how much of that cost the deterministic
// parallel execution layer (internal/par) recovers on this machine.
type BuildTimeResult struct {
	DefaultDur  time.Duration
	WholeNoOut  time.Duration
	WholeRounds []time.Duration // index = rounds (1..5)
	// Stages sums the obs stage spans of the no-outlining whole-program
	// serial build; Counters is the obs counter delta of the full 5-round
	// serial build (the configuration the paper ships).
	Stages   map[string]time.Duration
	Counters map[string]int64

	// Serial (Parallelism=1) vs parallel (one worker per CPU) timings for
	// the same configurations, and the worker count used for the latter.
	DefaultSerial   time.Duration
	DefaultParallel time.Duration
	WholeSerial     []time.Duration // index = rounds (0..5); [0] = no outlining
	WholeParallel   []time.Duration
	Workers         int

	// The incremental-build-cache axis: each configuration built twice
	// against a private cache directory (parallel workers), cold then warm,
	// with the warm build's cache hit rate. The rows above always run
	// uncached — they measure the pipelines themselves.
	CacheLabels  []string
	CacheCold    []time.Duration
	CacheWarm    []time.Duration
	CacheHitRate []float64
}

// Speedup is the parallel speedup of the full whole-program build (five
// rounds of outlining) — the configuration the paper ships.
func (r *BuildTimeResult) Speedup() float64 {
	n := len(r.WholeSerial) - 1
	if n < 0 || r.WholeParallel[n] <= 0 {
		return 1
	}
	return float64(r.WholeSerial[n]) / float64(r.WholeParallel[n])
}

// RunBuildTime measures wall-clock build times on the synthetic app.
func RunBuildTime(w io.Writer, scale float64) (*BuildTimeResult, error) {
	res := &BuildTimeResult{
		Stages:  map[string]time.Duration{},
		Workers: runtime.GOMAXPROCS(0),
	}

	// All builds run under one obs.Tracer; stage times and counters are read
	// back from it (Mark / Counters snapshots scope them to a single build)
	// instead of keeping private bookkeeping.
	tr := countingTracer()
	timeBuild := func(cfg pipeline.Config) (time.Duration, *pipeline.Result, error) {
		cfg.Tracer = tr
		cfg.CacheDir = "" // the main rows measure the uncached pipelines
		start := time.Now()
		r, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
		return time.Since(start), r, err
	}
	// Each configuration builds twice: fully serial (Parallelism=1, the
	// paper's situation) and with one worker per CPU. The outputs are
	// byte-identical; only the wall clock differs. delta holds the counter
	// change of the serial build.
	timeBoth := func(cfg pipeline.Config) (serial, parallel time.Duration, delta map[string]int64, err error) {
		cfg.Parallelism = 1
		before := tr.Counters()
		serial, _, err = timeBuild(cfg)
		if err != nil {
			return 0, 0, nil, err
		}
		delta = counterDelta(before, tr.Counters())
		cfg.Parallelism = 0 // one worker per CPU
		parallel, _, err = timeBuild(cfg)
		if err != nil {
			return 0, 0, nil, err
		}
		return serial, parallel, delta, nil
	}

	s, p, _, err := timeBoth(baselineConfig())
	if err != nil {
		return nil, err
	}
	res.DefaultSerial, res.DefaultParallel = s, p
	res.DefaultDur = s

	noOut := optimizedConfig()
	noOut.OutlineRounds = 0
	noOut.Parallelism = 1
	mark := tr.Mark()
	s, _, err = timeBuild(noOut)
	if err != nil {
		return nil, err
	}
	res.Stages = tr.StageTotalsSince(mark)
	noOut.Parallelism = 0
	p, _, err = timeBuild(noOut)
	if err != nil {
		return nil, err
	}
	res.WholeNoOut = s
	res.WholeSerial = append(res.WholeSerial, s)
	res.WholeParallel = append(res.WholeParallel, p)

	for rounds := 1; rounds <= 5; rounds++ {
		cfg := optimizedConfig()
		cfg.OutlineRounds = rounds
		s, p, delta, err := timeBoth(cfg)
		if err != nil {
			return nil, err
		}
		res.WholeRounds = append(res.WholeRounds, s)
		res.WholeSerial = append(res.WholeSerial, s)
		res.WholeParallel = append(res.WholeParallel, p)
		if rounds == 5 {
			res.Counters = delta
		}
	}

	// Cold vs warm against the incremental build cache, one private
	// directory per configuration so the cold build genuinely misses.
	for _, axis := range []struct {
		label string
		cfg   pipeline.Config
	}{
		{"default pipeline (per-module, 1 round)", baselineConfig()},
		{"whole-program, 5 round(s)", optimizedConfig()},
	} {
		dir, err := os.MkdirTemp("", "buildtime-cache-")
		if err != nil {
			return nil, err
		}
		cfg := axis.cfg
		cfg.Tracer = tr
		cfg.CacheDir = dir
		cfg.Parallelism = 0
		start := time.Now()
		if _, err := appgen.BuildApp(appgen.UberRider, scale, cfg); err != nil {
			os.RemoveAll(dir)
			cache.Forget(dir)
			return nil, err
		}
		cold := time.Since(start)
		before := tr.Counters()
		start = time.Now()
		if _, err := appgen.BuildApp(appgen.UberRider, scale, cfg); err != nil {
			os.RemoveAll(dir)
			cache.Forget(dir)
			return nil, err
		}
		warm := time.Since(start)
		delta := counterDelta(before, tr.Counters())
		hitRate := 0.0
		if delta["cache/probes"] > 0 {
			hitRate = float64(delta["cache/hits"]) / float64(delta["cache/probes"])
		}
		res.CacheLabels = append(res.CacheLabels, axis.label)
		res.CacheCold = append(res.CacheCold, cold)
		res.CacheWarm = append(res.CacheWarm, warm)
		res.CacheHitRate = append(res.CacheHitRate, hitRate)
		os.RemoveAll(dir)
		cache.Forget(dir)
	}

	ms := func(d time.Duration) string { return d.Round(time.Millisecond).String() }
	fmt.Fprintln(w, "BUILD TIME (§VII-C): wall-clock on this machine, synthetic app")
	fmt.Fprintln(w, "(paper shape: default << whole-program; rounds add diminishing time;")
	fmt.Fprintf(w, " parallel column = internal/par with %d worker(s), byte-identical output)\n", res.Workers)
	fmt.Fprintln(w)
	rows := [][]string{
		{"configuration", "serial (-j1)", fmt.Sprintf("parallel (-j%d)", res.Workers)},
		{"default pipeline (per-module, 1 round)", ms(res.DefaultSerial), ms(res.DefaultParallel)},
		{"whole-program, no outlining", ms(res.WholeSerial[0]), ms(res.WholeParallel[0])},
	}
	for i := 1; i < len(res.WholeSerial); i++ {
		rows = append(rows, []string{
			fmt.Sprintf("whole-program, %d round(s)", i),
			ms(res.WholeSerial[i]), ms(res.WholeParallel[i]),
		})
	}
	full := len(res.WholeSerial) - 1
	rows = append(rows, []string{
		"recovered by parallelism (5 rounds)",
		ms(res.WholeSerial[full] - res.WholeParallel[full]),
		fmt.Sprintf("%.2fx speedup", res.Speedup()),
	})
	table(w, rows)
	fmt.Fprintf(w, "\nincremental build cache (-cache-dir, -j%d): cold vs warm\n", res.Workers)
	cacheRows := [][]string{{"configuration", "cold", "warm", "speedup", "hit rate"}}
	for i, label := range res.CacheLabels {
		ratio := 1.0
		if res.CacheWarm[i] > 0 {
			ratio = float64(res.CacheCold[i]) / float64(res.CacheWarm[i])
		}
		cacheRows = append(cacheRows, []string{
			label, ms(res.CacheCold[i]), ms(res.CacheWarm[i]),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.0f%%", 100*res.CacheHitRate[i]),
		})
	}
	table(w, cacheRows)
	fmt.Fprintln(w, "\nwhole-program stage breakdown (no outlining, serial):")
	srows := [][]string{{"stage", "time"}}
	for _, k := range sortedKeys(res.Stages) {
		srows = append(srows, []string{k, ms(res.Stages[k])})
	}
	table(w, srows)
	if len(res.Counters) > 0 {
		fmt.Fprintln(w, "\npipeline counters (5 rounds, serial; mem/* and per-round keys omitted):")
		crows := [][]string{{"counter", "value"}}
		for _, k := range sortedKeys(res.Counters) {
			if strings.HasPrefix(k, "mem/") || strings.HasPrefix(k, "outline/round") {
				continue
			}
			crows = append(crows, []string{k, fmt.Sprintf("%d", res.Counters[k])})
		}
		table(w, crows)
	}
	return res, nil
}
