package experiments

import (
	"fmt"
	"io"
	"time"

	"outliner/internal/appgen"
	"outliner/internal/pipeline"
)

// BuildTimeResult reproduces §VII-C: the default pipeline is fast; the
// whole-program pipeline pays for llvm-link + whole-program opt + llc; each
// extra outlining round adds progressively less. (The paper: 21 min default,
// 53 min new pipeline without outlining, 66 min with five rounds.)
type BuildTimeResult struct {
	DefaultDur  time.Duration
	WholeNoOut  time.Duration
	WholeRounds []time.Duration // index = rounds (1..5)
	Stages      map[string]time.Duration
}

// RunBuildTime measures wall-clock build times on the synthetic app.
func RunBuildTime(w io.Writer, scale float64) (*BuildTimeResult, error) {
	res := &BuildTimeResult{Stages: map[string]time.Duration{}}

	timeBuild := func(cfg pipeline.Config) (time.Duration, *pipeline.Result, error) {
		start := time.Now()
		r, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
		return time.Since(start), r, err
	}

	d, _, err := timeBuild(baselineConfig())
	if err != nil {
		return nil, err
	}
	res.DefaultDur = d

	noOut := optimizedConfig()
	noOut.OutlineRounds = 0
	d, r, err := timeBuild(noOut)
	if err != nil {
		return nil, err
	}
	res.WholeNoOut = d
	for k, v := range r.Timings {
		res.Stages[k] = v
	}

	for rounds := 1; rounds <= 5; rounds++ {
		cfg := optimizedConfig()
		cfg.OutlineRounds = rounds
		d, _, err := timeBuild(cfg)
		if err != nil {
			return nil, err
		}
		res.WholeRounds = append(res.WholeRounds, d)
	}

	fmt.Fprintln(w, "BUILD TIME (§VII-C): wall-clock on this machine, synthetic app")
	fmt.Fprintln(w, "(paper shape: default << whole-program; rounds add diminishing time)")
	fmt.Fprintln(w)
	rows := [][]string{
		{"configuration", "time"},
		{"default pipeline (per-module, 1 round)", res.DefaultDur.Round(time.Millisecond).String()},
		{"whole-program, no outlining", res.WholeNoOut.Round(time.Millisecond).String()},
	}
	for i, d := range res.WholeRounds {
		rows = append(rows, []string{
			fmt.Sprintf("whole-program, %d round(s)", i+1),
			d.Round(time.Millisecond).String(),
		})
	}
	table(w, rows)
	fmt.Fprintln(w, "\nwhole-program stage breakdown (no outlining):")
	srows := [][]string{{"stage", "time"}}
	for _, k := range sortedKeys(res.Stages) {
		srows = append(srows, []string{k, res.Stages[k].Round(time.Millisecond).String()})
	}
	table(w, srows)
	return res, nil
}
