// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the reproduction's substrate: the synthetic apps of
// internal/appgen, the SwiftLite benchmark suite under testdata/benchmarks,
// and the clang-like / kernel-like corpora. Each experiment returns a
// structured result and renders a text report; cmd/experiments exposes them
// as subcommands and bench_test.go as benchmarks.
//
// Absolute numbers differ from the paper (the substrate is a simulator and
// the app is synthetic); what must match is the shape: who wins, by roughly
// what factor, and where the curves bend. EXPERIMENTS.md records both sides.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"outliner/internal/appgen"
	"outliner/internal/exec"
	"outliner/internal/obs"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
)

// Scale is the app-size knob every experiment takes; 1.0 is the full
// synthetic app (hundreds of functions), smaller values keep CI fast.
const DefaultScale = 0.6

// Parallelism is the worker bound handed to every pipeline build the
// experiments run (0 = one per CPU, 1 = fully serial); cmd/experiments'
// -j flag sets it. Results are byte-identical for every value — only the
// wall-clock numbers of the buildtime experiment change.
var Parallelism int

// Tracer, when set by cmd/experiments' -trace/-remarks/-summary flags, is
// handed to every pipeline build the experiments run; the driver writes the
// accumulated trace, remarks, and summary after all subcommands finish.
// Telemetry is strictly observational, so experiment results are identical
// with or without it.
var Tracer *obs.Tracer

// CacheDir, when set by cmd/experiments' -cache-dir flag, enables the
// incremental build cache for every pipeline build the experiments run.
// Caching changes only wall-clock time, never results — fig1's warm sweep
// asserts exactly that. The buildtime experiment zeroes it for its main
// rows (they measure the uncached pipelines) and measures the cache on a
// dedicated cold/warm axis instead.
var CacheDir string

// countingTracer returns the shared Tracer when telemetry was requested and
// otherwise a private full collector, so experiments that derive their tables
// from counters (fig12, buildtime) always have something to read.
func countingTracer() *obs.Tracer {
	if Tracer != nil {
		return Tracer
	}
	return obs.New()
}

// counterDelta returns after-before for every counter, dropping zero deltas.
// Experiments bracket a single build with Counters snapshots to scope the
// shared Tracer's cumulative counters to that build.
func counterDelta(before, after map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// BenchmarksDir locates testdata/benchmarks relative to the repo root.
func BenchmarksDir() string {
	for _, dir := range []string{"testdata/benchmarks", "../testdata/benchmarks", "../../testdata/benchmarks"} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	return "testdata/benchmarks"
}

// LoadBenchmarks reads all .sl files in the benchmark suite.
func LoadBenchmarks() (map[string]string, error) {
	dir := BenchmarksDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("experiments: benchmark dir: %w", err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sl") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[strings.TrimSuffix(e.Name(), ".sl")] = string(text)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no benchmarks found in %s", dir)
	}
	return out, nil
}

// buildBench compiles one single-module benchmark with the given outlining
// rounds (whole-program pipeline, as the artifact's run.sh does with llc).
func buildBench(name, text string, rounds int) (*pipeline.Result, error) {
	cfg := pipeline.Config{
		WholeProgram:       true,
		OutlineRounds:      rounds,
		SILOutline:         true,
		SpecializeClosures: true,
		MergeFunctions:     true,
		PreserveDataLayout: true,
		SplitGCMetadata:    true,
		Parallelism:        Parallelism,
		Tracer:             Tracer,
		CacheDir:           CacheDir,
	}
	return pipeline.Build([]pipeline.Source{{Name: name, Files: map[string]string{name + ".sl": text}}}, cfg)
}

// runOnDevice executes entry under the perf model and returns (output, perf
// result).
func runOnDevice(res *pipeline.Result, entry string, dev perf.Device, osm perf.OS, maxSteps int64) (string, perf.Result, error) {
	sim := perf.New(dev, osm)
	m, err := exec.New(res.Prog, exec.Options{MaxSteps: maxSteps, Trace: sim.Observe})
	if err != nil {
		return "", perf.Result{}, err
	}
	out, err := m.Run(entry)
	if err != nil {
		return out, perf.Result{}, err
	}
	return out, sim.Finish(), nil
}

// buildApp builds an app profile with and without the paper's optimization.
func buildApp(p appgen.Profile, scale float64, optimized bool) (*pipeline.Result, error) {
	cfg := baselineConfig()
	if optimized {
		cfg = optimizedConfig()
	}
	return appgen.BuildApp(p, scale, cfg)
}

// buildAppCached is buildApp against an explicit cache directory (fig1's
// cold/warm sweeps use a private one when no -cache-dir was given).
func buildAppCached(p appgen.Profile, scale float64, optimized bool, cacheDir string) (*pipeline.Result, error) {
	cfg := baselineConfig()
	if optimized {
		cfg = optimizedConfig()
	}
	cfg.CacheDir = cacheDir
	return appgen.BuildApp(p, scale, cfg)
}

// baselineConfig is the default iOS pipeline with Swift 5.2 semantics:
// per-module compilation and one round of per-module outlining (-Osize).
func baselineConfig() pipeline.Config {
	return pipeline.Config{
		OutlineRounds:      1,
		SILOutline:         true,
		SpecializeClosures: true,
		Parallelism:        Parallelism,
		Tracer:             Tracer,
		CacheDir:           CacheDir,
	}
}

// optimizedConfig is the paper's production pipeline: whole program, five
// rounds of repeated machine outlining, both linker fixes.
func optimizedConfig() pipeline.Config {
	cfg := pipeline.OSize
	cfg.Parallelism = Parallelism
	cfg.Tracer = Tracer
	cfg.CacheDir = CacheDir
	return cfg
}

// percent formats a fraction as a percentage string.
func percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// table renders rows of columns with aligned widths.
func table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range rows {
		for i, c := range r {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Grid dimensions, exposed for tests.
func appgenSpans() int           { return appgen.UberRider.Spans }
func perfDevices() []perf.Device { return perf.Devices }
func perfOSes() []perf.OS        { return perf.OSes }
