package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/stats"
)

// Fig1Point is one snapshot of the growing app.
type Fig1Point struct {
	Week           int
	Scale          float64
	BaselineBytes  int
	OptimizedBytes int
}

// Fig1Result reproduces Figure 1: code-size growth over time for the default
// pipeline versus the whole-program repeated-outlining pipeline, with fitted
// slopes. The paper reports a ~23% cut and a ~2x slope reduction
// (baseline slope 2.7 vs optimized 1.37, R² 96%/98%).
type Fig1Result struct {
	Points       []Fig1Point
	BaselineFit  stats.LinearFit
	OptimizedFit stats.LinearFit
	FinalSaving  float64 // fraction at the last snapshot
	SlopeRatio   float64

	// Cold/warm wall clock of the full sweep against the incremental build
	// cache: the warm sweep rebuilds every snapshot from cache entries and
	// must reproduce every size exactly — which doubles as an end-to-end
	// determinism check on the cache.
	ColdDur, WarmDur time.Duration
}

// RunFig1 compiles the synthetic app at a sweep of growth scales (the app
// gains modules and functions week over week) under both pipelines. The
// whole sweep runs twice against the incremental build cache — cold, then
// warm — reporting the wall-clock ratio and asserting every snapshot size is
// reproduced exactly from cached artifacts.
func RunFig1(w io.Writer, snapshots int, maxScale float64) (*Fig1Result, error) {
	if snapshots < 2 {
		snapshots = 2
	}
	cacheDir := CacheDir
	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "fig1-cache-")
		if err != nil {
			return nil, fmt.Errorf("fig1: %w", err)
		}
		cacheDir = dir
		defer func() {
			os.RemoveAll(dir)
			cache.Forget(dir)
		}()
	}
	res := &Fig1Result{}
	var weeks, baseSizes, optSizes []float64
	snapshotSizes := func(i int) (baseBytes, optBytes int, _ error) {
		scale := 0.3 + (maxScale-0.3)*float64(i)/float64(snapshots-1)
		base, err := buildAppCached(appgen.UberRider, scale, false, cacheDir)
		if err != nil {
			return 0, 0, fmt.Errorf("fig1 snapshot %d baseline: %w", i, err)
		}
		opt, err := buildAppCached(appgen.UberRider, scale, true, cacheDir)
		if err != nil {
			return 0, 0, fmt.Errorf("fig1 snapshot %d optimized: %w", i, err)
		}
		return base.CodeSize(), opt.CodeSize(), nil
	}
	coldStart := time.Now()
	for i := 0; i < snapshots; i++ {
		baseBytes, optBytes, err := snapshotSizes(i)
		if err != nil {
			return nil, err
		}
		scale := 0.3 + (maxScale-0.3)*float64(i)/float64(snapshots-1)
		week := i * 52 / (snapshots - 1)
		res.Points = append(res.Points, Fig1Point{
			Week: week, Scale: scale,
			BaselineBytes: baseBytes, OptimizedBytes: optBytes,
		})
		weeks = append(weeks, float64(week))
		baseSizes = append(baseSizes, float64(baseBytes))
		optSizes = append(optSizes, float64(optBytes))
	}
	res.ColdDur = time.Since(coldStart)
	warmStart := time.Now()
	for i, p := range res.Points {
		baseBytes, optBytes, err := snapshotSizes(i)
		if err != nil {
			return nil, err
		}
		if baseBytes != p.BaselineBytes || optBytes != p.OptimizedBytes {
			return nil, fmt.Errorf("fig1 snapshot %d: warm rebuild sizes %d/%d differ from cold %d/%d",
				i, baseBytes, optBytes, p.BaselineBytes, p.OptimizedBytes)
		}
	}
	res.WarmDur = time.Since(warmStart)
	res.BaselineFit = stats.Linear(weeks, baseSizes)
	res.OptimizedFit = stats.Linear(weeks, optSizes)
	last := res.Points[len(res.Points)-1]
	res.FinalSaving = 1 - float64(last.OptimizedBytes)/float64(last.BaselineBytes)
	if res.OptimizedFit.Slope > 0 {
		res.SlopeRatio = res.BaselineFit.Slope / res.OptimizedFit.Slope
	}

	fmt.Fprintln(w, "FIGURE 1: code-size growth, default pipeline vs whole-program repeated outlining")
	fmt.Fprintln(w, "(paper: 23% cut at the final point; slope ratio ~2x; R² 96%/98%)")
	fmt.Fprintln(w)
	rows := [][]string{{"week", "baseline", "optimized", "saving"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Week),
			fmt.Sprintf("%d", p.BaselineBytes),
			fmt.Sprintf("%d", p.OptimizedBytes),
			percent(1 - float64(p.OptimizedBytes)/float64(p.BaselineBytes)),
		})
	}
	table(w, rows)
	fmt.Fprintf(w, "\nbaseline fit:  %.1f bytes/week (R²=%.3f)\n", res.BaselineFit.Slope, res.BaselineFit.R2)
	fmt.Fprintf(w, "optimized fit: %.1f bytes/week (R²=%.3f)\n", res.OptimizedFit.Slope, res.OptimizedFit.R2)
	fmt.Fprintf(w, "slope ratio:   %.2fx   final saving: %s\n", res.SlopeRatio, percent(res.FinalSaving))
	ratio := 1.0
	if res.WarmDur > 0 {
		ratio = float64(res.ColdDur) / float64(res.WarmDur)
	}
	fmt.Fprintf(w, "build cache:   cold sweep %s, warm sweep %s (%.1fx); sizes identical\n",
		res.ColdDur.Round(time.Millisecond), res.WarmDur.Round(time.Millisecond), ratio)
	return res, nil
}
