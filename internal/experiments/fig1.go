package experiments

import (
	"fmt"
	"io"

	"outliner/internal/appgen"
	"outliner/internal/stats"
)

// Fig1Point is one snapshot of the growing app.
type Fig1Point struct {
	Week           int
	Scale          float64
	BaselineBytes  int
	OptimizedBytes int
}

// Fig1Result reproduces Figure 1: code-size growth over time for the default
// pipeline versus the whole-program repeated-outlining pipeline, with fitted
// slopes. The paper reports a ~23% cut and a ~2x slope reduction
// (baseline slope 2.7 vs optimized 1.37, R² 96%/98%).
type Fig1Result struct {
	Points       []Fig1Point
	BaselineFit  stats.LinearFit
	OptimizedFit stats.LinearFit
	FinalSaving  float64 // fraction at the last snapshot
	SlopeRatio   float64
}

// RunFig1 compiles the synthetic app at a sweep of growth scales (the app
// gains modules and functions week over week) under both pipelines.
func RunFig1(w io.Writer, snapshots int, maxScale float64) (*Fig1Result, error) {
	if snapshots < 2 {
		snapshots = 2
	}
	res := &Fig1Result{}
	var weeks, baseSizes, optSizes []float64
	for i := 0; i < snapshots; i++ {
		scale := 0.3 + (maxScale-0.3)*float64(i)/float64(snapshots-1)
		base, err := buildApp(appgen.UberRider, scale, false)
		if err != nil {
			return nil, fmt.Errorf("fig1 snapshot %d baseline: %w", i, err)
		}
		opt, err := buildApp(appgen.UberRider, scale, true)
		if err != nil {
			return nil, fmt.Errorf("fig1 snapshot %d optimized: %w", i, err)
		}
		week := i * 52 / (snapshots - 1)
		res.Points = append(res.Points, Fig1Point{
			Week: week, Scale: scale,
			BaselineBytes: base.CodeSize(), OptimizedBytes: opt.CodeSize(),
		})
		weeks = append(weeks, float64(week))
		baseSizes = append(baseSizes, float64(base.CodeSize()))
		optSizes = append(optSizes, float64(opt.CodeSize()))
	}
	res.BaselineFit = stats.Linear(weeks, baseSizes)
	res.OptimizedFit = stats.Linear(weeks, optSizes)
	last := res.Points[len(res.Points)-1]
	res.FinalSaving = 1 - float64(last.OptimizedBytes)/float64(last.BaselineBytes)
	if res.OptimizedFit.Slope > 0 {
		res.SlopeRatio = res.BaselineFit.Slope / res.OptimizedFit.Slope
	}

	fmt.Fprintln(w, "FIGURE 1: code-size growth, default pipeline vs whole-program repeated outlining")
	fmt.Fprintln(w, "(paper: 23% cut at the final point; slope ratio ~2x; R² 96%/98%)")
	fmt.Fprintln(w)
	rows := [][]string{{"week", "baseline", "optimized", "saving"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Week),
			fmt.Sprintf("%d", p.BaselineBytes),
			fmt.Sprintf("%d", p.OptimizedBytes),
			percent(1 - float64(p.OptimizedBytes)/float64(p.BaselineBytes)),
		})
	}
	table(w, rows)
	fmt.Fprintf(w, "\nbaseline fit:  %.1f bytes/week (R²=%.3f)\n", res.BaselineFit.Slope, res.BaselineFit.R2)
	fmt.Fprintf(w, "optimized fit: %.1f bytes/week (R²=%.3f)\n", res.OptimizedFit.Slope, res.OptimizedFit.R2)
	fmt.Fprintf(w, "slope ratio:   %.2fx   final saving: %s\n", res.SlopeRatio, percent(res.FinalSaving))
	return res, nil
}
