package experiments

import (
	"fmt"
	"io"

	"outliner/internal/appgen"
	"outliner/internal/perf"
	"outliner/internal/stats"
)

// DataLayoutResult reproduces §VI-3: merging IR modules with llvm-link's
// default global ordering interleaves unrelated modules' data, inflating the
// data-page working set; preserving per-module order eliminates the
// regression. The paper saw an average 10% production regression traced to
// data page faults, present even with outlining off.
type DataLayoutResult struct {
	InterleavedFaults int64
	PreservedFaults   int64
	InterleavedSec    float64
	PreservedSec      float64
	RegressionPct     float64
}

// residencyOverride lets tests sweep the memory-pressure knob.
var residencyOverride int

// RunDataLayout builds the app twice (whole-program, outlining on) with and
// without module-order preservation and compares page faults and time over
// the spans.
func RunDataLayout(w io.Writer, scale float64) (*DataLayoutResult, error) {
	pres := optimizedConfig()
	pres.PreserveDataLayout = true
	inter := optimizedConfig()
	inter.PreserveDataLayout = false

	presRes, err := appgen.BuildApp(appgen.UberRider, scale, pres)
	if err != nil {
		return nil, err
	}
	interRes, err := appgen.BuildApp(appgen.UberRider, scale, inter)
	if err != nil {
		return nil, err
	}

	// Memory pressure varies across the fleet; sample a population of
	// working-set limits (background load states) and aggregate, the way
	// production telemetry would.
	residencies := []int{8, 10, 12, 14}
	if residencyOverride > 0 {
		residencies = []int{residencyOverride}
	}
	osm := perf.OSes[2]

	res := &DataLayoutResult{}
	var presSecs, interSecs []float64
	for _, pages := range residencies {
		dev := perf.Devices[0]
		dev.ResidentDataPages = pages
		for s := 1; s <= appgen.UberRider.Spans; s++ {
			entry := fmt.Sprintf("span%d", s)
			_, pp, err := runOnDevice(presRes, entry, dev, osm, 100_000_000)
			if err != nil {
				return nil, err
			}
			_, ip, err := runOnDevice(interRes, entry, dev, osm, 100_000_000)
			if err != nil {
				return nil, err
			}
			res.PreservedFaults += pp.PageFaults
			res.InterleavedFaults += ip.PageFaults
			presSecs = append(presSecs, pp.Seconds)
			interSecs = append(interSecs, ip.Seconds)
		}
	}
	res.PreservedSec = stats.Mean(presSecs)
	res.InterleavedSec = stats.Mean(interSecs)
	res.RegressionPct = (res.InterleavedSec/res.PreservedSec - 1) * 100

	fmt.Fprintln(w, "DATA LAYOUT (§VI-3): llvm-link global ordering vs module-order preservation")
	fmt.Fprintln(w, "(paper: interleaving caused ~10% production regression via data page faults)")
	fmt.Fprintln(w)
	rows := [][]string{
		{"configuration", "page faults", "mean span time"},
		{"module order preserved (fix)", fmt.Sprintf("%d", res.PreservedFaults), fmt.Sprintf("%.3fms", res.PreservedSec*1000)},
		{"interleaved (default llvm-link)", fmt.Sprintf("%d", res.InterleavedFaults), fmt.Sprintf("%.3fms", res.InterleavedSec*1000)},
	}
	table(w, rows)
	fmt.Fprintf(w, "\nregression from interleaving: %+.1f%%\n", res.RegressionPct)
	return res, nil
}
