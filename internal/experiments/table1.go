package experiments

import (
	"fmt"
	"io"

	"outliner/internal/appgen"
	"outliner/internal/clone"
	"outliner/internal/pipeline"
)

// Table1Row is one level of the binary-size-savings landscape.
type Table1Row struct {
	Level     string
	Technique string
	SavingPct float64
	Note      string
}

// Table1Result is the landscape table.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 reproduces Table I: how much each abstraction level's
// deduplication technique saves on the app, measured against a
// whole-program build with everything off. The paper's numbers:
// AST <1% replication, SIL outlining 0.41%, MergeFunctions 0.9%, FMSA 2%,
// repeated machine outlining 23%.
func RunTable1(w io.Writer, scale float64) (*Table1Result, error) {
	res := &Table1Result{}

	// Reference build: whole-program pipeline, no dedup passes at all.
	off := pipeline.Config{WholeProgram: true, SplitGCMetadata: true, PreserveDataLayout: true, Parallelism: Parallelism}
	ref, err := appgen.BuildApp(appgen.UberRider, scale, off)
	if err != nil {
		return nil, err
	}
	refSize := float64(ref.CodeSize())

	saving := func(cfg pipeline.Config) (float64, error) {
		r, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
		if err != nil {
			return 0, err
		}
		return 1 - float64(r.CodeSize())/refSize, nil
	}

	// AST level: token-based clone detection (PMD analog) — a report, not a
	// transformation; we report the clone fraction it finds.
	mods := appgen.Generate(appgen.UberRider, scale)
	var sources []pipeline.Source
	for _, m := range mods {
		sources = append(sources, pipeline.Source{Name: m.Name, Files: m.Files})
	}
	cloneFrac, err := clone.DetectFraction(sources)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Level: "AST", Technique: "source clone detection (PMD-like)",
		SavingPct: cloneFrac * 100,
		Note:      "replication found, not removed (paper: <1%)",
	})

	silCfg := off
	silCfg.SILOutline = true
	s, err := saving(silCfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Level: "SIL", Technique: "SIL outlining", SavingPct: s * 100,
		Note: "paper: 0.41%",
	})

	mergeCfg := off
	mergeCfg.MergeFunctions = true
	s, err = saving(mergeCfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Level: "LLVM-IR", Technique: "MergeFunctions", SavingPct: s * 100,
		Note: "paper: 0.9%",
	})

	fmsaCfg := off
	fmsaCfg.FMSA = true
	s, err = saving(fmsaCfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Level: "LLVM-IR", Technique: "FMSA (similar-function merging)", SavingPct: s * 100,
		Note: "paper: 2%",
	})

	isaCfg := off
	isaCfg.OutlineRounds = 5
	s, err = saving(isaCfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Level: "ISA", Technique: "repeated machine outlining (5 rounds)", SavingPct: s * 100,
		Note: "paper: 23%",
	})

	fmt.Fprintln(w, "TABLE I: the landscape of binary-size savings by abstraction level")
	fmt.Fprintln(w)
	rows := [][]string{{"Level", "Optimization", "measured", "note"}}
	for _, r := range res.Rows {
		rows = append(rows, []string{r.Level, r.Technique, fmt.Sprintf("%.2f%%", r.SavingPct), r.Note})
	}
	table(w, rows)
	return res, nil
}
