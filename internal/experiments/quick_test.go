package experiments

import (
	"bytes"
	"io"
	"os"
	"testing"
)

var sink io.Writer = io.Discard

func TestTable4Suite(t *testing.T) {
	res, err := RunTable4(sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches > 0 {
		t.Fatalf("%d benchmarks changed behaviour under outlining", res.Mismatches)
	}
	if len(res.Rows) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26", len(res.Rows))
	}
	// Shape: overhead is small on average (paper: ~1.6%), bounded worst case.
	if res.AvgPct > 5 {
		t.Errorf("average overhead %.2f%% too large", res.AvgPct)
	}
	if res.MaxPct > 25 {
		t.Errorf("worst overhead %.2f%% too large", res.MaxPct)
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := RunFig1(sink, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSaving < 0.10 {
		t.Errorf("final saving %.1f%% too small", res.FinalSaving*100)
	}
	if res.SlopeRatio < 1.2 {
		t.Errorf("slope ratio %.2f; optimized pipeline must slow growth", res.SlopeRatio)
	}
	if res.BaselineFit.R2 < 0.8 || res.OptimizedFit.R2 < 0.8 {
		t.Errorf("growth not linear enough: R² %.2f / %.2f", res.BaselineFit.R2, res.OptimizedFit.R2)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(sink, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	isa := res.Rows[4].SavingPct
	for _, r := range res.Rows[:4] {
		if r.SavingPct >= isa {
			t.Errorf("%s (%.2f%%) should save less than machine outlining (%.2f%%)",
				r.Technique, r.SavingPct, isa)
		}
	}
}

func TestPatternsShape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunPatterns(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerFit.B >= 0 {
		t.Errorf("power-law exponent %.2f must be negative", res.PowerFit.B)
	}
	if res.PowerFit.R2 < 0.5 {
		t.Errorf("power-law fit R² %.2f too weak", res.PowerFit.R2)
	}
	// Short patterns must dominate (Fig 8): length-2 candidates outnumber
	// any longer length.
	max := 0
	for l, c := range res.LengthHist {
		if l != 2 && c > max {
			max = c
		}
	}
	if res.LengthHist[2] <= max {
		t.Errorf("length-2 candidates (%d) must dominate (max other %d)", res.LengthHist[2], max)
	}
	if res.NeedFor90Pct < 10 {
		t.Errorf("only %d patterns for 90%% — diversity too low", res.NeedFor90Pct)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := RunFig12(sink, 0.4, 6)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	// Inter-module beats intra-module at max rounds.
	last := pts[len(pts)-1]
	if last.InterCode >= last.IntraCode {
		t.Errorf("whole-program (%d) must beat per-module (%d)", last.InterCode, last.IntraCode)
	}
	// Monotone non-increasing with rounds; diminishing returns.
	for i := 1; i < len(pts); i++ {
		if pts[i].InterCode > pts[i-1].InterCode {
			t.Errorf("inter code grew between rounds %d and %d", pts[i-1].Rounds, pts[i].Rounds)
		}
	}
	gain1 := pts[0].InterCode - pts[1].InterCode
	gainLast := pts[len(pts)-2].InterCode - pts[len(pts)-1].InterCode
	if gainLast > gain1/2 {
		t.Errorf("no diminishing returns: first round %d bytes, last %d", gain1, gainLast)
	}
	if len(res.Table2) < 3 || len(res.Table2) > 5 {
		t.Errorf("table2 rows = %d, want 3..5 (convergence may stop rounds early)", len(res.Table2))
	} else {
		for i := 1; i < len(res.Table2); i++ {
			if res.Table2[i].SequencesOutlined < res.Table2[i-1].SequencesOutlined {
				t.Error("cumulative sequences must not decrease")
			}
		}
	}
}

func TestGeneralityShape(t *testing.T) {
	res, err := RunGenerality(sink, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SavingPct < 5 {
			t.Errorf("%s saving %.1f%% too small", r.Subject, r.SavingPct)
		}
	}
}

func TestDataLayoutShape(t *testing.T) {
	res, err := RunDataLayout(sink, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterleavedFaults <= res.PreservedFaults {
		t.Errorf("interleaving (%d faults) must fault more than preserved order (%d)",
			res.InterleavedFaults, res.PreservedFaults)
	}
	if res.RegressionPct <= 0 {
		t.Errorf("interleaving regression %.1f%% must be positive", res.RegressionPct)
	}
}

func TestBuildTimeShape(t *testing.T) {
	res, err := RunBuildTime(io.Discard, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WholeNoOut <= res.DefaultDur/4 {
		t.Error("whole-program build suspiciously fast vs default")
	}
	_ = os.Stdout
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 grid is slow")
	}
	var buf bytes.Buffer
	res, err := RunFig13(&buf, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: no statistically significant regression; a mild
	// geomean gain. Allow anything clearly below a 5% regression.
	if res.GeoMeanRatio > 1.05 {
		t.Errorf("geomean ratio %.3f — outlining regressed spans", res.GeoMeanRatio)
	}
	if res.OutlinedDynPct <= 0 {
		t.Error("no dynamic instructions attributed to outlined functions")
	}
	if len(res.Cells) != appgenSpans()*len(perfDevices())*len(perfOSes()) {
		t.Errorf("grid incomplete: %d cells", len(res.Cells))
	}
}
