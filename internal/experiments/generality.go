package experiments

import (
	"fmt"
	"io"

	"outliner/internal/appgen"
	"outliner/internal/outline"
	"outliner/internal/pipeline"
)

// GeneralityRow is one subject of §VII-E.
type GeneralityRow struct {
	Subject   string
	BaseCode  int
	OptCode   int
	SavingPct float64
	PaperPct  string
}

// GeneralityResult covers the other-apps and non-iOS-programs experiments.
type GeneralityResult struct {
	Rows []GeneralityRow
}

// RunGenerality applies five rounds of whole-program repeated outlining to
// UberDriver- and UberEats-like apps, a clang-like corpus, and a kernel-like
// machine program.
func RunGenerality(w io.Writer, scale float64) (*GeneralityResult, error) {
	res := &GeneralityResult{}

	app := func(p appgen.Profile, paper string) error {
		base, err := buildApp(p, scale, false)
		if err != nil {
			return fmt.Errorf("%s base: %w", p.Name, err)
		}
		opt, err := buildApp(p, scale, true)
		if err != nil {
			return fmt.Errorf("%s opt: %w", p.Name, err)
		}
		res.Rows = append(res.Rows, GeneralityRow{
			Subject: p.Name, BaseCode: base.CodeSize(), OptCode: opt.CodeSize(),
			SavingPct: (1 - float64(opt.CodeSize())/float64(base.CodeSize())) * 100,
			PaperPct:  paper,
		})
		return nil
	}
	if err := app(appgen.UberRider, "23%"); err != nil {
		return nil, err
	}
	if err := app(appgen.UberDriver, "17%"); err != nil {
		return nil, err
	}
	if err := app(appgen.UberEats, "19%"); err != nil {
		return nil, err
	}

	// Clang-like corpus through the full pipeline.
	clangMods := appgen.GenerateClangLike(4242, int(14*scale)+4)
	var sources []pipeline.Source
	for _, m := range clangMods {
		sources = append(sources, pipeline.Source{Name: m.Name, Files: m.Files})
	}
	baseCfg := pipeline.Config{WholeProgram: true, SplitGCMetadata: true, PreserveDataLayout: true, Parallelism: Parallelism}
	optCfg := optimizedConfig()
	cb, err := pipeline.Build(sources, baseCfg)
	if err != nil {
		return nil, fmt.Errorf("clang-like base: %w", err)
	}
	co, err := pipeline.Build(sources, optCfg)
	if err != nil {
		return nil, fmt.Errorf("clang-like opt: %w", err)
	}
	res.Rows = append(res.Rows, GeneralityRow{
		Subject: "clang-like", BaseCode: cb.CodeSize(), OptCode: co.CodeSize(),
		SavingPct: (1 - float64(co.CodeSize())/float64(cb.CodeSize())) * 100,
		PaperPct:  "25%",
	})

	// Kernel-like machine program: the outliner runs directly on MIR (the
	// artifact used prebuilt bitcode the same way).
	kb := appgen.GenerateKernelLike(777, int(220*scale)+40)
	baseSize := kb.CodeSize()
	if _, err := outline.Outline(kb, outline.Options{Rounds: 5, Verify: true,
		ExternSyms: map[string]bool{}}); err != nil {
		return nil, fmt.Errorf("kernel-like outline: %w", err)
	}
	res.Rows = append(res.Rows, GeneralityRow{
		Subject: "kernel-like", BaseCode: baseSize, OptCode: kb.CodeSize(),
		SavingPct: (1 - float64(kb.CodeSize())/float64(baseSize)) * 100,
		PaperPct:  "14%",
	})

	fmt.Fprintln(w, "GENERALITY (§VII-E): five rounds of whole-program repeated outlining")
	fmt.Fprintln(w)
	rows := [][]string{{"subject", "base code", "outlined code", "saving", "paper"}}
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Subject, fmt.Sprintf("%d", r.BaseCode), fmt.Sprintf("%d", r.OptCode),
			fmt.Sprintf("%.1f%%", r.SavingPct), r.PaperPct,
		})
	}
	table(w, rows)
	return res, nil
}
