package experiments

import (
	"fmt"
	"io"
	"sort"

	"outliner/internal/appgen"
	"outliner/internal/mir"
	"outliner/internal/outline"
	"outliner/internal/stats"
)

// PatternsResult covers the binary-analysis figures of §IV: the repetition
// frequency power law (Fig 5), the rank/length fractal view (Fig 6), the
// cumulative savings curve (Fig 7), the length histogram (Fig 8), and the
// top patterns as listings.
type PatternsResult struct {
	Patterns     []outline.Pattern
	PowerFit     stats.PowerFit
	Cumulative   []int
	NeedFor90Pct int
	LengthHist   map[int]int
	LongestLen   int
	LongestCount int
}

// RunPatterns builds the app (whole-program, no outlining) and runs the
// statistics-collection pass over the final machine code.
func RunPatterns(w io.Writer, scale float64) (*PatternsResult, error) {
	res, err := buildAppForAnalysis(scale)
	if err != nil {
		return nil, err
	}
	pats := outline.Analyze(res, outline.Options{})
	if len(pats) == 0 {
		return nil, fmt.Errorf("patterns: nothing repeats — generator broken?")
	}
	out := &PatternsResult{Patterns: pats}

	// Fig 5: rank vs count in log-log space.
	var xs, ys []float64
	for i, p := range pats {
		xs = append(xs, float64(i+1))
		ys = append(ys, float64(p.Count))
	}
	out.PowerFit = stats.PowerLaw(xs, ys)

	// Fig 7: cumulative savings by profit-sorted patterns.
	out.Cumulative = outline.CumulativeSavings(pats)
	total := out.Cumulative[len(out.Cumulative)-1]
	for i, c := range out.Cumulative {
		if float64(c) >= 0.9*float64(total) {
			out.NeedFor90Pct = i + 1
			break
		}
	}

	// Fig 8: candidates per sequence length; the longest pattern.
	out.LengthHist = outline.LengthHistogram(pats)
	for _, p := range pats {
		if p.Length > out.LongestLen {
			out.LongestLen = p.Length
			out.LongestCount = p.Count
		}
	}

	fmt.Fprintln(w, "FIGURES 5-8: machine-code replication patterns (statistics pass)")
	fmt.Fprintf(w, "\npatterns found: %d\n", len(pats))
	fmt.Fprintf(w, "Fig 5 power law: count ≈ %.1f · rank^%.2f  (log-log R² = %.3f; paper: 99.4%% confidence)\n",
		out.PowerFit.A, out.PowerFit.B, out.PowerFit.R2)
	fmt.Fprintf(w, "Fig 7: %d patterns needed for 90%% of the possible saving (paper: >100)\n", out.NeedFor90Pct)
	fmt.Fprintf(w, "Fig 8: longest pattern is %d instructions repeating %d times (paper: 279 x3)\n",
		out.LongestLen, out.LongestCount)

	fmt.Fprintln(w, "\nFig 8 histogram (sequence length -> candidates):")
	lengths := make([]int, 0, len(out.LengthHist))
	for l := range out.LengthHist {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	rows := [][]string{{"len", "candidates"}}
	for _, l := range lengths {
		rows = append(rows, []string{fmt.Sprintf("%d", l), fmt.Sprintf("%d", out.LengthHist[l])})
	}
	table(w, rows)

	fmt.Fprintln(w, "\nTop repeating patterns (the paper's Listings 1-8):")
	for i, p := range pats {
		if i >= 6 {
			break
		}
		fmt.Fprintf(w, "\nListing %d:\n%s", i+1, p.Listing())
	}

	// Fig 6's qualitative claim: short patterns dominate the high-frequency
	// end; length diversity grows toward the tail.
	headMax, tailMax := 0, 0
	for i, p := range pats {
		if i < len(pats)/10 {
			if p.Length > headMax {
				headMax = p.Length
			}
		} else if p.Length > tailMax {
			tailMax = p.Length
		}
	}
	fmt.Fprintf(w, "\nFig 6: max length among top-decile patterns %d vs tail %d (tail should be larger)\n",
		headMax, tailMax)
	return out, nil
}

// buildAppForAnalysis compiles the app whole-program with outlining off —
// the configuration the paper's statistics pass observes.
func buildAppForAnalysis(scale float64) (*mir.Program, error) {
	cfg := optimizedConfig()
	cfg.OutlineRounds = 0
	r, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
	if err != nil {
		return nil, err
	}
	return r.Prog, nil
}
