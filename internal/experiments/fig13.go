package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"outliner/internal/appgen"
	"outliner/internal/exec"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
	"outliner/internal/stats"
)

// Fig13Cell is one (span, device, OS) cell: the P50 ratio of optimized over
// baseline execution time (>1 = regression, <1 = improvement).
type Fig13Cell struct {
	Span   int
	Device string
	OS     string
	Ratio  float64
}

// Fig13Result reproduces Figure 13's heatmaps and Table III.
type Fig13Result struct {
	Cells []Fig13Cell
	// Table III: per-span mean seconds across the grid.
	SpanBaseSec    []float64
	SpanOptSec     []float64
	GeoMeanRatio   float64
	OutlinedDynPct float64 // % of dynamic instructions in outlined functions
	IPCDeltaPct    float64
}

// RunFig13 executes every span under the device/OS grid for baseline and
// optimized builds, sampling a small population of device-parameter jitters
// per cell (production telemetry is noisy; the paper uses P50 over >25K
// samples per cell).
func RunFig13(w io.Writer, scale float64, samples int) (*Fig13Result, error) {
	if samples < 1 {
		samples = 3
	}
	base, err := buildApp(appgen.UberRider, scale, false)
	if err != nil {
		return nil, err
	}
	opt, err := buildApp(appgen.UberRider, scale, true)
	if err != nil {
		return nil, err
	}
	nSpans := appgen.UberRider.Spans
	res := &Fig13Result{
		SpanBaseSec: make([]float64, nSpans),
		SpanOptSec:  make([]float64, nSpans),
	}

	// Dynamic outlined-instruction share and IPC delta on one
	// representative configuration.
	if st, ipcDelta, err := dynStats(base, opt); err == nil {
		res.OutlinedDynPct = st
		res.IPCDeltaPct = ipcDelta
	} else {
		return nil, err
	}

	var ratios []float64
	rng := rand.New(rand.NewSource(1337))
	cellsPerSpan := 0
	for s := 1; s <= nSpans; s++ {
		entry := fmt.Sprintf("span%d", s)
		for _, dev := range perf.Devices {
			for _, osm := range perf.OSes {
				var samplesB, samplesO []float64
				for k := 0; k < samples; k++ {
					jdev := jitterDevice(dev, rng)
					_, pb, err := runOnDevice(base, entry, jdev, osm, 100_000_000)
					if err != nil {
						return nil, fmt.Errorf("span%d baseline on %s: %w", s, dev.Name, err)
					}
					_, po, err := runOnDevice(opt, entry, jdev, osm, 100_000_000)
					if err != nil {
						return nil, fmt.Errorf("span%d optimized on %s: %w", s, dev.Name, err)
					}
					samplesB = append(samplesB, pb.Seconds)
					samplesO = append(samplesO, po.Seconds)
				}
				p50b := stats.Median(samplesB)
				p50o := stats.Median(samplesO)
				ratio := p50o / p50b
				res.Cells = append(res.Cells, Fig13Cell{
					Span: s, Device: dev.Name, OS: osm.Name, Ratio: ratio,
				})
				ratios = append(ratios, ratio)
				res.SpanBaseSec[s-1] += p50b
				res.SpanOptSec[s-1] += p50o
				if s == 1 {
					cellsPerSpan++
				}
			}
		}
		res.SpanBaseSec[s-1] /= float64(cellsPerSpan)
		res.SpanOptSec[s-1] /= float64(cellsPerSpan)
	}
	res.GeoMeanRatio = stats.GeoMean(ratios)

	fmt.Fprintln(w, "FIGURE 13: span P50 time ratios (optimized/baseline) per device x OS")
	fmt.Fprintln(w, "(paper: mostly <1.0 — geomean 3.4% GAIN; worst cells mild regressions)")
	for s := 1; s <= nSpans; s++ {
		fmt.Fprintf(w, "\nSPAN%d\n", s)
		rows := [][]string{append([]string{"device \\ os"}, osNames()...)}
		for _, dev := range perf.Devices {
			row := []string{dev.Name}
			for _, osm := range perf.OSes {
				for _, c := range res.Cells {
					if c.Span == s && c.Device == dev.Name && c.OS == osm.Name {
						row = append(row, fmt.Sprintf("%.3f", c.Ratio))
					}
				}
			}
			rows = append(rows, row)
		}
		table(w, rows)
	}

	fmt.Fprintln(w, "\nTABLE III: average execution time of core spans")
	rows := [][]string{{"span", "baseline (ms)", "optimized (ms)"}}
	for s := 0; s < nSpans; s++ {
		rows = append(rows, []string{
			fmt.Sprintf("SPAN%d", s+1),
			fmt.Sprintf("%.3f", res.SpanBaseSec[s]*1000),
			fmt.Sprintf("%.3f", res.SpanOptSec[s]*1000),
		})
	}
	table(w, rows)
	fmt.Fprintf(w, "\ngeomean ratio: %.4f (paper: 0.966, a 3.4%% gain)\n", res.GeoMeanRatio)
	fmt.Fprintf(w, "dynamic instructions in outlined functions: %.2f%% (paper: ~3%%)\n", res.OutlinedDynPct)
	fmt.Fprintf(w, "IPC delta (optimized vs baseline): %+.2f%% (paper: +4%%)\n", res.IPCDeltaPct)
	return res, nil
}

func osNames() []string {
	out := make([]string, len(perf.OSes))
	for i, o := range perf.OSes {
		out[i] = o.Name
	}
	return out
}

// jitterDevice perturbs a device's parameters slightly, modeling population
// variance across units, thermal states, and background load.
func jitterDevice(d perf.Device, rng *rand.Rand) perf.Device {
	j := d
	f := 1 + (rng.Float64()-0.5)*0.06
	j.BaseCPI *= f
	j.ICacheMissCycles *= 1 + (rng.Float64()-0.5)*0.1
	j.DCacheMissCycles *= 1 + (rng.Float64()-0.5)*0.1
	return j
}

// dynStats measures the outlined-instruction share and the IPC change on the
// full app run.
func dynStats(base, opt *pipeline.Result) (outlinedPct, ipcDeltaPct float64, err error) {
	dev, osm := perf.Devices[3], perf.OSes[2]
	simB := perf.New(dev, osm)
	mb, err := exec.New(base.Prog, exec.Options{MaxSteps: 200_000_000, Trace: simB.Observe})
	if err != nil {
		return 0, 0, err
	}
	if _, err := mb.Run("main"); err != nil {
		return 0, 0, err
	}
	rb := simB.Finish()

	simO := perf.New(dev, osm)
	mo, err := exec.New(opt.Prog, exec.Options{MaxSteps: 200_000_000, Trace: simO.Observe})
	if err != nil {
		return 0, 0, err
	}
	if _, err := mo.Run("main"); err != nil {
		return 0, 0, err
	}
	ro := simO.Finish()

	st := mo.Stats()
	outlinedPct = 100 * float64(st.OutlinedInsts) / float64(st.DynamicInsts)
	ipcDeltaPct = (ro.IPC/rb.IPC - 1) * 100
	return outlinedPct, ipcDeltaPct, nil
}
