package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{X0, "x0"}, {X28, "x28"}, {FP, "x29"}, {LR, "x30"},
		{SP, "sp"}, {XZR, "xzr"}, {NoReg, "noreg"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestArgReg(t *testing.T) {
	for i := 0; i < NumArgRegs; i++ {
		if got := ArgReg(i); got != X0+Reg(i) {
			t.Errorf("ArgReg(%d) = %v, want x%d", i, got, i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ArgReg(8) did not panic")
		}
	}()
	ArgReg(8)
}

func TestCalleeSaved(t *testing.T) {
	saved := []Reg{X19, X20, X25, X28, FP, LR}
	for _, r := range saved {
		if !r.IsCalleeSaved() {
			t.Errorf("%v should be callee saved", r)
		}
	}
	notSaved := []Reg{X0, X7, X9, X15, SP, XZR}
	for _, r := range notSaved {
		if r.IsCalleeSaved() {
			t.Errorf("%v should not be callee saved", r)
		}
	}
}

func TestCondNegate(t *testing.T) {
	for _, c := range []Cond{EQ, NE, LT, LE, GT, GE} {
		if c.Negate().Negate() != c {
			t.Errorf("double negation of %v is not identity", c)
		}
		if c.Negate() == c {
			t.Errorf("negation of %v is itself", c)
		}
	}
}

func TestOpNameRoundTrip(t *testing.T) {
	for op := MOVZ; op < NumOps; op++ {
		name := OpName(op)
		got, ok := OpFromName(name)
		if !ok || got != op {
			t.Errorf("OpFromName(OpName(%d)) = %d, %v", op, got, ok)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{MoveRR(X0, X20), "ORRXrs $x0, $xzr, $x20"},
		{Inst{Op: BL, Sym: "swift_release"}, "BL @swift_release"},
		{Inst{Op: STPpre, Rd: X26, Rd2: X25, Rn: SP, Imm: -64}, "STPXpre $x26, $x25, $sp, #-64"},
		{Inst{Op: LDPpost, Rd: X26, Rd2: X25, Rn: SP, Imm: 64}, "LDPXpost $x26, $x25, $sp, #64"},
		{Inst{Op: RET}, "RET"},
		{Inst{Op: Bcc, Cond: NE, Sym: "bb3"}, "Bcc.ne @bb3"},
		{Inst{Op: CBZ, Rn: X3, Sym: "err"}, "CBZX $x3, @err"},
		{Inst{Op: MOVZ, Rd: X1, Imm: 42}, "MOVZXi $x1, #42"},
		{Inst{Op: LDRui, Rd: X9, Rn: SP, Imm: 16}, "LDRXui $x9, $sp, #16"},
		{Inst{Op: CSET, Rd: X0, Cond: EQ}, "CSETXr $x0, eq"},
		{Inst{Op: ADR, Rd: X2, Sym: "gMap"}, "ADRP $x2, @gMap"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestInstSize(t *testing.T) {
	if got := (Inst{Op: ADR, Rd: X0, Sym: "g"}).Size(); got != 8 {
		t.Errorf("ADR size = %d, want 8", got)
	}
	if got := (Inst{Op: BL, Sym: "f"}).Size(); got != 4 {
		t.Errorf("BL size = %d, want 4", got)
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in        Inst
		defs, use []Reg
	}{
		{MoveRR(X0, X20), []Reg{X0}, []Reg{X20}},
		{Inst{Op: BL, Sym: "f"}, []Reg{LR}, nil},
		{Inst{Op: RET}, nil, []Reg{LR}},
		{Inst{Op: STRui, Rd: X1, Rn: X2, Imm: 8}, nil, []Reg{X1, X2}},
		{Inst{Op: LDPpost, Rd: X19, Rd2: X20, Rn: SP, Imm: 32}, []Reg{X19, X20, SP}, []Reg{SP}},
		{Inst{Op: STPpre, Rd: X19, Rd2: X20, Rn: SP, Imm: -32}, []Reg{SP}, []Reg{X19, X20, SP}},
		{Inst{Op: MSUB, Rd: X0, Rn: X1, Rm: X2, Rd2: X3}, []Reg{X0}, []Reg{X1, X2, X3}},
		{Inst{Op: CBNZ, Rn: X5, Sym: "l"}, nil, []Reg{X5}},
	}
	for _, c := range cases {
		if got := c.in.Defs(nil); !regsEqual(got, c.defs) {
			t.Errorf("%v Defs = %v, want %v", c.in, got, c.defs)
		}
		if got := c.in.Uses(nil); !regsEqual(got, c.use) {
			t.Errorf("%v Uses = %v, want %v", c.in, got, c.use)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestXZRNeverTracked(t *testing.T) {
	in := Inst{Op: ORRrs, Rd: X0, Rn: XZR, Rm: XZR}
	if uses := in.Uses(nil); len(uses) != 0 {
		t.Errorf("XZR appears in uses: %v", uses)
	}
}

func TestSPPredicates(t *testing.T) {
	frame := Inst{Op: STPpre, Rd: X19, Rd2: X20, Rn: SP, Imm: -32}
	if !frame.ModifiesSP() || !frame.ReadsSP() {
		t.Error("STPpre on sp must modify and read SP")
	}
	spill := Inst{Op: STRui, Rd: X8, Rn: SP, Imm: 0}
	if spill.ModifiesSP() {
		t.Error("SP-relative store must not be classified as modifying SP")
	}
	if !spill.ReadsSP() {
		t.Error("SP-relative store must read SP")
	}
	plain := MoveRR(X0, X1)
	if plain.ModifiesSP() || plain.ReadsSP() {
		t.Error("plain move must not touch SP")
	}
	spAdj := Inst{Op: SUBri, Rd: SP, Rn: SP, Imm: 16}
	if !spAdj.ModifiesSP() {
		t.Error("SUB sp, sp, #16 must modify SP")
	}
}

func TestFlagsPredicates(t *testing.T) {
	if !(Inst{Op: CMPri, Rn: X0, Imm: 3}).SetsFlags() {
		t.Error("CMPri must set flags")
	}
	if !(Inst{Op: Bcc, Cond: EQ, Sym: "l"}).ReadsFlags() {
		t.Error("Bcc must read flags")
	}
	if (Inst{Op: ADDri, Rd: X0, Rn: X0, Imm: 1}).SetsFlags() {
		t.Error("ADDri must not set flags")
	}
}

func TestTerminatorsAndCalls(t *testing.T) {
	terms := []Op{B, Bcc, CBZ, CBNZ, RET, BRK}
	for _, op := range terms {
		if !(Inst{Op: op}).IsTerminator() {
			t.Errorf("%s should be a terminator", OpName(op))
		}
	}
	if (Inst{Op: BL}).IsTerminator() {
		t.Error("BL must not be a terminator (it links)")
	}
	if !(Inst{Op: BL}).IsCall() || !(Inst{Op: BLR}).IsCall() {
		t.Error("BL/BLR must be calls")
	}
}

// Fingerprint must be a function of the full semantic identity: equal
// structs hash equal, and each field perturbs the hash.
func TestFingerprintProperties(t *testing.T) {
	f := func(op uint8, rd, rn, rm uint8, imm int64, sym string) bool {
		in := Inst{Op: Op(op % uint8(NumOps)), Rd: Reg(rd % 34), Rn: Reg(rn % 34), Rm: Reg(rm % 34), Imm: imm, Sym: sym}
		same := in
		return in.Fingerprint() == same.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}

	a := MoveRR(X0, X20)
	variants := []Inst{
		MoveRR(X0, X21),
		MoveRR(X1, X20),
		{Op: ADDrs, Rd: X0, Rn: XZR, Rm: X20},
		{Op: ORRrs, Rd: X0, Rn: XZR, Rm: X20, Imm: 1},
		{Op: ORRrs, Rd: X0, Rn: XZR, Rm: X20, Sym: "x"},
	}
	for _, v := range variants {
		if a.Fingerprint() == v.Fingerprint() {
			t.Errorf("fingerprint collision between %v and %v", a, v)
		}
	}
}

func TestUsesLR(t *testing.T) {
	if (Inst{Op: BL, Sym: "f"}).UsesLR() {
		t.Error("BL's implicit LR def must not count as explicit LR use")
	}
	if (Inst{Op: RET}).UsesLR() {
		t.Error("RET's implicit LR read must not count as explicit LR use")
	}
	if !(Inst{Op: ORRrs, Rd: X0, Rn: XZR, Rm: LR}).UsesLR() {
		t.Error("move from LR must count as explicit LR use")
	}
	if !(Inst{Op: ORRrs, Rd: LR, Rn: XZR, Rm: X0}).UsesLR() {
		t.Error("move into LR must count as explicit LR use")
	}
}
