// Package isa models a fixed-width, AArch64-like instruction set
// architecture. It is the target of the code generator and the subject of the
// machine outliner: instructions carry enough semantic structure to be
// executed by the interpreter (internal/exec), compared for equality by the
// outliner (internal/outline), and costed in bytes for size accounting.
//
// The ISA deliberately mirrors the subset of AArch64 that the paper's
// analysis revolves around: ORR-based register moves that set up calling
// conventions, BL/RET control transfer through the link register, STP/LDP
// frame setup and destruction pairs, and simple ALU/memory operations. Every
// instruction is 4 bytes except the ADR pseudo (which stands for an
// ADRP+ADD pair, 8 bytes), matching the fixed-width property the paper
// relies on when counting size savings.
package isa

import "fmt"

// Reg names a machine register. X0..X28 are general purpose; FP, LR, SP and
// XZR have their usual AArch64 roles. NoReg marks an unused operand slot.
type Reg uint8

// General-purpose and special registers.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	FP  // x29, frame pointer
	LR  // x30, link register
	SP  // stack pointer
	XZR // zero register (reads as zero, writes discarded)
	NumRegs
	NoReg Reg = 255
)

// Calling convention (AAPCS64-like):
//
//	X0..X7   argument/result registers (caller saved)
//	X8..X17  scratch (caller saved; X16/X17 are the linker scratch regs)
//	X19..X28 callee saved
//	FP/LR    frame pointer and link register
const (
	NumArgRegs = 8
	// FirstCalleeSaved..LastCalleeSaved is the callee-saved allocation range.
	FirstCalleeSaved = X19
	LastCalleeSaved  = X28
	// FirstTemp..LastTemp is the caller-saved scratch allocation range.
	FirstTemp = X9
	LastTemp  = X15
)

// IsCalleeSaved reports whether r must be preserved across calls.
func (r Reg) IsCalleeSaved() bool {
	return (r >= FirstCalleeSaved && r <= LastCalleeSaved) || r == FP || r == LR
}

// ErrReg is the error-channel register of the throwing-call convention
// (Swift's swifterror lives in x21; we reuse the same register).
const ErrReg = X21

// IsAllocatable reports whether the register allocator may assign r.
// X8/X16/X17 are spill scratch, X18 is platform-reserved, and X21 carries
// the error channel.
func (r Reg) IsAllocatable() bool {
	return r <= X28 && r != X16 && r != X17 && r != X18 && r != X8 && r != ErrReg
}

func (r Reg) String() string {
	switch r {
	case FP:
		return "x29"
	case LR:
		return "x30"
	case SP:
		return "sp"
	case XZR:
		return "xzr"
	case NoReg:
		return "noreg"
	default:
		if r < FP {
			return fmt.Sprintf("x%d", int(r))
		}
		return fmt.Sprintf("badreg(%d)", int(r))
	}
}

// ArgReg returns the i-th integer argument register (i < NumArgRegs).
func ArgReg(i int) Reg {
	if i < 0 || i >= NumArgRegs {
		panic(fmt.Sprintf("isa: argument register index %d out of range", i))
	}
	return X0 + Reg(i)
}
