package isa

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode. The mnemonic spellings follow LLVM's MIR
// conventions for AArch64 (ORRXrs, STPXpre, ...) so that dumps resemble the
// listings in the paper.
type Op uint8

// Opcodes.
const (
	BAD Op = iota

	// Data processing.
	MOVZ  // MOVZ  Rd, #imm          Rd = imm (pseudo: full 64-bit immediate)
	ORRrs // ORRXrs Rd, Rn, Rm       Rd = Rn | Rm (Rn=XZR encodes a register move)
	ANDrs // ANDXrs Rd, Rn, Rm       Rd = Rn & Rm
	EORrs // EORXrs Rd, Rn, Rm       Rd = Rn ^ Rm
	ADDrs // ADDXrs Rd, Rn, Rm       Rd = Rn + Rm
	ADDri // ADDXri Rd, Rn, #imm     Rd = Rn + imm
	SUBrs // SUBXrs Rd, Rn, Rm       Rd = Rn - Rm
	SUBri // SUBXri Rd, Rn, #imm     Rd = Rn - imm
	MUL   // MADDXrrr Rd, Rn, Rm     Rd = Rn * Rm (xzr accumulator)
	SDIV  // SDIVXr Rd, Rn, Rm       Rd = Rn / Rm (signed, trap on /0)
	MSUB  // MSUBXrrr Rd, Rn, Rm, Ra Rd = Ra - Rn*Rm (used for remainder)
	LSLri // LSLXri Rd, Rn, #imm     Rd = Rn << imm
	LSRri // LSRXri Rd, Rn, #imm     Rd = Rn >> imm (logical)
	ASRri // ASRXri Rd, Rn, #imm     Rd = Rn >> imm (arithmetic)

	// Flag setting and conditional materialization.
	CMPrs // SUBSXrs xzr, Rn, Rm     set NZCV from Rn - Rm
	CMPri // SUBSXri xzr, Rn, #imm   set NZCV from Rn - imm
	CSET  // CSETXr Rd, cond         Rd = cond ? 1 : 0

	// Memory.
	LDRui   // LDRXui  Rd, [Rn, #imm]      load 8 bytes
	STRui   // STRXui  Rd, [Rn, #imm]      store 8 bytes
	LDPui   // LDPXi   Rd, Rd2, [Rn, #imm] load pair
	STPui   // STPXi   Rd, Rd2, [Rn, #imm] store pair
	STPpre  // STPXpre Rd, Rd2, [SP, #-imm]! push pair, writes SP
	LDPpost // LDPXpost Rd, Rd2, [SP], #imm  pop pair, writes SP
	STRpre  // STRXpre Rd, [SP, #-imm]!     push one register, writes SP
	LDRpost // LDRXpost Rd, [SP], #imm      pop one register, writes SP

	// Address formation. Stands for an ADRP+ADDXri pair: 8 bytes.
	ADR // ADRP+ADD Rd, sym        Rd = &sym

	// Control flow.
	B    // B label                 unconditional branch (label or symbol)
	Bcc  // B.cond label            conditional branch on NZCV
	CBZ  // CBZX Rn, label          branch if Rn == 0
	CBNZ // CBNZX Rn, label         branch if Rn != 0
	BL   // BL sym                  call: LR = return address
	BLR  // BLR Rn                  indirect call through Rn
	RET  // RET                     return through LR
	BRK  // BRK #imm                trap

	NOP

	NumOps
)

// Cond is a condition code for Bcc/CSET.
type Cond uint8

// Condition codes (signed comparisons only; unsigned are not generated).
const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
	CondNone Cond = 255
)

func (c Cond) String() string {
	switch c {
	case EQ:
		return "eq"
	case NE:
		return "ne"
	case LT:
		return "lt"
	case LE:
		return "le"
	case GT:
		return "gt"
	case GE:
		return "ge"
	default:
		return "al"
	}
}

// Negate returns the inverse condition.
func (c Cond) Negate() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return c
}

// Inst is one machine instruction. The operand slots are interpreted
// per-opcode (see the Op constants). Unused slots hold NoReg / 0 / "" so that
// structural equality of the struct coincides with semantic equality of the
// instruction, which is what the outliner's instruction mapper relies on.
type Inst struct {
	Op   Op
	Rd   Reg    // destination (first of pair for LDP/STP)
	Rd2  Reg    // second of pair for LDP/STP
	Rn   Reg    // base register / first source
	Rm   Reg    // second source
	Imm  int64  // immediate
	Sym  string // branch label, call target, or global symbol
	Cond Cond
}

// Mnemonic spellings indexed by Op, for printing and parsing.
var opNames = [NumOps]string{
	BAD:     "BAD",
	MOVZ:    "MOVZXi",
	ORRrs:   "ORRXrs",
	ANDrs:   "ANDXrs",
	EORrs:   "EORXrs",
	ADDrs:   "ADDXrs",
	ADDri:   "ADDXri",
	SUBrs:   "SUBXrs",
	SUBri:   "SUBXri",
	MUL:     "MULXrr",
	SDIV:    "SDIVXr",
	MSUB:    "MSUBXrr",
	LSLri:   "LSLXri",
	LSRri:   "LSRXri",
	ASRri:   "ASRXri",
	CMPrs:   "CMPXrs",
	CMPri:   "CMPXri",
	CSET:    "CSETXr",
	LDRui:   "LDRXui",
	STRui:   "STRXui",
	LDPui:   "LDPXi",
	STPui:   "STPXi",
	STPpre:  "STPXpre",
	LDPpost: "LDPXpost",
	STRpre:  "STRXpre",
	LDRpost: "LDRXpost",
	ADR:     "ADRP",
	B:       "B",
	Bcc:     "Bcc",
	CBZ:     "CBZX",
	CBNZ:    "CBNZX",
	BL:      "BL",
	BLR:     "BLR",
	RET:     "RET",
	BRK:     "BRK",
	NOP:     "NOP",
}

// OpName returns the mnemonic for op.
func OpName(op Op) string {
	if op < NumOps {
		return opNames[op]
	}
	return "BAD"
}

// OpFromName returns the opcode with the given mnemonic.
func OpFromName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < NumOps; op++ {
		m[opNames[op]] = op
	}
	return m
}()

// Size returns the encoded size of the instruction in bytes. AArch64 is
// fixed-width (4 bytes); the ADR pseudo stands for an ADRP+ADD pair.
func (in Inst) Size() int {
	if in.Op == ADR {
		return 8
	}
	return 4
}

// String renders the instruction in an LLVM-MIR-like syntax, e.g.
//
//	ORRXrs $x0, $xzr, $x20
//	BL @swift_release
//	STPXpre $x26, $x25, $sp, #-64
func (in Inst) String() string {
	var b strings.Builder
	b.WriteString(opNames[in.Op])
	sep := " "
	emitReg := func(r Reg) {
		b.WriteString(sep)
		b.WriteByte('$')
		b.WriteString(r.String())
		sep = ", "
	}
	emitImm := func(v int64) {
		fmt.Fprintf(&b, "%s#%d", sep, v)
		sep = ", "
	}
	emitSym := func(s string) {
		fmt.Fprintf(&b, "%s@%s", sep, s)
		sep = ", "
	}
	switch in.Op {
	case MOVZ:
		emitReg(in.Rd)
		emitImm(in.Imm)
	case ORRrs, ANDrs, EORrs, ADDrs, SUBrs, MUL, SDIV, MSUB:
		emitReg(in.Rd)
		emitReg(in.Rn)
		emitReg(in.Rm)
	case ADDri, SUBri, LSLri, LSRri, ASRri:
		emitReg(in.Rd)
		emitReg(in.Rn)
		emitImm(in.Imm)
	case CMPrs:
		emitReg(in.Rn)
		emitReg(in.Rm)
	case CMPri:
		emitReg(in.Rn)
		emitImm(in.Imm)
	case CSET:
		emitReg(in.Rd)
		b.WriteString(sep)
		b.WriteString(in.Cond.String())
		sep = ", "
	case LDRui, STRui:
		emitReg(in.Rd)
		emitReg(in.Rn)
		emitImm(in.Imm)
	case LDPui, STPui, STPpre, LDPpost:
		emitReg(in.Rd)
		emitReg(in.Rd2)
		emitReg(in.Rn)
		emitImm(in.Imm)
	case STRpre, LDRpost:
		emitReg(in.Rd)
		emitReg(in.Rn)
		emitImm(in.Imm)
	case ADR:
		emitReg(in.Rd)
		emitSym(in.Sym)
	case B, BL:
		emitSym(in.Sym)
	case Bcc:
		b.WriteString(".")
		b.WriteString(in.Cond.String())
		emitSym(in.Sym)
	case CBZ, CBNZ:
		emitReg(in.Rn)
		emitSym(in.Sym)
	case BLR:
		emitReg(in.Rn)
	case BRK:
		emitImm(in.Imm)
	case RET, NOP:
	}
	return b.String()
}

// MoveRR builds the canonical AArch64 register move "ORRXrs Rd, xzr, Rm".
// These moves, materializing calling conventions before calls, are the most
// frequently repeated machine pattern the paper observes (Listings 1-6).
func MoveRR(rd, rm Reg) Inst { return Inst{Op: ORRrs, Rd: rd, Rn: XZR, Rm: rm} }

// IsMoveRR reports whether in is a canonical register move.
func (in Inst) IsMoveRR() bool { return in.Op == ORRrs && in.Rn == XZR }
