package isa

import "hash/maphash"

// Defs appends the registers written by in to dst and returns it. The NZCV
// flags are tracked separately (see SetsFlags/ReadsFlags). Calls clobber the
// caller-saved set; that is handled by callers that care (liveness), not
// here, because it depends on the calling convention rather than on the
// instruction encoding.
func (in Inst) Defs(dst []Reg) []Reg {
	switch in.Op {
	case MOVZ, ORRrs, ANDrs, EORrs, ADDrs, ADDri, SUBrs, SUBri,
		MUL, SDIV, MSUB, LSLri, LSRri, ASRri, CSET, LDRui, ADR:
		dst = appendReg(dst, in.Rd)
	case LDPui:
		dst = appendReg(dst, in.Rd)
		dst = appendReg(dst, in.Rd2)
	case LDPpost:
		dst = appendReg(dst, in.Rd)
		dst = appendReg(dst, in.Rd2)
		dst = appendReg(dst, in.Rn) // writeback
	case LDRpost:
		dst = appendReg(dst, in.Rd)
		dst = appendReg(dst, in.Rn) // writeback
	case STPpre, STRpre:
		dst = appendReg(dst, in.Rn) // writeback
	case BL, BLR:
		dst = appendReg(dst, LR)
	}
	return dst
}

// Uses appends the registers read by in to dst and returns it.
func (in Inst) Uses(dst []Reg) []Reg {
	switch in.Op {
	case ORRrs, ANDrs, EORrs, ADDrs, SUBrs, MUL, SDIV, CMPrs:
		dst = appendReg(dst, in.Rn)
		dst = appendReg(dst, in.Rm)
	case MSUB:
		// Rd = Ra - Rn*Rm with Ra in Rd pre-state is not modeled; our MSUB
		// reads Rn, Rm and the accumulator carried in Rd2.
		dst = appendReg(dst, in.Rn)
		dst = appendReg(dst, in.Rm)
		dst = appendReg(dst, in.Rd2)
	case ADDri, SUBri, LSLri, LSRri, ASRri, CMPri, LDRui:
		dst = appendReg(dst, in.Rn)
	case STRui:
		dst = appendReg(dst, in.Rd)
		dst = appendReg(dst, in.Rn)
	case LDPui:
		dst = appendReg(dst, in.Rn)
	case STPui, STPpre:
		dst = appendReg(dst, in.Rd)
		dst = appendReg(dst, in.Rd2)
		dst = appendReg(dst, in.Rn)
	case STRpre:
		dst = appendReg(dst, in.Rd)
		dst = appendReg(dst, in.Rn)
	case LDPpost, LDRpost:
		dst = appendReg(dst, in.Rn)
	case CBZ, CBNZ, BLR:
		dst = appendReg(dst, in.Rn)
	case RET:
		dst = appendReg(dst, LR)
	}
	return dst
}

func appendReg(dst []Reg, r Reg) []Reg {
	if r == NoReg || r == XZR {
		return dst
	}
	return append(dst, r)
}

// SetsFlags reports whether in writes the NZCV flags.
func (in Inst) SetsFlags() bool { return in.Op == CMPrs || in.Op == CMPri }

// ReadsFlags reports whether in reads the NZCV flags.
func (in Inst) ReadsFlags() bool { return in.Op == Bcc || in.Op == CSET }

// IsTerminator reports whether in ends a basic block.
func (in Inst) IsTerminator() bool {
	switch in.Op {
	case B, Bcc, CBZ, CBNZ, RET, BRK:
		return true
	}
	return false
}

// IsCall reports whether in transfers control with a link (BL/BLR).
func (in Inst) IsCall() bool { return in.Op == BL || in.Op == BLR }

// IsReturn reports whether in returns from the function.
func (in Inst) IsReturn() bool { return in.Op == RET }

// ModifiesSP reports whether in writes the stack pointer. Such instructions
// (frame setup/destruction, SP adjustment) are never outlined: moving them
// into a function would corrupt the frame of their original context. The
// paper observes exactly these sequences (Listings 7 and 8) among the most
// repeated patterns, yet they remain outside the outliner's reach — our
// legality rules reproduce that.
func (in Inst) ModifiesSP() bool {
	switch in.Op {
	case STPpre, LDPpost, STRpre, LDRpost:
		return in.Rn == SP
	case ADDri, SUBri:
		return in.Rd == SP
	}
	return false
}

// ReadsSP reports whether in uses an SP-relative address or otherwise reads
// SP. Candidates containing such instructions can only be outlined with
// strategies that keep SP unchanged at the point the instruction executes
// (tail call, thunk, or no-LR-save); saving LR on the stack would skew every
// SP-relative offset within the candidate.
func (in Inst) ReadsSP() bool {
	switch in.Op {
	case LDRui, STRui, LDPui, STPui, STPpre, LDPpost, STRpre, LDRpost:
		return in.Rn == SP
	case ADDri, SUBri, ADDrs, SUBrs, ORRrs:
		return in.Rn == SP || in.Rm == SP
	}
	return false
}

// UsesLR reports whether in explicitly reads or writes the link register
// outside of the implicit call/return semantics.
func (in Inst) UsesLR() bool {
	for _, r := range in.Uses(nil) {
		if r == LR {
			return in.Op != RET // RET's implicit LR read is handled by strategy
		}
	}
	for _, r := range in.Defs(nil) {
		if r == LR && !in.IsCall() {
			return true
		}
	}
	return false
}

var fingerprintSeed = maphash.MakeSeed()

// Fingerprint returns a hash of the instruction's full semantic identity.
// Two instructions with equal fingerprints are treated as identical by the
// outliner's instruction mapper (collisions are resolved by Inst equality,
// which is plain struct comparison).
func (in Inst) Fingerprint() uint64 {
	var h maphash.Hash
	h.SetSeed(fingerprintSeed)
	buf := [8]byte{byte(in.Op), byte(in.Rd), byte(in.Rd2), byte(in.Rn), byte(in.Rm), byte(in.Cond)}
	h.Write(buf[:])
	var imm [8]byte
	for i := 0; i < 8; i++ {
		imm[i] = byte(uint64(in.Imm) >> (8 * i))
	}
	h.Write(imm[:])
	h.WriteString(in.Sym)
	return h.Sum64()
}
