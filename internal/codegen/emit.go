package codegen

import (
	"outliner/internal/isa"
	"outliner/internal/llir"
	"outliner/internal/mir"
)

// scratch registers for spill reloads (never allocated).
var scratchRegs = [3]isa.Reg{isa.X8, isa.X17, isa.X16}

// emit produces the final machine function: virtual registers are replaced
// by their assignments, spill code is inserted around uses/defs, the frame
// (prologue/epilogue) is materialized, and branches to the immediately
// following block are elided.
func emit(f *llir.Func, blocks []*vblock, alloc *allocation) *mir.Function {
	needsFrame := alloc.hasCalls || alloc.numSpills > 0 || len(alloc.usedCS) > 0

	// Frame layout (16-byte aligned):
	//   [sp+0]                fp, lr pair
	//   [sp+16 ...]           callee-saved pairs
	//   [sp+csEnd ...]        spill slots (8 bytes each)
	csPairs := (len(alloc.usedCS) + 1) / 2
	csEnd := 16 + 16*csPairs
	frameSize := csEnd + 16*((alloc.numSpills*8+15)/16)

	out := &mir.Function{Name: f.Name, Module: f.Module}

	prologue := func(blk *mir.Block) {
		if !needsFrame {
			return
		}
		blk.Insts = append(blk.Insts, isa.Inst{
			Op: isa.STPpre, Rd: isa.FP, Rd2: isa.LR, Rn: isa.SP, Imm: -int64(frameSize),
		})
		for i := 0; i < len(alloc.usedCS); i += 2 {
			off := int64(16 + 8*i)
			if i+1 < len(alloc.usedCS) {
				blk.Insts = append(blk.Insts, isa.Inst{
					Op: isa.STPui, Rd: alloc.usedCS[i], Rd2: alloc.usedCS[i+1], Rn: isa.SP, Imm: off,
				})
			} else {
				blk.Insts = append(blk.Insts, isa.Inst{
					Op: isa.STRui, Rd: alloc.usedCS[i], Rn: isa.SP, Imm: off,
				})
			}
		}
		blk.Insts = append(blk.Insts, isa.Inst{Op: isa.ADDri, Rd: isa.FP, Rn: isa.SP, Imm: 0})
	}
	epilogue := func(blk *mir.Block) {
		if !needsFrame {
			return
		}
		for i := ((len(alloc.usedCS) - 1) / 2) * 2; i >= 0 && len(alloc.usedCS) > 0; i -= 2 {
			off := int64(16 + 8*i)
			if i+1 < len(alloc.usedCS) {
				blk.Insts = append(blk.Insts, isa.Inst{
					Op: isa.LDPui, Rd: alloc.usedCS[i], Rd2: alloc.usedCS[i+1], Rn: isa.SP, Imm: off,
				})
			} else {
				blk.Insts = append(blk.Insts, isa.Inst{
					Op: isa.LDRui, Rd: alloc.usedCS[i], Rn: isa.SP, Imm: off,
				})
			}
		}
		blk.Insts = append(blk.Insts, isa.Inst{
			Op: isa.LDPpost, Rd: isa.FP, Rd2: isa.LR, Rn: isa.SP, Imm: int64(frameSize),
		})
	}
	slotOff := func(slot int) int64 { return int64(csEnd + 8*slot) }

	for bi, vb := range blocks {
		blk := &mir.Block{Label: vb.label}
		if bi == 0 {
			prologue(blk)
		}
		for ii := range vb.insts {
			vi := &vb.insts[ii]
			if vi.op == isa.RET {
				epilogue(blk)
				blk.Insts = append(blk.Insts, isa.Inst{Op: isa.RET})
				continue
			}
			// Map operands: reload spilled uses into scratch registers,
			// write spilled defs through a scratch register.
			scratchNext := 0
			takeScratch := func() isa.Reg {
				r := scratchRegs[scratchNext]
				scratchNext++
				return r
			}
			regFor := func(v vreg, isUse bool) isa.Reg {
				if v == vnone {
					return isa.Reg(0)
				}
				if v.isPhys() {
					return v.physReg()
				}
				if r, ok := alloc.regOf[v]; ok {
					return r
				}
				slot, ok := alloc.spillSlot[v]
				if !ok {
					// A def-only value with no interval use: scratch.
					return takeScratch()
				}
				r := takeScratch()
				if isUse {
					blk.Insts = append(blk.Insts, isa.Inst{
						Op: isa.LDRui, Rd: r, Rn: isa.SP, Imm: slotOff(slot),
					})
				}
				return r
			}

			in := isa.Inst{Op: vi.op, Imm: vi.imm, Sym: vi.sym, Cond: vi.cond}
			uses := vinstUses(vi)
			defs := vinstDefs(vi)
			isUseField := func(v vreg, list []vreg) bool {
				for _, u := range list {
					if u == v {
						return true
					}
				}
				return false
			}
			// Resolve use operands first (loads), then the def.
			fields := []struct {
				src vreg
				dst *isa.Reg
			}{
				{vi.rn, &in.Rn}, {vi.rm, &in.Rm}, {vi.rd2, &in.Rd2},
			}
			for _, fd := range fields {
				if fd.src == vnone {
					*fd.dst = isa.Reg(0)
					continue
				}
				*fd.dst = regFor(fd.src, isUseField(fd.src, uses))
			}
			// rd can be a use (STRui) or a def.
			if vi.rd != vnone {
				if isUseField(vi.rd, uses) && !isUseField(vi.rd, defs) {
					in.Rd = regFor(vi.rd, true)
				} else {
					in.Rd = regFor(vi.rd, false)
				}
			}
			blk.Insts = append(blk.Insts, in)
			// Spill the def if needed.
			for _, d := range defs {
				if d == vnone || d.isPhys() {
					continue
				}
				if slot, ok := alloc.spillSlot[d]; ok {
					blk.Insts = append(blk.Insts, isa.Inst{
						Op: isa.STRui, Rd: in.Rd, Rn: isa.SP, Imm: slotOff(slot),
					})
				}
			}
		}
		out.Blocks = append(out.Blocks, blk)
	}

	elideFallthroughBranches(out)
	return out
}

// elideFallthroughBranches removes a block-final "B next" when next is the
// physically following block.
func elideFallthroughBranches(f *mir.Function) {
	for i := 0; i+1 < len(f.Blocks); i++ {
		b := f.Blocks[i]
		if len(b.Insts) == 0 {
			continue
		}
		last := b.Insts[len(b.Insts)-1]
		if last.Op == isa.B && last.Sym == f.Blocks[i+1].Label {
			b.Insts = b.Insts[:len(b.Insts)-1]
		}
	}
}
