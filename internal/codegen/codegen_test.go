package codegen

import (
	"strings"
	"testing"

	"outliner/internal/exec"
	"outliner/internal/isa"
	"outliner/internal/llir"
)

// compileAndRun compiles a one-function module plus a main that prints the
// function's result for the given constant arguments.
func compileAndRun(t *testing.T, f *llir.Func, args ...int64) string {
	t.Helper()
	m := llir.NewModule("T")
	m.AddFunc(f)

	mainFn := &llir.Func{Name: "main"}
	b := &llir.Block{Label: "entry"}
	var vals []llir.Value
	for _, a := range args {
		v := mainFn.NewValue()
		b.Insts = append(b.Insts, llir.Inst{Op: llir.Const, Dst: v, Imm: a})
		vals = append(vals, v)
	}
	res := mainFn.NewValue()
	b.Insts = append(b.Insts, llir.Inst{Op: llir.Call, Dst: res, Sym: f.Name, Args: vals})
	b.Insts = append(b.Insts, llir.Inst{Op: llir.Call, Sym: llir.RTPrintInt, Args: []llir.Value{res}})
	b.Insts = append(b.Insts, llir.Inst{Op: llir.Ret})
	mainFn.Blocks = []*llir.Block{b}
	m.AddFunc(mainFn)

	prog, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := prog.Verify(llir.RuntimeSyms); err != nil {
		t.Fatalf("Verify: %v\n%s", err, prog)
	}
	mach, err := exec.New(prog, exec.Options{MaxSteps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mach.Run("main")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

// Phi swap cycle: (a, b) = (b, a) each iteration — out-of-SSA must break the
// copy cycle with a temporary.
func TestOutOfSSASwapCycle(t *testing.T) {
	f := &llir.Func{Name: "swapn", NumParams: 1}
	f.NumValues = 1
	n := f.Param(0)
	c0 := f.NewValue()
	c1 := f.NewValue()
	i0 := f.NewValue()
	phiA := f.NewValue()
	phiB := f.NewValue()
	phiI := f.NewValue()
	one := f.NewValue()
	iNext := f.NewValue()
	cond := f.NewValue()

	f.Blocks = []*llir.Block{
		{Label: "entry", Insts: []llir.Inst{
			{Op: llir.Const, Dst: c0, Imm: 7},
			{Op: llir.Const, Dst: c1, Imm: 100},
			{Op: llir.Const, Dst: i0, Imm: 0},
			{Op: llir.Br, Sym: "loop"},
		}},
		{Label: "loop", Insts: []llir.Inst{
			// a and b swap every iteration.
			{Op: llir.Phi, Dst: phiA, Incomings: []llir.Incoming{{Pred: "entry", Val: c0}, {Pred: "latch", Val: phiB}}},
			{Op: llir.Phi, Dst: phiB, Incomings: []llir.Incoming{{Pred: "entry", Val: c1}, {Pred: "latch", Val: phiA}}},
			{Op: llir.Phi, Dst: phiI, Incomings: []llir.Incoming{{Pred: "entry", Val: i0}, {Pred: "latch", Val: iNext}}},
			{Op: llir.Br, Sym: "latch"},
		}},
		{Label: "latch", Insts: []llir.Inst{
			{Op: llir.Const, Dst: one, Imm: 1},
			{Op: llir.Bin, Dst: iNext, BinOp: llir.Add, A: phiI, B: one},
			{Op: llir.Cmp, Dst: cond, Cond: llir.Lt, A: iNext, B: n},
			{Op: llir.CondBr, A: cond, Sym: "loop", Sym2: "exit"},
		}},
		{Label: "exit", Insts: []llir.Inst{
			{Op: llir.Ret, A: phiA},
		}},
	}
	// After an odd number of swaps (n=1 → 1 iteration), a holds... trace:
	// iteration executes once with n=1: a=7 (phi from entry), exit returns
	// phiA after 1 latch pass: values swap on the back edge only; with n=3
	// the loop body runs 3 times: a = 7,100,7 → final phiA depends on trips.
	if got := compileAndRun(t, f, 3); got != "7\n" && got != "100\n" {
		t.Fatalf("unexpected result %q", got)
	}
	// Determinism across distinct trip counts: one extra trip must flip it.
	a3 := compileAndRun(t, f, 3)
	a4 := compileAndRun(t, f, 4)
	if a3 == a4 {
		t.Errorf("swap did not alternate: n=3 -> %q, n=4 -> %q", a3, a4)
	}
}

// Register pressure: more than 17 simultaneously-live values forces spills,
// and the result must still be correct.
func TestSpilling(t *testing.T) {
	const nvals = 30
	f := &llir.Func{Name: "pressure", NumParams: 1}
	f.NumValues = 1
	b := &llir.Block{Label: "entry"}
	var vals []llir.Value
	for i := 0; i < nvals; i++ {
		v := f.NewValue()
		b.Insts = append(b.Insts, llir.Inst{Op: llir.Const, Dst: v, Imm: int64(i + 1)})
		vals = append(vals, v)
	}
	// A call makes everything live-across-call (callee-saved pressure).
	b.Insts = append(b.Insts, llir.Inst{Op: llir.Call, Sym: llir.RTRetain, Args: []llir.Value{f.Param(0)}})
	sum := vals[0]
	for i := 1; i < nvals; i++ {
		ns := f.NewValue()
		b.Insts = append(b.Insts, llir.Inst{Op: llir.Bin, Dst: ns, BinOp: llir.Add, A: sum, B: vals[i]})
		sum = ns
	}
	b.Insts = append(b.Insts, llir.Inst{Op: llir.Ret, A: sum})
	f.Blocks = []*llir.Block{b}

	want := "465\n" // 1+2+...+30
	if got := compileAndRun(t, f, 0); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}

	// The compiled function must actually contain spill traffic.
	m := llir.NewModule("T2")
	m.AddFunc(cloneFunc(f))
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	spills := 0
	for _, blk := range prog.Func("pressure").Blocks {
		for _, in := range blk.Insts {
			if (in.Op == isa.STRui || in.Op == isa.LDRui) && in.Rn == isa.SP {
				spills++
			}
		}
	}
	if spills == 0 {
		t.Error("no spill code generated under register pressure")
	}
}

// Calling convention: arguments materialize into x0..x7 as ORR moves or
// immediate moves — the paper's Listing 1-6 pattern factory.
func TestCallingConventionMoves(t *testing.T) {
	f := &llir.Func{Name: "callee", NumParams: 2}
	f.NumValues = 2
	s := f.NewValue()
	f.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{
		{Op: llir.Bin, Dst: s, BinOp: llir.Add, A: f.Param(0), B: f.Param(1)},
		{Op: llir.Ret, A: s},
	}}}
	if got := compileAndRun(t, f, 30, 12); got != "42\n" {
		t.Fatalf("got %q", got)
	}
}

func TestFrameOnlyWhenNeeded(t *testing.T) {
	leaf := &llir.Func{Name: "leaf", NumParams: 1}
	leaf.NumValues = 1
	v := leaf.NewValue()
	leaf.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{
		{Op: llir.Bin, Dst: v, BinOp: llir.Add, A: leaf.Param(0), B: leaf.Param(0)},
		{Op: llir.Ret, A: v},
	}}}
	m := llir.NewModule("T")
	m.AddFunc(leaf)

	caller := &llir.Func{Name: "caller", NumParams: 1}
	caller.NumValues = 1
	r := caller.NewValue()
	caller.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{
		{Op: llir.Call, Dst: r, Sym: "leaf", Args: []llir.Value{caller.Param(0)}},
		{Op: llir.Ret, A: r},
	}}}
	m.AddFunc(caller)

	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	leafCode := prog.Func("leaf")
	for _, b := range leafCode.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.STPpre {
				t.Errorf("leaf function grew a frame:\n%s", leafCode)
			}
		}
	}
	callerCode := prog.Func("caller")
	hasFrame := false
	for _, b := range callerCode.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.STPpre && in.Rd == isa.FP && in.Rd2 == isa.LR {
				hasFrame = true
			}
		}
	}
	if !hasFrame {
		t.Errorf("calling function has no fp/lr frame:\n%s", callerCode)
	}
}

// Throwing convention: the callee sets x21; the caller reads it.
func TestErrorChannel(t *testing.T) {
	thrower := &llir.Func{Name: "thrower", NumParams: 1, Throws: true}
	thrower.NumValues = 1
	zero := thrower.NewValue()
	errv := thrower.NewValue()
	cmp := thrower.NewValue()
	ret0 := thrower.NewValue()
	thrower.Blocks = []*llir.Block{
		{Label: "entry", Insts: []llir.Inst{
			{Op: llir.Const, Dst: zero, Imm: 0},
			{Op: llir.Cmp, Dst: cmp, Cond: llir.Lt, A: thrower.Param(0), B: zero},
			{Op: llir.CondBr, A: cmp, Sym: "bad", Sym2: "good"},
		}},
		{Label: "bad", Insts: []llir.Inst{
			{Op: llir.Const, Dst: errv, Imm: 43},
			{Op: llir.Ret, B: errv},
		}},
		{Label: "good", Insts: []llir.Inst{
			{Op: llir.Const, Dst: ret0, Imm: 0},
			{Op: llir.Ret, A: thrower.Param(0), B: ret0},
		}},
	}
	m := llir.NewModule("T")
	m.AddFunc(thrower)

	mainFn := &llir.Func{Name: "main"}
	arg := mainFn.NewValue()
	res := mainFn.NewValue()
	errd := mainFn.NewValue()
	mainFn.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{
		{Op: llir.Const, Dst: arg, Imm: -5},
		{Op: llir.Call, Dst: res, ErrDst: errd, Sym: "thrower", Args: []llir.Value{arg}, Throws: true},
		{Op: llir.Call, Sym: llir.RTPrintInt, Args: []llir.Value{errd}},
		{Op: llir.Ret},
	}}}
	m.AddFunc(mainFn)

	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := exec.New(prog, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mach.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if out != "43\n" {
		t.Errorf("error channel value = %q, want 43", out)
	}
}

func TestTooManyArgsRejected(t *testing.T) {
	f := &llir.Func{Name: "wide", NumParams: 9}
	f.NumValues = 9
	f.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{{Op: llir.Ret, A: f.Param(0)}}}}
	m := llir.NewModule("T")
	m.AddFunc(f)
	if _, err := Compile(m); err == nil || !strings.Contains(err.Error(), "argument registers") {
		t.Errorf("err = %v", err)
	}
}

// The Rem lowering (SDIV + MSUB) must compute a - (a/b)*b.
func TestRemLowering(t *testing.T) {
	f := &llir.Func{Name: "mod", NumParams: 2}
	f.NumValues = 2
	r := f.NewValue()
	f.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{
		{Op: llir.Bin, Dst: r, BinOp: llir.Rem, A: f.Param(0), B: f.Param(1)},
		{Op: llir.Ret, A: r},
	}}}
	if got := compileAndRun(t, f, 17, 5); got != "2\n" {
		t.Errorf("17 %% 5 = %q", got)
	}
}

// Mul by a power-of-two constant lowers to a shift.
func TestShiftStrengthReduction(t *testing.T) {
	f := &llir.Func{Name: "by8", NumParams: 1}
	f.NumValues = 1
	c := f.NewValue()
	r := f.NewValue()
	f.Blocks = []*llir.Block{{Label: "entry", Insts: []llir.Inst{
		{Op: llir.Const, Dst: c, Imm: 8},
		{Op: llir.Bin, Dst: r, BinOp: llir.Mul, A: f.Param(0), B: c},
		{Op: llir.Ret, A: r},
	}}}
	if got := compileAndRun(t, f, 5); got != "40\n" {
		t.Fatalf("got %q", got)
	}
	m := llir.NewModule("T2")
	m.AddFunc(cloneFunc(f))
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	hasShift, hasMul := false, false
	for _, b := range prog.Func("by8").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.LSLri {
				hasShift = true
			}
			if in.Op == isa.MUL {
				hasMul = true
			}
		}
	}
	if !hasShift || hasMul {
		t.Errorf("power-of-two multiply not strength-reduced:\n%s", prog.Func("by8"))
	}
}

// A diamond where both CondBr targets carry phis forces critical-edge
// splitting; values must still flow correctly.
func TestCriticalEdgeSplitting(t *testing.T) {
	f := &llir.Func{Name: "diamond", NumParams: 1}
	f.NumValues = 1
	c0 := f.NewValue()
	cond := f.NewValue()
	a := f.NewValue()
	bv := f.NewValue()
	phi := f.NewValue()
	f.Blocks = []*llir.Block{
		{Label: "entry", Insts: []llir.Inst{
			{Op: llir.Const, Dst: c0, Imm: 10},
			{Op: llir.Cmp, Dst: cond, Cond: llir.Lt, A: f.Param(0), B: c0},
			// Both successors join at "out" — the edges are critical when
			// "out" has multiple predecessors and entry has two successors.
			{Op: llir.CondBr, A: cond, Sym: "left", Sym2: "right"},
		}},
		{Label: "left", Insts: []llir.Inst{
			{Op: llir.Const, Dst: a, Imm: 111},
			{Op: llir.Br, Sym: "out"},
		}},
		{Label: "right", Insts: []llir.Inst{
			{Op: llir.Const, Dst: bv, Imm: 222},
			{Op: llir.Br, Sym: "out"},
		}},
		{Label: "out", Insts: []llir.Inst{
			{Op: llir.Phi, Dst: phi, Incomings: []llir.Incoming{
				{Pred: "left", Val: a}, {Pred: "right", Val: bv},
			}},
			{Op: llir.Ret, A: phi},
		}},
	}
	if got := compileAndRun(t, cloneFunc(f), 5); got != "111\n" {
		t.Errorf("lt path got %q", got)
	}
	if got := compileAndRun(t, cloneFunc(f), 50); got != "222\n" {
		t.Errorf("ge path got %q", got)
	}
}

// A CondBr whose targets BOTH have phis from a multi-pred join requires two
// splits on the same terminator.
func TestCriticalEdgeBothTargets(t *testing.T) {
	f := &llir.Func{Name: "both", NumParams: 1}
	f.NumValues = 1
	c0 := f.NewValue()
	cond := f.NewValue()
	one := f.NewValue()
	two := f.NewValue()
	phiA := f.NewValue()
	phiB := f.NewValue()
	sum := f.NewValue()
	f.Blocks = []*llir.Block{
		{Label: "entry", Insts: []llir.Inst{
			{Op: llir.Const, Dst: c0, Imm: 0},
			{Op: llir.Const, Dst: one, Imm: 1},
			{Op: llir.Const, Dst: two, Imm: 2},
			{Op: llir.Cmp, Dst: cond, Cond: llir.Gt, A: f.Param(0), B: c0},
			{Op: llir.CondBr, A: cond, Sym: "ja", Sym2: "jb"},
		}},
		{Label: "pre", Insts: []llir.Inst{ // second predecessor for both joins
			{Op: llir.Br, Sym: "ja"},
		}},
		{Label: "ja", Insts: []llir.Inst{
			{Op: llir.Phi, Dst: phiA, Incomings: []llir.Incoming{
				{Pred: "entry", Val: one}, {Pred: "pre", Val: two},
			}},
			{Op: llir.Br, Sym: "jb"},
		}},
		{Label: "jb", Insts: []llir.Inst{
			{Op: llir.Phi, Dst: phiB, Incomings: []llir.Incoming{
				{Pred: "entry", Val: two}, {Pred: "ja", Val: phiA},
			}},
			{Op: llir.Bin, Dst: sum, BinOp: llir.Add, A: phiB, B: one},
			{Op: llir.Ret, A: sum},
		}},
	}
	// x>0: entry->ja (phiA=1) -> jb (phiB=phiA=1) -> ret 2.
	if got := compileAndRun(t, cloneFunc(f), 7); got != "2\n" {
		t.Errorf("taken path got %q", got)
	}
	// x<=0: entry->jb directly (phiB=2) -> ret 3.
	if got := compileAndRun(t, cloneFunc(f), -1); got != "3\n" {
		t.Errorf("fallthrough path got %q", got)
	}
}
