// Package codegen lowers LLIR to machine code (internal/mir): the llc analog.
//
// The stages reproduce the parts of an AArch64 backend that the paper's
// analysis identifies as pattern factories:
//
//   - out-of-SSA translation (phi elimination with critical-edge splitting
//     and parallel-copy sequentialization) — the source of the copy/spill
//     blow-up of §IV-4 and Listing 11,
//   - instruction selection with calling-convention materialization — the
//     ORRXrs argument moves of Listings 1-6,
//   - linear-scan register allocation with callee-saved preferences and
//     spill code,
//   - prologue/epilogue insertion with STP/LDP pairs — Listings 7-8.
package codegen

import (
	"fmt"

	"outliner/internal/fault"
	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/par"
)

// Compile lowers every function of an LLIR module and returns a machine
// program (functions keep their source-module provenance; globals carry
// over). It uses one worker per CPU; see CompileWith for the knob.
func Compile(m *llir.Module) (*mir.Program, error) { return CompileWith(m, 0) }

// CompileWith is Compile with an explicit worker bound (0 = one per CPU,
// 1 = serial). Functions lower independently (ISel → out-of-SSA → regalloc
// read only their own cloned function), and the results are appended in
// module order, so the machine program is identical for any worker count.
func CompileWith(m *llir.Module, parallelism int) (*mir.Program, error) {
	return CompileTraced(m, parallelism, nil, 0, nil)
}

// CompileTraced is CompileWith with telemetry and fault injection: the
// functions-compiled counter, and (when the tracer collects fine spans) one
// span per function on trace lane baseLane+worker. The caller picks baseLane
// so spans land on the track of whichever pool is running: the whole-program
// pipeline passes 1 (its codegen workers are lanes 1..p), the default
// pipeline's per-module workers pass their own lane (their inner codegen is
// serial). inj (nil to disable) arms a per-function CodegenFunc panic point,
// keyed by function name; the worker pool recovers it into a structured
// *par.PanicError.
func CompileTraced(m *llir.Module, parallelism int, tr *obs.Tracer, baseLane int, inj *fault.Injector) (*mir.Program, error) {
	funcs, err := par.MapLanesStage("llc", parallelism, len(m.Funcs), func(lane, i int) (*mir.Function, error) {
		inj.MaybePanic(fault.CodegenFunc, m.Funcs[i].Name)
		sp := tr.StartFine("codegen @"+m.Funcs[i].Name, baseLane+lane)
		mf, err := compileFunc(m.Funcs[i])
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("codegen: @%s: %w", m.Funcs[i].Name, err)
		}
		return mf, nil
	})
	tr.Add("codegen/functions", int64(len(m.Funcs)))
	if err != nil {
		return nil, err
	}
	prog := mir.NewProgram()
	for _, mf := range funcs {
		prog.AddFunc(mf)
	}
	for _, g := range m.Globals {
		words := append([]int64(nil), g.Words...)
		prog.AddGlobal(&mir.Global{Name: g.Name, Module: g.Module, Words: words})
	}
	return prog, nil
}

func compileFunc(f *llir.Func) (*mir.Function, error) {
	// Work on a shallow clone so out-of-SSA edits do not mutate the LLIR
	// module (pipelines compile the same module with several configs).
	work := cloneFunc(f)
	outOfSSA(work)
	vblocks, err := selectInstructions(work)
	if err != nil {
		return nil, err
	}
	alloc, err := allocateRegisters(work, vblocks)
	if err != nil {
		return nil, err
	}
	return emit(work, vblocks, alloc), nil
}

func cloneFunc(f *llir.Func) *llir.Func {
	nf := &llir.Func{
		Name:      f.Name,
		Module:    f.Module,
		NumParams: f.NumParams,
		Throws:    f.Throws,
		NumValues: f.NumValues,
	}
	for _, b := range f.Blocks {
		nb := &llir.Block{Label: b.Label, Insts: make([]llir.Inst, len(b.Insts))}
		copy(nb.Insts, b.Insts)
		for i := range nb.Insts {
			nb.Insts[i].Args = append([]llir.Value(nil), b.Insts[i].Args...)
			nb.Insts[i].Incomings = append([]llir.Incoming(nil), b.Insts[i].Incomings...)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// Copy is the post-SSA parallel-copy pseudo-instruction: Dst = A. It reuses
// llir.Inst storage with a dedicated opcode outside the SSA op set.
const opCopy llir.Op = llir.NumOps + 1

// outOfSSA eliminates phis: critical edges are split, then each phi becomes
// copies in the predecessors. Copies on one edge form a parallel copy and
// are sequentialized with a temporary when they form a cycle.
func outOfSSA(f *llir.Func) {
	splitCriticalEdges(f)

	// Gather copies per predecessor edge: pred label -> [dst, src].
	type copyOp struct{ dst, src llir.Value }
	edgeCopies := make(map[string][]copyOp)
	for _, b := range f.Blocks {
		kept := b.Insts[:0]
		for _, in := range b.Insts {
			if in.Op != llir.Phi {
				kept = append(kept, in)
				continue
			}
			for _, inc := range in.Incomings {
				edgeCopies[inc.Pred] = append(edgeCopies[inc.Pred], copyOp{dst: in.Dst, src: inc.Val})
			}
		}
		b.Insts = kept
	}
	if len(edgeCopies) == 0 {
		return
	}
	for _, b := range f.Blocks {
		copies, ok := edgeCopies[b.Label]
		if !ok {
			continue
		}
		// Sequentialize the parallel copy. Emit copies whose destination is
		// not a pending source; break cycles with a fresh temporary.
		var seq []llir.Inst
		pending := append([]copyOp(nil), copies...)
		for len(pending) > 0 {
			progress := false
			for i, c := range pending {
				dstIsSource := false
				for j, o := range pending {
					if j != i && o.src == c.dst {
						dstIsSource = true
						break
					}
				}
				if !dstIsSource {
					if c.dst != c.src {
						seq = append(seq, llir.Inst{Op: opCopy, Dst: c.dst, A: c.src})
					}
					pending = append(pending[:i], pending[i+1:]...)
					progress = true
					break
				}
			}
			if !progress {
				// Cycle: rotate through a temp.
				tmp := f.NewValue()
				c := pending[0]
				seq = append(seq, llir.Inst{Op: opCopy, Dst: tmp, A: c.src})
				// Redirect the source to the temp and retry.
				for j := range pending {
					if pending[j].src == c.src {
						pending[j].src = tmp
					}
				}
			}
		}
		// Insert before the terminator.
		term := b.Insts[len(b.Insts)-1]
		b.Insts = append(b.Insts[:len(b.Insts)-1], append(seq, term)...)
	}
}

// splitCriticalEdges inserts a forwarding block on every edge whose source
// has multiple successors and whose target has multiple predecessors (and
// carries phis).
func splitCriticalEdges(f *llir.Func) {
	preds := f.Preds()
	hasPhis := make(map[string]bool)
	for _, b := range f.Blocks {
		if len(b.Insts) > 0 && b.Insts[0].Op == llir.Phi {
			hasPhis[b.Label] = true
		}
	}
	seq := 0
	var newBlocks []*llir.Block
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != llir.CondBr {
			continue
		}
		split := func(target string) string {
			if !hasPhis[target] || len(preds[target]) < 2 {
				return target
			}
			seq++
			label := fmt.Sprintf("%s.crit%d", b.Label, seq)
			nb := &llir.Block{Label: label, Insts: []llir.Inst{{Op: llir.Br, Sym: target}}}
			newBlocks = append(newBlocks, nb)
			// Retarget the phi incomings naming b to the new block.
			for _, blk := range f.Blocks {
				if blk.Label != target {
					continue
				}
				for i := range blk.Insts {
					in := &blk.Insts[i]
					if in.Op != llir.Phi {
						break
					}
					for j := range in.Incomings {
						if in.Incomings[j].Pred == b.Label {
							in.Incomings[j].Pred = label
						}
					}
				}
			}
			return label
		}
		if t.Sym != t.Sym2 {
			t.Sym = split(t.Sym)
			t.Sym2 = split(t.Sym2)
		}
	}
	f.Blocks = append(f.Blocks, newBlocks...)
}
