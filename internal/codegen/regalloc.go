package codegen

import (
	"fmt"
	"sort"

	"outliner/internal/isa"
)

// allocation is the result of register allocation.
type allocation struct {
	regOf     map[vreg]isa.Reg
	spillSlot map[vreg]int
	numSpills int
	usedCS    []isa.Reg // callee-saved registers the function writes
	hasCalls  bool
}

// operand roles: which vinst fields are written and read, per opcode.
func vinstDefs(in *vinst) []vreg {
	switch in.op {
	case isa.MOVZ, isa.ORRrs, isa.ANDrs, isa.EORrs, isa.ADDrs, isa.ADDri,
		isa.SUBrs, isa.SUBri, isa.MUL, isa.SDIV, isa.MSUB, isa.LSLri,
		isa.LSRri, isa.ASRri, isa.CSET, isa.LDRui, isa.ADR:
		return []vreg{in.rd}
	}
	return nil
}

func vinstUses(in *vinst) []vreg {
	switch in.op {
	case isa.ORRrs, isa.ANDrs, isa.EORrs, isa.ADDrs, isa.SUBrs, isa.MUL, isa.SDIV, isa.CMPrs:
		return []vreg{in.rn, in.rm}
	case isa.MSUB:
		return []vreg{in.rn, in.rm, in.rd2}
	case isa.ADDri, isa.SUBri, isa.LSLri, isa.LSRri, isa.ASRri, isa.CMPri, isa.LDRui:
		return []vreg{in.rn}
	case isa.STRui:
		return []vreg{in.rd, in.rn}
	case isa.CBZ, isa.CBNZ, isa.BLR:
		return []vreg{in.rn}
	}
	return nil
}

func isCallOp(op isa.Op) bool { return op == isa.BL || op == isa.BLR }

// interval is a live interval over linearized instruction positions.
type interval struct {
	v          vreg
	start, end int
	crossCall  bool
}

// allocateRegisters runs a Poletto-style linear scan. Values live across
// calls go to callee-saved registers (producing the STP/LDP prologue
// patterns of the paper's Listings 7-8); short-lived values use caller-saved
// temporaries; overflow spills to the stack.
func allocateRegisters(f interface{ String() string }, blocks []*vblock) (*allocation, error) {
	alloc := &allocation{
		regOf:     make(map[vreg]isa.Reg),
		spillSlot: make(map[vreg]int),
	}

	// Linearize and record positions.
	type pos struct{ b, i int }
	var linear []pos
	blockStart := make([]int, len(blocks))
	blockEnd := make([]int, len(blocks))
	labels := make(map[string]bool, len(blocks))
	labelIdx := make(map[string]int, len(blocks))
	for bi, b := range blocks {
		labels[b.label] = true
		labelIdx[b.label] = bi
	}
	var callPositions []int
	for bi, b := range blocks {
		blockStart[bi] = len(linear)
		for ii := range b.insts {
			if isCallOp(b.insts[ii].op) {
				callPositions = append(callPositions, len(linear))
			}
			linear = append(linear, pos{bi, ii})
		}
		blockEnd[bi] = len(linear) - 1
	}
	alloc.hasCalls = len(callPositions) > 0

	// Per-block use/def sets over virtual registers.
	useSet := make([]map[vreg]bool, len(blocks))
	defSet := make([]map[vreg]bool, len(blocks))
	for bi, b := range blocks {
		useSet[bi] = make(map[vreg]bool)
		defSet[bi] = make(map[vreg]bool)
		for ii := range b.insts {
			in := &b.insts[ii]
			for _, u := range vinstUses(in) {
				if u > 0 && !defSet[bi][u] {
					useSet[bi][u] = true
				}
			}
			for _, d := range vinstDefs(in) {
				if d > 0 {
					defSet[bi][d] = true
				}
			}
		}
	}

	// Backward liveness to a fixed point.
	liveIn := make([]map[vreg]bool, len(blocks))
	liveOut := make([]map[vreg]bool, len(blocks))
	for i := range blocks {
		liveIn[i] = make(map[vreg]bool)
		liveOut[i] = make(map[vreg]bool)
	}
	succIdx := make([][]int, len(blocks))
	for bi, b := range blocks {
		for _, s := range b.succs(labels) {
			succIdx[bi] = append(succIdx[bi], labelIdx[s])
		}
	}
	for changed := true; changed; {
		changed = false
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			out := make(map[vreg]bool)
			for _, s := range succIdx[bi] {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := make(map[vreg]bool, len(out))
			for v := range out {
				if !defSet[bi][v] {
					in[v] = true
				}
			}
			for v := range useSet[bi] {
				in[v] = true
			}
			if len(out) != len(liveOut[bi]) || len(in) != len(liveIn[bi]) {
				liveOut[bi], liveIn[bi] = out, in
				changed = true
			}
		}
	}

	// Build intervals.
	ivals := make(map[vreg]*interval)
	touch := func(v vreg, p int) {
		if v <= 0 {
			return
		}
		iv, ok := ivals[v]
		if !ok {
			ivals[v] = &interval{v: v, start: p, end: p}
			return
		}
		if p < iv.start {
			iv.start = p
		}
		if p > iv.end {
			iv.end = p
		}
	}
	for bi, b := range blocks {
		for ii := range b.insts {
			p := blockStart[bi] + ii
			in := &b.insts[ii]
			for _, d := range vinstDefs(in) {
				touch(d, p)
			}
			for _, u := range vinstUses(in) {
				touch(u, p)
			}
		}
		for v := range liveIn[bi] {
			touch(v, blockStart[bi])
		}
		for v := range liveOut[bi] {
			touch(v, blockEnd[bi])
		}
	}
	for _, c := range callPositions {
		for _, iv := range ivals {
			if iv.start < c && c < iv.end {
				iv.crossCall = true
			}
		}
	}

	sorted := make([]*interval, 0, len(ivals))
	for _, iv := range ivals {
		sorted = append(sorted, iv)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].start != sorted[j].start {
			return sorted[i].start < sorted[j].start
		}
		return sorted[i].v < sorted[j].v
	})

	// Register pools.
	var temps []isa.Reg
	for r := isa.FirstTemp; r <= isa.LastTemp; r++ {
		temps = append(temps, r)
	}
	var saved []isa.Reg
	for r := isa.FirstCalleeSaved; r <= isa.LastCalleeSaved; r++ {
		if r.IsAllocatable() {
			saved = append(saved, r)
		}
	}

	type activeEntry struct {
		iv  *interval
		reg isa.Reg
	}
	var active []activeEntry
	free := make(map[isa.Reg]bool)
	for _, r := range temps {
		free[r] = true
	}
	for _, r := range saved {
		free[r] = true
	}
	usedCS := make(map[isa.Reg]bool)

	expire := func(p int) {
		kept := active[:0]
		for _, ae := range active {
			if ae.iv.end < p {
				free[ae.reg] = true
			} else {
				kept = append(kept, ae)
			}
		}
		active = kept
	}
	takeFrom := func(pool []isa.Reg) (isa.Reg, bool) {
		for _, r := range pool {
			if free[r] {
				free[r] = false
				return r, true
			}
		}
		return 0, false
	}

	for _, iv := range sorted {
		expire(iv.start)
		var reg isa.Reg
		var ok bool
		if iv.crossCall {
			reg, ok = takeFrom(saved)
		} else {
			if reg, ok = takeFrom(temps); !ok {
				reg, ok = takeFrom(saved)
			}
		}
		if !ok {
			// Spill the current interval.
			alloc.spillSlot[iv.v] = alloc.numSpills
			alloc.numSpills++
			continue
		}
		if reg.IsCalleeSaved() {
			usedCS[reg] = true
		}
		alloc.regOf[iv.v] = reg
		active = append(active, activeEntry{iv: iv, reg: reg})
	}

	for r := range usedCS {
		alloc.usedCS = append(alloc.usedCS, r)
	}
	sort.Slice(alloc.usedCS, func(i, j int) bool { return alloc.usedCS[i] < alloc.usedCS[j] })
	if len(alloc.regOf)+len(alloc.spillSlot) != len(ivals) {
		return nil, fmt.Errorf("allocation bookkeeping mismatch")
	}
	return alloc, nil
}
