package codegen

import (
	"fmt"
	"math/bits"

	"outliner/internal/isa"
	"outliner/internal/llir"
)

// vreg is a register operand during selection: positive ids are virtual
// registers (llir value numbers), negative ids encode physical registers.
type vreg int

const vnone vreg = 0

func phys(r isa.Reg) vreg       { return -vreg(r) - 1 }
func (v vreg) isPhys() bool     { return v < 0 }
func (v vreg) physReg() isa.Reg { return isa.Reg(-v - 1) }

// vinst is a machine instruction with (possibly) virtual register operands.
type vinst struct {
	op   isa.Op
	rd   vreg
	rd2  vreg
	rn   vreg
	rm   vreg
	imm  int64
	sym  string
	cond isa.Cond
}

// vblock is a pre-RA basic block.
type vblock struct {
	label string
	insts []vinst
}

// succs extracts the control-flow successors of the block (labels only;
// RET/BRK and tail-calls have none).
func (b *vblock) succs(labels map[string]bool) []string {
	var out []string
	for i := len(b.insts) - 1; i >= 0; i-- {
		in := b.insts[i]
		switch in.op {
		case isa.B, isa.Bcc, isa.CBZ, isa.CBNZ:
			if labels[in.sym] {
				out = append(out, in.sym)
			}
		case isa.RET, isa.BRK:
		default:
			return out
		}
		if i == len(b.insts)-1 && (in.op == isa.RET || in.op == isa.BRK) {
			return nil
		}
	}
	return out
}

type selector struct {
	f       *llir.Func
	useCnt  map[llir.Value]int
	defOf   map[llir.Value]*llir.Inst
	skipped map[llir.Value]bool // Const defs fully folded; Cmp defs fused
}

// selectInstructions lowers the (post-SSA) LLIR function to vinsts.
func selectInstructions(f *llir.Func) ([]*vblock, error) {
	s := &selector{
		f:       f,
		useCnt:  make(map[llir.Value]int),
		defOf:   make(map[llir.Value]*llir.Inst),
		skipped: make(map[llir.Value]bool),
	}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Dst != llir.None {
				s.defOf[in.Dst] = in
			}
			if in.Op == llir.Call && in.ErrDst != llir.None {
				s.defOf[in.ErrDst] = in
			}
			for _, u := range uses(in) {
				s.useCnt[u]++
			}
		}
	}
	s.planFolding()

	var out []*vblock
	for bi, b := range f.Blocks {
		vb := &vblock{label: b.Label}
		if bi == 0 {
			// Materialize incoming parameters from the argument registers.
			if f.NumParams > isa.NumArgRegs {
				return nil, fmt.Errorf("%d parameters exceed the %d argument registers",
					f.NumParams, isa.NumArgRegs)
			}
			for i := 0; i < f.NumParams; i++ {
				vb.insts = append(vb.insts, vinst{
					op: isa.ORRrs, rd: vreg(f.Param(i)), rn: phys(isa.XZR), rm: phys(isa.ArgReg(i)),
				})
			}
		}
		for i := range b.Insts {
			if err := s.lower(vb, b, i); err != nil {
				return nil, err
			}
		}
		out = append(out, vb)
	}
	return out, nil
}

func uses(in *llir.Inst) []llir.Value {
	var out []llir.Value
	add := func(v llir.Value) {
		if v != llir.None {
			out = append(out, v)
		}
	}
	switch in.Op {
	case llir.Const, llir.GlobalAddr, llir.Br, llir.Unreachable:
	case llir.Ret:
		add(in.A)
		add(in.B)
	case llir.Store:
		add(in.A)
		add(in.B)
	case llir.Call:
		// Args only.
	case llir.CallInd:
		add(in.A)
	default:
		add(in.A)
		add(in.B)
	}
	for _, a := range in.Args {
		add(a)
	}
	for _, inc := range in.Incomings {
		add(inc.Val)
	}
	return out
}

// planFolding decides which Const definitions vanish entirely into immediate
// operands, and which Cmp definitions fuse into their consuming conditional
// branch.
func (s *selector) planFolding() {
	for _, b := range s.f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			switch in.Op {
			case llir.Const:
				if s.useCnt[in.Dst] > 0 && s.allUsesFoldable(in.Dst, in.Imm) {
					s.skipped[in.Dst] = true
				}
			case llir.Cmp:
				if s.useCnt[in.Dst] == 1 {
					if user := s.singleUserInBlock(b, in.Dst); user != nil && user.Op == llir.CondBr {
						s.skipped[in.Dst] = true
					}
				}
			}
		}
	}
}

func (s *selector) singleUserInBlock(b *llir.Block, v llir.Value) *llir.Inst {
	var found *llir.Inst
	for i := range b.Insts {
		in := &b.Insts[i]
		for _, u := range uses(in) {
			if u == v {
				if found != nil {
					return nil
				}
				found = in
			}
		}
	}
	return found
}

// allUsesFoldable reports whether every use of a Const can take the
// immediate form.
func (s *selector) allUsesFoldable(v llir.Value, imm int64) bool {
	folds := 0
	for _, b := range s.f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			for _, u := range uses(in) {
				if u != v {
					continue
				}
				if !useFoldable(in, v, imm) {
					return false
				}
				folds++
			}
		}
	}
	return folds > 0
}

func useFoldable(user *llir.Inst, v llir.Value, imm int64) bool {
	switch user.Op {
	case llir.Bin:
		if user.B != v || user.A == v {
			return false
		}
		switch user.BinOp {
		case llir.Add, llir.Sub:
			return imm >= 0 && imm < 4096
		case llir.Mul:
			return imm > 0 && imm&(imm-1) == 0 // power of two -> shift
		}
		return false
	case llir.Cmp:
		return user.B == v && user.A != v && imm >= 0 && imm < 4096
	case llir.Ret:
		// The error channel is set with an immediate move.
		return user.B == v && user.A != v
	case llir.Call, llir.CallInd:
		// Arguments can be materialized directly into argument registers.
		return argOnly(user, v)
	case llir.CondBr:
		return false
	}
	return false
}

// argOnly reports whether v appears only in the argument list of the call.
func argOnly(call *llir.Inst, v llir.Value) bool {
	if call.A == v || call.B == v {
		return false
	}
	for _, a := range call.Args {
		if a == v {
			return true
		}
	}
	return false
}

func (s *selector) constImm(v llir.Value) (int64, bool) {
	d := s.defOf[v]
	if d != nil && d.Op == llir.Const {
		return d.Imm, true
	}
	return 0, false
}

// lower translates f.Blocks[?].Insts[i] into vb.
func (s *selector) lower(vb *vblock, b *llir.Block, idx int) error {
	in := &b.Insts[idx]
	emit := func(vi vinst) { vb.insts = append(vb.insts, vi) }
	mov := func(dst, src vreg) { emit(vinst{op: isa.ORRrs, rd: dst, rn: phys(isa.XZR), rm: src}) }
	v := func(x llir.Value) vreg { return vreg(x) }

	// Argument moves for calls: constants can be moved as immediates.
	emitArgs := func(args []llir.Value) error {
		if len(args) > isa.NumArgRegs {
			return fmt.Errorf("call with %d arguments exceeds the %d argument registers",
				len(args), isa.NumArgRegs)
		}
		for i, a := range args {
			dst := phys(isa.ArgReg(i))
			if imm, ok := s.constImm(a); ok && s.skipped[a] {
				emit(vinst{op: isa.MOVZ, rd: dst, imm: imm})
			} else {
				mov(dst, v(a))
			}
		}
		return nil
	}

	switch in.Op {
	case llir.Const:
		if s.skipped[in.Dst] {
			return nil
		}
		emit(vinst{op: isa.MOVZ, rd: v(in.Dst), imm: in.Imm})
	case llir.GlobalAddr:
		emit(vinst{op: isa.ADR, rd: v(in.Dst), sym: in.Sym})
	case llir.Bin:
		if imm, ok := s.constImm(in.B); ok && s.skipped[in.B] {
			switch in.BinOp {
			case llir.Add:
				emit(vinst{op: isa.ADDri, rd: v(in.Dst), rn: v(in.A), imm: imm})
				return nil
			case llir.Sub:
				emit(vinst{op: isa.SUBri, rd: v(in.Dst), rn: v(in.A), imm: imm})
				return nil
			case llir.Mul:
				emit(vinst{op: isa.LSLri, rd: v(in.Dst), rn: v(in.A), imm: int64(bits.TrailingZeros64(uint64(imm)))})
				return nil
			}
		}
		switch in.BinOp {
		case llir.Add:
			emit(vinst{op: isa.ADDrs, rd: v(in.Dst), rn: v(in.A), rm: v(in.B)})
		case llir.Sub:
			emit(vinst{op: isa.SUBrs, rd: v(in.Dst), rn: v(in.A), rm: v(in.B)})
		case llir.Mul:
			emit(vinst{op: isa.MUL, rd: v(in.Dst), rn: v(in.A), rm: v(in.B)})
		case llir.Div:
			emit(vinst{op: isa.SDIV, rd: v(in.Dst), rn: v(in.A), rm: v(in.B)})
		case llir.Rem:
			q := vreg(s.f.NewValue())
			emit(vinst{op: isa.SDIV, rd: q, rn: v(in.A), rm: v(in.B)})
			emit(vinst{op: isa.MSUB, rd: v(in.Dst), rn: q, rm: v(in.B), rd2: v(in.A)})
		}
	case llir.Cmp:
		if s.skipped[in.Dst] {
			return nil // fused into the conditional branch
		}
		s.emitCompare(vb, in)
		emit(vinst{op: isa.CSET, rd: v(in.Dst), cond: lowerCond(in.Cond)})
	case llir.Not:
		emit(vinst{op: isa.CMPri, rn: v(in.A), imm: 0})
		emit(vinst{op: isa.CSET, rd: v(in.Dst), cond: isa.EQ})
	case llir.Neg:
		emit(vinst{op: isa.SUBrs, rd: v(in.Dst), rn: phys(isa.XZR), rm: v(in.A)})
	case llir.Load:
		emit(vinst{op: isa.LDRui, rd: v(in.Dst), rn: v(in.A), imm: in.Imm})
	case llir.Store:
		emit(vinst{op: isa.STRui, rd: v(in.B), rn: v(in.A), imm: in.Imm})
	case llir.Call:
		if err := emitArgs(in.Args); err != nil {
			return err
		}
		emit(vinst{op: isa.BL, sym: in.Sym})
		if in.Dst != llir.None {
			mov(v(in.Dst), phys(isa.X0))
		}
		if in.Throws && in.ErrDst != llir.None {
			mov(v(in.ErrDst), phys(isa.ErrReg))
		}
	case llir.CallInd:
		mov(phys(isa.X16), v(in.A))
		if err := emitArgs(in.Args); err != nil {
			return err
		}
		emit(vinst{op: isa.BLR, rn: phys(isa.X16)})
		if in.Dst != llir.None {
			mov(v(in.Dst), phys(isa.X0))
		}
	case llir.Ret:
		if in.A != llir.None {
			mov(phys(isa.X0), v(in.A))
		}
		if s.f.Throws {
			if imm, ok := s.constImm(in.B); ok && s.skipped[in.B] {
				emit(vinst{op: isa.MOVZ, rd: phys(isa.ErrReg), imm: imm})
			} else if in.B != llir.None {
				mov(phys(isa.ErrReg), v(in.B))
			}
		}
		emit(vinst{op: isa.RET})
	case llir.Br:
		emit(vinst{op: isa.B, sym: in.Sym})
	case llir.CondBr:
		if d := s.defOf[in.A]; d != nil && d.Op == llir.Cmp && s.skipped[in.A] {
			s.emitCompare(vb, d)
			emit(vinst{op: isa.Bcc, cond: lowerCond(d.Cond), sym: in.Sym})
		} else {
			emit(vinst{op: isa.CBNZ, rn: v(in.A), sym: in.Sym})
		}
		emit(vinst{op: isa.B, sym: in.Sym2})
	case opCopy:
		mov(v(in.Dst), v(in.A))
	case llir.Unreachable:
		emit(vinst{op: isa.BRK, imm: 1})
	case llir.Phi:
		return fmt.Errorf("phi survived out-of-SSA")
	default:
		return fmt.Errorf("unhandled LLIR op %d", in.Op)
	}
	return nil
}

func (s *selector) emitCompare(vb *vblock, cmp *llir.Inst) {
	if imm, ok := s.constImm(cmp.B); ok && s.skipped[cmp.B] {
		vb.insts = append(vb.insts, vinst{op: isa.CMPri, rn: vreg(cmp.A), imm: imm})
		return
	}
	vb.insts = append(vb.insts, vinst{op: isa.CMPrs, rn: vreg(cmp.A), rm: vreg(cmp.B)})
}

func lowerCond(c llir.CondKind) isa.Cond {
	switch c {
	case llir.Eq:
		return isa.EQ
	case llir.Ne:
		return isa.NE
	case llir.Lt:
		return isa.LT
	case llir.Le:
		return isa.LE
	case llir.Gt:
		return isa.GT
	case llir.Ge:
		return isa.GE
	}
	return isa.EQ
}
