package sir

import (
	"strings"
	"testing"
)

// Build a module with many repeated retain/release runs to trigger the SIL
// outlining pass directly.
func TestOutlinePassCreatesHelpers(t *testing.T) {
	m := NewModule("M")
	for i := 0; i < 8; i++ {
		f := &Func{Name: "f" + string(rune('a'+i)), Module: "M", NumParams: 3}
		f.NumValues = 3
		f.RefParams = []bool{true, true, true}
		blk := &Block{Label: "entry"}
		// The same retain/retain/release/release shape in every function.
		blk.Insts = append(blk.Insts,
			Inst{Op: Retain, A: f.Param(0)},
			Inst{Op: Retain, A: f.Param(1)},
			Inst{Op: Release, A: f.Param(2)},
			Inst{Op: Release, A: f.Param(0)},
			Inst{Op: RetVoid},
		)
		f.Blocks = []*Block{blk}
		m.AddFunc(f)
	}
	stats := OutlinePass(m)
	if stats.HelpersCreated != 1 {
		t.Fatalf("helpers = %d, want 1", stats.HelpersCreated)
	}
	if stats.RunsOutlined != 8 {
		t.Fatalf("runs = %d, want 8", stats.RunsOutlined)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	// Every original function now calls the helper instead of inlining the run.
	for _, f := range m.Funcs {
		if strings.HasPrefix(f.Name, "outlined_sil_rc_") {
			if f.NumParams != 3 { // three distinct operands
				t.Errorf("helper params = %d, want 3", f.NumParams)
			}
			continue
		}
		calls := 0
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == Call && strings.HasPrefix(in.Sym, "outlined_sil_rc_") {
					calls++
				}
				if in.Op == Retain || in.Op == Release {
					t.Errorf("%s still has inline refcounting", f.Name)
				}
			}
		}
		if calls != 1 {
			t.Errorf("%s calls helper %d times, want 1", f.Name, calls)
		}
	}
}

func TestOutlinePassRespectsThreshold(t *testing.T) {
	m := NewModule("M")
	for i := 0; i < 3; i++ { // below the 6-occurrence threshold
		f := &Func{Name: "g" + string(rune('a'+i)), Module: "M", NumParams: 1}
		f.NumValues = 1
		f.RefParams = []bool{true}
		f.Blocks = []*Block{{Label: "entry", Insts: []Inst{
			{Op: Retain, A: f.Param(0)},
			{Op: Retain, A: f.Param(0)},
			{Op: Release, A: f.Param(0)},
			{Op: RetVoid},
		}}}
		m.AddFunc(f)
	}
	if stats := OutlinePass(m); stats.HelpersCreated != 0 {
		t.Errorf("helpers = %d for 3 occurrences; threshold is 6", stats.HelpersCreated)
	}
}

func TestSpecializeClosuresDirect(t *testing.T) {
	m := NewModule("M")

	// The closure function: (env, x) -> x+1.
	cf := &Func{Name: "main.closure.1", Module: "M", NumParams: 2}
	cf.NumValues = 3
	cf.RefParams = []bool{true, false}
	one := cf.NewValue()
	sum := cf.NewValue()
	cf.Blocks = []*Block{{Label: "entry", Insts: []Inst{
		{Op: ConstInt, Dst: one, Imm: 1},
		{Op: Bin, Dst: sum, BinOp: Add, A: cf.Param(1), B: one},
		{Op: Ret, A: sum},
	}}}
	m.AddFunc(cf)

	// The combinator: calls its closure parameter.
	comb := &Func{Name: "apply", Module: "M", NumParams: 2}
	comb.NumValues = 3
	comb.RefParams = []bool{true, false}
	r := comb.NewValue()
	comb.Blocks = []*Block{{Label: "entry", Insts: []Inst{
		{Op: CallClosure, Dst: r, A: comb.Param(0), Args: []Value{comb.Param(1)}},
		{Op: Ret, A: r},
	}}}
	m.AddFunc(comb)

	// The caller: makes the closure in the same block and passes it.
	caller := &Func{Name: "main", Module: "M"}
	clo := caller.NewValue()
	arg := caller.NewValue()
	res := caller.NewValue()
	caller.Blocks = []*Block{{Label: "entry", Insts: []Inst{
		{Op: MakeClosure, Dst: clo, Sym: "main.closure.1"},
		{Op: ConstInt, Dst: arg, Imm: 41},
		{Op: Call, Dst: res, Sym: "apply", Args: []Value{clo, arg}},
		{Op: PrintInt, A: res},
		{Op: Release, A: clo},
		{Op: RetVoid},
	}}}
	m.AddFunc(caller)

	stats := SpecializeClosures(m)
	if stats.Specializations != 1 || stats.SitesRewritten != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	spec := m.Func("apply$spec0")
	if spec == nil {
		t.Fatal("specialized clone missing")
	}
	// The clone's indirect call became a direct call to the closure fn.
	direct := false
	for _, b := range spec.Blocks {
		for _, in := range b.Insts {
			if in.Op == CallClosure {
				t.Error("specialized clone still calls indirectly")
			}
			if in.Op == Call && in.Sym == "main.closure.1" {
				direct = true
				if len(in.Args) != 2 { // env + x
					t.Errorf("devirtualized args = %d, want 2", len(in.Args))
				}
			}
		}
	}
	if !direct {
		t.Error("no direct call in the specialized clone")
	}
	// The original combinator is untouched (other callers may pass other
	// closures).
	for _, b := range m.Func("apply").Blocks {
		for _, in := range b.Insts {
			if in.Op == Call && in.Sym == "main.closure.1" {
				t.Error("original combinator was devirtualized")
			}
		}
	}
	// The call site targets the clone.
	rewired := false
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Insts {
			if in.Op == Call && in.Sym == "apply$spec0" {
				rewired = true
			}
		}
	}
	if !rewired {
		t.Error("call site not rewired to the specialization")
	}
}
