package sir

import "fmt"

// Verify checks SIR structural invariants: labels resolve, every block ends
// in exactly one terminator, values are within range, and throwing
// constructs appear only in throwing functions.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.verify(m); err != nil {
			return err
		}
	}
	return nil
}

func (f *Func) verify(m *Module) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("sir: @%s has no blocks", f.Name)
	}
	labels := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if labels[b.Label] {
			return fmt.Errorf("sir: @%s: duplicate label %s", f.Name, b.Label)
		}
		labels[b.Label] = true
	}
	checkVal := func(v Value, b *Block, what string) error {
		if v < 0 || int(v) > f.NumValues {
			return fmt.Errorf("sir: @%s/%s: %s value v%d out of range", f.Name, b.Label, what, v)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("sir: @%s: empty block %s", f.Name, b.Label)
		}
		for i, in := range b.Insts {
			isLast := i == len(b.Insts)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("sir: @%s/%s: terminator placement wrong at %d (%s)",
					f.Name, b.Label, i, in)
			}
			for _, v := range []Value{in.Dst, in.A, in.B, in.C, in.ErrDst} {
				if err := checkVal(v, b, "operand"); err != nil {
					return err
				}
			}
			for _, v := range in.Args {
				if err := checkVal(v, b, "arg"); err != nil {
					return err
				}
			}
			switch in.Op {
			case Br:
				if !labels[in.Sym] {
					return fmt.Errorf("sir: @%s/%s: br to unknown %s", f.Name, b.Label, in.Sym)
				}
			case CondBr:
				if !labels[in.Sym] || !labels[in.Sym2] {
					return fmt.Errorf("sir: @%s/%s: condbr to unknown label", f.Name, b.Label)
				}
			case Throw:
				if !f.Throws {
					return fmt.Errorf("sir: @%s: throw in non-throwing function", f.Name)
				}
			case Call:
				if in.Throws && in.ErrDst == None {
					return fmt.Errorf("sir: @%s/%s: throwing call without error destination", f.Name, b.Label)
				}
			}
		}
	}
	return nil
}
