package sir

import (
	"fmt"
	"sort"
	"strings"
)

// ---- SIL outlining (Table I row 2) ----
//
// Swift's SILOptimizer "Outlining" pass replaces well-known inlined
// reference-counting/copy sequences with calls to shared helpers. Our analog
// outlines runs of consecutive Retain/Release instructions: a run's shape
// (the op sequence with operands numbered by first occurrence) repeating
// elsewhere in the module becomes a helper function. The paper measures this
// level at only 0.41% savings on UberRider — the pass is real but weak,
// because most repetition only materializes at the machine level.

// OutlineStats reports what OutlinePass did.
type OutlineStats struct {
	HelpersCreated int
	RunsOutlined   int
}

const minSILRunLen = 3
const maxSILRunParams = 4

// OutlinePass performs SIL-level outlining of reference-counting runs.
func OutlinePass(m *Module) OutlineStats {
	type run struct {
		fn         *Func
		block      *Block
		start, end int // [start, end)
		shape      string
		params     []Value // distinct operands in order of first use
	}
	var runs []run

	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			i := 0
			for i < len(b.Insts) {
				if b.Insts[i].Op != Retain && b.Insts[i].Op != Release {
					i++
					continue
				}
				j := i
				for j < len(b.Insts) && (b.Insts[j].Op == Retain || b.Insts[j].Op == Release) {
					j++
				}
				if j-i >= minSILRunLen {
					r := run{fn: f, block: b, start: i, end: j}
					paramIdx := make(map[Value]int)
					var shape strings.Builder
					ok := true
					for k := i; k < j; k++ {
						in := b.Insts[k]
						idx, seen := paramIdx[in.A]
						if !seen {
							idx = len(r.params)
							paramIdx[in.A] = idx
							r.params = append(r.params, in.A)
						}
						fmt.Fprintf(&shape, "%d:%d;", in.Op, idx)
					}
					if len(r.params) > maxSILRunParams {
						ok = false
					}
					if ok {
						r.shape = shape.String()
						runs = append(runs, r)
					}
				}
				i = j
			}
		}
	}

	byShape := make(map[string][]run)
	var shapes []string
	for _, r := range runs {
		if len(byShape[r.shape]) == 0 {
			shapes = append(shapes, r.shape)
		}
		byShape[r.shape] = append(byShape[r.shape], r)
	}
	sort.Strings(shapes)

	var stats OutlineStats
	helperSeq := 0
	type edit struct {
		key        string // fn/block identity for deterministic ordering
		block      *Block
		start, end int
		call       Inst
	}
	var edits []edit
	for _, shape := range shapes {
		group := byShape[shape]
		// A helper pays for itself only with enough occurrences once the
		// call-site argument moves and the helper's own frame are accounted
		// for (at machine level a release is a move+call; the helper saves
		// the difference per site but costs ~a dozen instructions once).
		if len(group) < 6 {
			continue
		}
		// Build the helper from the first occurrence.
		rep := group[0]
		helper := &Func{
			Name:      fmt.Sprintf("outlined_sil_rc_%s_%d", m.Name, helperSeq),
			Module:    m.Name,
			NumParams: len(rep.params),
		}
		helperSeq++
		helper.NumValues = helper.NumParams
		helper.RefParams = make([]bool, helper.NumParams)
		for i := range helper.RefParams {
			helper.RefParams[i] = true
		}
		body := &Block{Label: "entry"}
		paramOf := make(map[Value]Value, len(rep.params))
		for i, p := range rep.params {
			paramOf[p] = helper.Param(i)
		}
		for k := rep.start; k < rep.end; k++ {
			in := rep.block.Insts[k]
			body.Insts = append(body.Insts, Inst{Op: in.Op, A: paramOf[in.A]})
		}
		body.Insts = append(body.Insts, Inst{Op: RetVoid})
		helper.Blocks = []*Block{body}
		m.AddFunc(helper)
		stats.HelpersCreated++

		for _, r := range group {
			edits = append(edits, edit{
				key:   r.fn.Name + "/" + r.block.Label,
				block: r.block, start: r.start, end: r.end,
				call: Inst{Op: Call, Sym: helper.Name, Args: append([]Value(nil), r.params...)},
			})
			stats.RunsOutlined++
		}
	}

	// Apply edits per block, highest start first.
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].key != edits[j].key {
			return edits[i].key < edits[j].key
		}
		return edits[i].start > edits[j].start
	})
	for _, e := range edits {
		tail := append([]Inst(nil), e.block.Insts[e.end:]...)
		e.block.Insts = append(e.block.Insts[:e.start], append([]Inst{e.call}, tail...)...)
	}
	return stats
}

// ---- Closure specialization (the Listing 9 mechanism) ----

// SpecializeStats reports what SpecializeClosures did.
type SpecializeStats struct {
	Specializations int
	SitesRewritten  int
}

// SpecializeClosures devirtualizes closure arguments: when a call passes a
// closure literal created in the same block, the callee is cloned and its
// indirect CallClosure ops on that parameter become direct calls to the
// closure function. Each distinct (callee, closure) pair produces one clone
// — exactly how the Swift compiler manufactures the paper's three copies of
// `evaluate` (Listing 9), whose 279-instruction bodies then repeat at the
// machine level.
func SpecializeClosures(m *Module) SpecializeStats {
	var stats SpecializeStats
	specialized := make(map[string]string) // callee|param|closureFn -> clone name
	seq := 0

	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			// Map: value -> closure function name for MakeClosure defs in
			// this block.
			madeBy := make(map[Value]string)
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.Op == MakeClosure {
					madeBy[in.Dst] = in.Sym
					continue
				}
				if in.Op != Call {
					continue
				}
				callee := m.Func(in.Sym)
				if callee == nil || callee == f {
					continue
				}
				for argIdx, argVal := range in.Args {
					closureFn, ok := madeBy[argVal]
					if !ok {
						continue
					}
					key := fmt.Sprintf("%s|%d|%s", in.Sym, argIdx, closureFn)
					clone, ok := specialized[key]
					if !ok {
						clone = fmt.Sprintf("%s$spec%d", in.Sym, seq)
						seq++
						sf := cloneSIRFunc(callee, clone)
						devirtualize(sf, sf.Param(argIdx), closureFn)
						m.AddFunc(sf)
						specialized[key] = clone
						stats.Specializations++
					}
					in.Sym = clone
					stats.SitesRewritten++
					break // one specialized parameter per call site
				}
			}
		}
	}
	return stats
}

// devirtualize rewrites CallClosure through param into a direct call to
// closureFn (the closure object still flows in as the context argument).
func devirtualize(f *Func, param Value, closureFn string) {
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == CallClosure && in.A == param {
				args := append([]Value{in.A}, in.Args...)
				*in = Inst{Op: Call, Dst: in.Dst, Sym: closureFn, Args: args}
			}
		}
	}
}

func cloneSIRFunc(f *Func, name string) *Func {
	nf := &Func{
		Name:      name,
		Module:    f.Module,
		NumParams: f.NumParams,
		Throws:    f.Throws,
		NumValues: f.NumValues,
		RefParams: append([]bool(nil), f.RefParams...),
	}
	for _, b := range f.Blocks {
		nb := &Block{Label: b.Label, Insts: make([]Inst, len(b.Insts))}
		copy(nb.Insts, b.Insts)
		for i := range nb.Insts {
			nb.Insts[i].Args = append([]Value(nil), b.Insts[i].Args...)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}
