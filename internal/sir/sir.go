// Package sir defines the SwiftLite Intermediate Representation — the
// analog of Swift's SIL. SIRGen lowers the type-checked AST into SIR,
// inserting the reference-counting traffic (retain/release) that the paper
// identifies as the dominant source of repeated machine code. SIR-level
// passes implement the SIL rows of the paper's Table I: the SIL "Outlining"
// pass and closure specialization.
//
// SIR is register-based but not SSA: a virtual register may be assigned
// multiple times (locals map to registers directly). SSA is constructed
// during lowering to LLIR, and destroyed again by the code generator — the
// round trip that produces the paper's out-of-SSA copy blow-up (§IV-4).
package sir

import (
	"fmt"
	"strings"
)

// Value is a virtual register. 0 is "none".
type Value int

// None marks an absent value operand.
const None Value = 0

// Op is a SIR operation.
type Op uint8

// SIR operations.
const (
	BadOp Op = iota

	ConstInt // Dst = Imm
	ConstStr // Dst = address of string constant Sym
	ConstNil // Dst = nil
	Move     // Dst = A

	Bin // Dst = A <BinOp> B
	Cmp // Dst = (A <Cond> B) as 0/1
	Not // Dst = !A
	Neg // Dst = -A

	Br     // branch to Sym
	CondBr // if A != 0 branch to Sym else Sym2

	Call        // Dst = Sym(Args...); if Throws, ErrDst receives the error channel (0 = ok)
	CallClosure // Dst = A(Args...) through a closure value
	Ret         // return A
	RetVoid     // return
	Throw       // set the error channel to A (a raw nonzero code) and return

	Retain  // retain A if it is a non-nil heap reference
	Release // release A if it is a non-nil heap reference

	AllocObject // Dst = new instance of class Sym with Imm fields
	FieldGet    // Dst = A.field[Imm]
	FieldSet    // A.field[Imm] = B
	AllocArray  // Dst = new zeroed array of length A
	ArrayGet    // Dst = A[B]
	ArraySet    // A[B] = C
	ArrayLen    // Dst = length of array A
	StrGet      // Dst = code unit B of string constant A
	StrLen      // Dst = length of string A
	Append      // Dst = array A with element B appended (fresh array)
	MakeClosure // Dst = closure over function Sym capturing Args...

	PrintInt  // print integer A
	PrintBool // print A as true/false
	PrintStr  // print string A

	Unreachable

	NumOps
)

// BinKind is an arithmetic/bitwise operator for Bin.
type BinKind uint8

// Binary operator kinds.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
	Rem
)

func (b BinKind) String() string {
	return [...]string{"add", "sub", "mul", "div", "rem"}[b]
}

// CondKind is a comparison for Cmp.
type CondKind uint8

// Comparison kinds.
const (
	Eq CondKind = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (c CondKind) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[c]
}

// Inst is one SIR instruction.
type Inst struct {
	Op      Op
	Dst     Value
	A, B, C Value
	ErrDst  Value // Call with Throws: receives the error channel
	Imm     int64
	Sym     string // callee / class / label / string constant
	Sym2    string // CondBr else-label
	BinOp   BinKind
	Cond    CondKind
	Args    []Value
	Throws  bool
}

// Block is a labeled instruction run ending in a terminator.
type Block struct {
	Label string
	Insts []Inst
}

// IsTerminator reports whether the op ends a block.
func (op Op) IsTerminator() bool {
	switch op {
	case Br, CondBr, Ret, RetVoid, Throw, Unreachable:
		return true
	}
	return false
}

// Func is a SIR function.
type Func struct {
	Name      string
	Module    string
	NumParams int // params are values 1..NumParams
	Throws    bool
	Blocks    []*Block
	NumValues int // highest allocated value id

	// RefParams[i] is true when parameter i is reference counted; used by
	// passes that need ownership information.
	RefParams []bool
}

// Param returns the value id of parameter i (0-based).
func (f *Func) Param(i int) Value { return Value(i + 1) }

// NewValue allocates a fresh virtual register.
func (f *Func) NewValue() Value {
	f.NumValues++
	return Value(f.NumValues)
}

// Block returns the block with the given label, or nil.
func (f *Func) Block(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// NumInsts counts instructions.
func (f *Func) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Global is a data constant (string literals).
type Global struct {
	Name   string
	Module string
	Words  []int64
}

// Module is a compiled SwiftLite module.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	funcIndex map[string]*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcIndex: make(map[string]*Func)}
}

// AddFunc appends f; duplicate names panic.
func (m *Module) AddFunc(f *Func) {
	if _, dup := m.funcIndex[f.Name]; dup {
		panic(fmt.Sprintf("sir: duplicate function %q", f.Name))
	}
	m.funcIndex[f.Name] = f
	m.Funcs = append(m.Funcs, f)
}

// Func returns a function by name, or nil.
func (m *Module) Func(name string) *Func {
	return m.funcIndex[name]
}

// NumInsts counts instructions in the module.
func (m *Module) NumInsts() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInsts()
	}
	return n
}

// String renders the module for debugging.
func (m *Module) String() string {
	var b strings.Builder
	for _, f := range m.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s = %v\n", g.Name, g.Words)
	}
	return b.String()
}

// String renders one function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sir func @%s(%d params)", f.Name, f.NumParams)
	if f.Throws {
		b.WriteString(" throws")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Label)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (in Inst) String() string {
	v := func(x Value) string { return fmt.Sprintf("v%d", x) }
	args := func() string {
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = v(a)
		}
		return strings.Join(parts, ", ")
	}
	switch in.Op {
	case ConstInt:
		return fmt.Sprintf("%s = const %d", v(in.Dst), in.Imm)
	case ConstStr:
		return fmt.Sprintf("%s = str @%s", v(in.Dst), in.Sym)
	case ConstNil:
		return fmt.Sprintf("%s = nil", v(in.Dst))
	case Move:
		return fmt.Sprintf("%s = move %s", v(in.Dst), v(in.A))
	case Bin:
		return fmt.Sprintf("%s = %s %s, %s", v(in.Dst), in.BinOp, v(in.A), v(in.B))
	case Cmp:
		return fmt.Sprintf("%s = cmp.%s %s, %s", v(in.Dst), in.Cond, v(in.A), v(in.B))
	case Not:
		return fmt.Sprintf("%s = not %s", v(in.Dst), v(in.A))
	case Neg:
		return fmt.Sprintf("%s = neg %s", v(in.Dst), v(in.A))
	case Br:
		return fmt.Sprintf("br %s", in.Sym)
	case CondBr:
		return fmt.Sprintf("condbr %s, %s, %s", v(in.A), in.Sym, in.Sym2)
	case Call:
		s := fmt.Sprintf("call @%s(%s)", in.Sym, args())
		if in.Dst != None {
			s = fmt.Sprintf("%s = %s", v(in.Dst), s)
		}
		if in.Throws {
			s += fmt.Sprintf(" throws -> %s", v(in.ErrDst))
		}
		return s
	case CallClosure:
		s := fmt.Sprintf("call_closure %s(%s)", v(in.A), args())
		if in.Dst != None {
			s = fmt.Sprintf("%s = %s", v(in.Dst), s)
		}
		return s
	case Ret:
		return fmt.Sprintf("ret %s", v(in.A))
	case RetVoid:
		return "ret"
	case Throw:
		return fmt.Sprintf("throw %s", v(in.A))
	case Retain:
		return fmt.Sprintf("retain %s", v(in.A))
	case Release:
		return fmt.Sprintf("release %s", v(in.A))
	case AllocObject:
		return fmt.Sprintf("%s = alloc_object %s, %d fields", v(in.Dst), in.Sym, in.Imm)
	case FieldGet:
		return fmt.Sprintf("%s = field_get %s.%d", v(in.Dst), v(in.A), in.Imm)
	case FieldSet:
		return fmt.Sprintf("field_set %s.%d = %s", v(in.A), in.Imm, v(in.B))
	case AllocArray:
		return fmt.Sprintf("%s = alloc_array len %s", v(in.Dst), v(in.A))
	case ArrayGet:
		return fmt.Sprintf("%s = array_get %s[%s]", v(in.Dst), v(in.A), v(in.B))
	case ArraySet:
		return fmt.Sprintf("array_set %s[%s] = %s", v(in.A), v(in.B), v(in.C))
	case ArrayLen:
		return fmt.Sprintf("%s = array_len %s", v(in.Dst), v(in.A))
	case StrGet:
		return fmt.Sprintf("%s = str_get %s[%s]", v(in.Dst), v(in.A), v(in.B))
	case StrLen:
		return fmt.Sprintf("%s = str_len %s", v(in.Dst), v(in.A))
	case Append:
		return fmt.Sprintf("%s = append %s, %s", v(in.Dst), v(in.A), v(in.B))
	case MakeClosure:
		return fmt.Sprintf("%s = make_closure @%s(%s)", v(in.Dst), in.Sym, args())
	case PrintInt:
		return fmt.Sprintf("print_int %s", v(in.A))
	case PrintBool:
		return fmt.Sprintf("print_bool %s", v(in.A))
	case PrintStr:
		return fmt.Sprintf("print_str %s", v(in.A))
	case Unreachable:
		return "unreachable"
	}
	return "bad"
}
