package sir

import (
	"fmt"

	"outliner/internal/frontend"
)

func (g *generator) tempMark() int { return len(g.temps) }

// flushTempsSince releases temps accumulated after mark and truncates.
func (g *generator) flushTempsSince(mark int) {
	for i := len(g.temps) - 1; i >= mark; i-- {
		g.emit(Inst{Op: Release, A: g.temps[i]})
	}
	g.temps = g.temps[:mark]
}

// emitTempReleases emits releases for temps after mark WITHOUT truncating —
// used on error edges, where the normal path still owns the list.
func (g *generator) emitTempReleases(mark int) {
	for i := len(g.temps) - 1; i >= mark; i-- {
		g.emit(Inst{Op: Release, A: g.temps[i]})
	}
}

// genExpr lowers an expression. It returns the value register and whether
// the caller owns a +1 reference on it (owned results of reference type are
// also recorded in g.temps until consumed).
func (g *generator) genExpr(e frontend.Expr) (Value, bool, error) {
	switch e := e.(type) {
	case *frontend.IntLit:
		return g.emitConst(e.Value), false, nil

	case *frontend.BoolLit:
		v := int64(0)
		if e.Value {
			v = 1
		}
		return g.emitConst(v), false, nil

	case *frontend.StringLit:
		sym := g.strConst(e.Value)
		dst := g.fn.NewValue()
		g.emit(Inst{Op: ConstStr, Dst: dst, Sym: sym})
		return dst, false, nil // constants live in the data section: +0

	case *frontend.NilLit:
		dst := g.fn.NewValue()
		g.emit(Inst{Op: ConstNil, Dst: dst})
		return dst, false, nil

	case *frontend.SelfExpr:
		return g.selfVal, false, nil

	case *frontend.IdentExpr:
		if li, ok := g.lookup(e.Name); ok {
			return li.val, false, nil
		}
		if e.FuncSym != "" {
			// A named function as a value: wrap in a capture-free closure
			// over a thunk.
			thunk, err := g.thunkFor(e.FuncSym, e.Line)
			if err != nil {
				return None, false, err
			}
			dst := g.fn.NewValue()
			g.emit(Inst{Op: MakeClosure, Dst: dst, Sym: thunk})
			g.addTemp(dst)
			return dst, true, nil
		}
		return None, false, g.errf(e.Line, "undefined %s", e.Name)

	case *frontend.UnaryExpr:
		x, _, err := g.genExpr(e.X)
		if err != nil {
			return None, false, err
		}
		dst := g.fn.NewValue()
		if e.Op == frontend.TokMinus {
			g.emit(Inst{Op: Neg, Dst: dst, A: x})
		} else {
			g.emit(Inst{Op: Not, Dst: dst, A: x})
		}
		return dst, false, nil

	case *frontend.BinaryExpr:
		return g.genBinary(e)

	case *frontend.ArrayLit:
		n := g.emitConst(int64(len(e.Elems)))
		arr := g.fn.NewValue()
		g.emit(Inst{Op: AllocArray, Dst: arr, A: n})
		isRef := e.TypeOf().Elem.IsRef()
		for i, el := range e.Elems {
			v, owned, err := g.genExpr(el)
			if err != nil {
				return None, false, err
			}
			if isRef {
				if !owned {
					g.emit(Inst{Op: Retain, A: v})
				}
				g.consumeTemp(v)
			}
			iv := g.emitConst(int64(i))
			g.emit(Inst{Op: ArraySet, A: arr, B: iv, C: v})
		}
		g.addTemp(arr)
		return arr, true, nil

	case *frontend.IndexExpr:
		recv, _, err := g.genExpr(e.Recv)
		if err != nil {
			return None, false, err
		}
		idx, _, err := g.genExpr(e.Index)
		if err != nil {
			return None, false, err
		}
		dst := g.fn.NewValue()
		if e.Recv.TypeOf().Kind == frontend.TString {
			g.emit(Inst{Op: StrGet, Dst: dst, A: recv, B: idx})
		} else {
			g.emit(Inst{Op: ArrayGet, Dst: dst, A: recv, B: idx})
		}
		return dst, false, nil

	case *frontend.FieldExpr:
		recv, _, err := g.genExpr(e.Recv)
		if err != nil {
			return None, false, err
		}
		dst := g.fn.NewValue()
		rt := e.Recv.TypeOf()
		if e.Field == "count" {
			if rt.Kind == frontend.TString {
				g.emit(Inst{Op: StrLen, Dst: dst, A: recv})
			} else {
				g.emit(Inst{Op: ArrayLen, Dst: dst, A: recv})
			}
			return dst, false, nil
		}
		cd := g.prog.Classes[rt.Name]
		g.emit(Inst{Op: FieldGet, Dst: dst, A: recv, Imm: int64(cd.FieldIndex(e.Field))})
		return dst, false, nil

	case *frontend.CallExpr:
		return g.genCall(e)

	case *frontend.MethodCallExpr:
		recv, _, err := g.genExpr(e.Recv)
		if err != nil {
			return None, false, err
		}
		args := []Value{recv}
		mark := g.tempMark()
		for _, a := range e.Args {
			av, _, err := g.genExpr(a)
			if err != nil {
				return None, false, err
			}
			args = append(args, av)
		}
		return g.emitCall(e.ResolvedSym, args, e.Throws, e.TypeOf(), mark)

	case *frontend.ClosureExpr:
		return g.genClosure(e)
	}
	return None, false, fmt.Errorf("sirgen: unknown expression %T", e)
}

func (g *generator) genBinary(e *frontend.BinaryExpr) (Value, bool, error) {
	switch e.Op {
	case frontend.TokAnd, frontend.TokOr:
		l, _, err := g.genExpr(e.L)
		if err != nil {
			return None, false, err
		}
		res := g.fn.NewValue()
		g.emit(Inst{Op: Move, Dst: res, A: l})
		rhs := g.newBlock("sc_rhs")
		done := g.newBlock("sc_done")
		if e.Op == frontend.TokAnd {
			g.emit(Inst{Op: CondBr, A: l, Sym: rhs.Label, Sym2: done.Label})
		} else {
			g.emit(Inst{Op: CondBr, A: l, Sym: done.Label, Sym2: rhs.Label})
		}
		g.setBlock(rhs)
		mark := g.tempMark()
		r, _, err := g.genExpr(e.R)
		if err != nil {
			return None, false, err
		}
		g.emit(Inst{Op: Move, Dst: res, A: r})
		g.flushTempsSince(mark)
		g.emit(Inst{Op: Br, Sym: done.Label})
		g.setBlock(done)
		return res, false, nil
	}

	l, _, err := g.genExpr(e.L)
	if err != nil {
		return None, false, err
	}
	r, _, err := g.genExpr(e.R)
	if err != nil {
		return None, false, err
	}
	dst := g.fn.NewValue()
	switch e.Op {
	case frontend.TokPlus:
		g.emit(Inst{Op: Bin, Dst: dst, BinOp: Add, A: l, B: r})
	case frontend.TokMinus:
		g.emit(Inst{Op: Bin, Dst: dst, BinOp: Sub, A: l, B: r})
	case frontend.TokStar:
		g.emit(Inst{Op: Bin, Dst: dst, BinOp: Mul, A: l, B: r})
	case frontend.TokSlash:
		g.emit(Inst{Op: Bin, Dst: dst, BinOp: Div, A: l, B: r})
	case frontend.TokPercent:
		g.emit(Inst{Op: Bin, Dst: dst, BinOp: Rem, A: l, B: r})
	case frontend.TokEq:
		g.emit(Inst{Op: Cmp, Dst: dst, Cond: Eq, A: l, B: r})
	case frontend.TokNe:
		g.emit(Inst{Op: Cmp, Dst: dst, Cond: Ne, A: l, B: r})
	case frontend.TokLt:
		g.emit(Inst{Op: Cmp, Dst: dst, Cond: Lt, A: l, B: r})
	case frontend.TokLe:
		g.emit(Inst{Op: Cmp, Dst: dst, Cond: Le, A: l, B: r})
	case frontend.TokGt:
		g.emit(Inst{Op: Cmp, Dst: dst, Cond: Gt, A: l, B: r})
	case frontend.TokGe:
		g.emit(Inst{Op: Cmp, Dst: dst, Cond: Ge, A: l, B: r})
	default:
		return None, false, fmt.Errorf("sirgen: bad binary op %d", e.Op)
	}
	return dst, false, nil
}

func (g *generator) genCall(e *frontend.CallExpr) (Value, bool, error) {
	switch e.Kind {
	case frontend.CallBuiltin:
		return g.genBuiltin(e)

	case frontend.CallFunc, frontend.CallInit:
		mark := g.tempMark()
		var args []Value
		for _, a := range e.Args {
			av, _, err := g.genExpr(a)
			if err != nil {
				return None, false, err
			}
			args = append(args, av)
		}
		return g.emitCall(e.ResolvedSym, args, e.Throws, e.TypeOf(), mark)

	case frontend.CallClosure:
		fnv, _, err := g.genExpr(e.Fn)
		if err != nil {
			return None, false, err
		}
		mark := g.tempMark()
		var args []Value
		for _, a := range e.Args {
			av, _, err := g.genExpr(a)
			if err != nil {
				return None, false, err
			}
			args = append(args, av)
		}
		var dst Value
		if e.TypeOf().Kind != frontend.TVoid {
			dst = g.fn.NewValue()
		}
		g.emit(Inst{Op: CallClosure, Dst: dst, A: fnv, Args: args})
		g.flushTempsSince(mark)
		owned := dst != None && e.TypeOf().IsRef()
		if owned {
			g.addTemp(dst)
		}
		return dst, owned, nil
	}
	return None, false, fmt.Errorf("sirgen: unresolved call (sema bug)")
}

// emitCall emits a direct call, including the error-channel check for
// throwing callees, and releases the argument temporaries created after
// mark.
func (g *generator) emitCall(sym string, args []Value, throws bool, retType *frontend.Type, mark int) (Value, bool, error) {
	var dst Value
	if retType.Kind != frontend.TVoid {
		dst = g.fn.NewValue()
	}
	in := Inst{Op: Call, Dst: dst, Sym: sym, Args: args, Throws: throws}
	if throws {
		in.ErrDst = g.fn.NewValue()
	}
	g.emit(in)
	if throws {
		errBB := g.newBlock("err")
		cont := g.newBlock("cont")
		g.emit(Inst{Op: CondBr, A: in.ErrDst, Sym: errBB.Label, Sym2: cont.Label})
		g.setBlock(errBB)
		g.emitTempReleases(mark)
		g.raiseError(in.ErrDst)
		g.setBlock(cont)
	}
	g.flushTempsSince(mark)
	owned := dst != None && retType.IsRef()
	if owned {
		g.addTemp(dst)
	}
	return dst, owned, nil
}

func (g *generator) genBuiltin(e *frontend.CallExpr) (Value, bool, error) {
	switch e.ResolvedSym {
	case "print":
		v, _, err := g.genExpr(e.Args[0])
		if err != nil {
			return None, false, err
		}
		switch e.Args[0].TypeOf().Kind {
		case frontend.TString:
			g.emit(Inst{Op: PrintStr, A: v})
		case frontend.TBool:
			g.emit(Inst{Op: PrintBool, A: v})
		default:
			g.emit(Inst{Op: PrintInt, A: v})
		}
		return None, false, nil

	case "append":
		arr, _, err := g.genExpr(e.Args[0])
		if err != nil {
			return None, false, err
		}
		el, elOwned, err := g.genExpr(e.Args[1])
		if err != nil {
			return None, false, err
		}
		if e.TypeOf().Elem.IsRef() {
			if !elOwned {
				g.emit(Inst{Op: Retain, A: el})
			}
			g.consumeTemp(el)
		}
		dst := g.fn.NewValue()
		g.emit(Inst{Op: Append, Dst: dst, A: arr, B: el})
		g.addTemp(dst)
		return dst, true, nil

	case "Array":
		n, _, err := g.genExpr(e.Args[0])
		if err != nil {
			return None, false, err
		}
		dst := g.fn.NewValue()
		g.emit(Inst{Op: AllocArray, Dst: dst, A: n})
		g.addTemp(dst)
		return dst, true, nil
	}
	return None, false, fmt.Errorf("sirgen: unknown builtin %q", e.ResolvedSym)
}

// ---- closures ----

// genClosure lowers a closure literal: resolve captures in the enclosing
// scope, generate the closure function (context pointer + declared params),
// and allocate the closure object.
func (g *generator) genClosure(e *frontend.ClosureExpr) (Value, bool, error) {
	type capInfo struct {
		name  string
		val   Value
		isRef bool
	}
	caps := make([]capInfo, 0, len(e.Captures))
	for _, name := range e.Captures {
		li, ok := g.lookup(name)
		if !ok {
			return None, false, g.errf(e.Line, "capture %s not in scope", name)
		}
		caps = append(caps, capInfo{name: name, val: li.val, isRef: li.isRef})
	}

	g.closSeq++
	name := fmt.Sprintf("%s.closure.%d", g.fn.Name, g.closSeq)

	// Generate the closure function with saved generator state.
	saved := g.saveState()
	cf := &Func{Name: name, Module: g.mod.Name}
	cf.NumParams = 1 + len(e.Params)
	cf.NumValues = cf.NumParams
	cf.RefParams = make([]bool, cf.NumParams)
	cf.RefParams[0] = true
	g.fn = cf
	g.blocks = 0
	g.scopes = nil
	g.loops = nil
	g.errs = nil
	g.temps = nil
	g.selfVal = None
	g.initFlags = nil
	entry := &Block{Label: "entry"}
	cf.Blocks = append(cf.Blocks, entry)
	g.setBlock(entry)
	g.pushScope()
	env := cf.Param(0)
	for i, p := range e.Params {
		g.scopes[0].vars[p.Name] = localInfo{val: cf.Param(i + 1), isRef: p.Type.IsRef()}
	}
	// Load captures from the context object: field 0 is the function
	// pointer, captures start at field 1.
	for i, c := range caps {
		cv := cf.NewValue()
		g.emit(Inst{Op: FieldGet, Dst: cv, A: env, Imm: int64(i + 1)})
		g.scopes[0].vars[c.name] = localInfo{val: cv, isRef: c.isRef}
	}
	for _, st := range e.Body.Stmts {
		if err := g.genStmt(st); err != nil {
			g.restoreState(saved)
			return None, false, err
		}
	}
	if !g.terminated() {
		g.emitCleanupDownTo(0)
		if e.Ret.Kind == frontend.TVoid {
			g.emit(Inst{Op: RetVoid})
		} else {
			g.emit(Inst{Op: Unreachable})
		}
	}
	g.scopes = nil
	g.mod.AddFunc(cf)
	g.restoreState(saved)

	// Build the closure object: retain captured references (the closure
	// owns its captures).
	capVals := make([]Value, len(caps))
	for i, c := range caps {
		if c.isRef {
			g.emit(Inst{Op: Retain, A: c.val})
		}
		capVals[i] = c.val
	}
	dst := g.fn.NewValue()
	g.emit(Inst{Op: MakeClosure, Dst: dst, Sym: name, Args: capVals})
	g.addTemp(dst)
	return dst, true, nil
}

// thunkFor returns (generating on first use) a context-calling-convention
// wrapper for a named function used as a value.
func (g *generator) thunkFor(fnName string, line int) (string, error) {
	if t, ok := g.thunks[fnName]; ok {
		return t, nil
	}
	target := g.prog.Funcs[fnName]
	if target == nil {
		return "", g.errf(line, "unknown function %s", fnName)
	}
	if target.Throws {
		return "", g.errf(line, "throwing function values are not supported")
	}
	name := fnName + "$thunk"
	saved := g.saveState()
	tf := &Func{Name: name, Module: g.mod.Name}
	tf.NumParams = 1 + len(target.Params)
	tf.NumValues = tf.NumParams
	tf.RefParams = make([]bool, tf.NumParams)
	tf.RefParams[0] = true
	g.fn = tf
	g.blocks = 0
	entry := &Block{Label: "entry"}
	tf.Blocks = append(tf.Blocks, entry)
	g.setBlock(entry)
	args := make([]Value, len(target.Params))
	for i := range target.Params {
		args[i] = tf.Param(i + 1)
		tf.RefParams[i+1] = target.Params[i].Type.IsRef()
	}
	var dst Value
	if target.Ret.Kind != frontend.TVoid {
		dst = tf.NewValue()
	}
	g.emit(Inst{Op: Call, Dst: dst, Sym: fnName, Args: args})
	if dst != None {
		g.emit(Inst{Op: Ret, A: dst})
	} else {
		g.emit(Inst{Op: RetVoid})
	}
	g.mod.AddFunc(tf)
	g.restoreState(saved)
	g.thunks[fnName] = name
	return name, nil
}

// generator state save/restore for nested function generation.
type genState struct {
	fn         *Func
	cur        *Block
	blocks     int
	scopes     []*genScope
	loops      []loopCtx
	errs       []errCtx
	temps      []Value
	selfVal    Value
	curClass   *frontend.ClassDecl
	initFlags  map[int]Value
	initErrVal Value
}

func (g *generator) saveState() genState {
	return genState{
		fn: g.fn, cur: g.cur, blocks: g.blocks, scopes: g.scopes,
		loops: g.loops, errs: g.errs, temps: g.temps,
		selfVal: g.selfVal, curClass: g.curClass,
		initFlags: g.initFlags, initErrVal: g.initErrVal,
	}
}

func (g *generator) restoreState(s genState) {
	g.fn, g.cur, g.blocks, g.scopes = s.fn, s.cur, s.blocks, s.scopes
	g.loops, g.errs, g.temps = s.loops, s.errs, s.temps
	g.selfVal, g.curClass = s.selfVal, s.curClass
	g.initFlags, g.initErrVal = s.initFlags, s.initErrVal
}
