package sir

import (
	"fmt"

	"outliner/internal/frontend"
)

// Generate lowers a type-checked module to SIR. This is the SILGen analog:
// it inserts retain/release reference-counting traffic, lowers closures to
// context-passing functions, expands throwing calls into explicit
// error-channel checks, and — for throwing initializers — emits the shared
// cleanup block with per-field initialization flags whose phis later explode
// into the out-of-SSA copies of the paper's Figure 9 / Listing 11.
func Generate(prog *frontend.Program) (*Module, error) {
	g := &generator{
		prog:    prog,
		mod:     NewModule(prog.Module),
		strSyms: make(map[string]string),
		thunks:  make(map[string]string),
	}
	for _, name := range prog.FuncOrder {
		fd := prog.Funcs[name]
		if err := g.genFunc(name, fd); err != nil {
			return nil, err
		}
	}
	return g.mod, nil
}

type localInfo struct {
	val   Value
	isRef bool
}

type genScope struct {
	vars    map[string]localInfo
	cleanup []Value // ref locals to release on scope exit
}

type loopCtx struct {
	breakLabel    string
	continueLabel string
	scopeDepth    int
}

// errCtx says where a raised error goes.
type errCtx struct {
	// catchLabel is the catch block of an enclosing do; empty means the
	// error propagates out of the (throwing) function.
	catchLabel string
	errLocal   Value // receives the raw error value for the catch
	scopeDepth int
	// initCleanup is the shared cleanup label of a throwing init
	// (Figure 9's block L); non-empty only inside such inits.
	initCleanup string
}

type generator struct {
	prog    *frontend.Program
	mod     *Module
	strSyms map[string]string // literal -> global symbol
	strSeq  int
	closSeq int
	thunks  map[string]string // function name -> thunk symbol

	fn     *Func
	cur    *Block
	blocks int
	scopes []*genScope
	loops  []loopCtx
	errs   []errCtx
	temps  []Value // owned ref temporaries pending release in this statement

	// Throwing-init state.
	selfVal    Value
	curClass   *frontend.ClassDecl
	initFlags  map[int]Value // ref-field index -> flag local
	initErrVal Value
}

func (g *generator) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: sirgen: %s", g.mod.Name, line, fmt.Sprintf(format, args...))
}

// ---- block and instruction plumbing ----

func (g *generator) newBlock(hint string) *Block {
	g.blocks++
	b := &Block{Label: fmt.Sprintf("%s%d", hint, g.blocks)}
	g.fn.Blocks = append(g.fn.Blocks, b)
	return b
}

func (g *generator) setBlock(b *Block) { g.cur = b }

func (g *generator) emit(in Inst) {
	if g.cur == nil {
		panic("sirgen: emit with no current block")
	}
	if n := len(g.cur.Insts); n > 0 && g.cur.Insts[n-1].Op.IsTerminator() {
		// Dead code after a terminator (e.g. statements after return):
		// divert to an unreachable block so the IR stays well formed.
		dead := g.newBlock("dead")
		g.setBlock(dead)
	}
	g.cur.Insts = append(g.cur.Insts, in)
}

func (g *generator) terminated() bool {
	n := len(g.cur.Insts)
	return n > 0 && g.cur.Insts[n-1].Op.IsTerminator()
}

func (g *generator) emitConst(v int64) Value {
	dst := g.fn.NewValue()
	g.emit(Inst{Op: ConstInt, Dst: dst, Imm: v})
	return dst
}

// ---- scopes, locals, cleanup ----

func (g *generator) pushScope() {
	g.scopes = append(g.scopes, &genScope{vars: make(map[string]localInfo)})
}

// popScope emits releases for the scope's ref locals and drops the scope.
func (g *generator) popScope() {
	sc := g.scopes[len(g.scopes)-1]
	if !g.terminated() {
		g.emitScopeReleases(sc)
	}
	g.scopes = g.scopes[:len(g.scopes)-1]
}

func (g *generator) emitScopeReleases(sc *genScope) {
	for i := len(sc.cleanup) - 1; i >= 0; i-- {
		g.emit(Inst{Op: Release, A: sc.cleanup[i]})
	}
}

// emitCleanupDownTo releases ref locals of all scopes deeper than depth
// without popping them (for early exits: return, break, error edges).
func (g *generator) emitCleanupDownTo(depth int) {
	for i := len(g.scopes) - 1; i >= depth; i-- {
		g.emitScopeReleases(g.scopes[i])
	}
}

func (g *generator) define(name string, v Value, isRef bool) {
	sc := g.scopes[len(g.scopes)-1]
	sc.vars[name] = localInfo{val: v, isRef: isRef}
	if isRef {
		sc.cleanup = append(sc.cleanup, v)
	}
}

func (g *generator) lookup(name string) (localInfo, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if li, ok := g.scopes[i].vars[name]; ok {
			return li, true
		}
	}
	return localInfo{}, false
}

// ---- string constants ----

func (g *generator) strConst(s string) string {
	if sym, ok := g.strSyms[s]; ok {
		return sym
	}
	sym := fmt.Sprintf("str.%s.%d", g.mod.Name, g.strSeq)
	g.strSeq++
	words := make([]int64, 0, len(s)+1)
	words = append(words, int64(len(s)))
	for _, ch := range s {
		words = append(words, int64(ch))
	}
	g.mod.Globals = append(g.mod.Globals, &Global{Name: sym, Module: g.mod.Name, Words: words})
	g.strSyms[s] = sym
	return sym
}

// ---- function generation ----

func (g *generator) genFunc(sym string, fd *frontend.FuncDecl) error {
	fn := &Func{Name: sym, Module: g.mod.Name, Throws: fd.Throws}
	g.fn = fn
	g.cur = nil
	g.blocks = 0
	g.scopes = nil
	g.loops = nil
	g.errs = nil
	g.temps = nil
	g.selfVal = None
	g.curClass = nil
	g.initFlags = nil
	g.initErrVal = None

	isMethod := fd.Class != "" && !fd.IsInit
	if fd.Class != "" {
		g.curClass = g.prog.Classes[fd.Class]
	}

	// Parameter layout: methods get self first.
	nParams := len(fd.Params)
	if isMethod {
		nParams++
	}
	fn.NumParams = nParams
	fn.NumValues = nParams
	fn.RefParams = make([]bool, nParams)

	entry := &Block{Label: "entry"}
	fn.Blocks = append(fn.Blocks, entry)
	g.setBlock(entry)
	g.pushScope()

	idx := 0
	if isMethod {
		fn.RefParams[0] = true
		// self is a borrowed parameter; not released at scope end.
		g.selfVal = fn.Param(0)
		g.scopes[0].vars["self"] = localInfo{val: g.selfVal, isRef: true}
		idx = 1
	}
	for i, p := range fd.Params {
		v := fn.Param(idx + i)
		fn.RefParams[idx+i] = p.Type.IsRef()
		// Parameters are +0 borrows: visible but not in cleanup lists.
		g.scopes[0].vars[p.Name] = localInfo{val: v, isRef: p.Type.IsRef()}
	}

	if fd.IsInit {
		if err := g.genInit(fd); err != nil {
			return err
		}
	} else {
		if err := g.genBlockInline(fd.Body); err != nil {
			return err
		}
		if !g.terminated() {
			g.emitCleanupDownTo(0)
			if fd.Ret.Kind == frontend.TVoid {
				g.emit(Inst{Op: RetVoid})
			} else {
				// Checked functions with non-void returns that fall off the
				// end are dynamically unreachable (or a source bug); trap.
				g.emit(Inst{Op: Unreachable})
			}
		}
	}
	g.scopes = nil
	g.mod.AddFunc(fn)
	return nil
}

// genInit lowers an initializer: allocate self, run the body, return self.
// Throwing inits additionally maintain per-ref-field initialization flags
// and a shared cleanup block (the paper's Figure 9).
func (g *generator) genInit(fd *frontend.FuncDecl) error {
	cd := g.prog.Classes[fd.Class]
	self := g.fn.NewValue()
	g.selfVal = self
	g.emit(Inst{Op: AllocObject, Dst: self, Sym: cd.Name, Imm: int64(len(cd.Fields))})
	g.scopes[0].vars["self"] = localInfo{val: self, isRef: true}
	// self is not in the cleanup list: ownership transfers to the caller.

	if fd.Body == nil {
		// Memberwise initializer: assign each field from the parameters.
		for i, f := range cd.Fields {
			v := g.fn.Param(i)
			if f.Type.IsRef() {
				g.emit(Inst{Op: Retain, A: v})
			}
			g.emit(Inst{Op: FieldSet, A: self, Imm: int64(i), B: v})
		}
		g.emit(Inst{Op: Ret, A: self})
		return nil
	}

	if fd.Throws {
		// Per-ref-field init flags, all starting false.
		g.initFlags = make(map[int]Value)
		for i, f := range cd.Fields {
			if f.Type.IsRef() {
				flag := g.emitConst(0)
				g.initFlags[i] = flag
			}
		}
		g.initErrVal = g.emitConst(0)
		// Reserve the shared cleanup label; the block is emitted at the end.
		g.errs = append(g.errs, errCtx{initCleanup: "init_cleanup"})
	}

	if err := g.genBlockInline(fd.Body); err != nil {
		return err
	}
	if !g.terminated() {
		g.emitCleanupDownTo(1) // keep the function scope (self) alive
		g.emit(Inst{Op: Ret, A: self})
	}

	if fd.Throws {
		// Figure 9's block L: release the fields whose flags are set, then
		// release self's allocation and rethrow.
		cleanup := g.newBlock("cl")
		cleanup.Label = "init_cleanup"
		g.setBlock(cleanup)
		for i := range cd.Fields {
			flag, ok := g.initFlags[i]
			if !ok {
				continue
			}
			rel := g.newBlock("init_rel")
			next := g.newBlock("init_next")
			g.emit(Inst{Op: CondBr, A: flag, Sym: rel.Label, Sym2: next.Label})
			g.setBlock(rel)
			fv := g.fn.NewValue()
			g.emit(Inst{Op: FieldGet, Dst: fv, A: self, Imm: int64(i)})
			g.emit(Inst{Op: Release, A: fv})
			g.emit(Inst{Op: Br, Sym: next.Label})
			g.setBlock(next)
		}
		g.emit(Inst{Op: Release, A: self})
		g.emit(Inst{Op: Throw, A: g.initErrVal})
	}
	return nil
}

// genBlockInline generates a block's statements in a fresh scope.
func (g *generator) genBlockInline(b *frontend.BlockStmt) error {
	g.pushScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	g.popScope()
	return nil
}

// flushTemps releases owned ref temporaries accumulated by the current
// statement.
func (g *generator) flushTemps() {
	for i := len(g.temps) - 1; i >= 0; i-- {
		g.emit(Inst{Op: Release, A: g.temps[i]})
	}
	g.temps = g.temps[:0]
}

func (g *generator) genStmt(s frontend.Stmt) error {
	switch s := s.(type) {
	case *frontend.BlockStmt:
		return g.genBlockInline(s)

	case *frontend.VarStmt:
		v, owned, err := g.genExpr(s.Init)
		if err != nil {
			return err
		}
		isRef := s.Type.IsRef()
		local := g.fn.NewValue()
		if isRef && !owned {
			g.emit(Inst{Op: Retain, A: v})
		}
		g.emit(Inst{Op: Move, Dst: local, A: v})
		g.consumeTemp(v)
		g.define(s.Name, local, isRef)
		g.flushTemps()
		return nil

	case *frontend.AssignStmt:
		if err := g.genAssign(s); err != nil {
			return err
		}
		g.flushTemps()
		return nil

	case *frontend.ExprStmt:
		v, owned, err := g.genExpr(s.E)
		if err != nil {
			return err
		}
		if owned && s.E.TypeOf().IsRef() {
			// Result ignored: drop the ownership now (it is already in
			// temps via genExpr bookkeeping or needs an explicit release).
			if !g.inTemps(v) {
				g.emit(Inst{Op: Release, A: v})
			}
		}
		g.flushTemps()
		return nil

	case *frontend.IfStmt:
		return g.genIf(s)

	case *frontend.WhileStmt:
		head := g.newBlock("while_head")
		g.emit(Inst{Op: Br, Sym: head.Label})
		g.setBlock(head)
		cond, _, err := g.genExpr(s.Cond)
		if err != nil {
			return err
		}
		body := g.newBlock("while_body")
		exit := g.newBlock("while_exit")
		g.emit(Inst{Op: CondBr, A: cond, Sym: body.Label, Sym2: exit.Label})
		g.setBlock(body)
		g.loops = append(g.loops, loopCtx{breakLabel: exit.Label, continueLabel: head.Label, scopeDepth: len(g.scopes)})
		if err := g.genBlockInline(s.Body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		if !g.terminated() {
			g.emit(Inst{Op: Br, Sym: head.Label})
		}
		g.setBlock(exit)
		return nil

	case *frontend.ForStmt:
		lo, _, err := g.genExpr(s.Lo)
		if err != nil {
			return err
		}
		hi, _, err := g.genExpr(s.Hi)
		if err != nil {
			return err
		}
		iv := g.fn.NewValue()
		g.emit(Inst{Op: Move, Dst: iv, A: lo})
		hiv := g.fn.NewValue()
		g.emit(Inst{Op: Move, Dst: hiv, A: hi})
		head := g.newBlock("for_head")
		g.emit(Inst{Op: Br, Sym: head.Label})
		g.setBlock(head)
		cond := g.fn.NewValue()
		g.emit(Inst{Op: Cmp, Dst: cond, Cond: Lt, A: iv, B: hiv})
		body := g.newBlock("for_body")
		step := g.newBlock("for_step")
		exit := g.newBlock("for_exit")
		g.emit(Inst{Op: CondBr, A: cond, Sym: body.Label, Sym2: exit.Label})
		g.setBlock(body)
		g.pushScope()
		g.define(s.Var, iv, false)
		g.loops = append(g.loops, loopCtx{breakLabel: exit.Label, continueLabel: step.Label, scopeDepth: len(g.scopes)})
		for _, st := range s.Body.Stmts {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.popScope()
		if !g.terminated() {
			g.emit(Inst{Op: Br, Sym: step.Label})
		}
		g.setBlock(step)
		one := g.emitConst(1)
		g.emit(Inst{Op: Bin, Dst: iv, BinOp: Add, A: iv, B: one})
		g.emit(Inst{Op: Br, Sym: head.Label})
		g.setBlock(exit)
		return nil

	case *frontend.ReturnStmt:
		if s.E == nil {
			g.emitCleanupDownTo(0)
			g.emit(Inst{Op: RetVoid})
			return nil
		}
		v, owned, err := g.genExpr(s.E)
		if err != nil {
			return err
		}
		if s.E.TypeOf().IsRef() && !owned {
			g.emit(Inst{Op: Retain, A: v}) // results are +1 to the caller
		}
		g.consumeTemp(v)
		g.flushTemps()
		keep := 0
		if g.selfVal != None {
			keep = 1
		}
		g.emitCleanupDownTo(keep)
		g.emit(Inst{Op: Ret, A: v})
		return nil

	case *frontend.ThrowStmt:
		code, _, err := g.genExpr(s.E)
		if err != nil {
			return err
		}
		one := g.emitConst(1)
		raw := g.fn.NewValue()
		g.emit(Inst{Op: Bin, Dst: raw, BinOp: Add, A: code, B: one})
		g.flushTemps()
		g.raiseError(raw)
		return nil

	case *frontend.DoCatchStmt:
		errLocal := g.emitConst(0)
		catch := g.newBlock("catch")
		done := g.newBlock("done")
		g.errs = append(g.errs, errCtx{catchLabel: catch.Label, errLocal: errLocal, scopeDepth: len(g.scopes)})
		if err := g.genBlockInline(s.Body); err != nil {
			return err
		}
		g.errs = g.errs[:len(g.errs)-1]
		if !g.terminated() {
			g.emit(Inst{Op: Br, Sym: done.Label})
		}
		g.setBlock(catch)
		g.pushScope()
		// error = raw - 1
		one := g.emitConst(1)
		code := g.fn.NewValue()
		g.emit(Inst{Op: Bin, Dst: code, BinOp: Sub, A: errLocal, B: one})
		g.scopes[len(g.scopes)-1].vars["error"] = localInfo{val: code}
		for _, st := range s.Catch.Stmts {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
		g.popScope()
		if !g.terminated() {
			g.emit(Inst{Op: Br, Sym: done.Label})
		}
		g.setBlock(done)
		return nil

	case *frontend.BreakStmt:
		lc := g.loops[len(g.loops)-1]
		g.emitCleanupDownTo(lc.scopeDepth)
		g.emit(Inst{Op: Br, Sym: lc.breakLabel})
		return nil

	case *frontend.ContinueStmt:
		lc := g.loops[len(g.loops)-1]
		g.emitCleanupDownTo(lc.scopeDepth)
		g.emit(Inst{Op: Br, Sym: lc.continueLabel})
		return nil
	}
	return fmt.Errorf("sirgen: unknown statement %T", s)
}

// raiseError transfers a raw error value to the active error destination:
// the init shared cleanup, an enclosing catch, or the caller.
func (g *generator) raiseError(raw Value) {
	if len(g.errs) > 0 {
		ec := g.errs[len(g.errs)-1]
		if ec.initCleanup != "" {
			g.emit(Inst{Op: Move, Dst: g.initErrVal, A: raw})
			g.emitCleanupDownTo(1)
			g.emit(Inst{Op: Br, Sym: ec.initCleanup})
			return
		}
		g.emit(Inst{Op: Move, Dst: ec.errLocal, A: raw})
		g.emitCleanupDownTo(ec.scopeDepth)
		g.emit(Inst{Op: Br, Sym: ec.catchLabel})
		return
	}
	g.emitCleanupDownTo(0)
	g.emit(Inst{Op: Throw, A: raw})
}

func (g *generator) genIf(s *frontend.IfStmt) error {
	cond, owned, err := g.genExpr(s.Cond)
	if err != nil {
		return err
	}
	then := g.newBlock("then")
	var els *Block
	if s.Else != nil {
		els = g.newBlock("else")
	}
	done := g.newBlock("endif")
	elseLabel := done.Label
	if els != nil {
		elseLabel = els.Label
	}
	// `if let` tests the optional against nil directly.
	g.emit(Inst{Op: CondBr, A: cond, Sym: then.Label, Sym2: elseLabel})

	g.setBlock(then)
	g.pushScope()
	if s.Bind != "" {
		bound := g.fn.NewValue()
		isRef := s.Cond.TypeOf().IsRef()
		if isRef && !owned {
			g.emit(Inst{Op: Retain, A: cond})
		}
		g.emit(Inst{Op: Move, Dst: bound, A: cond})
		g.define(s.Bind, bound, isRef)
	}
	for _, st := range s.Then.Stmts {
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	g.popScope()
	if !g.terminated() {
		g.emit(Inst{Op: Br, Sym: done.Label})
	}
	if els != nil {
		g.setBlock(els)
		if err := g.genStmt(s.Else); err != nil {
			return err
		}
		if !g.terminated() {
			g.emit(Inst{Op: Br, Sym: done.Label})
		}
	}
	g.setBlock(done)
	return nil
}

func (g *generator) genAssign(s *frontend.AssignStmt) error {
	switch lhs := s.LHS.(type) {
	case *frontend.IdentExpr:
		li, ok := g.lookup(lhs.Name)
		if !ok {
			return g.errf(s.Line, "undefined %s", lhs.Name)
		}
		v, owned, err := g.genExpr(s.RHS)
		if err != nil {
			return err
		}
		if li.isRef {
			if !owned {
				g.emit(Inst{Op: Retain, A: v})
			}
			g.consumeTemp(v)
			g.emit(Inst{Op: Release, A: li.val})
		}
		g.emit(Inst{Op: Move, Dst: li.val, A: v})
		return nil

	case *frontend.FieldExpr:
		recv, _, err := g.genExpr(lhs.Recv)
		if err != nil {
			return err
		}
		cd := g.prog.Classes[lhs.Recv.TypeOf().Name]
		idx := cd.FieldIndex(lhs.Field)
		isRef := cd.Fields[idx].Type.IsRef()
		v, owned, err := g.genExpr(s.RHS)
		if err != nil {
			return err
		}
		if isRef {
			if !owned {
				g.emit(Inst{Op: Retain, A: v})
			}
			g.consumeTemp(v)
			old := g.fn.NewValue()
			g.emit(Inst{Op: FieldGet, Dst: old, A: recv, Imm: int64(idx)})
			g.emit(Inst{Op: Release, A: old})
		}
		g.emit(Inst{Op: FieldSet, A: recv, Imm: int64(idx), B: v})
		g.noteInitFlag(lhs, idx)
		return nil

	case *frontend.IndexExpr:
		recv, _, err := g.genExpr(lhs.Recv)
		if err != nil {
			return err
		}
		idx, _, err := g.genExpr(lhs.Index)
		if err != nil {
			return err
		}
		isRef := lhs.Recv.TypeOf().Elem.IsRef()
		v, owned, err := g.genExpr(s.RHS)
		if err != nil {
			return err
		}
		if isRef {
			if !owned {
				g.emit(Inst{Op: Retain, A: v})
			}
			g.consumeTemp(v)
			old := g.fn.NewValue()
			g.emit(Inst{Op: ArrayGet, Dst: old, A: recv, B: idx})
			g.emit(Inst{Op: Release, A: old})
		}
		g.emit(Inst{Op: ArraySet, A: recv, B: idx, C: v})
		return nil
	}
	return g.errf(s.Line, "bad assignment target %T", s.LHS)
}

// noteInitFlag records `self.field = try ...` progress inside throwing inits
// by setting the field's init flag (Figure 9's Init temporaries).
func (g *generator) noteInitFlag(lhs *frontend.FieldExpr, idx int) {
	if g.initFlags == nil {
		return
	}
	if _, isSelf := lhs.Recv.(*frontend.SelfExpr); !isSelf {
		return
	}
	flag, tracked := g.initFlags[idx]
	if !tracked {
		return
	}
	one := g.emitConst(1)
	g.emit(Inst{Op: Move, Dst: flag, A: one})
}

// ---- temp bookkeeping ----

func (g *generator) addTemp(v Value) { g.temps = append(g.temps, v) }

func (g *generator) inTemps(v Value) bool {
	for _, t := range g.temps {
		if t == v {
			return true
		}
	}
	return false
}

// consumeTemp removes v from the pending-release list: its ownership has
// been transferred (into a local, a field, an array slot, or a return).
func (g *generator) consumeTemp(v Value) {
	for i, t := range g.temps {
		if t == v {
			g.temps = append(g.temps[:i], g.temps[i+1:]...)
			return
		}
	}
}
