package sir

import (
	"strings"
	"testing"

	"outliner/internal/frontend"
)

func gen(t *testing.T, src string) *Module {
	t.Helper()
	f, err := frontend.ParseFile("test.sl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := frontend.Check("M", f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m, err := Generate(prog)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	return m
}

func countOps(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestGenSimpleFunction(t *testing.T) {
	m := gen(t, `
func add(a: Int, b: Int) -> Int { return a + b }
func main() { print(add(a: 1, b: 2)) }
`)
	f := m.Func("add")
	if f == nil || f.NumParams != 2 {
		t.Fatalf("add missing or wrong params: %+v", f)
	}
	if countOps(f, Bin) != 1 || countOps(f, Ret) != 1 {
		t.Errorf("unexpected body:\n%s", f)
	}
	if m.Func("main") == nil {
		t.Fatal("main missing")
	}
}

func TestGenRefCountingTraffic(t *testing.T) {
	m := gen(t, `
class Node { var v: Int }
func use(n: Node) -> Int { return n.v }
func main() {
  let a = Node(v: 1)
  let b = a
  print(use(n: b))
}
`)
	main := m.Func("main")
	// b = a retains; scope end releases a and b.
	if countOps(main, Retain) < 1 {
		t.Errorf("expected retains in main:\n%s", main)
	}
	if countOps(main, Release) < 2 {
		t.Errorf("expected releases in main:\n%s", main)
	}
	// Memberwise init must retain nothing (Int field) but set the field.
	init := m.Func("Node.init")
	if init == nil || countOps(init, FieldSet) != 1 || countOps(init, AllocObject) != 1 {
		t.Errorf("bad init:\n%s", init)
	}
}

// Throwing init: the Figure 9 pattern — per-ref-field flags and a shared
// cleanup block that tests them.
func TestGenThrowingInitFlags(t *testing.T) {
	m := gen(t, `
class Blob { var a: String
  var b: String
  var n: Int
  init(x: Int) throws {
    self.a = try fetch(k: x)
    self.b = try fetch(k: x + 1)
    self.n = x
  }
}
func fetch(k: Int) throws -> String {
  if k < 0 { throw 1 }
  return "ok"
}
`)
	init := m.Func("Blob.init")
	if init == nil {
		t.Fatal("missing Blob.init")
	}
	cleanup := init.Block("init_cleanup")
	if cleanup == nil {
		t.Fatalf("missing shared cleanup block:\n%s", init)
	}
	// Cleanup region: conditional release per ref field (2 string fields),
	// then release self and rethrow.
	text := init.String()
	if !strings.Contains(text, "init_cleanup:") {
		t.Fatal("no cleanup label in print")
	}
	if countOps(init, Throw) == 0 {
		t.Error("init must rethrow from cleanup")
	}
	relBlocks := 0
	for _, b := range init.Blocks {
		if strings.HasPrefix(b.Label, "init_rel") {
			relBlocks++
		}
	}
	if relBlocks != 2 {
		t.Errorf("expected 2 conditional field-release blocks, got %d:\n%s", relBlocks, init)
	}
}

func TestGenClosureAndCaptures(t *testing.T) {
	m := gen(t, `
func run(f: (Int) -> Int) -> Int { return f(10) }
func main() {
  let base = 5
  print(run(f: { (x: Int) -> Int in return x + base }))
}
`)
	var closure *Func
	for _, f := range m.Funcs {
		if strings.Contains(f.Name, ".closure.") {
			closure = f
		}
	}
	if closure == nil {
		t.Fatalf("no closure function generated; have %v", names(m))
	}
	// Closure loads its capture from the context (field 1).
	if countOps(closure, FieldGet) < 1 {
		t.Errorf("closure must load captures:\n%s", closure)
	}
	main := m.Func("main")
	if countOps(main, MakeClosure) != 1 {
		t.Errorf("main must make one closure:\n%s", main)
	}
	run := m.Func("run")
	if countOps(run, CallClosure) != 1 {
		t.Errorf("run must call through the closure:\n%s", run)
	}
}

func TestGenFunctionAsValueThunk(t *testing.T) {
	m := gen(t, `
func twice(x: Int) -> Int { return x * 2 }
func run(f: (Int) -> Int) -> Int { return f(3) }
func main() { print(run(f: twice)) }
`)
	thunk := m.Func("twice$thunk")
	if thunk == nil {
		t.Fatalf("missing thunk; have %v", names(m))
	}
	if thunk.NumParams != 2 { // env + x
		t.Errorf("thunk params = %d, want 2", thunk.NumParams)
	}
	if countOps(thunk, Call) != 1 {
		t.Errorf("thunk must forward to twice:\n%s", thunk)
	}
}

func TestGenDoCatch(t *testing.T) {
	m := gen(t, `
func risky(x: Int) throws -> Int {
  if x < 0 { throw 42 }
  return x
}
func main() {
  do {
    print(try risky(x: 1))
  } catch {
    print(error)
  }
}
`)
	main := m.Func("main")
	hasCatch := false
	for _, b := range main.Blocks {
		if strings.HasPrefix(b.Label, "catch") {
			hasCatch = true
		}
	}
	if !hasCatch {
		t.Fatalf("no catch block:\n%s", main)
	}
	// The throwing call must produce a conditional error check.
	foundThrowingCall := false
	for _, b := range main.Blocks {
		for _, in := range b.Insts {
			if in.Op == Call && in.Throws {
				foundThrowingCall = true
				if in.ErrDst == None {
					t.Error("throwing call without ErrDst")
				}
			}
		}
	}
	if !foundThrowingCall {
		t.Error("no throwing call in main")
	}
}

func TestGenStringConstantsDeduped(t *testing.T) {
	m := gen(t, `
func main() {
  print("hello")
  print("hello")
  print("world")
}
`)
	if len(m.Globals) != 2 {
		t.Errorf("globals = %d, want 2 (deduped)", len(m.Globals))
	}
	// Layout: [len, chars...]
	g := m.Globals[0]
	if g.Words[0] != int64(len("hello")) {
		t.Errorf("string length word = %d", g.Words[0])
	}
}

func TestGenLoopsAndBreak(t *testing.T) {
	m := gen(t, `
func main() {
  var total = 0
  for i in 0 ..< 10 {
    if i == 5 { break }
    total = total + i
  }
  var j = 0
  while j < 3 {
    j = j + 1
    continue
  }
  print(total + j)
}
`)
	if m.Func("main") == nil {
		t.Fatal("main missing")
	}
}

func TestGenArrayOps(t *testing.T) {
	m := gen(t, `
func main() {
  var xs = [1, 2, 3]
  xs[0] = 9
  xs = append(xs, 4)
  print(xs[0] + xs.count)
}
`)
	main := m.Func("main")
	if countOps(main, AllocArray) != 1 || countOps(main, Append) != 1 {
		t.Errorf("array ops wrong:\n%s", main)
	}
	if countOps(main, ArraySet) < 4 { // 3 literal inits + 1 store
		t.Errorf("expected >=4 array_set:\n%s", main)
	}
}

func names(m *Module) []string {
	var out []string
	for _, f := range m.Funcs {
		out = append(out, f.Name)
	}
	return out
}
