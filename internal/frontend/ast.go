package frontend

import (
	"fmt"
	"strings"
)

// TypeKind classifies SwiftLite types.
type TypeKind uint8

// Type kinds.
const (
	TInt TypeKind = iota
	TBool
	TString
	TVoid
	TClass    // named reference type
	TArray    // [Elem]
	TFunc     // (params) -> ret, possibly throws
	TOptional // Inner?
	TGeneric  // a type parameter, resolved during specialization
)

// Type is a SwiftLite type. Types are interned by value semantics: compare
// with Equal, print with String.
type Type struct {
	Kind   TypeKind
	Name   string  // class name or generic parameter name
	Elem   *Type   // array element / optional inner
	Params []*Type // function parameters
	Ret    *Type   // function result
	Throws bool
}

// Convenience singletons.
var (
	IntType    = &Type{Kind: TInt}
	BoolType   = &Type{Kind: TBool}
	StringType = &Type{Kind: TString}
	VoidType   = &Type{Kind: TVoid}
)

// ClassType returns the type of class name.
func ClassType(name string) *Type { return &Type{Kind: TClass, Name: name} }

// ArrayType returns [elem].
func ArrayType(elem *Type) *Type { return &Type{Kind: TArray, Elem: elem} }

// OptionalType returns elem?.
func OptionalType(elem *Type) *Type { return &Type{Kind: TOptional, Elem: elem} }

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Kind != u.Kind || t.Name != u.Name || t.Throws != u.Throws {
		return false
	}
	if !t.Elem.Equal(u.Elem) || !t.Ret.Equal(u.Ret) {
		return false
	}
	if len(t.Params) != len(u.Params) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Equal(u.Params[i]) {
			return false
		}
	}
	return true
}

// IsRef reports whether values of the type are reference counted at runtime.
// The nil literal's type (an optional with no inner type) counts as a
// reference.
func (t *Type) IsRef() bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case TClass, TArray, TString, TFunc:
		return true
	case TOptional:
		return t.Elem == nil || t.Elem.IsRef()
	}
	return false
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TInt:
		return "Int"
	case TBool:
		return "Bool"
	case TString:
		return "String"
	case TVoid:
		return "Void"
	case TClass, TGeneric:
		return t.Name
	case TArray:
		return "[" + t.Elem.String() + "]"
	case TOptional:
		return t.Elem.String() + "?"
	case TFunc:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		s := "(" + strings.Join(parts, ", ") + ")"
		if t.Throws {
			s += " throws"
		}
		return s + " -> " + t.Ret.String()
	}
	return fmt.Sprintf("type(%d)", t.Kind)
}

// ---- Declarations ----

// File is a parsed source file.
type File struct {
	Name    string
	Funcs   []*FuncDecl
	Classes []*ClassDecl
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function (or method, when attached to a class).
type FuncDecl struct {
	Name     string
	Generics []string // generic parameter names
	Params   []Param
	Ret      *Type // VoidType when absent
	Throws   bool
	Body     *BlockStmt
	Line     int

	// Class is the enclosing class for methods and inits, "" for free
	// functions. IsInit marks initializers.
	Class  string
	IsInit bool
}

// FieldDecl is a stored property of a class.
type FieldDecl struct {
	Name string
	Type *Type
}

// ClassDecl is a class: fields, one optional initializer, methods.
type ClassDecl struct {
	Name    string
	Fields  []FieldDecl
	Init    *FuncDecl
	Methods []*FuncDecl
	Line    int
}

// FieldIndex returns the index of a field or -1.
func (c *ClassDecl) FieldIndex(name string) int {
	for i, f := range c.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Stmts []Stmt
}

// VarStmt declares a let/var binding.
type VarStmt struct {
	Name    string
	Mutable bool
	Type    *Type // nil = inferred
	Init    Expr
	Line    int
}

// AssignStmt assigns to a variable, field, or element.
type AssignStmt struct {
	LHS  Expr // IdentExpr, FieldExpr, or IndexExpr
	RHS  Expr
	Line int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	E    Expr
	Line int
}

// IfStmt is if/else; when Bind != "", it is an `if let Bind = Cond` form and
// Cond has optional type.
type IfStmt struct {
	Bind string
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Line int
}

// WhileStmt loops while Cond holds.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ForStmt is `for Var in Lo ..< Hi`.
type ForStmt struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Body *BlockStmt
	Line int
}

// ReturnStmt returns (optionally) a value.
type ReturnStmt struct {
	E    Expr // nil for bare return
	Line int
}

// ThrowStmt throws an Int error code.
type ThrowStmt struct {
	E    Expr
	Line int
}

// DoCatchStmt runs Body; on a thrown error, runs Catch with `error: Int`
// bound to the error code.
type DoCatchStmt struct {
	Body  *BlockStmt
	Catch *BlockStmt
	Line  int
}

// BreakStmt / ContinueStmt control loops.
type BreakStmt struct{ Line int }

// ContinueStmt continues the enclosing loop.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmtNode()    {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ThrowStmt) stmtNode()    {}
func (*DoCatchStmt) stmtNode()  {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---- Expressions ----

// Expr is an expression node. Every expression carries its checked type
// after sema (via SetType/TypeOf).
type Expr interface {
	exprNode()
	TypeOf() *Type
	SetType(*Type)
}

type exprBase struct{ typ *Type }

func (b *exprBase) exprNode()       {}
func (b *exprBase) TypeOf() *Type   { return b.typ }
func (b *exprBase) SetType(t *Type) { b.typ = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
	Line  int
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
	Line  int
}

// StringLit is a string literal.
type StringLit struct {
	exprBase
	Value string
	Line  int
}

// NilLit is nil.
type NilLit struct {
	exprBase
	Line int
}

// IdentExpr references a variable, parameter, or function.
type IdentExpr struct {
	exprBase
	Name string
	Line int

	// Filled by sema: FuncSym is set when the identifier denotes a named
	// function used as a value.
	FuncSym string
}

// SelfExpr references self inside methods.
type SelfExpr struct {
	exprBase
	Line int
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	exprBase
	Op   TokKind // TokMinus or TokNot
	X    Expr
	Line int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	exprBase
	Op   TokKind
	L, R Expr
	Line int
}

// CallKind says what a CallExpr resolved to during type checking.
type CallKind uint8

// Call kinds.
const (
	CallUnresolved CallKind = iota
	CallFunc                // direct call of a named (possibly specialized) function
	CallInit                // ClassName(args)
	CallBuiltin             // print / append / Array
	CallClosure             // call through a function-typed value
)

// CallExpr calls a free function, a class initializer, or a builtin.
// TypeArgs carry explicit generic instantiations (f<Int>(x)).
type CallExpr struct {
	exprBase
	Fn       Expr // IdentExpr (function/class/builtin) or arbitrary (closure value)
	TypeArgs []*Type
	Args     []Expr
	// Try marks `try f(...)`.
	Try  bool
	Line int

	// Filled by sema.
	Kind        CallKind
	ResolvedSym string // mangled callee for CallFunc/CallInit, builtin name for CallBuiltin
	Throws      bool   // callee throws
}

// MethodCallExpr calls obj.method(args) — also s.count-style accessors when
// parenthesized forms are absent are parsed as FieldExpr.
type MethodCallExpr struct {
	exprBase
	Recv   Expr
	Method string
	Args   []Expr
	Try    bool
	Line   int

	// Filled by sema.
	ResolvedSym string
	Throws      bool
}

// FieldExpr is obj.field (including array/string `count`).
type FieldExpr struct {
	exprBase
	Recv  Expr
	Field string
	Line  int
}

// IndexExpr is a[i] or s[i].
type IndexExpr struct {
	exprBase
	Recv  Expr
	Index Expr
	Line  int
}

// ArrayLit is [e1, e2, ...].
type ArrayLit struct {
	exprBase
	Elems []Expr
	Line  int
}

// ClosureExpr is { (params) -> Ret in stmts }.
type ClosureExpr struct {
	exprBase
	Params []Param
	Ret    *Type
	Body   *BlockStmt
	Line   int

	// Captures is filled by sema: the outer locals the closure reads.
	Captures []string
}
