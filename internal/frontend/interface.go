package frontend

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// InterfaceDigest hashes a module's exported interface: everything another
// module can observe through Imports, and nothing else. That is exactly the
// shape NewImports exposes — classes (name, fields in declaration order,
// initializer signature, method signatures) and non-generic free functions
// (name, parameters including argument labels, return type, throws). Function
// bodies, source positions, and generic free functions (which never cross
// module boundaries) are excluded, so a body-only edit leaves the digest
// unchanged while any signature change alters it.
//
// Field order matters to importers (FieldIndex drives codegen offsets), so it
// is hashed in declaration order; classes and functions themselves are hashed
// in sorted-name order so the digest is independent of file order within the
// module. A class without an explicit initializer is hashed with its
// memberwise signature — the one ensureMemberwiseInit synthesizes — so the
// digest does not depend on whether synthesis has run yet.
func InterfaceDigest(files ...*File) string {
	type classEnt struct {
		name string
		cd   *ClassDecl
	}
	type funcEnt struct {
		name string
		fn   *FuncDecl
	}
	var classes []classEnt
	var funcs []funcEnt
	for _, f := range files {
		for _, cd := range f.Classes {
			classes = append(classes, classEnt{cd.Name, cd})
		}
		for _, fn := range f.Funcs {
			if len(fn.Generics) == 0 {
				funcs = append(funcs, funcEnt{fn.Name, fn})
			}
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].name < classes[j].name })
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].name < funcs[j].name })

	h := sha256.New()
	buf := make([]byte, 0, 256)
	emit := func(parts ...string) {
		buf = buf[:0]
		for _, p := range parts {
			buf = append(buf, p...)
			buf = append(buf, 0) // unambiguous separator
		}
		h.Write(buf)
	}
	emitSig := func(tag string, fn *FuncDecl) {
		throws := "-"
		if fn.Throws {
			throws = "throws"
		}
		emit(tag, fn.Name, throws, fn.Ret.String())
		for _, p := range fn.Params {
			// Parameter names are argument labels at call sites, so they are
			// part of the interface.
			emit("p", p.Name, p.Type.String())
		}
	}
	for _, e := range classes {
		emit("class", e.name)
		for _, fld := range e.cd.Fields {
			emit("field", fld.Name, fld.Type.String())
		}
		if e.cd.Init != nil {
			emitSig("init", e.cd.Init)
		} else {
			// Memberwise initializer: one parameter per field, non-throwing.
			emit("init", "init", "-", VoidType.String())
			for _, fld := range e.cd.Fields {
				emit("p", fld.Name, fld.Type.String())
			}
		}
		methods := make([]*FuncDecl, len(e.cd.Methods))
		copy(methods, e.cd.Methods)
		sort.Slice(methods, func(i, j int) bool { return methods[i].Name < methods[j].Name })
		for _, m := range methods {
			emitSig("method", m)
		}
	}
	for _, e := range funcs {
		emitSig("func", e.fn)
	}
	return hex.EncodeToString(h.Sum(nil))
}
