package frontend

func (c *checker) checkExpr(e Expr, sc *scope, ctx *fnCtx) error {
	switch e := e.(type) {
	case *IntLit:
		e.SetType(IntType)
		return nil
	case *BoolLit:
		e.SetType(BoolType)
		return nil
	case *StringLit:
		e.SetType(StringType)
		return nil
	case *NilLit:
		e.SetType(&Type{Kind: TOptional}) // nil type: optional with no inner
		return nil

	case *SelfExpr:
		if ctx.class == nil {
			return c.errf(e.Line, "self outside a class")
		}
		if ctx.closure != nil {
			return c.errf(e.Line, "self capture in closures is not supported")
		}
		e.SetType(ClassType(ctx.class.Name))
		return nil

	case *IdentExpr:
		if b, _, ok := lookup(sc, e.Name); ok {
			if crossesClosure(sc, e.Name) && ctx.closure != nil {
				if !contains(ctx.closure.Captures, e.Name) {
					ctx.closure.Captures = append(ctx.closure.Captures, e.Name)
				}
			}
			e.SetType(b.typ)
			return nil
		}
		// A named function used as a value.
		if fn, ok := c.prog.Funcs[e.Name]; ok && fn.Class == "" {
			e.FuncSym = e.Name
			e.SetType(funcType(fn))
			return nil
		}
		if fn := c.importedFunc(e.Name); fn != nil {
			e.FuncSym = e.Name
			e.SetType(funcType(fn))
			return nil
		}
		if _, ok := c.generics[e.Name]; ok {
			return c.errf(e.Line, "generic function %s needs explicit type arguments", e.Name)
		}
		return c.errf(e.Line, "undefined name %s", e.Name)

	case *UnaryExpr:
		if err := c.checkExpr(e.X, sc, ctx); err != nil {
			return err
		}
		switch e.Op {
		case TokMinus:
			if e.X.TypeOf().Kind != TInt {
				return c.errf(e.Line, "unary - needs Int, got %s", e.X.TypeOf())
			}
			e.SetType(IntType)
		case TokNot:
			if e.X.TypeOf().Kind != TBool {
				return c.errf(e.Line, "! needs Bool, got %s", e.X.TypeOf())
			}
			e.SetType(BoolType)
		default:
			return c.errf(e.Line, "bad unary operator")
		}
		return nil

	case *BinaryExpr:
		if err := c.checkExpr(e.L, sc, ctx); err != nil {
			return err
		}
		if err := c.checkExpr(e.R, sc, ctx); err != nil {
			return err
		}
		lt, rt := e.L.TypeOf(), e.R.TypeOf()
		switch e.Op {
		case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
			if lt.Kind != TInt || rt.Kind != TInt {
				return c.errf(e.Line, "arithmetic needs Int operands, got %s and %s", lt, rt)
			}
			e.SetType(IntType)
		case TokLt, TokLe, TokGt, TokGe:
			if lt.Kind != TInt || rt.Kind != TInt {
				return c.errf(e.Line, "comparison needs Int operands, got %s and %s", lt, rt)
			}
			e.SetType(BoolType)
		case TokEq, TokNe:
			ok := (lt.Kind == TInt && rt.Kind == TInt) ||
				(lt.Kind == TBool && rt.Kind == TBool) ||
				(lt.IsRef() && rt.IsRef() && (assignable(lt, rt) || assignable(rt, lt))) ||
				(lt.Kind == TOptional && isNilType(rt)) ||
				(isNilType(lt) && rt.Kind == TOptional)
			if !ok {
				return c.errf(e.Line, "cannot compare %s with %s", lt, rt)
			}
			e.SetType(BoolType)
		case TokAnd, TokOr:
			if lt.Kind != TBool || rt.Kind != TBool {
				return c.errf(e.Line, "logical operator needs Bool operands, got %s and %s", lt, rt)
			}
			e.SetType(BoolType)
		default:
			return c.errf(e.Line, "bad binary operator")
		}
		return nil

	case *ArrayLit:
		if len(e.Elems) == 0 {
			return c.errf(e.Line, "empty array literal needs a type; use Array<T>(0)")
		}
		for _, el := range e.Elems {
			if err := c.checkExpr(el, sc, ctx); err != nil {
				return err
			}
		}
		et := e.Elems[0].TypeOf()
		for _, el := range e.Elems[1:] {
			if !assignable(et, el.TypeOf()) {
				return c.errf(e.Line, "mixed array literal: %s vs %s", et, el.TypeOf())
			}
		}
		e.SetType(ArrayType(et))
		return nil

	case *IndexExpr:
		if err := c.checkExpr(e.Recv, sc, ctx); err != nil {
			return err
		}
		if err := c.checkExpr(e.Index, sc, ctx); err != nil {
			return err
		}
		if e.Index.TypeOf().Kind != TInt {
			return c.errf(e.Line, "index must be Int, got %s", e.Index.TypeOf())
		}
		switch rt := e.Recv.TypeOf(); rt.Kind {
		case TArray:
			e.SetType(rt.Elem)
		case TString:
			e.SetType(IntType) // code unit
		default:
			return c.errf(e.Line, "cannot index %s", rt)
		}
		return nil

	case *FieldExpr:
		if err := c.checkExpr(e.Recv, sc, ctx); err != nil {
			return err
		}
		rt := e.Recv.TypeOf()
		if e.Field == "count" && (rt.Kind == TArray || rt.Kind == TString) {
			e.SetType(IntType)
			return nil
		}
		if rt.Kind != TClass {
			return c.errf(e.Line, "no field %s on %s", e.Field, rt)
		}
		cd := c.prog.Classes[rt.Name]
		idx := cd.FieldIndex(e.Field)
		if idx < 0 {
			return c.errf(e.Line, "class %s has no field %s", rt.Name, e.Field)
		}
		e.SetType(cd.Fields[idx].Type)
		return nil

	case *MethodCallExpr:
		if err := c.checkExpr(e.Recv, sc, ctx); err != nil {
			return err
		}
		rt := e.Recv.TypeOf()
		if rt.Kind != TClass {
			return c.errf(e.Line, "no method %s on %s", e.Method, rt)
		}
		cd := c.prog.Classes[rt.Name]
		var m *FuncDecl
		for _, cand := range cd.Methods {
			if cand.Name == e.Method {
				m = cand
				break
			}
		}
		if m == nil {
			return c.errf(e.Line, "class %s has no method %s", rt.Name, e.Method)
		}
		if err := c.checkArgs(e.Args, paramTypes(m.Params), e.Line, sc, ctx); err != nil {
			return err
		}
		if err := c.checkTry(e.Try, m.Throws, m.Name, e.Line, ctx); err != nil {
			return err
		}
		e.ResolvedSym = MangleMethod(rt.Name, e.Method)
		e.Throws = m.Throws
		e.SetType(m.Ret)
		return nil

	case *CallExpr:
		return c.checkCall(e, sc, ctx)

	case *ClosureExpr:
		if ctx.closure != nil {
			return c.errf(e.Line, "nested closures are not supported")
		}
		for _, p := range e.Params {
			if err := c.validType(p.Type, e.Line); err != nil {
				return err
			}
		}
		if err := c.validType(e.Ret, e.Line); err != nil {
			return err
		}
		body := &scope{parent: sc, vars: make(map[string]binding), closureBoundary: true}
		for _, p := range e.Params {
			body.define(p.Name, binding{typ: p.Type})
		}
		inner := &fnCtx{fn: ctx.fn, ret: e.Ret, class: nil, closure: e}
		for _, st := range e.Body.Stmts {
			if err := c.checkStmt(st, body, inner); err != nil {
				return err
			}
		}
		// Capture types must resolve in the defining scope.
		for _, name := range e.Captures {
			if _, _, ok := lookup(sc, name); !ok {
				return c.errf(e.Line, "closure captures unknown variable %s", name)
			}
		}
		ft := &Type{Kind: TFunc, Ret: e.Ret}
		for _, p := range e.Params {
			ft.Params = append(ft.Params, p.Type)
		}
		e.SetType(ft)
		return nil
	}
	return c.errf(0, "sema: unknown expression %T", e)
}

func paramTypes(ps []Param) []*Type {
	out := make([]*Type, len(ps))
	for i, p := range ps {
		out[i] = p.Type
	}
	return out
}

func funcType(fn *FuncDecl) *Type {
	return &Type{Kind: TFunc, Params: paramTypes(fn.Params), Ret: fn.Ret, Throws: fn.Throws}
}

func (c *checker) checkArgs(args []Expr, params []*Type, line int, sc *scope, ctx *fnCtx) error {
	if len(args) != len(params) {
		return c.errf(line, "call expects %d arguments, got %d", len(params), len(args))
	}
	for i, a := range args {
		if err := c.checkExpr(a, sc, ctx); err != nil {
			return err
		}
		if !assignable(params[i], a.TypeOf()) {
			return c.errf(line, "argument %d: cannot pass %s as %s", i+1, a.TypeOf(), params[i])
		}
	}
	return nil
}

func (c *checker) checkTry(hasTry, throws bool, name string, line int, ctx *fnCtx) error {
	if throws && !hasTry {
		return c.errf(line, "call to throwing %s needs try", name)
	}
	if !throws && hasTry {
		return c.errf(line, "try on non-throwing %s", name)
	}
	if hasTry && !ctx.canThrow {
		return c.errf(line, "try outside a throwing context (add throws or wrap in do/catch)")
	}
	return nil
}

func (c *checker) checkCall(e *CallExpr, sc *scope, ctx *fnCtx) error {
	ident, _ := e.Fn.(*IdentExpr)
	if ident != nil {
		// Builtins.
		switch ident.Name {
		case "print":
			if len(e.TypeArgs) != 0 {
				return c.errf(e.Line, "print takes no type arguments")
			}
			if len(e.Args) != 1 {
				return c.errf(e.Line, "print takes one argument")
			}
			if err := c.checkExpr(e.Args[0], sc, ctx); err != nil {
				return err
			}
			switch e.Args[0].TypeOf().Kind {
			case TInt, TBool, TString:
			default:
				return c.errf(e.Line, "print supports Int, Bool, and String, got %s", e.Args[0].TypeOf())
			}
			e.Kind = CallBuiltin
			e.ResolvedSym = "print"
			e.SetType(VoidType)
			return c.checkTry(e.Try, false, "print", e.Line, ctx)

		case "append":
			if len(e.Args) != 2 {
				return c.errf(e.Line, "append takes (array, element)")
			}
			if err := c.checkExpr(e.Args[0], sc, ctx); err != nil {
				return err
			}
			if err := c.checkExpr(e.Args[1], sc, ctx); err != nil {
				return err
			}
			at := e.Args[0].TypeOf()
			if at.Kind != TArray {
				return c.errf(e.Line, "append needs an array, got %s", at)
			}
			if !assignable(at.Elem, e.Args[1].TypeOf()) {
				return c.errf(e.Line, "cannot append %s to %s", e.Args[1].TypeOf(), at)
			}
			e.Kind = CallBuiltin
			e.ResolvedSym = "append"
			e.SetType(at)
			return c.checkTry(e.Try, false, "append", e.Line, ctx)

		case "Array":
			if len(e.TypeArgs) != 1 {
				return c.errf(e.Line, "Array needs one type argument: Array<T>(n)")
			}
			if err := c.validType(e.TypeArgs[0], e.Line); err != nil {
				return err
			}
			if len(e.Args) != 1 {
				return c.errf(e.Line, "Array<T> takes a count")
			}
			if err := c.checkExpr(e.Args[0], sc, ctx); err != nil {
				return err
			}
			if e.Args[0].TypeOf().Kind != TInt {
				return c.errf(e.Line, "Array count must be Int")
			}
			e.Kind = CallBuiltin
			e.ResolvedSym = "Array"
			e.SetType(ArrayType(e.TypeArgs[0]))
			return c.checkTry(e.Try, false, "Array", e.Line, ctx)
		}

		// Class initializer.
		if cd, ok := c.prog.Classes[ident.Name]; ok {
			var params []*Type
			throws := false
			if cd.Init != nil {
				params = paramTypes(cd.Init.Params)
				throws = cd.Init.Throws
			} else if len(cd.Fields) > 0 {
				// Default memberwise initializer.
				for _, f := range cd.Fields {
					params = append(params, f.Type)
				}
			}
			if err := c.checkArgs(e.Args, params, e.Line, sc, ctx); err != nil {
				return err
			}
			if err := c.checkTry(e.Try, throws, ident.Name+".init", e.Line, ctx); err != nil {
				return err
			}
			e.Kind = CallInit
			e.ResolvedSym = MangleMethod(ident.Name, "init")
			e.Throws = throws
			e.SetType(ClassType(ident.Name))
			return nil
		}

		// Generic instantiation.
		if tmpl, ok := c.generics[ident.Name]; ok {
			sym, err := c.instantiate(tmpl, e.TypeArgs, e.Line)
			if err != nil {
				return err
			}
			inst := c.prog.Funcs[sym]
			if err := c.checkArgs(e.Args, paramTypes(inst.Params), e.Line, sc, ctx); err != nil {
				return err
			}
			if err := c.checkTry(e.Try, inst.Throws, sym, e.Line, ctx); err != nil {
				return err
			}
			e.Kind = CallFunc
			e.ResolvedSym = sym
			e.Throws = inst.Throws
			e.SetType(inst.Ret)
			return nil
		}

		// Direct call of a named function, unless a local shadows the name.
		if _, _, isLocal := lookup(sc, ident.Name); !isLocal {
			fn, ok := c.prog.Funcs[ident.Name]
			if !ok || fn.Class != "" {
				if imp := c.importedFunc(ident.Name); imp != nil {
					fn, ok = imp, true
				} else {
					ok = false
				}
			}
			if ok {
				if len(e.TypeArgs) != 0 {
					return c.errf(e.Line, "%s is not generic", ident.Name)
				}
				if err := c.checkArgs(e.Args, paramTypes(fn.Params), e.Line, sc, ctx); err != nil {
					return err
				}
				if err := c.checkTry(e.Try, fn.Throws, ident.Name, e.Line, ctx); err != nil {
					return err
				}
				e.Kind = CallFunc
				e.ResolvedSym = ident.Name
				e.Throws = fn.Throws
				e.SetType(fn.Ret)
				return nil
			}
		}
	}

	// Call through a function-typed value (closure or function reference).
	if err := c.checkExpr(e.Fn, sc, ctx); err != nil {
		return err
	}
	ft := e.Fn.TypeOf()
	if ft.Kind != TFunc {
		return c.errf(e.Line, "cannot call a value of type %s", ft)
	}
	if err := c.checkArgs(e.Args, ft.Params, e.Line, sc, ctx); err != nil {
		return err
	}
	if err := c.checkTry(e.Try, ft.Throws, "function value", e.Line, ctx); err != nil {
		return err
	}
	e.Kind = CallClosure
	e.Throws = ft.Throws
	e.SetType(ft.Ret)
	return nil
}
