package frontend

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseFile("test.sl", src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	return f
}

func check(t *testing.T, src string) *Program {
	t.Helper()
	f := parse(t, src)
	p, err := Check("TestModule", f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := ParseFile("test.sl", src)
	if err == nil {
		_, err = Check("TestModule", f)
	}
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := NewLexer("t", `func f(x: Int) -> Int { return x + 42 } // done`).Lex()
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFunc, TokIdent, TokLParen, TokIdent, TokColon, TokIdent,
		TokRParen, TokArrow, TokIdent, TokLBrace, TokReturn, TokIdent, TokPlus,
		TokInt, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexOperatorsAndComments(t *testing.T) {
	src := "a == b != c <= d >= e && f || g ..< /* block /* nested */ */ ! ->"
	toks, err := NewLexer("t", src).Lex()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{TokIdent, TokEq, TokIdent, TokNe, TokIdent, TokLe, TokIdent,
		TokGe, TokIdent, TokAnd, TokIdent, TokOr, TokIdent, TokRangeUpto,
		TokNot, TokArrow, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %d, want %d", i, kinds[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := NewLexer("t", `"a\n\t\"\\"`).Lex()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\n\t\"\\" {
		t.Errorf("string = %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `@`, `/* open`, `"\q"`, `a .. b`} {
		if _, err := NewLexer("t", src).Lex(); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseClassAndMethods(t *testing.T) {
	f := parse(t, `
class Point {
  var x: Int
  var y: Int
  init(x: Int, y: Int) {
    self.x = x
    self.y = y
  }
  func norm() -> Int { return self.x * self.x + self.y * self.y }
}
func main() {
  let p = Point(x: 3, y: 4)
  print(p.norm())
}
`)
	if len(f.Classes) != 1 || len(f.Funcs) != 1 {
		t.Fatalf("classes=%d funcs=%d", len(f.Classes), len(f.Funcs))
	}
	cd := f.Classes[0]
	if cd.Name != "Point" || len(cd.Fields) != 2 || cd.Init == nil || len(cd.Methods) != 1 {
		t.Fatalf("class parse wrong: %+v", cd)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parse(t, `func f(a: Int, b: Int, c: Int) -> Bool { return a + b * c < a * b + c }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	cmp := ret.E.(*BinaryExpr)
	if cmp.Op != TokLt {
		t.Fatalf("top op = %v", cmp.Op)
	}
	l := cmp.L.(*BinaryExpr)
	if l.Op != TokPlus {
		t.Fatalf("lhs op = %v", l.Op)
	}
	if _, ok := l.R.(*BinaryExpr); !ok {
		t.Fatal("b*c must bind tighter than +")
	}
}

func TestParseClosureAndGenerics(t *testing.T) {
	f := parse(t, `
func apply(f: (Int) -> Int, x: Int) -> Int { return f(x) }
func identity<T>(x: T) -> T { return x }
func main() {
  let y = apply(f: { (v: Int) -> Int in return v * 2 }, x: 21)
  let z = identity<Int>(5)
  print(y + z)
}
`)
	if len(f.Funcs) != 3 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	if g := f.Funcs[1]; len(g.Generics) != 1 || g.Generics[0] != "T" {
		t.Fatalf("generics = %v", g.Generics)
	}
	call := f.Funcs[2].Body.Stmts[1].(*VarStmt).Init.(*CallExpr)
	if len(call.TypeArgs) != 1 || call.TypeArgs[0].Kind != TInt {
		t.Fatalf("type args = %v", call.TypeArgs)
	}
}

func TestGenericAngleVsComparison(t *testing.T) {
	// a < b is a comparison, not a failed generic call.
	f := parse(t, `func f(a: Int, b: Int) -> Bool { return a < b }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if be, ok := ret.E.(*BinaryExpr); !ok || be.Op != TokLt {
		t.Fatalf("got %T", ret.E)
	}
}

func TestParseErrorsPositioned(t *testing.T) {
	_, err := ParseFile("bad.sl", "func f( {")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "bad.sl:1:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestSemaHappyPath(t *testing.T) {
	p := check(t, `
class Node {
  var value: Int
  var next: Node?
  init(value: Int) {
    self.value = value
    self.next = nil
  }
}
func sum(head: Node?) -> Int {
  var total = 0
  var cur = head
  while cur != nil {
    if let n = cur {
      total = total + n.value
      cur = n.next
    }
  }
  return total
}
func main() {
  let a = Node(value: 1)
  let b = Node(value: 2)
  a.next = b
  print(sum(head: a))
}
`)
	if _, ok := p.Funcs["Node.init"]; !ok {
		t.Error("missing Node.init")
	}
	if _, ok := p.Funcs["sum"]; !ok {
		t.Error("missing sum")
	}
}

func TestSemaMonomorphization(t *testing.T) {
	p := check(t, `
func pick<T>(a: T, b: T, first: Bool) -> T {
  if first { return a }
  return b
}
func main() {
  print(pick<Int>(a: 1, b: 2, first: true))
  let s = pick<String>(a: "x", b: "y", first: false)
  print(s)
}
`)
	if _, ok := p.Funcs["pick$Int"]; !ok {
		t.Errorf("missing pick$Int; have %v", p.FuncOrder)
	}
	if _, ok := p.Funcs["pick$String"]; !ok {
		t.Errorf("missing pick$String; have %v", p.FuncOrder)
	}
	inst := p.Funcs["pick$Int"]
	if inst.Params[0].Type.Kind != TInt || inst.Ret.Kind != TInt {
		t.Errorf("specialization types wrong: %v -> %v", inst.Params[0].Type, inst.Ret)
	}
}

func TestSemaClosureCaptures(t *testing.T) {
	p := check(t, `
func make(base: Int) -> Int {
  let scale = 3
  let f = { (x: Int) -> Int in return x * scale + base }
  return f(10)
}
`)
	fn := p.Funcs["make"]
	cl := fn.Body.Stmts[1].(*VarStmt).Init.(*ClosureExpr)
	if len(cl.Captures) != 2 {
		t.Fatalf("captures = %v, want [scale base]", cl.Captures)
	}
}

func TestSemaThrowsDiscipline(t *testing.T) {
	check(t, `
func risky(x: Int) throws -> Int {
  if x < 0 { throw 7 }
  return x
}
func main() {
  do {
    let v = try risky(x: 5)
    print(v)
  } catch {
    print(error)
  }
}
`)
	checkErr(t, `
func risky() throws -> Int { throw 1 }
func main() { let v = risky() print(v) }
`, "needs try")
	checkErr(t, `
func safe() -> Int { return 1 }
func main() { let v = try safe() print(v) }
`, "try on non-throwing")
	checkErr(t, `
func risky() throws -> Int { throw 1 }
func main() { let v = try risky() print(v) }
`, "try outside a throwing context")
	checkErr(t, `
func f() { throw 3 }
`, "throw outside")
}

func TestSemaTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func f() { let x = 1 + true }`, "arithmetic needs Int"},
		{`func f() { if 3 { } }`, "must be Bool"},
		{`func f() { let x = 1 x = 2 }`, "cannot assign to let"},
		{`func f() { var x = 1 x = "s" }`, "cannot assign String"},
		{`func f() { y = 1 }`, "undefined variable"},
		{`func f() { print(undefinedName) }`, "undefined name"},
		{`func f() -> Int { return }`, "return needs"},
		{`func f() { return 3 }`, "unexpected return value"},
		{`func f() { break }`, "break outside"},
		{`func f(x: Unknown) { }`, "unknown type"},
		{`class A { var x: Int } func f(a: A) { print(a.y) }`, "no field y"},
		{`func f() { let xs = [1, "a"] }`, "mixed array"},
		{`func f() { let xs = [] }`, "empty array literal"},
		{`func f(x: Int) { x(3) }`, "cannot call a value"},
		{`func f() { let n: Int = nil }`, "cannot assign"},
		{`func g<T>(x: T) -> T { return x } func f() { let v = g(3) }`, "type arguments"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestSemaOptionalRules(t *testing.T) {
	check(t, `
class A { var x: Int }
func f(a: A?) -> Int {
  if let v = a { return v.x }
  return 0
}
func main() {
  let a = A(x: 1)
  print(f(a: a))
  print(f(a: nil))
}
`)
	checkErr(t, `
class A { var x: Int }
func f(a: A?) -> Int { return a.x }
`, "no field x on A?")
	// Optional Int is declarable.
	check(t, `func f(x: Int?) { }`)
}

func TestSemaMemberwiseInit(t *testing.T) {
	check(t, `
class P { var x: Int
  var y: Int }
func main() {
  let p = P(x: 1, y: 2)
  print(p.x + p.y)
}
`)
}

func TestSemaNestedClosureRejected(t *testing.T) {
	checkErr(t, `
func f() -> Int {
  let g = { (x: Int) -> Int in
    let h = { (y: Int) -> Int in return y }
    return h(x)
  }
  return g(1)
}
`, "nested closures")
}

func TestSemaAssignToCaptureRejected(t *testing.T) {
	checkErr(t, `
func f() {
  var n = 0
  let g = { (x: Int) -> Int in
    n = x
    return n
  }
  print(g(1))
}
`, "captured variable")
}

func TestSemaStringIndexAndCount(t *testing.T) {
	check(t, `
func f(s: String) -> Int {
  var total = 0
  for i in 0 ..< s.count { total = total + s[i] }
  return total
}
`)
}

// CloneFunc must deep-copy: mutating the clone's body or types must not
// affect the original (generic instantiation depends on this).
func TestCloneFuncDeep(t *testing.T) {
	f := parse(t, `
func g<T>(a: T, b: Int) -> T {
  var x = b + 1
  if x > 0 { x = x * 2 }
  let c = { (v: Int) -> Int in return v }
  print(c(x))
  return a
}
`)
	orig := f.Funcs[0]
	clone := CloneFunc(orig)
	clone.Name = "changed"
	clone.Params[0].Name = "zzz"
	clone.Body.Stmts[0].(*VarStmt).Name = "renamed"
	inner := clone.Body.Stmts[1].(*IfStmt)
	inner.Then.Stmts[0].(*AssignStmt).LHS.(*IdentExpr).Name = "mutated"

	if orig.Name != "g" || orig.Params[0].Name != "a" {
		t.Error("clone shares header storage")
	}
	if orig.Body.Stmts[0].(*VarStmt).Name != "x" {
		t.Error("clone shares statement storage")
	}
	if orig.Body.Stmts[1].(*IfStmt).Then.Stmts[0].(*AssignStmt).LHS.(*IdentExpr).Name != "x" {
		t.Error("clone shares nested expression storage")
	}
}

// Generic instantiations must not leak checked types across each other:
// pick$Int and pick$String see different types for the same source nodes.
func TestInstantiationTypeIsolation(t *testing.T) {
	p := check(t, `
func pick<T>(a: T, b: T, first: Bool) -> T {
  if first { return a }
  return b
}
func main() {
  print(pick<Int>(a: 1, b: 2, first: true))
  print(pick<String>(a: "x", b: "y", first: false))
}
`)
	intInst := p.Funcs["pick$Int"]
	strInst := p.Funcs["pick$String"]
	ri := intInst.Body.Stmts[0].(*IfStmt).Then.Stmts[0].(*ReturnStmt).E.TypeOf()
	rs := strInst.Body.Stmts[0].(*IfStmt).Then.Stmts[0].(*ReturnStmt).E.TypeOf()
	if ri.Kind != TInt {
		t.Errorf("int instantiation return type = %s", ri)
	}
	if rs.Kind != TString {
		t.Errorf("string instantiation return type = %s", rs)
	}
}

func TestSemaImportVisibility(t *testing.T) {
	libFile := parse(t, `
class Box { var v: Int }
func open(b: Box) -> Int { return b.v }
`)
	imports := NewImports(libFile)
	appFile := parse(t, `
func main() {
  let b = Box(v: 7)
  print(open(b: b))
}
`)
	if _, err := CheckModule("App", imports, appFile); err != nil {
		t.Fatalf("import resolution failed: %v", err)
	}
	// Without imports the same module must fail.
	appFile2 := parse(t, `
func main() {
  let b = Box(v: 7)
  print(open(b: b))
}
`)
	if _, err := CheckModule("App", nil, appFile2); err == nil {
		t.Fatal("unresolved cross-module names accepted")
	}
}
