package frontend

// ImportsIndex precomputes one build's worth of cross-module import sets.
// Building per-module import sets with NewImports walks every other module's
// declarations once per importer — O(modules²) map inserts, which dominates
// warm builds at paper scale (476 modules). The index walks every declaration
// exactly once and hands each module a view that shares the underlying maps,
// hiding the module's own declarations by owner tag.
//
// Cross-module duplicate top-level names are not meaningfully supported by
// either construction (the checker rejects duplicate classes, and duplicate
// functions would collide at link time); both resolve to the
// latest-module-wins entry.
type ImportsIndex struct {
	classes    map[string]*ClassDecl
	funcs      map[string]*FuncDecl
	classOwner map[string]int
	funcOwner  map[string]int
}

// NewImportsIndex indexes the declarations of all modules in a build.
// Like NewImports it synthesizes missing memberwise initializers in place.
func NewImportsIndex(modules ...[]*File) *ImportsIndex {
	ix := &ImportsIndex{
		classes:    make(map[string]*ClassDecl),
		funcs:      make(map[string]*FuncDecl),
		classOwner: make(map[string]int),
		funcOwner:  make(map[string]int),
	}
	for i, files := range modules {
		for _, f := range files {
			for _, cd := range f.Classes {
				ensureMemberwiseInit(cd)
				ix.classes[cd.Name] = cd
				ix.classOwner[cd.Name] = i
			}
			for _, fn := range f.Funcs {
				if len(fn.Generics) == 0 {
					ix.funcs[fn.Name] = fn
					ix.funcOwner[fn.Name] = i
				}
			}
		}
	}
	return ix
}

// For returns module self's import set: every indexed declaration except
// self's own. The view shares the index's maps — O(1) to construct.
func (ix *ImportsIndex) For(self int) *Imports {
	return &Imports{
		Classes:    ix.classes,
		Funcs:      ix.funcs,
		classOwner: ix.classOwner,
		funcOwner:  ix.funcOwner,
		exclude:    self,
	}
}

// Func resolves an imported free function, honoring the view's exclusion.
func (imp *Imports) Func(name string) *FuncDecl {
	fn := imp.Funcs[name]
	if fn == nil {
		return nil
	}
	if imp.funcOwner != nil {
		if own, ok := imp.funcOwner[name]; ok && own == imp.exclude {
			return nil
		}
	}
	return fn
}

// EachClass visits every imported class, honoring the view's exclusion.
// Visit order is unspecified (callers insert into maps).
func (imp *Imports) EachClass(fn func(name string, cd *ClassDecl)) {
	for name, cd := range imp.Classes {
		if imp.classOwner != nil {
			if own, ok := imp.classOwner[name]; ok && own == imp.exclude {
				continue
			}
		}
		fn(name, cd)
	}
}
