// Package frontend implements SwiftLite, the Swift-like source language of
// the reproduction: lexer, parser, AST, and type checker. SwiftLite keeps
// exactly the feature set the paper blames for machine-code repetition —
// reference-counted classes, closures, generics with specialization,
// throwing initializers with try expressions — while staying small enough to
// compile through the whole pipeline.
package frontend

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString

	// Keywords.
	TokFunc
	TokClass
	TokInit
	TokVar
	TokLet
	TokIf
	TokElse
	TokWhile
	TokFor
	TokIn
	TokReturn
	TokThrow
	TokThrows
	TokTry
	TokDo
	TokCatch
	TokBreak
	TokContinue
	TokTrue
	TokFalse
	TokNil
	TokSelf

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokColon
	TokDot
	TokArrow     // ->
	TokRangeUpto // ..<
	TokAssign    // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAnd      // &&
	TokOr       // ||
	TokNot      // !
	TokQuestion // ?
)

var keywords = map[string]TokKind{
	"func": TokFunc, "class": TokClass, "init": TokInit, "var": TokVar,
	"let": TokLet, "if": TokIf, "else": TokElse, "while": TokWhile,
	"for": TokFor, "in": TokIn, "return": TokReturn, "throw": TokThrow,
	"throws": TokThrows, "try": TokTry, "do": TokDo, "catch": TokCatch,
	"break": TokBreak, "continue": TokContinue, "true": TokTrue,
	"false": TokFalse, "nil": TokNil, "self": TokSelf,
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier or string literal contents
	Int  int64  // integer literal value
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("ident(%s)", t.Text)
	case TokInt:
		return fmt.Sprintf("int(%d)", t.Int)
	case TokString:
		return fmt.Sprintf("string(%q)", t.Text)
	case TokEOF:
		return "eof"
	default:
		return tokNames[t.Kind]
	}
}

var tokNames = map[TokKind]string{
	TokFunc: "func", TokClass: "class", TokInit: "init", TokVar: "var",
	TokLet: "let", TokIf: "if", TokElse: "else", TokWhile: "while",
	TokFor: "for", TokIn: "in", TokReturn: "return", TokThrow: "throw",
	TokThrows: "throws", TokTry: "try", TokDo: "do", TokCatch: "catch",
	TokBreak: "break", TokContinue: "continue", TokTrue: "true",
	TokFalse: "false", TokNil: "nil", TokSelf: "self",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokColon: ":",
	TokDot: ".", TokArrow: "->", TokRangeUpto: "..<", TokAssign: "=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokAnd: "&&", TokOr: "||", TokNot: "!",
	TokQuestion: "?",
}

// Error is a positioned front-end diagnostic.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}
