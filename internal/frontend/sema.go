package frontend

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a type-checked module: the unit handed to SIRGen.
type Program struct {
	Module  string
	Classes map[string]*ClassDecl
	Funcs   map[string]*FuncDecl // by mangled name, including specializations
	// FuncOrder lists Funcs keys in deterministic compilation order.
	FuncOrder []string
}

// Imports exposes another module's public declarations to type checking:
// classes (with their inits and methods) and non-generic free functions.
// Imported declarations are visible but not compiled into the importing
// module. Generic functions do not cross module boundaries (each module
// instantiates its own copies, as the Swift compiler does).
type Imports struct {
	Classes map[string]*ClassDecl
	Funcs   map[string]*FuncDecl

	// Views handed out by ImportsIndex.For share the maps of the whole-build
	// index; owner tags hide the viewing module's own declarations. All three
	// fields are zero for sets built by NewImports (no exclusion).
	classOwner map[string]int
	funcOwner  map[string]int
	exclude    int
}

// NewImports builds an import set from previously parsed modules' files.
func NewImports(files ...*File) *Imports {
	imp := &Imports{
		Classes: make(map[string]*ClassDecl),
		Funcs:   make(map[string]*FuncDecl),
	}
	for _, f := range files {
		for _, cd := range f.Classes {
			ensureMemberwiseInit(cd)
			imp.Classes[cd.Name] = cd
		}
		for _, fn := range f.Funcs {
			if len(fn.Generics) == 0 {
				imp.Funcs[fn.Name] = fn
			}
		}
	}
	return imp
}

// ensureMemberwiseInit synthesizes the memberwise initializer if the class
// declares none. Idempotent.
func ensureMemberwiseInit(cd *ClassDecl) {
	if cd.Init != nil {
		return
	}
	var params []Param
	for _, fld := range cd.Fields {
		params = append(params, Param{Name: fld.Name, Type: fld.Type})
	}
	cd.Init = &FuncDecl{
		Name: "init", Class: cd.Name, IsInit: true,
		Params: params, Ret: VoidType, Line: cd.Line,
	}
}

// Check type-checks files into one module. Generic functions are
// monomorphized: each explicit instantiation `f<Int>(...)` produces a
// specialized copy `f$Int` — the mechanism behind the paper's
// closure-specialization replication pattern (§IV, Listing 9).
func Check(module string, files ...*File) (*Program, error) {
	return CheckModule(module, nil, files...)
}

// CheckModule is Check with cross-module imports.
func CheckModule(module string, imports *Imports, files ...*File) (*Program, error) {
	c := &checker{
		prog: &Program{
			Module:  module,
			Classes: make(map[string]*ClassDecl),
			Funcs:   make(map[string]*FuncDecl),
		},
		generics:        make(map[string]*FuncDecl),
		imports:         imports,
		importedClasses: make(map[string]bool),
	}
	if imports != nil {
		imports.EachClass(func(name string, cd *ClassDecl) {
			c.prog.Classes[name] = cd
			c.importedClasses[name] = true
		})
	}
	if err := c.collect(files); err != nil {
		return nil, err
	}
	if err := c.checkAll(); err != nil {
		return nil, err
	}
	sort.Strings(c.prog.FuncOrder)
	return c.prog, nil
}

// MangleMethod returns the symbol of a method or initializer.
func MangleMethod(class, method string) string { return class + "." + method }

// MangleSpecialization returns the symbol of a generic instantiation.
func MangleSpecialization(name string, typeArgs []*Type) string {
	parts := make([]string, len(typeArgs))
	for i, t := range typeArgs {
		parts[i] = mangleType(t)
	}
	return name + "$" + strings.Join(parts, "_")
}

func mangleType(t *Type) string {
	switch t.Kind {
	case TInt:
		return "Int"
	case TBool:
		return "Bool"
	case TString:
		return "String"
	case TVoid:
		return "Void"
	case TClass, TGeneric:
		return t.Name
	case TArray:
		return "A" + mangleType(t.Elem)
	case TOptional:
		return "O" + mangleType(t.Elem)
	case TFunc:
		s := "F"
		for _, p := range t.Params {
			s += mangleType(p)
		}
		return s + "R" + mangleType(t.Ret)
	}
	return "X"
}

type checker struct {
	prog     *Program
	generics map[string]*FuncDecl // generic templates by source name
	queue    []*FuncDecl          // functions awaiting body checking
	imports  *Imports
	// importedClasses tracks classes that came from imports: visible for
	// typing, but their inits/methods are compiled by their home module.
	importedClasses map[string]bool
}

// importedFunc resolves a free function from the import set.
func (c *checker) importedFunc(name string) *FuncDecl {
	if c.imports == nil {
		return nil
	}
	return c.imports.Func(name)
}

// classIsImported reports whether name came from imports.
func (c *checker) classIsImported(name string) bool {
	return c.importedClasses[name]
}

func (c *checker) errf(line int, format string, args ...any) error {
	return &Error{File: c.prog.Module, Line: line, Col: 1, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) collect(files []*File) error {
	for _, f := range files {
		for _, cd := range f.Classes {
			if _, dup := c.prog.Classes[cd.Name]; dup {
				return c.errf(cd.Line, "duplicate class %s", cd.Name)
			}
			c.prog.Classes[cd.Name] = cd
		}
	}
	addFunc := func(sym string, fn *FuncDecl) error {
		if _, dup := c.prog.Funcs[sym]; dup {
			return c.errf(fn.Line, "duplicate function %s", sym)
		}
		c.prog.Funcs[sym] = fn
		c.prog.FuncOrder = append(c.prog.FuncOrder, sym)
		c.queue = append(c.queue, fn)
		return nil
	}
	for _, f := range files {
		for _, fn := range f.Funcs {
			if len(fn.Generics) > 0 {
				if _, dup := c.generics[fn.Name]; dup {
					return c.errf(fn.Line, "duplicate generic function %s", fn.Name)
				}
				c.generics[fn.Name] = fn
				continue
			}
			if err := addFunc(fn.Name, fn); err != nil {
				return err
			}
		}
		for _, cd := range f.Classes {
			// Synthesize the memberwise initializer when absent (nil body;
			// SIRGen recognizes it and assigns fields from the parameters).
			ensureMemberwiseInit(cd)
			if err := addFunc(MangleMethod(cd.Name, "init"), cd.Init); err != nil {
				return err
			}
			for _, m := range cd.Methods {
				if len(m.Generics) > 0 {
					return c.errf(m.Line, "generic methods are not supported")
				}
				if err := addFunc(MangleMethod(cd.Name, m.Name), m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (c *checker) checkAll() error {
	for len(c.queue) > 0 {
		fn := c.queue[0]
		c.queue = c.queue[1:]
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

// instantiate specializes a generic template for typeArgs and queues the
// specialized copy for checking. Returns its mangled name.
func (c *checker) instantiate(tmpl *FuncDecl, typeArgs []*Type, line int) (string, error) {
	if len(typeArgs) != len(tmpl.Generics) {
		return "", c.errf(line, "%s expects %d type arguments, got %d",
			tmpl.Name, len(tmpl.Generics), len(typeArgs))
	}
	sym := MangleSpecialization(tmpl.Name, typeArgs)
	if _, done := c.prog.Funcs[sym]; done {
		return sym, nil
	}
	sub := make(map[string]*Type, len(typeArgs))
	for i, g := range tmpl.Generics {
		sub[g] = typeArgs[i]
	}
	inst := CloneFunc(tmpl)
	inst.Name = sym
	inst.Generics = nil
	for i := range inst.Params {
		inst.Params[i].Type = substType(inst.Params[i].Type, sub)
	}
	inst.Ret = substType(inst.Ret, sub)
	substBlock(inst.Body, sub)
	c.prog.Funcs[sym] = inst
	c.prog.FuncOrder = append(c.prog.FuncOrder, sym)
	c.queue = append(c.queue, inst)
	return sym, nil
}

func substType(t *Type, sub map[string]*Type) *Type {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case TGeneric:
		if r, ok := sub[t.Name]; ok {
			return r
		}
		return t
	case TArray:
		return ArrayType(substType(t.Elem, sub))
	case TOptional:
		return OptionalType(substType(t.Elem, sub))
	case TFunc:
		nt := &Type{Kind: TFunc, Throws: t.Throws, Ret: substType(t.Ret, sub)}
		for _, p := range t.Params {
			nt.Params = append(nt.Params, substType(p, sub))
		}
		return nt
	}
	return t
}

// substBlock rewrites type annotations inside a cloned generic body.
func substBlock(b *BlockStmt, sub map[string]*Type) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		substStmt(s, sub)
	}
}

func substStmt(s Stmt, sub map[string]*Type) {
	switch s := s.(type) {
	case *BlockStmt:
		substBlock(s, sub)
	case *VarStmt:
		s.Type = substType(s.Type, sub)
		substExpr(s.Init, sub)
	case *AssignStmt:
		substExpr(s.LHS, sub)
		substExpr(s.RHS, sub)
	case *ExprStmt:
		substExpr(s.E, sub)
	case *IfStmt:
		substExpr(s.Cond, sub)
		substBlock(s.Then, sub)
		if s.Else != nil {
			substStmt(s.Else, sub)
		}
	case *WhileStmt:
		substExpr(s.Cond, sub)
		substBlock(s.Body, sub)
	case *ForStmt:
		substExpr(s.Lo, sub)
		substExpr(s.Hi, sub)
		substBlock(s.Body, sub)
	case *ReturnStmt:
		if s.E != nil {
			substExpr(s.E, sub)
		}
	case *ThrowStmt:
		substExpr(s.E, sub)
	case *DoCatchStmt:
		substBlock(s.Body, sub)
		substBlock(s.Catch, sub)
	}
}

func substExpr(e Expr, sub map[string]*Type) {
	switch e := e.(type) {
	case *UnaryExpr:
		substExpr(e.X, sub)
	case *BinaryExpr:
		substExpr(e.L, sub)
		substExpr(e.R, sub)
	case *CallExpr:
		substExpr(e.Fn, sub)
		for i := range e.TypeArgs {
			e.TypeArgs[i] = substType(e.TypeArgs[i], sub)
		}
		for _, a := range e.Args {
			substExpr(a, sub)
		}
	case *MethodCallExpr:
		substExpr(e.Recv, sub)
		for _, a := range e.Args {
			substExpr(a, sub)
		}
	case *FieldExpr:
		substExpr(e.Recv, sub)
	case *IndexExpr:
		substExpr(e.Recv, sub)
		substExpr(e.Index, sub)
	case *ArrayLit:
		for _, el := range e.Elems {
			substExpr(el, sub)
		}
	case *ClosureExpr:
		for i := range e.Params {
			e.Params[i].Type = substType(e.Params[i].Type, sub)
		}
		e.Ret = substType(e.Ret, sub)
		substBlock(e.Body, sub)
	}
}

// ---- scope and function context ----

type binding struct {
	typ     *Type
	mutable bool
}

type scope struct {
	parent *scope
	vars   map[string]binding
	// closureBoundary marks the frame of a closure body: lookups crossing it
	// become captures.
	closureBoundary bool
}

func (s *scope) define(name string, b binding) { s.vars[name] = b }

type fnCtx struct {
	fn       *FuncDecl
	ret      *Type
	canThrow bool // inside a throws function body or a do-block
	class    *ClassDecl
	loop     int // nesting depth of loops
	closure  *ClosureExpr
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	sc := &scope{vars: make(map[string]binding)}
	var class *ClassDecl
	if fn.Class != "" {
		class = c.prog.Classes[fn.Class]
		if class == nil {
			return c.errf(fn.Line, "unknown class %s", fn.Class)
		}
	}
	for _, p := range fn.Params {
		if err := c.validType(p.Type, fn.Line); err != nil {
			return err
		}
		sc.define(p.Name, binding{typ: p.Type})
	}
	if err := c.validType(fn.Ret, fn.Line); err != nil {
		return err
	}
	ctx := &fnCtx{fn: fn, ret: fn.Ret, canThrow: fn.Throws, class: class}
	if fn.IsInit {
		ctx.ret = VoidType // init returns self implicitly
	}
	if fn.Body == nil {
		return nil // synthesized memberwise initializer
	}
	return c.checkBlock(fn.Body, sc, ctx)
}

func (c *checker) validType(t *Type, line int) error {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case TClass:
		if _, ok := c.prog.Classes[t.Name]; !ok {
			return c.errf(line, "unknown type %s", t.Name)
		}
	case TArray, TOptional:
		return c.validType(t.Elem, line)
	case TFunc:
		for _, p := range t.Params {
			if err := c.validType(p, line); err != nil {
				return err
			}
		}
		return c.validType(t.Ret, line)
	case TGeneric:
		return c.errf(line, "unresolved generic type %s", t.Name)
	}
	return nil
}

func (c *checker) checkBlock(b *BlockStmt, sc *scope, ctx *fnCtx) error {
	inner := &scope{parent: sc, vars: make(map[string]binding)}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, inner, ctx); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope, ctx *fnCtx) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s, sc, ctx)

	case *VarStmt:
		if err := c.checkExpr(s.Init, sc, ctx); err != nil {
			return err
		}
		t := s.Type
		if t == nil {
			t = s.Init.TypeOf()
			if isNilType(t) {
				return c.errf(s.Line, "cannot infer type from nil; annotate %s", s.Name)
			}
			if t.Kind == TVoid {
				return c.errf(s.Line, "cannot bind %s to a Void expression", s.Name)
			}
		} else {
			if err := c.validType(t, s.Line); err != nil {
				return err
			}
			if !assignable(t, s.Init.TypeOf()) {
				return c.errf(s.Line, "cannot assign %s to %s of type %s",
					s.Init.TypeOf(), s.Name, t)
			}
		}
		s.Type = t
		sc.define(s.Name, binding{typ: t, mutable: s.Mutable})
		return nil

	case *AssignStmt:
		if err := c.checkExpr(s.RHS, sc, ctx); err != nil {
			return err
		}
		switch lhs := s.LHS.(type) {
		case *IdentExpr:
			b, _, found := lookup(sc, lhs.Name)
			if !found {
				return c.errf(s.Line, "assignment to undefined variable %s", lhs.Name)
			}
			if !b.mutable {
				return c.errf(s.Line, "cannot assign to let constant %s", lhs.Name)
			}
			if crossesClosure(sc, lhs.Name) {
				return c.errf(s.Line, "cannot assign to captured variable %s (captures are by value)", lhs.Name)
			}
			lhs.SetType(b.typ)
		case *FieldExpr, *IndexExpr:
			if err := c.checkExpr(s.LHS, sc, ctx); err != nil {
				return err
			}
		default:
			return c.errf(s.Line, "invalid assignment target")
		}
		if !assignable(s.LHS.TypeOf(), s.RHS.TypeOf()) {
			return c.errf(s.Line, "cannot assign %s to %s", s.RHS.TypeOf(), s.LHS.TypeOf())
		}
		return nil

	case *ExprStmt:
		return c.checkExpr(s.E, sc, ctx)

	case *IfStmt:
		if err := c.checkExpr(s.Cond, sc, ctx); err != nil {
			return err
		}
		thenScope := &scope{parent: sc, vars: make(map[string]binding)}
		if s.Bind != "" {
			ct := s.Cond.TypeOf()
			if ct.Kind != TOptional {
				return c.errf(s.Line, "if let needs an optional, got %s", ct)
			}
			thenScope.define(s.Bind, binding{typ: ct.Elem})
		} else if s.Cond.TypeOf().Kind != TBool {
			return c.errf(s.Line, "if condition must be Bool, got %s", s.Cond.TypeOf())
		}
		for _, st := range s.Then.Stmts {
			if err := c.checkStmt(st, thenScope, ctx); err != nil {
				return err
			}
		}
		if s.Else != nil {
			return c.checkStmt(s.Else, sc, ctx)
		}
		return nil

	case *WhileStmt:
		if err := c.checkExpr(s.Cond, sc, ctx); err != nil {
			return err
		}
		if s.Cond.TypeOf().Kind != TBool {
			return c.errf(s.Line, "while condition must be Bool, got %s", s.Cond.TypeOf())
		}
		ctx.loop++
		err := c.checkBlock(s.Body, sc, ctx)
		ctx.loop--
		return err

	case *ForStmt:
		if err := c.checkExpr(s.Lo, sc, ctx); err != nil {
			return err
		}
		if err := c.checkExpr(s.Hi, sc, ctx); err != nil {
			return err
		}
		if s.Lo.TypeOf().Kind != TInt || s.Hi.TypeOf().Kind != TInt {
			return c.errf(s.Line, "for range bounds must be Int")
		}
		loopScope := &scope{parent: sc, vars: make(map[string]binding)}
		loopScope.define(s.Var, binding{typ: IntType})
		ctx.loop++
		defer func() { ctx.loop-- }()
		for _, st := range s.Body.Stmts {
			if err := c.checkStmt(st, loopScope, ctx); err != nil {
				return err
			}
		}
		return nil

	case *ReturnStmt:
		want := ctx.ret
		if s.E == nil {
			if want.Kind != TVoid {
				return c.errf(s.Line, "return needs a %s value", want)
			}
			return nil
		}
		if err := c.checkExpr(s.E, sc, ctx); err != nil {
			return err
		}
		if want.Kind == TVoid {
			return c.errf(s.Line, "unexpected return value in Void function")
		}
		if !assignable(want, s.E.TypeOf()) {
			return c.errf(s.Line, "cannot return %s from function returning %s",
				s.E.TypeOf(), want)
		}
		return nil

	case *ThrowStmt:
		if !ctx.canThrow {
			return c.errf(s.Line, "throw outside a throwing context")
		}
		if err := c.checkExpr(s.E, sc, ctx); err != nil {
			return err
		}
		if s.E.TypeOf().Kind != TInt {
			return c.errf(s.Line, "throw takes an Int error code, got %s", s.E.TypeOf())
		}
		return nil

	case *DoCatchStmt:
		saved := ctx.canThrow
		ctx.canThrow = true
		if err := c.checkBlock(s.Body, sc, ctx); err != nil {
			ctx.canThrow = saved
			return err
		}
		ctx.canThrow = saved
		catchScope := &scope{parent: sc, vars: make(map[string]binding)}
		catchScope.define("error", binding{typ: IntType})
		for _, st := range s.Catch.Stmts {
			if err := c.checkStmt(st, catchScope, ctx); err != nil {
				return err
			}
		}
		return nil

	case *BreakStmt:
		if ctx.loop == 0 {
			return c.errf(s.Line, "break outside a loop")
		}
		return nil

	case *ContinueStmt:
		if ctx.loop == 0 {
			return c.errf(s.Line, "continue outside a loop")
		}
		return nil
	}
	return fmt.Errorf("sema: unknown statement %T", s)
}

func lookup(sc *scope, name string) (binding, *scope, bool) {
	for s := sc; s != nil; s = s.parent {
		if b, ok := s.vars[name]; ok {
			return b, s, true
		}
	}
	return binding{}, nil, false
}

// crossesClosure reports whether resolving name from sc crosses a closure
// boundary (i.e. the variable lives outside the current closure).
func crossesClosure(sc *scope, name string) bool {
	crossed := false
	for s := sc; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			return crossed
		}
		if s.closureBoundary {
			crossed = true
		}
	}
	return false
}

func isNilType(t *Type) bool { return t != nil && t.Kind == TOptional && t.Elem == nil }

// assignable reports whether a value of type src may flow into dst.
func assignable(dst, src *Type) bool {
	if dst.Equal(src) {
		return true
	}
	// T -> T?
	if dst.Kind == TOptional && dst.Elem != nil && dst.Elem.Equal(src) {
		return true
	}
	// nil -> T? (for any inner)
	if isNilType(src) && dst.Kind == TOptional {
		return true
	}
	return false
}
