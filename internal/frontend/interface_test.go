package frontend

import "testing"

// digestOf parses one file and returns its interface digest.
func digestOf(t *testing.T, src string) string {
	t.Helper()
	return InterfaceDigest(parse(t, src))
}

const digestBaseSrc = `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) -> Point { return Point(x: p.x + by, y: p.y + by) }
`

// A body-only edit — the incremental-build event the digest exists for —
// must leave the digest unchanged, whether it rewrites statements, renames
// locals, or only adds comments.
func TestInterfaceDigestBodyInvariance(t *testing.T) {
	base := digestOf(t, digestBaseSrc)
	for name, src := range map[string]string{
		"statement rewrite": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return 0 - (self.y + self.x) }
}
func shift(p: Point, by: Int) -> Point { return Point(x: 7, y: p.y) }
`,
		"renamed locals": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { let a = self.x let b = self.y return a * a + b * b }
}
func shift(p: Point, by: Int) -> Point { let q = Point(x: p.x + by, y: p.y + by) return q }
`,
		"comments appended": digestBaseSrc + "\n// trailing comment\n",
	} {
		if got := digestOf(t, src); got != base {
			t.Errorf("%s changed the digest", name)
		}
	}
}

// Any observable signature change must alter the digest: these are exactly
// the edits after which importers must recompile.
func TestInterfaceDigestSignatureSensitivity(t *testing.T) {
	base := digestOf(t, digestBaseSrc)
	for name, src := range map[string]string{
		"renamed func": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shifted(p: Point, by: Int) -> Point { return Point(x: p.x + by, y: p.y + by) }
`,
		"renamed param (argument label)": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, offset: Int) -> Point { return Point(x: p.x + offset, y: p.y + offset) }
`,
		"changed param type": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: String) -> Point { return Point(x: p.x + by.count, y: p.y) }
`,
		"changed return type": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) -> Int { return p.x + by }
`,
		"became throwing": `
class Point {
  var x: Int
  var y: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) throws -> Point { return Point(x: p.x + by, y: p.y + by) }
`,
		"added free func": digestBaseSrc + "\nfunc extra() -> Int { return 1 }\n",
		"added field": `
class Point {
  var x: Int
  var y: Int
  var z: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) -> Point { return Point(x: p.x + by, y: p.y + by, z: 0) }
`,
		"reordered fields": `
class Point {
  var y: Int
  var x: Int
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) -> Point { return Point(y: p.y + by, x: p.x + by) }
`,
		"renamed method": `
class Point {
  var x: Int
  var y: Int
  func dist2() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) -> Point { return Point(x: p.x + by, y: p.y + by) }
`,
		"explicit init over memberwise": `
class Point {
  var x: Int
  var y: Int
  init(scale: Int) { self.x = scale self.y = scale }
  func dist() -> Int { return self.x * self.x + self.y * self.y }
}
func shift(p: Point, by: Int) -> Point { return Point(scale: by) }
`,
	} {
		if got := digestOf(t, src); got == base {
			t.Errorf("%s did not change the digest", name)
		}
	}
}

// Generic free functions never cross module boundaries (they are compiled
// per instantiation inside their own module), so they are not interface.
func TestInterfaceDigestExcludesGenericFuncs(t *testing.T) {
	withGeneric := digestBaseSrc + "\nfunc twice<T>(v: T) -> T { return v }\n"
	if digestOf(t, withGeneric) != digestOf(t, digestBaseSrc) {
		t.Fatal("generic free func changed the digest; generics never cross module boundaries")
	}
}

// The digest must not depend on which file of the module declares what, nor
// on file order: Imports exposes a flat module-wide namespace.
func TestInterfaceDigestFileOrderInvariance(t *testing.T) {
	a := parse(t, "func alpha(x: Int) -> Int { return x }\n")
	b := parse(t, "class Box { var v: Int }\nfunc beta() -> Int { return 2 }\n")
	if InterfaceDigest(a, b) != InterfaceDigest(b, a) {
		t.Fatal("digest depends on file order")
	}
}

// A class with no explicit initializer must hash identically before and
// after ensureMemberwiseInit synthesizes one: llir cache keys are computed
// from freshly parsed files, whose ASTs may or may not have been through
// semantic analysis yet.
func TestInterfaceDigestMemberwiseInitNormalization(t *testing.T) {
	const src = `
class Box {
  var v: Int
  var tag: String
}
`
	fresh := digestOf(t, src)
	analyzed := parse(t, src)
	if _, err := Check("M", analyzed); err != nil {
		t.Fatal(err)
	}
	if analyzed.Classes[0].Init == nil {
		t.Fatal("Check did not synthesize a memberwise init; the test no longer exercises normalization")
	}
	if InterfaceDigest(analyzed) != fresh {
		t.Fatal("digest changed after memberwise-init synthesis")
	}
}

// The digest is part of persistent cache keys, so it must be stable across
// process restarts and releases: pin it. If this golden value changes, bump
// artifact.SchemaVersion — old cache entries were keyed with the old digest.
func TestInterfaceDigestGolden(t *testing.T) {
	const want = "000bf78af523dbb020883568583ef95fcc455fc2a432f8082085b256af6810eb"
	if got := digestOf(t, digestBaseSrc); got != want {
		t.Fatalf("digest drifted: got %s want %s", got, want)
	}
}
