package frontend

import "fmt"

// Parser builds the AST for one SwiftLite file.
type Parser struct {
	file string
	toks []Token
	pos  int

	// noBraceDepth > 0 while parsing if/while/for headers, where a bare `{`
	// belongs to the statement body, not to a closure literal.
	noBraceDepth int
}

// ParseFile lexes and parses src.
func ParseFile(file, src string) (*File, error) {
	toks, err := NewLexer(file, src).Lex()
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token        { return p.toks[p.pos] }
func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return p.cur(), p.errf("expected %q, found %s", tokNames[k], p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokFunc:
			fn, err := p.parseFunc("", false)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		case TokClass:
			cd, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			f.Classes = append(f.Classes, cd)
		default:
			return nil, p.errf("expected func or class at top level, found %s", p.cur())
		}
	}
	return f, nil
}

func (p *Parser) parseFunc(class string, isInit bool) (*FuncDecl, error) {
	fn := &FuncDecl{Class: class, IsInit: isInit, Line: p.cur().Line}
	if isInit {
		if _, err := p.expect(TokInit); err != nil {
			return nil, err
		}
		fn.Name = "init"
	} else {
		if _, err := p.expect(TokFunc); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn.Name = name.Text
	}
	if p.accept(TokLt) {
		for {
			g, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			fn.Generics = append(fn.Generics, g.Text)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokGt); err != nil {
			return nil, err
		}
	}
	params, err := p.parseParamList(fn.Generics)
	if err != nil {
		return nil, err
	}
	fn.Params = params
	if p.accept(TokThrows) {
		fn.Throws = true
	}
	fn.Ret = VoidType
	if p.accept(TokArrow) {
		rt, err := p.parseType(fn.Generics)
		if err != nil {
			return nil, err
		}
		fn.Ret = rt
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseParamList(generics []string) ([]Param, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []Param
	for !p.at(TokRParen) {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseType(generics)
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: name.Text, Type: ty})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) parseClass() (*ClassDecl, error) {
	cd := &ClassDecl{Line: p.cur().Line}
	if _, err := p.expect(TokClass); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	cd.Name = name.Text
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for !p.at(TokRBrace) {
		switch p.cur().Kind {
		case TokVar, TokLet:
			p.advance()
			fname, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			ty, err := p.parseType(nil)
			if err != nil {
				return nil, err
			}
			cd.Fields = append(cd.Fields, FieldDecl{Name: fname.Text, Type: ty})
		case TokInit:
			if cd.Init != nil {
				return nil, p.errf("class %s has multiple initializers", cd.Name)
			}
			fn, err := p.parseFunc(cd.Name, true)
			if err != nil {
				return nil, err
			}
			cd.Init = fn
		case TokFunc:
			fn, err := p.parseFunc(cd.Name, false)
			if err != nil {
				return nil, err
			}
			cd.Methods = append(cd.Methods, fn)
		default:
			return nil, p.errf("expected field, init, or method in class %s, found %s", cd.Name, p.cur())
		}
	}
	_, err = p.expect(TokRBrace)
	return cd, err
}

func (p *Parser) parseType(generics []string) (*Type, error) {
	var base *Type
	switch {
	case p.at(TokIdent):
		name := p.advance().Text
		switch name {
		case "Int":
			base = IntType
		case "Bool":
			base = BoolType
		case "String":
			base = StringType
		case "Void":
			base = VoidType
		default:
			if contains(generics, name) {
				base = &Type{Kind: TGeneric, Name: name}
			} else {
				base = ClassType(name)
			}
		}
	case p.at(TokLBracket):
		p.advance()
		elem, err := p.parseType(generics)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		base = ArrayType(elem)
	case p.at(TokLParen):
		p.advance()
		ft := &Type{Kind: TFunc, Ret: VoidType}
		for !p.at(TokRParen) {
			pt, err := p.parseType(generics)
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, pt)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if p.accept(TokThrows) {
			ft.Throws = true
		}
		if _, err := p.expect(TokArrow); err != nil {
			return nil, err
		}
		rt, err := p.parseType(generics)
		if err != nil {
			return nil, err
		}
		ft.Ret = rt
		base = ft
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}
	for p.accept(TokQuestion) {
		base = OptionalType(base)
	}
	return base, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// ---- Statements ----

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unterminated block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, st)
	}
	_, err := p.expect(TokRBrace)
	return blk, err
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLet, TokVar:
		mutable := p.cur().Kind == TokVar
		line := p.advance().Line
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		var ty *Type
		if p.accept(TokColon) {
			ty, err = p.parseType(nil)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.Text, Mutable: mutable, Type: ty, Init: init, Line: line}, nil

	case TokIf:
		return p.parseIf()

	case TokWhile:
		line := p.advance().Line
		p.noBraceDepth++
		cond, err := p.parseExpr()
		p.noBraceDepth--
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil

	case TokFor:
		line := p.advance().Line
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokIn); err != nil {
			return nil, err
		}
		p.noBraceDepth++
		lo, err := p.parseExpr()
		if err != nil {
			p.noBraceDepth--
			return nil, err
		}
		if _, err := p.expect(TokRangeUpto); err != nil {
			p.noBraceDepth--
			return nil, err
		}
		hi, err := p.parseExpr()
		p.noBraceDepth--
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: v.Text, Lo: lo, Hi: hi, Body: body, Line: line}, nil

	case TokReturn:
		line := p.advance().Line
		// A bare return is followed by a token that cannot start an
		// expression in statement position.
		if p.at(TokRBrace) || p.at(TokEOF) {
			return &ReturnStmt{Line: line}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{E: e, Line: line}, nil

	case TokThrow:
		line := p.advance().Line
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ThrowStmt{E: e, Line: line}, nil

	case TokDo:
		line := p.advance().Line
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokCatch); err != nil {
			return nil, err
		}
		catch, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &DoCatchStmt{Body: body, Catch: catch, Line: line}, nil

	case TokBreak:
		line := p.advance().Line
		return &BreakStmt{Line: line}, nil

	case TokContinue:
		line := p.advance().Line
		return &ContinueStmt{Line: line}, nil
	}

	// Assignment or expression statement.
	line := p.cur().Line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokAssign) {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Line: line}, nil
	}
	return &ExprStmt{E: lhs, Line: line}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	line := p.advance().Line // consume `if`
	var bind string
	if p.at(TokLet) {
		p.advance()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		bind = name.Text
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
	}
	p.noBraceDepth++
	cond, err := p.parseExpr()
	p.noBraceDepth--
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Bind: bind, Cond: cond, Then: then, Line: line}
	if p.accept(TokElse) {
		if p.at(TokIf) {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// ---- Expressions ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOr) {
		line := p.advance().Line
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: TokOr, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(TokAnd) {
		line := p.advance().Line
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: TokAnd, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		op := p.cur().Kind
		line := p.advance().Line
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r, Line: line}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.cur().Kind
		line := p.advance().Line
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokPercent) {
		op := p.cur().Kind
		line := p.advance().Line
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus, TokNot:
		op := p.cur().Kind
		line := p.advance().Line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Line: line}, nil
	case TokTry:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch call := x.(type) {
		case *CallExpr:
			call.Try = true
		case *MethodCallExpr:
			call.Try = true
		default:
			return nil, p.errf("try must precede a call")
		}
		return x, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLParen:
			line := p.cur().Line
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			e = &CallExpr{Fn: e, Args: args, Line: line}
		case TokLBracket:
			line := p.advance().Line
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{Recv: e, Index: idx, Line: line}
		case TokDot:
			p.advance()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if p.at(TokLParen) {
				line := p.cur().Line
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				e = &MethodCallExpr{Recv: e, Method: name.Text, Args: args, Line: line}
			} else {
				e = &FieldExpr{Recv: e, Field: name.Text, Line: name.Line}
			}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	saveNoBrace := p.noBraceDepth
	p.noBraceDepth = 0 // closures are fine inside parentheses
	defer func() { p.noBraceDepth = saveNoBrace }()
	for !p.at(TokRParen) {
		// Optional argument label: `ident:` followed by an expression.
		if p.at(TokIdent) && p.toks[p.pos+1].Kind == TokColon {
			p.advance()
			p.advance()
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		return &IntLit{Value: t.Int, Line: t.Line}, nil
	case TokTrue, TokFalse:
		p.advance()
		return &BoolLit{Value: t.Kind == TokTrue, Line: t.Line}, nil
	case TokString:
		p.advance()
		return &StringLit{Value: t.Text, Line: t.Line}, nil
	case TokNil:
		p.advance()
		return &NilLit{Line: t.Line}, nil
	case TokSelf:
		p.advance()
		return &SelfExpr{Line: t.Line}, nil
	case TokIdent:
		p.advance()
		e := &IdentExpr{Name: t.Text, Line: t.Line}
		// Explicit generic instantiation: ident<T, U>(...). Backtrack if the
		// angle bracket turns out to be a comparison.
		if p.at(TokLt) {
			save := p.pos
			if typeArgs, ok := p.tryTypeArgs(); ok && p.at(TokLParen) {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				return &CallExpr{Fn: e, TypeArgs: typeArgs, Args: args, Line: t.Line}, nil
			}
			p.pos = save
		}
		return e, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(TokRParen)
		return e, err
	case TokLBracket:
		p.advance()
		lit := &ArrayLit{Line: t.Line}
		for !p.at(TokRBracket) {
			el, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lit.Elems = append(lit.Elems, el)
			if !p.accept(TokComma) {
				break
			}
		}
		_, err := p.expect(TokRBracket)
		return lit, err
	case TokLBrace:
		if p.noBraceDepth > 0 {
			return nil, p.errf("closure literal not allowed here")
		}
		return p.parseClosure()
	}
	return nil, p.errf("expected expression, found %s", t)
}

// tryTypeArgs attempts to parse `<T, U>`; on failure the caller restores pos.
func (p *Parser) tryTypeArgs() ([]*Type, bool) {
	if !p.accept(TokLt) {
		return nil, false
	}
	var args []*Type
	for {
		ty, err := p.parseType(nil)
		if err != nil {
			return nil, false
		}
		args = append(args, ty)
		if !p.accept(TokComma) {
			break
		}
	}
	if !p.accept(TokGt) {
		return nil, false
	}
	return args, true
}

func (p *Parser) parseClosure() (Expr, error) {
	line := p.cur().Line
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	cl := &ClosureExpr{Line: line, Ret: VoidType}
	params, err := p.parseParamList(nil)
	if err != nil {
		return nil, err
	}
	cl.Params = params
	if p.accept(TokArrow) {
		rt, err := p.parseType(nil)
		if err != nil {
			return nil, err
		}
		cl.Ret = rt
	}
	if _, err := p.expect(TokIn); err != nil {
		return nil, err
	}
	body := &BlockStmt{}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unterminated closure")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body.Stmts = append(body.Stmts, st)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	cl.Body = body
	return cl, nil
}
