package frontend

import (
	"fmt"
	"strconv"
)

// Lexer tokenizes SwiftLite source.
type Lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file names diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, ending with a TokEOF token.
func (lx *Lexer) Lex() ([]Token, error) {
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &Error{File: lx.file, Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			depth := 1
			for lx.pos < len(lx.src) && depth > 0 {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					depth--
				} else if lx.peek() == '/' && lx.peek2() == '*' {
					lx.advance()
					lx.advance()
					depth++
				} else {
					lx.advance()
				}
			}
			if depth > 0 {
				return lx.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *Lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.pos]
		if kw, ok := keywords[word]; ok {
			tok.Kind = kw
			tok.Text = word
		} else {
			tok.Kind = TokIdent
			tok.Text = word
		}
		return tok, nil

	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		v, err := strconv.ParseInt(lx.src[start:lx.pos], 10, 64)
		if err != nil {
			return tok, lx.errf("bad integer literal %q", lx.src[start:lx.pos])
		}
		tok.Kind = TokInt
		tok.Int = v
		return tok, nil

	case c == '"':
		lx.advance()
		var out []byte
		for {
			if lx.pos >= len(lx.src) {
				return tok, lx.errf("unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return tok, lx.errf("unterminated escape")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					out = append(out, '\n')
				case 't':
					out = append(out, '\t')
				case '\\':
					out = append(out, '\\')
				case '"':
					out = append(out, '"')
				default:
					return tok, lx.errf("unknown escape \\%c", esc)
				}
				continue
			}
			out = append(out, ch)
		}
		tok.Kind = TokString
		tok.Text = string(out)
		return tok, nil
	}

	// Operators and punctuation.
	two := func(kind TokKind) (Token, error) {
		lx.advance()
		lx.advance()
		tok.Kind = kind
		return tok, nil
	}
	one := func(kind TokKind) (Token, error) {
		lx.advance()
		tok.Kind = kind
		return tok, nil
	}
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ',':
		return one(TokComma)
	case ':':
		return one(TokColon)
	case '?':
		return one(TokQuestion)
	case '.':
		if lx.peek2() == '.' {
			// "..<"
			if lx.pos+2 < len(lx.src) && lx.src[lx.pos+2] == '<' {
				lx.advance()
				lx.advance()
				lx.advance()
				tok.Kind = TokRangeUpto
				return tok, nil
			}
			return tok, lx.errf("unexpected '..'")
		}
		return one(TokDot)
	case '-':
		if lx.peek2() == '>' {
			return two(TokArrow)
		}
		return one(TokMinus)
	case '+':
		return one(TokPlus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		if lx.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if lx.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '<':
		if lx.peek2() == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if lx.peek2() == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	case '&':
		if lx.peek2() == '&' {
			return two(TokAnd)
		}
	case '|':
		if lx.peek2() == '|' {
			return two(TokOr)
		}
	}
	return tok, lx.errf("unexpected character %q", string(c))
}
