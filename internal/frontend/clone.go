package frontend

// CloneFunc deep-copies a function declaration. Generic specialization
// type-checks each instantiation on its own copy of the body, so checked
// types never leak between instantiations.
func CloneFunc(f *FuncDecl) *FuncDecl {
	nf := *f
	nf.Params = append([]Param(nil), f.Params...)
	nf.Generics = append([]string(nil), f.Generics...)
	nf.Body = cloneBlock(f.Body)
	return &nf
}

func cloneBlock(b *BlockStmt) *BlockStmt {
	if b == nil {
		return nil
	}
	nb := &BlockStmt{Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		nb.Stmts[i] = cloneStmt(s)
	}
	return nb
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *BlockStmt:
		return cloneBlock(s)
	case *VarStmt:
		n := *s
		n.Init = cloneExpr(s.Init)
		return &n
	case *AssignStmt:
		n := *s
		n.LHS = cloneExpr(s.LHS)
		n.RHS = cloneExpr(s.RHS)
		return &n
	case *ExprStmt:
		n := *s
		n.E = cloneExpr(s.E)
		return &n
	case *IfStmt:
		n := *s
		n.Cond = cloneExpr(s.Cond)
		n.Then = cloneBlock(s.Then)
		if s.Else != nil {
			n.Else = cloneStmt(s.Else)
		}
		return &n
	case *WhileStmt:
		n := *s
		n.Cond = cloneExpr(s.Cond)
		n.Body = cloneBlock(s.Body)
		return &n
	case *ForStmt:
		n := *s
		n.Lo = cloneExpr(s.Lo)
		n.Hi = cloneExpr(s.Hi)
		n.Body = cloneBlock(s.Body)
		return &n
	case *ReturnStmt:
		n := *s
		if s.E != nil {
			n.E = cloneExpr(s.E)
		}
		return &n
	case *ThrowStmt:
		n := *s
		n.E = cloneExpr(s.E)
		return &n
	case *DoCatchStmt:
		n := *s
		n.Body = cloneBlock(s.Body)
		n.Catch = cloneBlock(s.Catch)
		return &n
	case *BreakStmt:
		n := *s
		return &n
	case *ContinueStmt:
		n := *s
		return &n
	}
	panic("frontend: unknown statement in clone")
}

func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		n := *e
		n.exprBase = exprBase{}
		return &n
	case *BoolLit:
		n := *e
		n.exprBase = exprBase{}
		return &n
	case *StringLit:
		n := *e
		n.exprBase = exprBase{}
		return &n
	case *NilLit:
		n := *e
		n.exprBase = exprBase{}
		return &n
	case *IdentExpr:
		n := *e
		n.exprBase = exprBase{}
		return &n
	case *SelfExpr:
		n := *e
		n.exprBase = exprBase{}
		return &n
	case *UnaryExpr:
		n := *e
		n.exprBase = exprBase{}
		n.X = cloneExpr(e.X)
		return &n
	case *BinaryExpr:
		n := *e
		n.exprBase = exprBase{}
		n.L = cloneExpr(e.L)
		n.R = cloneExpr(e.R)
		return &n
	case *CallExpr:
		n := *e
		n.exprBase = exprBase{}
		n.Fn = cloneExpr(e.Fn)
		n.TypeArgs = append([]*Type(nil), e.TypeArgs...)
		n.Args = cloneExprs(e.Args)
		return &n
	case *MethodCallExpr:
		n := *e
		n.exprBase = exprBase{}
		n.Recv = cloneExpr(e.Recv)
		n.Args = cloneExprs(e.Args)
		return &n
	case *FieldExpr:
		n := *e
		n.exprBase = exprBase{}
		n.Recv = cloneExpr(e.Recv)
		return &n
	case *IndexExpr:
		n := *e
		n.exprBase = exprBase{}
		n.Recv = cloneExpr(e.Recv)
		n.Index = cloneExpr(e.Index)
		return &n
	case *ArrayLit:
		n := *e
		n.exprBase = exprBase{}
		n.Elems = cloneExprs(e.Elems)
		return &n
	case *ClosureExpr:
		n := *e
		n.exprBase = exprBase{}
		n.Params = append([]Param(nil), e.Params...)
		n.Body = cloneBlock(e.Body)
		n.Captures = append([]string(nil), e.Captures...)
		return &n
	}
	panic("frontend: unknown expression in clone")
}

func cloneExprs(es []Expr) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = cloneExpr(e)
	}
	return out
}
