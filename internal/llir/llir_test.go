package llir

import (
	"strings"
	"testing"

	"outliner/internal/frontend"
	"outliner/internal/sir"
)

func lower(t *testing.T, src string) *Module {
	t.Helper()
	f, err := frontend.ParseFile("test.sl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := frontend.Check("M", f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	sm, err := sir.Generate(prog)
	if err != nil {
		t.Fatalf("sirgen: %v", err)
	}
	m, err := FromSIR(sm)
	if err != nil {
		t.Fatalf("FromSIR: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	return m
}

func countOp(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestSSAStraightLine(t *testing.T) {
	m := lower(t, `func f(a: Int, b: Int) -> Int { return a * b + a }`)
	f := m.Func("f")
	if countOp(f, Phi) != 0 {
		t.Errorf("straight-line code must have no phis:\n%s", f)
	}
	if countOp(f, Bin) != 2 {
		t.Errorf("expected 2 binops:\n%s", f)
	}
}

// A variable assigned in both branches of an if and used after must become a
// phi at the join.
func TestSSADiamondPhi(t *testing.T) {
	m := lower(t, `
func f(c: Bool) -> Int {
  var x = 0
  if c { x = 1 } else { x = 2 }
  return x
}
`)
	f := m.Func("f")
	if n := countOp(f, Phi); n != 1 {
		t.Errorf("expected exactly 1 phi, got %d:\n%s", n, f)
	}
}

// Loop-carried variables become phis in the loop header.
func TestSSALoopPhi(t *testing.T) {
	m := lower(t, `
func sum(n: Int) -> Int {
  var total = 0
  for i in 0 ..< n { total = total + i }
  return total
}
`)
	f := m.Func("sum")
	if n := countOp(f, Phi); n < 2 { // total and i
		t.Errorf("expected >=2 loop phis, got %d:\n%s", n, f)
	}
}

// Variables assigned identically on all paths need no phi (trivial phi
// removal).
func TestSSATrivialPhiRemoved(t *testing.T) {
	m := lower(t, `
func f(c: Bool) -> Int {
  let x = 7
  if c { print(1) } else { print(2) }
  return x
}
`)
	f := m.Func("f")
	if n := countOp(f, Phi); n != 0 {
		t.Errorf("trivial phi not removed (%d):\n%s", n, f)
	}
}

func TestRefcountingLowersToRuntimeCalls(t *testing.T) {
	m := lower(t, `
class A { var x: Int }
func main() {
  let a = A(x: 1)
  let b = a
  print(b.x)
}
`)
	f := m.Func("main")
	retains, releases := 0, 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == Call && in.Sym == RTRetain {
				retains++
			}
			if in.Op == Call && in.Sym == RTRelease {
				releases++
			}
		}
	}
	if retains < 1 || releases < 2 {
		t.Errorf("retains=%d releases=%d:\n%s", retains, releases, f)
	}
}

func TestThrowingFunctionReturnsErrorChannel(t *testing.T) {
	m := lower(t, `
func risky(x: Int) throws -> Int {
  if x < 0 { throw 9 }
  return x
}
`)
	f := m.Func("risky")
	if !f.Throws {
		t.Fatal("risky must be marked throws")
	}
	// Every Ret must carry an error channel value.
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == Ret && in.B == None {
				t.Errorf("ret without error channel in throwing function:\n%s", f)
			}
		}
	}
}

func TestDCE(t *testing.T) {
	m := lower(t, `
func f(a: Int) -> Int {
  let unusedButPure = a * 99
  return a + 1
}
`)
	f := m.Func("f")
	before := f.NumInsts()
	DCE(f)
	after := f.NumInsts()
	if after >= before {
		t.Errorf("DCE removed nothing: %d -> %d\n%s", before, after, f)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The multiply must be gone.
	if countOp(f, Bin) != 1 {
		t.Errorf("dead multiply survived:\n%s", f)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := lower(t, `
func f() {
  print(42)
}
`)
	f := m.Func("f")
	DCE(f)
	calls := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == Call {
				calls++
			}
		}
	}
	if calls != 1 {
		t.Errorf("DCE must keep calls:\n%s", f)
	}
}

func TestSimplifyCFG(t *testing.T) {
	m := lower(t, `
func f(c: Bool) -> Int {
  if c { return 1 }
  return 2
}
`)
	f := m.Func("f")
	SimplifyCFG(f)
	DCE(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after simplify: %v\n%s", err, f)
	}
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Label, "dead") {
			t.Errorf("dead block survived:\n%s", f)
		}
	}
}

func TestMergeFunctions(t *testing.T) {
	m := lower(t, `
func f1(a: Int) -> Int { return a * 2 + 1 }
func f2(b: Int) -> Int { return b * 2 + 1 }
func g(x: Int) -> Int { return x * 3 }
func main() {
  print(f1(a: 1))
  print(f2(b: 2))
  print(g(x: 3))
}
`)
	before := len(m.Funcs)
	stats := MergeFunctions(m)
	if stats.Removed != 1 || stats.Groups != 1 {
		t.Fatalf("stats = %+v, want 1 group / 1 removed", stats)
	}
	if len(m.Funcs) != before-1 {
		t.Fatalf("funcs %d -> %d", before, len(m.Funcs))
	}
	// All call sites must now target the representative (f1 by name order).
	main := m.Func("main")
	for _, b := range main.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == Call && in.Sym == "f2" {
				t.Error("call to removed f2 survived")
			}
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFunctionsKeepsDifferent(t *testing.T) {
	m := lower(t, `
func f1(a: Int) -> Int { return a * 2 }
func f2(a: Int) -> Int { return a * 3 }
`)
	stats := MergeFunctions(m)
	if stats.Removed != 0 {
		t.Fatalf("merged functions that differ: %+v", stats)
	}
}

func TestRunDefaultPassesPreservesVerify(t *testing.T) {
	m := lower(t, `
class Node { var v: Int
  var next: Node? }
func length(head: Node?) -> Int {
  var n = 0
  var cur = head
  while cur != nil {
    if let c = cur { n = n + 1 cur = c.next }
  }
  return n
}
func main() {
  let a = Node(v: 1, next: nil)
  print(length(head: a))
}
`)
	RunDefaultPasses(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after passes: %v\n%s", err, m)
	}
}

func TestFMSAMergesConstantVariants(t *testing.T) {
	m := lower(t, `
func v1(a: Int) -> Int {
  var acc = a
  for i in 0 ..< 4 { acc = acc + i * 3 }
  return acc + 100
}
func v2(a: Int) -> Int {
  var acc = a
  for i in 0 ..< 4 { acc = acc + i * 3 }
  return acc + 200
}
func v3(a: Int) -> Int {
  var acc = a
  for i in 0 ..< 4 { acc = acc + i * 3 }
  return acc + 300
}
func main() {
  print(v1(a: 1) + v2(a: 2) + v3(a: 3))
}
`)
	for _, f := range m.Funcs {
		SimplifyCFG(f)
		DCE(f)
	}
	before := len(m.Funcs)
	stats := MergeBySequenceAlignment(m)
	if stats.Groups != 1 || stats.Removed != 2 {
		t.Fatalf("stats = %+v, want 1 group / net 2 removed", stats)
	}
	if len(m.Funcs) != before-2 {
		t.Fatalf("funcs %d -> %d", before, len(m.Funcs))
	}
	merged := m.Func("v1$fmsa")
	if merged == nil {
		t.Fatal("merged function missing")
	}
	if merged.NumParams != 2 { // a + the differing constant
		t.Errorf("merged params = %d, want 2", merged.NumParams)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after FMSA: %v\n%s", err, merged)
	}
	// Call sites in main must pass the constant.
	calls := 0
	for _, b := range m.Func("main").Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == Call && in.Sym == "v1$fmsa" {
				calls++
				if len(in.Args) != 2 {
					t.Errorf("call args = %d, want 2", len(in.Args))
				}
			}
		}
	}
	if calls != 3 {
		t.Errorf("rewired calls = %d, want 3", calls)
	}
}

func TestFMSASkipsAddressTaken(t *testing.T) {
	m := lower(t, `
func w1(a: Int) -> Int { return a * 2 + 11 + a * 3 - 4 + a }
func w2(a: Int) -> Int { return a * 2 + 22 + a * 3 - 4 + a }
func use(f: (Int) -> Int) -> Int { return f(1) }
func main() {
  print(use(f: w1))
  print(w2(a: 5))
}
`)
	// w1 is address-taken (through its thunk's GlobalAddr chain the thunk
	// is; w1 itself is called from the thunk). Either way, FMSA must keep
	// behaviour: run it and verify the module still checks out.
	MergeBySequenceAlignment(m)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFunctionsKeeping(t *testing.T) {
	m := lower(t, `
func f1(a: Int) -> Int { return a * 2 + 1 }
func f2(b: Int) -> Int { return b * 2 + 1 }
func main() {
  print(f1(a: 1))
  print(f2(b: 2))
}
`)
	// f2 is referenced from another module: it must survive, and — being
	// the preferred representative — absorb f1.
	stats := MergeFunctionsKeeping(m, map[string]bool{"f2": true})
	if stats.Removed != 1 {
		t.Fatalf("stats = %+v, want 1 removed", stats)
	}
	if m.Func("f2") == nil {
		t.Fatal("externally referenced f2 was deleted")
	}
	if m.Func("f1") != nil {
		t.Fatal("module-local duplicate f1 survived")
	}
	for _, b := range m.Func("main").Blocks {
		for i := range b.Insts {
			if in := &b.Insts[i]; in.Op == Call && in.Sym == "f1" {
				t.Error("call to removed f1 survived")
			}
		}
	}

	// Both duplicates externally referenced: nothing may be deleted.
	m2 := lower(t, `
func g1(a: Int) -> Int { return a * 2 + 1 }
func g2(b: Int) -> Int { return b * 2 + 1 }
func main() { print(g1(a: 1) + g2(b: 2)) }
`)
	stats = MergeFunctionsKeeping(m2, map[string]bool{"g1": true, "g2": true})
	if stats.Removed != 0 || m2.Func("g1") == nil || m2.Func("g2") == nil {
		t.Fatalf("kept functions merged anyway: %+v", stats)
	}
}

func TestFMSAKeepsExternallyReferenced(t *testing.T) {
	m := lower(t, `
func v1(a: Int) -> Int {
  var acc = a
  for i in 0 ..< 4 { acc = acc + i * 3 }
  return acc + 100
}
func v2(a: Int) -> Int {
  var acc = a
  for i in 0 ..< 4 { acc = acc + i * 3 }
  return acc + 200
}
func main() { print(v1(a: 1) + v2(a: 2)) }
`)
	for _, f := range m.Funcs {
		SimplifyCFG(f)
		DCE(f)
	}
	// v2 is called from another module; FMSA deletes every group member it
	// merges, so v2 must not participate at all.
	MergeBySequenceAlignmentKeeping(m, map[string]bool{"v2": true})
	if m.Func("v2") == nil {
		t.Fatal("externally referenced v2 was deleted")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
