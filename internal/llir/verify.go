package llir

import "fmt"

// Verify checks SSA structural invariants:
//
//   - blocks are non-empty, end in exactly one terminator, labels unique,
//   - branch targets resolve,
//   - phis appear only at block starts and cover exactly the predecessors,
//   - every value is defined exactly once.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks one function.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("llir: @%s: no blocks", f.Name)
	}
	labels := make(map[string]bool)
	for _, b := range f.Blocks {
		if labels[b.Label] {
			return fmt.Errorf("llir: @%s: duplicate label %s", f.Name, b.Label)
		}
		labels[b.Label] = true
	}
	defs := make(map[Value]int)
	for i := 0; i < f.NumParams; i++ {
		defs[f.Param(i)]++
	}
	preds := f.Preds()
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("llir: @%s: empty block %s", f.Name, b.Label)
		}
		inPhis := true
		for i := range b.Insts {
			in := &b.Insts[i]
			isLast := i == len(b.Insts)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("llir: @%s/%s: bad terminator placement at %d (%s)",
					f.Name, b.Label, i, in)
			}
			if in.Op == Phi {
				if !inPhis {
					return fmt.Errorf("llir: @%s/%s: phi after non-phi", f.Name, b.Label)
				}
				want := make(map[string]bool)
				for _, p := range preds[b.Label] {
					want[p] = true
				}
				if len(in.Incomings) != len(want) {
					return fmt.Errorf("llir: @%s/%s: phi has %d incomings, %d preds",
						f.Name, b.Label, len(in.Incomings), len(want))
				}
				for _, inc := range in.Incomings {
					if !want[inc.Pred] {
						return fmt.Errorf("llir: @%s/%s: phi incoming from non-pred %s",
							f.Name, b.Label, inc.Pred)
					}
				}
			} else {
				inPhis = false
			}
			if in.Dst != None {
				defs[in.Dst]++
			}
			if in.Op == Call && in.ErrDst != None {
				defs[in.ErrDst]++
			}
			switch in.Op {
			case Br:
				if !labels[in.Sym] {
					return fmt.Errorf("llir: @%s/%s: br to unknown %s", f.Name, b.Label, in.Sym)
				}
			case CondBr:
				if !labels[in.Sym] || !labels[in.Sym2] {
					return fmt.Errorf("llir: @%s/%s: condbr to unknown label", f.Name, b.Label)
				}
			}
		}
	}
	for v, n := range defs {
		if n > 1 {
			return fmt.Errorf("llir: @%s: value %%%d defined %d times", f.Name, v, n)
		}
	}
	return nil
}
