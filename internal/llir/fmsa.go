package llir

import (
	"fmt"
	"sort"
)

// FMSAStats reports what MergeBySequenceAlignment did.
type FMSAStats struct {
	Groups      int
	Removed     int
	ParamsAdded int
}

const (
	fmsaMinBodyInsts = 8 // merging tiny bodies costs more at call sites than it saves
	fmsaMaxExtraArgs = 3
)

// MergeBySequenceAlignment is the FMSA-lite pass (Table I row 4): functions
// whose bodies align perfectly except for integer constants are merged into
// one parameterized function, and call sites pass the constants. This is a
// deliberately restricted version of "function merging by sequence
// alignment" — full FMSA also tolerates insertions/deletions; the paper
// measured the full version at ~2% savings with an hour of compile time, so
// the cheap exact-alignment core is the part worth having.
func MergeBySequenceAlignment(m *Module) FMSAStats {
	return MergeBySequenceAlignmentKeeping(m, nil)
}

// MergeBySequenceAlignmentKeeping is MergeBySequenceAlignment with external
// linkage: functions named in keep may be referenced from outside the
// module, and FMSA deletes every group member in favour of a freshly built
// parameterized function, so kept functions are excluded from merging
// altogether (like address-taken ones).
func MergeBySequenceAlignmentKeeping(m *Module, keep map[string]bool) FMSAStats {
	var stats FMSAStats

	addressTaken := make(map[string]bool)
	callerCount := make(map[string]int)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.Op == GlobalAddr {
					addressTaken[in.Sym] = true
				}
				if in.Op == Call {
					callerCount[in.Sym]++
				}
			}
		}
	}

	byShape := make(map[string][]*Func)
	var shapes []string
	for _, f := range m.Funcs {
		if f.Name == "main" || addressTaken[f.Name] || keep[f.Name] || f.NumInsts() < fmsaMinBodyInsts {
			continue
		}
		h := hashFuncShape(f)
		if len(byShape[h]) == 0 {
			shapes = append(shapes, h)
		}
		byShape[h] = append(byShape[h], f)
	}
	sort.Strings(shapes)

	type rewrite struct {
		from   string
		to     string
		consts []int64 // extra trailing arguments
	}
	rewrites := make(map[string]rewrite)

	for _, h := range shapes {
		group := byShape[h]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].Name < group[j].Name })
		rep := group[0]
		repConsts := constSites(rep)

		// Which constant sites differ across the group?
		differs := make([]bool, len(repConsts))
		ok := true
		memberConsts := make([][]int64, len(group))
		memberConsts[0] = repConsts
		for gi, g := range group[1:] {
			cs := constSites(g)
			if len(cs) != len(repConsts) {
				ok = false
				break
			}
			memberConsts[gi+1] = cs
			for i := range cs {
				if cs[i] != repConsts[i] {
					differs[i] = true
				}
			}
		}
		if !ok {
			continue
		}
		nDiff := 0
		for _, d := range differs {
			if d {
				nDiff++
			}
		}
		if nDiff > fmsaMaxExtraArgs || rep.NumParams+nDiff > 8 {
			continue
		}

		merged := buildMergedFunc(rep, differs, nDiff)
		stats.Groups++
		stats.ParamsAdded += nDiff
		for gi, g := range group {
			var extra []int64
			di := 0
			for i, d := range differs {
				_ = di
				if d {
					extra = append(extra, memberConsts[gi][i])
				}
			}
			rewrites[g.Name] = rewrite{from: g.Name, to: merged.Name, consts: extra}
			m.RemoveFunc(g.Name)
			stats.Removed++
		}
		stats.Removed-- // the merged function replaces the group
		m.AddFunc(merged)
	}

	if len(rewrites) == 0 {
		return stats
	}

	// Rewrite call sites: append constant arguments.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			var out []Inst
			for _, in := range b.Insts {
				rw, ok := rewrites[in.Sym]
				if !ok || in.Op != Call {
					out = append(out, in)
					continue
				}
				args := append([]Value(nil), in.Args...)
				for _, c := range rw.consts {
					cv := f.NewValue()
					out = append(out, Inst{Op: Const, Dst: cv, Imm: c})
					args = append(args, cv)
				}
				in.Sym = rw.to
				in.Args = args
				out = append(out, in)
			}
			b.Insts = out
		}
	}
	return stats
}

// hashFuncShape is hashFunc with Const immediates erased — two functions
// share a shape iff they are identical modulo integer constants.
func hashFuncShape(f *Func) string {
	clone := &Func{Name: "shape", Module: f.Module, NumParams: f.NumParams,
		Throws: f.Throws, NumValues: f.NumValues}
	for _, b := range f.Blocks {
		nb := &Block{Label: b.Label, Insts: make([]Inst, len(b.Insts))}
		copy(nb.Insts, b.Insts)
		for i := range nb.Insts {
			if nb.Insts[i].Op == Const {
				nb.Insts[i].Imm = 0
			}
		}
		clone.Blocks = append(clone.Blocks, nb)
	}
	return hashFunc(clone)
}

// constSites lists Const immediates in traversal order.
func constSites(f *Func) []int64 {
	var out []int64
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == Const {
				out = append(out, b.Insts[i].Imm)
			}
		}
	}
	return out
}

// buildMergedFunc clones rep with the differing constants replaced by fresh
// trailing parameters. Existing value ids above the old parameter range are
// shifted to make room.
func buildMergedFunc(rep *Func, differs []bool, nDiff int) *Func {
	shift := Value(nDiff)
	oldP := Value(rep.NumParams)
	remap := func(v Value) Value {
		if v == None || v <= oldP {
			return v
		}
		return v + shift
	}
	merged := &Func{
		Name:      fmt.Sprintf("%s$fmsa", rep.Name),
		Module:    rep.Module,
		NumParams: rep.NumParams + nDiff,
		Throws:    rep.Throws,
		NumValues: rep.NumValues + nDiff,
	}
	// subst maps removed Const defs to the new parameter values.
	subst := make(map[Value]Value)
	ci := 0
	di := 0
	for _, b := range rep.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op != Const {
				continue
			}
			if differs[ci] {
				subst[remap(b.Insts[i].Dst)] = oldP + Value(di) + 1
				di++
			}
			ci++
		}
	}
	res := func(v Value) Value {
		v = remap(v)
		if nv, ok := subst[v]; ok {
			return nv
		}
		return v
	}
	ci = 0
	for _, b := range rep.Blocks {
		nb := &Block{Label: b.Label}
		for i := range b.Insts {
			in := b.Insts[i]
			if in.Op == Const {
				if differs[ci] {
					ci++
					continue // becomes a parameter
				}
				ci++
			}
			in.Dst = remap(in.Dst)
			in.ErrDst = remap(in.ErrDst)
			in.A = res(in.A)
			in.B = res(in.B)
			nargs := append([]Value(nil), in.Args...)
			for j := range nargs {
				nargs[j] = res(nargs[j])
			}
			in.Args = nargs
			nincs := append([]Incoming(nil), in.Incomings...)
			for j := range nincs {
				nincs[j].Val = res(nincs[j].Val)
			}
			in.Incomings = nincs
			nb.Insts = append(nb.Insts, in)
		}
		merged.Blocks = append(merged.Blocks, nb)
	}
	return merged
}
