package llir

import (
	"fmt"
	"sort"

	"outliner/internal/sir"
)

// Runtime entry points the lowering emits calls to. The interpreter
// (internal/exec) implements them; the verifier and linker treat them as
// always-available externals.
const (
	RTRetain      = "swift_retain"
	RTRelease     = "swift_release"
	RTAllocObject = "swift_allocObject"
	RTAllocArray  = "swift_allocArray"
	RTArrayAppend = "swift_arrayAppend"
	RTPrintInt    = "print_int"
	RTPrintBool   = "print_bool"
	RTPrintStr    = "print_str"
)

// Objective-C flavoured modules use the objc runtime's reference counting
// entry points (appgen rewrites Swift modules' calls for its ObjC modules).
const (
	RTObjCRetain  = "objc_retain"
	RTObjCRelease = "objc_release"
)

// RuntimeSyms is the set of runtime symbols as a lookup table.
var RuntimeSyms = map[string]bool{
	RTRetain: true, RTRelease: true, RTAllocObject: true, RTAllocArray: true,
	RTArrayAppend: true, RTPrintInt: true, RTPrintBool: true, RTPrintStr: true,
	RTObjCRetain: true, RTObjCRelease: true,
}

// SwiftGCMetadata is the module-flag value our Swift-like frontend stamps,
// mirroring the "Objective-C Garbage Collection" flag of §VI-2.
const SwiftGCMetadata = "swift abi-v5.2 bits-0x17"

// FromSIR lowers a SIR module to LLIR, constructing SSA form with the
// algorithm of Braun et al. (the simple and efficient SSA construction used
// while translating from a non-SSA representation).
func FromSIR(m *sir.Module) (*Module, error) {
	out := NewModule(m.Name)
	out.Metadata["Objective-C Garbage Collection"] = SwiftGCMetadata
	for _, g := range m.Globals {
		words := append([]int64(nil), g.Words...)
		out.Globals = append(out.Globals, &Global{Name: g.Name, Module: m.Name, Words: words})
	}
	for _, f := range m.Funcs {
		lf, err := lowerFunc(f)
		if err != nil {
			return nil, fmt.Errorf("llir: lowering @%s: %w", f.Name, err)
		}
		out.AddFunc(lf)
	}
	return out, nil
}

type lowerer struct {
	src *sir.Func
	dst *Func

	blocks map[string]*blockState
	order  []string // SIR block order

	// currentDef[variable][block] = SSA value (Braun's construction).
	currentDef map[sir.Value]map[string]Value

	phis map[Value]*Inst // phi dst -> its (heap-allocated) instruction
}

type blockState struct {
	label  string
	phis   []*Inst
	body   []Inst
	preds  []string
	sealed bool
	filled bool
	// incomplete phis created while unsealed: variable -> phi dst
	incomplete map[sir.Value]Value
}

func lowerFunc(f *sir.Func) (*Func, error) {
	lo := &lowerer{
		src: f,
		dst: &Func{
			Name:      f.Name,
			Module:    f.Module,
			NumParams: f.NumParams,
			Throws:    f.Throws,
			NumValues: f.NumParams,
		},
		blocks:     make(map[string]*blockState),
		currentDef: make(map[sir.Value]map[string]Value),
		phis:       make(map[Value]*Inst),
	}
	for _, b := range f.Blocks {
		lo.blocks[b.Label] = &blockState{label: b.Label, incomplete: make(map[sir.Value]Value)}
		lo.order = append(lo.order, b.Label)
	}
	// Predecessors from the SIR CFG.
	for _, b := range f.Blocks {
		last := b.Insts[len(b.Insts)-1]
		switch last.Op {
		case sir.Br:
			lo.blocks[last.Sym].preds = append(lo.blocks[last.Sym].preds, b.Label)
		case sir.CondBr:
			lo.blocks[last.Sym].preds = append(lo.blocks[last.Sym].preds, b.Label)
			lo.blocks[last.Sym2].preds = append(lo.blocks[last.Sym2].preds, b.Label)
		}
	}

	// Parameters are SSA values 1..N, defined at entry.
	entry := f.Blocks[0].Label
	for i := 0; i < f.NumParams; i++ {
		lo.writeVar(sir.Value(i+1), entry, Value(i+1))
	}
	lo.trySeal(lo.blocks[entry])

	for _, b := range f.Blocks {
		if err := lo.fillBlock(b); err != nil {
			return nil, err
		}
		bs := lo.blocks[b.Label]
		bs.filled = true
		// Seal successors whose predecessors are all filled.
		for _, s := range blockSuccs(b) {
			lo.trySeal(lo.blocks[s])
		}
		lo.trySeal(bs)
	}
	// Seal anything left (blocks with unreachable predecessors).
	for _, label := range lo.order {
		lo.seal(lo.blocks[label])
	}

	// Assemble: phis first, then the body.
	for _, label := range lo.order {
		bs := lo.blocks[label]
		blk := &Block{Label: label}
		for _, p := range bs.phis {
			blk.Insts = append(blk.Insts, *p)
		}
		blk.Insts = append(blk.Insts, bs.body...)
		lo.dst.Blocks = append(lo.dst.Blocks, blk)
	}
	removeTrivialPhis(lo.dst)
	return lo.dst, nil
}

func blockSuccs(b *sir.Block) []string {
	last := b.Insts[len(b.Insts)-1]
	switch last.Op {
	case sir.Br:
		return []string{last.Sym}
	case sir.CondBr:
		return []string{last.Sym, last.Sym2}
	}
	return nil
}

func (lo *lowerer) trySeal(bs *blockState) {
	if bs.sealed {
		return
	}
	for _, p := range bs.preds {
		if !lo.blocks[p].filled {
			return
		}
	}
	lo.seal(bs)
}

func (lo *lowerer) seal(bs *blockState) {
	if bs.sealed {
		return
	}
	bs.sealed = true
	// addPhiOperands can allocate fresh values (new phis in predecessors),
	// so the iteration order here decides value numbering. Sort the pending
	// variables: map order would make the numbering vary run to run.
	vars := make([]sir.Value, 0, len(bs.incomplete))
	for variable := range bs.incomplete {
		vars = append(vars, variable)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, variable := range vars {
		lo.addPhiOperands(variable, bs.incomplete[variable], bs)
	}
	bs.incomplete = make(map[sir.Value]Value)
}

func (lo *lowerer) writeVar(variable sir.Value, block string, val Value) {
	defs, ok := lo.currentDef[variable]
	if !ok {
		defs = make(map[string]Value)
		lo.currentDef[variable] = defs
	}
	defs[block] = val
}

func (lo *lowerer) readVar(variable sir.Value, block string) Value {
	if defs, ok := lo.currentDef[variable]; ok {
		if v, ok := defs[block]; ok {
			return v
		}
	}
	return lo.readVarRecursive(variable, block)
}

func (lo *lowerer) readVarRecursive(variable sir.Value, block string) Value {
	bs := lo.blocks[block]
	var val Value
	switch {
	case !bs.sealed:
		val = lo.newPhi(bs)
		bs.incomplete[variable] = val
	case len(bs.preds) == 1:
		val = lo.readVar(variable, bs.preds[0])
	case len(bs.preds) == 0:
		// Read of a variable never written on this path: materialize zero.
		// SwiftLite locals are always initialized before use, but registers
		// reused across short-circuit arms can reach here.
		val = lo.dst.NewValue()
		entry := lo.blocks[lo.order[0]]
		entry.body = append([]Inst{{Op: Const, Dst: val, Imm: 0}}, entry.body...)
	default:
		val = lo.newPhi(bs)
		lo.writeVar(variable, block, val)
		lo.addPhiOperands(variable, val, bs)
	}
	lo.writeVar(variable, block, val)
	return val
}

func (lo *lowerer) newPhi(bs *blockState) Value {
	dst := lo.dst.NewValue()
	phi := &Inst{Op: Phi, Dst: dst}
	bs.phis = append(bs.phis, phi)
	lo.phis[dst] = phi
	return dst
}

func (lo *lowerer) addPhiOperands(variable sir.Value, phiDst Value, bs *blockState) {
	phi := lo.phis[phiDst]
	for _, p := range bs.preds {
		phi.Incomings = append(phi.Incomings, Incoming{Pred: p, Val: lo.readVar(variable, p)})
	}
}

// fillBlock translates one SIR block.
func (lo *lowerer) fillBlock(b *sir.Block) error {
	bs := lo.blocks[b.Label]
	label := b.Label
	emit := func(in Inst) { bs.body = append(bs.body, in) }
	newVal := func() Value { return lo.dst.NewValue() }
	read := func(v sir.Value) Value { return lo.readVar(v, label) }
	def := func(v sir.Value) Value {
		nv := newVal()
		lo.writeVar(v, label, nv)
		return nv
	}
	cnst := func(imm int64) Value {
		v := newVal()
		emit(Inst{Op: Const, Dst: v, Imm: imm})
		return v
	}
	readArgs := func(args []sir.Value) []Value {
		out := make([]Value, len(args))
		for i, a := range args {
			out[i] = read(a)
		}
		return out
	}

	for _, in := range b.Insts {
		switch in.Op {
		case sir.ConstInt:
			emit(Inst{Op: Const, Dst: def(in.Dst), Imm: in.Imm})
		case sir.ConstStr:
			emit(Inst{Op: GlobalAddr, Dst: def(in.Dst), Sym: in.Sym})
		case sir.ConstNil:
			emit(Inst{Op: Const, Dst: def(in.Dst), Imm: 0})
		case sir.Move:
			lo.writeVar(in.Dst, label, read(in.A)) // pure renaming in SSA
		case sir.Bin:
			a, bv := read(in.A), read(in.B)
			emit(Inst{Op: Bin, Dst: def(in.Dst), BinOp: BinKind(in.BinOp), A: a, B: bv})
		case sir.Cmp:
			a, bv := read(in.A), read(in.B)
			emit(Inst{Op: Cmp, Dst: def(in.Dst), Cond: CondKind(in.Cond), A: a, B: bv})
		case sir.Not:
			emit(Inst{Op: Not, Dst: def(in.Dst), A: read(in.A)})
		case sir.Neg:
			emit(Inst{Op: Neg, Dst: def(in.Dst), A: read(in.A)})
		case sir.Br:
			emit(Inst{Op: Br, Sym: in.Sym})
		case sir.CondBr:
			emit(Inst{Op: CondBr, A: read(in.A), Sym: in.Sym, Sym2: in.Sym2})
		case sir.Call:
			call := Inst{Op: Call, Sym: in.Sym, Args: readArgs(in.Args), Throws: in.Throws}
			if in.Dst != sir.None {
				call.Dst = def(in.Dst)
			}
			if in.Throws {
				call.ErrDst = def(in.ErrDst)
			}
			emit(call)
		case sir.CallClosure:
			clo := read(in.A)
			fp := newVal()
			emit(Inst{Op: Load, Dst: fp, A: clo, Imm: 8})
			call := Inst{Op: CallInd, A: fp, Args: append([]Value{clo}, readArgs(in.Args)...)}
			if in.Dst != sir.None {
				call.Dst = def(in.Dst)
			}
			emit(call)
		case sir.Ret:
			ret := Inst{Op: Ret, A: read(in.A)}
			if lo.src.Throws {
				ret.B = cnst(0)
			}
			emit(ret)
		case sir.RetVoid:
			ret := Inst{Op: Ret}
			if lo.src.Throws {
				ret.B = cnst(0)
			}
			emit(ret)
		case sir.Throw:
			emit(Inst{Op: Ret, B: read(in.A)})
		case sir.Retain:
			emit(Inst{Op: Call, Sym: RTRetain, Args: []Value{read(in.A)}})
		case sir.Release:
			emit(Inst{Op: Call, Sym: RTRelease, Args: []Value{read(in.A)}})
		case sir.AllocObject:
			n := cnst(in.Imm)
			emit(Inst{Op: Call, Sym: RTAllocObject, Dst: def(in.Dst), Args: []Value{n}})
		case sir.FieldGet:
			emit(Inst{Op: Load, Dst: def(in.Dst), A: read(in.A), Imm: 8 * (1 + in.Imm)})
		case sir.FieldSet:
			a, bv := read(in.A), read(in.B)
			emit(Inst{Op: Store, A: a, Imm: 8 * (1 + in.Imm), B: bv})
		case sir.AllocArray:
			emit(Inst{Op: Call, Sym: RTAllocArray, Dst: def(in.Dst), Args: []Value{read(in.A)}})
		case sir.ArrayGet:
			addr := lo.arrayAddr(bs, read(in.A), read(in.B))
			emit(Inst{Op: Load, Dst: def(in.Dst), A: addr, Imm: 16})
		case sir.ArraySet:
			addr := lo.arrayAddr(bs, read(in.A), read(in.B))
			emit(Inst{Op: Store, A: addr, Imm: 16, B: read(in.C)})
		case sir.ArrayLen:
			emit(Inst{Op: Load, Dst: def(in.Dst), A: read(in.A), Imm: 8})
		case sir.StrGet:
			addr := lo.arrayAddr(bs, read(in.A), read(in.B))
			emit(Inst{Op: Load, Dst: def(in.Dst), A: addr, Imm: 8})
		case sir.StrLen:
			emit(Inst{Op: Load, Dst: def(in.Dst), A: read(in.A), Imm: 0})
		case sir.Append:
			a, bv := read(in.A), read(in.B)
			emit(Inst{Op: Call, Sym: RTArrayAppend, Dst: def(in.Dst), Args: []Value{a, bv}})
		case sir.MakeClosure:
			caps := readArgs(in.Args)
			n := cnst(int64(1 + len(in.Args)))
			p := def(in.Dst)
			emit(Inst{Op: Call, Sym: RTAllocObject, Dst: p, Args: []Value{n}})
			fa := newVal()
			emit(Inst{Op: GlobalAddr, Dst: fa, Sym: in.Sym})
			emit(Inst{Op: Store, A: p, Imm: 8, B: fa})
			for i, cv := range caps {
				emit(Inst{Op: Store, A: p, Imm: int64(16 + 8*i), B: cv})
			}
		case sir.PrintInt:
			emit(Inst{Op: Call, Sym: RTPrintInt, Args: []Value{read(in.A)}})
		case sir.PrintBool:
			emit(Inst{Op: Call, Sym: RTPrintBool, Args: []Value{read(in.A)}})
		case sir.PrintStr:
			emit(Inst{Op: Call, Sym: RTPrintStr, Args: []Value{read(in.A)}})
		case sir.Unreachable:
			emit(Inst{Op: Unreachable})
		default:
			return fmt.Errorf("unhandled SIR op %d", in.Op)
		}
	}
	return nil
}

// arrayAddr computes base + 8*index, emitting into bs.
func (lo *lowerer) arrayAddr(bs *blockState, base, index Value) Value {
	eight := lo.dst.NewValue()
	bs.body = append(bs.body, Inst{Op: Const, Dst: eight, Imm: 8})
	off := lo.dst.NewValue()
	bs.body = append(bs.body, Inst{Op: Bin, Dst: off, BinOp: Mul, A: index, B: eight})
	addr := lo.dst.NewValue()
	bs.body = append(bs.body, Inst{Op: Bin, Dst: addr, BinOp: Add, A: base, B: off})
	return addr
}

// removeTrivialPhis iteratively removes phis whose incomings are all the
// same value (or the phi itself), rewriting uses.
func removeTrivialPhis(f *Func) {
	for {
		subst := make(map[Value]Value)
		for _, b := range f.Blocks {
			kept := b.Insts[:0]
			for _, in := range b.Insts {
				if in.Op != Phi {
					kept = append(kept, in)
					continue
				}
				var same Value
				trivial := true
				for _, inc := range in.Incomings {
					if inc.Val == in.Dst || inc.Val == same {
						continue
					}
					if same == None {
						same = inc.Val
						continue
					}
					trivial = false
					break
				}
				if trivial {
					if same == None {
						same = in.Dst // degenerate: keep as-is, drops below
					}
					subst[in.Dst] = same
					continue
				}
				kept = append(kept, in)
			}
			b.Insts = kept
		}
		if len(subst) == 0 {
			return
		}
		resolve := func(v Value) Value {
			// Bounded walk: mutually-trivial phi pairs (possible around
			// unreachable loops) would otherwise cycle forever.
			for steps := 0; steps <= len(subst); steps++ {
				nv, ok := subst[v]
				if !ok || nv == v {
					return v
				}
				v = nv
			}
			return v
		}
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				in.A = resolve(in.A)
				in.B = resolve(in.B)
				for j := range in.Args {
					in.Args[j] = resolve(in.Args[j])
				}
				for j := range in.Incomings {
					in.Incomings[j].Val = resolve(in.Incomings[j].Val)
				}
			}
		}
	}
}
