package llir

import (
	"fmt"
	"sort"
	"strings"
)

// RunDefaultPasses applies the standard mid-level size pipeline in the order
// the paper's `opt` stage would: CFG cleanup, dead code elimination, then
// function merging.
func RunDefaultPasses(m *Module) {
	for _, f := range m.Funcs {
		SimplifyCFG(f)
		DCE(f)
	}
	MergeFunctions(m)
}

// ---- Dead code elimination ----

// pure reports whether an instruction has no side effects and may be removed
// when its result is unused.
func pure(in *Inst) bool {
	switch in.Op {
	case Const, GlobalAddr, Bin, Cmp, Not, Neg, Load, Phi:
		return true
	}
	return false
}

// DCE removes pure instructions whose results are never used, iterating to a
// fixed point.
func DCE(f *Func) {
	for {
		used := make(map[Value]bool)
		mark := func(v Value) {
			if v != None {
				used[v] = true
			}
		}
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				// An instruction's own Dst is a def, not a use; everything
				// else read counts.
				mark(in.A)
				mark(in.B)
				if in.Op != Call { // Call's ErrDst is a def
					mark(in.ErrDst)
				}
				for _, a := range in.Args {
					mark(a)
				}
				for _, inc := range in.Incomings {
					mark(inc.Val)
				}
			}
		}
		removed := 0
		for _, b := range f.Blocks {
			kept := b.Insts[:0]
			for _, in := range b.Insts {
				if pure(&in) && in.Dst != None && !used[in.Dst] {
					removed++
					continue
				}
				kept = append(kept, in)
			}
			b.Insts = kept
		}
		if removed == 0 {
			return
		}
	}
}

// ---- CFG simplification ----

// SimplifyCFG removes unreachable blocks, threads jumps through empty
// forwarding blocks, and merges single-successor/single-predecessor pairs.
func SimplifyCFG(f *Func) {
	removeUnreachable(f)
	threadEmptyBlocks(f)
	mergeStraightPairs(f)
	removeUnreachable(f)
}

func removeUnreachable(f *Func) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := make(map[string]bool)
	var stack []string
	push := func(l string) {
		if !reach[l] {
			reach[l] = true
			stack = append(stack, l)
		}
	}
	push(f.Blocks[0].Label)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Block(l).Succs() {
			push(s)
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b.Label] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	// Prune phi incomings from removed predecessors.
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op != Phi {
				continue
			}
			keptInc := in.Incomings[:0]
			for _, inc := range in.Incomings {
				if reach[inc.Pred] {
					keptInc = append(keptInc, inc)
				}
			}
			in.Incomings = keptInc
		}
	}
}

// threadEmptyBlocks redirects branches that target a block containing only
// "br X" to X directly, provided the final target has no phis (phi
// incomings would need repair).
func threadEmptyBlocks(f *Func) {
	target := make(map[string]string)
	hasPhi := make(map[string]bool)
	for _, b := range f.Blocks {
		if len(b.Insts) > 0 && b.Insts[0].Op == Phi {
			hasPhi[b.Label] = true
		}
	}
	for _, b := range f.Blocks {
		if len(b.Insts) == 1 && b.Insts[0].Op == Br && !hasPhi[b.Insts[0].Sym] {
			target[b.Label] = b.Insts[0].Sym
		}
	}
	resolve := func(l string) string {
		seen := 0
		for {
			t, ok := target[l]
			if !ok || seen > len(target) {
				return l
			}
			l = t
			seen++
		}
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case Br:
			t.Sym = resolve(t.Sym)
		case CondBr:
			t.Sym = resolve(t.Sym)
			t.Sym2 = resolve(t.Sym2)
		}
	}
}

// mergeStraightPairs merges B into A when A ends "br B" and B's only
// predecessor is A.
func mergeStraightPairs(f *Func) {
	for {
		preds := f.Preds()
		merged := false
		for _, a := range f.Blocks {
			t := a.Terminator()
			if t == nil || t.Op != Br {
				continue
			}
			bLabel := t.Sym
			if bLabel == a.Label || len(preds[bLabel]) != 1 {
				continue
			}
			b := f.Block(bLabel)
			if b == nil || (len(b.Insts) > 0 && b.Insts[0].Op == Phi) {
				continue
			}
			// Splice B's instructions over A's terminator.
			a.Insts = append(a.Insts[:len(a.Insts)-1], b.Insts...)
			// Phi incomings naming B as pred now come from A.
			for _, blk := range f.Blocks {
				for i := range blk.Insts {
					in := &blk.Insts[i]
					if in.Op != Phi {
						continue
					}
					for j := range in.Incomings {
						if in.Incomings[j].Pred == bLabel {
							in.Incomings[j].Pred = a.Label
						}
					}
				}
			}
			f.removeBlock(bLabel)
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

func (f *Func) removeBlock(label string) {
	for i, b := range f.Blocks {
		if b.Label == label {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// ---- MergeFunctions ----

// MergeStats reports what MergeFunctions did.
type MergeStats struct {
	Groups  int // sets of identical functions found
	Removed int // functions deleted
}

// MergeFunctions deduplicates structurally identical functions (LLVM's
// MergeFunctions pass — the 0.9% row of the paper's Table I): bodies that
// hash identically after value/label normalization are collapsed onto one
// representative and all call sites are rewritten.
func MergeFunctions(m *Module) MergeStats {
	return MergeFunctionsKeeping(m, nil)
}

// MergeFunctionsKeeping is MergeFunctions with external linkage: functions
// named in keep may be referenced from outside the module (the per-module
// pipeline merges before the system link), so they can serve as a group's
// representative but are never deleted — only call sites inside m see the
// rewrite, and deleting a kept function would leave other modules calling
// an undefined symbol.
func MergeFunctionsKeeping(m *Module, keep map[string]bool) MergeStats {
	byHash := make(map[string][]*Func)
	for _, f := range m.Funcs {
		if f.Name == "main" {
			continue
		}
		byHash[hashFunc(f)] = append(byHash[hashFunc(f)], f)
	}
	replace := make(map[string]string)
	var stats MergeStats
	hashes := make([]string, 0, len(byHash))
	for h := range byHash {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		group := byHash[h]
		if len(group) < 2 {
			continue
		}
		// A kept function is the preferred representative: the duplicates
		// merged into it then resolve to a symbol that survives the link.
		sort.Slice(group, func(i, j int) bool {
			if keep[group[i].Name] != keep[group[j].Name] {
				return keep[group[i].Name]
			}
			return group[i].Name < group[j].Name
		})
		rep := group[0]
		removed := 0
		for _, dup := range group[1:] {
			if keep[dup.Name] {
				continue
			}
			replace[dup.Name] = rep.Name
			removed++
		}
		if removed > 0 {
			stats.Groups++
			stats.Removed += removed
		}
	}
	if len(replace) == 0 {
		return stats
	}
	for name := range replace {
		m.RemoveFunc(name)
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.Op == Call {
					if to, ok := replace[in.Sym]; ok {
						in.Sym = to
					}
				}
				if in.Op == GlobalAddr {
					if to, ok := replace[in.Sym]; ok {
						in.Sym = to
					}
				}
			}
		}
	}
	return stats
}

// hashFunc produces a normalized structural key: value numbers and labels
// renamed in traversal order, so two functions differing only in naming or
// value numbering hash equal.
func hashFunc(f *Func) string {
	var sb strings.Builder
	valNames := make(map[Value]int)
	valName := func(v Value) int {
		if v == None {
			return 0
		}
		id, ok := valNames[v]
		if !ok {
			id = len(valNames) + 1
			valNames[v] = id
		}
		return id
	}
	labNames := make(map[string]int)
	labName := func(l string) int {
		id, ok := labNames[l]
		if !ok {
			id = len(labNames) + 1
			labNames[l] = id
		}
		return id
	}
	fmt.Fprintf(&sb, "p%d t%v;", f.NumParams, f.Throws)
	for i := 0; i < f.NumParams; i++ {
		valName(f.Param(i))
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "L%d:", labName(b.Label))
		for i := range b.Insts {
			in := &b.Insts[i]
			fmt.Fprintf(&sb, "%d(%d,%d,%d,%d,%d,%d,%d", in.Op, valName(in.Dst),
				valName(in.A), valName(in.B), valName(in.ErrDst), in.Imm, in.BinOp, in.Cond)
			switch in.Op {
			case Call, GlobalAddr:
				fmt.Fprintf(&sb, ",@%s", in.Sym)
			case Br:
				fmt.Fprintf(&sb, ",L%d", labName(in.Sym))
			case CondBr:
				fmt.Fprintf(&sb, ",L%d,L%d", labName(in.Sym), labName(in.Sym2))
			}
			for _, a := range in.Args {
				fmt.Fprintf(&sb, ",a%d", valName(a))
			}
			for _, inc := range in.Incomings {
				fmt.Fprintf(&sb, ",[L%d:%d]", labName(inc.Pred), valName(inc.Val))
			}
			sb.WriteString(");")
		}
	}
	return sb.String()
}
