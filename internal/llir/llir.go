// Package llir defines the low-level SSA IR — the analog of LLVM IR in the
// reproduction's pipeline. SIR lowers into LLIR (constructing SSA), the
// mid-level size optimizations of the paper's Table I run here
// (MergeFunctions, FMSA-lite, DCE, CFG simplification), llvm-link-style
// module merging happens at this level (internal/irlink), and the code
// generator destroys SSA again on the way to machine code.
package llir

import (
	"fmt"
	"strings"
)

// Value is an SSA value id. 0 means "none".
type Value int

// None marks an absent value.
const None Value = 0

// Op is an LLIR operation.
type Op uint8

// LLIR operations.
const (
	BadOp Op = iota

	Const      // Dst = Imm
	GlobalAddr // Dst = &Sym (global datum or function)
	Bin        // Dst = A <BinOp> B
	Cmp        // Dst = (A <Cond> B) as 0/1
	Not        // Dst = A == 0
	Neg        // Dst = -A

	Load  // Dst = mem[A + Imm]
	Store // mem[A + Imm] = B

	Call    // Dst = Sym(Args...); throwing callees also define ErrDst
	CallInd // Dst = (*A)(Args...)

	Ret // return A (None for void); in throwing functions B is the error
	// channel value (0 = normal return)
	Br     // branch Sym
	CondBr // if A != 0 branch Sym else Sym2
	Phi    // Dst = φ(Incomings)

	Unreachable

	NumOps
)

// BinKind mirrors sir's binary operators.
type BinKind uint8

// Binary operators.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
	Rem
)

func (b BinKind) String() string {
	return [...]string{"add", "sub", "mul", "div", "rem"}[b]
}

// CondKind mirrors sir's comparisons.
type CondKind uint8

// Comparisons.
const (
	Eq CondKind = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (c CondKind) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[c]
}

// Incoming is one phi input.
type Incoming struct {
	Pred string
	Val  Value
}

// Inst is one LLIR instruction.
type Inst struct {
	Op        Op
	Dst       Value
	A, B      Value
	ErrDst    Value // Call of a throwing function
	Imm       int64
	Sym       string
	Sym2      string
	BinOp     BinKind
	Cond      CondKind
	Args      []Value
	Incomings []Incoming
	Throws    bool
}

// IsTerminator reports whether op ends a block.
func (op Op) IsTerminator() bool {
	switch op {
	case Ret, Br, CondBr, Unreachable:
		return true
	}
	return false
}

// Block is a basic block; phis always come first.
type Block struct {
	Label string
	Insts []Inst
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1]
}

// Succs returns the labels this block can branch to.
func (b *Block) Succs() []string {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case Br:
		return []string{t.Sym}
	case CondBr:
		return []string{t.Sym, t.Sym2}
	}
	return nil
}

// Func is an LLIR function in SSA form.
type Func struct {
	Name      string
	Module    string
	NumParams int // parameters are values 1..NumParams
	Throws    bool
	Blocks    []*Block
	NumValues int
}

// Param returns the value of parameter i (0-based).
func (f *Func) Param(i int) Value { return Value(i + 1) }

// NewValue allocates a fresh SSA value id.
func (f *Func) NewValue() Value {
	f.NumValues++
	return Value(f.NumValues)
}

// Block returns the block labeled label, or nil.
func (f *Func) Block(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// NumInsts counts instructions.
func (f *Func) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Preds maps each block label to its predecessor labels.
func (f *Func) Preds() map[string][]string {
	preds := make(map[string][]string, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.Label)
		}
	}
	return preds
}

// Global is a data-section constant with module provenance.
type Global struct {
	Name   string
	Module string
	Words  []int64
}

// Module is a set of LLIR functions and globals. After irlink it may contain
// functions from many source modules (each Func keeps its own provenance).
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	// Metadata mirrors LLVM's module flags. The paper's §VI-2 conflict: the
	// Swift and Clang compilers emit different "Objective-C Garbage
	// Collection" values, and merging modules fails unless the flag is
	// split into attributes.
	Metadata map[string]string

	funcIndex map[string]*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		Metadata:  make(map[string]string),
		funcIndex: make(map[string]*Func),
	}
}

// AddFunc appends f (duplicate names panic).
func (m *Module) AddFunc(f *Func) {
	if m.funcIndex == nil {
		m.funcIndex = make(map[string]*Func)
	}
	if _, dup := m.funcIndex[f.Name]; dup {
		panic(fmt.Sprintf("llir: duplicate function %q", f.Name))
	}
	m.funcIndex[f.Name] = f
	m.Funcs = append(m.Funcs, f)
}

// RemoveFunc deletes a function by name (no-op if absent).
func (m *Module) RemoveFunc(name string) {
	if _, ok := m.funcIndex[name]; !ok {
		return
	}
	delete(m.funcIndex, name)
	for i, f := range m.Funcs {
		if f.Name == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return
		}
	}
}

// Func returns a function by name, or nil.
func (m *Module) Func(name string) *Func { return m.funcIndex[name] }

// NumInsts counts instructions in the module.
func (m *Module) NumInsts() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInsts()
	}
	return n
}

// String renders the module.
func (m *Module) String() string {
	var b strings.Builder
	for _, f := range m.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s = %v\n", g.Name, g.Words)
	}
	return b.String()
}

// String renders one function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "llir func @%s(%d params)", f.Name, f.NumParams)
	if f.Throws {
		b.WriteString(" throws")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Label)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (in Inst) String() string {
	v := func(x Value) string { return fmt.Sprintf("%%%d", x) }
	switch in.Op {
	case Const:
		return fmt.Sprintf("%s = const %d", v(in.Dst), in.Imm)
	case GlobalAddr:
		return fmt.Sprintf("%s = addr @%s", v(in.Dst), in.Sym)
	case Bin:
		return fmt.Sprintf("%s = %s %s, %s", v(in.Dst), in.BinOp, v(in.A), v(in.B))
	case Cmp:
		return fmt.Sprintf("%s = cmp.%s %s, %s", v(in.Dst), in.Cond, v(in.A), v(in.B))
	case Not:
		return fmt.Sprintf("%s = not %s", v(in.Dst), v(in.A))
	case Neg:
		return fmt.Sprintf("%s = neg %s", v(in.Dst), v(in.A))
	case Load:
		return fmt.Sprintf("%s = load [%s + %d]", v(in.Dst), v(in.A), in.Imm)
	case Store:
		return fmt.Sprintf("store [%s + %d] = %s", v(in.A), in.Imm, v(in.B))
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		s := fmt.Sprintf("call @%s(%s)", in.Sym, strings.Join(args, ", "))
		if in.Dst != None {
			s = v(in.Dst) + " = " + s
		}
		if in.Throws {
			s += " throws -> " + v(in.ErrDst)
		}
		return s
	case CallInd:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		s := fmt.Sprintf("call_ind %s(%s)", v(in.A), strings.Join(args, ", "))
		if in.Dst != None {
			s = v(in.Dst) + " = " + s
		}
		return s
	case Ret:
		s := "ret"
		if in.A != None {
			s += " " + v(in.A)
		}
		if in.B != None {
			s += " err=" + v(in.B)
		}
		return s
	case Br:
		return "br " + in.Sym
	case CondBr:
		return fmt.Sprintf("condbr %s, %s, %s", v(in.A), in.Sym, in.Sym2)
	case Phi:
		parts := make([]string, len(in.Incomings))
		for i, inc := range in.Incomings {
			parts[i] = fmt.Sprintf("[%s: %s]", inc.Pred, v(inc.Val))
		}
		return fmt.Sprintf("%s = phi %s", v(in.Dst), strings.Join(parts, " "))
	case Unreachable:
		return "unreachable"
	}
	return "bad"
}
