// Package profile defines the instrumented-run execution profile that
// connects the executor (internal/exec) to the build pipeline: per-function
// entry counts, call edges with function-relative call-site offsets,
// basic-block execution counts, and per-function dynamic step totals.
//
// Profiles are the input to hot/cold-aware outlining (the BOLT outliner's
// --outliner-cold-only / --outliner-cold-threshold) and to the profile-driven
// layout work in internal/perf: outlining cold code is nearly free, while
// outlining a hot path pays an extra call on every execution — the trade-off
// the paper's production evaluation (§VII) turns on.
//
// The on-disk format is versioned, canonical JSON: map keys serialize in
// sorted order, so identical in-memory profiles produce identical bytes, and
// the encoded form doubles as a content hash input (Digest participates in
// machine-stage cache fingerprints). Merge is commutative and associative —
// profiles from many runs, many entry points, or many collection shards
// combine into bit-identical bytes regardless of merge order.
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SchemaVersion identifies the profile file format. Like
// artifact.SchemaVersion it participates in cache fingerprints (via Digest's
// coverage of the encoded bytes), so readers reject files written by an
// incompatible writer instead of misreading them.
const SchemaVersion = 1

// FuncProfile is one function's execution counts.
type FuncProfile struct {
	// Entries counts how many times control entered the function: calls
	// (BL/BLR), cross-function tail calls, and being a run's entry point.
	Entries int64 `json:"entries"`
	// Steps is the dynamic instruction count attributed to the function.
	Steps int64 `json:"steps"`
	// Blocks maps basic-block label to execution count.
	Blocks map[string]int64 `json:"blocks,omitempty"`
	// Calls maps a call edge — "<callee>@+<site offset>" where the offset is
	// the call instruction's byte offset from the caller's entry — to the
	// number of times the edge executed. Offsets are function-relative, so
	// edges survive relinking at different image addresses.
	Calls map[string]int64 `json:"calls,omitempty"`
}

// EdgeKey builds the canonical Calls key for a callee and a function-relative
// call-site offset.
func EdgeKey(callee string, offset int64) string {
	return fmt.Sprintf("%s@+%d", callee, offset)
}

// SplitEdgeKey parses an EdgeKey back into callee and offset. ok is false
// for malformed keys (hand-edited profiles), which consumers should skip.
func SplitEdgeKey(edge string) (callee string, offset int64, ok bool) {
	i := strings.LastIndex(edge, "@+")
	if i < 0 {
		return "", 0, false
	}
	off, err := strconv.ParseInt(edge[i+2:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return edge[:i], off, true
}

// Profile is a merged set of execution counts keyed by function name.
type Profile struct {
	Funcs map[string]*FuncProfile

	digestOnce sync.Once
	digest     string
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{Funcs: make(map[string]*FuncProfile)}
}

// Func returns (creating if needed) the named function's counts.
func (p *Profile) Func(name string) *FuncProfile {
	if p.Funcs == nil {
		p.Funcs = make(map[string]*FuncProfile)
	}
	f := p.Funcs[name]
	if f == nil {
		f = &FuncProfile{}
		p.Funcs[name] = f
	}
	return f
}

// Count returns the function's entry count (0 for unprofiled functions).
func (p *Profile) Count(name string) int64 {
	if p == nil {
		return 0
	}
	if f := p.Funcs[name]; f != nil {
		return f.Entries
	}
	return 0
}

// TotalSteps sums dynamic instructions across all functions.
func (p *Profile) TotalSteps() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, f := range p.Funcs {
		n += f.Steps
	}
	return n
}

// Merge folds other's counts into p. Addition is commutative and
// associative, so any merge order over any sharding of the same runs yields
// the same profile — and hence byte-identical Encode output.
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	for name, of := range other.Funcs {
		f := p.Func(name)
		f.Entries += of.Entries
		f.Steps += of.Steps
		for label, n := range of.Blocks {
			if f.Blocks == nil {
				f.Blocks = make(map[string]int64, len(of.Blocks))
			}
			f.Blocks[label] += n
		}
		for edge, n := range of.Calls {
			if f.Calls == nil {
				f.Calls = make(map[string]int64, len(of.Calls))
			}
			f.Calls[edge] += n
		}
	}
}

// Merged returns the merge of ps into a fresh profile.
func Merged(ps ...*Profile) *Profile {
	out := New()
	for _, p := range ps {
		out.Merge(p)
	}
	return out
}

// Hot returns the set of function names at or above the entry-count
// threshold — the functions cold-only outlining must not touch. A threshold
// <= 0 disables classification entirely (nil result: nothing is hot), which
// is what makes `-outline-cold-only -outline-cold-threshold 0` build
// byte-identically to an ungated build.
func (p *Profile) Hot(threshold int64) map[string]bool {
	if p == nil || threshold <= 0 {
		return nil
	}
	hot := make(map[string]bool)
	for name, f := range p.Funcs {
		if f.Entries >= threshold {
			hot[name] = true
		}
	}
	return hot
}

// FuncStat is one row of the hot-function report.
type FuncStat struct {
	Name    string
	Entries int64
	Steps   int64
}

// TopN returns the n hottest functions by dynamic step count (ties resolve
// by name, so the report is deterministic).
func (p *Profile) TopN(n int) []FuncStat {
	if p == nil {
		return nil
	}
	stats := make([]FuncStat, 0, len(p.Funcs))
	for name, f := range p.Funcs {
		stats = append(stats, FuncStat{Name: name, Entries: f.Entries, Steps: f.Steps})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Steps != stats[j].Steps {
			return stats[i].Steps > stats[j].Steps
		}
		return stats[i].Name < stats[j].Name
	})
	if n < len(stats) {
		stats = stats[:n]
	}
	return stats
}

// fileForm is the serialized shape. encoding/json emits map keys in sorted
// order, which (with stable struct field order and fixed indentation) makes
// Encode canonical: equal profiles produce equal bytes.
type fileForm struct {
	Schema int                     `json:"schema"`
	Funcs  map[string]*FuncProfile `json:"functions"`
}

// Encode serializes the profile canonically (sorted keys, schema header,
// trailing newline).
func (p *Profile) Encode() []byte {
	funcs := p.Funcs
	if funcs == nil {
		funcs = map[string]*FuncProfile{}
	}
	data, err := json.MarshalIndent(fileForm{Schema: SchemaVersion, Funcs: funcs}, "", "  ")
	if err != nil {
		// Unreachable: the form contains only maps, strings, and integers.
		panic(fmt.Sprintf("profile: encode: %v", err))
	}
	return append(data, '\n')
}

// Decode parses an encoded profile, rejecting unknown schema versions and
// malformed input with an error, never a panic.
func Decode(data []byte) (*Profile, error) {
	var f fileForm
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("profile: schema version %d, want %d", f.Schema, SchemaVersion)
	}
	p := New()
	for name, fp := range f.Funcs {
		if fp == nil {
			return nil, fmt.Errorf("profile: null entry for function %q", name)
		}
		p.Funcs[name] = fp
	}
	return p, nil
}

// WriteFile writes the canonical encoding to path.
func (p *Profile) WriteFile(path string) error {
	return os.WriteFile(path, p.Encode(), 0o644)
}

// ReadFile reads and decodes a profile file.
func ReadFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ReadFiles reads and merges any number of profile files (shards from
// parallel collection, runs of different entry points).
func ReadFiles(paths ...string) (*Profile, error) {
	out := New()
	for _, path := range paths {
		p, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		out.Merge(p)
	}
	return out, nil
}

// Digest returns a short hex content hash of the canonical encoding — the
// profile identity that joins the machine-stage cache fingerprint, so a
// profiled build can never collide with a clean build's cache entries.
// Memoized: a profile is read-only once it feeds a build, and the default
// pipeline fingerprints it once per module.
func (p *Profile) Digest() string {
	if p == nil {
		return "none"
	}
	p.digestOnce.Do(func() {
		sum := sha256.Sum256(p.Encode())
		p.digest = hex.EncodeToString(sum[:16])
	})
	return p.digest
}
