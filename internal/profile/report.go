package profile

import (
	"fmt"
	"io"
)

// WriteHotReport renders the "hottest functions / coverage" section of a
// build or run summary: the top-n functions by dynamic steps, each row's
// share of total execution, and the hot/cold split at threshold (a
// non-positive threshold reports verdicts at threshold 1). Deterministic for
// a given profile.
func WriteHotReport(w io.Writer, p *Profile, n int, threshold int64) error {
	if p == nil || len(p.Funcs) == 0 {
		_, err := fmt.Fprintln(w, "profile: empty (no instrumented runs)")
		return err
	}
	thr := threshold
	if thr <= 0 {
		thr = 1
	}
	executed, hot := 0, 0
	for _, f := range p.Funcs {
		if f.Entries > 0 || f.Steps > 0 {
			executed++
		}
		if f.Entries >= thr {
			hot++
		}
	}
	total := p.TotalSteps()
	top := p.TopN(n)
	var covered int64
	for _, f := range top {
		covered += f.Steps
	}
	pct := func(part int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	if _, err := fmt.Fprintf(w,
		"profile: %d functions (%d executed, %d hot at threshold %d), %d total steps\n",
		len(p.Funcs), executed, hot, thr, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "hottest %d functions (%.1f%% of execution):\n",
		len(top), pct(covered)); err != nil {
		return err
	}
	for _, f := range top {
		verdict := "cold"
		if f.Entries >= thr {
			verdict = "hot"
		}
		if _, err := fmt.Fprintf(w, "  %-40s %10d steps  %6.1f%%  %8d entries  %s\n",
			f.Name, f.Steps, pct(f.Steps), f.Entries, verdict); err != nil {
			return err
		}
	}
	return nil
}
