package profile

import "sync"

// Collector is the concurrency-safe accumulation point an instrumented run
// feeds (exec.Options.Profile). Machines batch their per-run counts into a
// small Profile and hand it to Add, so the lock is taken once per run, not
// once per instruction; several machines (difftest oracle shards, parallel
// benchmark entry points) may share one collector.
type Collector struct {
	mu sync.Mutex
	p  *Profile
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{p: New()}
}

// Add merges one run's counts into the collector.
func (c *Collector) Add(p *Profile) {
	if c == nil || p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.p.Merge(p)
}

// Profile returns a snapshot of everything collected so far. The snapshot is
// independent of the collector: later Adds don't mutate it, so its Digest is
// stable once it feeds a build.
func (c *Collector) Profile() *Profile {
	if c == nil {
		return New()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Merged(c.p)
}
