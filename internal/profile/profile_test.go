package profile

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// randomProfile builds a profile from a seeded generator so property tests
// are reproducible.
func randomProfile(r *rand.Rand) *Profile {
	p := New()
	nf := 1 + r.Intn(6)
	for i := 0; i < nf; i++ {
		name := string(rune('a'+r.Intn(4))) + "_fn"
		f := p.Func(name)
		f.Entries += int64(r.Intn(100))
		f.Steps += int64(r.Intn(10000))
		for b := 0; b < r.Intn(4); b++ {
			if f.Blocks == nil {
				f.Blocks = map[string]int64{}
			}
			f.Blocks[[]string{"entry", "b1", "b2"}[r.Intn(3)]] += int64(1 + r.Intn(50))
		}
		for c := 0; c < r.Intn(4); c++ {
			if f.Calls == nil {
				f.Calls = map[string]int64{}
			}
			f.Calls[EdgeKey("callee", int64(4*r.Intn(8)))] += int64(1 + r.Intn(20))
		}
	}
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := randomProfile(r)
		enc := p.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", enc, got.Encode())
		}
	}
}

// Canonical encoding: building the same logical profile with different
// insertion orders must produce identical bytes.
func TestEncodeCanonical(t *testing.T) {
	a, b := New(), New()
	for _, name := range []string{"alpha", "beta", "gamma"} {
		f := a.Func(name)
		f.Entries, f.Steps = 3, 30
		f.Blocks = map[string]int64{"entry": 3, "loop": 9}
	}
	for _, name := range []string{"gamma", "alpha", "beta"} {
		f := b.Func(name)
		f.Blocks = map[string]int64{"loop": 9, "entry": 3}
		f.Entries, f.Steps = 3, 30
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("insertion order changed encoded bytes")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("insertion order changed digest")
	}
}

// Merge is commutative and associative: any merge order over the same shards
// yields byte-identical encodings.
func TestMergeCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		enc := func(p *Profile) []byte { return p.Encode() }
		ps := []*Profile{randomProfile(r), randomProfile(r), randomProfile(r)}
		// Re-decode to clone: Merge mutates the receiver.
		clone := func(p *Profile) *Profile {
			q, err := Decode(p.Encode())
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
		ab := clone(ps[0])
		ab.Merge(ps[1])
		ba := clone(ps[1])
		ba.Merge(ps[0])
		if !bytes.Equal(enc(ab), enc(ba)) {
			t.Fatal("merge not commutative")
		}
		abc := clone(ab)
		abc.Merge(ps[2])
		bc := clone(ps[1])
		bc.Merge(ps[2])
		abc2 := clone(ps[0])
		abc2.Merge(bc)
		if !bytes.Equal(enc(abc), enc(abc2)) {
			t.Fatal("merge not associative")
		}
		if !bytes.Equal(enc(abc), enc(Merged(ps[2], ps[0], ps[1]))) {
			t.Fatal("Merged order-sensitive")
		}
	}
}

func TestDecodeHostileInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"not json":     "xx{",
		"wrong schema": `{"schema": 99, "functions": {}}`,
		"no schema":    `{"functions": {}}`,
		"null func":    `{"schema": 1, "functions": {"f": null}}`,
		"bad type":     `{"schema": 1, "functions": {"f": {"entries": "lots"}}}`,
	}
	for name, in := range cases {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
	if _, err := Decode(New().Encode()); err != nil {
		t.Errorf("empty profile: %v", err)
	}
}

func TestHotThreshold(t *testing.T) {
	p := New()
	p.Func("hot").Entries = 100
	p.Func("warm").Entries = 10
	p.Func("cold").Entries = 1
	hot := p.Hot(10)
	if !hot["hot"] || !hot["warm"] || hot["cold"] {
		t.Fatalf("Hot(10) = %v", hot)
	}
	if p.Hot(0) != nil || p.Hot(-1) != nil {
		t.Fatal("non-positive threshold must disable classification")
	}
	var nilp *Profile
	if nilp.Hot(10) != nil || nilp.Count("x") != 0 {
		t.Fatal("nil profile must be inert")
	}
}

func TestTopNDeterministic(t *testing.T) {
	p := New()
	for _, name := range []string{"b", "a", "c", "d"} {
		f := p.Func(name)
		f.Steps = 50
		f.Entries = 1
	}
	p.Func("z").Steps = 100
	top := p.TopN(3)
	if len(top) != 3 || top[0].Name != "z" || top[1].Name != "a" || top[2].Name != "b" {
		t.Fatalf("TopN = %+v", top)
	}
	if got := len(p.TopN(100)); got != 5 {
		t.Fatalf("TopN(100) len = %d", got)
	}
}

func TestReadFilesMergesShards(t *testing.T) {
	dir := t.TempDir()
	a, b := New(), New()
	a.Func("f").Entries = 2
	b.Func("f").Entries = 3
	b.Func("g").Steps = 7
	pa, pb := dir+"/a.json", dir+"/b.json"
	if err := a.WriteFile(pa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(pb); err != nil {
		t.Fatal(err)
	}
	m1, err := ReadFiles(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ReadFiles(pb, pa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Fatal("shard merge order changed bytes")
	}
	if m1.Count("f") != 5 {
		t.Fatalf("Count(f) = %d", m1.Count("f"))
	}
}

func TestCollectorSnapshotIsolation(t *testing.T) {
	c := NewCollector()
	p := New()
	p.Func("f").Entries = 1
	c.Add(p)
	snap := c.Profile()
	d := snap.Digest()
	c.Add(p)
	if snap.Count("f") != 1 {
		t.Fatal("snapshot mutated by later Add")
	}
	if snap.Digest() != d {
		t.Fatal("snapshot digest changed")
	}
	if c.Profile().Count("f") != 2 {
		t.Fatal("collector lost a shard")
	}
}

func TestEncodeHasSchemaHeader(t *testing.T) {
	enc := string(New().Encode())
	if !strings.Contains(enc, `"schema": 1`) {
		t.Fatalf("missing schema header: %s", enc)
	}
	if !strings.HasSuffix(enc, "\n") {
		t.Fatal("missing trailing newline")
	}
}
