// Package suffixtree implements a suffix tree over integer alphabets using
// Ukkonen's online construction. It is the candidate-discovery structure of
// the machine outliner, mirroring llvm/ADT/SuffixTree: the outliner maps each
// machine instruction to an integer (identical instructions share an integer,
// un-outlinable instructions get fresh sentinels) and asks the tree for every
// repeated substring together with all of its occurrences.
package suffixtree

import "sort"

const (
	noNode  = -1
	leafEnd = -2 // sentinel edge end meaning "grows with the string"
)

type node struct {
	start int // edge label is s[start:end)
	end   int // leafEnd for leaves while building
	link  int // suffix link
	// children maps the first symbol of an outgoing edge to the child node.
	children map[int]int

	// Filled in by annotate():
	depth    int // string depth (length of the substring this node spells)
	leafLo   int // [leafLo, leafHi) into leafStarts: leaves beneath this node
	leafHi   int
	suffixIx int // for leaves: starting index of the suffix; -1 otherwise
}

// Tree is an immutable suffix tree over an int slice.
type Tree struct {
	s     []int
	nodes []node
	root  int

	// leafStarts lists suffix start positions in DFS order, so that every
	// node's occurrence set is the contiguous slice
	// leafStarts[leafLo:leafHi].
	leafStarts []int
}

// New builds the suffix tree of s. The caller must ensure s ends with (and is
// internally separated by) symbols that occur exactly once — the outliner
// uses negative sentinels — so that every suffix ends at a leaf.
func New(s []int) *Tree {
	t := &Tree{s: s, root: 0}
	t.nodes = make([]node, 1, 2*len(s)+2)
	t.nodes[0] = node{start: -1, end: -1, link: noNode, suffixIx: -1}
	t.build()
	t.annotate()
	return t
}

// NodeCount returns the number of nodes in the tree (root included) — the
// structure-size figure the telemetry layer reports per outlining round.
func (t *Tree) NodeCount() int { return len(t.nodes) }

func (t *Tree) newNode(start, end int) int {
	t.nodes = append(t.nodes, node{start: start, end: end, link: noNode, suffixIx: -1})
	return len(t.nodes) - 1
}

func (t *Tree) edgeLen(v, pos int) int {
	n := &t.nodes[v]
	end := n.end
	if end == leafEnd {
		end = pos + 1
	}
	return end - n.start
}

// build runs Ukkonen's algorithm.
func (t *Tree) build() {
	s := t.s
	activeNode, activeEdge, activeLen := t.root, 0, 0
	remaining := 0
	for pos := 0; pos < len(s); pos++ {
		remaining++
		lastNew := noNode
		for remaining > 0 {
			if activeLen == 0 {
				activeEdge = pos
			}
			child, ok := t.child(activeNode, s[activeEdge])
			if !ok {
				// No edge: create a leaf here.
				leaf := t.newNode(pos, leafEnd)
				t.setChild(activeNode, s[activeEdge], leaf)
				if lastNew != noNode {
					t.nodes[lastNew].link = activeNode
					lastNew = noNode
				}
			} else {
				if el := t.edgeLen(child, pos); activeLen >= el {
					// Walk down.
					activeEdge += el
					activeLen -= el
					activeNode = child
					continue
				}
				if s[t.nodes[child].start+activeLen] == s[pos] {
					// Symbol already present: extend the active point.
					if lastNew != noNode && activeNode != t.root {
						t.nodes[lastNew].link = activeNode
						lastNew = noNode
					}
					activeLen++
					break
				}
				// Split the edge.
				splitEnd := t.nodes[child].start + activeLen
				split := t.newNode(t.nodes[child].start, splitEnd)
				t.setChild(activeNode, s[activeEdge], split)
				leaf := t.newNode(pos, leafEnd)
				t.setChild(split, s[pos], leaf)
				t.nodes[child].start = splitEnd
				t.setChild(split, s[splitEnd], child)
				if lastNew != noNode {
					t.nodes[lastNew].link = split
				}
				lastNew = split
			}
			remaining--
			if activeNode == t.root && activeLen > 0 {
				activeLen--
				activeEdge = pos - remaining + 1
			} else if activeNode != t.root {
				if l := t.nodes[activeNode].link; l != noNode {
					activeNode = l
				} else {
					activeNode = t.root
				}
			}
		}
	}
}

func (t *Tree) child(v, sym int) (int, bool) {
	c := t.nodes[v].children
	if c == nil {
		return 0, false
	}
	ch, ok := c[sym]
	return ch, ok
}

func (t *Tree) setChild(v, sym, child int) {
	if t.nodes[v].children == nil {
		t.nodes[v].children = make(map[int]int)
	}
	t.nodes[v].children[sym] = child
}

// annotate computes string depths, suffix indices for leaves, and the
// DFS-contiguous leaf ranges for every node.
func (t *Tree) annotate() {
	n := len(t.s)
	t.leafStarts = make([]int, 0, n+1)

	type frame struct {
		v     int
		depth int
		kids  []int
		next  int
	}
	stack := []frame{{v: t.root, depth: 0, kids: t.sortedChildren(t.root)}}
	t.nodes[t.root].leafLo = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := &t.nodes[f.v]
		if f.next == 0 {
			nd.depth = f.depth
			nd.leafLo = len(t.leafStarts)
			if len(f.kids) == 0 {
				// Leaf: its suffix starts at n - depth.
				nd.suffixIx = n - f.depth
				t.leafStarts = append(t.leafStarts, nd.suffixIx)
			}
		}
		if f.next < len(f.kids) {
			c := f.kids[f.next]
			f.next++
			edge := t.nodes[c].end
			if edge == leafEnd {
				edge = n
			}
			stack = append(stack, frame{
				v:     c,
				depth: f.depth + edge - t.nodes[c].start,
				kids:  t.sortedChildren(c),
			})
			continue
		}
		nd.leafHi = len(t.leafStarts)
		stack = stack[:len(stack)-1]
	}
}

func (t *Tree) sortedChildren(v int) []int {
	c := t.nodes[v].children
	if len(c) == 0 {
		return nil
	}
	syms := make([]int, 0, len(c))
	for sym := range c {
		syms = append(syms, sym)
	}
	sort.Ints(syms)
	kids := make([]int, len(syms))
	for i, sym := range syms {
		kids[i] = c[sym]
	}
	return kids
}

// Repeat is one repeated substring: its length and the start index of every
// occurrence in the input. Starts aliases internal storage; callers must not
// modify it.
type Repeat struct {
	Length int
	Starts []int
}

// ForEachRepeat calls fn for every right-maximal repeated substring of
// length ≥ minLen occurring ≥ minCount times. These are exactly the internal
// nodes of the tree; any shorter/more-frequent prefix of a reported repeat is
// right-maximal too and is reported separately.
func (t *Tree) ForEachRepeat(minLen, minCount int, fn func(Repeat)) {
	for v := range t.nodes {
		nd := &t.nodes[v]
		if v == t.root || len(nd.children) == 0 {
			continue // root or leaf
		}
		count := nd.leafHi - nd.leafLo
		if nd.depth < minLen || count < minCount {
			continue
		}
		fn(Repeat{Length: nd.depth, Starts: t.leafStarts[nd.leafLo:nd.leafHi]})
	}
}

// Substring returns the input symbols for a repeat occurrence.
func (t *Tree) Substring(start, length int) []int {
	return t.s[start : start+length]
}
