// Package suffixtree implements a suffix tree over integer alphabets using
// Ukkonen's online construction. It is the candidate-discovery structure of
// the machine outliner, mirroring llvm/ADT/SuffixTree: the outliner maps each
// machine instruction to an integer (identical instructions share an integer,
// un-outlinable instructions get fresh sentinels) and asks the tree for every
// repeated substring together with all of its occurrences.
//
// Construction goes through a Builder so the outliner can amortize storage
// across rounds: nodes live in one slab, children live in a flat
// open-addressed edge table instead of a map per node, and every buffer is
// reused by the next Build. Inputs are limited to 2³¹−1 symbols (node fields
// are int32) — far beyond any whole-program instruction string.
package suffixtree

import "sort"

const (
	noNode  = int32(-1)
	leafEnd = int32(-2) // sentinel edge end meaning "grows with the string"
)

type node struct {
	start int32 // edge label is s[start:end)
	end   int32 // leafEnd for leaves while building
	link  int32 // suffix link

	// Filled in by groupEdges(): this node's outgoing edges are
	// edges[edgeLo:edgeHi), sorted by first symbol. Equal means leaf.
	edgeLo, edgeHi int32

	// Filled in by annotate():
	depth    int32 // string depth (length of the substring this node spells)
	leafLo   int32 // [leafLo, leafHi) into leafStarts: leaves beneath this node
	leafHi   int32
	suffixIx int32 // for leaves: starting index of the suffix; -1 otherwise
}

// edge is one parent→child link keyed by the first symbol of its label.
type edge struct {
	parent, sym, child int32
}

// Tree is an immutable suffix tree over an int slice. Trees returned by a
// Builder alias its storage and are valid only until the next Build call.
type Tree struct {
	s          []int
	nodes      []node
	leafStarts []int
}

const root = int32(0)

// Builder holds the reusable storage of suffix-tree construction. The zero
// value is ready to use; a Builder is not safe for concurrent use.
type Builder struct {
	s     []int
	nodes []node
	edges []edge

	// Open-addressed hash table mapping (parent, sym) to an index into
	// edges; -1 is empty. Only used during build — groupEdges supersedes it.
	table []int32
	mask  uint32

	scratch    []edge // scatter target for grouping edges by parent
	cnt        []int32
	leafStarts []int
	stack      []dfsFrame
}

type dfsFrame struct {
	v     int32
	depth int32
	next  int32 // cursor into edges[edgeLo:edgeHi)
}

// New builds the suffix tree of s with a throwaway Builder. The caller must
// ensure s ends with (and is internally separated by) symbols that occur
// exactly once — the outliner uses negative sentinels — so that every suffix
// ends at a leaf.
func New(s []int) *Tree {
	return new(Builder).Build(s)
}

// Build constructs the suffix tree of s, reusing the Builder's storage. The
// returned Tree (and any Repeat.Starts handed out from it) is invalidated by
// the next Build.
func (b *Builder) Build(s []int) *Tree {
	b.s = s
	if cap(b.nodes) < 1 {
		b.nodes = make([]node, 0, 2*len(s)+2)
	}
	b.nodes = b.nodes[:0]
	b.nodes = append(b.nodes, node{start: -1, end: -1, link: noNode, suffixIx: -1})
	b.edges = b.edges[:0]
	b.resetTable(4 * (len(s) + 1))
	b.build()
	b.groupEdges()
	b.annotate()
	return &Tree{s: s, nodes: b.nodes, leafStarts: b.leafStarts}
}

// NodeCount returns the number of nodes in the tree (root included) — the
// structure-size figure the telemetry layer reports per outlining round.
func (t *Tree) NodeCount() int { return len(t.nodes) }

func (b *Builder) newNode(start, end int32) int32 {
	b.nodes = append(b.nodes, node{start: start, end: end, link: noNode, suffixIx: -1})
	return int32(len(b.nodes) - 1)
}

func (b *Builder) edgeLen(v, pos int32) int32 {
	n := &b.nodes[v]
	end := n.end
	if end == leafEnd {
		end = pos + 1
	}
	return end - n.start
}

// ---- (parent, sym) → child lookup during construction ----

func edgeHash(parent, sym int32) uint64 {
	return (uint64(uint32(parent))<<32 | uint64(uint32(sym))) * 0x9e3779b97f4a7c15
}

func (b *Builder) resetTable(want int) {
	size := 16
	for size < want {
		size <<= 1
	}
	if cap(b.table) >= size {
		b.table = b.table[:size]
	} else {
		b.table = make([]int32, size)
	}
	for i := range b.table {
		b.table[i] = -1
	}
	b.mask = uint32(size - 1)
}

func (b *Builder) grow() {
	old := b.edges
	b.resetTable(2 * len(b.table))
	for i, e := range old {
		slot := uint32(edgeHash(e.parent, e.sym)>>32) & b.mask
		for b.table[slot] != -1 {
			slot = (slot + 1) & b.mask
		}
		b.table[slot] = int32(i)
	}
}

func (b *Builder) child(v, sym int32) (int32, bool) {
	slot := uint32(edgeHash(v, sym)>>32) & b.mask
	for {
		ei := b.table[slot]
		if ei == -1 {
			return 0, false
		}
		if e := &b.edges[ei]; e.parent == v && e.sym == sym {
			return e.child, true
		}
		slot = (slot + 1) & b.mask
	}
}

func (b *Builder) setChild(v, sym, child int32) {
	slot := uint32(edgeHash(v, sym)>>32) & b.mask
	for {
		ei := b.table[slot]
		if ei == -1 {
			break
		}
		if e := &b.edges[ei]; e.parent == v && e.sym == sym {
			e.child = child
			return
		}
		slot = (slot + 1) & b.mask
	}
	b.edges = append(b.edges, edge{parent: v, sym: sym, child: child})
	b.table[slot] = int32(len(b.edges) - 1)
	if 4*len(b.edges) >= 3*len(b.table) {
		b.grow()
	}
}

// build runs Ukkonen's algorithm.
func (b *Builder) build() {
	s := b.s
	activeNode, activeLen := root, int32(0)
	activeEdge := int32(0)
	remaining := int32(0)
	for pos := int32(0); pos < int32(len(s)); pos++ {
		remaining++
		lastNew := noNode
		for remaining > 0 {
			if activeLen == 0 {
				activeEdge = pos
			}
			child, ok := b.child(activeNode, int32(s[activeEdge]))
			if !ok {
				// No edge: create a leaf here.
				leaf := b.newNode(pos, leafEnd)
				b.setChild(activeNode, int32(s[activeEdge]), leaf)
				if lastNew != noNode {
					b.nodes[lastNew].link = activeNode
					lastNew = noNode
				}
			} else {
				if el := b.edgeLen(child, pos); activeLen >= el {
					// Walk down.
					activeEdge += el
					activeLen -= el
					activeNode = child
					continue
				}
				if s[b.nodes[child].start+activeLen] == s[pos] {
					// Symbol already present: extend the active point.
					if lastNew != noNode && activeNode != root {
						b.nodes[lastNew].link = activeNode
						lastNew = noNode
					}
					activeLen++
					break
				}
				// Split the edge.
				splitEnd := b.nodes[child].start + activeLen
				split := b.newNode(b.nodes[child].start, splitEnd)
				b.setChild(activeNode, int32(s[activeEdge]), split)
				leaf := b.newNode(pos, leafEnd)
				b.setChild(split, int32(s[pos]), leaf)
				b.nodes[child].start = splitEnd
				b.setChild(split, int32(s[splitEnd]), child)
				if lastNew != noNode {
					b.nodes[lastNew].link = split
				}
				lastNew = split
			}
			remaining--
			if activeNode == root && activeLen > 0 {
				activeLen--
				activeEdge = pos - remaining + 1
			} else if activeNode != root {
				if l := b.nodes[activeNode].link; l != noNode {
					activeNode = l
				} else {
					activeNode = root
				}
			}
		}
	}
}

// groupEdges arranges edges so each node's children are the contiguous run
// edges[edgeLo:edgeHi), sorted by first symbol: a counting sort by parent
// (edges arrive in insertion order) followed by an insertion sort of each
// node's few children. This replaces both the per-node child maps and the
// per-node sorted-symbol allocations of the DFS.
func (b *Builder) groupEdges() {
	n := len(b.nodes)
	if cap(b.cnt) >= n+1 {
		b.cnt = b.cnt[:n+1]
		for i := range b.cnt {
			b.cnt[i] = 0
		}
	} else {
		b.cnt = make([]int32, n+1)
	}
	for _, e := range b.edges {
		b.cnt[e.parent+1]++
	}
	for i := 1; i <= n; i++ {
		b.cnt[i] += b.cnt[i-1]
	}
	for v := range b.nodes {
		b.nodes[v].edgeLo = b.cnt[v]
		b.nodes[v].edgeHi = b.cnt[v+1]
	}
	if cap(b.scratch) >= len(b.edges) {
		b.scratch = b.scratch[:len(b.edges)]
	} else {
		b.scratch = make([]edge, len(b.edges))
	}
	for _, e := range b.edges { // scatter, consuming cnt as cursors
		b.scratch[b.cnt[e.parent]] = e
		b.cnt[e.parent]++
	}
	b.edges, b.scratch = b.scratch, b.edges
	for v := range b.nodes {
		lo, hi := b.nodes[v].edgeLo, b.nodes[v].edgeHi
		if hi-lo > 16 {
			// The root's fanout is the whole alphabet — insertion sort
			// would be quadratic there.
			g := b.edges[lo:hi]
			sort.Slice(g, func(i, j int) bool { return g[i].sym < g[j].sym })
			continue
		}
		for i := lo + 1; i < hi; i++ {
			e := b.edges[i]
			j := i
			for j > lo && b.edges[j-1].sym > e.sym {
				b.edges[j] = b.edges[j-1]
				j--
			}
			b.edges[j] = e
		}
	}
}

// annotate computes string depths, suffix indices for leaves, and the
// DFS-contiguous leaf ranges for every node.
func (b *Builder) annotate() {
	n := int32(len(b.s))
	if cap(b.leafStarts) >= len(b.s)+1 {
		b.leafStarts = b.leafStarts[:0]
	} else {
		b.leafStarts = make([]int, 0, len(b.s)+1)
	}
	stack := b.stack[:0]
	stack = append(stack, dfsFrame{v: root, depth: 0, next: b.nodes[root].edgeLo})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := &b.nodes[f.v]
		if f.next == nd.edgeLo { // first visit
			nd.depth = f.depth
			nd.leafLo = int32(len(b.leafStarts))
			if nd.edgeLo == nd.edgeHi {
				// Leaf: its suffix starts at n - depth.
				nd.suffixIx = n - f.depth
				b.leafStarts = append(b.leafStarts, int(nd.suffixIx))
			}
		}
		if f.next < nd.edgeHi {
			c := b.edges[f.next]
			f.next++
			cn := &b.nodes[c.child]
			end := cn.end
			if end == leafEnd {
				end = n
			}
			stack = append(stack, dfsFrame{
				v:     c.child,
				depth: f.depth + end - cn.start,
				next:  cn.edgeLo,
			})
			continue
		}
		nd.leafHi = int32(len(b.leafStarts))
		stack = stack[:len(stack)-1]
	}
	b.stack = stack[:0]
}

// Repeat is one repeated substring: its length and the start index of every
// occurrence in the input. Starts aliases internal storage; callers must not
// modify it, and it is invalidated by the Builder's next Build.
type Repeat struct {
	Length int
	Starts []int
}

// ForEachRepeat calls fn for every right-maximal repeated substring of
// length ≥ minLen occurring ≥ minCount times. These are exactly the internal
// nodes of the tree; any shorter/more-frequent prefix of a reported repeat is
// right-maximal too and is reported separately.
func (t *Tree) ForEachRepeat(minLen, minCount int, fn func(Repeat)) {
	for v := range t.nodes {
		nd := &t.nodes[v]
		if int32(v) == root || nd.edgeLo == nd.edgeHi {
			continue // root or leaf
		}
		count := int(nd.leafHi - nd.leafLo)
		if int(nd.depth) < minLen || count < minCount {
			continue
		}
		fn(Repeat{Length: int(nd.depth), Starts: t.leafStarts[nd.leafLo:nd.leafHi]})
	}
}

// Substring returns the input symbols for a repeat occurrence.
func (t *Tree) Substring(start, length int) []int {
	return t.s[start : start+length]
}
