package suffixtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sym converts a byte string into the int alphabet with a unique terminator.
func sym(s string) []int {
	out := make([]int, 0, len(s)+1)
	for _, b := range []byte(s) {
		out = append(out, int(b))
	}
	out = append(out, -1)
	return out
}

// collect returns all repeats as map[substring-as-string] -> sorted starts.
func collect(t *Tree, minLen, minCount int) map[string][]int {
	got := make(map[string][]int)
	t.ForEachRepeat(minLen, minCount, func(r Repeat) {
		starts := append([]int(nil), r.Starts...)
		sort.Ints(starts)
		key := ""
		for _, v := range t.Substring(starts[0], r.Length) {
			key += string(rune(v))
		}
		got[key] = starts
	})
	return got
}

func TestSimpleRepeats(t *testing.T) {
	// "abcabcabc": "abc" (and rotations) repeat.
	tree := New(sym("abcabcabc"))
	got := collect(tree, 3, 2)
	abc, ok := got["abcabc"]
	if !ok {
		// "abcabc" occurs at 0 and 3 (overlapping) — right-maximal.
		t.Fatalf("missing repeat abcabc; got %v", keys(got))
	}
	if len(abc) != 2 || abc[0] != 0 || abc[1] != 3 {
		t.Errorf("abcabc starts = %v, want [0 3]", abc)
	}
	if starts, ok := got["abc"]; !ok || len(starts) != 3 {
		t.Errorf("abc starts = %v, want 3 occurrences", starts)
	}
}

func TestMinCountAndMinLen(t *testing.T) {
	tree := New(sym("xxabyxaby"))
	all := collect(tree, 2, 2)
	// "xab" always precedes "y", so only the right-maximal "xaby" shows up.
	if _, ok := all["xaby"]; !ok {
		t.Errorf("xaby should repeat; got %v", keys(all))
	}
	if _, ok := all["xab"]; ok {
		t.Error("xab is not right-maximal and must not be reported")
	}
	none := collect(tree, 10, 2)
	if len(none) != 0 {
		t.Errorf("no repeats of length 10 expected, got %v", keys(none))
	}
	tripleOnly := collect(tree, 1, 3)
	if _, ok := tripleOnly["x"]; !ok {
		t.Errorf("x occurs 3 times; got %v", keys(tripleOnly))
	}
	if _, ok := tripleOnly["ab"]; ok {
		t.Error("ab occurs only twice, must be filtered by minCount=3")
	}
}

func TestSeparatorsPreventCrossMatches(t *testing.T) {
	// Two "blocks" ab|ab with distinct separators: "abab" must NOT repeat,
	// "ab" must repeat twice.
	s := []int{'a', 'b', -1, 'a', 'b', -2}
	tree := New(s)
	found := false
	tree.ForEachRepeat(2, 2, func(r Repeat) {
		if r.Length == 2 {
			found = true
		}
		if r.Length > 2 {
			t.Errorf("repeat of length %d crosses separator", r.Length)
		}
	})
	if !found {
		t.Error("missing ab repeat across separated blocks")
	}
}

// naiveRepeats computes right-maximal repeated substrings by brute force.
func naiveRepeats(s []int, minLen, minCount int) map[string][]int {
	key := func(sub []int) string {
		out := ""
		for _, v := range sub {
			out += string(rune(v + 1000))
		}
		return out
	}
	occ := make(map[string][]int)
	for l := minLen; l <= len(s); l++ {
		for i := 0; i+l <= len(s); i++ {
			occ[key(s[i:i+l])] = append(occ[key(s[i:i+l])], i)
		}
	}
	out := make(map[string][]int)
	for l := minLen; l <= len(s); l++ {
		for i := 0; i+l <= len(s); i++ {
			sub := s[i : i+l]
			starts := occ[key(sub)]
			if len(starts) < minCount {
				continue
			}
			// Right-maximal: extending by one symbol changes the occurrence
			// set for at least one occurrence pair, i.e. not every
			// occurrence is followed by the same symbol.
			rightMax := false
			var follow int
			haveFollow := false
			for _, st := range starts {
				if st+l >= len(s) {
					rightMax = true
					break
				}
				if !haveFollow {
					follow, haveFollow = s[st+l], true
				} else if s[st+l] != follow {
					rightMax = true
					break
				}
			}
			if rightMax {
				out[key(sub)] = starts
			}
		}
	}
	return out
}

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		alpha := 1 + rng.Intn(4)
		s := make([]int, 0, n+1)
		for i := 0; i < n; i++ {
			s = append(s, rng.Intn(alpha))
		}
		s = append(s, -1-trial) // unique terminator
		tree := New(s)

		want := naiveRepeats(s, 2, 2)
		got := make(map[string][]int)
		keyOf := func(sub []int) string {
			out := ""
			for _, v := range sub {
				out += string(rune(v + 1000))
			}
			return out
		}
		tree.ForEachRepeat(2, 2, func(r Repeat) {
			starts := append([]int(nil), r.Starts...)
			sort.Ints(starts)
			got[keyOf(tree.Substring(starts[0], r.Length))] = starts
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d (s=%v): got %d repeats, want %d\n got=%v\nwant=%v",
				trial, s, len(got), len(want), got, want)
		}
		for k, ws := range want {
			gs, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: missing repeat (len %d chars)", trial, len(k))
			}
			sort.Ints(ws)
			if !intsEqual(gs, ws) {
				t.Fatalf("trial %d: starts differ: got %v want %v", trial, gs, ws)
			}
		}
	}
}

func TestSuffixStartsAreCorrect(t *testing.T) {
	// Property: every reported occurrence actually matches the substring.
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > 200 {
			return true
		}
		s := make([]int, 0, len(data)+1)
		for _, b := range data {
			s = append(s, int(b%5))
		}
		s = append(s, -7)
		tree := New(s)
		ok := true
		tree.ForEachRepeat(2, 2, func(r Repeat) {
			ref := s[r.Starts[0] : r.Starts[0]+r.Length]
			for _, st := range r.Starts {
				if st+r.Length > len(s) {
					ok = false
					return
				}
				for i, v := range ref {
					if s[st+i] != v {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargeInputPerformanceShape(t *testing.T) {
	// A 100k-symbol input with heavy repetition must build quickly and
	// report the dominant repeat. This guards against accidental quadratic
	// behaviour in construction.
	n := 100_000
	s := make([]int, 0, n+1)
	for i := 0; i < n/4; i++ {
		s = append(s, 1, 2, 3, i%7)
	}
	s = append(s, -1)
	tree := New(s)
	maxCount := 0
	tree.ForEachRepeat(2, 2, func(r Repeat) {
		if len(r.Starts) > maxCount {
			maxCount = len(r.Starts)
		}
	})
	if maxCount < n/8 {
		t.Errorf("dominant repeat count = %d, want >= %d", maxCount, n/8)
	}
}

func keys(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A reused Builder must produce exactly the tree a fresh construction would:
// the outliner rebuilds the tree every round from the same Builder, and its
// output feeds deterministic, byte-identical builds.
func TestBuilderReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b Builder
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(400)
		alphabet := 1 + rng.Intn(12)
		s := make([]int, n)
		sentinel := -1
		for i := range s {
			if rng.Intn(10) == 0 {
				s[i] = sentinel
				sentinel--
			} else {
				s[i] = rng.Intn(alphabet)
			}
		}
		fresh := collect(New(s), 2, 2)
		reused := collect(b.Build(s), 2, 2)
		if len(fresh) != len(reused) {
			t.Fatalf("round %d: reused builder found %d repeats, fresh %d", round, len(reused), len(fresh))
		}
		for key, starts := range fresh {
			got, ok := reused[key]
			if !ok {
				t.Fatalf("round %d: reused builder missing repeat %q", round, key)
			}
			if len(got) != len(starts) {
				t.Fatalf("round %d: repeat %q starts %v vs fresh %v", round, key, got, starts)
			}
			for i := range got {
				if got[i] != starts[i] {
					t.Fatalf("round %d: repeat %q starts %v vs fresh %v", round, key, got, starts)
				}
			}
		}
	}
}
