package mir

import (
	"fmt"
	"strconv"
	"strings"

	"outliner/internal/isa"
)

// Parse reads the textual MIR format produced by Program.String:
//
//	func @name module "m" {
//	entry:
//	  ORRXrs $x0, $xzr, $x20
//	  BL @swift_release
//	  RET
//	}
//	global @gTable module "m" = [1, 2, 3]
//
// It is used by tests and by the cmd/outline tool, which plays the role of
// `llc -outline-repeat-count=N` from the paper's artifact.
func Parse(src string) (*Program, error) {
	p := NewProgram()
	var cur *Function
	var curBlock *Block
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("mir: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if cur != nil {
				return nil, fail("nested func")
			}
			f, err := parseFuncHeader(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur = f
			curBlock = nil
		case line == "}":
			if cur == nil {
				return nil, fail("unmatched }")
			}
			p.AddFunc(cur)
			cur, curBlock = nil, nil
		case strings.HasPrefix(line, "global "):
			g, err := parseGlobal(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			p.AddGlobal(g)
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, fail("label outside func")
			}
			curBlock = &Block{Label: strings.TrimSuffix(line, ":")}
			cur.Blocks = append(cur.Blocks, curBlock)
		default:
			if curBlock == nil {
				return nil, fail("instruction outside block: %q", line)
			}
			in, err := ParseInst(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			curBlock.Insts = append(curBlock.Insts, in)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("mir: unterminated func @%s", cur.Name)
	}
	return p, nil
}

func parseFuncHeader(line string) (*Function, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "func"))
	if !strings.HasSuffix(rest, "{") {
		return nil, fmt.Errorf("func header must end with {")
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	fields := strings.Fields(rest)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "@") {
		return nil, fmt.Errorf("func header needs @name")
	}
	f := &Function{Name: strings.TrimPrefix(fields[0], "@")}
	for i := 1; i < len(fields); i++ {
		switch {
		case fields[i] == "module" && i+1 < len(fields):
			i++
			mod, err := strconv.Unquote(fields[i])
			if err != nil {
				return nil, fmt.Errorf("bad module name %s", fields[i])
			}
			f.Module = mod
		case fields[i] == "outlined":
			f.Outlined = true
		default:
			return nil, fmt.Errorf("unexpected token %q in func header", fields[i])
		}
	}
	return f, nil
}

func parseGlobal(line string) (*Global, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "global"))
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return nil, fmt.Errorf("global needs =")
	}
	head, body := strings.TrimSpace(rest[:eq]), strings.TrimSpace(rest[eq+1:])
	fields := strings.Fields(head)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "@") {
		return nil, fmt.Errorf("global needs @name")
	}
	g := &Global{Name: strings.TrimPrefix(fields[0], "@")}
	if len(fields) >= 3 && fields[1] == "module" {
		mod, err := strconv.Unquote(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bad module name %s", fields[2])
		}
		g.Module = mod
	}
	if !strings.HasPrefix(body, "[") || !strings.HasSuffix(body, "]") {
		return nil, fmt.Errorf("global body must be [w0, w1, ...]")
	}
	body = strings.TrimSpace(body[1 : len(body)-1])
	if body == "" {
		return g, nil
	}
	for _, tok := range strings.Split(body, ",") {
		w, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad word %q", tok)
		}
		g.Words = append(g.Words, w)
	}
	return g, nil
}

// ParseInst parses a single instruction in the format produced by
// isa.Inst.String.
func ParseInst(line string) (isa.Inst, error) {
	var in isa.Inst
	mnemonic, rest, _ := strings.Cut(line, " ")
	// Bcc carries its condition as a suffix: "Bcc.ne @label".
	if base, cond, ok := strings.Cut(mnemonic, "."); ok && base == "Bcc" {
		mnemonic = base
		c, err := parseCond(cond)
		if err != nil {
			return in, err
		}
		in.Cond = c
	}
	op, ok := isa.OpFromName(mnemonic)
	if !ok {
		return in, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	in.Op = op
	var operands []string
	if rest = strings.TrimSpace(rest); rest != "" {
		operands = strings.Split(rest, ",")
		for i := range operands {
			operands[i] = strings.TrimSpace(operands[i])
		}
	}
	pos := 0
	next := func() (string, error) {
		if pos >= len(operands) {
			return "", fmt.Errorf("%s: missing operand %d", mnemonic, pos)
		}
		tok := operands[pos]
		pos++
		return tok, nil
	}
	reg := func(dst *isa.Reg) error {
		tok, err := next()
		if err != nil {
			return err
		}
		r, err := parseReg(tok)
		if err != nil {
			return err
		}
		*dst = r
		return nil
	}
	imm := func() error {
		tok, err := next()
		if err != nil {
			return err
		}
		if !strings.HasPrefix(tok, "#") {
			return fmt.Errorf("%s: expected immediate, got %q", mnemonic, tok)
		}
		v, err := strconv.ParseInt(tok[1:], 10, 64)
		if err != nil {
			return err
		}
		in.Imm = v
		return nil
	}
	sym := func() error {
		tok, err := next()
		if err != nil {
			return err
		}
		if !strings.HasPrefix(tok, "@") {
			return fmt.Errorf("%s: expected @symbol, got %q", mnemonic, tok)
		}
		in.Sym = tok[1:]
		return nil
	}
	var err error
	switch op {
	case isa.MOVZ:
		err = firstErr(reg(&in.Rd), imm())
	case isa.ORRrs, isa.ANDrs, isa.EORrs, isa.ADDrs, isa.SUBrs, isa.MUL, isa.SDIV, isa.MSUB:
		err = firstErr(reg(&in.Rd), reg(&in.Rn), reg(&in.Rm))
	case isa.ADDri, isa.SUBri, isa.LSLri, isa.LSRri, isa.ASRri, isa.LDRui, isa.STRui,
		isa.STRpre, isa.LDRpost:
		err = firstErr(reg(&in.Rd), reg(&in.Rn), imm())
	case isa.CMPrs:
		err = firstErr(reg(&in.Rn), reg(&in.Rm))
	case isa.CMPri:
		err = firstErr(reg(&in.Rn), imm())
	case isa.CSET:
		if err = reg(&in.Rd); err == nil {
			var tok string
			if tok, err = next(); err == nil {
				in.Cond, err = parseCond(tok)
			}
		}
	case isa.LDPui, isa.STPui, isa.STPpre, isa.LDPpost:
		err = firstErr(reg(&in.Rd), reg(&in.Rd2), reg(&in.Rn), imm())
	case isa.ADR:
		err = firstErr(reg(&in.Rd), sym())
	case isa.B, isa.BL, isa.Bcc:
		err = sym()
	case isa.CBZ, isa.CBNZ:
		err = firstErr(reg(&in.Rn), sym())
	case isa.BLR:
		err = reg(&in.Rn)
	case isa.BRK:
		err = imm()
	case isa.RET, isa.NOP:
	default:
		err = fmt.Errorf("unhandled opcode %q", mnemonic)
	}
	if err != nil {
		return in, err
	}
	if pos != len(operands) {
		return in, fmt.Errorf("%s: %d extra operand(s)", mnemonic, len(operands)-pos)
	}
	return in, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func parseReg(tok string) (isa.Reg, error) {
	if !strings.HasPrefix(tok, "$") {
		return 0, fmt.Errorf("expected $register, got %q", tok)
	}
	name := tok[1:]
	switch name {
	case "sp":
		return isa.SP, nil
	case "xzr":
		return isa.XZR, nil
	case "x29":
		return isa.FP, nil
	case "x30":
		return isa.LR, nil
	}
	if strings.HasPrefix(name, "x") {
		n, err := strconv.Atoi(name[1:])
		if err == nil && n >= 0 && n <= 30 {
			return isa.X0 + isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

func parseCond(tok string) (isa.Cond, error) {
	switch tok {
	case "eq":
		return isa.EQ, nil
	case "ne":
		return isa.NE, nil
	case "lt":
		return isa.LT, nil
	case "le":
		return isa.LE, nil
	case "gt":
		return isa.GT, nil
	case "ge":
		return isa.GE, nil
	}
	return 0, fmt.Errorf("bad condition %q", tok)
}
