package mir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"outliner/internal/isa"
)

const sampleSrc = `
func @release_x20 module "RiderCore" {
entry:
  ORRXrs $x0, $xzr, $x20
  BL @swift_release
  RET
}

func @caller module "RiderCore" {
entry:
  MOVZXi $x0, #5
  CMPXri $x0, #0
  Bcc.eq @done
body:
  BL @release_x20
done:
  RET
}

global @gTable module "RiderCore" = [1, 2, 3]
`

var externRT = map[string]bool{"swift_release": true}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseAndPrintRoundTrip(t *testing.T) {
	p := mustParse(t, sampleSrc)
	if got := len(p.Funcs); got != 2 {
		t.Fatalf("parsed %d funcs, want 2", got)
	}
	if p.Func("release_x20") == nil || p.Func("caller") == nil {
		t.Fatal("function index missing entries")
	}
	if p.Func("release_x20").Module != "RiderCore" {
		t.Errorf("module = %q", p.Func("release_x20").Module)
	}
	if len(p.Globals) != 1 || p.Globals[0].Name != "gTable" || len(p.Globals[0].Words) != 3 {
		t.Fatalf("global parse wrong: %+v", p.Globals)
	}

	printed := p.String()
	p2 := mustParse(t, printed)
	if p2.String() != printed {
		t.Error("print/parse/print is not a fixed point")
	}
	if p2.NumInsts() != p.NumInsts() {
		t.Errorf("round trip changed inst count: %d vs %d", p2.NumInsts(), p.NumInsts())
	}
}

func TestParseInstMatchesConstructed(t *testing.T) {
	in, err := ParseInst("ORRXrs $x0, $xzr, $x20")
	if err != nil {
		t.Fatal(err)
	}
	if in != isa.MoveRR(isa.X0, isa.X20) {
		t.Errorf("parsed %+v differs from constructed move", in)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func @f {\nentry:\n  FROB $x0\n}",             // unknown opcode
		"func @f {\n  RET\n}",                          // inst outside block
		"func @f {\nentry:\n  BL swift\n}",             // symbol without @
		"func @f {\nentry:\n  MOVZXi $x0\n}",           // missing operand
		"func @f {\nentry:\n  RET $x0\n}",              // extra operand
		"func @f {\nentry:\n  RET\n",                   // unterminated
		"}",                                            // unmatched brace
		"func @f {\nentry:\n  LDRXui $x0, $x99, #0\n}", // bad register
		"global @g = 5",                                // bad global body
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid input %q", src)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	p := mustParse(t, sampleSrc)
	// release_x20: 3 insts, caller: 5 insts, all 4 bytes.
	if got := p.NumInsts(); got != 8 {
		t.Errorf("NumInsts = %d, want 8", got)
	}
	if got := p.CodeSize(); got != 32 {
		t.Errorf("CodeSize = %d, want 32", got)
	}
	if got := p.DataSize(); got != 24 {
		t.Errorf("DataSize = %d, want 24", got)
	}
	withADR := mustParse(t, "func @f {\nentry:\n  ADRP $x0, @gTable\n  RET\n}\nglobal @gTable = [0]")
	if got := withADR.CodeSize(); got != 12 {
		t.Errorf("CodeSize with ADR = %d, want 12", got)
	}
}

func TestVerifyAcceptsSample(t *testing.T) {
	p := mustParse(t, sampleSrc)
	if err := p.Verify(externRT); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesBreakage(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"unknown call", func(p *Program) {
			p.Func("caller").Blocks[1].Insts[0] = isa.Inst{Op: isa.BL, Sym: "nonexistent"}
		}},
		{"unknown branch", func(p *Program) {
			p.Func("caller").Blocks[0].Insts[2] = isa.Inst{Op: isa.Bcc, Cond: isa.EQ, Sym: "nowhere"}
		}},
		{"non-terminator after terminator", func(p *Program) {
			b := p.Func("caller").Blocks[0]
			b.Insts[0] = isa.Inst{Op: isa.RET} // leaves CMPXri after RET
		}},
		{"missing final terminator", func(p *Program) {
			b := p.Func("caller").Blocks[2]
			b.Insts = b.Insts[:0]
		}},
		{"duplicate label", func(p *Program) {
			f := p.Func("caller")
			f.Blocks[1].Label = "entry"
		}},
		{"unknown adr", func(p *Program) {
			b := p.Func("caller").Blocks[0]
			b.Insts[0] = isa.Inst{Op: isa.ADR, Rd: isa.X0, Sym: "noglobal"}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := mustParse(t, sampleSrc)
			c.mutate(p)
			if err := p.Verify(externRT); err == nil {
				t.Error("Verify accepted broken program")
			}
		})
	}
}

func TestVerifyAcceptsTailCallB(t *testing.T) {
	src := `
func @outlined outlined {
entry:
  ORRXrs $x0, $xzr, $x20
  B @swift_release
}
`
	p := mustParse(t, src)
	if err := p.Verify(externRT); err != nil {
		t.Fatalf("Verify rejected thunk tail call: %v", err)
	}
	if !p.Func("outlined").Outlined {
		t.Error("outlined flag not parsed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mustParse(t, sampleSrc)
	c := p.Clone()
	c.Func("caller").Blocks[0].Insts[0] = isa.Inst{Op: isa.NOP}
	c.Globals[0].Words[0] = 99
	if p.Func("caller").Blocks[0].Insts[0].Op == isa.NOP {
		t.Error("Clone shares instruction storage")
	}
	if p.Globals[0].Words[0] == 99 {
		t.Error("Clone shares global storage")
	}
}

func TestModules(t *testing.T) {
	p := mustParse(t, sampleSrc)
	p.AddFunc(&Function{Name: "z", Module: "Vendor", Blocks: []*Block{{Label: "entry", Insts: []isa.Inst{{Op: isa.RET}}}}})
	mods := p.Modules()
	if len(mods) != 2 || mods[0] != "RiderCore" || mods[1] != "Vendor" {
		t.Errorf("Modules = %v", mods)
	}
}

func TestDuplicateFuncPanics(t *testing.T) {
	p := NewProgram()
	p.AddFunc(&Function{Name: "f"})
	defer func() {
		if recover() == nil {
			t.Error("AddFunc accepted duplicate name")
		}
	}()
	p.AddFunc(&Function{Name: "f"})
}

// Liveness: in a frame-bearing function, LR is dead between the prologue
// save and the epilogue restore — exactly the window where the no-LR-save
// outlining strategy is legal.
func TestLivenessLRWindow(t *testing.T) {
	src := `
func @framed {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ORRXrs $x19, $xzr, $x0
  BL @swift_retain
  ORRXrs $x0, $xzr, $x19
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`
	p := mustParse(t, src)
	f := p.Func("framed")
	lv := ComputeLiveness(f, DefaultExternLive)
	// After the prologue store (index 0) LR's old value is saved; LR is not
	// needed again until the LDPXpost redefines it.
	for i := 0; i <= 3; i++ {
		if lv.LRLiveAfter(0, i) {
			t.Errorf("LR live after inst %d; want dead inside frame window", i)
		}
	}
	if !lv.LRLiveAfter(0, 4) {
		t.Error("LR dead after epilogue restore; RET needs it")
	}
}

// In a leaf function with no frame, LR stays live throughout: outlining there
// must save LR.
func TestLivenessLeafLRAlwaysLive(t *testing.T) {
	src := `
func @leaf {
entry:
  MOVZXi $x1, #7
  ADDXrs $x0, $x0, $x1
  RET
}
`
	p := mustParse(t, src)
	lv := ComputeLiveness(p.Func("leaf"), DefaultExternLive)
	if !lv.LRLiveAfter(0, 0) || !lv.LRLiveAfter(0, 1) {
		t.Error("LR must be live in a leaf function body")
	}
}

// A thunk exit (tail call) keeps LR live at its end.
func TestLivenessTailCall(t *testing.T) {
	src := `
func @thunk outlined {
entry:
  ORRXrs $x0, $xzr, $x20
  B @swift_release
}
`
	p := mustParse(t, src)
	lv := ComputeLiveness(p.Func("thunk"), DefaultExternLive)
	if !lv.LiveAfter[0][0].Has(isa.LR) {
		t.Error("LR must be live before a tail call")
	}
}

func TestLivenessFlags(t *testing.T) {
	src := `
func @f {
entry:
  CMPXri $x0, #3
  ORRXrs $x1, $xzr, $x2
  Bcc.eq @t
t:
  RET
}
`
	p := mustParse(t, src)
	lv := ComputeLiveness(p.Func("f"), DefaultExternLive)
	if !lv.LiveAfter[0][0].HasFlags() || !lv.LiveAfter[0][1].HasFlags() {
		t.Error("flags must be live between CMP and Bcc")
	}
	if lv.LiveAfter[0][2].HasFlags() {
		t.Error("flags must be dead after the consuming branch")
	}
}

func TestLivenessLoop(t *testing.T) {
	// x19 is used around the back edge; it must be live throughout the loop.
	src := `
func @loop {
entry:
  MOVZXi $x19, #10
loop:
  SUBXri $x19, $x19, #1
  CBNZX $x19, @loop
exit:
  ORRXrs $x0, $xzr, $x19
  RET
}
`
	p := mustParse(t, src)
	f := p.Func("loop")
	lv := ComputeLiveness(f, DefaultExternLive)
	if !lv.LiveAfter[0][0].Has(isa.X19) {
		t.Error("x19 must be live at entry block exit")
	}
	if !lv.LiveAfter[1][1].Has(isa.X19) {
		t.Error("x19 must be live around the back edge")
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s = s.Add(isa.X0).Add(isa.LR).Add(isa.XZR)
	if s.Has(isa.XZR) {
		t.Error("XZR must never be tracked")
	}
	if !s.Has(isa.X0) || !s.Has(isa.LR) {
		t.Error("Add lost a register")
	}
	s = s.Remove(isa.X0)
	if s.Has(isa.X0) {
		t.Error("Remove failed")
	}
	if s.HasFlags() {
		t.Error("flags set unexpectedly")
	}
	s = s.AddFlags()
	if !s.HasFlags() {
		t.Error("AddFlags failed")
	}
}

func TestFunctionStringContainsListingStylePattern(t *testing.T) {
	p := mustParse(t, sampleSrc)
	out := p.Func("release_x20").String()
	// The printed form should read like the paper's Listing 1.
	if !strings.Contains(out, "ORRXrs $x0, $xzr, $x20") || !strings.Contains(out, "BL @swift_release") {
		t.Errorf("unexpected print:\n%s", out)
	}
}

// Property: printing and reparsing a random (structurally valid) program is
// the identity on the instruction stream.
func TestParsePrintRoundTripProperty(t *testing.T) {
	ops := []isa.Op{
		isa.MOVZ, isa.ORRrs, isa.ANDrs, isa.EORrs, isa.ADDrs, isa.ADDri,
		isa.SUBrs, isa.SUBri, isa.MUL, isa.SDIV, isa.LSLri, isa.LSRri,
		isa.ASRri, isa.CMPrs, isa.CMPri, isa.CSET, isa.LDRui, isa.STRui,
		isa.LDPui, isa.STPui, isa.STRpre, isa.LDRpost, isa.NOP,
	}
	regs := []isa.Reg{isa.X0, isa.X1, isa.X9, isa.X19, isa.X28, isa.FP, isa.SP, isa.XZR}
	conds := []isa.Cond{isa.EQ, isa.NE, isa.LT, isa.LE, isa.GT, isa.GE}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		p := NewProgram()
		f := &Function{Name: fmt.Sprintf("f%d", trial), Module: "M"}
		b := &Block{Label: "entry"}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			in := isa.Inst{Op: ops[rng.Intn(len(ops))]}
			in.Rd = regs[rng.Intn(len(regs))]
			in.Rd2 = regs[rng.Intn(len(regs))]
			in.Rn = regs[rng.Intn(len(regs))]
			in.Rm = regs[rng.Intn(len(regs))]
			in.Imm = int64(rng.Intn(4096))
			in.Cond = conds[rng.Intn(len(conds))]
			// Normalize unused slots to the zero value, as the parser will.
			in = normalizeForOp(in)
			b.Insts = append(b.Insts, in)
		}
		b.Insts = append(b.Insts, isa.Inst{Op: isa.RET})
		f.Blocks = []*Block{b}
		p.AddFunc(f)

		printed := p.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, printed)
		}
		got := back.Func(f.Name).Blocks[0].Insts
		want := f.Blocks[0].Insts
		if len(got) != len(want) {
			t.Fatalf("trial %d: inst count changed", trial)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d inst %d: %+v != %+v\n%s", trial, i, got[i], want[i], printed)
			}
		}
	}
}

// normalizeForOp zeroes the operand slots an opcode does not encode, so that
// constructed instructions compare equal after a print/parse cycle.
func normalizeForOp(in isa.Inst) isa.Inst {
	out := isa.Inst{Op: in.Op}
	switch in.Op {
	case isa.MOVZ:
		out.Rd, out.Imm = in.Rd, in.Imm
	case isa.ORRrs, isa.ANDrs, isa.EORrs, isa.ADDrs, isa.SUBrs, isa.MUL, isa.SDIV:
		out.Rd, out.Rn, out.Rm = in.Rd, in.Rn, in.Rm
	case isa.ADDri, isa.SUBri, isa.LSLri, isa.LSRri, isa.ASRri, isa.LDRui, isa.STRui,
		isa.STRpre, isa.LDRpost:
		out.Rd, out.Rn, out.Imm = in.Rd, in.Rn, in.Imm
	case isa.CMPrs:
		out.Rn, out.Rm = in.Rn, in.Rm
	case isa.CMPri:
		out.Rn, out.Imm = in.Rn, in.Imm
	case isa.CSET:
		out.Rd, out.Cond = in.Rd, in.Cond
	case isa.LDPui, isa.STPui:
		out.Rd, out.Rd2, out.Rn, out.Imm = in.Rd, in.Rd2, in.Rn, in.Imm
	case isa.NOP:
	}
	return out
}
