package mir

import (
	"fmt"

	"outliner/internal/isa"
)

// Verify checks structural invariants of the program:
//
//   - function and block labels are unique and non-empty,
//   - terminators appear only as the last instruction of a block,
//   - every block ends in a terminator or falls through to a following block,
//   - intra-function branch targets resolve to block labels,
//   - BL targets resolve to program functions or known external symbols.
//
// The outliner runs it after every round; a verifier failure there means the
// transformation broke the program, which the end-to-end execution tests
// would catch later but with far worse diagnostics.
func (p *Program) Verify(externSyms map[string]bool) error {
	for _, f := range p.Funcs {
		if err := p.verifyFunc(f, externSyms); err != nil {
			return err
		}
	}
	seenGlobals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		if g.Name == "" {
			return fmt.Errorf("mir: unnamed global")
		}
		if seenGlobals[g.Name] {
			return fmt.Errorf("mir: duplicate global %q", g.Name)
		}
		seenGlobals[g.Name] = true
	}
	return nil
}

func (p *Program) verifyFunc(f *Function, externSyms map[string]bool) error {
	if f.Name == "" {
		return fmt.Errorf("mir: unnamed function")
	}
	labels := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Label == "" {
			return fmt.Errorf("mir: @%s: unnamed block", f.Name)
		}
		if labels[b.Label] {
			return fmt.Errorf("mir: @%s: duplicate block label %q", f.Name, b.Label)
		}
		labels[b.Label] = true
	}
	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		globals[g.Name] = true
	}
	for bi, b := range f.Blocks {
		seenTerm := false
		for i, in := range b.Insts {
			if in.Op == isa.BAD || in.Op >= isa.NumOps {
				return fmt.Errorf("mir: @%s/%s: bad opcode at %d", f.Name, b.Label, i)
			}
			// Terminators must form a trailing run (a conditional branch may
			// be followed by further terminators, e.g. Bcc + B).
			if seenTerm && !in.IsTerminator() {
				return fmt.Errorf("mir: @%s/%s: instruction %s after terminator", f.Name, b.Label, in)
			}
			if in.IsTerminator() {
				seenTerm = true
			}
			switch in.Op {
			case isa.B:
				// B is either an intra-function branch or a tail call to
				// another function (the outliner's tail-call and thunk
				// strategies emit the latter).
				if !labels[in.Sym] && p.Func(in.Sym) == nil && !externSyms[in.Sym] {
					return fmt.Errorf("mir: @%s/%s: branch to unknown label or symbol %q", f.Name, b.Label, in.Sym)
				}
			case isa.Bcc, isa.CBZ, isa.CBNZ:
				if !labels[in.Sym] {
					return fmt.Errorf("mir: @%s/%s: branch to unknown label %q", f.Name, b.Label, in.Sym)
				}
			case isa.BL:
				if p.Func(in.Sym) == nil && !externSyms[in.Sym] {
					return fmt.Errorf("mir: @%s/%s: call to unknown symbol %q", f.Name, b.Label, in.Sym)
				}
			case isa.ADR:
				if !globals[in.Sym] && p.Func(in.Sym) == nil && !externSyms[in.Sym] {
					return fmt.Errorf("mir: @%s/%s: address of unknown symbol %q", f.Name, b.Label, in.Sym)
				}
			}
		}
		// A block must not fall off the end of the function.
		if bi == len(f.Blocks)-1 && len(f.Blocks) > 0 {
			if len(b.Insts) == 0 || !b.Insts[len(b.Insts)-1].IsTerminator() {
				return fmt.Errorf("mir: @%s: last block %q does not end in a terminator", f.Name, b.Label)
			}
		}
	}
	return nil
}
