package mir

import (
	"encoding/binary"
	"fmt"

	"outliner/internal/isa"
)

// This file is the canonical binary codec for machine programs. It started
// life inside internal/artifact (which still delegates to it for machine
// artifacts, so the byte layout is part of artifact.SchemaVersion and must
// not change without a bump there); it lives here so the outliner can
// snapshot and restore programs for round rollback without importing the
// artifact layer (which imports outline for stats, closing a cycle).

// EncodeProgram appends the canonical encoding of p to b and returns the
// extended slice. Encoding is deterministic: identical programs produce
// identical bytes, so the output doubles as a content hash input and an
// equality witness in tests.
func EncodeProgram(b []byte, p *Program) []byte {
	appendBool := func(b []byte, v bool) []byte {
		if v {
			return append(b, 1)
		}
		return append(b, 0)
	}
	appendStr := func(b []byte, s string) []byte {
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		b = appendStr(b, f.Name)
		b = appendStr(b, f.Module)
		b = appendBool(b, f.Outlined)
		b = binary.AppendUvarint(b, uint64(len(f.Blocks)))
		for _, blk := range f.Blocks {
			b = appendStr(b, blk.Label)
			b = binary.AppendUvarint(b, uint64(len(blk.Insts)))
			for i := range blk.Insts {
				in := &blk.Insts[i]
				b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rd2), byte(in.Rn), byte(in.Rm))
				b = binary.AppendVarint(b, in.Imm)
				b = appendStr(b, in.Sym)
				b = append(b, byte(in.Cond))
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(len(p.Globals)))
	for _, g := range p.Globals {
		b = appendStr(b, g.Name)
		b = appendStr(b, g.Module)
		b = binary.AppendUvarint(b, uint64(len(g.Words)))
		for _, w := range g.Words {
			b = binary.AppendVarint(b, w)
		}
	}
	return b
}

// progDec is the defensive decoder state for DecodeProgram: first error
// sticks, every read is bounds-checked, and element counts are validated
// against the remaining bytes so hostile input cannot force huge
// allocations.
type progDec struct {
	b   []byte
	err error
}

func (d *progDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("mir: "+format, args...)
		d.b = nil
	}
}

func (d *progDec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *progDec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *progDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *progDec) bool() bool { return d.byte() != 0 }

func (d *progDec) s() string {
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds %d remaining bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads an element count and guards against allocation bombs: a valid
// stream must carry at least one byte per remaining element.
func (d *progDec) count() int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail("count %d exceeds %d remaining bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

// DecodeProgram reconstructs a program encoded by EncodeProgram from a
// prefix of data, returning the program and the unconsumed remainder.
// Corruption — truncation, impossible counts, duplicate function names —
// yields an error, never a panic.
func DecodeProgram(data []byte) (*Program, []byte, error) {
	d := &progDec{b: data}
	p := NewProgram()
	nf := d.count()
	for i := 0; i < nf && d.err == nil; i++ {
		f := &Function{Name: d.s(), Module: d.s(), Outlined: d.bool()}
		nb := d.count()
		for j := 0; j < nb && d.err == nil; j++ {
			b := &Block{Label: d.s()}
			ni := d.count()
			if d.err == nil && ni > 0 {
				b.Insts = make([]isa.Inst, ni)
				for k := range b.Insts {
					in := &b.Insts[k]
					in.Op = isa.Op(d.byte())
					in.Rd = isa.Reg(d.byte())
					in.Rd2 = isa.Reg(d.byte())
					in.Rn = isa.Reg(d.byte())
					in.Rm = isa.Reg(d.byte())
					in.Imm = d.i()
					in.Sym = d.s()
					in.Cond = isa.Cond(d.byte())
				}
			}
			f.Blocks = append(f.Blocks, b)
		}
		if d.err == nil {
			if p.Func(f.Name) != nil {
				d.fail("duplicate function %q", f.Name)
				break
			}
			p.AddFunc(f)
		}
	}
	ng := d.count()
	for i := 0; i < ng && d.err == nil; i++ {
		g := &Global{Name: d.s(), Module: d.s()}
		nw := d.count()
		if d.err == nil && nw > 0 {
			g.Words = make([]int64, nw)
			for k := range g.Words {
				g.Words[k] = d.i()
			}
		}
		p.AddGlobal(g)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return p, d.b, nil
}

// ResetTo replaces p's contents in place with a deep copy of src, keeping
// every existing *Program reference to p valid — how the outliner rolls a
// shared program back to a snapshot.
func (p *Program) ResetTo(src *Program) {
	p.Funcs = p.Funcs[:0]
	p.Globals = p.Globals[:0]
	p.funcIndex = make(map[string]*Function, len(src.Funcs))
	for _, f := range src.Funcs {
		p.AddFunc(f.Clone())
	}
	for _, g := range src.Globals {
		words := make([]int64, len(g.Words))
		copy(words, g.Words)
		p.AddGlobal(&Global{Name: g.Name, Module: g.Module, Words: words})
	}
}
