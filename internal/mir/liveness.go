package mir

import (
	"outliner/internal/isa"
	"outliner/internal/par"
)

// RegSet is a bitset over machine registers plus the NZCV flags.
type RegSet uint64

const flagsBit = 63 // NZCV flags live in the top bit

// Add returns s with r added.
func (s RegSet) Add(r isa.Reg) RegSet {
	if r == isa.NoReg || r == isa.XZR {
		return s
	}
	return s | 1<<uint(r)
}

// Remove returns s with r removed.
func (s RegSet) Remove(r isa.Reg) RegSet {
	if r == isa.NoReg || r == isa.XZR {
		return s
	}
	return s &^ (1 << uint(r))
}

// Has reports whether r is in s.
func (s RegSet) Has(r isa.Reg) bool {
	if r == isa.NoReg || r == isa.XZR {
		return false
	}
	return s&(1<<uint(r)) != 0
}

// AddFlags / RemoveFlags / HasFlags track NZCV liveness.
func (s RegSet) AddFlags() RegSet    { return s | 1<<flagsBit }
func (s RegSet) RemoveFlags() RegSet { return s &^ (1 << flagsBit) }
func (s RegSet) HasFlags() bool      { return s&(1<<flagsBit) != 0 }

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// callerSaved is the set a call clobbers: X0..X17 plus LR and flags are not
// guaranteed preserved. (Flags actually survive BL on AArch64, but treating
// them as clobbered is conservative and matches how little our codegen keeps
// flags live across calls.)
var callerSaved = func() RegSet {
	var s RegSet
	for r := isa.X0; r <= isa.X17; r++ {
		s = s.Add(r)
	}
	s = s.Add(isa.LR)
	return s
}()

// callUses is the conservative set of registers a call may read: all
// argument registers plus the indirect target.
var callUses = func() RegSet {
	var s RegSet
	for i := 0; i < isa.NumArgRegs; i++ {
		s = s.Add(isa.ArgReg(i))
	}
	return s
}()

// Liveness holds the result of a backward liveness analysis over one
// function: for every instruction, the set of registers live *after* it
// executes. The outliner consults it to decide whether the link register is
// free at a candidate (the no-LR-save strategy) — the "up-to-date liveness
// information" the paper says repeated outlining must maintain.
type Liveness struct {
	// LiveAfter[b][i] is the live-out set of instruction i of block b.
	LiveAfter [][]RegSet
}

// ComputeLiveness runs backward dataflow to a fixed point over f.
// externLive is the set assumed live at every function exit (typically the
// callee-saved registers plus the result register).
func ComputeLiveness(f *Function, externLive RegSet) *Liveness {
	n := len(f.Blocks)
	blockIdx := make(map[string]int, n)
	for i, b := range f.Blocks {
		blockIdx[b.Label] = i
	}
	liveIn := make([]RegSet, n)
	liveOut := make([]RegSet, n)

	succs := make([][]int, n)
	for i, b := range f.Blocks {
		for _, in := range b.Insts {
			if !in.IsTerminator() || in.Op == isa.RET || in.Op == isa.BRK {
				continue
			}
			if t, ok := blockIdx[in.Sym]; ok {
				succs[i] = append(succs[i], t)
			}
		}
		// Fallthrough to the next block when not ended by an unconditional
		// transfer.
		if i+1 < n && !endsUnconditional(b) {
			succs[i] = append(succs[i], i+1)
		}
	}

	localLabel := func(s string) bool { _, ok := blockIdx[s]; return ok }
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := RegSet(0)
			if exits(f.Blocks[i], localLabel, i == n-1) {
				out = externLive
				// A tail call returns through the caller's LR, so LR is
				// live at the exit point.
				if insts := f.Blocks[i].Insts; len(insts) > 0 && insts[len(insts)-1].Op == isa.B {
					out = out.Add(isa.LR)
					out = out.Union(callUses)
				}
			}
			for _, s := range succs[i] {
				out = out.Union(liveIn[s])
			}
			in := transferBlock(f.Blocks[i], out)
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}

	lv := &Liveness{LiveAfter: make([][]RegSet, n)}
	for i, b := range f.Blocks {
		lv.LiveAfter[i] = make([]RegSet, len(b.Insts))
		live := liveOut[i]
		for j := len(b.Insts) - 1; j >= 0; j-- {
			lv.LiveAfter[i][j] = live
			live = step(b.Insts[j], live)
		}
	}
	return lv
}

// ComputeLivenessFuncs computes liveness for the selected functions of prog
// using at most parallelism workers (0 = one per CPU, 1 = serial). Entry i
// of the result holds prog.Funcs[i]'s liveness when want(i) is true and nil
// otherwise; want == nil selects every function. Each function's analysis
// is independent, so the result is identical for any worker count.
func ComputeLivenessFuncs(prog *Program, externLive RegSet, parallelism int, want func(i int) bool) []*Liveness {
	out := make([]*Liveness, len(prog.Funcs))
	par.Do(parallelism, len(prog.Funcs), func(i int) {
		if want == nil || want(i) {
			out[i] = ComputeLiveness(prog.Funcs[i], externLive)
		}
	})
	return out
}

func endsUnconditional(b *Block) bool {
	if len(b.Insts) == 0 {
		return false
	}
	switch b.Insts[len(b.Insts)-1].Op {
	case isa.B, isa.RET, isa.BRK:
		return true
	}
	return false
}

// exits reports whether control can leave the function from this block:
// return, trap, a tail-call B whose target is not a local label, or running
// off the end of the last block.
func exits(b *Block, localLabel func(string) bool, last bool) bool {
	if len(b.Insts) == 0 {
		return last
	}
	term := b.Insts[len(b.Insts)-1]
	switch term.Op {
	case isa.RET, isa.BRK:
		return true
	case isa.B:
		return !localLabel(term.Sym)
	}
	return last && !endsUnconditional(b)
}

func transferBlock(b *Block, live RegSet) RegSet {
	for j := len(b.Insts) - 1; j >= 0; j-- {
		live = step(b.Insts[j], live)
	}
	return live
}

// step computes live-before from live-after for one instruction.
func step(in isa.Inst, live RegSet) RegSet {
	if in.IsCall() {
		live &^= callerSaved
		live = live.RemoveFlags()
		live = live.Union(callUses)
	}
	for _, d := range in.Defs(nil) {
		live = live.Remove(d)
	}
	if in.SetsFlags() {
		live = live.RemoveFlags()
	}
	for _, u := range in.Uses(nil) {
		live = live.Add(u)
	}
	if in.ReadsFlags() {
		live = live.AddFlags()
	}
	return live
}

// LRLiveAfter reports whether the link register is live immediately after
// instruction i of block b — i.e. whether a BL inserted *after* position i
// would clobber a value that is still needed.
func (lv *Liveness) LRLiveAfter(b, i int) bool {
	return lv.LiveAfter[b][i].Has(isa.LR)
}

// DefaultExternLive is the live-out assumption at function exits: result
// register X0 plus all callee-saved registers (which the caller expects
// preserved).
var DefaultExternLive = func() RegSet {
	s := RegSet(0).Add(isa.X0)
	for r := isa.FirstCalleeSaved; r <= isa.LastCalleeSaved; r++ {
		s = s.Add(r)
	}
	s = s.Add(isa.FP)
	s = s.Add(isa.SP)
	return s
}()
