package mir

import (
	"bytes"
	"testing"

	"outliner/internal/isa"
)

func codecTestProgram() *Program {
	p := NewProgram()
	f := &Function{Name: "main", Module: "App"}
	f.Blocks = []*Block{
		{Label: "entry", Insts: []isa.Inst{
			{Op: isa.MOVZ, Rd: isa.X0, Imm: 7},
			{Op: isa.BL, Sym: "helper"},
			{Op: isa.RET},
		}},
	}
	p.AddFunc(f)
	h := &Function{Name: "helper", Module: "Lib", Outlined: true}
	h.Blocks = []*Block{
		{Label: "entry", Insts: []isa.Inst{
			{Op: isa.ADDrs, Rd: isa.X0, Rn: isa.X0, Rm: isa.X1},
			{Op: isa.RET},
		}},
	}
	p.AddFunc(h)
	p.AddGlobal(&Global{Name: "table", Module: "App", Words: []int64{1, -2, 1 << 40}})
	return p
}

func TestProgramCodecRoundTrip(t *testing.T) {
	p := codecTestProgram()
	enc := EncodeProgram(nil, p)
	got, rest, err := DecodeProgram(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d unconsumed bytes", len(rest))
	}
	if got.String() != p.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", got.String(), p.String())
	}
	// Canonical: re-encoding the decoded program reproduces the bytes.
	if !bytes.Equal(EncodeProgram(nil, got), enc) {
		t.Fatal("re-encoding is not canonical")
	}
}

// TestDecodeProgramConsumesPrefix: the decoder must stop exactly at the end
// of the program section and hand back the remainder — the contract the
// artifact layer's machine decoding relies on.
func TestDecodeProgramConsumesPrefix(t *testing.T) {
	enc := EncodeProgram(nil, codecTestProgram())
	tail := []byte("stats section follows")
	_, rest, err := DecodeProgram(append(append([]byte(nil), enc...), tail...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, tail) {
		t.Fatalf("rest = %q, want %q", rest, tail)
	}
}

// TestDecodeProgramHostileBytes: truncations and flips error, never panic.
func TestDecodeProgramHostileBytes(t *testing.T) {
	enc := EncodeProgram(nil, codecTestProgram())
	for cut := 0; cut < len(enc); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic decoding truncation at %d: %v", cut, r)
				}
			}()
			// Truncated input either errors or (for a cut landing on a
			// section boundary) decodes a shorter valid prefix; both are
			// fine — it must not panic.
			DecodeProgram(enc[:cut])
		}()
	}
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic decoding flip at %d: %v", i, r)
				}
			}()
			DecodeProgram(mut)
		}()
	}
}

func TestDecodeProgramDuplicateFunction(t *testing.T) {
	p := NewProgram()
	f := &Function{Name: "dup", Blocks: []*Block{{Label: "entry"}}}
	p.AddFunc(f)
	enc := EncodeProgram(nil, p)
	// Splice the single-function body in twice under a doubled count.
	body := enc[1:]
	evil := append([]byte{2}, append(append([]byte(nil), body[:len(body)-1]...), body...)...)
	if _, _, err := DecodeProgram(evil); err == nil {
		t.Fatal("duplicate function decoded without error")
	}
}

// TestResetTo: in-place restore preserves the receiver pointer and yields a
// deep copy — mutating the restored program must not touch the snapshot.
func TestResetTo(t *testing.T) {
	snapshot := codecTestProgram()
	p := NewProgram()
	p.AddFunc(&Function{Name: "garbage", Blocks: []*Block{{Label: "entry"}}})
	p.ResetTo(snapshot)
	if p.String() != snapshot.String() {
		t.Fatal("ResetTo did not reproduce the snapshot")
	}
	if p.Func("garbage") != nil {
		t.Fatal("stale function survived ResetTo")
	}
	if p.Func("main") == nil || p.Func("main") == snapshot.Func("main") {
		t.Fatal("ResetTo must deep-copy, not alias")
	}
	p.Func("main").Blocks[0].Insts[0].Imm = 99
	if snapshot.Func("main").Blocks[0].Insts[0].Imm != 7 {
		t.Fatal("mutating the restored program leaked into the snapshot")
	}
}
