// Package mir defines the machine-level intermediate representation that the
// code generator produces and the machine outliner transforms: programs of
// functions, functions of basic blocks, blocks of isa.Inst instructions.
//
// It corresponds to LLVM's MachineFunction layer after register allocation —
// the representation the paper's analysis and optimization operate on. The
// textual form (String / Parse) resembles LLVM MIR dumps so that test inputs
// read like the paper's listings.
package mir

import (
	"fmt"
	"sort"
	"strings"

	"outliner/internal/isa"
)

// Block is a basic block: a label and a straight-line run of instructions
// ending in at most one terminator.
type Block struct {
	Label string
	Insts []isa.Inst
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := &Block{Label: b.Label, Insts: make([]isa.Inst, len(b.Insts))}
	copy(nb.Insts, b.Insts)
	return nb
}

// Function is a machine function.
type Function struct {
	Name   string
	Module string // provenance: source module that produced the function
	Blocks []*Block

	// Outlined marks functions created by the machine outliner
	// (OUTLINED_FUNCTION_* in the paper's debugging war story).
	Outlined bool
}

// Clone returns a deep copy of the function.
func (f *Function) Clone() *Function {
	nf := &Function{Name: f.Name, Module: f.Module, Outlined: f.Outlined}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nf.Blocks[i] = b.Clone()
	}
	return nf
}

// NumInsts returns the number of instructions in the function.
func (f *Function) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// CodeSize returns the byte size of the function's instructions.
func (f *Function) CodeSize() int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			n += in.Size()
		}
	}
	return n
}

// Block returns the block with the given label, or nil.
func (f *Function) Block(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Entry returns the entry block (the first one), or nil for a declaration.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Global is a data-section entry: a named array of 8-byte words with module
// provenance. Provenance drives the data-layout ordering experiments (§VI-3):
// the IR linker can either preserve per-module grouping or interleave.
type Global struct {
	Name   string
	Module string
	Words  []int64
}

// Size returns the byte size of the global.
func (g *Global) Size() int { return 8 * len(g.Words) }

// Program is a whole machine program: the unit the whole-program outliner
// sees, and the unit the binary image is produced from.
type Program struct {
	Funcs   []*Function
	Globals []*Global

	funcIndex map[string]*Function
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{funcIndex: make(map[string]*Function)}
}

// AddFunc appends f. It panics on duplicate names: machine-level symbols
// must be unique by the time a program is assembled.
func (p *Program) AddFunc(f *Function) {
	if p.funcIndex == nil {
		p.funcIndex = make(map[string]*Function)
	}
	if _, dup := p.funcIndex[f.Name]; dup {
		panic(fmt.Sprintf("mir: duplicate function %q", f.Name))
	}
	p.funcIndex[f.Name] = f
	p.Funcs = append(p.Funcs, f)
}

// AddGlobal appends g.
func (p *Program) AddGlobal(g *Global) { p.Globals = append(p.Globals, g) }

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function {
	if p.funcIndex == nil {
		p.rebuildIndex()
	}
	return p.funcIndex[name]
}

func (p *Program) rebuildIndex() {
	p.funcIndex = make(map[string]*Function, len(p.Funcs))
	for _, f := range p.Funcs {
		p.funcIndex[f.Name] = f
	}
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	np := NewProgram()
	for _, f := range p.Funcs {
		np.AddFunc(f.Clone())
	}
	for _, g := range p.Globals {
		words := make([]int64, len(g.Words))
		copy(words, g.Words)
		np.AddGlobal(&Global{Name: g.Name, Module: g.Module, Words: words})
	}
	return np
}

// NumInsts returns the total instruction count.
func (p *Program) NumInsts() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInsts()
	}
	return n
}

// CodeSize returns the total byte size of all instructions — the paper's
// "code section" size.
func (p *Program) CodeSize() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.CodeSize()
	}
	return n
}

// DataSize returns the total byte size of all globals.
func (p *Program) DataSize() int {
	n := 0
	for _, g := range p.Globals {
		n += g.Size()
	}
	return n
}

// Modules returns the sorted set of module names present in the program.
func (p *Program) Modules() []string {
	seen := make(map[string]bool)
	for _, f := range p.Funcs {
		seen[f.Module] = true
	}
	for _, g := range p.Globals {
		seen[g.Module] = true
	}
	names := make([]string, 0, len(seen))
	for m := range seen {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

// String renders the program in the textual MIR format accepted by Parse.
func (p *Program) String() string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeFunc(&b, f)
	}
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "\nglobal @%s module %q = [", g.Name, g.Module)
		for i, w := range g.Words {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", w)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func writeFunc(b *strings.Builder, f *Function) {
	fmt.Fprintf(b, "func @%s", f.Name)
	if f.Module != "" {
		fmt.Fprintf(b, " module %q", f.Module)
	}
	if f.Outlined {
		b.WriteString(" outlined")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:\n", blk.Label)
		for _, in := range blk.Insts {
			fmt.Fprintf(b, "  %s\n", in.String())
		}
	}
	b.WriteString("}\n")
}

// String renders a single function.
func (f *Function) String() string {
	var b strings.Builder
	writeFunc(&b, f)
	return b.String()
}

// ReindexFuncs rebuilds the name index after external reordering of Funcs.
func (p *Program) ReindexFuncs() { p.rebuildIndex() }

// ReorderFuncs replaces the program's function order with funcs. It panics
// unless funcs is a true permutation of the current function list — a layout
// pass must move functions, never drop, duplicate, or invent them — so every
// reordering caller gets the permutation invariant enforced at the IR layer.
func (p *Program) ReorderFuncs(funcs []*Function) {
	if len(funcs) != len(p.Funcs) {
		panic(fmt.Sprintf("mir: reorder with %d functions, program has %d", len(funcs), len(p.Funcs)))
	}
	if p.funcIndex == nil {
		p.rebuildIndex()
	}
	seen := make(map[string]bool, len(funcs))
	for _, f := range funcs {
		if p.funcIndex[f.Name] != f {
			panic(fmt.Sprintf("mir: reorder introduces foreign function %q", f.Name))
		}
		if seen[f.Name] {
			panic(fmt.Sprintf("mir: reorder duplicates function %q", f.Name))
		}
		seen[f.Name] = true
	}
	p.Funcs = funcs
}
