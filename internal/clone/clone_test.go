package clone

import (
	"testing"

	"outliner/internal/pipeline"
)

func TestDetectExactReplicas(t *testing.T) {
	src := pipeline.Source{Name: "M", Files: map[string]string{"m.sl": `
func a1(x: Int) -> Int { return x * 2 + 7 }
func a2(y: Int) -> Int { return y * 2 + 7 }
func b(x: Int) -> Int { return x * 3 + 7 }
func c(x: Int) -> Int { return x - 1 }
`}}
	frac, err := DetectFraction([]pipeline.Source{src})
	if err != nil {
		t.Fatal(err)
	}
	// a1 and a2 are alpha-equivalent replicas: 2 of 4 functions.
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("fraction = %.2f, want 0.5", frac)
	}
}

func TestDetectNoClones(t *testing.T) {
	src := pipeline.Source{Name: "M", Files: map[string]string{"m.sl": `
func a(x: Int) -> Int { return x * 2 }
func b(x: Int) -> Int { return x * 3 }
`}}
	frac, err := DetectFraction([]pipeline.Source{src})
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Errorf("fraction = %.2f, want 0", frac)
	}
}

func TestLiteralsDistinguishClones(t *testing.T) {
	// Identical shape but different constants: PMD-style replica detection
	// does NOT count these (that is exactly why the paper found <1% at the
	// source level while the machine level repeats massively).
	src := pipeline.Source{Name: "M", Files: map[string]string{"m.sl": `
func a(x: Int) -> Int { return x * 2 + 1 }
func b(x: Int) -> Int { return x * 2 + 2 }
`}}
	frac, err := DetectFraction([]pipeline.Source{src})
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Errorf("fraction = %.2f, want 0", frac)
	}
}
