// Package clone is the AST/source-level clone detector of Table I's first
// row — the PMD-style "source function replicas" check the paper deployed
// and found wanting (<1% replication at this level; the interesting
// repetition only materializes after code generation). It tokenizes each
// function, normalizes identifier names (but not literal values), and
// reports the fraction of functions that are token-level replicas of
// another.
package clone

import (
	"fmt"
	"sort"
	"strings"

	"outliner/internal/frontend"
	"outliner/internal/pipeline"
)

// DetectFraction returns the fraction of functions whose normalized token
// sequence appears more than once across the sources.
func DetectFraction(sources []pipeline.Source) (float64, error) {
	counts := make(map[string]int)
	total := 0
	for _, src := range sources {
		files, err := pipeline.ParseSourceTokens(src)
		if err != nil {
			return 0, fmt.Errorf("clone: %w", err)
		}
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, fn := range splitFunctions(files[name]) {
				counts[fn]++
				total++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	cloned := 0
	for _, c := range counts {
		if c > 1 {
			cloned += c
		}
	}
	return float64(cloned) / float64(total), nil
}

// splitFunctions extracts each function's normalized token signature: the
// tokens from `func` through its closing brace, with identifiers numbered by
// first occurrence (alpha-renaming) and literals kept verbatim.
func splitFunctions(toks []frontend.Token) []string {
	var out []string
	i := 0
	for i < len(toks) {
		if toks[i].Kind != frontend.TokFunc {
			i++
			continue
		}
		var sig strings.Builder
		ids := make(map[string]int)
		depth := 0
		started := false
		j := i
		for ; j < len(toks); j++ {
			t := toks[j]
			switch t.Kind {
			case frontend.TokLBrace:
				depth++
				started = true
				sig.WriteString("{")
			case frontend.TokRBrace:
				depth--
				sig.WriteString("}")
			case frontend.TokIdent:
				id, ok := ids[t.Text]
				if !ok {
					id = len(ids)
					ids[t.Text] = id
				}
				fmt.Fprintf(&sig, "id%d ", id)
			case frontend.TokInt:
				fmt.Fprintf(&sig, "i%d ", t.Int)
			case frontend.TokString:
				fmt.Fprintf(&sig, "s%q ", t.Text)
			case frontend.TokEOF:
				j = len(toks)
			default:
				fmt.Fprintf(&sig, "k%d ", t.Kind)
			}
			if started && depth == 0 {
				break
			}
		}
		out = append(out, sig.String())
		i = j + 1
	}
	return out
}
