// Package fault is the build pipeline's deterministic fault-injection
// framework: seed-driven fault points placed at the spots where a real build
// farm fails — cache disk I/O, worker task startup, per-function code
// generation, outlining rounds, artifact decoding — injecting panics, I/O
// errors, and corrupt bytes on a reproducible schedule.
//
// Determinism is the whole point. An injection decision is a pure hash of
// (seed, site, key) — never of wall-clock time, goroutine identity, or call
// order — so the same seed produces the same fault schedule at any -j, and a
// failing seed from the chaos soak replays exactly. Rates are probabilities
// over the hash space: rate 0.02 fires at roughly 2% of points.
//
// Two constructors exist:
//
//   - New(seed, rate): the chaos injector. Every point consults the hash.
//   - Exact(points...): a scripted injector that fires at exactly the listed
//     (site, key) points and nowhere else — what targeted tests use to, say,
//     corrupt outlining round 3 and nothing else.
//
// A nil *Injector is valid and never fires, so instrumented code needs no
// branches: the disabled path is one nil check per fault point.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Site names one class of fault point in the pipeline.
type Site string

const (
	// CacheRead covers the cache's disk-entry read path. Keys are
	// "<entry-id>#<attempt>" so retries re-roll the schedule.
	CacheRead Site = "cache/read"
	// CacheWrite covers the cache's temp-write/publish path, keyed like
	// CacheRead.
	CacheWrite Site = "cache/write"
	// WorkerTask fires at parallel worker task start (per-module pipeline
	// stages), keyed by module name.
	WorkerTask Site = "worker/task"
	// CodegenFunc fires at per-function code generation, keyed by function
	// name.
	CodegenFunc Site = "codegen/func"
	// OutlineRound fires after an outlining round's rewrites, keyed
	// "round:<n>"; a Corrupt decision mutates the just-outlined program so
	// the verifier (and the rollback machinery) have something real to catch.
	OutlineRound Site = "outline/round"
	// ArtifactDecode fires at cache-artifact decoding, keyed by cache stage
	// and entry; an injected error models a decoder rejection and degrades to
	// a miss.
	ArtifactDecode Site = "artifact/decode"
	// RemoteGet covers the sharded remote cache tier's fetch path — the
	// shard-kill injection site. Keys are "<entry-id>#<attempt>" like
	// CacheRead; an ErrorKind injection models a dead or flaky shard, a
	// CorruptKind injection damages the response bytes in flight.
	RemoteGet Site = "remote/get"
	// RemotePut covers the remote tier's publish path, keyed like RemoteGet.
	RemotePut Site = "remote/put"
	// WorkerHang fires at parallel worker task start like WorkerTask, but a
	// HangKind decision blocks the task until the build's context is
	// cancelled — the hung-compiler failure mode deadline propagation exists
	// to bound. Keyed by module name.
	WorkerHang Site = "worker/hang"
	// RemoteSlow models a shard that accepts the connection and then stalls:
	// a SlowKind decision makes the remote operation consume its full
	// per-operation timeout before failing, the shape that makes circuit
	// breakers worth their complexity. Keyed "<entry-id>#<attempt>".
	RemoteSlow Site = "remote/slow"
	// CancelStep fires at pipeline stage boundaries; a CancelKind decision
	// cancels the build's context right there (cancel-at-step-N), exercising
	// mid-build cancellation without a remote client. Keyed "step:<stage>".
	CancelStep Site = "cancel/step"
)

// Kind is what an armed fault point injects.
type Kind int

const (
	// None: the point does not fire.
	None Kind = iota
	// PanicKind: the point panics with a *Panic value.
	PanicKind
	// ErrorKind: the point returns a *Error (possibly transient).
	ErrorKind
	// CorruptKind: the point flips bytes (or, at OutlineRound, mutates the
	// program).
	CorruptKind
	// HangKind: the point blocks until the build's context is cancelled
	// (WorkerHang). Disruptive — see EnableDisruptive.
	HangKind
	// SlowKind: the point stalls for the caller's full operation timeout
	// before failing (RemoteSlow). Disruptive — see EnableDisruptive.
	SlowKind
	// CancelKind: the point cancels the build's context (CancelStep).
	// Disruptive — see EnableDisruptive.
	CancelKind
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case PanicKind:
		return "panic"
	case ErrorKind:
		return "error"
	case CorruptKind:
		return "corrupt"
	case HangKind:
		return "hang"
	case SlowKind:
		return "slow"
	case CancelKind:
		return "cancel"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// disruptive reports whether k stalls or cancels a build rather than
// failing a single operation. Disruptive kinds are opt-in for chaos
// injectors: a schedule that can hang requires the harness to hold a
// deadline, so New-style injectors skip them until EnableDisruptive.
func (k Kind) disruptive() bool {
	return k == HangKind || k == SlowKind || k == CancelKind
}

// Error is an injected I/O error. It unwraps to nothing — it is the leaf
// diagnostic — and errors.As against *fault.Error is how callers and tests
// recognize an injected failure in a build error chain.
type Error struct {
	Site Site
	Key  string
	// Transient marks errors the cache's retry loop should classify as
	// retryable (a flaky read) rather than fatal (a dead disk).
	Transient bool
}

func (e *Error) Error() string {
	mode := "fatal"
	if e.Transient {
		mode = "transient"
	}
	return fmt.Sprintf("fault: injected %s I/O error at %s (%s)", mode, e.Site, e.Key)
}

// Panic is the value injected panics carry; par's worker recovery wraps it in
// a *par.PanicError, keeping the site/key visible in the build diagnostic.
type Panic struct {
	Site Site
	Key  string
}

func (p *Panic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (%s)", p.Site, p.Key)
}

// At is one scripted fault point for Exact.
type At struct {
	Site Site
	Key  string
	Kind Kind
	// Transient applies to ErrorKind points.
	Transient bool
}

// Injector decides, deterministically, which fault points fire. The zero
// value and nil never fire.
type Injector struct {
	seed uint64
	rate float64

	script map[[2]string]At // non-nil: scripted mode, hash ignored

	// disruptive admits HangKind/SlowKind/CancelKind decisions on chaos
	// (hash-scheduled) injectors. Scripted injectors ignore it: an explicit
	// At point is its own opt-in.
	disruptive bool

	mu       sync.Mutex
	injected map[string]int64 // per-site injection counts
	drained  map[string]int64 // counts already handed out by DrainCounters
}

// New returns a hash-scheduled injector: each (site, key) point fires with
// probability rate, with the kind drawn from the site's supported faults.
func New(seed uint64, rate float64) *Injector {
	return &Injector{seed: seed, rate: rate, injected: map[string]int64{}}
}

// Exact returns a scripted injector firing at exactly the listed points.
func Exact(points ...At) *Injector {
	inj := &Injector{script: make(map[[2]string]At, len(points)), injected: map[string]int64{}}
	for _, p := range points {
		inj.script[[2]string{string(p.Site), p.Key}] = p
	}
	return inj
}

// EnableDisruptive admits the disruptive kinds (hang, slow, cancel) on a
// chaos injector's schedule. They are off by default because a hash schedule
// that can hang a worker forever is only safe under a harness that holds a
// deadline — the resilience soaks do, the classic chaos soaks do not.
// Enabling changes which points fire, so it participates in String (and
// therefore in cache fingerprints). Returns the injector for chaining.
func (inj *Injector) EnableDisruptive() *Injector {
	if inj != nil {
		inj.disruptive = true
	}
	return inj
}

// Seed returns the schedule seed (0 for scripted injectors).
func (inj *Injector) Seed() uint64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Rate returns the per-point firing probability (0 for scripted injectors).
func (inj *Injector) Rate() float64 {
	if inj == nil {
		return 0
	}
	return inj.rate
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes s with FNV-1a (64-bit).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// roll returns the point's decision hash: uniform over [0, 2^64).
func (inj *Injector) roll(site Site, key string) uint64 {
	return splitmix64(inj.seed ^ splitmix64(fnv1a(string(site))^splitmix64(fnv1a(key))))
}

// fires reports whether the (site, key) point is armed at all.
func (inj *Injector) fires(site Site, key string) bool {
	// The top 53 bits give an unbiased [0,1) fraction.
	frac := float64(inj.roll(site, key)>>11) / float64(uint64(1)<<53)
	return frac < inj.rate
}

// Scheduled reports what (if anything) the point would inject, without
// injecting or counting it. kinds lists the faults the call site supports,
// in the order the site's helpers consider them; the decision hash picks one.
func (inj *Injector) Scheduled(site Site, key string, kinds ...Kind) Kind {
	if inj == nil || len(kinds) == 0 {
		return None
	}
	if inj.script != nil {
		at, ok := inj.script[[2]string{string(site), key}]
		if !ok {
			return None
		}
		for _, k := range kinds {
			if k == at.Kind {
				return k
			}
		}
		return None
	}
	// Chaos schedules skip disruptive kinds unless opted in. The filter runs
	// before the kind pick, but sites never mix disruptive and ordinary kinds
	// in one call, so enabling disruption cannot shift the decisions of
	// pre-existing sites.
	if !inj.disruptive {
		n := 0
		for _, k := range kinds {
			if !k.disruptive() {
				kinds[n] = k
				n++
			}
		}
		kinds = kinds[:n]
		if len(kinds) == 0 {
			return None
		}
	}
	if !inj.fires(site, key) {
		return None
	}
	// A second, independent hash picks the kind so neighbouring rates do not
	// bias the choice.
	pick := splitmix64(inj.roll(site, key) + 1)
	return kinds[pick%uint64(len(kinds))]
}

// transient reports whether an ErrorKind injection at the point is transient;
// roughly half are, so retry loops see both outcomes.
func (inj *Injector) transient(site Site, key string) bool {
	if inj.script != nil {
		return inj.script[[2]string{string(site), key}].Transient
	}
	return splitmix64(inj.roll(site, key)+2)&1 == 0
}

// count records one injection for Counters.
func (inj *Injector) count(site Site) {
	inj.mu.Lock()
	inj.injected[string(site)]++
	inj.mu.Unlock()
}

// Counters returns a snapshot of per-site injection counts (key "fault/<site>").
func (inj *Injector) Counters() map[string]int64 {
	out := map[string]int64{}
	if inj == nil {
		return out
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for site, n := range inj.injected {
		out["fault/"+site] = n
	}
	return out
}

// DrainCounters returns per-site injection counts accrued since the previous
// drain (key "fault/<site>"), so several build stages can each mirror the
// injector's activity into their tracer without double counting. Counters
// keeps reporting lifetime totals.
func (inj *Injector) DrainCounters() map[string]int64 {
	out := map[string]int64{}
	if inj == nil {
		return out
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.drained == nil {
		inj.drained = map[string]int64{}
	}
	for site, n := range inj.injected {
		if d := n - inj.drained[site]; d > 0 {
			out["fault/"+site] = d
			inj.drained[site] = n
		}
	}
	return out
}

// Injected returns the total number of faults this injector has fired.
func (inj *Injector) Injected() int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n int64
	for _, v := range inj.injected {
		n += v
	}
	return n
}

// String summarizes the injection schedule for diagnostics.
func (inj *Injector) String() string {
	if inj == nil {
		return "fault: disabled"
	}
	if inj.script != nil {
		keys := make([]string, 0, len(inj.script))
		for k := range inj.script {
			keys = append(keys, k[0]+"("+k[1]+")")
		}
		sort.Strings(keys)
		return fmt.Sprintf("fault: scripted %v", keys)
	}
	if inj.disruptive {
		return fmt.Sprintf("fault: seed=%d rate=%g disruptive", inj.seed, inj.rate)
	}
	return fmt.Sprintf("fault: seed=%d rate=%g", inj.seed, inj.rate)
}

// MaybePanic panics with a *Panic if the point is armed for a panic. Placed
// at worker task start and per-function codegen; the surrounding worker pool
// recovers it into a structured *par.PanicError.
func (inj *Injector) MaybePanic(site Site, key string) {
	if inj.Scheduled(site, key, PanicKind) == PanicKind {
		inj.count(site)
		panic(&Panic{Site: site, Key: key})
	}
}

// MaybeError returns an injected *Error if the point is armed for one, nil
// otherwise.
func (inj *Injector) MaybeError(site Site, key string) error {
	if inj.Scheduled(site, key, ErrorKind) == ErrorKind {
		inj.count(site)
		return &Error{Site: site, Key: key, Transient: inj.transient(site, key)}
	}
	return nil
}

// MaybeCorrupt returns data with deterministically flipped bytes if the point
// is armed for corruption, data unchanged otherwise. The input is never
// mutated; corruption copies.
func (inj *Injector) MaybeCorrupt(site Site, key string, data []byte) []byte {
	if inj.Scheduled(site, key, CorruptKind) != CorruptKind || len(data) == 0 {
		return data
	}
	inj.count(site)
	out := append([]byte(nil), data...)
	// Flip a hash-chosen byte plus the final byte, so truncation-style and
	// mid-stream damage are both exercised.
	h := inj.roll(site, key+"/corrupt")
	out[h%uint64(len(out))] ^= byte(h>>8) | 1
	out[len(out)-1] ^= 0x80
	return out
}

// MaybeCorruptPoint reports (and counts) whether a CorruptKind fault fires at
// the point, for sites whose "corruption" is structural (OutlineRound mutates
// a program rather than a byte slice).
func (inj *Injector) MaybeCorruptPoint(site Site, key string) bool {
	if inj.Scheduled(site, key, CorruptKind) != CorruptKind {
		return false
	}
	inj.count(site)
	return true
}

// MaybeHangPoint reports (and counts) whether a HangKind fault fires at the
// point. The caller implements the hang — typically by blocking on its
// build context until cancellation, which is the behaviour under test.
func (inj *Injector) MaybeHangPoint(site Site, key string) bool {
	if inj.Scheduled(site, key, HangKind) != HangKind {
		return false
	}
	inj.count(site)
	return true
}

// MaybeSlowPoint reports (and counts) whether a SlowKind fault fires at the
// point. The caller implements the stall — typically by sleeping its full
// per-operation timeout before failing the operation.
func (inj *Injector) MaybeSlowPoint(site Site, key string) bool {
	if inj.Scheduled(site, key, SlowKind) != SlowKind {
		return false
	}
	inj.count(site)
	return true
}

// MaybeCancelPoint reports (and counts) whether a CancelKind fault fires at
// the point. The caller cancels the build's context — cancel-at-step-N.
func (inj *Injector) MaybeCancelPoint(site Site, key string) bool {
	if inj.Scheduled(site, key, CancelKind) != CancelKind {
		return false
	}
	inj.count(site)
	return true
}

// IsInjected reports whether err's chain contains an injected fault error.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}
