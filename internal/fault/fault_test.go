package fault

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	if k := inj.Scheduled(CacheRead, "x", ErrorKind, CorruptKind); k != None {
		t.Fatalf("nil injector scheduled %v", k)
	}
	if err := inj.MaybeError(CacheRead, "x"); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	inj.MaybePanic(WorkerTask, "x") // must not panic
	data := []byte("payload")
	if got := inj.MaybeCorrupt(CacheRead, "x", data); !bytes.Equal(got, data) {
		t.Fatal("nil injector corrupted data")
	}
	if inj.Injected() != 0 || len(inj.Counters()) != 0 {
		t.Fatal("nil injector counted injections")
	}
}

func TestRateZeroAndOne(t *testing.T) {
	zero := New(42, 0)
	one := New(42, 1)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if zero.Scheduled(CacheRead, key, ErrorKind) != None {
			t.Fatalf("rate-0 injector fired at %s", key)
		}
		if one.Scheduled(CacheRead, key, ErrorKind) == None {
			t.Fatalf("rate-1 injector silent at %s", key)
		}
	}
}

// TestDeterministicSchedule: decisions depend only on (seed, site, key) — not
// on call order or prior calls — and distinct seeds give distinct schedules.
func TestDeterministicSchedule(t *testing.T) {
	decide := func(seed uint64, keys []string) []Kind {
		inj := New(seed, 0.3)
		out := make([]Kind, len(keys))
		for i, k := range keys {
			out[i] = inj.Scheduled(CacheRead, k, ErrorKind, CorruptKind)
		}
		return out
	}
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("entry-%d", i)
	}
	a := decide(7, keys)
	b := decide(7, keys)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 disagreed with itself at %s: %v vs %v", keys[i], a[i], b[i])
		}
	}
	// Reversed call order must not change anything.
	inj := New(7, 0.3)
	for i := len(keys) - 1; i >= 0; i-- {
		if got := inj.Scheduled(CacheRead, keys[i], ErrorKind, CorruptKind); got != a[i] {
			t.Fatalf("call order changed decision at %s", keys[i])
		}
	}
	c := decide(8, keys)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

func TestRateIsApproximatelyHonored(t *testing.T) {
	inj := New(11, 0.25)
	fired := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if inj.Scheduled(CacheRead, fmt.Sprintf("k%d", i), ErrorKind) != None {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("rate 0.25 fired %.3f of points", frac)
	}
}

func TestExactScript(t *testing.T) {
	inj := Exact(
		At{Site: OutlineRound, Key: "round:3", Kind: CorruptKind},
		At{Site: CacheRead, Key: "e#0", Kind: ErrorKind, Transient: true},
	)
	if !inj.MaybeCorruptPoint(OutlineRound, "round:3") {
		t.Fatal("scripted corrupt point did not fire")
	}
	if inj.MaybeCorruptPoint(OutlineRound, "round:2") {
		t.Fatal("unscripted point fired")
	}
	err := inj.MaybeError(CacheRead, "e#0")
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient {
		t.Fatalf("scripted error = %v", err)
	}
	if err := inj.MaybeError(CacheRead, "e#1"); err != nil {
		t.Fatalf("unscripted key errored: %v", err)
	}
	// A scripted ErrorKind point never panics or corrupts.
	inj.MaybePanic(CacheRead, "e#0")
	if inj.MaybeCorruptPoint(CacheRead, "e#0") {
		t.Fatal("error-scripted point corrupted")
	}
	if inj.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", inj.Injected())
	}
}

func TestMaybePanicCarriesSiteAndKey(t *testing.T) {
	inj := Exact(At{Site: WorkerTask, Key: "ModuleA", Kind: PanicKind})
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok || p.Site != WorkerTask || p.Key != "ModuleA" {
			t.Fatalf("recovered %#v", r)
		}
	}()
	inj.MaybePanic(WorkerTask, "ModuleA")
	t.Fatal("MaybePanic did not panic")
}

func TestMaybeCorruptCopies(t *testing.T) {
	inj := Exact(At{Site: CacheRead, Key: "e", Kind: CorruptKind})
	orig := []byte("some cached artifact payload")
	saved := append([]byte(nil), orig...)
	got := inj.MaybeCorrupt(CacheRead, "e", orig)
	if !bytes.Equal(orig, saved) {
		t.Fatal("MaybeCorrupt mutated its input")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("MaybeCorrupt returned unchanged bytes")
	}
	// Deterministic: the same corruption every time.
	again := inj.MaybeCorrupt(CacheRead, "e", orig)
	if !bytes.Equal(got, again) {
		t.Fatal("corruption is not deterministic")
	}
}

func TestCounters(t *testing.T) {
	inj := New(3, 1)
	_ = inj.MaybeError(CacheRead, "a")
	_ = inj.MaybeError(CacheRead, "b")
	_ = inj.MaybeError(CacheWrite, "c")
	c := inj.Counters()
	if c["fault/"+string(CacheRead)] != 2 || c["fault/"+string(CacheWrite)] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestIsInjected(t *testing.T) {
	err := fmt.Errorf("pipeline: module A: %w", &Error{Site: CacheRead, Key: "e#0"})
	if !IsInjected(err) {
		t.Fatal("wrapped injected error not recognized")
	}
	if IsInjected(errors.New("disk on fire")) {
		t.Fatal("ordinary error recognized as injected")
	}
}
