package pipeline_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"outliner/internal/obs"
	"outliner/internal/pipeline"
)

// TestTelemetryDoesNotPerturbBuild is the observability PR's hard
// requirement: a build with full telemetry (fine spans, memstats, remarks)
// is byte-identical to one with no tracer at all, at any worker count.
func TestTelemetryDoesNotPerturbBuild(t *testing.T) {
	plain := buildParallel(t, pipeline.OSize, 1)
	for _, workers := range []int{1, 4} {
		cfg := pipeline.OSize
		cfg.Tracer = obs.NewWith(obs.Config{FineSpans: true, MemStats: true})
		got := buildParallel(t, cfg, workers)
		assertSameBuild(t, plain, got, "traced OSize, j="+itoa(workers))
	}
	// The default pipeline exercises the per-module codegen+outline fan-out.
	def := pipeline.Default
	def.SpecializeClosures = true
	def.MergeFunctions = true
	plainDef := buildParallel(t, def, 1)
	for _, workers := range []int{1, runtime.NumCPU()} {
		cfg := def
		cfg.Tracer = obs.NewWith(obs.Config{FineSpans: true, MemStats: true})
		got := buildParallel(t, cfg, workers)
		assertSameBuild(t, plainDef, got, "traced default, j="+itoa(workers))
	}
}

// TestRemarksDeterministicAcrossWorkers asserts the serialized remarks
// stream is byte-identical for serial and parallel builds — per-module
// outlining emits remark batches from worker goroutines, and WriteRemarks
// must order them stably.
func TestRemarksDeterministicAcrossWorkers(t *testing.T) {
	cfg := pipeline.Default
	cfg.SpecializeClosures = true
	cfg.MergeFunctions = true
	remarksFor := func(workers int) string {
		c := cfg
		tr := obs.New()
		c.Tracer = tr
		buildParallel(t, c, workers)
		var buf bytes.Buffer
		if err := tr.WriteRemarks(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := remarksFor(1)
	if serial == "" {
		t.Fatal("no remarks emitted")
	}
	for _, workers := range []int{2, 4} {
		if got := remarksFor(workers); got != serial {
			t.Errorf("remarks stream differs between j=1 and j=%d", workers)
		}
	}
}

// TestTimingsSumAcrossRounds covers the Timings accumulation fix: five
// outlining rounds each emit a "machine-outline" stage span and
// Result.Timings must hold their sum, not the last round's time.
func TestTimingsSumAcrossRounds(t *testing.T) {
	tr := obs.New()
	cfg := pipeline.OSize
	cfg.Tracer = tr
	res := buildParallel(t, cfg, 1)
	if res.Timings["machine-outline"] <= 0 {
		t.Fatalf("Timings missing machine-outline: %v", res.Timings)
	}
	rounds := tr.Counter("outline/rounds")
	if rounds < 2 {
		t.Fatalf("expected several outlining rounds, got %d", rounds)
	}
	if got, want := res.Timings["machine-outline"], tr.StageTotals()["machine-outline"]; got != want {
		t.Errorf("Timings[machine-outline] = %v, stage total = %v", got, want)
	}
	for _, stage := range []string{"llvm-link", "opt", "llc"} {
		if res.Timings[stage] <= 0 {
			t.Errorf("Timings missing stage %q: %v", stage, res.Timings)
		}
	}
}

// TestRemarksCoverBuild cross-checks the remarks stream against the build's
// own statistics: one "selected" remark per function the outliner created,
// and every rejected remark names a reason.
func TestRemarksCoverBuild(t *testing.T) {
	tr := obs.New()
	cfg := pipeline.OSize
	cfg.Tracer = tr
	res := buildParallel(t, cfg, 1)
	selected := 0
	for _, r := range tr.Remarks() {
		switch r.Status {
		case "selected":
			selected++
			if r.Function == "" {
				t.Error("selected remark without a function name")
			}
		case "rejected":
			if r.Reason == "" {
				t.Errorf("rejected remark without a reason: %+v", r)
			}
		default:
			t.Errorf("unknown remark status %q", r.Status)
		}
	}
	created := 0
	for _, rs := range res.Outline.Rounds {
		created += rs.FunctionsCreated
	}
	if selected != created {
		t.Errorf("%d selected remarks but %d functions created", selected, created)
	}
	if created != int(tr.Counter("outline/functions")) {
		t.Errorf("outline/functions counter %d, stats say %d",
			tr.Counter("outline/functions"), created)
	}

	// The trace the same build produced must be valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}
