package pipeline

import (
	"fmt"
	"io"
)

// WriteImageListing renders the built image as a deterministic text listing:
// the size summary, the address-ordered symbol table, and the full machine
// program. Two builds produced the same binary iff their listings are
// byte-identical, which makes the listing the comparison artifact for the
// cold-vs-warm determinism guarantee (slc -o, the CI cache e2e, and the
// pipeline tests all diff it).
func (r *Result) WriteImageListing(w io.Writer) error {
	if _, err := fmt.Fprintln(w, r.Image.Summary()); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nsymbols:")
	for _, s := range r.Image.Symbols {
		kind := "data"
		if s.Code {
			kind = "code"
		}
		fmt.Fprintf(w, "  %-4s %#010x %6d %s\n", kind, s.Addr, s.Size, s.Name)
	}
	fmt.Fprintln(w, "\nprogram:")
	_, err := io.WriteString(w, r.Prog.String())
	return err
}
