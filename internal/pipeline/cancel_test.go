package pipeline_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"outliner/internal/fault"
	"outliner/internal/pipeline"
)

// cancelListing builds sources with cfg and returns the deterministic image
// listing, failing the test on any build error.
func cancelListing(t *testing.T, cfg pipeline.Config, sources []pipeline.Source) string {
	t.Helper()
	res, err := pipeline.Build(sources, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteImageListing(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBuildPreCancelledContextPublishesNothing: a build whose context is
// already done fails with the context's error before any work runs, and the
// cache directory stays empty — a cancelled build never publishes.
func TestBuildPreCancelledContextPublishesNothing(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := pipeline.Default
	cfg.OutlineRounds = 1
	cfg.CacheDir = dir
	cfg.Ctx = ctx

	_, err := pipeline.Build(chaosSources(), cfg)
	if err == nil {
		t.Fatal("pre-cancelled build succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.art"))
	if len(entries) != 0 {
		t.Fatalf("cancelled build published %d cache entries: %v", len(entries), entries)
	}

	// The same directory serves a clean build normally afterwards, and the
	// image matches an uncached reference build byte for byte.
	ref := cancelListing(t, withRounds(1), chaosSources())
	clean := pipeline.Default
	clean.OutlineRounds = 1
	clean.CacheDir = dir
	if got := cancelListing(t, clean, chaosSources()); got != ref {
		t.Fatal("post-cancellation clean build diverged from the uncached reference")
	}
}

func withRounds(n int) pipeline.Config {
	cfg := pipeline.Default
	cfg.OutlineRounds = n
	return cfg
}

// TestScriptedCancelStep: the cancel-at-step-N chaos drill. A scripted
// CancelKind decision at a stage boundary cancels the build's context there;
// the build fails with an error wrapping context.Canceled, never a crash.
func TestScriptedCancelStep(t *testing.T) {
	for _, step := range []string{"parse", "frontend", "llc"} {
		cfg := pipeline.Default
		cfg.OutlineRounds = 1
		cfg.Fault = fault.Exact(fault.At{Site: fault.CancelStep, Key: "step:" + step, Kind: fault.CancelKind})
		_, err := pipeline.Build(chaosSources(), cfg)
		if err == nil {
			t.Fatalf("step %s: cancelled build succeeded", step)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("step %s: error %v does not wrap context.Canceled", step, err)
		}
	}
}

// TestHungWorkerBoundedByDeadline: the hung-compiler drill. A scripted hang
// blocks one frontend worker until the build's deadline fires; deadline
// propagation turns an unbounded wedge into a prompt, structured
// deadline-exceeded failure — and the poisoned cache directory problem does
// not exist, because the cancelled build published nothing a clean build can
// see: the follow-up build over the same directory is byte-identical to the
// uncached reference.
func TestHungWorkerBoundedByDeadline(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	cfg := pipeline.Default
	cfg.OutlineRounds = 1
	cfg.CacheDir = dir
	cfg.Ctx = ctx
	cfg.Fault = fault.Exact(fault.At{Site: fault.WorkerHang, Key: "models", Kind: fault.HangKind})

	start := time.Now()
	_, err := pipeline.Build(chaosSources(), cfg)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hung build succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "hung worker cancelled") {
		t.Fatalf("error %q does not name the hang", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("deadline took %v to fire — cancellation is not propagating", elapsed)
	}

	ref := cancelListing(t, withRounds(1), chaosSources())
	clean := pipeline.Default
	clean.OutlineRounds = 1
	clean.CacheDir = dir
	if got := cancelListing(t, clean, chaosSources()); got != ref {
		t.Fatal("clean build over the cancelled build's cache directory diverged from the reference")
	}
}

// TestKeepGoingCancelMidWaveAggregates is the keep-going × cancellation
// contract end to end: a wave where one module has already failed, a second
// hangs until the deadline, and a third is never claimed must still fail with
// a *pipeline.BuildErrors that aggregates the real failure, the hang's
// cancellation, and the wave's cancellation — cancellation stops the build
// promptly but never discards diagnostics that were already earned.
func TestKeepGoingCancelMidWaveAggregates(t *testing.T) {
	sources := []pipeline.Source{
		{Name: "beta", Files: map[string]string{"b.sl": "func badB() -> Int { return missingB(1) }\n"}},
		{Name: "gamma", Files: map[string]string{"c.sl": "func okC() -> Int { return 2 }\n"}},
		{Name: "alpha", Files: map[string]string{"a.sl": "func okA() -> Int { return 1 }\n"}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	cfg := pipeline.Default
	cfg.OutlineRounds = 1
	cfg.KeepGoing = true
	cfg.Parallelism = 1 // ordered claiming makes the aggregate deterministic
	cfg.Ctx = ctx
	cfg.Fault = fault.Exact(fault.At{Site: fault.WorkerHang, Key: "gamma", Kind: fault.HangKind})

	_, err := pipeline.Build(sources, cfg)
	if err == nil {
		t.Fatal("build succeeded")
	}
	var be *pipeline.BuildErrors
	if !errors.As(err, &be) {
		t.Fatalf("got %T (%v), want *pipeline.BuildErrors", err, err)
	}
	if len(be.Errs) != 3 {
		t.Fatalf("aggregated %d errors (%v), want 3: beta's failure, gamma's hang, alpha's cancellation", len(be.Errs), be)
	}
	if !strings.Contains(be.Errs[0].Error(), "beta") {
		t.Fatalf("first aggregated error %v does not report module beta's failure", be.Errs[0])
	}
	if !errors.Is(be.Errs[1], context.DeadlineExceeded) || !strings.Contains(be.Errs[1].Error(), "gamma") {
		t.Fatalf("second aggregated error %v is not gamma's deadline-cancelled hang", be.Errs[1])
	}
	if !errors.Is(be.Errs[2], context.DeadlineExceeded) {
		t.Fatalf("third aggregated error %v is not the wave's cancellation", be.Errs[2])
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("the aggregate does not expose the deadline through errors.Is")
	}
}
